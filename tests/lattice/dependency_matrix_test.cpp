// DependencyMatrix: the concrete dependency-function representation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "lattice/dependency_matrix.hpp"

namespace bbmg {
namespace {

DependencyMatrix random_matrix(std::size_t n, Rng& rng) {
  DependencyMatrix m(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b) m.set(a, b, kAllDepValues[rng.pick_index(kNumDepValues)]);
    }
  }
  return m;
}

TEST(DependencyMatrix, BottomHasWeightZeroAndIsLeqEverything) {
  Rng rng(99);
  const DependencyMatrix bot(5);
  EXPECT_EQ(bot.weight(), 0u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(bot.leq(random_matrix(5, rng)));
  }
}

TEST(DependencyMatrix, TopDominatesEverythingAndHasMaxWeight) {
  Rng rng(7);
  const DependencyMatrix top = DependencyMatrix::top(5);
  EXPECT_EQ(top.weight(), 9u * 5 * 4);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(random_matrix(5, rng).leq(top));
  }
}

TEST(DependencyMatrix, DiagonalIsFixedParallel) {
  DependencyMatrix m(3);
  EXPECT_EQ(m.at(1, 1), DepValue::Parallel);
  EXPECT_THROW(m.set(2, 2, DepValue::Forward), Error);
}

TEST(DependencyMatrix, SetPairWritesMirroredEntries) {
  DependencyMatrix m(3);
  m.set_pair(0, 2, DepValue::Forward);
  EXPECT_EQ(m.at(0, 2), DepValue::Forward);
  EXPECT_EQ(m.at(2, 0), DepValue::Backward);
  m.set_pair(1, 2, DepValue::MaybeMutual);
  EXPECT_EQ(m.at(2, 1), DepValue::MaybeMutual);
}

TEST(DependencyMatrix, OrientedEntriesAreIndependent) {
  // The learner needs d(a,b) and d(b,a) to evolve separately (paper d81).
  DependencyMatrix m(2);
  m.set(0, 1, DepValue::MaybeForward);
  m.set(1, 0, DepValue::Backward);
  EXPECT_EQ(m.at(0, 1), DepValue::MaybeForward);
  EXPECT_EQ(m.at(1, 0), DepValue::Backward);
}

TEST(DependencyMatrix, LubIsPointwiseAndAnUpperBound) {
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const DependencyMatrix a = random_matrix(4, rng);
    const DependencyMatrix b = random_matrix(4, rng);
    const DependencyMatrix j = a.lub(b);
    EXPECT_TRUE(a.leq(j));
    EXPECT_TRUE(b.leq(j));
    for (std::size_t x = 0; x < 4; ++x) {
      for (std::size_t y = 0; y < 4; ++y) {
        if (x != y) {
          EXPECT_EQ(j.at(x, y), dep_lub(a.at(x, y), b.at(x, y)));
        }
      }
    }
  }
}

TEST(DependencyMatrix, GlbIsPointwiseAndALowerBound) {
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    const DependencyMatrix a = random_matrix(4, rng);
    const DependencyMatrix b = random_matrix(4, rng);
    const DependencyMatrix m = a.glb(b);
    EXPECT_TRUE(m.leq(a));
    EXPECT_TRUE(m.leq(b));
  }
}

TEST(DependencyMatrix, LeqAgreesWithLub) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const DependencyMatrix a = random_matrix(3, rng);
    const DependencyMatrix b = random_matrix(3, rng);
    EXPECT_EQ(a.leq(b), a.lub(b) == b);
  }
}

TEST(DependencyMatrix, WeightIsSumOfDistances) {
  DependencyMatrix m(3);
  m.set(0, 1, DepValue::Forward);       // 1
  m.set(1, 0, DepValue::Backward);      // 1
  m.set(0, 2, DepValue::MaybeMutual);   // 9
  m.set(2, 1, DepValue::MaybeForward);  // 4
  EXPECT_EQ(m.weight(), 15u);
}

TEST(DependencyMatrix, WeightMonotoneInOrder) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const DependencyMatrix a = random_matrix(4, rng);
    const DependencyMatrix b = random_matrix(4, rng);
    if (a.leq(b)) {
      EXPECT_LE(a.weight(), b.weight());
    }
    EXPECT_GE(a.lub(b).weight(), std::max(a.weight(), b.weight()));
  }
}

TEST(DependencyMatrix, HashEqualityConsistency) {
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    const DependencyMatrix a = random_matrix(4, rng);
    DependencyMatrix b = a;
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(a, b);
    b.set(0, 1, b.at(0, 1) == DepValue::Parallel ? DepValue::Forward
                                                 : DepValue::Parallel);
    EXPECT_NE(a, b);
  }
}

TEST(DependencyMatrix, SizeMismatchThrows) {
  const DependencyMatrix a(3);
  const DependencyMatrix b(4);
  EXPECT_THROW((void)a.leq(b), Error);
  EXPECT_THROW((void)a.lub(b), Error);
}

TEST(DependencyMatrix, LubAllMatchesFold) {
  Rng rng(11);
  std::vector<DependencyMatrix> ms;
  for (int i = 0; i < 5; ++i) ms.push_back(random_matrix(4, rng));
  DependencyMatrix acc = ms[0];
  for (std::size_t i = 1; i < ms.size(); ++i) acc = acc.lub(ms[i]);
  EXPECT_EQ(lub_all(ms), acc);
  EXPECT_THROW((void)lub_all({}), Error);
}

TEST(DependencyMatrix, CountValue) {
  DependencyMatrix m(3);
  m.set(0, 1, DepValue::Forward);
  m.set(1, 0, DepValue::Backward);
  EXPECT_EQ(m.count_value(DepValue::Forward), 1u);
  EXPECT_EQ(m.count_value(DepValue::Parallel), 4u);
}

TEST(DependencyMatrix, TableRenderingContainsNamesAndValues) {
  DependencyMatrix m(2);
  m.set_pair(0, 1, DepValue::Forward);
  const std::string table = m.to_table({"alpha", "beta"});
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("->"), std::string::npos);
  EXPECT_NE(table.find("<-"), std::string::npos);
}

}  // namespace
}  // namespace bbmg
