// The 7-value lattice (paper Definition 5/7, Fig. 3) — exhaustive checks
// of the order, the lattice laws, and the learner's operator tables.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "lattice/dependency_value.hpp"

namespace bbmg {
namespace {

constexpr DepValue P = DepValue::Parallel;
constexpr DepValue F = DepValue::Forward;
constexpr DepValue B = DepValue::Backward;
constexpr DepValue M = DepValue::Mutual;
constexpr DepValue MF = DepValue::MaybeForward;
constexpr DepValue MB = DepValue::MaybeBackward;
constexpr DepValue MM = DepValue::MaybeMutual;

TEST(DepValue, DistancesMatchDefinition7) {
  EXPECT_EQ(dep_distance(P), 0u);
  EXPECT_EQ(dep_distance(F), 1u);
  EXPECT_EQ(dep_distance(B), 1u);
  EXPECT_EQ(dep_distance(MF), 4u);
  EXPECT_EQ(dep_distance(M), 4u);
  EXPECT_EQ(dep_distance(MB), 4u);
  EXPECT_EQ(dep_distance(MM), 9u);
}

TEST(DepValue, BottomAndTop) {
  for (DepValue v : kAllDepValues) {
    EXPECT_TRUE(dep_leq(P, v)) << dep_to_string(v);
    EXPECT_TRUE(dep_leq(v, MM)) << dep_to_string(v);
  }
}

TEST(DepValue, CoverRelationsOfFigure3) {
  // The exact Hasse diagram.
  EXPECT_TRUE(dep_leq(P, F));
  EXPECT_TRUE(dep_leq(P, B));
  EXPECT_TRUE(dep_leq(F, MF));
  EXPECT_TRUE(dep_leq(F, M));
  EXPECT_TRUE(dep_leq(B, MB));
  EXPECT_TRUE(dep_leq(B, M));
  EXPECT_TRUE(dep_leq(MF, MM));
  EXPECT_TRUE(dep_leq(M, MM));
  EXPECT_TRUE(dep_leq(MB, MM));
  // Incomparabilities.
  EXPECT_FALSE(dep_leq(F, B));
  EXPECT_FALSE(dep_leq(B, F));
  EXPECT_FALSE(dep_leq(MF, M));
  EXPECT_FALSE(dep_leq(M, MF));
  EXPECT_FALSE(dep_leq(MF, MB));
  EXPECT_FALSE(dep_leq(MB, MF));
  EXPECT_FALSE(dep_leq(F, MB));
  EXPECT_FALSE(dep_leq(B, MF));
}

TEST(DepValue, LeqIsAPartialOrder) {
  for (DepValue a : kAllDepValues) {
    EXPECT_TRUE(dep_leq(a, a));  // reflexive
    for (DepValue b : kAllDepValues) {
      if (dep_leq(a, b) && dep_leq(b, a)) {
        EXPECT_EQ(a, b);  // antisymmetric
      }
      for (DepValue c : kAllDepValues) {
        if (dep_leq(a, b) && dep_leq(b, c)) {
          EXPECT_TRUE(dep_leq(a, c));  // transitive
        }
      }
    }
  }
}

TEST(DepValue, LeqImpliesDistanceMonotone) {
  for (DepValue a : kAllDepValues) {
    for (DepValue b : kAllDepValues) {
      if (dep_leq(a, b)) {
        EXPECT_LE(dep_distance(a), dep_distance(b));
      }
    }
  }
}

TEST(DepValue, LubIsLeastUpperBound) {
  for (DepValue a : kAllDepValues) {
    for (DepValue b : kAllDepValues) {
      const DepValue j = dep_lub(a, b);
      EXPECT_TRUE(dep_leq(a, j));
      EXPECT_TRUE(dep_leq(b, j));
      // Least: no other upper bound is strictly below j.
      for (DepValue u : kAllDepValues) {
        if (dep_leq(a, u) && dep_leq(b, u)) {
          EXPECT_TRUE(dep_leq(j, u));
        }
      }
    }
  }
}

TEST(DepValue, GlbIsGreatestLowerBound) {
  for (DepValue a : kAllDepValues) {
    for (DepValue b : kAllDepValues) {
      const DepValue m = dep_glb(a, b);
      EXPECT_TRUE(dep_leq(m, a));
      EXPECT_TRUE(dep_leq(m, b));
      for (DepValue l : kAllDepValues) {
        if (dep_leq(l, a) && dep_leq(l, b)) {
          EXPECT_TRUE(dep_leq(l, m));
        }
      }
    }
  }
}

TEST(DepValue, LubCommutativeAssociativeIdempotent) {
  for (DepValue a : kAllDepValues) {
    EXPECT_EQ(dep_lub(a, a), a);
    for (DepValue b : kAllDepValues) {
      EXPECT_EQ(dep_lub(a, b), dep_lub(b, a));
      for (DepValue c : kAllDepValues) {
        EXPECT_EQ(dep_lub(dep_lub(a, b), c), dep_lub(a, dep_lub(b, c)));
      }
    }
  }
}

TEST(DepValue, AbsorptionLaws) {
  for (DepValue a : kAllDepValues) {
    for (DepValue b : kAllDepValues) {
      EXPECT_EQ(dep_lub(a, dep_glb(a, b)), a);
      EXPECT_EQ(dep_glb(a, dep_lub(a, b)), a);
    }
  }
}

TEST(DepValue, SpecificLubs) {
  EXPECT_EQ(dep_lub(F, B), M);
  EXPECT_EQ(dep_lub(MF, MB), MM);
  EXPECT_EQ(dep_lub(MF, M), MM);
  EXPECT_EQ(dep_lub(F, MB), MM);
  EXPECT_EQ(dep_lub(P, F), F);
}

TEST(DepValue, MirrorIsAnOrderIsomorphismAndInvolution) {
  for (DepValue a : kAllDepValues) {
    EXPECT_EQ(dep_mirror(dep_mirror(a)), a);
    EXPECT_EQ(dep_distance(dep_mirror(a)), dep_distance(a));
    for (DepValue b : kAllDepValues) {
      EXPECT_EQ(dep_leq(a, b), dep_leq(dep_mirror(a), dep_mirror(b)));
    }
  }
  EXPECT_EQ(dep_mirror(F), B);
  EXPECT_EQ(dep_mirror(MF), MB);
  EXPECT_EQ(dep_mirror(P), P);
  EXPECT_EQ(dep_mirror(M), M);
  EXPECT_EQ(dep_mirror(MM), MM);
}

TEST(DepValue, PermissionPredicates) {
  for (DepValue v : kAllDepValues) {
    // Requirements imply permissions.
    if (dep_requires_forward(v)) {
      EXPECT_TRUE(dep_permits_forward(v));
    }
    if (dep_requires_backward(v)) {
      EXPECT_TRUE(dep_permits_backward(v));
    }
    // Permission sets are upward closed (needed for minimal
    // generalization to be well defined).
    for (DepValue w : kAllDepValues) {
      if (dep_leq(v, w)) {
        if (dep_permits_forward(v)) {
          EXPECT_TRUE(dep_permits_forward(w));
        }
        if (dep_permits_backward(v)) {
          EXPECT_TRUE(dep_permits_backward(w));
        }
      }
    }
  }
  EXPECT_TRUE(dep_permits_forward(F));
  EXPECT_FALSE(dep_permits_forward(B));
  EXPECT_FALSE(dep_permits_forward(MB));
  EXPECT_TRUE(dep_permits_forward(MM));
}

TEST(DepValue, GeneralizationIsMinimalAndSound) {
  for (DepValue v : kAllDepValues) {
    const DepValue g = dep_generalize_permit_forward(v);
    EXPECT_TRUE(dep_leq(v, g));
    EXPECT_TRUE(dep_permits_forward(g));
    // Minimality: nothing strictly below g (and >= v) permits forward.
    for (DepValue w : kAllDepValues) {
      if (dep_leq(v, w) && dep_permits_forward(w)) {
        EXPECT_TRUE(dep_leq(g, w)) << dep_to_string(v);
      }
    }
    const DepValue gb = dep_generalize_permit_backward(v);
    EXPECT_TRUE(dep_leq(v, gb));
    EXPECT_TRUE(dep_permits_backward(gb));
    for (DepValue w : kAllDepValues) {
      if (dep_leq(v, w) && dep_permits_backward(w)) {
        EXPECT_TRUE(dep_leq(gb, w)) << dep_to_string(v);
      }
    }
  }
}

TEST(DepValue, GeneralizationIsMonotone) {
  // Needed for the learner's dominance argument: extending a more specific
  // hypothesis never overtakes a more general one.
  for (DepValue a : kAllDepValues) {
    for (DepValue b : kAllDepValues) {
      if (!dep_leq(a, b)) continue;
      EXPECT_TRUE(dep_leq(dep_generalize_permit_forward(a),
                          dep_generalize_permit_forward(b)));
      EXPECT_TRUE(dep_leq(dep_generalize_permit_backward(a),
                          dep_generalize_permit_backward(b)));
      EXPECT_TRUE(dep_leq(dep_weaken_forward_requirement(a),
                          dep_weaken_forward_requirement(b)));
      EXPECT_TRUE(dep_leq(dep_weaken_backward_requirement(a),
                          dep_weaken_backward_requirement(b)));
    }
  }
}

TEST(DepValue, WeakeningIsMinimalAndRemovesTheRequirement) {
  for (DepValue v : kAllDepValues) {
    const DepValue w = dep_weaken_forward_requirement(v);
    EXPECT_TRUE(dep_leq(v, w));
    EXPECT_FALSE(dep_requires_forward(w));
    for (DepValue u : kAllDepValues) {
      if (dep_leq(v, u) && !dep_requires_forward(u)) {
        EXPECT_TRUE(dep_leq(w, u));
      }
    }
  }
  EXPECT_EQ(dep_weaken_forward_requirement(F), MF);
  EXPECT_EQ(dep_weaken_forward_requirement(M), MM);
  EXPECT_EQ(dep_weaken_backward_requirement(B), MB);
  EXPECT_EQ(dep_weaken_backward_requirement(M), MM);
}

TEST(DepValue, StringRoundTrip) {
  for (DepValue v : kAllDepValues) {
    EXPECT_EQ(dep_from_string(dep_to_string(v)), v);
  }
  EXPECT_EQ(dep_to_string(P), "||");
  EXPECT_EQ(dep_to_string(MM), "<->?");
  EXPECT_THROW((void)dep_from_string("bogus"), Error);
}

}  // namespace
}  // namespace bbmg
