// Dependency-matrix text serialization.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/scenarios.hpp"
#include "lattice/matrix_io.hpp"

namespace bbmg {
namespace {

TEST(MatrixIo, RoundTripLearnedModel) {
  const Trace trace = paper_example_trace();
  const DependencyMatrix m = learn_heuristic(trace, 8).lub();
  const std::string text = matrix_to_string(m, trace.task_names());
  const NamedMatrix back = matrix_from_string(text);
  EXPECT_EQ(back.matrix, m);
  EXPECT_EQ(back.task_names, trace.task_names());
}

TEST(MatrixIo, RoundTripRandomMatrices) {
  Rng rng(17);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = 2 + rng.pick_index(6);
    DependencyMatrix m(n);
    std::vector<std::string> names;
    for (std::size_t i = 0; i < n; ++i) names.push_back("x" + std::to_string(i));
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a != b) m.set(a, b, kAllDepValues[rng.pick_index(kNumDepValues)]);
      }
    }
    const NamedMatrix back = matrix_from_string(matrix_to_string(m, names));
    EXPECT_EQ(back.matrix, m);
  }
}

TEST(MatrixIo, CommentsIgnored) {
  const Trace trace = paper_example_trace();
  const DependencyMatrix m = learn_heuristic(trace, 1).lub();
  std::string text = matrix_to_string(m, trace.task_names());
  text = "# learned from fig2\n" + text;
  EXPECT_EQ(matrix_from_string(text).matrix, m);
}

TEST(MatrixIo, RejectsMalformedInput) {
  EXPECT_THROW((void)matrix_from_string("nope"), Error);
  EXPECT_THROW((void)matrix_from_string("dep-matrix 2\ntasks a\n||\n"), Error);
  // Wrong row width.
  EXPECT_THROW((void)matrix_from_string(
                   "dep-matrix 1\ntasks a b\n|| ->\n<-\n"),
               Error);
  // Truncated.
  EXPECT_THROW((void)matrix_from_string("dep-matrix 1\ntasks a b\n|| ->\n"),
               Error);
  // Non-parallel diagonal.
  EXPECT_THROW((void)matrix_from_string(
                   "dep-matrix 1\ntasks a b\n-> ->\n<- ||\n"),
               Error);
  // Unknown value token.
  EXPECT_THROW((void)matrix_from_string(
                   "dep-matrix 1\ntasks a b\n|| =>\n<- ||\n"),
               Error);
}

TEST(MatrixIo, NameCountMustMatch) {
  const DependencyMatrix m(3);
  EXPECT_THROW((void)matrix_to_string(m, {"a", "b"}), Error);
}

TEST(MatrixIo, FileRoundTrip) {
  const Trace trace = paper_example_trace();
  const DependencyMatrix m = learn_heuristic(trace, 4).lub();
  const std::string path = ::testing::TempDir() + "/bbmg_matrix_test.txt";
  save_matrix_file(path, m, trace.task_names());
  EXPECT_EQ(load_matrix_file(path).matrix, m);
  EXPECT_THROW((void)load_matrix_file("/nonexistent/x.txt"), Error);
}

}  // namespace
}  // namespace bbmg
