// The tentpole acceptance test: a real multi-process cluster (2 shards,
// each with a follower, spawned via ShardSupervisor) serves 8 sessions
// routed by key; one shard's primary is SIGKILLed mid-stream; clients
// fail over to the follower and finish their streams; every final model
// must be byte-identical to an uninterrupted single-learner run.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cluster/cluster_client.hpp"
#include "cluster/supervisor.hpp"
#include "common/error.hpp"
#include "gen/gm_case_study.hpp"
#include "robust/robust_online_learner.hpp"
#include "serve/client.hpp"
#include "serve/resilient_client.hpp"
#include "sim/simulator.hpp"

#ifndef BBMG_SERVED_BIN
#error "BBMG_SERVED_BIN must point at the bbmg_served executable"
#endif

namespace bbmg {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/bbmg_failover_" + name;
  fs::remove_all(dir);
  return dir;
}

Trace gm_trace(std::uint64_t seed, std::size_t periods) {
  SimConfig cfg;
  cfg.seed = seed;
  return simulate_trace(gm_case_study_model(), periods, cfg);
}

/// The model an uninterrupted learner (server defaults) produces.
DependencyMatrix baseline_model(const Trace& trace) {
  const SessionConfig cfg = OpenSessionMsg{}.to_session_config();
  RobustOnlineLearner learner(trace.task_names(), cfg.robust);
  for (const Period& p : trace.periods()) {
    learner.observe_raw_period(p.to_events());
  }
  return learner.full_snapshot().result.lub();
}

RetryConfig failover_retries(std::uint64_t seed) {
  RetryConfig config;
  // Small on purpose: burn through the budget fast so the typed
  // RetriesExhausted (and with it the follower switch) fires promptly.
  // The switch is triggered by instant connection-refused errors from the
  // dead primary, so the per-request deadline can stay generous: it only
  // gates live-but-slow reads (a follower draining 8 sessions on a TSan
  // build needs well over 5 s).
  config.max_retries = 3;
  config.base_backoff_ms = 5;
  config.max_backoff_ms = 50;
  config.request_timeout_ms = 60000;
  config.seed = seed;
  return config;
}

TEST(ClusterFailover, SigkilledPrimaryFailsOverByteIdentically) {
  const std::size_t kSessions = 8;
  const std::size_t kPeriods = 16;
  const std::size_t kKillAfter = 8;  // periods sent before the SIGKILL

  cluster::SupervisorConfig scfg;
  scfg.served_bin = BBMG_SERVED_BIN;
  scfg.root_dir = fresh_dir("chaos");
  scfg.shards = 2;
  scfg.followers = true;
  cluster::ShardSupervisor supervisor(scfg);
  supervisor.start();
  {

    cluster::ClusterClient client(supervisor.map(), failover_retries(99));
    std::vector<std::string> keys;
    std::vector<Trace> traces;
    std::vector<cluster::ClusterSessionRef> refs;
    bool on_each_shard[2] = {false, false};
    for (std::size_t i = 0; i < kSessions; ++i) {
      keys.push_back("device-" + std::to_string(i));
      traces.push_back(gm_trace(i, kPeriods));
      refs.push_back(client.open_session(keys[i], traces[i].task_names()));
      on_each_shard[refs[i].shard] = true;
    }
    // The rendezvous spread must actually exercise both shards, or the
    // kill would only prove single-shard behaviour.
    ASSERT_TRUE(on_each_shard[0] && on_each_shard[1]);

    for (std::size_t i = 0; i < kSessions; ++i) {
      for (std::size_t p = 0; p < kKillAfter; ++p) {
        client.send_period(refs[i], traces[i].periods()[p].to_events());
      }
    }

    // Chaos: the shard serving key 0 loses its primary, hard.
    const std::size_t victim = refs[0].shard;
    supervisor.kill_primary(victim);

    for (std::size_t i = 0; i < kSessions; ++i) {
      for (std::size_t p = kKillAfter; p < kPeriods; ++p) {
        client.send_period(refs[i], traces[i].periods()[p].to_events());
      }
    }

    std::size_t failed_over_sessions = 0;
    for (std::size_t i = 0; i < kSessions; ++i) {
      // Every period must be durable wherever the session now lives.
      EXPECT_EQ(client.flush(refs[i]), kPeriods) << keys[i];
      const WireSnapshot snap = client.query(refs[i], /*drain=*/true);
      EXPECT_EQ(snap.periods_seen, kPeriods) << keys[i];
      const DependencyMatrix want = baseline_model(traces[i]);
      EXPECT_TRUE(snap.lub == want)
          << keys[i] << " diverged after the failover";
      EXPECT_EQ(snap.weight, want.weight()) << keys[i];
      if (refs[i].shard == victim) ++failed_over_sessions;
    }
    EXPECT_GE(client.failovers(), 1u);
    EXPECT_GT(failed_over_sessions, 0u);
    EXPECT_FALSE(supervisor.primary_alive(victim));

    // The surviving nodes drain cleanly.
    EXPECT_EQ(supervisor.terminate_all(), 0);
  }
}

TEST(ClusterFailover, NewSessionsOpenOnTheFollowerAfterTheKill) {
  cluster::SupervisorConfig scfg;
  scfg.served_bin = BBMG_SERVED_BIN;
  scfg.root_dir = fresh_dir("open_after_kill");
  scfg.shards = 1;
  scfg.followers = true;
  cluster::ShardSupervisor supervisor(scfg);
  supervisor.start();

  const Trace trace = gm_trace(42, 10);
  cluster::ClusterClient client(supervisor.map(), failover_retries(7));
  const cluster::ClusterSessionRef before =
      client.open_session("pre-kill", trace.task_names());
  for (const Period& p : trace.periods()) {
    client.send_period(before, p.to_events());
  }
  EXPECT_EQ(client.flush(before), trace.num_periods());

  supervisor.kill_primary(0);

  // A fresh key on the dead shard: open fails over and the follower —
  // which owns the shard's keys too — serves it without a redirect.
  const cluster::ClusterSessionRef after =
      client.open_session("post-kill", trace.task_names());
  EXPECT_EQ(after.shard, 0u);
  for (const Period& p : trace.periods()) {
    client.send_period(after, p.to_events());
  }
  EXPECT_EQ(client.flush(after), trace.num_periods());
  const WireSnapshot snap = client.query(after, /*drain=*/true);
  EXPECT_TRUE(snap.lub == baseline_model(trace));
  EXPECT_GE(client.failovers(), 1u);
  (void)supervisor.terminate_all();
}

TEST(ClusterFailover, RoutingIsStableAcrossClientInstances) {
  // Two independent clients over the same map must agree on placement —
  // the shared-hash contract that makes Redirects mean "stale map" only.
  cluster::ClusterMap map = cluster::ClusterMap::parse(
      "epoch 1\n"
      "shard 127.0.0.1:7227 127.0.0.1:7327\n"
      "shard 127.0.0.1:7228\n"
      "shard 127.0.0.1:7229\n");
  cluster::ClusterClient a(map);
  cluster::ClusterClient b(map);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "agree-" + std::to_string(i);
    EXPECT_EQ(a.shard_for(key), b.shard_for(key)) << key;
    EXPECT_EQ(a.shard_for(key), map.shard_for(key)) << key;
  }
}

}  // namespace
}  // namespace bbmg
