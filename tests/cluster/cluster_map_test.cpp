// Cluster map unit tests: the text format (parse/serialize round trip,
// line-numbered rejection of malformed input), the wire round trip, and
// the rendezvous routing function — determinism, full-range coverage,
// spread, and the minimal-movement property that justifies choosing
// rendezvous over modulo hashing.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster_map.hpp"
#include "common/error.hpp"

namespace bbmg::cluster {
namespace {

ClusterMap map_of(std::size_t shards, bool followers) {
  ClusterMap map;
  map.epoch = 1;
  for (std::size_t s = 0; s < shards; ++s) {
    ClusterShard shard;
    shard.primary = Endpoint{"127.0.0.1",
                             static_cast<std::uint16_t>(7000 + s)};
    if (followers) {
      shard.follower = Endpoint{"127.0.0.1",
                                static_cast<std::uint16_t>(7100 + s)};
    }
    map.shards.push_back(shard);
  }
  return map;
}

TEST(Endpoint, ParsesHostColonPort) {
  const Endpoint ep = Endpoint::parse("10.1.2.3:7227");
  EXPECT_EQ(ep.host, "10.1.2.3");
  EXPECT_EQ(ep.port, 7227);
  EXPECT_TRUE(ep.valid());
  EXPECT_EQ(ep.str(), "10.1.2.3:7227");
}

TEST(Endpoint, RejectsGarbage) {
  EXPECT_THROW((void)Endpoint::parse("no-port-here"), Error);
  EXPECT_THROW((void)Endpoint::parse(":7227"), Error);
  EXPECT_THROW((void)Endpoint::parse("host:"), Error);
  EXPECT_THROW((void)Endpoint::parse("host:0"), Error);
  EXPECT_THROW((void)Endpoint::parse("host:99999"), Error);
  EXPECT_THROW((void)Endpoint::parse("host:12x4"), Error);
}

TEST(ClusterMap, ParsesTheDocumentedFormat) {
  const ClusterMap map = ClusterMap::parse(
      "# three shards, the first two replicated\n"
      "epoch 3\n"
      "\n"
      "shard 127.0.0.1:7227 127.0.0.1:7327  # gm case study\n"
      "shard 127.0.0.1:7228 127.0.0.1:7328\n"
      "shard 127.0.0.1:7229\n");
  EXPECT_EQ(map.epoch, 3u);
  ASSERT_EQ(map.shards.size(), 3u);
  EXPECT_EQ(map.shards[0].primary.str(), "127.0.0.1:7227");
  EXPECT_EQ(map.shards[0].follower.str(), "127.0.0.1:7327");
  EXPECT_TRUE(map.shards[0].has_follower());
  EXPECT_FALSE(map.shards[2].has_follower());
}

TEST(ClusterMap, SerializeParsesBackIdentically) {
  const ClusterMap map = map_of(4, true);
  const ClusterMap back = ClusterMap::parse(map.serialize());
  EXPECT_EQ(back.epoch, map.epoch);
  ASSERT_EQ(back.shards.size(), map.shards.size());
  for (std::size_t s = 0; s < map.shards.size(); ++s) {
    EXPECT_EQ(back.shards[s].primary, map.shards[s].primary);
    EXPECT_EQ(back.shards[s].follower, map.shards[s].follower);
  }
}

TEST(ClusterMap, MalformedInputNamesTheLine) {
  const auto error_for = [](const std::string& text) -> std::string {
    try {
      (void)ClusterMap::parse(text);
    } catch (const Error& e) {
      return e.what();
    }
    return {};
  };
  EXPECT_NE(error_for("epoch 1\nshard 127.0.0.1:1\nwat 5\n").find("line 3"),
            std::string::npos);
  EXPECT_NE(error_for("epoch x\n").find("line 1"), std::string::npos);
  EXPECT_NE(error_for("epoch 1\nepoch 2\nshard 127.0.0.1:1\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(error_for("epoch 1\nshard nonsense\n").find("line 2"),
            std::string::npos);
  // An empty map (comments only) is rejected too.
  EXPECT_FALSE(error_for("# nothing\nepoch 1\n").empty());
}

TEST(ClusterMap, FileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/bbmg_cluster_map_test.map";
  std::filesystem::remove(path);
  const ClusterMap map = map_of(3, true);
  map.save(path);
  const ClusterMap back = ClusterMap::load(path);
  EXPECT_EQ(back.serialize(), map.serialize());
  EXPECT_THROW((void)ClusterMap::load(path + ".does-not-exist"), Error);
}

TEST(ClusterMap, WireRoundTripKeepsEveryField) {
  ClusterMap map = map_of(3, false);
  map.shards[1].follower = Endpoint{"127.0.0.1", 7301};  // mixed topology
  const ClusterMap back = ClusterMap::from_wire(map.to_wire());
  EXPECT_EQ(back.serialize(), map.serialize());
  EXPECT_FALSE(back.shards[0].has_follower());
  EXPECT_TRUE(back.shards[1].has_follower());
}

// -- rendezvous routing ----------------------------------------------------

TEST(Rendezvous, DeterministicAndInRange) {
  const ClusterMap map = map_of(5, false);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "session-key-" + std::to_string(i);
    const std::size_t shard = map.shard_for(key);
    EXPECT_LT(shard, map.shards.size());
    EXPECT_EQ(shard, map.shard_for(key)) << key;
  }
  // Client and server route with the same function by construction; pin
  // the key hash so a silent change to it cannot slip through.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(Rendezvous, SpreadsKeysAcrossAllShards) {
  const ClusterMap map = map_of(4, false);
  std::map<std::size_t, std::size_t> histogram;
  const std::size_t kKeys = 2000;
  for (std::size_t i = 0; i < kKeys; ++i) {
    ++histogram[map.shard_for("device-" + std::to_string(i))];
  }
  ASSERT_EQ(histogram.size(), map.shards.size());  // nothing starved
  for (const auto& [shard, count] : histogram) {
    // Fair-ish split: each shard within a factor of two of the mean.
    EXPECT_GT(count, kKeys / map.shards.size() / 2) << "shard " << shard;
    EXPECT_LT(count, kKeys / map.shards.size() * 2) << "shard " << shard;
  }
}

TEST(Rendezvous, RemovingAShardOnlyMovesItsOwnKeys) {
  const ClusterMap five = map_of(5, false);
  // Dropping the LAST shard leaves the other shards' identities (index =
  // line order) unchanged — the minimal-movement property: every key that
  // did not live on the dropped shard keeps its placement.
  ClusterMap four = five;
  four.shards.pop_back();
  std::size_t moved = 0, total = 0, on_dropped = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::size_t before = five.shard_for(key);
    const std::size_t after = four.shard_for(key);
    ++total;
    if (before == 4) {
      ++on_dropped;
      EXPECT_LT(after, 4u);
    } else {
      moved += before != after ? 1 : 0;
      EXPECT_EQ(before, after) << key;
    }
  }
  EXPECT_EQ(moved, 0u);
  EXPECT_GT(on_dropped, 0u);
  EXPECT_LT(on_dropped, total);
}

}  // namespace
}  // namespace bbmg::cluster
