// In-process replication tests: a primary Server with a Replicator
// shipping to a live follower Server (byte-identical replica, acked
// high-water marks), the min(local, replicated) Resume clamp when the
// follower is unreachable, key routing with Redirect answers, and the
// idempotent OpenSessionAs mirror primitive.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "cluster/cluster_map.hpp"
#include "cluster/replicator.hpp"
#include "common/error.hpp"
#include "gen/gm_case_study.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/resilient_client.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/bbmg_repl_" + name;
  fs::remove_all(dir);
  return dir;
}

Trace gm_trace(std::uint64_t seed, std::size_t periods) {
  SimConfig cfg;
  cfg.seed = seed;
  return simulate_trace(gm_case_study_model(), periods, cfg);
}

ServerConfig durable_config(const std::string& dir) {
  ServerConfig config;
  config.manager.workers = 2;
  config.manager.durable.dir = dir;
  config.manager.durable.fsync_every = 1;
  return config;
}

/// Map with one shard: a placeholder primary endpoint (never dialed by
/// the replicator) and the given follower.
cluster::ClusterMap one_shard_map(std::uint16_t follower_port) {
  cluster::ClusterMap map;
  map.epoch = 1;
  cluster::ClusterShard shard;
  shard.primary = cluster::Endpoint{"127.0.0.1", 1};
  shard.follower = cluster::Endpoint{"127.0.0.1", follower_port};
  map.shards.push_back(shard);
  return map;
}

cluster::ReplicatorConfig fast_replication() {
  cluster::ReplicatorConfig config;
  config.ack_every = 4;
  config.retry.max_retries = 2;
  config.retry.base_backoff_ms = 1;
  config.retry.max_backoff_ms = 10;
  config.retry.request_timeout_ms = 2000;
  return config;
}

TEST(Replication, FollowerHoldsAByteIdenticalDurableReplica) {
  Server follower(durable_config(fresh_dir("byte_identical_f")));
  follower.start();

  Server primary(durable_config(fresh_dir("byte_identical_p")));
  auto replicator = std::make_shared<cluster::Replicator>(
      primary.manager(), one_shard_map(follower.port()), 0,
      /*follower_role=*/false, fast_replication());
  ASSERT_TRUE(replicator->shipping());
  primary.set_cluster(replicator);
  replicator->start();
  primary.start();

  const Trace trace = gm_trace(11, 20);
  ResilientClient client;
  client.connect("127.0.0.1", primary.port());
  const std::uint32_t session = client.open_session(trace.task_names());
  for (const Period& p : trace.periods()) {
    client.send_period(session, p.to_events());
  }
  // flush() resolves via Resume, and a replicating primary only acks
  // min(local, follower-acked): a full ack here PROVES the follower holds
  // (and fsynced) every period.
  EXPECT_EQ(client.flush(session), trace.num_periods());
  EXPECT_GE(replicator->replicated(session), trace.num_periods());
  EXPECT_FALSE(replicator->stalled(session));

  // Same id, same durable mark, byte-identical model on the follower.
  ServeClient direct;
  direct.connect("127.0.0.1", follower.port());
  EXPECT_EQ(direct.resume(session), trace.num_periods());
  const WireSnapshot from_follower = direct.query(session, /*drain=*/true);
  const WireSnapshot from_primary = client.query(session, /*drain=*/true);
  EXPECT_EQ(from_follower.periods_seen, trace.num_periods());
  EXPECT_TRUE(from_follower.lub == from_primary.lub);
  EXPECT_EQ(from_follower.weight, from_primary.weight);

  primary.stop();
  replicator->stop();
  follower.stop();
}

TEST(Replication, ResumeAcksOnlyWhatTheFollowerAlsoHolds) {
  // Follower endpoint is a dead port: the first ship attempt stalls the
  // session, and Resume must then answer 0 — never the local mark — so
  // clients keep every period buffered for a later failover.
  const net::Listener dead = net::listen_tcp(0, 1);
  const std::uint16_t dead_port = dead.port;
  net::close_socket(dead.fd);

  Server primary(durable_config(fresh_dir("clamp_p")));
  cluster::ReplicatorConfig rcfg = fast_replication();
  rcfg.retry.max_retries = 0;
  rcfg.retry.request_timeout_ms = 200;  // bounds the Resume wait
  auto replicator = std::make_shared<cluster::Replicator>(
      primary.manager(), one_shard_map(dead_port), 0,
      /*follower_role=*/false, rcfg);
  primary.set_cluster(replicator);
  replicator->start();
  primary.start();

  const Trace trace = gm_trace(3, 4);
  ResilientClient client;
  client.connect("127.0.0.1", primary.port());
  const std::uint32_t session = client.open_session(trace.task_names());
  for (const Period& p : trace.periods()) {
    client.send_period(session, p.to_events());
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!replicator->stalled(session) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(replicator->stalled(session));

  // Locally everything is durable; over the wire nothing is acked.
  ServeClient direct;
  direct.connect("127.0.0.1", primary.port());
  EXPECT_EQ(direct.resume(session), 0u);
  EXPECT_EQ(primary.manager().resume_high_water(SessionId{session}),
            trace.num_periods());
  // And flush() cannot complete: the replication gap never acks, so the
  // client refuses to claim durability it cannot prove.
  EXPECT_THROW((void)client.flush(session), Error);
  // The primary still serves and learns — a stall degrades replication,
  // not service.
  const WireSnapshot snap = direct.query(session, /*drain=*/true);
  EXPECT_EQ(snap.periods_seen, trace.num_periods());

  primary.stop();
  replicator->stop();
}

TEST(Replication, KeysRouteLocallyOrRedirectToTheOwner) {
  cluster::ClusterMap map;
  map.epoch = 7;
  map.shards.push_back(
      {cluster::Endpoint{"127.0.0.1", 1}, cluster::Endpoint{}});
  map.shards.push_back(
      {cluster::Endpoint{"127.0.0.1", 2}, cluster::Endpoint{}});

  Server server;  // plays shard 0; no followers -> no shipping
  auto replicator = std::make_shared<cluster::Replicator>(
      server.manager(), map, 0, /*follower_role=*/false);
  ASSERT_FALSE(replicator->shipping());
  server.set_cluster(replicator);
  server.start();

  std::string local_key, remote_key;
  for (int i = 0; local_key.empty() || remote_key.empty(); ++i) {
    ASSERT_LT(i, 1000);
    const std::string key = "key-" + std::to_string(i);
    (map.shard_for(key) == 0 ? local_key : remote_key) = key;
  }

  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const std::uint32_t session =
      client.open_cluster_session(local_key, {"a", "b"});
  const WireSnapshot snap = client.query(session, /*drain=*/false);
  EXPECT_EQ(snap.session, session);

  try {
    (void)client.open_cluster_session(remote_key, {"a", "b"});
    FAIL() << "expected a Redirect for " << remote_key;
  } catch (const Redirected& r) {
    EXPECT_EQ(r.redirect().shard, 1u);
    EXPECT_EQ(r.redirect().epoch, map.epoch);
    EXPECT_EQ(r.redirect().endpoint, map.shards[1].primary.str());
  }
  // The map is served over the wire for client bootstrap.
  const cluster::ClusterMap fetched =
      cluster::ClusterMap::from_wire(client.fetch_cluster_map());
  EXPECT_EQ(fetched.serialize(), map.serialize());
  server.stop();
}

TEST(Replication, OpenSessionAsIsIdempotentAndChecked) {
  Server server(durable_config(fresh_dir("open_as")));
  server.start();
  ServeClient client;
  client.connect("127.0.0.1", server.port());

  client.open_session_as(5, {"x", "y"});
  client.open_session_as(5, {"x", "y"});  // mirror retry: same universe, ok
  EXPECT_THROW(client.open_session_as(5, {"x", "z"}), Error);

  const Trace trace = gm_trace(1, 3);
  client.open_session_as(9, trace.task_names());
  std::uint64_t seq = 0;
  for (const Period& p : trace.periods()) {
    client.send_period(9, p.to_events(), ++seq);
  }
  EXPECT_EQ(client.resume(9), trace.num_periods());
  server.stop();
}

}  // namespace
}  // namespace bbmg
