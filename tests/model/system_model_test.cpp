// Design-model structure: validation rules, topological order, DOT export.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gen/scenarios.hpp"
#include "model/system_model.hpp"

namespace bbmg {
namespace {

TaskSpec source(const char* name) {
  TaskSpec s;
  s.name = name;
  s.activation = ActivationPolicy::Source;
  s.output = OutputPolicy::All;
  return s;
}

TaskSpec sink(const char* name) {
  TaskSpec s;
  s.name = name;
  s.activation = ActivationPolicy::AnyInput;
  s.output = OutputPolicy::All;
  return s;
}

TEST(SystemModel, PaperExampleValidates) {
  const SystemModel m = paper_example_model();
  EXPECT_EQ(m.num_tasks(), 4u);
  EXPECT_EQ(m.edges().size(), 4u);
  EXPECT_EQ(m.num_ecus(), 1u);
  EXPECT_EQ(m.task_by_name("t3").index(), 2u);
  EXPECT_THROW((void)m.task_by_name("nope"), Error);
}

TEST(SystemModel, EdgeBookkeeping) {
  SystemModel m;
  const TaskId a = m.add_task(source("a"));
  const TaskId b = m.add_task(sink("b"));
  const TaskId c = m.add_task(sink("c"));
  m.add_edge({a, b, 1, 8, 1.0});
  m.add_edge({a, c, 2, 8, 1.0});
  m.add_edge({b, c, 3, 8, 1.0});
  EXPECT_EQ(m.out_edges(a).size(), 2u);
  EXPECT_EQ(m.in_edges(c).size(), 2u);
  EXPECT_EQ(m.in_edges(a).size(), 0u);
}

TEST(SystemModel, RejectsDuplicateNames) {
  SystemModel m;
  m.add_task(source("x"));
  m.add_task(source("x"));
  EXPECT_THROW(m.validate(), Error);
}

TEST(SystemModel, RejectsEmptyName) {
  SystemModel m;
  m.add_task(source(""));
  EXPECT_THROW(m.validate(), Error);
}

TEST(SystemModel, RejectsSelfEdge) {
  SystemModel m;
  const TaskId a = m.add_task(source("a"));
  m.add_edge({a, a, 1, 8, 1.0});
  EXPECT_THROW(m.validate(), Error);
}

TEST(SystemModel, RejectsDuplicateCanIds) {
  SystemModel m;
  const TaskId a = m.add_task(source("a"));
  const TaskId b = m.add_task(sink("b"));
  const TaskId c = m.add_task(sink("c"));
  m.add_edge({a, b, 7, 8, 1.0});
  m.add_edge({a, c, 7, 8, 1.0});
  EXPECT_THROW(m.validate(), Error);
}

TEST(SystemModel, RejectsBroadcastCanIdCollision) {
  SystemModel m;
  TaskSpec s = source("a");
  s.broadcasts.push_back({7, 4});
  const TaskId a = m.add_task(std::move(s));
  const TaskId b = m.add_task(sink("b"));
  m.add_edge({a, b, 7, 8, 1.0});
  EXPECT_THROW(m.validate(), Error);
}

TEST(SystemModel, RejectsCycles) {
  SystemModel m;
  TaskSpec sa = sink("a");
  sa.activation = ActivationPolicy::AnyInput;
  const TaskId a = m.add_task(std::move(sa));
  const TaskId b = m.add_task(sink("b"));
  m.add_edge({a, b, 1, 8, 1.0});
  m.add_edge({b, a, 2, 8, 1.0});
  EXPECT_THROW(m.validate(), Error);
}

TEST(SystemModel, RejectsSourceWithInEdges) {
  SystemModel m;
  const TaskId a = m.add_task(source("a"));
  const TaskId b = m.add_task(source("b"));
  m.add_edge({a, b, 1, 8, 1.0});
  EXPECT_THROW(m.validate(), Error);
}

TEST(SystemModel, RejectsNonSourceWithoutInEdges) {
  SystemModel m;
  m.add_task(source("a"));
  m.add_task(sink("orphan"));
  EXPECT_THROW(m.validate(), Error);
}

TEST(SystemModel, RejectsBadExecutionRange) {
  SystemModel m;
  TaskSpec s = source("a");
  s.exec_min = 10;
  s.exec_max = 5;
  m.add_task(std::move(s));
  EXPECT_THROW(m.validate(), Error);
}

TEST(SystemModel, RejectsBadProbability) {
  SystemModel m;
  const TaskId a = m.add_task(source("a"));
  const TaskId b = m.add_task(sink("b"));
  m.add_edge({a, b, 1, 8, 1.5});
  EXPECT_THROW(m.validate(), Error);
}

TEST(SystemModel, TopologicalOrderRespectsEdges) {
  const SystemModel m = paper_example_model();
  const auto order = m.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].index()] = i;
  for (const auto& e : m.edges()) {
    EXPECT_LT(pos[e.from.index()], pos[e.to.index()]);
  }
}

TEST(SystemModel, DotExportMentionsTasksAndEdges) {
  const SystemModel m = paper_example_model();
  const std::string dot = m.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"t1\" -> \"t2\""), std::string::npos);
  // t1 is disjunctive, so its edges are dashed.
  EXPECT_NE(dot.find("dashed"), std::string::npos);
}

}  // namespace
}  // namespace bbmg
