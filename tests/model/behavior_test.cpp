// Behaviour resolution and exhaustive enumeration under the control-flow
// MoC: activation policies, output policies, and the behaviour-space
// structure of the paper's Fig. 1 model.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "gen/scenarios.hpp"
#include "model/behavior.hpp"
#include "model/design_truth.hpp"

namespace bbmg {
namespace {

SystemModel chain_model(OutputPolicy mid_policy) {
  // a -> b -> {c, d}
  SystemModel m;
  TaskSpec a;
  a.name = "a";
  a.activation = ActivationPolicy::Source;
  a.output = OutputPolicy::All;
  const TaskId ia = m.add_task(std::move(a));
  TaskSpec b;
  b.name = "b";
  b.activation = ActivationPolicy::AnyInput;
  b.output = mid_policy;
  const TaskId ib = m.add_task(std::move(b));
  TaskSpec c;
  c.name = "c";
  c.activation = ActivationPolicy::AnyInput;
  const TaskId ic = m.add_task(std::move(c));
  TaskSpec d;
  d.name = "d";
  d.activation = ActivationPolicy::AnyInput;
  const TaskId id = m.add_task(std::move(d));
  m.add_edge({ia, ib, 1, 8, 1.0});
  m.add_edge({ib, ic, 2, 8, 1.0});
  m.add_edge({ib, id, 3, 8, 1.0});
  m.validate();
  return m;
}

TEST(Behavior, AllPolicySendsEverything) {
  const SystemModel m = chain_model(OutputPolicy::All);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const PeriodBehavior b = resolve_period(m, rng);
    EXPECT_TRUE(b.executed[0] && b.executed[1] && b.executed[2] &&
                b.executed[3]);
    EXPECT_EQ(b.sent_edges.size(), 3u);
  }
}

TEST(Behavior, ExactlyOneChoosesOneBranch) {
  const SystemModel m = chain_model(OutputPolicy::ExactlyOne);
  Rng rng(2);
  bool saw_c = false;
  bool saw_d = false;
  for (int i = 0; i < 40; ++i) {
    const PeriodBehavior b = resolve_period(m, rng);
    EXPECT_EQ(b.sent_edges.size(), 2u);  // a->b plus one of b's edges
    EXPECT_NE(b.executed[2], b.executed[3]);  // exactly one of c, d
    saw_c |= b.executed[2];
    saw_d |= b.executed[3];
  }
  EXPECT_TRUE(saw_c && saw_d);
}

TEST(Behavior, NonEmptySubsetAlwaysSendsSomething) {
  const SystemModel m = chain_model(OutputPolicy::NonEmptySubset);
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const PeriodBehavior b = resolve_period(m, rng);
    EXPECT_TRUE(b.executed[2] || b.executed[3]);
  }
}

TEST(Behavior, PerEdgeProbabilityZeroAndOne) {
  SystemModel m;
  TaskSpec a;
  a.name = "a";
  a.activation = ActivationPolicy::Source;
  a.output = OutputPolicy::PerEdgeProbability;
  const TaskId ia = m.add_task(std::move(a));
  TaskSpec b;
  b.name = "b";
  b.activation = ActivationPolicy::AnyInput;
  const TaskId ib = m.add_task(std::move(b));
  TaskSpec c;
  c.name = "c";
  c.activation = ActivationPolicy::AnyInput;
  const TaskId ic = m.add_task(std::move(c));
  m.add_edge({ia, ib, 1, 8, 1.0});  // always
  m.add_edge({ia, ic, 2, 8, 0.0});  // never
  m.validate();
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const PeriodBehavior beh = resolve_period(m, rng);
    EXPECT_TRUE(beh.executed[1]);
    EXPECT_FALSE(beh.executed[2]);
  }
}

TEST(Behavior, AllInputsWaitsForEveryEdge) {
  // s1 -> j, s2 -(conditional)-> j with j requiring all inputs: j runs only
  // when s2 chose to send.
  SystemModel m;
  TaskSpec s1;
  s1.name = "s1";
  s1.activation = ActivationPolicy::Source;
  const TaskId i1 = m.add_task(std::move(s1));
  TaskSpec s2;
  s2.name = "s2";
  s2.activation = ActivationPolicy::Source;
  s2.output = OutputPolicy::PerEdgeProbability;
  const TaskId i2 = m.add_task(std::move(s2));
  TaskSpec j;
  j.name = "j";
  j.activation = ActivationPolicy::AllInputs;
  const TaskId ij = m.add_task(std::move(j));
  m.add_edge({i1, ij, 1, 8, 1.0});
  m.add_edge({i2, ij, 2, 8, 0.5});
  m.validate();
  Rng rng(5);
  int ran = 0;
  int sent2 = 0;
  for (int i = 0; i < 200; ++i) {
    const PeriodBehavior b = resolve_period(m, rng);
    ran += b.executed[ij.index()];
    sent2 += (b.sent_edges.size() == 2);
    if (b.executed[ij.index()]) {
      EXPECT_EQ(b.sent_edges.size(), 2u);
    }
  }
  EXPECT_EQ(ran, sent2);
  EXPECT_GT(ran, 50);
  EXPECT_LT(ran, 150);
}

TEST(Behavior, PaperModelHasThreeBehaviors) {
  // t1 picks a non-empty subset of {t2, t3}: 3 choices, and since t2/t3
  // send unconditionally each choice fixes the whole period — exactly the
  // three period shapes of the paper's Fig. 2.
  const auto behaviors = enumerate_behaviors(paper_example_model());
  EXPECT_EQ(behaviors.size(), 3u);
  std::set<std::size_t> msg_counts;
  for (const auto& b : behaviors) {
    EXPECT_TRUE(b.executed[0]);
    EXPECT_TRUE(b.executed[3]);  // t4 runs in every behaviour
    msg_counts.insert(b.sent_edges.size());
  }
  EXPECT_EQ(msg_counts, (std::set<std::size_t>{2, 4}));
}

TEST(Behavior, EnumerationCapThrows) {
  EXPECT_THROW((void)enumerate_behaviors(paper_example_model(), 2), Error);
}

TEST(Behavior, RandomResolutionIsWithinEnumeratedSpace) {
  const SystemModel m = paper_example_model();
  const auto all = enumerate_behaviors(m);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const PeriodBehavior b = resolve_period(m, rng);
    bool found = false;
    for (const auto& e : all) {
      if (e.executed == b.executed && e.sent_edges == b.sent_edges) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(DesignTruth, PaperModelDesignDependency) {
  const SystemModel m = paper_example_model();
  const DependencyMatrix d = design_dependency(m);
  // t1's edges are conditional; t2->t4 and t3->t4 are unconditional.
  EXPECT_EQ(d.at(0, 1), DepValue::MaybeForward);
  EXPECT_EQ(d.at(0, 2), DepValue::MaybeForward);
  EXPECT_EQ(d.at(1, 3), DepValue::Forward);
  EXPECT_EQ(d.at(2, 3), DepValue::Forward);
  // The spec-reader view mirrors the sender side verbatim (it does no
  // cross-edge reasoning): an unconditional edge reads as <- on (t4,t2).
  EXPECT_EQ(d.at(3, 1), DepValue::Backward);
  // No direct design edge t1 -> t4.
  EXPECT_EQ(d.at(0, 3), DepValue::Parallel);
}

TEST(DesignTruth, PaperModelBehavioralDependency) {
  const SystemModel m = paper_example_model();
  const DependencyMatrix d = behavioral_dependency(m);
  // With perfect endpoint knowledge: t2 may or may not be determined by
  // t1, but when t2 runs it always got t1's message.
  EXPECT_EQ(d.at(0, 1), DepValue::MaybeForward);
  EXPECT_EQ(d.at(1, 0), DepValue::Backward);
  // t2 always messages t4 when it runs, t4 sometimes runs without t2.
  EXPECT_EQ(d.at(1, 3), DepValue::Forward);
  EXPECT_EQ(d.at(3, 1), DepValue::MaybeBackward);
  // Still no message-evidence for the pair (t1,t4).
  EXPECT_EQ(d.at(0, 3), DepValue::Parallel);
}

}  // namespace
}  // namespace bbmg
