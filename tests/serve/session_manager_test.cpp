// SessionManager: the concurrency contract.  The headline property is
// determinism — a session's served model is byte-identical to what a
// single-threaded RobustOnlineLearner computes from the same event
// sequence, no matter how many sessions and producer threads run at once —
// plus backpressure accounting, drain/snapshot freshness, and probe
// conformance verdicts.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "durable/wal.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/random_model.hpp"
#include "lattice/matrix_io.hpp"
#include "robust/fault_injector.hpp"
#include "serve/session_manager.hpp"
#include "sim/simulator.hpp"
#include "trace/binary_codec.hpp"

namespace bbmg {
namespace {

struct Workload {
  Trace clean;
  std::vector<std::vector<Event>> raw_periods;  // possibly corrupted
};

/// Per-seed workload: a simulated system plus a seeded corruption of its
/// trace, so both the clean learning path and the sanitizer/quarantine
/// path are exercised.
Workload make_workload(std::uint64_t seed, std::size_t periods = 10) {
  RandomModelParams params;
  params.num_tasks = 6 + seed % 4;
  params.num_layers = 3;
  params.seed = seed + 1;
  SimConfig cfg;
  cfg.seed = seed * 17 + 3;
  Workload w;
  w.clean = simulate_trace(random_model(params), periods, cfg);
  FaultInjector injector(FaultSpec::uniform(0.03, seed));
  w.raw_periods = injector.corrupt(w.clean).periods;
  return w;
}

/// The single-threaded reference: same config, same periods, same order.
RobustSnapshot offline_reference(const Workload& w) {
  RobustOnlineLearner learner(w.clean.task_names(), RobustConfig{});
  for (const auto& events : w.raw_periods) {
    (void)learner.observe_raw_period(events);
  }
  return learner.full_snapshot();
}

void expect_snapshots_identical(const RobustSnapshot& served,
                                const RobustSnapshot& offline,
                                const std::vector<std::string>& names) {
  // Byte-identical models: the full hypothesis sets, their serialized
  // dLUB summaries, and the ingestion accounting must all agree.
  EXPECT_EQ(served.result.hypotheses, offline.result.hypotheses);
  EXPECT_EQ(matrix_to_string(served.result.lub(), names),
            matrix_to_string(offline.result.lub(), names));
  EXPECT_EQ(served.periods_seen, offline.periods_seen);
  EXPECT_EQ(served.periods_learned, offline.periods_learned);
  EXPECT_EQ(served.periods_quarantined, offline.periods_quarantined);
  EXPECT_EQ(served.repairs, offline.repairs);
  EXPECT_EQ(served.health, offline.health);
}

// The acceptance-criterion test: >= 8 sessions fed from >= 4 producer
// threads over a small worker pool; every session's final model equals the
// offline single-threaded learner's, for seeds 0..7.
TEST(SessionManagerConcurrency, EightSessionsFourProducersMatchOffline) {
  const std::size_t kSessions = 8;
  const std::size_t kProducers = 4;

  std::vector<Workload> workloads;
  for (std::uint64_t seed = 0; seed < kSessions; ++seed) {
    workloads.push_back(make_workload(seed));
  }

  ManagerConfig config;
  config.workers = 3;  // not a divisor of 8: shards share workers unevenly
  config.queue_capacity = 4;  // small: producers block, workers interleave
  SessionManager manager(config);

  std::vector<SessionId> ids;
  for (const Workload& w : workloads) {
    ids.push_back(manager.open_session(w.clean.task_names()));
  }

  // Producer p owns sessions {p, p + kProducers, ...}: one producer per
  // session (per-session submission order), many sessions per producer.
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t s = p; s < kSessions; s += kProducers) {
        for (const auto& events : workloads[s].raw_periods) {
          const SubmitStatus status =
              manager.submit(ids[s], events, /*block=*/true);
          ASSERT_EQ(status, SubmitStatus::Accepted);
        }
      }
    });
  }
  for (auto& t : producers) t.join();

  for (std::size_t s = 0; s < kSessions; ++s) {
    manager.drain(ids[s]);
    const QueryResult q = manager.query(ids[s]);
    expect_snapshots_identical(*q.snapshot, offline_reference(workloads[s]),
                               workloads[s].clean.task_names());
    const SessionStats stats = manager.stats(ids[s]);
    EXPECT_EQ(stats.accepted, workloads[s].raw_periods.size());
    EXPECT_EQ(stats.processed, workloads[s].raw_periods.size());
    EXPECT_EQ(stats.rejected, 0u);
  }
}

TEST(SessionManager, SingleSessionMatchesOfflineOnCleanTrace) {
  SimConfig cfg;
  cfg.seed = 7;
  const Trace gm = simulate_trace(gm_case_study_model(), 9, cfg);

  SessionManager manager(ManagerConfig{2, 16, {}});
  const SessionId id = manager.open_session(gm.task_names());
  for (const Period& p : gm.periods()) {
    ASSERT_EQ(manager.submit(id, p.to_events()), SubmitStatus::Accepted);
  }
  manager.drain(id);

  RobustOnlineLearner offline(gm.task_names(), RobustConfig{});
  for (const Period& p : gm.periods()) {
    (void)offline.observe_raw_period(p.to_events());
  }
  expect_snapshots_identical(*manager.query(id).snapshot,
                             offline.full_snapshot(), gm.task_names());
}

TEST(SessionManager, OverflowIsRejectedAndAccounted) {
  // One worker whose queue is blocked by a long-running period: capacity 1
  // fills, further non-blocking submits must overflow.
  ManagerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  SessionManager manager(config);

  SimConfig cfg;
  cfg.seed = 3;
  const Trace t = simulate_trace(gm_case_study_model(), 4, cfg);
  const SessionId id = manager.open_session(t.task_names());

  const std::vector<Event> period = t.periods()[0].to_events();
  std::size_t accepted = 0, overflowed = 0;
  // Flood far beyond capacity: the worker can drain some entries while we
  // push, but it cannot keep up with an in-memory loop of 200 submissions,
  // so at least one must bounce — and every bounce must be accounted.
  for (int i = 0; i < 200; ++i) {
    const SubmitStatus status = manager.submit(id, period, /*block=*/false);
    if (status == SubmitStatus::Accepted) {
      ++accepted;
    } else {
      ASSERT_EQ(status, SubmitStatus::Overflow);
      ++overflowed;
    }
  }
  EXPECT_GT(overflowed, 0u);
  manager.drain(id);
  const SessionStats stats = manager.stats(id);
  EXPECT_EQ(stats.accepted, accepted);
  EXPECT_EQ(stats.rejected, overflowed);
  EXPECT_EQ(stats.processed, accepted);
}

TEST(SessionManager, QueriesNeverBlockOnIngestionAndSeeAPrefixModel) {
  SimConfig cfg;
  cfg.seed = 11;
  const Trace t = simulate_trace(gm_case_study_model(), 6, cfg);
  SessionManager manager(ManagerConfig{1, 64, {}});
  const SessionId id = manager.open_session(t.task_names());

  // Query before any data: the published empty-model snapshot.
  const QueryResult empty = manager.query(id);
  EXPECT_EQ(empty.snapshot->periods_seen, 0u);
  EXPECT_EQ(empty.snapshot->result.hypotheses.size(), 1u);

  for (const Period& p : t.periods()) {
    ASSERT_EQ(manager.submit(id, p.to_events()), SubmitStatus::Accepted);
    // A query between submissions sees a model for SOME prefix of what was
    // accepted so far — never more than accepted, never torn.
    const QueryResult q = manager.query(id);
    EXPECT_LE(q.snapshot->periods_seen, manager.stats(id).accepted);
  }
  manager.drain(id);
  EXPECT_EQ(manager.query(id).snapshot->periods_seen, t.num_periods());
}

TEST(SessionManager, ProbeVerdicts) {
  SimConfig cfg;
  cfg.seed = 5;
  const Trace t = simulate_trace(gm_case_study_model(), 9, cfg);
  SessionManager manager(ManagerConfig{2, 32, {}});
  const SessionId id = manager.open_session(t.task_names());
  for (const Period& p : t.periods()) {
    ASSERT_EQ(manager.submit(id, p.to_events()), SubmitStatus::Accepted);
  }
  manager.drain(id);

  // A period the model was trained on conforms.
  const std::vector<Event> seen = t.periods()[0].to_events();
  EXPECT_EQ(manager.query(id, &seen).verdict, ProbeVerdict::Conforms);

  // A fabricated period running only one task violates the learned
  // requirements (the GM model's tasks never execute alone).
  std::vector<Event> lone{Event::task_start(0, TaskId{0u}),
                          Event::task_end(1000, TaskId{0u})};
  const QueryResult bad = manager.query(id, &lone);
  EXPECT_EQ(bad.verdict, ProbeVerdict::Violates);
  EXPECT_FALSE(bad.violations.empty());

  // Hopeless garbage is quarantined by the sanitizer: unverifiable.
  std::vector<Event> garbage{Event::task_end(5, TaskId{0u})};
  EXPECT_EQ(manager.query(id, &garbage).verdict, ProbeVerdict::Unverifiable);
}

TEST(SessionManager, ClosedSessionsRefuseSubmissions) {
  SessionManager manager(ManagerConfig{1, 8, {}});
  const SessionId id = manager.open_session({"a", "b"});
  EXPECT_TRUE(manager.close_session(id));
  EXPECT_EQ(manager.submit(id, {}), SubmitStatus::UnknownSession);
  EXPECT_EQ(manager.submit(SessionId{99u}, {}), SubmitStatus::UnknownSession);
  EXPECT_FALSE(manager.close_session(SessionId{99u}));
}

TEST(SessionManagerDurable, WalFailurePoisonsOnlyItsSession) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/bbmg_mgr_wal_failure";
  fs::remove_all(dir);
  ManagerConfig config{1, 8, durable::DurableConfig{dir, 1, 0}};
  SessionManager manager(config);
  const SessionId id = manager.open_session({"a", "b"});

  // A period whose WAL record would exceed the payload cap: append raises
  // inside process(); the worker must contain it — poisoning the session,
  // not std::terminate-ing the daemon.
  const std::size_t too_many =
      (durable::kMaxWalRecordPayload - 4) / kEncodedEventSize + 1;
  std::vector<Event> huge(too_many, Event::task_start(1, TaskId{0u}));
  ASSERT_EQ(manager.submit(id, std::move(huge)), SubmitStatus::Accepted);
  manager.drain(id);  // wakes via the failure instead of hanging forever
  EXPECT_EQ(manager.submit(id, {Event::task_start(1, TaskId{0u})}),
            SubmitStatus::Failed);

  // The worker survives: a fresh session on the same shard keeps learning.
  SimConfig cfg;
  cfg.seed = 4;
  const Trace t = simulate_trace(gm_case_study_model(), 3, cfg);
  const SessionId healthy = manager.open_session(t.task_names());
  for (const Period& p : t.periods()) {
    ASSERT_EQ(manager.submit(healthy, p.to_events()), SubmitStatus::Accepted);
  }
  manager.drain(healthy);
  EXPECT_EQ(manager.stats(healthy).processed, t.num_periods());
}

TEST(SessionManagerDurable, HugeRecoveredSessionIdIsIgnored) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/bbmg_mgr_huge_id";
  fs::remove_all(dir);
  const durable::DurableConfig dconfig{dir, 1, 0};

  // Forge valid durable state under an absurd session id (a mangled data
  // directory): honoring it would drive a multi-GB sessions_ resize.
  durable::SessionMeta meta;
  meta.session = (1u << 20) + 1;
  meta.task_names = {"a", "b"};
  meta.snapshot_interval = 1;
  {
    const RobustOnlineLearner learner(meta.task_names, meta.config);
    (void)durable::SessionStore::create(dconfig, meta, learner, {});
  }

  SessionManager manager(ManagerConfig{1, 8, dconfig});
  EXPECT_EQ(manager.num_sessions(), 0u);
  bool noted = false;
  for (const std::string& d : manager.recovery().diagnostics) {
    if (d.find("beyond the recoverable cap") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted);
}

TEST(SessionManager, StopFinishesQueuedWork) {
  SimConfig cfg;
  cfg.seed = 2;
  const Trace t = simulate_trace(gm_case_study_model(), 5, cfg);
  auto manager = std::make_unique<SessionManager>(ManagerConfig{2, 64, {}});
  const SessionId id = manager->open_session(t.task_names());
  for (const Period& p : t.periods()) {
    ASSERT_EQ(manager->submit(id, p.to_events()), SubmitStatus::Accepted);
  }
  manager->stop();  // must drain the queues before joining
  EXPECT_EQ(manager->stats(id).processed, t.num_periods());
  manager.reset();
}

}  // namespace
}  // namespace bbmg
