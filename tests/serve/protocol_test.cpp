// Wire protocol framing: every message schema round-trips exactly through
// its frame; the incremental decoder reassembles frames from arbitrary
// chunk boundaries; truncated and corrupted frames are rejected.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gen/scenarios.hpp"
#include "serve/protocol.hpp"

namespace bbmg {
namespace {

Frame through_decoder(const Frame& frame, std::size_t chunk_size) {
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, frame);
  FrameDecoder decoder;
  std::optional<Frame> out;
  for (std::size_t i = 0; i < bytes.size(); i += chunk_size) {
    const std::size_t n = std::min(chunk_size, bytes.size() - i);
    decoder.feed(bytes.data() + i, n);
    if (auto f = decoder.next()) {
      EXPECT_FALSE(out.has_value()) << "frame decoded twice";
      out = std::move(f);
    }
  }
  EXPECT_TRUE(out.has_value()) << "frame never completed";
  EXPECT_EQ(decoder.buffered(), 0u);
  return std::move(*out);
}

TEST(Protocol, HelloRoundTripAnyChunking) {
  for (const std::size_t chunk : {1u, 2u, 3u, 7u, 64u}) {
    const Frame f = through_decoder(HelloMsg{}.to_frame(FrameType::Hello), chunk);
    EXPECT_EQ(f.type, FrameType::Hello);
    const HelloMsg m = HelloMsg::decode(f);
    EXPECT_EQ(m.magic, kServeMagic);
    EXPECT_EQ(m.version, kServeProtocolVersion);
  }
}

TEST(Protocol, OpenSessionRoundTrip) {
  OpenSessionMsg msg;
  msg.task_names = {"brake", "abs", "esp"};
  msg.bound = 8;
  msg.policy = SanitizePolicy::Quarantine;
  msg.snapshot_interval = 4;
  const OpenSessionMsg back =
      OpenSessionMsg::decode(through_decoder(msg.to_frame(), 5));
  EXPECT_EQ(back.task_names, msg.task_names);
  EXPECT_EQ(back.bound, 8u);
  EXPECT_EQ(back.policy, SanitizePolicy::Quarantine);
  EXPECT_EQ(back.snapshot_interval, 4u);
}

TEST(Protocol, EventsRoundTrip) {
  EventsMsg msg;
  msg.session = 3;
  msg.events = {Event::task_start(10, TaskId{0u}),
                Event::msg_rise(12, 0x5a5),
                Event::msg_fall(14, 0x5a5),
                Event::task_end(20, TaskId{0u})};
  const EventsMsg back = EventsMsg::decode(through_decoder(msg.to_frame(), 3));
  ASSERT_EQ(back.events.size(), 4u);
  EXPECT_EQ(back.session, 3u);
  EXPECT_EQ(back.events[1].can_id, 0x5a5u);
  EXPECT_EQ(back.events[3].time, 20u);
}

TEST(Protocol, QueryRoundTripWithAndWithoutProbe) {
  QueryMsg plain;
  plain.session = 9;
  plain.drain = false;
  const QueryMsg plain_back = QueryMsg::decode(through_decoder(plain.to_frame(), 4));
  EXPECT_EQ(plain_back.session, 9u);
  EXPECT_FALSE(plain_back.drain);
  EXPECT_FALSE(plain_back.probe.has_value());

  QueryMsg probed;
  probed.session = 2;
  probed.probe = std::vector<Event>{Event::task_start(1, TaskId{1u}),
                                    Event::task_end(2, TaskId{1u})};
  const QueryMsg probed_back =
      QueryMsg::decode(through_decoder(probed.to_frame(), 4));
  ASSERT_TRUE(probed_back.probe.has_value());
  EXPECT_EQ(probed_back.probe->size(), 2u);
  EXPECT_TRUE(probed_back.drain);
}

TEST(Protocol, ModelReplyRoundTripCarriesTheMatrixExactly) {
  ModelReplyMsg msg;
  msg.session = 1;
  msg.health = 1;
  msg.periods_seen = 27;
  msg.periods_learned = 26;
  msg.periods_quarantined = 1;
  msg.repairs = 3;
  msg.converged = 1;
  msg.num_hypotheses = 1;
  msg.verdict = static_cast<std::uint8_t>(ProbeVerdict::Conforms);
  DependencyMatrix m(4);
  m.set_pair(0, 1, DepValue::Forward);
  m.set(2, 3, DepValue::MaybeBackward);
  msg.lub = m;
  msg.weight = m.weight();
  const ModelReplyMsg back =
      ModelReplyMsg::decode(through_decoder(msg.to_frame(), 6));
  EXPECT_EQ(back.periods_seen, 27u);
  EXPECT_EQ(back.periods_quarantined, 1u);
  EXPECT_EQ(back.weight, m.weight());
  EXPECT_TRUE(back.lub == m);
}

TEST(Protocol, ErrorReplyRoundTrip) {
  ErrorReplyMsg msg{WireErrorCode::Overflow, "shard queue full"};
  const ErrorReplyMsg back =
      ErrorReplyMsg::decode(through_decoder(msg.to_frame(), 2));
  EXPECT_EQ(back.code, WireErrorCode::Overflow);
  EXPECT_EQ(back.message, "shard queue full");
}

TEST(Protocol, DecoderHoldsPartialFrameUntilComplete) {
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, HelloMsg{}.to_frame(FrameType::Hello));
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 1);
  EXPECT_FALSE(decoder.next().has_value());
  decoder.feed(bytes.data() + bytes.size() - 1, 1);
  EXPECT_TRUE(decoder.next().has_value());
}

TEST(Protocol, DecoderRejectsFrameTypeZero) {
  // Type 0 was never assigned by any protocol version; only corruption
  // produces it, so (unlike high unknown types) it is not skippable.
  std::vector<std::uint8_t> bytes;
  append_u32(bytes, 0);
  append_u8(bytes, 0);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW((void)decoder.next(), Error);
}

TEST(Protocol, DecoderSkipsUnknownFrameTypesMidStream) {
  // A newer peer's extension frame sits between two known ones: the
  // decoder consumes it whole (its declared length is still bounded by
  // the payload cap), counts it, and keeps parsing the stream.
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, HelloMsg{}.to_frame(FrameType::Hello));
  append_u32(bytes, 3);
  append_u8(bytes, 0x7f);  // far beyond kMaxFrameType
  bytes.push_back(0xde);
  bytes.push_back(0xad);
  bytes.push_back(0x01);
  append_frame(bytes, SessionRefMsg{7}.to_frame(FrameType::Resume));

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const std::optional<Frame> first = decoder.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, FrameType::Hello);
  const std::optional<Frame> second = decoder.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, FrameType::Resume);
  EXPECT_EQ(decoder.skipped(), 1u);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Protocol, DecoderSkipsUnknownFrameSplitAcrossFeeds) {
  // The skip also works when the unknown frame arrives fragmented: the
  // decoder must wait for the whole declared length before skipping.
  std::vector<std::uint8_t> unknown;
  append_u32(unknown, 4);
  append_u8(unknown, 0x40);
  for (std::uint8_t b : {1, 2, 3, 4}) unknown.push_back(b);
  std::vector<std::uint8_t> tail;
  append_frame(tail, SessionRefMsg{9}.to_frame(FrameType::Resume));

  FrameDecoder decoder;
  decoder.feed(unknown.data(), 6);  // header + 1 of 4 payload bytes
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.skipped(), 0u);
  decoder.feed(unknown.data() + 6, unknown.size() - 6);
  decoder.feed(tail.data(), tail.size());
  const std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::Resume);
  EXPECT_EQ(decoder.skipped(), 1u);
}

TEST(Protocol, DecoderRejectsOversizedLength) {
  std::vector<std::uint8_t> bytes;
  append_u32(bytes, 0xffffffffu);
  append_u8(bytes, static_cast<std::uint8_t>(FrameType::Hello));
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_THROW((void)decoder.next(), Error);
}

TEST(Protocol, TruncatedPayloadsAreRejectedByEverySchema) {
  OpenSessionMsg open;
  open.task_names = {"a", "b"};
  const Frame f = open.to_frame();
  for (std::size_t cut = 0; cut < f.payload.size(); ++cut) {
    Frame shorter;
    shorter.type = f.type;
    shorter.payload.assign(f.payload.begin(),
                           f.payload.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)OpenSessionMsg::decode(shorter), Error)
        << "payload prefix of " << cut << " bytes decoded";
  }
}

TEST(Protocol, GarbagePayloadBitsAreRejected) {
  QueryMsg msg;
  msg.session = 1;
  Frame f = msg.to_frame();
  f.payload.back() = 0xf0;  // unknown flag bits
  EXPECT_THROW((void)QueryMsg::decode(f), Error);
}

TEST(Protocol, MatrixPayloadRejectsInvalidValues) {
  std::vector<std::uint8_t> bytes;
  append_u16(bytes, 2);
  append_u8(bytes, 0);
  append_u8(bytes, 7);  // not a DepValue
  append_u8(bytes, 1);
  append_u8(bytes, 0);
  ByteReader r(bytes.data(), bytes.size());
  EXPECT_THROW((void)read_matrix_payload(r), Error);
}

TEST(Protocol, MatrixPayloadRejectsNonParallelDiagonal) {
  std::vector<std::uint8_t> bytes;
  append_u16(bytes, 1);
  append_u8(bytes, static_cast<std::uint8_t>(DepValue::Forward));
  ByteReader r(bytes.data(), bytes.size());
  EXPECT_THROW((void)read_matrix_payload(r), Error);
}

TEST(Protocol, MetricsRequestRoundTrip) {
  const Frame f = through_decoder(MetricsRequestMsg{}.to_frame(), 3);
  EXPECT_EQ(f.type, FrameType::MetricsRequest);
  EXPECT_TRUE(f.payload.empty());
  (void)MetricsRequestMsg::decode(f);
}

TEST(Protocol, MetricsResponseRoundTripAnyChunking) {
  MetricsResponseMsg msg;
  msg.snapshot.counters.push_back({"bbmg_learner_periods_total", 42});
  msg.snapshot.counters.push_back(
      {"bbmg_robust_defects_total{kind=\"orphan_task_end\"}", 7});
  msg.snapshot.gauges.push_back({"bbmg_serve_queue_depth{worker=\"1\"}", -3});
  obs::HistogramSample h;
  h.name = "bbmg_serve_query_latency_us";
  h.upper_bounds = {1, 4, 16};
  h.counts = {5, 2, 0, 1};
  h.sum = 123;
  h.count = 8;
  msg.snapshot.histograms.push_back(h);

  for (const std::size_t chunk : {1u, 5u, 64u}) {
    const MetricsResponseMsg back =
        MetricsResponseMsg::decode(through_decoder(msg.to_frame(), chunk));
    ASSERT_EQ(back.snapshot.counters.size(), 2u);
    EXPECT_EQ(back.snapshot.counters[0].name, "bbmg_learner_periods_total");
    EXPECT_EQ(back.snapshot.counters[0].value, 42u);
    EXPECT_EQ(back.snapshot.counter_value(
                  "bbmg_robust_defects_total{kind=\"orphan_task_end\"}"),
              7u);
    ASSERT_EQ(back.snapshot.gauges.size(), 1u);
    EXPECT_EQ(back.snapshot.gauges[0].value, -3);
    ASSERT_EQ(back.snapshot.histograms.size(), 1u);
    const obs::HistogramSample& hh = back.snapshot.histograms[0];
    EXPECT_EQ(hh.upper_bounds, h.upper_bounds);
    EXPECT_EQ(hh.counts, h.counts);
    EXPECT_EQ(hh.sum, 123u);
    EXPECT_EQ(hh.count, 8u);
  }
}

TEST(Protocol, MetricsResponseRejectsTruncatedPayload) {
  MetricsResponseMsg msg;
  msg.snapshot.counters.push_back({"bbmg_a_total", 1});
  const Frame f = msg.to_frame();
  for (std::size_t cut = 0; cut < f.payload.size(); ++cut) {
    Frame shorter;
    shorter.type = f.type;
    shorter.payload.assign(f.payload.begin(),
                           f.payload.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)MetricsResponseMsg::decode(shorter), Error)
        << "payload prefix of " << cut << " bytes decoded";
  }
}

}  // namespace
}  // namespace bbmg
