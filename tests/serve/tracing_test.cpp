// End-to-end causal tracing (PR 5): the v3 trace envelope on the wire,
// v2 backward compatibility, parent/child id integrity across concurrent
// traced sessions, and the merged Chrome export with matching flow ids.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gen/gm_case_study.hpp"
#include "obs/span.hpp"
#include "obs/trace_context.hpp"
#include "obs/trace_export.hpp"
#include "serve/net.hpp"
#include "serve/resilient_client.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

Frame round_trip(const Frame& frame) {
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, frame);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  auto out = decoder.next();
  EXPECT_TRUE(out.has_value());
  return std::move(*out);
}

TEST(TraceWire, TraceContextEnvelopeRoundTrips) {
  TraceContextMsg msg;
  msg.trace_id = 0xdeadbeefcafef00dull;
  msg.span_id = 0x0123456789abcdefull;
  const TraceContextMsg back = TraceContextMsg::decode(round_trip(msg.to_frame()));
  EXPECT_EQ(back.trace_id, msg.trace_id);
  EXPECT_EQ(back.span_id, msg.span_id);
}

TEST(TraceWire, TraceDumpRequestRoundTrips) {
  TraceDumpRequestMsg msg;
  msg.drain = false;
  msg.flight = true;
  const TraceDumpRequestMsg back =
      TraceDumpRequestMsg::decode(round_trip(msg.to_frame()));
  EXPECT_FALSE(back.drain);
  EXPECT_TRUE(back.flight);
}

TEST(TraceWire, TraceDumpResponseRoundTripsSpansAndFlight) {
  TraceDumpResponseMsg msg;
  msg.server_now_ns = 123456789;
  msg.drops = 7;
  WireSpan s;
  s.name = "server.apply";
  s.tid = 3;
  s.start_ns = 1000;
  s.duration_ns = 2500;
  s.trace_id = 0xa1;
  s.span_id = 0xb2;
  s.parent_id = 0xc3;
  s.flow = static_cast<std::uint8_t>(obs::FlowDir::In);
  msg.spans.push_back(s);
  // Flight text larger than one string chunk (kMaxNameLength) must chunk
  // transparently through the codec.
  msg.flight = std::string(3 * kMaxNameLength + 17, 'f');
  msg.flight += "tail-marker";
  const TraceDumpResponseMsg back =
      TraceDumpResponseMsg::decode(round_trip(msg.to_frame()));
  EXPECT_EQ(back.server_now_ns, 123456789u);
  EXPECT_EQ(back.drops, 7u);
  ASSERT_EQ(back.spans.size(), 1u);
  EXPECT_EQ(back.spans[0].name, "server.apply");
  EXPECT_EQ(back.spans[0].tid, 3u);
  EXPECT_EQ(back.spans[0].start_ns, 1000u);
  EXPECT_EQ(back.spans[0].duration_ns, 2500u);
  EXPECT_EQ(back.spans[0].trace_id, 0xa1u);
  EXPECT_EQ(back.spans[0].span_id, 0xb2u);
  EXPECT_EQ(back.spans[0].parent_id, 0xc3u);
  EXPECT_EQ(back.spans[0].flow, static_cast<std::uint8_t>(obs::FlowDir::In));
  EXPECT_EQ(back.flight, msg.flight);
}

// A v2 client (one that has never heard of trace envelopes) must still be
// served: the server accepts the older Hello and echoes the negotiated
// version 2 back.
TEST(TraceWire, V2HelloAgainstV3ServerNegotiatesDown) {
  Server server;
  server.start();
  const int fd = net::connect_tcp("127.0.0.1", server.port());
  ASSERT_GE(fd, 0);
  HelloMsg hello;
  hello.version = 2;
  net::write_frame(fd, hello.to_frame(FrameType::Hello));
  FrameDecoder decoder;
  const auto ack = net::read_frame(fd, decoder);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, FrameType::HelloAck);
  EXPECT_EQ(HelloMsg::decode(*ack).version, 2u);
  net::close_socket(fd);
  server.stop();
}

Trace gm_trace(std::uint64_t seed, std::size_t periods) {
  SimConfig cfg;
  cfg.seed = seed;
  return simulate_trace(gm_case_study_model(), periods, cfg);
}

// The tentpole property: 8 concurrent traced sessions, and afterwards
// every server-side stage span belongs to a trace some client request
// minted, with every parent id resolving inside its own trace.  (Client
// and server share one process here, hence one span ring — the dump holds
// both halves, which is exactly what the integrity check needs.)
TEST(TracingEndToEnd, ConcurrentSessionsKeepCausalChainsIntact) {
  if (!obs::kEnabled) GTEST_SKIP() << "spans compiled out (BBMG_OBS=OFF)";
  obs::SpanRing& ring = obs::SpanRing::instance();
  ring.set_capacity(1 << 15);  // room for every span of the test
  ring.set_enabled(true);
  ring.clear();

  ServerConfig config;
  config.manager.workers = 3;
  Server server(config);
  server.start();

  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kPeriods = 5;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kSessions; ++c) {
    threads.emplace_back([&, c] {
      const Trace trace = gm_trace(100 + c, kPeriods);
      ResilientClient client;
      client.set_tracing(true);
      client.connect("127.0.0.1", server.port());
      const std::uint32_t session = client.open_session(trace.task_names());
      for (const Period& p : trace.periods()) {
        client.send_period(session, p.to_events());
      }
      (void)client.query(session, /*drain=*/true);
    });
  }
  for (std::thread& t : threads) t.join();

  // Fetch over the wire like a real operator (also covers the dump path).
  ServeClient probe;
  probe.connect("127.0.0.1", server.port());
  const TraceDumpResponseMsg dump = probe.fetch_trace_dump(/*drain=*/true);
  server.stop();
  ring.set_enabled(false);

  ASSERT_EQ(dump.drops, 0u) << "ring too small for the test's span volume";
  // Plain stage timers (learner.period &c) share the ring with trace_id 0;
  // the causal checks cover only spans that claim a trace.
  std::map<std::uint64_t, const WireSpan*> by_span_id;
  std::set<std::uint64_t> client_traces;
  for (const WireSpan& s : dump.spans) {
    if (s.trace_id == 0) continue;
    ASSERT_NE(s.span_id, 0u);
    EXPECT_TRUE(by_span_id.emplace(s.span_id, &s).second)
        << "duplicate span id " << s.span_id;
    if (s.name.rfind("client.", 0) == 0) client_traces.insert(s.trace_id);
  }
  EXPECT_GE(client_traces.size(), kSessions * kPeriods)
      << "every traced request mints its own trace id";

  std::size_t server_spans = 0;
  for (const WireSpan& s : dump.spans) {
    if (s.trace_id == 0) continue;
    if (s.name.rfind("client.", 0) == 0) {
      EXPECT_EQ(s.parent_id, 0u) << "client spans are roots";
      continue;
    }
    ++server_spans;
    EXPECT_TRUE(client_traces.count(s.trace_id))
        << s.name << " carries a trace no client minted";
    ASSERT_NE(s.parent_id, 0u) << s.name << " has no parent";
    const auto parent = by_span_id.find(s.parent_id);
    ASSERT_NE(parent, by_span_id.end())
        << s.name << " parent id does not resolve";
    EXPECT_EQ(parent->second->trace_id, s.trace_id)
        << s.name << " parent belongs to another trace";
  }
  // decode + queue_wait + apply + ack at minimum, per period, per session.
  EXPECT_GE(server_spans, kSessions * kPeriods * 4);
}

// -- Chrome export validity ------------------------------------------------

/// Minimal structural JSON check: balanced brackets/braces outside
/// strings, no trailing garbage.  (No JSON library in this repo; the CI
/// job runs the real `jq` validation against a live daemon.)
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '[' || ch == '{') ++depth;
    else if (ch == ']' || ch == '}') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::vector<std::string> extract_flow_ids(const std::string& json,
                                          const std::string& ph) {
  // Events look like {..., "ph": "s", ..., "id": "a1b2..."}; collect the
  // id of every event with the given phase.
  std::vector<std::string> ids;
  const std::string ph_key = "\"ph\": \"" + ph + "\"";
  std::size_t pos = 0;
  while ((pos = json.find(ph_key, pos)) != std::string::npos) {
    const std::size_t obj_end = json.find('}', pos);
    const std::size_t id_key = json.find("\"id\": \"", pos);
    if (id_key != std::string::npos && id_key < obj_end) {
      const std::size_t start = id_key + 7;
      const std::size_t end = json.find('"', start);
      ids.push_back(json.substr(start, end - start));
    }
    pos += ph_key.size();
  }
  return ids;
}

TEST(ChromeExport, MergedExportIsValidJsonWithMatchingFlowIds) {
  // A hand-built two-process trace: client root (flow Out) and server
  // stage (flow In) share a trace id; a second trace does the same.
  std::vector<obs::ExportSpan> spans;
  for (std::uint64_t t : {0x11ull, 0x22ull}) {
    obs::ExportSpan out;
    out.name = "client.send_period";
    out.pid = 1;
    out.start_ns = 1000 * t;
    out.duration_ns = 5000;
    out.trace_id = t;
    out.span_id = t * 10 + 1;
    out.flow = static_cast<std::uint8_t>(obs::FlowDir::Out);
    spans.push_back(out);
    obs::ExportSpan in;
    in.name = "server.decode";
    in.pid = 2;
    in.start_ns = 1000 * t + 2000;
    in.duration_ns = 300;
    in.trace_id = t;
    in.span_id = t * 10 + 2;
    in.parent_id = t * 10 + 1;
    in.flow = static_cast<std::uint8_t>(obs::FlowDir::In);
    spans.push_back(in);
  }
  const std::string json = to_chrome_trace_json(spans);
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.front(), '[');

  const std::vector<std::string> starts = extract_flow_ids(json, "s");
  const std::vector<std::string> finishes = extract_flow_ids(json, "f");
  ASSERT_EQ(starts.size(), 2u);
  ASSERT_EQ(finishes.size(), 2u);
  EXPECT_EQ(std::set<std::string>(starts.begin(), starts.end()),
            std::set<std::string>(finishes.begin(), finishes.end()));
  // Complete events carry the causal ids as args.
  EXPECT_NE(json.find("\"parent\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
}

}  // namespace
}  // namespace bbmg
