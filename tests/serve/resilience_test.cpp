// Connection-resilience policies: the server's idle-connection reaper
// (--idle-timeout) and the client's per-operation retry budget with its
// typed RetriesExhausted error.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/resilient_client.hpp"
#include "serve/server.hpp"

namespace bbmg {
namespace {

std::uint64_t idle_closed_total() {
  return obs::MetricsRegistry::instance().snapshot().counter_value(
      "bbmg_serve_connections_idle_closed_total");
}

TEST(IdleTimeout, SilentConnectionsAreClosedAndCounted) {
  ServerConfig config;
  config.idle_timeout_ms = 100;
  Server server(config);
  server.start();
  const std::uint64_t before = idle_closed_total();

  ServeClient client;
  client.connect("127.0.0.1", server.port());
  // Say nothing: the server's receive deadline fires and it hangs up
  // quietly (a counted idle close, not an error).  The counter is the
  // prompt signal when instrumentation is compiled in; with BBMG_OBS=OFF
  // it is a no-op, so fall back to waiting out the window.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  if (obs::kEnabled) {
    while (idle_closed_total() == before &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(idle_closed_total(), before + 1);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    EXPECT_EQ(idle_closed_total(), before);  // updates compiled out
  }
  // Either way the hang-up must be visible to the client: the connection
  // is dead, so the next request fails instead of hanging.
  EXPECT_THROW((void)client.open_session({"a", "b"}), Error);
  server.stop();
}

TEST(IdleTimeout, ActiveConnectionsOutliveManyTimeoutWindows) {
  ServerConfig config;
  config.idle_timeout_ms = 150;
  Server server(config);
  server.start();
  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const std::uint32_t session = client.open_session({"a", "b"});
  // Each request re-arms the deadline; chatting slower than the window but
  // faster than silence keeps the connection alive indefinitely.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const WireSnapshot snap = client.query(session, /*drain=*/false);
    EXPECT_EQ(snap.session, session);
  }
  server.stop();
}

/// A port with nothing listening: bind, learn the number, release it.
std::uint16_t dead_port() {
  const net::Listener listener = net::listen_tcp(0, 1);
  const std::uint16_t port = listener.port;
  net::close_socket(listener.fd);
  return port;
}

TEST(RetryBudget, BudgetExhaustionThrowsTypedErrorPromptly) {
  RetryConfig config;
  config.max_retries = 100000;  // the budget, not the count, must stop it
  config.base_backoff_ms = 1;
  config.max_backoff_ms = 8;
  config.request_timeout_ms = 200;
  config.retry_budget_ms = 150;
  ResilientClient client(config);

  const auto start = std::chrono::steady_clock::now();
  try {
    client.connect("127.0.0.1", dead_port());
    FAIL() << "connect to a dead port succeeded";
  } catch (const RetriesExhausted& e) {
    EXPECT_GE(e.attempts(), 1u);
    EXPECT_GE(e.elapsed_ms(), config.retry_budget_ms);
    EXPECT_FALSE(e.last_error().empty());
    EXPECT_NE(std::string(e.what()).find("retries exhausted"),
              std::string::npos);
  }
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Well under what 100000 refused connects with backoff would take: the
  // budget cut the loop short.
  EXPECT_LT(elapsed_ms, 10000);
}

TEST(RetryBudget, MaxRetriesStillSurfaceTheTypedError) {
  RetryConfig config;
  config.max_retries = 2;
  config.base_backoff_ms = 1;
  config.max_backoff_ms = 2;
  config.retry_budget_ms = 0;  // budget off: the count is the limit
  ResilientClient client(config);
  try {
    client.connect("127.0.0.1", dead_port());
    FAIL() << "connect to a dead port succeeded";
  } catch (const RetriesExhausted& e) {
    EXPECT_EQ(e.attempts(), config.max_retries + 1);  // initial try + retries
  }
}

TEST(RetryBudget, ColdStartRampUpRespectsBudgetNotRetryCount) {
  // Regression: connection-refused during a server's cold start fails in
  // microseconds, so a retry COUNT burns out long before the time the
  // caller granted.  With a budget configured, the budget alone governs:
  // a client started before its server must keep knocking until the
  // listener appears, even with a tiny max_retries.
  const std::uint16_t port = dead_port();
  RetryConfig config;
  config.max_retries = 2;  // would give up after ~3 ms under count rules
  config.base_backoff_ms = 1;
  config.max_backoff_ms = 16;
  config.retry_budget_ms = 5000;
  ResilientClient client(config);

  std::thread delayed_listen([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    ServerConfig sc;
    sc.port = port;
    Server server(sc);
    server.start();
    // Hold the listener long enough for the client to finish its business.
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    server.stop();
  });

  client.connect("127.0.0.1", port);
  const std::uint32_t session = client.open_session({"t0", "t1"});
  const WireSnapshot snap = client.query(session, /*drain=*/true);
  EXPECT_EQ(snap.session, session);
  delayed_listen.join();
}

TEST(RetryBudget, BudgetResetsBetweenOperations) {
  // The budget is per-operation, not per-client: a healthy op after a
  // slow one must start from a full budget.  Exercised against a live
  // server — connect (op 1), open (op 2), query (op 3) all within budget.
  Server server;
  server.start();
  RetryConfig config;
  config.retry_budget_ms = 2000;
  ResilientClient client(config);
  client.connect("127.0.0.1", server.port());
  const std::uint32_t session = client.open_session({"t0", "t1"});
  const WireSnapshot snap = client.query(session, /*drain=*/true);
  EXPECT_EQ(snap.session, session);
  server.stop();
}

}  // namespace
}  // namespace bbmg
