// Binary trace codec: exact round-trips over generated traces, and
// rejection of truncated / corrupted buffers (the malformed-corpus style of
// tests/trace, ported to the binary format).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/random_model.hpp"
#include "gen/scenarios.hpp"
#include "sim/simulator.hpp"
#include "trace/binary_codec.hpp"
#include "trace/serialize.hpp"

namespace bbmg {
namespace {

// Byte-for-byte equality through the text serializer: if the texts match,
// periods, events, times and task names all survived exactly.
void expect_traces_identical(const Trace& a, const Trace& b) {
  EXPECT_EQ(trace_to_string(a), trace_to_string(b));
}

TEST(BinaryCodec, RoundTripPaperExample) {
  const Trace t = paper_example_trace();
  expect_traces_identical(t, decode_trace(encode_trace(t)));
}

TEST(BinaryCodec, RoundTripGmCaseStudy) {
  SimConfig cfg;
  cfg.seed = 7;
  const Trace t = simulate_trace(gm_case_study_model(), 9, cfg);
  expect_traces_identical(t, decode_trace(encode_trace(t)));
}

TEST(BinaryCodec, RoundTripEmptyTrace) {
  const Trace t(std::vector<std::string>{"a", "b"});
  expect_traces_identical(t, decode_trace(encode_trace(t)));
}

class BinaryCodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinaryCodecRoundTrip, RandomSimulatedTraces) {
  RandomModelParams params;
  params.num_tasks = 8;
  params.num_layers = 3;
  params.seed = GetParam();
  SimConfig cfg;
  cfg.seed = GetParam() * 31 + 1;
  const Trace t = simulate_trace(random_model(params), 6, cfg);
  expect_traces_identical(t, decode_trace(encode_trace(t)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryCodecRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(BinaryCodec, EventEncodingIsCompact) {
  std::vector<std::uint8_t> out;
  append_event(out, Event::task_start(42, TaskId{3u}));
  EXPECT_EQ(out.size(), kEncodedEventSize);
}

TEST(BinaryCodec, EventRoundTripPreservesEveryField) {
  std::vector<std::uint8_t> out;
  append_event(out, Event::task_start(17, TaskId{5u}));
  append_event(out, Event::task_end(23, TaskId{5u}));
  append_event(out, Event::msg_rise(29, 0x123));
  append_event(out, Event::msg_fall(31, 0x123));
  ByteReader r(out.data(), out.size());
  Event e = r.read_event();
  EXPECT_EQ(e.kind, EventKind::TaskStart);
  EXPECT_EQ(e.task, TaskId{5u});
  EXPECT_EQ(e.time, 17u);
  e = r.read_event();
  EXPECT_EQ(e.kind, EventKind::TaskEnd);
  e = r.read_event();
  EXPECT_EQ(e.kind, EventKind::MsgRise);
  EXPECT_EQ(e.can_id, 0x123u);
  EXPECT_EQ(e.time, 29u);
  e = r.read_event();
  EXPECT_EQ(e.kind, EventKind::MsgFall);
  EXPECT_TRUE(r.done());
}

// -- rejection -------------------------------------------------------------

std::vector<std::uint8_t> sample_bytes() {
  const Trace t = paper_example_trace();
  return encode_trace(t);
}

TEST(BinaryCodecRejects, EveryTruncationPoint) {
  const std::vector<std::uint8_t> bytes = sample_bytes();
  ASSERT_GT(bytes.size(), 8u);
  // A strict prefix can never decode: either a load runs out of bytes or
  // the trailing-garbage check fires on the period counts.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW((void)decode_trace(bytes.data(), cut), Error)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(BinaryCodecRejects, BadMagic) {
  std::vector<std::uint8_t> bytes = sample_bytes();
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)decode_trace(bytes), Error);
}

TEST(BinaryCodecRejects, UnsupportedVersion) {
  std::vector<std::uint8_t> bytes = sample_bytes();
  bytes[4] = 0x7f;  // version lives right after the u32 magic
  EXPECT_THROW((void)decode_trace(bytes), Error);
}

TEST(BinaryCodecRejects, TrailingGarbage) {
  std::vector<std::uint8_t> bytes = sample_bytes();
  bytes.push_back(0xee);
  EXPECT_THROW((void)decode_trace(bytes), Error);
}

TEST(BinaryCodecRejects, InvalidEventKind) {
  const Trace t = paper_example_trace();
  std::vector<std::uint8_t> bytes;
  append_u32(bytes, kBinaryCodecMagic);
  append_u16(bytes, kBinaryCodecVersion);
  append_task_names(bytes, t.task_names());
  append_u32(bytes, 1);  // one period
  append_u32(bytes, 1);  // one event
  append_u8(bytes, 0x9);  // kind out of range
  append_u32(bytes, 0);
  append_u64(bytes, 0);
  EXPECT_THROW((void)decode_trace(bytes), Error);
}

TEST(BinaryCodecRejects, InsaneCountsWithoutAllocating) {
  const Trace t = paper_example_trace();
  std::vector<std::uint8_t> bytes;
  append_u32(bytes, kBinaryCodecMagic);
  append_u16(bytes, kBinaryCodecVersion);
  append_task_names(bytes, t.task_names());
  append_u32(bytes, 0xffffffffu);  // absurd period count
  EXPECT_THROW((void)decode_trace(bytes), Error);
}

TEST(BinaryCodecRejects, EventStreamViolatingTraceInvariants) {
  // Structurally valid codec bytes whose events break period rules (end
  // without start) must be rejected by the TraceBuilder re-validation.
  std::vector<std::uint8_t> bytes;
  append_u32(bytes, kBinaryCodecMagic);
  append_u16(bytes, kBinaryCodecVersion);
  append_task_names(bytes, {"a", "b"});
  append_u32(bytes, 1);
  append_u32(bytes, 1);
  append_event(bytes, Event::task_end(10, TaskId{0u}));
  EXPECT_THROW((void)decode_trace(bytes), Error);
}

TEST(BinaryCodec, FileRoundTrip) {
  const Trace t = paper_example_trace();
  const std::string path = ::testing::TempDir() + "/bbmg_codec_test.btrace";
  save_trace_file_binary(path, t);
  expect_traces_identical(t, load_trace_file_binary(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbmg
