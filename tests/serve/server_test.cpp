// TCP front-end: end-to-end replay/query over a real socket, protocol
// errors from hostile peers, and multi-connection isolation.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

Trace gm_trace(std::uint64_t seed, std::size_t periods) {
  SimConfig cfg;
  cfg.seed = seed;
  return simulate_trace(gm_case_study_model(), periods, cfg);
}

TEST(ServerEndToEnd, ReplayedTraceServesTheOfflineModel) {
  ServerConfig config;
  config.manager.workers = 2;
  Server server(config);
  server.start();
  ASSERT_GT(server.port(), 0);

  const Trace trace = gm_trace(7, 9);
  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const std::uint32_t session = client.open_session(trace.task_names());
  EXPECT_EQ(client.send_trace(session, trace), trace.num_periods());

  const WireSnapshot snap = client.query(session, /*drain=*/true);
  EXPECT_EQ(snap.periods_seen, trace.num_periods());
  EXPECT_EQ(snap.periods_learned, trace.num_periods());
  EXPECT_EQ(snap.health, HealthState::OK);

  // The wire answer equals the offline batch pipeline on the same trace.
  const DependencyMatrix offline = learn_heuristic(trace, 16).lub();
  EXPECT_TRUE(snap.lub == offline);
  EXPECT_EQ(snap.weight, offline.weight());

  client.close_session(session);
  server.stop();
}

TEST(ServerEndToEnd, ProbeQueriesReturnVerdicts) {
  Server server;
  server.start();
  const Trace trace = gm_trace(5, 9);
  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const std::uint32_t session = client.open_session(trace.task_names());
  client.send_trace(session, trace);

  const std::vector<Event> seen = trace.periods()[0].to_events();
  EXPECT_EQ(client.query(session, true, &seen).verdict, ProbeVerdict::Conforms);

  const std::vector<Event> lone{Event::task_start(0, TaskId{0u}),
                                Event::task_end(1000, TaskId{0u})};
  const WireSnapshot bad = client.query(session, true, &lone);
  EXPECT_EQ(bad.verdict, ProbeVerdict::Violates);
  EXPECT_GT(bad.num_violations, 0u);
  server.stop();
}

TEST(ServerEndToEnd, ConcurrentConnectionsLearnIndependentModels) {
  ServerConfig config;
  config.manager.workers = 3;
  Server server(config);
  server.start();

  const std::size_t kClients = 4;
  std::vector<DependencyMatrix> served(kClients);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i, port = server.port()] {
      const Trace trace = gm_trace(20 + i, 6);
      ServeClient client;
      client.connect("127.0.0.1", port);
      const std::uint32_t session = client.open_session(trace.task_names());
      client.send_trace(session, trace);
      served[i] = client.query(session, /*drain=*/true).lub;
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < kClients; ++i) {
    const DependencyMatrix offline =
        learn_heuristic(gm_trace(20 + i, 6), 16).lub();
    EXPECT_TRUE(served[i] == offline) << "client " << i;
  }
  server.stop();
}

TEST(ServerRobustness, GarbageConnectionDoesNotKillTheServer) {
  Server server;
  server.start();

  // A peer speaking something that is not the protocol: the server must
  // reject the connection and keep serving others.
  {
    const int fd = net::connect_tcp("127.0.0.1", server.port());
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    net::write_all(fd, reinterpret_cast<const std::uint8_t*>(junk),
                   sizeof(junk) - 1);
    // Whatever comes back (an ErrorReply or a shutdown), the connection
    // must end; draining until EOF must not hang.
    FrameDecoder decoder;
    try {
      while (net::read_frame(fd, decoder).has_value()) {
      }
    } catch (const Error&) {
    }
    net::close_socket(fd);
  }

  // A frame-level valid but semantically wrong conversation: a query for a
  // session that was never opened surfaces as a client-side error, again
  // without hurting the server.
  {
    ServeClient client;
    client.connect("127.0.0.1", server.port());
    EXPECT_THROW((void)client.query(12345, /*drain=*/true), Error);
  }

  // The server still works end to end.
  const Trace trace = gm_trace(9, 4);
  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const std::uint32_t session = client.open_session(trace.task_names());
  client.send_trace(session, trace);
  EXPECT_EQ(client.query(session, true).periods_seen, trace.num_periods());
  server.stop();
}

TEST(ServerRobustness, StopUnblocksLiveConnections) {
  auto server = std::make_unique<Server>();
  server->start();
  ServeClient client;
  client.connect("127.0.0.1", server->port());
  const std::uint32_t session = client.open_session({"a", "b"});
  (void)session;
  server->stop();  // must not deadlock on the open connection
  server.reset();
}

// The acceptance path of the observability layer: replay a trace, fetch
// the process-wide metrics snapshot over the wire, and see the learner,
// serve and queue instrumentation reflect the replay.  The registry is
// process-global and monotone, so assertions are >= (other tests in this
// binary also feed it); exact-nonzero checks are gated on obs::kEnabled.
TEST(ServerEndToEnd, MetricsRoundTripOverTheWire) {
  ServerConfig config;
  config.manager.workers = 2;
  Server server(config);
  server.start();

  const Trace trace = gm_trace(11, 8);
  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const std::uint32_t session = client.open_session(trace.task_names());
  client.send_trace(session, trace);
  (void)client.query(session, /*drain=*/true);

  const obs::MetricsSnapshot snap = client.fetch_metrics();
  ASSERT_FALSE(snap.counters.empty());
  if (obs::kEnabled) {
    EXPECT_GE(snap.counter_value("bbmg_learner_periods_total"),
              trace.num_periods());
    EXPECT_GE(snap.counter_value("bbmg_robust_periods_total"),
              trace.num_periods());
    EXPECT_GE(snap.counter_value("bbmg_serve_periods_applied_total"),
              trace.num_periods());
    EXPECT_GE(snap.counter_value("bbmg_serve_sessions_opened_total"), 1u);
    EXPECT_GE(snap.counter_value("bbmg_serve_queries_total"), 1u);
    EXPECT_GE(snap.counter_value("bbmg_serve_connections_total"), 1u);
    const obs::HistogramSample* lat =
        snap.find_histogram("bbmg_serve_enqueue_apply_latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_GE(lat->count, trace.num_periods());
    // A drained session's shard queues are empty again.
    for (const obs::GaugeSample& g : snap.gauges) {
      if (g.name.rfind("bbmg_serve_queue_depth", 0) == 0) {
        EXPECT_GE(g.value, 0) << g.name;
      }
    }
  } else {
    // OFF build: the wire surface works identically, all values read zero.
    EXPECT_EQ(snap.counter_value("bbmg_learner_periods_total"), 0u);
    EXPECT_EQ(snap.counter_value("bbmg_serve_periods_applied_total"), 0u);
  }

  client.close_session(session);
  server.stop();
}

}  // namespace
}  // namespace bbmg
