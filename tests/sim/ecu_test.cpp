// OSEK-like fixed-priority preemptive scheduling decisions.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/ecu.hpp"

namespace bbmg {
namespace {

EcuJob job(std::uint32_t task, TaskPriority prio, TimeNs work) {
  return EcuJob{TaskId{task}, prio, work, false};
}

TEST(Ecu, DispatchPicksHighestPriority) {
  Ecu ecu;
  ecu.release(job(0, 1, 100));
  ecu.release(job(1, 5, 100));
  ecu.release(job(2, 3, 100));
  const EcuJob& running = ecu.dispatch(10);
  EXPECT_EQ(running.task.index(), 1u);
  EXPECT_EQ(ecu.slice_start(), 10u);
}

TEST(Ecu, EqualPriorityTieBreaksByTaskIndex) {
  Ecu ecu;
  ecu.release(job(7, 4, 100));
  ecu.release(job(2, 4, 100));
  EXPECT_EQ(ecu.dispatch(0).task.index(), 2u);
}

TEST(Ecu, ShouldPreemptOnlyForStrictlyHigherPriority) {
  Ecu ecu;
  ecu.release(job(0, 3, 100));
  ecu.dispatch(0);
  ecu.release(job(1, 3, 100));
  EXPECT_FALSE(ecu.should_preempt());
  ecu.release(job(2, 9, 100));
  EXPECT_TRUE(ecu.should_preempt());
}

TEST(Ecu, PreemptionAccountsConsumedWork) {
  Ecu ecu;
  ecu.release(job(0, 1, 100));
  ecu.dispatch(50);
  const std::uint64_t gen_before = ecu.generation();
  ecu.release(job(1, 9, 20));
  ecu.preempt(80);  // ran 30 of 100
  EXPECT_NE(ecu.generation(), gen_before);  // stale completion invalidated
  EXPECT_TRUE(ecu.idle());
  // High-priority job runs first; afterwards the preempted job resumes
  // with 70 remaining.
  EXPECT_EQ(ecu.dispatch(80).task.index(), 1u);
  ecu.complete();
  const EcuJob& resumed = ecu.dispatch(100);
  EXPECT_EQ(resumed.task.index(), 0u);
  EXPECT_EQ(resumed.work_remaining, 70u);
}

TEST(Ecu, CompleteReturnsRunningJobAndGoesIdle) {
  Ecu ecu;
  ecu.release(job(3, 2, 40));
  ecu.dispatch(0);
  const EcuJob done = ecu.complete();
  EXPECT_EQ(done.task.index(), 3u);
  EXPECT_TRUE(ecu.idle());
  EXPECT_FALSE(ecu.has_ready());
}

TEST(Ecu, StartedFlagSurvivesPreemption) {
  Ecu ecu;
  ecu.release(job(0, 1, 100));
  EcuJob& j = ecu.dispatch(0);
  j.started = true;  // simulator records TaskStart on first dispatch
  ecu.release(job(1, 9, 10));
  ecu.preempt(30);
  ecu.dispatch(30);
  ecu.complete();
  const EcuJob& resumed = ecu.dispatch(40);
  EXPECT_TRUE(resumed.started);
}

TEST(Ecu, MisuseThrows) {
  Ecu ecu;
  EXPECT_THROW((void)ecu.dispatch(0), Error);
  EXPECT_THROW((void)ecu.complete(), Error);
  EXPECT_THROW(ecu.preempt(0), Error);
  ecu.release(job(0, 1, 10));
  ecu.dispatch(0);
  EXPECT_THROW((void)ecu.dispatch(1), Error);
}

}  // namespace
}  // namespace bbmg
