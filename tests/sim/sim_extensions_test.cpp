// Simulator extensions: source release offsets and CAN error injection
// with automatic retransmission.
#include <gtest/gtest.h>

#include "core/heuristic_learner.hpp"
#include "core/matching.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/scenarios.hpp"
#include "sim/simulator.hpp"
#include "trace/stats.hpp"

namespace bbmg {
namespace {

TEST(ReleaseOffset, DelaysSourceStart) {
  SystemModel m;
  TaskSpec a;
  a.name = "a";
  a.activation = ActivationPolicy::Source;
  a.release_offset = 5 * kTimeNsPerMs;
  m.add_task(std::move(a));
  TaskSpec b;
  b.name = "b";
  b.activation = ActivationPolicy::Source;
  m.add_task(std::move(b));
  m.validate();

  const Trace t = simulate_trace(m, 3, SimConfig{});
  for (const auto& period : t.periods()) {
    const TaskExecution* ea = period.execution_of(TaskId{0u});
    const TaskExecution* eb = period.execution_of(TaskId{1u});
    ASSERT_NE(ea, nullptr);
    ASSERT_NE(eb, nullptr);
    // a starts exactly 5 ms after b's (offset-free) release.
    EXPECT_EQ(ea->start - eb->start, 5 * kTimeNsPerMs);
  }
}

TEST(ReleaseOffset, StaggeringReducesBusContention) {
  // Two sources on different ECUs both fire a frame at t=0: the queue
  // peaks at 2.  Offsetting one by more than a frame time serializes them.
  auto build = [](TimeNs offset) {
    SystemModel m;
    TaskSpec a;
    a.name = "a";
    a.activation = ActivationPolicy::Source;
    a.ecu = EcuId{0u};
    a.exec_min = a.exec_max = 100 * kTimeNsPerUs;
    m.add_task(std::move(a));
    TaskSpec b;
    b.name = "b";
    b.activation = ActivationPolicy::Source;
    b.ecu = EcuId{1u};
    b.exec_min = b.exec_max = 100 * kTimeNsPerUs;
    b.release_offset = offset;
    m.add_task(std::move(b));
    TaskSpec c;
    c.name = "c";
    c.activation = ActivationPolicy::AllInputs;
    c.ecu = EcuId{0u};
    m.add_task(std::move(c));
    m.add_edge({TaskId{0u}, TaskId{2u}, 1, 8, 1.0});
    m.add_edge({TaskId{1u}, TaskId{2u}, 2, 8, 1.0});
    m.validate();
    return m;
  };
  const SimReport contended = simulate(build(0), 5, SimConfig{});
  const SimReport staggered = simulate(build(5 * kTimeNsPerMs), 5, SimConfig{});
  // peak_bus_queue counts frames *waiting* behind the in-flight one: the
  // simultaneous release makes one frame queue behind the other; the
  // staggered variant never queues.
  EXPECT_GE(contended.peak_bus_queue, 1u);
  EXPECT_EQ(staggered.peak_bus_queue, 0u);
}

TEST(BusErrors, RetransmissionsCountedAndTraceStaysValid) {
  SimConfig cfg;
  cfg.seed = 3;
  cfg.bus_error_rate = 0.2;
  const SimReport report = simulate(gm_case_study_model(), 10, cfg);
  EXPECT_GT(report.retransmissions, 0u);
  EXPECT_NO_THROW(validate_trace(report.trace));
  // Every logical message is still delivered exactly once: the message
  // count matches the error-free run with the same behaviour seed.
  SimConfig clean = cfg;
  clean.bus_error_rate = 0.0;
  const SimReport baseline = simulate(gm_case_study_model(), 10, clean);
  // Behaviour resolution draws differ once the error RNG interleaves, so
  // compare against the per-period invariant instead: every period still
  // has one heartbeat and at least the source activity.
  for (const auto& period : report.trace.periods()) {
    std::size_t heartbeats = 0;
    for (const auto& msg : period.messages()) {
      heartbeats += (msg.can_id == 0x010);
    }
    EXPECT_EQ(heartbeats, 1u);
  }
  EXPECT_GT(baseline.trace.total_messages(), 0u);
}

TEST(BusErrors, DelaysDeliveryButPreservesLearnability) {
  SimConfig cfg;
  cfg.seed = 5;
  cfg.bus_error_rate = 0.15;
  const Trace noisy = simulate_trace(gm_case_study_model(), 12, cfg);
  const LearnResult r = learn_heuristic(noisy, 8);
  ASSERT_FALSE(r.hypotheses.empty());
  for (const auto& h : r.hypotheses) {
    EXPECT_TRUE(matches_trace(h, noisy));
  }
  // The headline requirement survives bus noise.
  const DependencyMatrix lub = r.lub();
  const TaskId A = noisy.task_by_name("A");
  const TaskId L = noisy.task_by_name("L");
  EXPECT_EQ(lub.at(A, L), DepValue::Forward);
}

TEST(BusErrors, ErrorRateIncreasesBusBusyTime) {
  SimConfig clean;
  clean.seed = 9;
  SimConfig noisy = clean;
  noisy.bus_error_rate = 0.3;
  const SimReport a = simulate(gm_case_study_model(), 10, clean);
  const SimReport b = simulate(gm_case_study_model(), 10, noisy);
  EXPECT_EQ(a.retransmissions, 0u);
  EXPECT_GT(b.retransmissions, 0u);
}

}  // namespace
}  // namespace bbmg
