// CAN bus: frame timing math and identifier arbitration.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/can_bus.hpp"

namespace bbmg {
namespace {

TEST(CanFrame, BitCounts) {
  // 44 frame bits + 3 interframe bits + payload.
  EXPECT_EQ(can_frame_bits(0, false), 47u);
  EXPECT_EQ(can_frame_bits(8, false), 47u + 64u);
  // Worst-case stuffing: floor((34 + 8*dlc - 1) / 4) extra bits.
  EXPECT_EQ(can_frame_bits(0, true), 47u + 8u);
  EXPECT_EQ(can_frame_bits(8, true), 111u + 24u);
}

TEST(CanFrame, TimeScalesWithBitrate) {
  // 111 bits at 500 kbit/s = 222 us; at 1 Mbit/s = 111 us.
  EXPECT_EQ(can_frame_time(8, 500'000, false), 222 * kTimeNsPerUs);
  EXPECT_EQ(can_frame_time(8, 1'000'000, false), 111 * kTimeNsPerUs);
}

TEST(CanBus, LowestIdWinsArbitration) {
  CanBus bus(1'000'000, false);
  bus.enqueue({0x300, 8, 0, 0});
  bus.enqueue({0x100, 8, 1, 0});
  bus.enqueue({0x200, 8, 2, 0});
  auto tx1 = bus.try_start(1000);
  ASSERT_TRUE(tx1.has_value());
  EXPECT_EQ(tx1->frame.can_id, 0x100u);
  EXPECT_EQ(tx1->rise, 1000u);
  EXPECT_TRUE(bus.busy());
  // Busy bus refuses to start another frame.
  EXPECT_FALSE(bus.try_start(1200).has_value());
  const BusTransmission done = bus.finish();
  EXPECT_EQ(done.frame.can_id, 0x100u);
  auto tx2 = bus.try_start(done.fall);
  ASSERT_TRUE(tx2.has_value());
  EXPECT_EQ(tx2->frame.can_id, 0x200u);
}

TEST(CanBus, FifoTieBreakOnEqualIds) {
  // Equal CAN ids cannot happen across distinct design messages (unique
  // ids are validated), but the bus itself must still be deterministic.
  CanBus bus(500'000, false);
  bus.enqueue({0x100, 8, 10, 0});
  bus.enqueue({0x100, 4, 11, 0});
  auto tx = bus.try_start(0);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->frame.edge_index, 10u);
}

TEST(CanBus, TransmissionDurationMatchesFrameTime) {
  CanBus bus(250'000, true);
  bus.enqueue({0x42, 3, 0, 0});
  auto tx = bus.try_start(5000);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->fall - tx->rise, can_frame_time(3, 250'000, true));
}

TEST(CanBus, FinishOnIdleBusThrows) {
  CanBus bus(500'000, false);
  EXPECT_THROW((void)bus.finish(), Error);
}

TEST(CanBus, EmptyQueueStartsNothing) {
  CanBus bus(500'000, false);
  EXPECT_FALSE(bus.try_start(0).has_value());
  EXPECT_FALSE(bus.has_pending());
}

TEST(CanBus, ZeroBitrateRejected) {
  EXPECT_THROW(CanBus(0, false), Error);
}

}  // namespace
}  // namespace bbmg
