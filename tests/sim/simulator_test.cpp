// End-to-end simulator invariants — the learnability guarantees the
// candidate extraction relies on, plus determinism and platform statistics.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/random_model.hpp"
#include "gen/scenarios.hpp"
#include "model/behavior.hpp"
#include "sim/simulator.hpp"
#include "trace/serialize.hpp"

namespace bbmg {
namespace {

/// The structural invariant behind candidate soundness: within a period,
/// no message overlaps another (single bus), every task runs at most once,
/// and every message lies inside the span of the period's activity.
void check_learnability_invariants(const SystemModel& model, const Trace& t) {
  validate_trace(t);  // throws on structural violations
  // Every period executes all Source tasks.
  for (const auto& period : t.periods()) {
    for (std::size_t i = 0; i < model.num_tasks(); ++i) {
      if (model.tasks()[i].activation == ActivationPolicy::Source) {
        EXPECT_TRUE(period.executed(TaskId{i}))
            << "source task did not run: " << model.tasks()[i].name;
      }
    }
  }
}

TEST(Simulator, PaperModelProducesValidTrace) {
  const SystemModel model = paper_example_model();
  SimConfig cfg;
  cfg.seed = 3;
  const SimReport report = simulate(model, 20, cfg);
  EXPECT_EQ(report.trace.num_periods(), 20u);
  check_learnability_invariants(model, report.trace);
  // Each paper-model period carries 2 or 4 messages (one or both branches).
  for (const auto& p : report.trace.periods()) {
    EXPECT_TRUE(p.messages().size() == 2 || p.messages().size() == 4);
    EXPECT_GE(p.executions().size(), 3u);
  }
}

TEST(Simulator, DeterministicForSeed) {
  const SystemModel model = gm_case_study_model();
  SimConfig cfg;
  cfg.seed = 42;
  const Trace a = simulate_trace(model, 5, cfg);
  const Trace b = simulate_trace(model, 5, cfg);
  EXPECT_EQ(trace_to_string(a), trace_to_string(b));
  cfg.seed = 43;
  const Trace c = simulate_trace(model, 5, cfg);
  EXPECT_NE(trace_to_string(a), trace_to_string(c));
}

TEST(Simulator, SenderEndsBeforeRiseReceiverStartsAfterFall) {
  // The true endpoint of every frame must satisfy the timing rules the
  // candidate extraction uses.  We verify with the design model's edges:
  // every executing non-source task must start after the falling edge of
  // each of its incoming frames.  Without sender/receiver info in the
  // trace we check a necessary condition: the first non-source task start
  // follows the first message fall.
  const SystemModel model = gm_case_study_model();
  SimConfig cfg;
  cfg.seed = 9;
  const Trace t = simulate_trace(model, 10, cfg);
  for (const auto& period : t.periods()) {
    for (const auto& exec : period.executions()) {
      if (model.tasks()[exec.task.index()].activation ==
          ActivationPolicy::Source) {
        continue;
      }
      // A non-source task consumed at least one frame: some message must
      // have fallen at or before its start.
      bool fed = false;
      for (const auto& msg : period.messages()) {
        if (msg.fall <= exec.start) {
          fed = true;
          break;
        }
      }
      EXPECT_TRUE(fed) << "non-source task started before any delivery";
    }
  }
}

TEST(Simulator, GmCaseStudyMatchesPaperScale) {
  SimConfig cfg;
  cfg.seed = 7;
  const SimReport report = simulate(gm_case_study_model(),
                                    kGmCaseStudyPeriods, cfg);
  EXPECT_EQ(report.trace.num_tasks(), 18u);
  // Paper: 330 messages and ~700 event-pair executions over 27 periods.
  EXPECT_GE(report.trace.total_messages(), 300u);
  EXPECT_LE(report.trace.total_messages(), 400u);
  EXPECT_GE(report.trace.total_event_pairs(), 630u);
  EXPECT_LE(report.trace.total_event_pairs(), 780u);
  EXPECT_LE(report.max_period_makespan, cfg.period_length);
}

TEST(Simulator, SharedEcuCausesPreemptions) {
  SimConfig cfg;
  cfg.seed = 7;
  const SimReport report = simulate(gm_case_study_model(), 27, cfg);
  EXPECT_GT(report.preemptions, 0u);
  EXPECT_GT(report.peak_bus_queue, 0u);
}

TEST(Simulator, ReleaseJitterStillValid) {
  const SystemModel model = gm_case_study_model();
  SimConfig cfg;
  cfg.seed = 11;
  cfg.release_jitter_max = 2 * kTimeNsPerMs;
  const Trace t = simulate_trace(model, 10, cfg);
  check_learnability_invariants(model, t);
}

TEST(Simulator, TightPeriodOverrunThrows) {
  const SystemModel model = gm_case_study_model();
  SimConfig cfg;
  cfg.seed = 1;
  cfg.period_length = 2 * kTimeNsPerMs;  // activity needs far more
  EXPECT_THROW((void)simulate(model, 2, cfg), Error);
}

TEST(Simulator, SlowBusStretchesMakespan) {
  const SystemModel model = gm_case_study_model();
  SimConfig fast;
  fast.seed = 5;
  fast.bus_bitrate = 1'000'000;
  SimConfig slow = fast;
  slow.bus_bitrate = 125'000;
  const SimReport rf = simulate(model, 5, fast);
  const SimReport rs = simulate(model, 5, slow);
  EXPECT_GT(rs.max_period_makespan, rf.max_period_makespan);
}

TEST(Simulator, WorstCaseStuffingSlowsFrames) {
  const SystemModel model = paper_example_model();
  SimConfig plain;
  plain.seed = 5;
  SimConfig stuffed = plain;
  stuffed.worst_case_stuffing = true;
  const Trace tp = simulate_trace(model, 3, plain);
  const Trace ts = simulate_trace(model, 3, stuffed);
  const auto& mp = tp.periods()[0].messages()[0];
  const auto& ms = ts.periods()[0].messages()[0];
  EXPECT_GT(ms.fall - ms.rise, mp.fall - mp.rise);
}

TEST(Simulator, RandomModelsProduceValidTraces) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomModelParams params;
    params.num_tasks = 12;
    params.num_layers = 4;
    params.num_ecus = 3;
    params.broadcast_fraction = 0.2;
    params.seed = seed;
    const SystemModel model = random_model(params);
    SimConfig cfg;
    cfg.seed = seed + 100;
    const Trace t = simulate_trace(model, 8, cfg);
    check_learnability_invariants(model, t);
  }
}

TEST(Simulator, BroadcastFramesAppearInTrace) {
  const SystemModel model = gm_case_study_model();
  SimConfig cfg;
  cfg.seed = 3;
  const Trace t = simulate_trace(model, 4, cfg);
  // O's heartbeat (CAN id 0x010) must appear once per period.
  for (const auto& period : t.periods()) {
    std::size_t heartbeats = 0;
    for (const auto& msg : period.messages()) {
      if (msg.can_id == 0x010) ++heartbeats;
    }
    EXPECT_EQ(heartbeats, 1u);
  }
}

}  // namespace
}  // namespace bbmg
