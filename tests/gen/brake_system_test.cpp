// Brake-by-wire scenario: structure, learnability, and the 300 ms
// deadline property from the paper's §3.4.
#include <gtest/gtest.h>

#include "analysis/dependency_graph.hpp"
#include "analysis/latency.hpp"
#include "core/heuristic_learner.hpp"
#include "core/matching.hpp"
#include "gen/brake_system.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

SimConfig brake_sim_config(std::uint64_t seed) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.period_length = 1000 * kTimeNsPerMs;
  return cfg;
}

TEST(BrakeSystem, ModelValidatesWithExpectedShape) {
  const SystemModel m = brake_system_model();
  EXPECT_EQ(m.num_tasks(), 10u);
  EXPECT_EQ(m.num_ecus(), 3u);
  EXPECT_NO_THROW(m.validate());
  // Diag is pure infrastructure.
  const TaskId diag = m.task_by_name("Diag");
  EXPECT_TRUE(m.out_edges(diag).empty());
  EXPECT_EQ(m.task(diag).broadcasts.size(), 1u);
  // The arbiter joins both control inputs and chooses actuators.
  const TaskId arb = m.task_by_name("AbsArbiter");
  EXPECT_EQ(m.task(arb).activation, ActivationPolicy::AllInputs);
  EXPECT_EQ(m.task(arb).output, OutputPolicy::NonEmptySubset);
  EXPECT_EQ(m.in_edges(arb).size(), 2u);
  EXPECT_EQ(m.out_edges(arb).size(), 2u);
}

TEST(BrakeSystem, CriticalPathFollowsDesignEdges) {
  const SystemModel m = brake_system_model();
  const auto path = brake_critical_path(m);
  ASSERT_EQ(path.size(), 5u);
  for (std::size_t k = 0; k + 1 < path.size(); ++k) {
    bool connected = false;
    for (std::size_t ei : m.out_edges(path[k])) {
      connected |= m.edges()[ei].to == path[k + 1];
    }
    EXPECT_TRUE(connected) << "gap after step " << k;
  }
}

TEST(BrakeSystem, TraceIsValidAndLearnerIsCorrect) {
  const SystemModel m = brake_system_model();
  const Trace trace = simulate_trace(m, 12, brake_sim_config(5));
  EXPECT_NO_THROW(validate_trace(trace));
  const LearnResult r = learn_heuristic(trace, 8);
  for (const auto& h : r.hypotheses) {
    EXPECT_TRUE(matches_trace(h, trace));
  }
}

TEST(BrakeSystem, ArbiterLearnedAsDisjunction) {
  const SystemModel m = brake_system_model();
  const Trace trace = simulate_trace(m, 30, brake_sim_config(5));
  const DependencyMatrix learned = learn_heuristic(trace, 16).lub();
  const DependencyGraph g(learned, trace.task_names());
  EXPECT_EQ(g.role(g.by_name("AbsArbiter")), NodeRole::Disjunction);
  // The pedal chain is a hard requirement end to end.
  EXPECT_EQ(g.value(g.by_name("PedalSensor"), g.by_name("AbsArbiter")),
            DepValue::Forward);
  EXPECT_TRUE(g.must_lead_to(g.by_name("PedalSensor"),
                             g.by_name("AbsArbiter")));
}

TEST(BrakeSystem, DeadlineProvableOnlyWithLearnedModel) {
  const SystemModel m = brake_system_model();
  const Trace trace = simulate_trace(m, 30, brake_sim_config(5));
  const DependencyMatrix learned = learn_heuristic(trace, 16).lub();
  const auto responses = response_times(m, learned);
  const auto path = brake_critical_path(m);
  const TimeNs pess = path_latency(m, responses, path, false);
  const TimeNs dep = path_latency(m, responses, path, true);
  EXPECT_GT(pess, kBrakeDeadline);  // all-independent: cannot prove
  EXPECT_LE(dep, kBrakeDeadline);   // learned: proved
  EXPECT_LT(dep, pess);
}

TEST(BrakeSystem, DeadlineResultStableAcrossSeeds) {
  const SystemModel m = brake_system_model();
  for (std::uint64_t seed : {1u, 9u, 42u}) {
    const Trace trace = simulate_trace(m, 30, brake_sim_config(seed));
    const DependencyMatrix learned = learn_heuristic(trace, 16).lub();
    const auto responses = response_times(m, learned);
    const TimeNs dep =
        path_latency(m, responses, brake_critical_path(m), true);
    EXPECT_LE(dep, kBrakeDeadline) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bbmg
