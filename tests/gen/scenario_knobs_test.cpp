// ScenarioConfig knobs (gen/scenarios.hpp): sporadic sources, per-ECU
// clock drift, bursty bus errors — plus the two invariants the fleet
// simulator stands on: seeded generation is byte-deterministic across
// runs, and every knob defaults to OFF without perturbing the rng streams
// existing seeded artifacts were produced from.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gen/random_model.hpp"
#include "gen/scenarios.hpp"
#include "model/behavior.hpp"
#include "sim/simulator.hpp"
#include "trace/serialize.hpp"

namespace bbmg {
namespace {

ScenarioConfig everything_on(std::uint64_t seed) {
  ScenarioConfig sc;
  sc.seed = seed;
  sc.num_periods = 12;
  sc.model.num_tasks = 10;
  sc.model.num_layers = 3;
  sc.model.sporadic_fraction = 0.5;
  sc.model.sporadic_fire_prob = 0.6;
  sc.platform.release_jitter_max = 100 * kTimeNsPerUs;
  sc.platform.clock_drift_ppm_max = 150.0;
  sc.platform.bus_error_rate = 0.01;
  sc.platform.burst_enter_prob = 0.05;
  sc.platform.burst_error_rate = 0.5;
  return sc;
}

TEST(ScenarioKnobs, SeededGenerationIsByteDeterministic) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    const ScenarioConfig sc = everything_on(seed);
    const std::string a = trace_to_string(scenario_trace(sc));
    const std::string b = trace_to_string(scenario_trace(sc));
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_FALSE(a.empty());
  }
}

TEST(ScenarioKnobs, DistinctSeedsGiveDistinctScenarios) {
  const std::string a = trace_to_string(scenario_trace(everything_on(1)));
  const std::string b = trace_to_string(scenario_trace(everything_on(2)));
  EXPECT_NE(a, b);
}

TEST(ScenarioKnobs, DefaultOffKnobsPreserveExistingStreams) {
  // Setting the new knobs to their defaults must reproduce, byte for
  // byte, what the pre-knob pipeline produced: disabled knobs consume no
  // rng draws.
  RandomModelParams params;
  params.num_tasks = 9;
  params.num_layers = 3;
  params.seed = 31;
  const SystemModel plain = random_model(params);

  RandomModelParams with_defaults = params;
  with_defaults.sporadic_fraction = 0.0;  // explicit default
  const SystemModel defaulted = random_model(with_defaults);
  EXPECT_EQ(plain.num_tasks(), defaulted.num_tasks());
  for (std::size_t i = 0; i < plain.num_tasks(); ++i) {
    EXPECT_EQ(plain.tasks()[i].fire_prob, 1.0);
    EXPECT_EQ(defaulted.tasks()[i].fire_prob, 1.0);
  }

  SimConfig cfg;
  cfg.seed = 77;
  cfg.release_jitter_max = 50 * kTimeNsPerUs;
  SimConfig cfg_explicit = cfg;
  cfg_explicit.clock_drift_ppm_max = 0.0;
  cfg_explicit.burst_enter_prob = 0.0;
  EXPECT_EQ(trace_to_string(simulate_trace(plain, 10, cfg)),
            trace_to_string(simulate_trace(defaulted, 10, cfg_explicit)));
}

TEST(ScenarioKnobs, SporadicSourceSitsOutSomePeriods) {
  RandomModelParams params;
  params.num_tasks = 8;
  params.num_layers = 2;
  params.seed = 5;
  params.sporadic_fraction = 1.0;  // every source but the first
  params.sporadic_fire_prob = 0.3;
  const SystemModel model = random_model(params);

  std::size_t sporadic = 0;
  for (const TaskSpec& t : model.tasks()) {
    if (t.fire_prob < 1.0) ++sporadic;
  }
  ASSERT_GT(sporadic, 0u);
  // The first source is exempt so no period can be empty.
  EXPECT_EQ(model.tasks()[0].fire_prob, 1.0);

  const Trace trace = simulate_trace(model, 30, SimConfig{});
  std::size_t quiet_periods = 0;
  for (const Period& p : trace.periods()) {
    std::vector<bool> ran(model.num_tasks(), false);
    for (const auto& e : p.executions()) ran[e.task.index()] = true;
    EXPECT_TRUE(ran[0]);  // the exempt source fires every period
    for (std::size_t i = 0; i < model.num_tasks(); ++i) {
      if (model.tasks()[i].fire_prob < 1.0 && !ran[i]) {
        ++quiet_periods;
        break;
      }
    }
  }
  EXPECT_GT(quiet_periods, 0u) << "fire_prob 0.3 never sat out in 30 periods";
}

TEST(ScenarioKnobs, SporadicSourceAddsSatOutBranchToEnumeration) {
  // s_always -> sink <- s_sporadic: the sporadic source doubles the
  // behaviour count (fire / sit out).
  SystemModel m;
  TaskSpec always;
  always.name = "s_always";
  always.activation = ActivationPolicy::Source;
  const TaskId a = m.add_task(always);
  TaskSpec sporadic;
  sporadic.name = "s_sporadic";
  sporadic.activation = ActivationPolicy::Source;
  sporadic.fire_prob = 0.5;
  const TaskId s = m.add_task(sporadic);
  TaskSpec sink;
  sink.name = "sink";
  sink.activation = ActivationPolicy::AnyInput;
  const TaskId k = m.add_task(sink);
  m.add_edge(EdgeSpec{a, k, 0x101, 8, 1.0});
  m.add_edge(EdgeSpec{s, k, 0x102, 8, 1.0});
  m.validate();

  EXPECT_EQ(enumerate_behaviors(m).size(), 2u);

  sporadic.fire_prob = 1.0;
  SystemModel strict;
  const TaskId a2 = strict.add_task(always);
  const TaskId s2 = strict.add_task(sporadic);
  TaskSpec sink2 = sink;
  const TaskId k2 = strict.add_task(sink2);
  strict.add_edge(EdgeSpec{a2, k2, 0x101, 8, 1.0});
  strict.add_edge(EdgeSpec{s2, k2, 0x102, 8, 1.0});
  EXPECT_EQ(enumerate_behaviors(strict).size(), 1u);
}

TEST(ScenarioKnobs, FireProbOutsideUnitIntervalIsRejected) {
  SystemModel m;
  TaskSpec t;
  t.name = "s";
  t.activation = ActivationPolicy::Source;
  t.fire_prob = 0.0;
  m.add_task(t);
  EXPECT_THROW(m.validate(), Error);
}

TEST(ScenarioKnobs, ClockDriftAccumulatesAndSaturates) {
  RandomModelParams params;
  params.num_tasks = 6;
  params.num_layers = 2;
  params.num_ecus = 3;
  params.seed = 11;
  const SystemModel model = random_model(params);

  SimConfig cfg;
  cfg.seed = 3;
  cfg.clock_drift_ppm_max = 200.0;
  cfg.clock_drift_cap = 500 * kTimeNsPerUs;
  const SimReport drifted = simulate(model, 40, cfg);
  EXPECT_GT(drifted.max_clock_skew, 0u);
  EXPECT_LE(drifted.max_clock_skew, cfg.clock_drift_cap);

  // 40 periods x 100ms x 200ppm = 800us of potential skew, well past the
  // 500us cap: the cap must have engaged.
  EXPECT_EQ(drifted.max_clock_skew, cfg.clock_drift_cap);

  SimConfig off = cfg;
  off.clock_drift_ppm_max = 0.0;
  EXPECT_EQ(simulate(model, 40, off).max_clock_skew, 0u);
}

TEST(ScenarioKnobs, BurstyChannelRetransmitsInBursts) {
  RandomModelParams params;
  params.num_tasks = 8;
  params.num_layers = 3;
  params.seed = 17;
  const SystemModel model = random_model(params);

  SimConfig bursty;
  bursty.seed = 9;
  bursty.burst_enter_prob = 0.2;
  bursty.burst_exit_prob = 0.3;
  bursty.burst_error_rate = 0.8;
  const SimReport rep = simulate(model, 25, bursty);
  EXPECT_GT(rep.retransmissions, 0u);

  // Same seed, channel disabled: no retransmissions, and the trace is the
  // byte-exact no-knob trace.
  SimConfig off = bursty;
  off.burst_enter_prob = 0.0;
  const SimReport clean = simulate(model, 25, off);
  EXPECT_EQ(clean.retransmissions, 0u);
  SimConfig plain;
  plain.seed = 9;
  EXPECT_EQ(trace_to_string(clean.trace),
            trace_to_string(simulate_trace(model, 25, plain)));
}

TEST(ScenarioKnobs, ScenarioModelMatchesScenarioRunTaskSet) {
  const ScenarioConfig sc = everything_on(4);
  const SystemModel model = scenario_model(sc);
  const Trace trace = scenario_trace(sc);
  EXPECT_EQ(model.task_names(), trace.task_names());
}

}  // namespace
}  // namespace bbmg
