// Scenario generators: the paper example, idealized/exhaustive traces, the
// GM case study, random models.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/exact_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/random_model.hpp"
#include "gen/scenarios.hpp"
#include "model/behavior.hpp"

namespace bbmg {
namespace {

TEST(Scenarios, PaperTraceMatchesPaperCounts) {
  const Trace t = paper_example_trace();
  EXPECT_EQ(t.num_tasks(), 4u);
  EXPECT_EQ(t.num_periods(), 3u);
  EXPECT_EQ(t.total_messages(), 8u);  // m1..m8
  EXPECT_NO_THROW(validate_trace(t));
}

TEST(Scenarios, IdealizedTraceIsValidAndDeterministic) {
  const SystemModel m = paper_example_model();
  const Trace a = idealized_trace(m, 10, 3);
  const Trace b = idealized_trace(m, 10, 3);
  EXPECT_NO_THROW(validate_trace(a));
  EXPECT_EQ(a.num_periods(), 10u);
  EXPECT_EQ(a.total_messages(), b.total_messages());
}

TEST(Scenarios, IdealizedLayoutKeepsTopologicalOrder) {
  const SystemModel m = paper_example_model();
  const Trace t = idealized_trace(m, 5, 1);
  for (const auto& period : t.periods()) {
    // t1 is always first; t4 (if present) always last.
    EXPECT_EQ(period.executions().front().task.index(), 0u);
    if (period.executed(TaskId{3u})) {
      EXPECT_EQ(period.executions().back().task.index(), 3u);
    }
  }
}

TEST(Scenarios, ExhaustiveTraceCoversTheBehaviorSpace) {
  const SystemModel m = paper_example_model();
  const Trace t = exhaustive_trace(m);
  EXPECT_EQ(t.num_periods(), enumerate_behaviors(m).size());
  // Learning from the exhaustive trace reproduces the paper's dLUB.
  const LearnResult exact = learn_exact(t);
  EXPECT_EQ(exact.lub().at(0, 3), DepValue::Forward);
}

TEST(GmCaseStudy, ShapeMatchesThePaper) {
  const SystemModel m = gm_case_study_model();
  EXPECT_EQ(m.num_tasks(), 18u);
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.num_ecus(), 4u);
  // Task names are S plus A..Q.
  EXPECT_NO_THROW((void)m.task_by_name("S"));
  for (char c = 'A'; c <= 'Q'; ++c) {
    EXPECT_NO_THROW((void)m.task_by_name(std::string(1, c)));
  }
}

TEST(GmCaseStudy, DisjunctionAndConjunctionStructure) {
  const SystemModel m = gm_case_study_model();
  EXPECT_EQ(m.task(m.task_by_name("A")).output, OutputPolicy::ExactlyOne);
  EXPECT_EQ(m.task(m.task_by_name("B")).output, OutputPolicy::ExactlyOne);
  EXPECT_GE(m.in_edges(m.task_by_name("H")).size(), 2u);
  EXPECT_GE(m.in_edges(m.task_by_name("P")).size(), 2u);
  EXPECT_GE(m.in_edges(m.task_by_name("Q")).size(), 2u);
}

TEST(GmCaseStudy, OIsPureInfrastructure) {
  const SystemModel m = gm_case_study_model();
  const TaskId O = m.task_by_name("O");
  EXPECT_TRUE(m.out_edges(O).empty());
  EXPECT_TRUE(m.in_edges(O).empty());
  ASSERT_EQ(m.task(O).broadcasts.size(), 1u);
  // Higher priority than Q on the same ECU.
  const TaskId Q = m.task_by_name("Q");
  EXPECT_EQ(m.task(O).ecu, m.task(Q).ecu);
  EXPECT_GT(m.task(O).priority, m.task(Q).priority);
}

TEST(GmCaseStudy, EveryAModeLeadsToL) {
  // The design guarantee behind d(A,L) = ->: each of A's successors has an
  // unconditional edge to L.
  const SystemModel m = gm_case_study_model();
  const TaskId A = m.task_by_name("A");
  const TaskId L = m.task_by_name("L");
  for (std::size_t ei : m.out_edges(A)) {
    const TaskId mode = m.edges()[ei].to;
    bool reaches_l = false;
    for (std::size_t ej : m.out_edges(mode)) {
      if (m.edges()[ej].to == L) reaches_l = true;
    }
    EXPECT_TRUE(reaches_l) << "mode " << m.task(mode).name;
    EXPECT_EQ(m.task(mode).output, OutputPolicy::All);
  }
}

TEST(RandomModel, ValidatesAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomModelParams params;
    params.num_tasks = 10;
    params.num_layers = 4;
    params.num_ecus = 3;
    params.broadcast_fraction = 0.3;
    params.seed = seed;
    const SystemModel m = random_model(params);
    EXPECT_EQ(m.num_tasks(), 10u);
    EXPECT_NO_THROW(m.validate());
  }
}

TEST(RandomModel, DeterministicForSeed) {
  RandomModelParams params;
  params.seed = 5;
  const SystemModel a = random_model(params);
  const SystemModel b = random_model(params);
  EXPECT_EQ(a.edges().size(), b.edges().size());
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].from, b.edges()[i].from);
    EXPECT_EQ(a.edges()[i].to, b.edges()[i].to);
  }
}

TEST(RandomModel, DisjunctionFractionZeroMeansAllDeterministic) {
  RandomModelParams params;
  params.disjunction_fraction = 0.0;
  params.seed = 9;
  const SystemModel m = random_model(params);
  for (const auto& t : m.tasks()) {
    EXPECT_EQ(t.output, OutputPolicy::All);
  }
  // Fully deterministic: exactly one behaviour.
  EXPECT_EQ(enumerate_behaviors(m).size(), 1u);
}

TEST(RandomModel, RejectsBadParams) {
  RandomModelParams params;
  params.num_tasks = 1;
  EXPECT_THROW((void)random_model(params), Error);
  params.num_tasks = 5;
  params.num_layers = 9;
  EXPECT_THROW((void)random_model(params), Error);
}

}  // namespace
}  // namespace bbmg
