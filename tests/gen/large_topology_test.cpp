// Generator + platform + learner coverage at fleet-scale topologies
// (100–1000 tasks).  The paper's case study is 18 tasks; the fleet
// simulator's heavy tail and the scaling benches lean on random_model
// staying structurally sound and simulable far beyond that, and on the
// learner staying *sound* (never claiming an unconditional dependency its
// own clean trace refutes) at the largest size.
#include <gtest/gtest.h>

#include "gen/random_model.hpp"
#include "lattice/dependency_value.hpp"
#include "robust/robust_online_learner.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace bbmg {
namespace {

/// A platform sized so a big topology fits one 100ms period: a faster bus
/// (arbitration is the bottleneck: ~1 frame per non-source task) and
/// enough ECUs that per-ECU serial execution stays well under the period.
SimConfig big_platform(std::uint64_t seed) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.bus_bitrate = 5'000'000;
  return cfg;
}

RandomModelParams big_params(std::size_t tasks, std::uint64_t seed) {
  RandomModelParams p;
  p.num_tasks = tasks;
  p.num_layers = 6;
  p.num_ecus = 32;
  p.extra_edge_density = 0.01;
  p.disjunction_fraction = 0.3;
  p.sporadic_fraction = 0.2;
  p.exec_min = 50 * kTimeNsPerUs;
  p.exec_max = 200 * kTimeNsPerUs;
  p.seed = seed;
  return p;
}

class LargeTopology : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LargeTopology, GeneratesValidatesAndSimulates) {
  const std::size_t tasks = GetParam();
  const SystemModel model = random_model(big_params(tasks, 21));
  EXPECT_EQ(model.num_tasks(), tasks);
  model.validate();

  const SimReport report = simulate(model, 2, big_platform(5));
  EXPECT_EQ(report.trace.num_periods(), 2u);
  EXPECT_EQ(report.trace.num_tasks(), tasks);
  // Every period must contain the always-firing first source.
  for (const Period& p : report.trace.periods()) {
    bool first_ran = false;
    for (const auto& e : p.executions()) {
      if (e.task.index() == 0) first_ran = true;
    }
    EXPECT_TRUE(first_ran);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LargeTopology,
                         ::testing::Values(std::size_t{100}, std::size_t{300},
                                           std::size_t{1000}));

// Soundness spot-check at the largest size: whatever the learner claims as
// an unconditional requirement must hold in every period of the clean
// trace it learned from (the repo's standard refutation oracle).
//
// The workload is deliberately *sparse*: every source but one is sporadic
// with a low fire_prob, so each period executes a few dozen of the 1000
// tasks.  Dense 1000-task periods are far beyond the learner hot path
// (per-message branching copies O(n^2) hypothesis matrices — the ROADMAP
// bottleneck; measured minutes per period at this size), while the sparse
// shape is also the realistic one for huge topologies (event-driven
// diagnostics, not 1000 lock-step tasks) — and it still exercises the
// full 1000x1000 matrix pipeline end to end.
TEST(LargeTopology, LearnerIsSoundAtThousandTasks) {
  RandomModelParams params = big_params(1000, 77);
  params.num_layers = 2;
  params.extra_edge_density = 0.0;
  params.disjunction_fraction = 0.0;
  params.sporadic_fraction = 1.0;
  params.sporadic_fire_prob = 0.015;
  const SystemModel model = random_model(params);
  const Trace trace = simulate_trace(model, 3, big_platform(6));

  RobustOnlineLearner learner(trace.task_names(), RobustConfig{});
  for (const Period& p : trace.periods()) {
    (void)learner.observe_raw_period(p.to_events());
  }
  EXPECT_EQ(learner.periods_learned(), trace.num_periods());
  EXPECT_EQ(learner.periods_quarantined(), 0u);

  std::vector<std::vector<bool>> ran;
  for (const Period& p : trace.periods()) {
    std::vector<bool> m(trace.num_tasks(), false);
    for (const auto& e : p.executions()) m[e.task.index()] = true;
    ran.push_back(std::move(m));
  }

  const DependencyMatrix lub = learner.snapshot().lub();
  ASSERT_EQ(lub.num_tasks(), trace.num_tasks());
  std::size_t refuted = 0;
  for (std::size_t a = 0; a < lub.num_tasks(); ++a) {
    for (std::size_t b = 0; b < lub.num_tasks(); ++b) {
      if (a == b) continue;
      const DepValue v = lub.at(a, b);
      if (!dep_requires_forward(v) && !dep_requires_backward(v)) continue;
      for (const auto& mask : ran) {
        if (mask[a] && !mask[b]) {
          ++refuted;
          break;
        }
      }
    }
  }
  EXPECT_EQ(refuted, 0u);
}

}  // namespace
}  // namespace bbmg
