// Chaos-hardening tests: the fault-injecting transport itself (seeded,
// deterministic), the frame decoder's adversarial-input behaviour
// (payload cap, FrameTooLarge, garbage streams), and a live server
// surviving a storm of chaotic connections.
#include <gtest/gtest.h>

#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gen/gm_case_study.hpp"
#include "serve/chaos_transport.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

/// In-memory Transport: reads from a scripted byte stream, records writes.
class MemoryTransport final : public net::Transport {
 public:
  explicit MemoryTransport(std::vector<std::uint8_t> incoming = {})
      : incoming_(std::move(incoming)) {}

  std::size_t read_some(std::uint8_t* data, std::size_t size) override {
    const std::size_t n = std::min(size, incoming_.size() - cursor_);
    std::memcpy(data, incoming_.data() + cursor_, n);
    cursor_ += n;
    return n;  // 0 at end-of-script == clean EOF
  }

  void write(const std::uint8_t* data, std::size_t size) override {
    written_.insert(written_.end(), data, data + size);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& written() const {
    return written_;
  }

 private:
  std::vector<std::uint8_t> incoming_;
  std::size_t cursor_{0};
  std::vector<std::uint8_t> written_;
};

Frame small_frame() {
  return SessionRefMsg{7}.to_frame(FrameType::Resume);
}

// -- FrameDecoder cap ------------------------------------------------------

TEST(FrameCap, OversizedDeclaredLengthThrowsTypedError) {
  FrameDecoder decoder;
  decoder.set_max_payload(1024);
  ASSERT_EQ(decoder.max_payload(), 1024u);

  std::vector<std::uint8_t> bytes;
  const std::uint32_t declared = 10u << 20;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>((declared >> (8 * i)) & 0xff));
  }
  bytes.push_back(static_cast<std::uint8_t>(FrameType::Events));
  decoder.feed(bytes.data(), bytes.size());
  try {
    (void)decoder.next();
    FAIL() << "expected FrameTooLarge";
  } catch (const FrameTooLarge& e) {
    EXPECT_EQ(e.declared(), declared);
    EXPECT_EQ(e.cap(), 1024u);
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos);
  }
}

TEST(FrameCap, FramesAtTheCapStillParse) {
  FrameDecoder decoder;
  Frame frame;
  frame.type = FrameType::Events;
  frame.payload.assign(64, 0xab);
  decoder.set_max_payload(64);

  std::vector<std::uint8_t> bytes;
  append_frame(bytes, frame);
  decoder.feed(bytes.data(), bytes.size());
  const std::optional<Frame> out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload.size(), 64u);

  // One byte over the cap is rejected.
  frame.payload.push_back(0xcd);
  bytes.clear();
  append_frame(bytes, frame);
  FrameDecoder strict;
  strict.set_max_payload(64);
  strict.feed(bytes.data(), bytes.size());
  EXPECT_THROW((void)strict.next(), FrameTooLarge);
}

TEST(FrameCap, ZeroKeepsAndLargeValuesClampToGlobalCap) {
  FrameDecoder decoder;
  decoder.set_max_payload(128);
  decoder.set_max_payload(0);  // keep
  EXPECT_EQ(decoder.max_payload(), 128u);
  decoder.set_max_payload(kMaxFramePayload * 4);  // clamp
  EXPECT_EQ(decoder.max_payload(), kMaxFramePayload);
}

TEST(FrameCap, GarbageStreamsThrowInsteadOfCrashing) {
  Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    FrameDecoder decoder;
    decoder.set_max_payload(4096);
    std::vector<std::uint8_t> junk(64 + rng.next_below(256));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    decoder.feed(junk.data(), junk.size());
    try {
      while (decoder.next().has_value()) {
      }
      // Draining without a throw is fine too (junk can look like an
      // incomplete frame); the property is "no crash, no huge alloc".
    } catch (const Error&) {
    }
  }
}

// -- ChaosTransport --------------------------------------------------------

net::ChaosConfig chaotic(std::uint64_t seed) {
  net::ChaosConfig config;
  config.seed = seed;
  config.delay_prob = 0.1;
  config.max_delay_us = 50;
  config.reset_prob = 0.2;
  config.partial_write_prob = 0.5;
  config.truncate_read_prob = 0.3;
  return config;
}

TEST(ChaosTransport, SameSeedSameFaults) {
  std::vector<std::uint8_t> outcome[2];
  std::uint64_t faults[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    MemoryTransport inner(std::vector<std::uint8_t>(512, 0x11));
    net::ChaosTransport chaos(inner, chaotic(42));
    const std::vector<std::uint8_t> payload(64, 0x44);
    std::uint8_t buf[64];
    try {
      for (int i = 0; i < 32; ++i) {
        chaos.write(payload.data(), payload.size());
        (void)chaos.read_some(buf, sizeof buf);
      }
    } catch (const Error&) {
    }
    outcome[run] = inner.written();
    faults[run] = chaos.injected_faults();
  }
  EXPECT_EQ(outcome[0], outcome[1]);
  EXPECT_EQ(faults[0], faults[1]);
  EXPECT_GT(faults[0], 0u);
}

TEST(ChaosTransport, ResetPoisonsTheTransport) {
  MemoryTransport inner(std::vector<std::uint8_t>(4096, 0x22));
  net::ChaosConfig config;
  config.seed = 7;
  config.reset_prob = 1.0;
  net::ChaosTransport chaos(inner, config);
  std::uint8_t buf[16];
  EXPECT_THROW((void)chaos.read_some(buf, sizeof buf), Error);
  // Every subsequent operation fails too — like a closed socket.
  EXPECT_THROW(chaos.write(buf, sizeof buf), Error);
  EXPECT_THROW((void)chaos.read_some(buf, sizeof buf), Error);
  EXPECT_GE(chaos.injected_faults(), 1u);
}

TEST(ChaosTransport, PartialWritesPreserveByteOrder) {
  MemoryTransport inner;
  net::ChaosConfig config;
  config.seed = 3;
  config.partial_write_prob = 1.0;  // fragment every write, never reset
  net::ChaosTransport chaos(inner, config);
  std::vector<std::uint8_t> payload(257);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i & 0xff);
  }
  chaos.write(payload.data(), payload.size());
  EXPECT_EQ(inner.written(), payload);  // fragmented but lossless in order
}

TEST(ChaosTransport, TruncatedReadDeliversStrictPrefixThenPoisons) {
  MemoryTransport inner(std::vector<std::uint8_t>(256, 0x33));
  net::ChaosConfig config;
  config.seed = 5;
  config.truncate_read_prob = 1.0;
  net::ChaosTransport chaos(inner, config);
  std::uint8_t buf[128];
  const std::size_t n = chaos.read_some(buf, sizeof buf);
  EXPECT_GT(n, 0u);
  EXPECT_LT(n, sizeof buf);
  EXPECT_THROW((void)chaos.read_some(buf, sizeof buf), Error);
}

// -- live server under chaotic clients ------------------------------------

TEST(ChaosTransport, AsymmetricPartitionDropsOneDirectionOnly) {
  // Model a one-way partition between peers A and B: A->B delivers, B->A
  // black-holes.  The dropping side reports success (no error, no
  // poisoning) — exactly the failure a sender cannot distinguish from a
  // slow peer until its reply deadline fires.
  std::vector<std::uint8_t> frame_bytes;
  append_frame(frame_bytes, small_frame());

  MemoryTransport a_to_b_wire;
  net::ChaosTransport a_to_b(a_to_b_wire, {});
  a_to_b.write(frame_bytes.data(), frame_bytes.size());
  EXPECT_EQ(a_to_b_wire.written(), frame_bytes);

  net::ChaosConfig black_hole;
  black_hole.drop_write_prob = 1.0;
  // B can still *hear* A on this transport; only its writes vanish.
  MemoryTransport b_to_a_wire(frame_bytes);
  net::ChaosTransport b_to_a(b_to_a_wire, black_hole);
  std::vector<std::uint8_t> heard(frame_bytes.size());
  EXPECT_EQ(b_to_a.read_some(heard.data(), heard.size()), heard.size());
  EXPECT_EQ(heard, frame_bytes);

  b_to_a.write(frame_bytes.data(), frame_bytes.size());
  b_to_a.write(frame_bytes.data(), frame_bytes.size());
  EXPECT_TRUE(b_to_a_wire.written().empty());
  EXPECT_FALSE(b_to_a.poisoned());
  EXPECT_EQ(b_to_a.injected_faults(), 2u);

  // A's decoder on the starved direction never sees a frame boundary —
  // the sender's only signal is silence.
  FrameDecoder decoder;
  decoder.feed(b_to_a_wire.written().data(), b_to_a_wire.written().size());
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ChaosTransport, DroppedWritesAreSeededAndDeterministic) {
  const auto faults_for_seed = [](std::uint64_t seed) {
    net::ChaosConfig config;
    config.seed = seed;
    config.drop_write_prob = 0.5;
    MemoryTransport inner;
    net::ChaosTransport chaos(inner, config);
    std::uint8_t byte = 0xab;
    for (int i = 0; i < 64; ++i) chaos.write(&byte, 1);
    return std::pair<std::uint64_t, std::size_t>{chaos.injected_faults(),
                                                 inner.written().size()};
  };
  const auto a = faults_for_seed(42);
  EXPECT_EQ(a, faults_for_seed(42));
  EXPECT_EQ(a.first + a.second, 64u);  // every write dropped xor delivered
  EXPECT_GT(a.first, 0u);
  EXPECT_GT(a.second, 0u);
}

TEST(ChaosEndToEnd, ServerSurvivesChaoticConnectionsAndStaysCorrect) {
  Server server;
  server.start();

  SimConfig sim;
  sim.seed = 13;
  const Trace trace = simulate_trace(gm_case_study_model(), 6, sim);

  // Open a clean control session first and learn the reference model.
  ServeClient control;
  control.connect("127.0.0.1", server.port());
  const std::uint32_t session = control.open_session(trace.task_names());
  control.send_trace(session, trace);
  const WireSnapshot want = control.query(session, /*drain=*/true);

  // Now hammer the server with chaotic connections that tear frames,
  // reset mid-handshake, and go silent.  None of them may take the
  // server (or the control session's model) down.
  std::size_t survived_rounds = 0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const int fd = net::connect_tcp("127.0.0.1", server.port());
    net::FdTransport socket(fd);
    net::ChaosTransport chaos(socket, chaotic(seed));
    FrameDecoder decoder;
    try {
      net::write_frame(chaos, HelloMsg{}.to_frame(FrameType::Hello));
      (void)net::read_frame(chaos, decoder);
      OpenSessionMsg open;
      open.task_names = trace.task_names();
      net::write_frame(chaos, open.to_frame());
      (void)net::read_frame(chaos, decoder);
      for (const Period& p : trace.periods()) {
        EventsMsg events;
        events.session = session + 1;  // best effort; may never arrive
        events.events = p.to_events();
        net::write_frame(chaos, events.to_frame());
        net::write_frame(chaos, small_frame());
      }
      ++survived_rounds;
    } catch (const Error&) {
      // Injected fault killed this connection — expected.
    }
    net::close_socket(fd);
  }
  (void)survived_rounds;

  // The server is still alive and the control session still serves the
  // exact model it learned before the storm.
  const WireSnapshot after = control.query(session, /*drain=*/false);
  EXPECT_TRUE(after.lub == want.lub);
  EXPECT_EQ(after.periods_seen, want.periods_seen);
  server.stop();
}

}  // namespace
}  // namespace bbmg
