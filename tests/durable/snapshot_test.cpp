// Snapshot codec: roundtrip fidelity (the restored learner is
// byte-identical), strict rejection of every corruption class, filename
// conventions, and the atomic file helpers.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.hpp"
#include "durable/snapshot.hpp"
#include "gen/gm_case_study.hpp"
#include "sim/simulator.hpp"

namespace bbmg::durable {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/bbmg_snap_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A learner with real state: the GM case study simulated for `periods`.
struct Fixture {
  Trace trace;
  SessionMeta meta;
  RobustOnlineLearner learner;
  StreamingTraceStats::Summary stats;

  explicit Fixture(std::size_t periods, std::uint64_t seed = 11)
      : trace([&] {
          SimConfig cfg;
          cfg.seed = seed;
          return simulate_trace(gm_case_study_model(), periods, cfg);
        }()),
        meta(),
        learner([&] {
          meta.session = 5;
          meta.task_names = trace.task_names();
          meta.config.online.bound = 12;
          meta.snapshot_interval = 4;
          return RobustOnlineLearner(meta.task_names, meta.config);
        }()) {
    StreamingTraceStats acc;
    for (const Period& p : trace.periods()) {
      const std::vector<Event> events = p.to_events();
      acc.observe_events(events);
      learner.observe_raw_period(events);
    }
    stats = acc.summary();
  }
};

std::vector<std::uint8_t> learner_bytes(const RobustOnlineLearner& l) {
  std::vector<std::uint8_t> out;
  l.encode_state(out);
  return out;
}

TEST(SnapshotCodec, RoundtripRestoresEverything) {
  Fixture fx(9);
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(fx.meta, 9, fx.stats, fx.learner);
  const LoadedSnapshot loaded = decode_snapshot(bytes);

  EXPECT_EQ(loaded.meta.session, 5u);
  EXPECT_EQ(loaded.meta.task_names, fx.trace.task_names());
  EXPECT_EQ(loaded.meta.config.online.bound, 12u);
  EXPECT_EQ(loaded.meta.snapshot_interval, 4u);
  EXPECT_EQ(loaded.seq, 9u);
  EXPECT_EQ(loaded.stats.periods, fx.stats.periods);
  EXPECT_EQ(loaded.stats.events, fx.stats.events);
  EXPECT_EQ(loaded.stats.max_makespan, fx.stats.max_makespan);
  EXPECT_EQ(learner_bytes(loaded.learner), learner_bytes(fx.learner));
}

TEST(SnapshotCodec, RestoredLearnerContinuesIdentically) {
  Fixture fx(6);
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(fx.meta, 6, fx.stats, fx.learner);
  LoadedSnapshot loaded = decode_snapshot(bytes);

  SimConfig cfg;
  cfg.seed = 99;
  const Trace more = simulate_trace(gm_case_study_model(), 5, cfg);
  for (const Period& p : more.periods()) {
    const std::vector<Event> events = p.to_events();
    fx.learner.observe_raw_period(events);
    loaded.learner.observe_raw_period(events);
  }
  EXPECT_EQ(learner_bytes(loaded.learner), learner_bytes(fx.learner));
}

TEST(SnapshotCodec, EveryCorruptionClassIsRejected) {
  Fixture fx(3);
  const std::vector<std::uint8_t> good =
      encode_snapshot(fx.meta, 3, fx.stats, fx.learner);

  auto mutated = [&](std::size_t offset) {
    std::vector<std::uint8_t> bad = good;
    bad[offset] ^= 0xff;
    return bad;
  };
  EXPECT_THROW((void)decode_snapshot(mutated(0)), Error);  // magic
  EXPECT_THROW((void)decode_snapshot(mutated(4)), Error);  // version
  // Payload byte: caught by the CRC before the payload decoder runs.
  EXPECT_THROW((void)decode_snapshot(mutated(good.size() / 2)), Error);
  // Trailing CRC itself.
  EXPECT_THROW((void)decode_snapshot(mutated(good.size() - 1)), Error);

  // Truncations at every region boundary.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, std::size_t{10}, good.size() - 2}) {
    const std::vector<std::uint8_t> cut(good.begin(), good.begin() + keep);
    EXPECT_THROW((void)decode_snapshot(cut), Error) << "keep=" << keep;
  }

  // Trailing garbage after the CRC.
  std::vector<std::uint8_t> padded = good;
  padded.push_back(0xaa);
  EXPECT_THROW((void)decode_snapshot(padded), Error);

  EXPECT_NO_THROW((void)decode_snapshot(good));
}

TEST(SnapshotCodec, DeclaredLengthBeyondCapIsRejected) {
  Fixture fx(2);
  std::vector<std::uint8_t> bad =
      encode_snapshot(fx.meta, 2, fx.stats, fx.learner);
  // Overwrite payload_len (bytes 6..9) with a huge value.
  const std::uint64_t huge = kMaxSnapshotPayload + 1;
  for (int i = 0; i < 4; ++i) {
    bad[6 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((huge >> (8 * i)) & 0xff);
  }
  EXPECT_THROW((void)decode_snapshot(bad), Error);
}

TEST(SnapshotFiles, FilenameRoundtrip) {
  EXPECT_EQ(snapshot_filename(0), "snap-0.bbsn");
  EXPECT_EQ(snapshot_filename(1234), "snap-1234.bbsn");
  EXPECT_EQ(parse_snapshot_filename("snap-1234.bbsn"), 1234u);
  EXPECT_EQ(parse_snapshot_filename("snap-0.bbsn"), 0u);
  EXPECT_EQ(parse_snapshot_filename("snap-.bbsn"), std::nullopt);
  EXPECT_EQ(parse_snapshot_filename("snap-12.tmp"), std::nullopt);
  EXPECT_EQ(parse_snapshot_filename("wal.bbwl"), std::nullopt);
  EXPECT_EQ(parse_snapshot_filename("snap-12x.bbsn"), std::nullopt);
}

TEST(SnapshotFiles, AtomicWriteAndLoadRoundtrip) {
  const std::string dir = fresh_dir("atomic");
  Fixture fx(4);
  const std::string path = dir + "/" + snapshot_filename(4);
  write_file_atomic(path, encode_snapshot(fx.meta, 4, fx.stats, fx.learner));
  const LoadedSnapshot loaded = load_snapshot_file(path);
  EXPECT_EQ(loaded.seq, 4u);
  EXPECT_EQ(learner_bytes(loaded.learner), learner_bytes(fx.learner));

  // Overwrite in place (a later snapshot reusing a name must not append).
  write_file_atomic(path, encode_snapshot(fx.meta, 4, fx.stats, fx.learner));
  EXPECT_NO_THROW((void)load_snapshot_file(path));
  // No .tmp litter left behind.
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".bbsn") << entry.path();
  }
}

TEST(SnapshotFiles, ReadFileBytesEnforcesCap) {
  const std::string dir = fresh_dir("cap");
  const std::string path = dir + "/blob";
  write_file_atomic(path, std::vector<std::uint8_t>(1024, 0x5a));
  EXPECT_EQ(read_file_bytes(path).size(), 1024u);
  EXPECT_THROW((void)read_file_bytes(path, 1023), Error);
  EXPECT_THROW((void)read_file_bytes(dir + "/missing"), Error);
}

}  // namespace
}  // namespace bbmg::durable
