// Startup recovery: snapshot + WAL-tail replay lands on byte-identical
// learner state, torn tails are truncated, corrupt files are quarantined
// (never fatal), and a stale WAL left by a crash between snapshot and
// rotate is replaced instead of corrupting the sequence.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.hpp"
#include "durable/recovery.hpp"
#include "durable/snapshot.hpp"
#include "durable/store.hpp"
#include "durable/wal.hpp"
#include "gen/gm_case_study.hpp"
#include "sim/simulator.hpp"

namespace bbmg::durable {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/bbmg_recovery_" + name;
  fs::remove_all(dir);
  return dir;
}

Trace gm_trace(std::uint64_t seed, std::size_t periods) {
  SimConfig cfg;
  cfg.seed = seed;
  return simulate_trace(gm_case_study_model(), periods, cfg);
}

std::vector<std::uint8_t> learner_bytes(const RobustOnlineLearner& l) {
  std::vector<std::uint8_t> out;
  l.encode_state(out);
  return out;
}

SessionMeta meta_for(const Trace& trace, std::uint32_t session = 0) {
  SessionMeta meta;
  meta.session = session;
  meta.task_names = trace.task_names();
  meta.snapshot_interval = 1;
  return meta;
}

/// Drive a store + learner the way LearningSession::process does: WAL
/// append, stats, learn, compact when due.  Returns the learner state
/// after the last period.
struct DrivenSession {
  RobustOnlineLearner learner;
  StreamingTraceStats stats;
  std::unique_ptr<SessionStore> store;
  std::uint64_t seq{0};

  DrivenSession(const DurableConfig& config, const SessionMeta& meta)
      : learner(meta.task_names, meta.config),
        store(SessionStore::create(config, meta, learner, {})) {}

  void apply(const std::vector<Event>& events) {
    ++seq;
    store->append_period(seq, events);
    stats.observe_events(events);
    learner.observe_raw_period(events);
    if (store->should_compact(seq)) {
      store->write_snapshot(seq, learner, stats.summary());
    }
  }
};

TEST(Recovery, FreshDirectoryRecoversNothingAndIsCreated) {
  const std::string dir = fresh_dir("fresh");
  DurableConfig config{dir, 32, 256};
  const RecoveryReport report = recover_all(config);
  EXPECT_TRUE(report.sessions.empty());
  EXPECT_TRUE(report.quarantined_files.empty());
  EXPECT_TRUE(fs::exists(dir));
}

TEST(Recovery, WalReplayRebuildsByteIdenticalState) {
  const std::string dir = fresh_dir("replay");
  DurableConfig config{dir, /*fsync_every=*/4, /*snapshot_every=*/0};
  const Trace trace = gm_trace(3, 10);

  RobustOnlineLearner baseline(trace.task_names(), RobustConfig{});
  {
    DrivenSession session(config, meta_for(trace));
    for (const Period& p : trace.periods()) {
      const std::vector<Event> events = p.to_events();
      session.apply(events);
      baseline.observe_raw_period(events);
    }
  }  // simulated crash: no shutdown snapshot

  RecoveryReport report = recover_all(config);
  ASSERT_EQ(report.sessions.size(), 1u);
  RecoveredSession& rec = report.sessions[0];
  EXPECT_EQ(rec.seq, 10u);
  EXPECT_EQ(rec.replayed, 10u);  // snapshot at 0, everything from the WAL
  EXPECT_EQ(rec.stats.periods, 10u);
  EXPECT_EQ(learner_bytes(rec.learner), learner_bytes(baseline));
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.torn_tails, 0u);
}

TEST(Recovery, CompactionShortensReplayWithoutChangingState) {
  const std::string dir = fresh_dir("compact");
  DurableConfig config{dir, 1, /*snapshot_every=*/4};
  const Trace trace = gm_trace(5, 10);

  RobustOnlineLearner baseline(trace.task_names(), RobustConfig{});
  {
    DrivenSession session(config, meta_for(trace));
    for (const Period& p : trace.periods()) {
      session.apply(p.to_events());
      baseline.observe_raw_period(p.to_events());
    }
  }

  RecoveryReport report = recover_all(config);
  ASSERT_EQ(report.sessions.size(), 1u);
  // Snapshots at 4 and 8; only 9 and 10 replay from the WAL.
  EXPECT_EQ(report.sessions[0].seq, 10u);
  EXPECT_EQ(report.sessions[0].replayed, 2u);
  EXPECT_EQ(learner_bytes(report.sessions[0].learner),
            learner_bytes(baseline));
  // Pruning kept at most kSnapshotsToKeep snapshot files.
  std::size_t snapshots = 0;
  for (const auto& entry : fs::directory_iterator(dir + "/session-0")) {
    if (entry.path().extension() == ".bbsn") ++snapshots;
  }
  EXPECT_LE(snapshots, kSnapshotsToKeep);
}

TEST(Recovery, TornWalTailIsTruncatedAndSessionContinues) {
  const std::string dir = fresh_dir("torn");
  DurableConfig config{dir, 1, 0};
  const Trace trace = gm_trace(7, 6);
  {
    DrivenSession session(config, meta_for(trace));
    for (const Period& p : trace.periods()) session.apply(p.to_events());
  }
  const std::string wal_path = dir + "/session-0/" + kWalFilename;
  truncate_file(wal_path, fs::file_size(wal_path) - 5);

  RecoveryReport report = recover_all(config);
  ASSERT_EQ(report.sessions.size(), 1u);
  EXPECT_EQ(report.sessions[0].seq, 5u);  // the torn 6th period is gone
  EXPECT_EQ(report.torn_tails, 1u);
  EXPECT_FALSE(report.diagnostics.empty());

  // The store recovery handed back keeps appending where replay stopped.
  report.sessions[0].store->append_period(6, trace.periods()[5].to_events());
  report.sessions[0].store->flush();
  const RecoveryReport again = recover_all(config);
  ASSERT_EQ(again.sessions.size(), 1u);
  EXPECT_EQ(again.sessions[0].seq, 6u);
  EXPECT_EQ(again.torn_tails, 0u);
}

TEST(Recovery, CorruptNewestSnapshotFallsBackAndQuarantines) {
  const std::string dir = fresh_dir("fallback");
  DurableConfig config{dir, 1, /*snapshot_every=*/4};
  const Trace trace = gm_trace(9, 8);  // snapshots at 4 and 8
  {
    DrivenSession session(config, meta_for(trace));
    for (const Period& p : trace.periods()) session.apply(p.to_events());
  }
  // Corrupt the newest snapshot (seq 8).
  const std::string newest = dir + "/session-0/" + snapshot_filename(8);
  ASSERT_TRUE(fs::exists(newest));
  std::vector<std::uint8_t> bytes = read_file_bytes(newest);
  bytes[bytes.size() / 2] ^= 0xff;
  write_file_atomic(newest, bytes);

  const RecoveryReport report = recover_all(config);
  ASSERT_EQ(report.sessions.size(), 1u);
  // Fell back to snap-4.  The WAL was rotated to base 8 at the last
  // compaction, so it cannot extend snap-4 (a gap) and is quarantined too.
  EXPECT_EQ(report.sessions[0].seq, 4u);
  EXPECT_GE(report.quarantined_files.size(), 2u);
  EXPECT_FALSE(report.diagnostics.empty());
  EXPECT_TRUE(fs::exists(dir + "/quarantine"));

  // The recovered session is fully serviceable: appends + re-recovery.
  report.sessions[0].store->append_period(5, trace.periods()[4].to_events());
  report.sessions[0].store->flush();
  const RecoveryReport again = recover_all(config);
  ASSERT_EQ(again.sessions.size(), 1u);
  EXPECT_EQ(again.sessions[0].seq, 5u);
}

TEST(Recovery, BadWalHeaderIsQuarantinedSnapshotSurvives) {
  const std::string dir = fresh_dir("badwal");
  DurableConfig config{dir, 1, /*snapshot_every=*/3};
  const Trace trace = gm_trace(2, 6);  // snapshots at 3 and 6
  {
    DrivenSession session(config, meta_for(trace));
    for (const Period& p : trace.periods()) session.apply(p.to_events());
  }
  const std::string wal_path = dir + "/session-0/" + kWalFilename;
  std::vector<std::uint8_t> bytes = read_file_bytes(wal_path);
  bytes[0] ^= 0xff;
  write_file_atomic(wal_path, bytes);

  const RecoveryReport report = recover_all(config);
  ASSERT_EQ(report.sessions.size(), 1u);
  EXPECT_EQ(report.sessions[0].seq, 6u);  // snapshot alone carries it
  EXPECT_EQ(report.quarantined_files.size(), 1u);
}

TEST(Recovery, AllSnapshotsCorruptDropsTheSession) {
  const std::string dir = fresh_dir("dropped");
  DurableConfig config{dir, 1, 0};
  const Trace trace = gm_trace(4, 3);
  {
    DrivenSession session(config, meta_for(trace));
    for (const Period& p : trace.periods()) session.apply(p.to_events());
  }
  for (const auto& entry : fs::directory_iterator(dir + "/session-0")) {
    if (entry.path().extension() != ".bbsn") continue;
    std::vector<std::uint8_t> bytes = read_file_bytes(entry.path().string());
    bytes[0] ^= 0xff;
    write_file_atomic(entry.path().string(), bytes);
  }

  const RecoveryReport report = recover_all(config);
  EXPECT_TRUE(report.sessions.empty());
  EXPECT_GE(report.quarantined_files.size(), 2u);  // snapshot(s) + WAL
  EXPECT_FALSE(report.diagnostics.empty());
}

TEST(Recovery, StaleWalIsReplacedNotExtended) {
  const std::string dir = fresh_dir("stale");
  DurableConfig config{dir, 1, 0};
  const Trace trace = gm_trace(6, 4);
  RobustOnlineLearner full(trace.task_names(), RobustConfig{});
  StreamingTraceStats full_stats;
  {
    DrivenSession session(config, meta_for(trace));
    // WAL holds seqs 1..2 only.
    for (std::size_t i = 0; i < 2; ++i) {
      session.apply(trace.periods()[i].to_events());
    }
  }
  for (const Period& p : trace.periods()) {
    full_stats.observe_events(p.to_events());
    full.observe_raw_period(p.to_events());
  }
  // Simulate a crash between "snapshot at 4 durably renamed" and "WAL
  // rotated": hand-write snap-4 while the WAL still ends at seq 2.
  write_file_atomic(dir + "/session-0/" + snapshot_filename(4),
                    encode_snapshot(meta_for(trace), 4, full_stats.summary(),
                                    full));

  RecoveryReport report = recover_all(config);
  ASSERT_EQ(report.sessions.size(), 1u);
  EXPECT_EQ(report.sessions[0].seq, 4u);
  EXPECT_EQ(report.sessions[0].replayed, 0u);
  bool mentioned = false;
  for (const std::string& d : report.diagnostics) {
    if (d.find("stale") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned);

  // Appending seq 5 through the replaced WAL must survive re-recovery
  // (the old stale log would have made the tail look torn).
  report.sessions[0].store->append_period(5, trace.periods()[0].to_events());
  report.sessions[0].store->flush();
  const RecoveryReport again = recover_all(config);
  ASSERT_EQ(again.sessions.size(), 1u);
  EXPECT_EQ(again.sessions[0].seq, 5u);
  EXPECT_EQ(again.torn_tails, 0u);
}

TEST(Recovery, MultipleSessionsRecoverIndependently) {
  const std::string dir = fresh_dir("multi");
  DurableConfig config{dir, 1, 0};
  const Trace trace = gm_trace(8, 5);
  std::vector<std::vector<std::uint8_t>> want;
  for (std::uint32_t id = 0; id < 3; ++id) {
    DrivenSession session(config, meta_for(trace, id));
    RobustOnlineLearner baseline(trace.task_names(), RobustConfig{});
    for (std::size_t i = 0; i <= id + 1; ++i) {
      session.apply(trace.periods()[i].to_events());
      baseline.observe_raw_period(trace.periods()[i].to_events());
    }
    want.push_back(learner_bytes(baseline));
  }

  const RecoveryReport report = recover_all(config);
  ASSERT_EQ(report.sessions.size(), 3u);
  for (std::uint32_t id = 0; id < 3; ++id) {
    EXPECT_EQ(report.sessions[id].meta.session, id);
    EXPECT_EQ(report.sessions[id].seq, id + 2u);
    EXPECT_EQ(learner_bytes(report.sessions[id].learner), want[id]);
  }
}

TEST(Recovery, NonSessionEntriesAreIgnored) {
  const std::string dir = fresh_dir("ignore");
  DurableConfig config{dir, 1, 0};
  fs::create_directories(dir + "/not-a-session");
  fs::create_directories(dir + "/session-abc");
  write_file_atomic(dir + "/stray.txt", {0x41});
  const RecoveryReport report = recover_all(config);
  EXPECT_TRUE(report.sessions.empty());
}

}  // namespace
}  // namespace bbmg::durable
