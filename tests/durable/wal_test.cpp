// Write-ahead log: append/scan roundtrips, torn-tail detection and repair,
// rotation, and header validation — the byte-level contract recovery
// stands on.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.hpp"
#include "durable/checksum.hpp"
#include "durable/snapshot.hpp"
#include "durable/wal.hpp"
#include "trace/binary_codec.hpp"

namespace bbmg::durable {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/bbmg_wal_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<Event> period_of(std::uint64_t t, std::uint32_t task) {
  return {Event::task_start(t, TaskId{task}),
          Event::task_end(t + 100, TaskId{task})};
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  return read_file_bytes(path);
}

bool same_events(const std::vector<Event>& a, const std::vector<Event>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].kind != b[i].kind ||
        a[i].task != b[i].task || a[i].can_id != b[i].can_id) {
      return false;
    }
  }
  return true;
}

TEST(Wal, CreateAppendScanRoundtrip) {
  const std::string path = fresh_dir("roundtrip") + "/" + kWalFilename;
  WalWriter w;
  w.create(path, 7, 0, /*fsync_every=*/2);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    w.append(seq, period_of(seq * 1000, static_cast<std::uint32_t>(seq % 3)));
  }
  EXPECT_EQ(w.last_seq(), 5u);
  w.close();

  const std::vector<std::uint8_t> bytes = slurp(path);
  const WalScan scan = scan_wal(bytes);
  EXPECT_EQ(scan.session, 7u);
  EXPECT_EQ(scan.base_seq, 0u);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, bytes.size());
  ASSERT_EQ(scan.records.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(scan.records[i].seq, i + 1);
    EXPECT_TRUE(same_events(
        scan.records[i].events,
        period_of((i + 1) * 1000, static_cast<std::uint32_t>((i + 1) % 3))));
  }
}

TEST(Wal, EmptyLogScansClean) {
  const std::string path = fresh_dir("empty") + "/" + kWalFilename;
  WalWriter w;
  w.create(path, 3, 42, 1);
  w.close();
  const WalScan scan = scan_wal(slurp(path));
  EXPECT_EQ(scan.session, 3u);
  EXPECT_EQ(scan.base_seq, 42u);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, kWalHeaderSize);
}

TEST(Wal, ReopenAppendsContiguously) {
  const std::string path = fresh_dir("reopen") + "/" + kWalFilename;
  {
    WalWriter w;
    w.create(path, 1, 0, 1);
    w.append(1, period_of(10, 0));
    w.append(2, period_of(20, 1));
  }
  const WalScan first = scan_wal(slurp(path));
  ASSERT_EQ(first.records.size(), 2u);

  WalWriter w;
  w.open(path, 1, first.base_seq, first.records.back().seq, 1);
  w.append(3, period_of(30, 2));
  w.close();

  const WalScan scan = scan_wal(slurp(path));
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records.back().seq, 3u);
  EXPECT_FALSE(scan.torn_tail);
}

TEST(Wal, TornTailIsDetectedTruncatedAndReusable) {
  const std::string path = fresh_dir("torn") + "/" + kWalFilename;
  {
    WalWriter w;
    w.create(path, 9, 0, 1);
    for (std::uint64_t seq = 1; seq <= 3; ++seq) {
      w.append(seq, period_of(seq, 0));
    }
  }
  // A SIGKILL mid-append leaves a partial final record.
  const std::uint64_t full = fs::file_size(path);
  truncate_file(path, full - 3);

  const WalScan scan = scan_wal(slurp(path));
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_LT(scan.valid_bytes, full - 3);

  // Recovery's repair: truncate to the last good byte, reopen, append.
  truncate_file(path, scan.valid_bytes);
  const WalScan repaired = scan_wal(slurp(path));
  EXPECT_FALSE(repaired.torn_tail);
  ASSERT_EQ(repaired.records.size(), 2u);

  WalWriter w;
  w.open(path, 9, 0, 2, 1);
  w.append(3, period_of(3, 0));
  w.close();
  EXPECT_EQ(scan_wal(slurp(path)).records.size(), 3u);
}

TEST(Wal, CorruptPayloadEndsScanAtLastGoodRecord) {
  const std::string path = fresh_dir("crc") + "/" + kWalFilename;
  {
    WalWriter w;
    w.create(path, 2, 0, 1);
    w.append(1, period_of(1, 0));
    w.append(2, period_of(2, 1));
  }
  std::vector<std::uint8_t> bytes = slurp(path);
  bytes.back() ^= 0xff;  // flip a byte in record 2's payload
  const WalScan scan = scan_wal(bytes);
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].seq, 1u);
}

TEST(Wal, SequenceGapEndsScan) {
  const std::string path = fresh_dir("gap") + "/" + kWalFilename;
  {
    WalWriter w;
    w.create(path, 4, 0, 1);
    w.append(1, period_of(1, 0));
  }
  // Hand-craft a record with seq 3 (a hole: 2 is missing).
  std::vector<std::uint8_t> bytes = slurp(path);
  std::vector<std::uint8_t> payload;
  const std::vector<Event> events = period_of(9, 0);
  append_u32(payload, static_cast<std::uint32_t>(events.size()));
  for (const Event& e : events) append_event(payload, e);
  append_u64(bytes, 3);
  append_u32(bytes, static_cast<std::uint32_t>(payload.size()));
  append_u32(bytes, crc32(payload));
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  const WalScan scan = scan_wal(bytes);
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 1u);
}

TEST(Wal, BadHeaderThrows) {
  const std::string path = fresh_dir("header") + "/" + kWalFilename;
  {
    WalWriter w;
    w.create(path, 5, 0, 1);
    w.append(1, period_of(1, 0));
  }
  std::vector<std::uint8_t> bytes = slurp(path);
  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[0] ^= 0xff;  // magic
  EXPECT_THROW((void)scan_wal(corrupt), Error);

  corrupt = bytes;
  corrupt[4] ^= 0xff;  // version
  EXPECT_THROW((void)scan_wal(corrupt), Error);

  const std::vector<std::uint8_t> tiny(bytes.begin(),
                                       bytes.begin() + kWalHeaderSize - 1);
  EXPECT_THROW((void)scan_wal(tiny), Error);
}

TEST(Wal, OversizedRecordLengthEndsScan) {
  const std::string path = fresh_dir("oversize") + "/" + kWalFilename;
  {
    WalWriter w;
    w.create(path, 6, 0, 1);
  }
  std::vector<std::uint8_t> bytes = slurp(path);
  append_u64(bytes, 1);
  append_u32(bytes, static_cast<std::uint32_t>(kMaxWalRecordPayload + 1));
  append_u32(bytes, 0);
  const WalScan scan = scan_wal(bytes);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, kWalHeaderSize);
}

TEST(Wal, RotateRestartsAtNewBase) {
  const std::string path = fresh_dir("rotate") + "/" + kWalFilename;
  WalWriter w;
  w.create(path, 8, 0, 1);
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    w.append(seq, period_of(seq, 0));
  }
  w.rotate(4);
  EXPECT_EQ(w.base_seq(), 4u);
  EXPECT_EQ(w.last_seq(), 4u);
  w.append(5, period_of(5, 1));
  w.close();

  const WalScan scan = scan_wal(slurp(path));
  EXPECT_EQ(scan.base_seq, 4u);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].seq, 5u);
}

TEST(Wal, StreamingFileScanMatchesInMemoryScan) {
  const std::string path = fresh_dir("stream") + "/" + kWalFilename;
  {
    WalWriter w;
    w.create(path, 7, 2, 1);
    for (std::uint64_t seq = 3; seq <= 7; ++seq) {
      w.append(seq,
               period_of(seq * 10, static_cast<std::uint32_t>(seq % 3)));
    }
  }
  const WalScan mem = scan_wal(slurp(path));
  std::vector<WalRecord> streamed;
  const WalFileScan file = scan_wal_file(
      path, [&](WalRecord&& rec) { streamed.push_back(std::move(rec)); });
  EXPECT_EQ(file.session, mem.session);
  EXPECT_EQ(file.base_seq, mem.base_seq);
  EXPECT_EQ(file.torn_tail, mem.torn_tail);
  EXPECT_FALSE(file.torn_tail);
  EXPECT_EQ(file.valid_bytes, mem.valid_bytes);
  EXPECT_EQ(file.records, mem.records.size());
  EXPECT_EQ(file.last_seq, 7u);
  ASSERT_EQ(streamed.size(), mem.records.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].seq, mem.records[i].seq);
    EXPECT_TRUE(same_events(streamed[i].events, mem.records[i].events));
  }
}

TEST(Wal, StreamingFileScanDetectsTornTail) {
  const std::string path = fresh_dir("stream_torn") + "/" + kWalFilename;
  {
    WalWriter w;
    w.create(path, 9, 0, 1);
    for (std::uint64_t seq = 1; seq <= 3; ++seq) {
      w.append(seq, period_of(seq, 0));
    }
  }
  truncate_file(path, fs::file_size(path) - 3);
  const WalScan mem = scan_wal(slurp(path));
  std::uint64_t delivered = 0;
  const WalFileScan file =
      scan_wal_file(path, [&](WalRecord&&) { ++delivered; });
  EXPECT_TRUE(file.torn_tail);
  EXPECT_EQ(file.records, 2u);
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(file.last_seq, 2u);
  EXPECT_EQ(file.valid_bytes, mem.valid_bytes);
}

TEST(Wal, ReadWalHeaderValidatesAndThrows) {
  const std::string path = fresh_dir("header_read") + "/" + kWalFilename;
  {
    WalWriter w;
    w.create(path, 11, 7, 1);
  }
  const WalHeader header = read_wal_header(path);
  EXPECT_EQ(header.session, 11u);
  EXPECT_EQ(header.base_seq, 7u);

  std::vector<std::uint8_t> corrupt = slurp(path);
  corrupt[0] ^= 0xff;  // magic
  write_file_atomic(path, corrupt);
  EXPECT_THROW((void)read_wal_header(path), Error);
  EXPECT_THROW((void)scan_wal_file(path, [](WalRecord&&) {}), Error);
  EXPECT_THROW((void)read_wal_header(path + ".missing"), Error);
}

TEST(Wal, FlushReportsDurableHighWater) {
  const std::string path = fresh_dir("flush") + "/" + kWalFilename;
  WalWriter w;
  w.create(path, 1, 0, /*fsync_every=*/100);
  w.append(1, period_of(1, 0));
  w.append(2, period_of(2, 0));
  EXPECT_EQ(w.flush(), 2u);
}

}  // namespace
}  // namespace bbmg::durable
