// Crash-safety acceptance tests.  The heart of the PR: a bbmg_served
// process is SIGKILLed at randomized points mid-stream (seeds 0..15),
// restarted on the same data directory, and the client resumes via
// sequence numbers — the final served model must be byte-identical to an
// uninterrupted run.  Also covers graceful SIGTERM drain (exit 0, zero
// replay on restart), in-process restart recovery, and duplicate-resend
// idempotence.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/error.hpp"
#include "gen/gm_case_study.hpp"
#include "serve/resilient_client.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"

#ifndef BBMG_SERVED_BIN
#error "BBMG_SERVED_BIN must point at the bbmg_served executable"
#endif

namespace bbmg {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/bbmg_crash_" + name;
  fs::remove_all(dir);
  return dir;
}

Trace gm_trace(std::uint64_t seed, std::size_t periods) {
  SimConfig cfg;
  cfg.seed = seed;
  return simulate_trace(gm_case_study_model(), periods, cfg);
}

/// The model an uninterrupted learner (server defaults) produces.
DependencyMatrix baseline_model(const Trace& trace) {
  const SessionConfig cfg = OpenSessionMsg{}.to_session_config();
  RobustOnlineLearner learner(trace.task_names(), cfg.robust);
  for (const Period& p : trace.periods()) {
    learner.observe_raw_period(p.to_events());
  }
  return learner.full_snapshot().result.lub();
}

/// A bbmg_served child process with captured stdout.
struct ServerProcess {
  pid_t pid{-1};
  int out_fd{-1};
  std::uint16_t port{0};
  std::string banner;

  static ServerProcess start(const std::string& data_dir,
                             const std::vector<std::string>& extra = {}) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) raise("test: pipe failed");
    const pid_t pid = ::fork();
    if (pid < 0) raise("test: fork failed");
    if (pid == 0) {
      ::dup2(pipe_fds[1], STDOUT_FILENO);
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      std::vector<std::string> args{BBMG_SERVED_BIN, "0",          "2",
                                    "64",            "--data-dir", data_dir,
                                    "--fsync-every", "1"};
      args.insert(args.end(), extra.begin(), extra.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(BBMG_SERVED_BIN, argv.data());
      ::_exit(127);
    }
    ::close(pipe_fds[1]);
    ServerProcess proc;
    proc.pid = pid;
    proc.out_fd = pipe_fds[0];
    proc.wait_for_listen();
    return proc;
  }

  void wait_for_listen() {
    const std::string needle = "listening on 127.0.0.1:";
    char buf[512];
    while (banner.find(needle) == std::string::npos) {
      const ssize_t n = ::read(out_fd, buf, sizeof buf);
      if (n <= 0) {
        raise("test: server exited before listening; output so far:\n" +
              banner);
      }
      banner.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t at = banner.find(needle) + needle.size();
    port = static_cast<std::uint16_t>(
        std::strtoul(banner.c_str() + at, nullptr, 10));
  }

  /// Drain whatever stdout remains (after the child exited).
  void drain_output() {
    char buf[512];
    ssize_t n;
    while ((n = ::read(out_fd, buf, sizeof buf)) > 0) {
      banner.append(buf, static_cast<std::size_t>(n));
    }
  }

  void kill_hard() {
    if (pid < 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    close_out();
  }

  /// SIGTERM graceful drain; returns the child's exit code.
  int terminate() {
    if (pid < 0) return -1;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    drain_output();
    close_out();
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
  }

  void close_out() {
    if (out_fd >= 0) ::close(out_fd);
    out_fd = -1;
  }

  ~ServerProcess() {
    if (pid > 0) kill_hard();
    close_out();
  }

  ServerProcess() = default;
  ServerProcess(ServerProcess&& o) noexcept
      : pid(o.pid), out_fd(o.out_fd), port(o.port),
        banner(std::move(o.banner)) {
    o.pid = -1;
    o.out_fd = -1;
  }
  ServerProcess& operator=(ServerProcess&& o) noexcept {
    if (this != &o) {
      if (pid > 0) kill_hard();
      close_out();
      pid = o.pid;
      out_fd = o.out_fd;
      port = o.port;
      banner = std::move(o.banner);
      o.pid = -1;
      o.out_fd = -1;
    }
    return *this;
  }
  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;
};

RetryConfig fast_retries(std::uint64_t seed) {
  RetryConfig config;
  config.max_retries = 8;
  config.base_backoff_ms = 5;
  config.max_backoff_ms = 100;
  config.request_timeout_ms = 5000;
  config.seed = seed;
  return config;
}

// -- the acceptance criterion ----------------------------------------------

TEST(CrashRecovery, SigkillAtRandomizedPointsRecoversByteIdenticalModels) {
  const std::size_t kPeriods = 24;
  const Trace trace = gm_trace(21, kPeriods);
  const DependencyMatrix want = baseline_model(trace);

  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string dir = fresh_dir("kill_" + std::to_string(seed));
    ServerProcess server =
        ServerProcess::start(dir, {"--snapshot-every", "4"});

    ResilientClient client(fast_retries(seed));
    client.connect("127.0.0.1", server.port);
    const std::uint32_t session = client.open_session(trace.task_names());

    // Kill somewhere strictly inside the stream, varied per seed.
    const std::size_t kill_at = 1 + (seed * 7 + 3) % (kPeriods - 1);
    for (std::size_t i = 0; i < kPeriods; ++i) {
      if (i == kill_at) {
        server.kill_hard();
        server = ServerProcess::start(dir, {"--snapshot-every", "4"});
        client.set_endpoint("127.0.0.1", server.port);
      }
      client.send_period(session, trace.periods()[i].to_events());
    }
    const std::uint64_t high_water = client.flush(session);
    EXPECT_EQ(high_water, kPeriods);
    EXPECT_EQ(client.unacked(session), 0u);

    const WireSnapshot snap = client.query(session, /*drain=*/true);
    EXPECT_TRUE(snap.lub == want)
        << "recovered model diverged from the uninterrupted baseline";
    EXPECT_EQ(snap.periods_seen, kPeriods);
    EXPECT_EQ(server.terminate(), 0);
  }
}

TEST(CrashRecovery, GracefulSigtermDrainsCheckpointsAndExitsZero) {
  const Trace trace = gm_trace(4, 12);
  const DependencyMatrix want = baseline_model(trace);
  const std::string dir = fresh_dir("graceful");

  std::uint32_t session = 0;
  {
    ServerProcess server = ServerProcess::start(dir);
    ResilientClient client(fast_retries(1));
    client.connect("127.0.0.1", server.port);
    session = client.open_session(trace.task_names());
    for (const Period& p : trace.periods()) {
      client.send_period(session, p.to_events());
    }
    client.flush(session);
    client.disconnect();
    EXPECT_EQ(server.terminate(), 0);
    EXPECT_NE(server.banner.find("checkpointed"), std::string::npos);
  }

  // Restart: everything is in the shutdown snapshot, nothing to replay.
  ServerProcess server = ServerProcess::start(dir);
  EXPECT_NE(server.banner.find("recovery: 1 sessions, 0 periods replayed"),
            std::string::npos)
      << server.banner;

  ResilientClient client(fast_retries(2));
  client.connect("127.0.0.1", server.port);
  client.attach_session(session);
  const WireSnapshot snap = client.query(session, /*drain=*/false);
  EXPECT_TRUE(snap.lub == want);
  EXPECT_EQ(snap.periods_seen, trace.num_periods());
  EXPECT_EQ(server.terminate(), 0);
}

// -- in-process restart + idempotence --------------------------------------

ServerConfig durable_server_config(const std::string& dir) {
  ServerConfig config;
  config.manager.workers = 2;
  config.manager.durable.dir = dir;
  config.manager.durable.fsync_every = 1;
  config.manager.durable.snapshot_every = 4;
  return config;
}

TEST(CrashRecovery, InProcessRestartContinuesTheSession) {
  const Trace trace = gm_trace(17, 10);
  const DependencyMatrix want = baseline_model(trace);
  const std::string dir = fresh_dir("inprocess");

  std::uint32_t session = 0;
  {
    Server server(durable_server_config(dir));
    server.start();
    ServeClient client;
    client.connect("127.0.0.1", server.port());
    session = client.open_session(trace.task_names());
    for (std::size_t i = 0; i < 6; ++i) {
      client.send_period(session, trace.periods()[i].to_events(), i + 1);
    }
    EXPECT_EQ(client.resume(session), 6u);
    client.disconnect();
    server.stop();  // destructor path: no checkpoint_all — WAL carries it
  }

  Server server(durable_server_config(dir));
  EXPECT_EQ(server.manager().recovery().sessions, 1u);
  server.start();
  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const std::uint64_t high_water = client.resume(session);
  EXPECT_EQ(high_water, 6u);
  for (std::size_t i = 6; i < 10; ++i) {
    client.send_period(session, trace.periods()[i].to_events(), i + 1);
  }
  const WireSnapshot snap = client.query(session, /*drain=*/true);
  EXPECT_TRUE(snap.lub == want);
  EXPECT_EQ(snap.periods_seen, trace.num_periods());
  server.stop();
}

TEST(CrashRecovery, DuplicateResendsAreDroppedIdempotently) {
  const Trace trace = gm_trace(29, 5);
  const std::string dir = fresh_dir("dedup");
  Server server(durable_server_config(dir));
  server.start();

  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const std::uint32_t session = client.open_session(trace.task_names());
  for (std::size_t i = 0; i < 3; ++i) {
    client.send_period(session, trace.periods()[i].to_events(), i + 1);
  }
  EXPECT_EQ(client.resume(session), 3u);

  // A reconnecting client replays its unacked tail: all duplicates.
  for (std::size_t i = 0; i < 3; ++i) {
    client.send_period(session, trace.periods()[i].to_events(), i + 1);
  }
  EXPECT_EQ(client.resume(session), 3u);
  EXPECT_EQ(client.query(session, true).periods_seen, 3u);

  // The next fresh sequence number still applies.
  client.send_period(session, trace.periods()[3].to_events(), 4);
  EXPECT_EQ(client.resume(session), 4u);
  EXPECT_EQ(client.query(session, true).periods_seen, 4u);
  server.stop();
}

TEST(CrashRecovery, UnsequencedSubmissionsStillWorkAgainstDurableServer) {
  // v1-style clients (seq 0) must keep working when durability is on.
  const Trace trace = gm_trace(31, 6);
  const std::string dir = fresh_dir("unsequenced");
  Server server(durable_server_config(dir));
  server.start();
  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const std::uint32_t session = client.open_session(trace.task_names());
  for (const Period& p : trace.periods()) {
    client.send_period(session, p.to_events());  // seq 0 = unsequenced
  }
  const WireSnapshot snap = client.query(session, /*drain=*/true);
  EXPECT_EQ(snap.periods_seen, trace.num_periods());
  EXPECT_TRUE(snap.lub == baseline_model(trace));
  server.stop();
}

}  // namespace
}  // namespace bbmg
