// Lenient loader: a clean file ingests bit-identically to the strict
// reader; a damaged file yields line-level diagnostics and a surviving
// trace instead of an exception.
#include <gtest/gtest.h>

#include "gen/random_model.hpp"
#include "robust/lenient_loader.hpp"
#include "sim/simulator.hpp"
#include "trace/serialize.hpp"

namespace bbmg {
namespace {

bool traces_equal(const Trace& a, const Trace& b) {
  if (a.task_names() != b.task_names()) return false;
  if (a.num_periods() != b.num_periods()) return false;
  for (std::size_t p = 0; p < a.num_periods(); ++p) {
    const Period& pa = a.periods()[p];
    const Period& pb = b.periods()[p];
    if (pa.executions().size() != pb.executions().size()) return false;
    if (pa.messages().size() != pb.messages().size()) return false;
    for (std::size_t i = 0; i < pa.executions().size(); ++i) {
      const auto& x = pa.executions()[i];
      const auto& y = pb.executions()[i];
      if (x.task != y.task || x.start != y.start || x.end != y.end)
        return false;
    }
    for (std::size_t i = 0; i < pa.messages().size(); ++i) {
      const auto& x = pa.messages()[i];
      const auto& y = pb.messages()[i];
      if (x.rise != y.rise || x.fall != y.fall || x.can_id != y.can_id)
        return false;
    }
  }
  return true;
}

Trace simulated_trace(std::uint64_t seed) {
  RandomModelParams params;
  params.num_tasks = 8;
  params.num_layers = 3;
  params.seed = seed;
  SimConfig cfg;
  cfg.seed = seed * 31 + 1;
  return simulate_trace(random_model(params), 6, cfg);
}

TEST(LenientLoader, CleanTraceMatchesStrictReader) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Trace t = simulated_trace(seed);
    const std::string text = trace_to_string(t);
    const Trace strict = trace_from_string(text);
    const IngestReport rep = ingest_trace_string(text);
    EXPECT_TRUE(rep.clean());
    EXPECT_TRUE(rep.header_ok);
    EXPECT_EQ(rep.periods_seen, t.num_periods());
    EXPECT_EQ(rep.kept_periods.size(), t.num_periods());
    EXPECT_TRUE(rep.quarantined_periods.empty());
    EXPECT_TRUE(traces_equal(strict, rep.trace));
  }
}

TEST(LenientLoader, BadLinesAreSkippedWithDiagnostics) {
  const std::string text =
      "trace-version 1\n"   // 1
      "tasks a b\n"         // 2
      "period\n"            // 3
      "start a 0\n"         // 4
      "boom a 0\n"          // 5: unknown keyword
      "end a x9\n"          // 6: bad time
      "end a 1000\n"        // 7
      "start zz 1100\n"     // 8: unknown task
      "end-period\n";       // 9
  const IngestReport rep = ingest_trace_string(text);
  EXPECT_TRUE(rep.header_ok);
  ASSERT_EQ(rep.diagnostics.size(), 3u);
  EXPECT_EQ(rep.diagnostics[0].line_no, 5u);
  EXPECT_NE(rep.diagnostics[0].message.find("boom"), std::string::npos);
  EXPECT_EQ(rep.diagnostics[1].line_no, 6u);
  EXPECT_EQ(rep.diagnostics[2].line_no, 8u);
  EXPECT_NE(rep.diagnostics[2].message.find("zz"), std::string::npos);
  // The period survives: task a's execution was intact.
  EXPECT_EQ(rep.trace.num_periods(), 1u);
  EXPECT_EQ(rep.trace.periods()[0].executions().size(), 1u);
}

TEST(LenientLoader, UnusableVersionHeaderAbortsIngestion) {
  const IngestReport rep = ingest_trace_string("garbage\n");
  EXPECT_FALSE(rep.header_ok);
  ASSERT_EQ(rep.diagnostics.size(), 1u);
  EXPECT_NE(rep.diagnostics[0].message.find("trace-version"),
            std::string::npos);
  EXPECT_EQ(rep.trace.num_periods(), 0u);
  EXPECT_FALSE(rep.clean());
}

TEST(LenientLoader, MissingTasksHeaderAbortsIngestion) {
  const IngestReport rep = ingest_trace_string("trace-version 1\nperiod\n");
  EXPECT_FALSE(rep.header_ok);
  ASSERT_EQ(rep.diagnostics.size(), 1u);
  EXPECT_NE(rep.diagnostics[0].message.find("tasks"), std::string::npos);
}

TEST(LenientLoader, EventOutsidePeriodIsDiagnosed) {
  const std::string text =
      "trace-version 1\n"
      "tasks a\n"
      "start a 0\n"  // line 3: no 'period' opened
      "period\nstart a 0\nend a 10\nend-period\n";
  const IngestReport rep = ingest_trace_string(text);
  ASSERT_EQ(rep.diagnostics.size(), 1u);
  EXPECT_EQ(rep.diagnostics[0].line_no, 3u);
  EXPECT_EQ(rep.trace.num_periods(), 1u);
}

TEST(LenientLoader, QuarantineFlowsThroughFromSanitizer) {
  const std::string text =
      "trace-version 1\n"
      "tasks a b\n"
      "period\nstart a 0\nend a 10\nend-period\n"
      "period\nend b 5\nend-period\n";  // orphan end: quarantined
  const IngestReport rep = ingest_trace_string(text);
  EXPECT_TRUE(rep.diagnostics.empty());  // every line parsed fine
  EXPECT_EQ(rep.periods_seen, 2u);
  EXPECT_EQ(rep.kept_periods, (std::vector<std::size_t>{0}));
  EXPECT_EQ(rep.quarantined_periods, (std::vector<std::size_t>{1}));
  ASSERT_EQ(rep.quarantined_observed.size(), 1u);
  EXPECT_FALSE(rep.quarantined_observed[0][0]);
  EXPECT_TRUE(rep.quarantined_observed[0][1]);
  EXPECT_NEAR(rep.quarantine_rate(), 0.5, 1e-12);
  EXPECT_FALSE(rep.clean());
}

TEST(LenientLoader, SummaryMentionsTheAccounting) {
  const Trace t = simulated_trace(4);
  const IngestReport rep = ingest_trace_string(trace_to_string(t));
  const std::string s = rep.summary();
  EXPECT_NE(s.find("periods ingested"), std::string::npos);
  EXPECT_NE(s.find("0 bad lines"), std::string::npos);
}

TEST(LenientLoader, MissingFileReportsInsteadOfThrowing) {
  const IngestReport rep =
      load_trace_file_lenient("/nonexistent/dir/trace.txt");
  EXPECT_FALSE(rep.header_ok);
  ASSERT_EQ(rep.diagnostics.size(), 1u);
  EXPECT_EQ(rep.diagnostics[0].line_no, 0u);
}

TEST(LenientLoader, FileRoundTrip) {
  const Trace t = simulated_trace(5);
  const std::string path = ::testing::TempDir() + "/bbmg_lenient_test.txt";
  save_trace_file(path, t);
  const IngestReport rep = load_trace_file_lenient(path);
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(traces_equal(t, rep.trace));
}

}  // namespace
}  // namespace bbmg
