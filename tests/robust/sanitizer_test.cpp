// TraceSanitizer unit tests: one test per defect kind, across the three
// policies (Strict throws, Repair fixes what is safely fixable, Quarantine
// drops the period on any defect).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gen/random_model.hpp"
#include "robust/sanitizer.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

std::vector<std::string> two_tasks() { return {"a", "b"}; }

// start a, end a, one message, start b, end b — valid under every policy.
std::vector<Event> clean_events() {
  return {Event::task_start(0, TaskId{0u}),  Event::task_end(1000, TaskId{0u}),
          Event::msg_rise(1100, 5),         Event::msg_fall(1200, 5),
          Event::task_start(1300, TaskId{1u}), Event::task_end(2000, TaskId{1u})};
}

SanitizeConfig with_policy(SanitizePolicy p) {
  SanitizeConfig cfg;
  cfg.policy = p;
  return cfg;
}

bool has_defect(const std::vector<Defect>& ds, DefectKind k) {
  for (const auto& d : ds) {
    if (d.kind == k) return true;
  }
  return false;
}

TEST(Sanitizer, CleanPeriodPassesUntouchedUnderEveryPolicy) {
  for (const auto policy : {SanitizePolicy::Strict, SanitizePolicy::Repair,
                            SanitizePolicy::Quarantine}) {
    const TraceSanitizer s(two_tasks(), with_policy(policy));
    const SanitizedPeriod sp = s.sanitize_period(clean_events());
    ASSERT_FALSE(sp.quarantined());
    EXPECT_TRUE(sp.defects.empty());
    EXPECT_EQ(sp.repairs, 0u);
    EXPECT_EQ(sp.period->executions().size(), 2u);
    EXPECT_EQ(sp.period->messages().size(), 1u);
    EXPECT_TRUE(sp.observed_tasks[0]);
    EXPECT_TRUE(sp.observed_tasks[1]);
  }
}

TEST(Sanitizer, OutOfOrderWithinToleranceIsClamped) {
  // The message rise jumps 10ns backwards — logger jitter, clamped.
  std::vector<Event> evs = clean_events();
  evs[2].time = 990;
  const TraceSanitizer repair(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizedPeriod sp = repair.sanitize_period(evs);
  ASSERT_FALSE(sp.quarantined());
  EXPECT_EQ(sp.repairs, 1u);
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::OutOfOrderTimestamp));
  ASSERT_EQ(sp.period->messages().size(), 1u);
  EXPECT_EQ(sp.period->messages()[0].rise, 1000u);  // clamped to running max

  const TraceSanitizer strict(two_tasks(), with_policy(SanitizePolicy::Strict));
  EXPECT_THROW((void)strict.sanitize_period(evs), Error);

  const TraceSanitizer quar(two_tasks(),
                            with_policy(SanitizePolicy::Quarantine));
  EXPECT_TRUE(quar.sanitize_period(evs).quarantined());
}

TEST(Sanitizer, ClockSkewBeyondToleranceQuarantines) {
  SanitizeConfig cfg;  // default tolerance: 50us
  std::vector<Event> evs = {
      Event::task_start(0, TaskId{0u}),
      Event::task_end(100'000, TaskId{0u}),
      Event::msg_rise(40'000, 5),  // 60us backwards: not jitter
      Event::msg_fall(110'000, 5),
      Event::task_start(120'000, TaskId{1u}),
      Event::task_end(130'000, TaskId{1u}),
  };
  const TraceSanitizer s(two_tasks(), cfg);
  const SanitizedPeriod sp = s.sanitize_period(evs);
  EXPECT_TRUE(sp.quarantined());
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::ClockSkewExceeded));
  // Execution evidence survives quarantine: both tasks were observed.
  EXPECT_TRUE(sp.observed_tasks[0]);
  EXPECT_TRUE(sp.observed_tasks[1]);

  cfg.policy = SanitizePolicy::Strict;
  EXPECT_THROW((void)TraceSanitizer(two_tasks(), cfg).sanitize_period(evs),
               Error);
}

TEST(Sanitizer, DuplicateTaskStartDropped) {
  const std::vector<Event> evs = {
      Event::task_start(0, TaskId{0u}), Event::task_start(10, TaskId{0u}),
      Event::task_end(1000, TaskId{0u})};
  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizedPeriod sp = s.sanitize_period(evs);
  ASSERT_FALSE(sp.quarantined());
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::DuplicateTaskStart));
  ASSERT_EQ(sp.period->executions().size(), 1u);
  EXPECT_EQ(sp.period->executions()[0].start, 0u);  // earliest start kept
}

TEST(Sanitizer, DuplicateTaskEndDropped) {
  const std::vector<Event> evs = {
      Event::task_start(0, TaskId{0u}), Event::task_end(1000, TaskId{0u}),
      Event::task_end(1100, TaskId{0u})};
  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizedPeriod sp = s.sanitize_period(evs);
  ASSERT_FALSE(sp.quarantined());
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::DuplicateTaskEnd));
  ASSERT_EQ(sp.period->executions().size(), 1u);
  EXPECT_EQ(sp.period->executions()[0].end, 1000u);
}

TEST(Sanitizer, RepeatedExecutionQuarantines) {
  // A second full execution of the same task: we cannot tell which is
  // real, and inventing one would fabricate evidence.
  const std::vector<Event> evs = {
      Event::task_start(0, TaskId{0u}), Event::task_end(1000, TaskId{0u}),
      Event::task_start(1100, TaskId{0u}), Event::task_end(1200, TaskId{0u})};
  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizedPeriod sp = s.sanitize_period(evs);
  EXPECT_TRUE(sp.quarantined());
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::RepeatedExecution));
}

TEST(Sanitizer, OrphanTaskStartQuarantines) {
  const std::vector<Event> evs = {
      Event::task_start(0, TaskId{0u}), Event::task_end(1000, TaskId{0u}),
      Event::task_start(1100, TaskId{1u})};  // end lost to truncation
  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizedPeriod sp = s.sanitize_period(evs);
  EXPECT_TRUE(sp.quarantined());
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::OrphanTaskStart));
  EXPECT_TRUE(sp.observed_tasks[1]);  // b's evidence still counts
}

TEST(Sanitizer, OrphanTaskEndQuarantines) {
  const std::vector<Event> evs = {
      Event::task_start(0, TaskId{0u}), Event::task_end(1000, TaskId{0u}),
      Event::task_end(1100, TaskId{1u})};  // start was dropped
  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizedPeriod sp = s.sanitize_period(evs);
  EXPECT_TRUE(sp.quarantined());
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::OrphanTaskEnd));
}

TEST(Sanitizer, OrphanMessageRiseDiscarded) {
  std::vector<Event> evs = clean_events();
  evs.erase(evs.begin() + 3);  // drop the fall: rise never completes
  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizedPeriod sp = s.sanitize_period(evs);
  ASSERT_FALSE(sp.quarantined());
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::OrphanMsgRise));
  EXPECT_TRUE(sp.period->messages().empty());
  EXPECT_EQ(sp.period->executions().size(), 2u);
}

TEST(Sanitizer, OrphanMessageFallDiscarded) {
  std::vector<Event> evs = clean_events();
  evs.erase(evs.begin() + 2);  // drop the rise
  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizedPeriod sp = s.sanitize_period(evs);
  ASSERT_FALSE(sp.quarantined());
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::OrphanMsgFall));
  EXPECT_TRUE(sp.period->messages().empty());
}

TEST(Sanitizer, MessageIdMismatchDiscardsBothEdges) {
  std::vector<Event> evs = clean_events();
  evs[3].can_id = 6;  // fall id != rise id
  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizedPeriod sp = s.sanitize_period(evs);
  ASSERT_FALSE(sp.quarantined());
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::MsgIdMismatch));
  EXPECT_TRUE(sp.period->messages().empty());
}

TEST(Sanitizer, EmptyPeriodQuarantines) {
  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizedPeriod none = s.sanitize_period({});
  EXPECT_TRUE(none.quarantined());
  EXPECT_TRUE(has_defect(none.defects, DefectKind::EmptyPeriod));

  // Messages alone do not make a period.
  const SanitizedPeriod msgs_only = s.sanitize_period(
      {Event::msg_rise(0, 5), Event::msg_fall(10, 5)});
  EXPECT_TRUE(msgs_only.quarantined());
}

TEST(Sanitizer, PeriodOverrunQuarantines) {
  SanitizeConfig cfg;
  cfg.period_length = 1000;
  std::vector<Event> evs = clean_events();  // spans 0..2000
  const TraceSanitizer s(two_tasks(), cfg);
  const SanitizedPeriod sp = s.sanitize_period(evs);
  EXPECT_TRUE(sp.quarantined());
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::PeriodOverrun));
}

TEST(Sanitizer, UnknownTaskIndexQuarantines) {
  const std::vector<Event> evs = {
      Event::task_start(0, TaskId{0u}), Event::task_end(1000, TaskId{0u}),
      Event::task_start(1100, TaskId{7u}), Event::task_end(1200, TaskId{7u})};
  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizedPeriod sp = s.sanitize_period(evs);
  EXPECT_TRUE(sp.quarantined());
  EXPECT_TRUE(has_defect(sp.defects, DefectKind::UnknownTask));
}

TEST(Sanitizer, QuarantinePolicyRepairsNothing) {
  std::vector<Event> evs = clean_events();
  evs[2].time = 990;  // a single repairable defect
  const TraceSanitizer s(two_tasks(),
                         with_policy(SanitizePolicy::Quarantine));
  const SanitizedPeriod sp = s.sanitize_period(evs);
  EXPECT_TRUE(sp.quarantined());
  EXPECT_EQ(sp.repairs, 0u);
}

TEST(Sanitizer, StreamKeepsCleanAndRepairedQuarantinesCorrupt) {
  std::vector<std::vector<Event>> raw;
  raw.push_back(clean_events());
  std::vector<Event> repairable = clean_events();
  repairable[2].time = 990;
  raw.push_back(repairable);
  raw.push_back({Event::task_end(0, TaskId{0u})});  // orphan end: fatal

  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Repair));
  const SanitizeResult res = s.sanitize(raw);
  EXPECT_EQ(res.trace.num_periods(), 2u);
  EXPECT_EQ(res.kept, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(res.quarantined, (std::vector<std::size_t>{2}));
  ASSERT_EQ(res.quarantined_observed.size(), 1u);
  EXPECT_TRUE(res.quarantined_observed[0][0]);
  EXPECT_FALSE(res.quarantined_observed[0][1]);
  EXPECT_EQ(res.repairs, 1u);
  EXPECT_EQ(res.periods_seen(), 3u);
  EXPECT_NEAR(res.quarantine_rate(), 1.0 / 3.0, 1e-12);
}

TEST(Sanitizer, StrictStreamThrowsOnFirstDefect) {
  std::vector<std::vector<Event>> raw;
  raw.push_back(clean_events());
  raw.push_back({Event::task_end(0, TaskId{0u})});
  const TraceSanitizer s(two_tasks(), with_policy(SanitizePolicy::Strict));
  EXPECT_THROW((void)s.sanitize(raw), Error);
}

TEST(Sanitizer, SimulatedTraceRoundTripsCleanly) {
  RandomModelParams params;
  params.num_tasks = 8;
  params.num_layers = 3;
  params.seed = 11;
  SimConfig cfg;
  cfg.seed = 23;
  const Trace t = simulate_trace(random_model(params), 6, cfg);
  const TraceSanitizer s(t.task_names(), with_policy(SanitizePolicy::Repair));
  const SanitizeResult res = s.sanitize(to_raw_periods(t));
  EXPECT_TRUE(res.defects.empty());
  EXPECT_TRUE(res.quarantined.empty());
  EXPECT_EQ(res.trace.num_periods(), t.num_periods());
  EXPECT_EQ(res.trace.total_messages(), t.total_messages());
  EXPECT_EQ(res.trace.total_executions(), t.total_executions());
}

TEST(Sanitizer, DefectAndPolicyNamesAreStable) {
  EXPECT_EQ(sanitize_policy_name(SanitizePolicy::Repair), "repair");
  EXPECT_EQ(defect_kind_name(DefectKind::ClockSkewExceeded),
            "clock skew beyond tolerance");
}

}  // namespace
}  // namespace bbmg
