// The robustness contract, checked by brute force: feed the
// degradation-aware learner seeded corruptions of a clean trace and verify
// that (1) it never throws, (2) the model it reports never asserts an
// unconditional requirement the *clean* trace refutes, and (3) its
// quarantine accounting adds up.
//
// The refutation oracle mirrors the conformance checker's requirement
// semantics: d(a,b) in {->, <-, <->} claims "whenever a executes, b
// executes too"; a clean period with a running and b absent refutes it.
// The fault model only hides or mangles events — it never invents an
// execution — so the sanitizer + conservative weakening must keep every
// such claim conditional (see DESIGN.md "Noise model & degradation
// semantics").
#include <gtest/gtest.h>

#include "core/online_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/random_model.hpp"
#include "robust/fault_injector.hpp"
#include "robust/robust_online_learner.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

std::vector<std::vector<bool>> executed_masks(const Trace& t) {
  std::vector<std::vector<bool>> masks;
  masks.reserve(t.num_periods());
  for (const Period& p : t.periods()) {
    std::vector<bool> m(t.num_tasks(), false);
    for (const auto& e : p.executions()) m[e.task.index()] = true;
    masks.push_back(std::move(m));
  }
  return masks;
}

// First ordered pair whose requirement claim the clean trace refutes, or
// "" if the model is sound.
std::string first_refuted_claim(const DependencyMatrix& model,
                                const std::vector<std::vector<bool>>& ran,
                                const std::vector<std::string>& names) {
  for (std::size_t a = 0; a < model.num_tasks(); ++a) {
    for (std::size_t b = 0; b < model.num_tasks(); ++b) {
      if (a == b) continue;
      const DepValue v = model.at(a, b);
      if (!dep_requires_forward(v) && !dep_requires_backward(v)) continue;
      for (std::size_t p = 0; p < ran.size(); ++p) {
        if (ran[p][a] && !ran[p][b]) {
          return "d(" + names[a] + "," + names[b] + ")=" +
                 std::string(dep_to_string(v)) + " refuted by clean period " +
                 std::to_string(p);
        }
      }
    }
  }
  return "";
}

void check_soundness(const Trace& clean, double rate, std::uint64_t seed,
                     SanitizePolicy policy) {
  const auto ran = executed_masks(clean);

  FaultInjector injector(FaultSpec::uniform(rate, seed));
  const InjectionResult inj = injector.corrupt(clean);
  ASSERT_EQ(inj.periods.size(), clean.num_periods());

  RobustConfig config;
  config.sanitize.policy = policy;
  RobustOnlineLearner learner(clean.task_names(), config);
  for (const auto& events : inj.periods) {
    (void)learner.observe_raw_period(events);  // must never throw
  }

  EXPECT_EQ(learner.periods_seen(), clean.num_periods());
  EXPECT_EQ(learner.periods_learned() + learner.periods_quarantined(),
            clean.num_periods());
  EXPECT_EQ(learner.snapshot().stats.quarantined_periods,
            learner.periods_quarantined());
  EXPECT_GE(learner.quarantine_rate(), 0.0);
  EXPECT_LE(learner.quarantine_rate(), 1.0);
  EXPECT_FALSE(learner.health_summary().empty());

  const DependencyMatrix model = learner.snapshot().lub();
  EXPECT_EQ(first_refuted_claim(model, ran, clean.task_names()), "")
      << "rate=" << rate << " seed=" << seed
      << " policy=" << sanitize_policy_name(policy);
}

class FaultInjectionSoundness
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultInjectionSoundness, RandomModelNeverLearnsRefutedClaims) {
  const std::uint64_t seed = GetParam();
  RandomModelParams params;
  params.num_tasks = 8;
  params.num_layers = 3;
  params.seed = seed + 100;
  SimConfig cfg;
  cfg.seed = seed * 977 + 13;
  const Trace clean = simulate_trace(random_model(params), 12, cfg);

  for (const double rate : {0.01, 0.05, 0.10}) {
    check_soundness(clean, rate, seed * 1000 + 1, SanitizePolicy::Repair);
  }
  // The no-repairs policy must be sound too (it quarantines more).
  check_soundness(clean, 0.05, seed * 1000 + 2, SanitizePolicy::Quarantine);
}

INSTANTIATE_TEST_SUITE_P(Seeds0To31, FaultInjectionSoundness,
                         ::testing::Range(std::uint64_t{0},
                                          std::uint64_t{32}));

TEST(FaultInjection, ZeroFaultRateIsBitIdenticalToPlainLearner) {
  RandomModelParams params;
  params.num_tasks = 8;
  params.num_layers = 3;
  params.seed = 5;
  SimConfig cfg;
  cfg.seed = 55;
  const Trace clean = simulate_trace(random_model(params), 10, cfg);

  FaultInjector injector(FaultSpec::uniform(0.0, 9));
  const InjectionResult inj = injector.corrupt(clean);
  EXPECT_EQ(inj.faults_injected, 0u);
  EXPECT_EQ(inj.periods_touched(), 0u);

  RobustOnlineLearner robust(clean.task_names(), RobustConfig{});
  OnlineLearner plain(clean.num_tasks(), OnlineConfig{});
  for (std::size_t p = 0; p < inj.periods.size(); ++p) {
    EXPECT_TRUE(robust.observe_raw_period(inj.periods[p]));
    plain.observe_period(clean.periods()[p]);
  }
  EXPECT_EQ(robust.periods_quarantined(), 0u);
  EXPECT_EQ(robust.repairs(), 0u);
  EXPECT_EQ(robust.health(), HealthState::OK);
  EXPECT_EQ(robust.snapshot().lub(), plain.snapshot().lub());
}

TEST(FaultInjection, TruncationTailLossStaysSound) {
  RandomModelParams params;
  params.num_tasks = 8;
  params.num_layers = 3;
  params.seed = 21;
  SimConfig cfg;
  cfg.seed = 210;
  const Trace clean = simulate_trace(random_model(params), 12, cfg);
  const auto ran = executed_masks(clean);

  FaultSpec spec;
  spec.truncate_rate = 0.4;  // power loss mid-period, ~40% of the time
  spec.drop_rate = 0.02;     // the kind of noise that accompanies it
  spec.seed = 77;
  FaultInjector injector(spec);
  const InjectionResult inj = injector.corrupt(clean);

  RobustOnlineLearner learner(clean.task_names(), RobustConfig{});
  for (const auto& events : inj.periods) {
    (void)learner.observe_raw_period(events);
  }
  EXPECT_EQ(first_refuted_claim(learner.snapshot().lub(), ran,
                                clean.task_names()),
            "");
}

TEST(FaultInjection, GmCaseStudySpotCheck) {
  SimConfig cfg;
  cfg.seed = 7;
  const Trace clean =
      simulate_trace(gm_case_study_model(), kGmCaseStudyPeriods, cfg);
  for (const std::uint64_t seed : {0u, 1u}) {
    check_soundness(clean, 0.05, seed, SanitizePolicy::Repair);
  }
}

TEST(FaultInjection, HealthDegradesWithTheFaultRate) {
  RandomModelParams params;
  params.num_tasks = 8;
  params.num_layers = 3;
  params.seed = 31;
  SimConfig cfg;
  cfg.seed = 310;
  const Trace clean = simulate_trace(random_model(params), 20, cfg);

  // Saturating corruption must not stay "OK": with every event stream
  // mangled this badly, nearly every period quarantines.
  FaultInjector injector(FaultSpec::uniform(0.9, 3));
  const InjectionResult inj = injector.corrupt(clean);
  RobustOnlineLearner learner(clean.task_names(), RobustConfig{});
  for (const auto& events : inj.periods) {
    (void)learner.observe_raw_period(events);
  }
  EXPECT_GT(learner.periods_quarantined(), 0u);
  EXPECT_NE(learner.health(), HealthState::OK);
}

TEST(FaultInjection, InjectionIsDeterministicPerSeed) {
  RandomModelParams params;
  params.num_tasks = 8;
  params.num_layers = 3;
  params.seed = 8;
  SimConfig cfg;
  cfg.seed = 80;
  const Trace clean = simulate_trace(random_model(params), 6, cfg);

  const FaultSpec spec = FaultSpec::uniform(0.1, 1234);
  const InjectionResult a = FaultInjector(spec).corrupt(clean);
  const InjectionResult b = FaultInjector(spec).corrupt(clean);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  ASSERT_EQ(a.periods.size(), b.periods.size());
  for (std::size_t p = 0; p < a.periods.size(); ++p) {
    ASSERT_EQ(a.periods[p].size(), b.periods[p].size());
    for (std::size_t i = 0; i < a.periods[p].size(); ++i) {
      EXPECT_EQ(a.periods[p][i].time, b.periods[p][i].time);
      EXPECT_EQ(a.periods[p][i].kind, b.periods[p][i].kind);
    }
  }
}

}  // namespace
}  // namespace bbmg
