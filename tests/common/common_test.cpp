// Unit tests for the common utilities: strong ids, RNG, bitset, text,
// tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitset.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/text.hpp"
#include "common/types.hpp"

namespace bbmg {
namespace {

TEST(StrongIndex, DistinctTagsDistinctTypes) {
  static_assert(!std::is_same_v<TaskId, MsgOccId>);
  const TaskId a{3u};
  const TaskId b{3u};
  const TaskId c{4u};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a.index(), 3u);
}

TEST(StrongIndex, Hashable) {
  std::set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 100; ++i) {
    hashes.insert(std::hash<TaskId>{}(TaskId{i}));
  }
  EXPECT_GT(hashes.size(), 90u);  // overwhelmingly distinct
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(124);
  EXPECT_NE(Rng(123).next_u64(), c.next_u64());
}

TEST(Rng, NextBelowIsInRangeAndCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW((void)rng.next_below(0), Error);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_THROW((void)rng.next_int(2, 1), Error);
}

TEST(Rng, DoubleInUnitIntervalWithPlausibleMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCasesAndRate) {
  Rng rng(8);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NonemptySubsetMaskNeverEmptyAndInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t m = rng.nonempty_subset_mask(5);
    EXPECT_NE(m, 0u);
    EXPECT_LT(m, 32u);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(10);
  Rng b = a.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(DynamicBitset, SetTestResetCount) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(64));
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_EQ(b.count(), 2u);
  b.clear();
  EXPECT_FALSE(b.any());
}

TEST(DynamicBitset, UniteIntersectSubset) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.set(3);
  a.set(70);
  b.set(70);
  b.set(99);
  EXPECT_TRUE(DynamicBitset(100).is_subset_of(a));
  EXPECT_FALSE(a.is_subset_of(b));
  DynamicBitset u = a;
  u.unite(b);
  EXPECT_EQ(u.count(), 3u);
  EXPECT_TRUE(a.is_subset_of(u));
  EXPECT_TRUE(b.is_subset_of(u));
  DynamicBitset i = a;
  i.intersect(b);
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(70));
}

TEST(DynamicBitset, EqualityAndHash) {
  DynamicBitset a(80);
  DynamicBitset b(80);
  a.set(17);
  b.set(17);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash_mix(1), b.hash_mix(1));
  b.set(18);
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash_mix(1), b.hash_mix(1));
}

TEST(Text, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Text, SplitWsCollapsesRuns) {
  const auto parts = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Text, TrimAndJoin) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Text, NumberFormattingAndParsing) {
  EXPECT_EQ(format_double(1.23456, 3), "1.235");
  EXPECT_EQ(format_double(2.0, 0), "2");
  std::uint64_t u = 0;
  EXPECT_TRUE(parse_u64("18446744073709551615", u));
  EXPECT_EQ(u, UINT64_MAX);
  EXPECT_FALSE(parse_u64("12x", u));
  EXPECT_FALSE(parse_u64("", u));
  double d = 0;
  EXPECT_TRUE(parse_double("3.5", d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_FALSE(parse_double("nope", d));
  EXPECT_TRUE(starts_with("rise 5 100", "rise"));
  EXPECT_FALSE(starts_with("ri", "rise"));
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Bound", "Run time (sec)"});
  t.add_row({"1", "0.220"});
  t.add_row({"150", "19.048"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Bound"), std::string::npos);
  EXPECT_NE(s.find("19.048"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

}  // namespace
}  // namespace bbmg
