// Exact-learner specifics: failure modes, dedup, instrumentation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/exact_learner.hpp"
#include "gen/scenarios.hpp"

namespace bbmg {
namespace {

TEST(ExactLearner, ThrowsWhenAMessageHasNoExplanation) {
  // A message rising before any task has finished cannot have a sender:
  // the hypothesis set empties, which the paper interprets as "the
  // instances contain errors or the language is not expressive enough".
  TraceBuilder b({"a", "b"});
  b.begin_period();
  b.add_event(Event::task_start(0, TaskId{0u}));
  b.add_event(Event::msg_rise(1, 1));
  b.add_event(Event::msg_fall(2, 1));
  b.add_event(Event::task_end(10, TaskId{0u}));
  b.add_event(Event::task_start(11, TaskId{1u}));
  b.add_event(Event::task_end(20, TaskId{1u}));
  b.end_period();
  const Trace t = b.take();
  EXPECT_THROW((void)learn_exact(t), Error);
}

TEST(ExactLearner, ThrowsWhenPairsRunOut) {
  // Two messages between two tasks in one period: only one ordered pair
  // is timing-feasible ((a,b) for both), and condition 3 allows it once.
  TraceBuilder b({"a", "b"});
  b.begin_period();
  b.add_event(Event::task_start(0, TaskId{0u}));
  b.add_event(Event::task_end(10, TaskId{0u}));
  b.add_event(Event::msg_rise(11, 1));
  b.add_event(Event::msg_fall(12, 1));
  b.add_event(Event::msg_rise(13, 2));
  b.add_event(Event::msg_fall(14, 2));
  b.add_event(Event::task_start(20, TaskId{1u}));
  b.add_event(Event::task_end(30, TaskId{1u}));
  b.end_period();
  const Trace t = b.take();
  EXPECT_THROW((void)learn_exact(t), Error);
}

TEST(ExactLearner, FrontierCapThrows) {
  ExactConfig cfg;
  cfg.max_frontier = 2;
  EXPECT_THROW((void)learn_exact(paper_example_trace(), cfg), Error);
}

TEST(ExactLearner, StatsReflectTheRun) {
  const LearnResult r = learn_exact(paper_example_trace());
  EXPECT_EQ(r.stats.periods_processed, 3u);
  EXPECT_EQ(r.stats.messages_processed, 8u);
  ASSERT_EQ(r.stats.frontier_after_period.size(), 3u);
  // The paper's §3.3 numbers: 3 hypotheses after period 1, 5 at the end.
  EXPECT_EQ(r.stats.frontier_after_period[0], 3u);
  EXPECT_EQ(r.stats.frontier_after_period[2], 5u);
  EXPECT_GE(r.stats.peak_hypotheses, 5u);
}

TEST(ExactLearner, SingleTaskTraceLearnsNothing) {
  TraceBuilder b({"solo"});
  b.begin_period();
  b.add_event(Event::task_start(0, TaskId{0u}));
  b.add_event(Event::task_end(10, TaskId{0u}));
  b.end_period();
  const Trace t = b.take();
  const LearnResult r = learn_exact(t);
  ASSERT_EQ(r.hypotheses.size(), 1u);
  EXPECT_EQ(r.hypotheses.front(), DependencyMatrix(1));
}

TEST(ExactLearner, ResultSortedByWeight) {
  const LearnResult r = learn_exact(paper_example_trace());
  for (std::size_t i = 1; i < r.hypotheses.size(); ++i) {
    EXPECT_LE(r.hypotheses[i - 1].weight(), r.hypotheses[i].weight());
  }
}

TEST(ExactLearner, RepeatedIdenticalPeriodsConverge) {
  // A deterministic single-path model: every period looks the same, and
  // after the first period the set stays fixed.
  TraceBuilder b({"a", "b"});
  for (int p = 0; p < 4; ++p) {
    const TimeNs base = static_cast<TimeNs>(p) * 1000;
    b.begin_period();
    b.add_event(Event::task_start(base + 0, TaskId{0u}));
    b.add_event(Event::task_end(base + 10, TaskId{0u}));
    b.add_event(Event::msg_rise(base + 11, 1));
    b.add_event(Event::msg_fall(base + 12, 1));
    b.add_event(Event::task_start(base + 13, TaskId{1u}));
    b.add_event(Event::task_end(base + 20, TaskId{1u}));
    b.end_period();
  }
  const Trace t = b.take();
  const LearnResult r = learn_exact(t);
  ASSERT_TRUE(r.converged());
  DependencyMatrix expected(2);
  expected.set(0, 1, DepValue::Forward);
  expected.set(1, 0, DepValue::Backward);
  EXPECT_EQ(r.hypotheses.front(), expected);
  for (std::size_t size : r.stats.frontier_after_period) {
    EXPECT_EQ(size, 1u);
  }
}

}  // namespace
}  // namespace bbmg
