// Candidate sender/receiver extraction (paper §3.1): the timing rules and
// the worked example's A_m sets.
#include <gtest/gtest.h>

#include "core/candidates.hpp"
#include "gen/scenarios.hpp"

namespace bbmg {
namespace {

constexpr TaskId T1{0u};
constexpr TaskId T2{1u};
constexpr TaskId T3{2u};
constexpr TaskId T4{3u};

bool has_pair(const std::vector<CandidatePair>& pairs, TaskId s, TaskId r) {
  for (const auto& p : pairs) {
    if (p.sender == s && p.receiver == r) return true;
  }
  return false;
}

TEST(Candidates, PaperPeriodOne) {
  const Trace trace = paper_example_trace();
  const PeriodCandidates pc(trace.periods()[0], 4);
  ASSERT_EQ(pc.num_messages(), 2u);
  // A_m1 = {(t1,t2),(t1,t4)}
  EXPECT_EQ(pc.candidates(0).size(), 2u);
  EXPECT_TRUE(has_pair(pc.candidates(0), T1, T2));
  EXPECT_TRUE(has_pair(pc.candidates(0), T1, T4));
  // A_m2 = {(t1,t4),(t2,t4)}
  EXPECT_EQ(pc.candidates(1).size(), 2u);
  EXPECT_TRUE(has_pair(pc.candidates(1), T1, T4));
  EXPECT_TRUE(has_pair(pc.candidates(1), T2, T4));
  EXPECT_EQ(pc.total_candidates(), 4u);
}

TEST(Candidates, PaperPeriodThree) {
  const Trace trace = paper_example_trace();
  const PeriodCandidates pc(trace.periods()[2], 4);
  ASSERT_EQ(pc.num_messages(), 4u);
  // m5 rises after only t1 finished; t3, t2, t4 all start after its fall.
  EXPECT_EQ(pc.candidates(0).size(), 3u);
  EXPECT_TRUE(has_pair(pc.candidates(0), T1, T3));
  EXPECT_TRUE(has_pair(pc.candidates(0), T1, T2));
  EXPECT_TRUE(has_pair(pc.candidates(0), T1, T4));
  // m6 likewise (back-to-back with m5, still before t3/t2 start).
  EXPECT_EQ(pc.candidates(1).size(), 3u);
  // m7/m8: senders {t1,t3,t2}, receiver {t4}.
  EXPECT_EQ(pc.candidates(2).size(), 3u);
  EXPECT_TRUE(has_pair(pc.candidates(2), T2, T4));
  EXPECT_TRUE(has_pair(pc.candidates(2), T3, T4));
  EXPECT_TRUE(has_pair(pc.candidates(2), T1, T4));
  EXPECT_EQ(pc.candidates(3).size(), 3u);
}

TEST(Candidates, ExecutedMaskMatchesPeriod) {
  const Trace trace = paper_example_trace();
  const PeriodCandidates p1(trace.periods()[0], 4);
  EXPECT_TRUE(p1.executed(0));
  EXPECT_TRUE(p1.executed(1));
  EXPECT_FALSE(p1.executed(2));
  EXPECT_TRUE(p1.executed(3));
  const PeriodCandidates p2(trace.periods()[1], 4);
  EXPECT_FALSE(p2.executed(1));
  EXPECT_TRUE(p2.executed(2));
}

TEST(Candidates, BoundaryTimesInclusive) {
  // Sender end == rise and receiver start == fall are both feasible.
  TraceBuilder b({"s", "r"});
  b.begin_period();
  b.add_event(Event::task_start(0, TaskId{0u}));
  b.add_event(Event::task_end(10, TaskId{0u}));
  b.add_event(Event::msg_rise(10, 1));
  b.add_event(Event::msg_fall(20, 1));
  b.add_event(Event::task_start(20, TaskId{1u}));
  b.add_event(Event::task_end(30, TaskId{1u}));
  b.end_period();
  const Trace t = b.take();
  const PeriodCandidates pc(t.periods()[0], 2);
  ASSERT_EQ(pc.candidates(0).size(), 1u);
  EXPECT_TRUE(has_pair(pc.candidates(0), TaskId{0u}, TaskId{1u}));
}

TEST(Candidates, NoSenderBeforeRiseMeansEmptySet) {
  // A message rising before any task ended has no feasible sender.
  TraceBuilder b({"a", "b"});
  b.begin_period();
  b.add_event(Event::task_start(0, TaskId{0u}));
  b.add_event(Event::msg_rise(3, 1));
  b.add_event(Event::msg_fall(5, 1));
  b.add_event(Event::task_end(10, TaskId{0u}));
  b.add_event(Event::task_start(12, TaskId{1u}));
  b.add_event(Event::task_end(20, TaskId{1u}));
  b.end_period();
  const Trace t = b.take();
  const PeriodCandidates pc(t.periods()[0], 2);
  EXPECT_TRUE(pc.candidates(0).empty());
}

TEST(Candidates, SenderNeverItsOwnReceiver) {
  // A task that both ends before the rise and starts after the fall is
  // impossible within one period, but even with crafted data s != r must
  // hold for every pair.
  const Trace trace = paper_example_trace();
  for (const auto& period : trace.periods()) {
    const PeriodCandidates pc(period, trace.num_tasks());
    for (std::size_t m = 0; m < pc.num_messages(); ++m) {
      for (const auto& p : pc.candidates(m)) {
        EXPECT_NE(p.sender, p.receiver);
        EXPECT_EQ(p.pair_index,
                  p.sender.index() * trace.num_tasks() + p.receiver.index());
      }
    }
  }
}

}  // namespace
}  // namespace bbmg
