// Property-based checks of the paper's §4 theorems on randomized models
// (experiment E7):
//
//   Theorem 2 (correctness): every hypothesis either learner returns
//     matches every period of the trace (checked against the independent
//     backtracking oracle in core/matching.hpp).
//   Theorem 3 (completeness/optimality of the exact learner): the result
//     set is an antichain of matching hypotheses, and greedy
//     counterexample search finds no matching hypothesis strictly below
//     any member.
//   Lemma / Theorem 4 (convergence): with bound 1 the heuristic maintains
//     a running LUB; it always dominates the LUB of the exact result set
//     and usually equals it (the paper observed equality on its case
//     study; see DESIGN.md for where our reconstruction can differ on
//     adversarial traces).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/exact_learner.hpp"
#include "core/heuristic_learner.hpp"
#include "core/matching.hpp"
#include "gen/random_model.hpp"
#include "gen/scenarios.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

struct Scenario {
  SystemModel model;
  Trace trace;
};

Scenario make_scenario(std::uint64_t seed) {
  RandomModelParams params;
  params.num_tasks = 5;
  params.num_layers = 3;
  params.extra_edge_density = 0.25;
  params.seed = seed;
  SystemModel model = random_model(params);
  Trace trace = idealized_trace(model, 6, seed * 11 + 1);
  return {std::move(model), std::move(trace)};
}

class TheoremProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheoremProperties, Theorem2CorrectnessExact) {
  const Scenario s = make_scenario(GetParam());
  ExactConfig cfg;
  cfg.max_frontier = 100000;
  LearnResult exact;
  try {
    exact = learn_exact(s.trace, cfg);
  } catch (const Error&) {
    GTEST_SKIP() << "exact frontier exploded for this seed";
  }
  ASSERT_FALSE(exact.hypotheses.empty());
  for (const auto& h : exact.hypotheses) {
    EXPECT_TRUE(matches_trace(h, s.trace));
  }
}

TEST_P(TheoremProperties, Theorem2CorrectnessHeuristic) {
  const Scenario s = make_scenario(GetParam());
  for (std::size_t bound : {1, 2, 4, 16}) {
    const LearnResult r = learn_heuristic(s.trace, bound);
    ASSERT_FALSE(r.hypotheses.empty());
    EXPECT_LE(r.hypotheses.size(), bound);
    for (const auto& h : r.hypotheses) {
      EXPECT_TRUE(matches_trace(h, s.trace)) << "bound " << bound;
    }
  }
}

TEST_P(TheoremProperties, Theorem3ResultIsAnAntichain) {
  const Scenario s = make_scenario(GetParam());
  ExactConfig cfg;
  cfg.max_frontier = 100000;
  LearnResult exact;
  try {
    exact = learn_exact(s.trace, cfg);
  } catch (const Error&) {
    GTEST_SKIP() << "exact frontier exploded for this seed";
  }
  for (std::size_t i = 0; i < exact.hypotheses.size(); ++i) {
    for (std::size_t j = 0; j < exact.hypotheses.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(exact.hypotheses[i].leq(exact.hypotheses[j]) &&
                   exact.hypotheses[i] != exact.hypotheses[j])
          << "result set is not minimal";
    }
  }
}

TEST_P(TheoremProperties, Theorem3NoMatchingHypothesisStrictlyBelow) {
  // Greedy counterexample search: lower any single entry of a returned
  // hypothesis one lattice step; the result must not match the trace
  // unless it is dominated by another returned hypothesis.
  const Scenario s = make_scenario(GetParam());
  ExactConfig cfg;
  cfg.max_frontier = 100000;
  LearnResult exact;
  try {
    exact = learn_exact(s.trace, cfg);
  } catch (const Error&) {
    GTEST_SKIP() << "exact frontier exploded for this seed";
  }
  const std::size_t n = s.trace.num_tasks();
  for (const auto& h : exact.hypotheses) {
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b) continue;
        for (DepValue lower : kAllDepValues) {
          if (!dep_leq(lower, h.at(a, b)) || lower == h.at(a, b)) continue;
          DependencyMatrix candidate = h;
          candidate.set(a, b, lower);
          if (!matches_trace(candidate, s.trace)) continue;
          // A strictly-more-specific matching variant must be covered by
          // some other member of the result set (completeness).
          bool covered = false;
          for (const auto& other : exact.hypotheses) {
            if (other.leq(candidate)) {
              covered = true;
              break;
            }
          }
          EXPECT_TRUE(covered)
              << "matching hypothesis strictly below the result set";
        }
      }
    }
  }
}

TEST_P(TheoremProperties, Lemma_BoundOneDominatesExactLub) {
  const Scenario s = make_scenario(GetParam());
  ExactConfig cfg;
  cfg.max_frontier = 100000;
  LearnResult exact;
  try {
    exact = learn_exact(s.trace, cfg);
  } catch (const Error&) {
    GTEST_SKIP() << "exact frontier exploded for this seed";
  }
  const LearnResult h1 = learn_heuristic(s.trace, 1);
  ASSERT_EQ(h1.hypotheses.size(), 1u);
  EXPECT_TRUE(exact.lub().leq(h1.hypotheses.front()))
      << "bound-1 heuristic lost information the exact learner kept";
}

TEST_P(TheoremProperties, LargeBoundEqualsExact) {
  // With a bound above the peak frontier no merge ever happens, so the
  // heuristic must return exactly the exact result set.
  const Scenario s = make_scenario(GetParam());
  ExactConfig cfg;
  cfg.max_frontier = 100000;
  LearnResult exact;
  try {
    exact = learn_exact(s.trace, cfg);
  } catch (const Error&) {
    GTEST_SKIP() << "exact frontier exploded for this seed";
  }
  if (exact.stats.peak_hypotheses > 4000) {
    GTEST_SKIP() << "peak frontier too large for the no-merge bound";
  }
  const LearnResult h = learn_heuristic(s.trace, exact.stats.peak_hypotheses);
  EXPECT_EQ(h.stats.merges, 0u);
  ASSERT_EQ(h.hypotheses.size(), exact.hypotheses.size());
  for (const auto& m : exact.hypotheses) {
    bool found = false;
    for (const auto& x : h.hypotheses) {
      if (x == m) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_P(TheoremProperties, HeuristicMonotoneConvergesUnderMoreData) {
  // Doubling the trace keeps all hypotheses correct and never makes the
  // bound-1 summary more specific on a prefix-consistent entry... the
  // cheap checkable form: result still matches the longer trace.
  RandomModelParams params;
  params.num_tasks = 6;
  params.num_layers = 3;
  params.seed = GetParam();
  const SystemModel model = random_model(params);
  const Trace longer = idealized_trace(model, 16, GetParam() * 13 + 5);
  const LearnResult r = learn_heuristic(longer, 8);
  for (const auto& h : r.hypotheses) {
    EXPECT_TRUE(matches_trace(h, longer));
  }
}

TEST_P(TheoremProperties, SimulatedTracesAlsoLearnCorrectly) {
  // The same Theorem 2 check on full-platform (ECU + CAN) traces.
  RandomModelParams params;
  params.num_tasks = 7;
  params.num_layers = 3;
  params.num_ecus = 2;
  params.seed = GetParam();
  const SystemModel model = random_model(params);
  SimConfig cfg;
  cfg.seed = GetParam() + 1000;
  const Trace trace = simulate_trace(model, 6, cfg);
  const LearnResult r = learn_heuristic(trace, 8);
  ASSERT_FALSE(r.hypotheses.empty());
  for (const auto& h : r.hypotheses) {
    EXPECT_TRUE(matches_trace(h, trace));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace bbmg
