// Reproduces the paper's §3.3 worked example end to end (experiment E1).
//
// The system under observation is Fig. 1 (t1 conditionally messages t2/t3,
// which independently message t4); the observed trace is Fig. 2:
//
//   period 1:  t1  m1  t2  m2  t4
//   period 2:  t1  m3  t3  m4  t4
//   period 3:  t1  m5  t3  m6  t2  m7  m8  t4
//
// The paper derives: after m1 the two hypotheses d11/d12, after m2 the
// three hypotheses d21/d22/d23, and after period 3 the five most specific
// hypotheses d81..d85 whose LUB is dLUB (Fig. 4), including the emergent
// unconditional dependency d(t1,t4) = ->.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/exact_learner.hpp"
#include "core/heuristic_learner.hpp"
#include "core/matching.hpp"
#include "lattice/dependency_matrix.hpp"
#include "trace/trace.hpp"

namespace bbmg {
namespace {

constexpr TaskId T1{0u};
constexpr TaskId T2{1u};
constexpr TaskId T3{2u};
constexpr TaskId T4{3u};

Trace paper_trace() {
  TraceBuilder b({"t1", "t2", "t3", "t4"});

  // period 1: t1 m1 t2 m2 t4
  b.begin_period();
  b.add_event(Event::task_start(0, T1));
  b.add_event(Event::task_end(10, T1));
  b.add_event(Event::msg_rise(12, 1));
  b.add_event(Event::msg_fall(14, 1));
  b.add_event(Event::task_start(16, T2));
  b.add_event(Event::task_end(20, T2));
  b.add_event(Event::msg_rise(22, 2));
  b.add_event(Event::msg_fall(24, 2));
  b.add_event(Event::task_start(26, T4));
  b.add_event(Event::task_end(30, T4));
  b.end_period();

  // period 2: t1 m3 t3 m4 t4
  b.begin_period();
  b.add_event(Event::task_start(100, T1));
  b.add_event(Event::task_end(110, T1));
  b.add_event(Event::msg_rise(112, 3));
  b.add_event(Event::msg_fall(114, 3));
  b.add_event(Event::task_start(116, T3));
  b.add_event(Event::task_end(120, T3));
  b.add_event(Event::msg_rise(122, 4));
  b.add_event(Event::msg_fall(124, 4));
  b.add_event(Event::task_start(126, T4));
  b.add_event(Event::task_end(130, T4));
  b.end_period();

  // period 3: t1 chooses both successors — it finishes, its two messages
  // m5, m6 go out back to back, then t3 and t2 run, their messages m7, m8
  // follow, and finally t4 runs: t1 m5 m6 t3 t2 m7 m8 t4.
  b.begin_period();
  b.add_event(Event::task_start(200, T1));
  b.add_event(Event::task_end(210, T1));
  b.add_event(Event::msg_rise(212, 5));
  b.add_event(Event::msg_fall(214, 5));
  b.add_event(Event::msg_rise(215, 6));
  b.add_event(Event::msg_fall(217, 6));
  b.add_event(Event::task_start(218, T3));
  b.add_event(Event::task_end(224, T3));
  b.add_event(Event::task_start(226, T2));
  b.add_event(Event::task_end(230, T2));
  b.add_event(Event::msg_rise(232, 7));
  b.add_event(Event::msg_fall(234, 7));
  b.add_event(Event::msg_rise(236, 8));
  b.add_event(Event::msg_fall(238, 8));
  b.add_event(Event::task_start(240, T4));
  b.add_event(Event::task_end(244, T4));
  b.end_period();

  return b.take();
}

/// Build a 4x4 matrix from a row-major list of value tokens.
DependencyMatrix matrix4(const std::array<const char*, 16>& cells) {
  DependencyMatrix m(4);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      if (a == b) continue;
      m.set(a, b, dep_from_string(cells[a * 4 + b]));
    }
  }
  return m;
}

// The paper's five surviving hypotheses after period 3 (§3.3).
std::vector<DependencyMatrix> paper_survivors() {
  return {
      // d81
      matrix4({"||", "->?", "->?", "->",   //
               "<-", "||", "||", "||",     //
               "<-", "||", "||", "->",     //
               "<-", "||", "<-?", "||"}),
      // d82
      matrix4({"||", "||", "->?", "->",    //
               "||", "||", "||", "->",     //
               "<-", "||", "||", "->",     //
               "<-", "<-?", "<-?", "||"}),
      // d83
      matrix4({"||", "->?", "||", "->",    //
               "<-", "||", "||", "->",     //
               "||", "||", "||", "->",     //
               "<-", "<-?", "<-?", "||"}),
      // d84
      matrix4({"||", "->?", "->?", "->",   //
               "<-", "||", "||", "->",     //
               "<-", "||", "||", "||",     //
               "<-", "<-?", "||", "||"}),
      // d85
      matrix4({"||", "->?", "->?", "||",   //
               "<-", "||", "||", "->",     //
               "<-", "||", "||", "->",     //
               "||", "<-?", "<-?", "||"}),
  };
}

DependencyMatrix paper_dlub() {
  return matrix4({"||", "->?", "->?", "->",   //
                  "<-", "||", "||", "->",     //
                  "<-", "||", "||", "->",     //
                  "<-", "<-?", "<-?", "||"});
}

bool contains(const std::vector<DependencyMatrix>& set,
              const DependencyMatrix& m) {
  return std::any_of(set.begin(), set.end(),
                     [&](const DependencyMatrix& x) { return x == m; });
}

TEST(WorkedExample, ExactLearnerFindsThePaperSurvivors) {
  const Trace trace = paper_trace();
  const LearnResult result = learn_exact(trace);

  const auto expected = paper_survivors();
  EXPECT_EQ(result.hypotheses.size(), expected.size());
  for (const auto& m : expected) {
    EXPECT_TRUE(contains(result.hypotheses, m))
        << "missing expected hypothesis:\n"
        << m.to_table(trace.task_names());
  }
  for (const auto& m : result.hypotheses) {
    EXPECT_TRUE(contains(expected, m))
        << "unexpected extra hypothesis:\n"
        << m.to_table(trace.task_names());
  }
}

TEST(WorkedExample, SurvivorsAllMatchTheTrace) {
  const Trace trace = paper_trace();
  const LearnResult result = learn_exact(trace);
  for (const auto& m : result.hypotheses) {
    EXPECT_TRUE(matches_trace(m, trace))
        << "Theorem 2 violated by:\n"
        << m.to_table(trace.task_names());
  }
}

TEST(WorkedExample, LubMatchesFigure4) {
  const Trace trace = paper_trace();
  const LearnResult result = learn_exact(trace);
  ASSERT_FALSE(result.hypotheses.empty());
  const DependencyMatrix dlub = result.lub();
  EXPECT_EQ(dlub, paper_dlub()) << "computed dLUB:\n"
                                << dlub.to_table(trace.task_names());
  // The paper's headline observation: t1 always determines t4 even though
  // no single design message implies it.
  EXPECT_EQ(dlub.at(T1, T4), DepValue::Forward);
}

TEST(WorkedExample, HeuristicBoundOneEqualsLubOfExact) {
  const Trace trace = paper_trace();
  const LearnResult exact = learn_exact(trace);
  const LearnResult h1 = learn_heuristic(trace, 1);
  ASSERT_EQ(h1.hypotheses.size(), 1u);
  EXPECT_EQ(h1.hypotheses.front(), exact.lub())
      << "bound-1:\n"
      << h1.hypotheses.front().to_table(trace.task_names()) << "lub(exact):\n"
      << exact.lub().to_table(trace.task_names());
}

TEST(WorkedExample, LargeBoundReproducesExactResult) {
  const Trace trace = paper_trace();
  const LearnResult exact = learn_exact(trace);
  const LearnResult h = learn_heuristic(trace, 64);
  EXPECT_EQ(h.stats.merges, 0u);
  EXPECT_EQ(h.hypotheses.size(), exact.hypotheses.size());
  for (const auto& m : exact.hypotheses) {
    EXPECT_TRUE(contains(h.hypotheses, m));
  }
}

}  // namespace
}  // namespace bbmg
