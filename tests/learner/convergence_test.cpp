// Convergence detection and the learn-until-stable driver, plus the
// exact learner's dominance pruning (results must be identical with and
// without it).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/convergence.hpp"
#include "core/exact_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/random_model.hpp"
#include "gen/scenarios.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

TEST(ConvergenceDetector, RequiresWindowAndMinimum) {
  ConvergenceDetector det(/*window=*/3, /*min_periods=*/5);
  DependencyMatrix m(2);
  EXPECT_FALSE(det.observe(m));  // 1
  EXPECT_FALSE(det.observe(m));  // 2
  EXPECT_FALSE(det.observe(m));  // 3, streak 2
  EXPECT_FALSE(det.observe(m));  // 4, streak 3 but min_periods unmet
  EXPECT_TRUE(det.observe(m));   // 5
  EXPECT_TRUE(det.stable());
  EXPECT_EQ(det.periods_seen(), 5u);
}

TEST(ConvergenceDetector, ChangeResetsStreak) {
  ConvergenceDetector det(2, 2);
  DependencyMatrix a(2);
  DependencyMatrix b(2);
  b.set_pair(0, 1, DepValue::Forward);
  EXPECT_FALSE(det.observe(a));
  EXPECT_FALSE(det.observe(b));  // changed
  EXPECT_EQ(det.stable_streak(), 0u);
  EXPECT_FALSE(det.observe(b));
  EXPECT_TRUE(det.observe(b));
}

TEST(ConvergenceDetector, GmStabilizesWellBeforeTheTraceEnds) {
  SimConfig cfg;
  cfg.seed = 7;
  const Trace trace = simulate_trace(gm_case_study_model(), 60, cfg);
  OnlineConfig oc;
  oc.bound = 16;
  OnlineLearner learner(trace.num_tasks(), oc);
  ConvergenceDetector det(5, 10);
  const std::size_t consumed = learn_until_stable(learner, trace, det);
  EXPECT_TRUE(det.stable());
  EXPECT_LT(consumed, 60u);
  EXPECT_GE(consumed, 10u);
}

TEST(ConvergenceDetector, UnstableTraceConsumesEverything) {
  // Two periods only: cannot satisfy min_periods=10.
  const Trace trace = simulate_trace(gm_case_study_model(), 2, SimConfig{});
  OnlineConfig oc;
  OnlineLearner learner(trace.num_tasks(), oc);
  ConvergenceDetector det(5, 10);
  EXPECT_EQ(learn_until_stable(learner, trace, det), 2u);
  EXPECT_FALSE(det.stable());
}

class DominancePruning : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DominancePruning, ResultsIdenticalWithAndWithout) {
  RandomModelParams params;
  params.num_tasks = 5;
  params.num_layers = 3;
  params.extra_edge_density = 0.25;
  params.seed = GetParam();
  const Trace trace =
      idealized_trace(random_model(params), 6, GetParam() * 7 + 3);

  ExactConfig plain;
  plain.max_frontier = 100000;
  ExactConfig pruned = plain;
  pruned.dominance_pruning = true;

  LearnResult a;
  LearnResult b;
  try {
    a = learn_exact(trace, plain);
    b = learn_exact(trace, pruned);
  } catch (const Error&) {
    GTEST_SKIP() << "frontier exploded for this seed";
  }
  ASSERT_EQ(a.hypotheses.size(), b.hypotheses.size());
  for (const auto& h : a.hypotheses) {
    bool found = false;
    for (const auto& x : b.hypotheses) found |= (x == h);
    EXPECT_TRUE(found);
  }
  // Pruning can only shrink the peak frontier.
  EXPECT_LE(b.stats.peak_hypotheses, a.stats.peak_hypotheses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominancePruning,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(DominancePruning, PaperExampleUnchanged) {
  ExactConfig pruned;
  pruned.dominance_pruning = true;
  const LearnResult r = learn_exact(paper_example_trace(), pruned);
  EXPECT_EQ(r.hypotheses.size(), 5u);
}

}  // namespace
}  // namespace bbmg
