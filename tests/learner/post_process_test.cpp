// Period-end post-processing units: conditional-dependency weakening,
// unification, redundancy removal; plus the Hypothesis::assume operator.
#include <gtest/gtest.h>

#include "core/history.hpp"
#include "core/post_process.hpp"
#include "gen/scenarios.hpp"

namespace bbmg {
namespace {

/// A period where only the listed tasks executed (out of n), no messages.
Period period_with(std::size_t n, std::initializer_list<std::size_t> tasks) {
  std::vector<TaskExecution> execs;
  TimeNs t = 0;
  for (std::size_t i : tasks) {
    execs.push_back({TaskId{i}, t, t + 10});
    t += 20;
  }
  (void)n;
  return Period(std::move(execs), {});
}

TEST(PostProcess, WeakensUnmetForwardRequirement) {
  Hypothesis h(3);
  h.d.set(0, 1, DepValue::Forward);
  h.d.set(1, 0, DepValue::Backward);
  // Task 0 ran, task 1 did not: "0 always determines 1" is refuted.
  const PeriodCandidates pc(period_with(3, {0, 2}), 3);
  weaken_unmet_requirements(h, pc);
  EXPECT_EQ(h.d.at(0, 1), DepValue::MaybeForward);
  // Task 1 did not run, so its own claims are untouched (vacuous).
  EXPECT_EQ(h.d.at(1, 0), DepValue::Backward);
}

TEST(PostProcess, WeakensUnmetBackwardRequirement) {
  Hypothesis h(3);
  h.d.set(0, 1, DepValue::Backward);
  const PeriodCandidates pc(period_with(3, {0}), 3);
  weaken_unmet_requirements(h, pc);
  EXPECT_EQ(h.d.at(0, 1), DepValue::MaybeBackward);
}

TEST(PostProcess, MutualLosesBothClaimsAtOnce) {
  Hypothesis h(2);
  h.d.set(0, 1, DepValue::Mutual);
  const PeriodCandidates pc(period_with(2, {0}), 2);
  weaken_unmet_requirements(h, pc);
  EXPECT_EQ(h.d.at(0, 1), DepValue::MaybeMutual);
}

TEST(PostProcess, CoExecutionKeepsRequirements) {
  Hypothesis h(2);
  h.d.set(0, 1, DepValue::Forward);
  h.d.set(1, 0, DepValue::Backward);
  const PeriodCandidates pc(period_with(2, {0, 1}), 2);
  weaken_unmet_requirements(h, pc);
  EXPECT_EQ(h.d.at(0, 1), DepValue::Forward);
  EXPECT_EQ(h.d.at(1, 0), DepValue::Backward);
}

TEST(PostProcess, ConditionalValuesNeverWeakened) {
  Hypothesis h(2);
  h.d.set(0, 1, DepValue::MaybeForward);
  h.d.set(1, 0, DepValue::MaybeBackward);
  const PeriodCandidates pc(period_with(2, {0}), 2);
  weaken_unmet_requirements(h, pc);
  EXPECT_EQ(h.d.at(0, 1), DepValue::MaybeForward);
  EXPECT_EQ(h.d.at(1, 0), DepValue::MaybeBackward);
}

TEST(PostProcess, UnifiesEqualHypotheses) {
  std::vector<Hypothesis> frontier;
  Hypothesis a(2);
  a.d.set_pair(0, 1, DepValue::Forward);
  frontier.push_back(a);
  frontier.push_back(a);
  frontier.push_back(a);
  remove_duplicates_and_redundant(frontier);
  EXPECT_EQ(frontier.size(), 1u);
}

TEST(PostProcess, RemovesRedundantMoreGeneralHypotheses) {
  std::vector<Hypothesis> frontier;
  Hypothesis specific(2);
  specific.d.set_pair(0, 1, DepValue::Forward);
  Hypothesis general(2);
  general.d.set_pair(0, 1, DepValue::MaybeForward);  // strictly above
  Hypothesis incomparable(2);
  incomparable.d.set(0, 1, DepValue::Backward);
  incomparable.d.set(1, 0, DepValue::Forward);
  frontier.push_back(general);
  frontier.push_back(specific);
  frontier.push_back(incomparable);
  remove_duplicates_and_redundant(frontier);
  ASSERT_EQ(frontier.size(), 2u);
  // The general one is gone; the two incomparable minimal ones remain.
  for (const auto& h : frontier) {
    EXPECT_NE(h.d, general.d);
  }
}

TEST(PostProcess, FullPeriodPassClearsAssumptions) {
  std::vector<Hypothesis> frontier;
  Hypothesis h(2);
  h.d.set_pair(0, 1, DepValue::Forward);
  h.used.set(1);  // pair (0,1)
  frontier.push_back(h);
  const PeriodCandidates pc(period_with(2, {0, 1}), 2);
  post_process_period(frontier, pc);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_FALSE(frontier[0].used.any());
}

TEST(Assume, RaisesMirroredPairMinimally) {
  Hypothesis h(3);
  CoExecutionHistory history(3);
  const CandidatePair pair{TaskId{0u}, TaskId{2u}, 2};
  h.assume(pair, history);
  EXPECT_EQ(h.d.at(0, 2), DepValue::Forward);
  EXPECT_EQ(h.d.at(2, 0), DepValue::Backward);
  EXPECT_TRUE(h.pair_used(pair));
  EXPECT_EQ(h.d.at(0, 1), DepValue::Parallel);
}

TEST(Assume, HistoryWeakensNewRequirements) {
  // Task 0 already ran in a period without task 2 (and vice versa), so a
  // fresh dependency between them cannot claim "always".
  CoExecutionHistory history(3);
  const PeriodCandidates p0(period_with(3, {0, 1}), 3);
  history.record_period(p0);
  EXPECT_TRUE(history.ran_without(0, 2));
  EXPECT_FALSE(history.ran_without(0, 1));

  Hypothesis h(3);
  h.assume(CandidatePair{TaskId{0u}, TaskId{2u}, 2}, history);
  EXPECT_EQ(h.d.at(0, 2), DepValue::MaybeForward);
  // Task 2 never ran without task 0, so its backward claim stays firm.
  EXPECT_EQ(h.d.at(2, 0), DepValue::Backward);
}

TEST(Assume, AlreadyPermittingEntriesUntouched) {
  CoExecutionHistory history(2);
  Hypothesis h(2);
  h.d.set(0, 1, DepValue::MaybeForward);
  h.d.set(1, 0, DepValue::MaybeBackward);
  h.assume(CandidatePair{TaskId{0u}, TaskId{1u}, 1}, history);
  EXPECT_EQ(h.d.at(0, 1), DepValue::MaybeForward);
  EXPECT_EQ(h.d.at(1, 0), DepValue::MaybeBackward);
}

TEST(Assume, BackwardEntryGeneralizesToMutual) {
  // An entry that already requires the opposite direction joins at <-> —
  // and history immediately relaxes it if co-execution was ever violated.
  CoExecutionHistory clean(2);
  Hypothesis h(2);
  h.d.set(0, 1, DepValue::Backward);
  h.assume(CandidatePair{TaskId{0u}, TaskId{1u}, 1}, clean);
  EXPECT_EQ(h.d.at(0, 1), DepValue::Mutual);
}

}  // namespace
}  // namespace bbmg
