// Streaming learner: per-period equivalence with the batch API, snapshot
// semantics, convergence monitoring.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/heuristic_learner.hpp"
#include "core/online_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/scenarios.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

TEST(OnlineLearner, ReproducesBatchResultExactly) {
  SimConfig cfg;
  cfg.seed = 7;
  const Trace trace = simulate_trace(gm_case_study_model(), 10, cfg);
  for (std::size_t bound : {1, 4, 16}) {
    OnlineConfig oc;
    oc.bound = bound;
    OnlineLearner online(trace.num_tasks(), oc);
    for (const auto& p : trace.periods()) online.observe_period(p);
    const LearnResult batch = learn_heuristic(trace, bound);
    const LearnResult streamed = online.snapshot();
    ASSERT_EQ(streamed.hypotheses.size(), batch.hypotheses.size());
    for (std::size_t i = 0; i < batch.hypotheses.size(); ++i) {
      EXPECT_EQ(streamed.hypotheses[i], batch.hypotheses[i]);
    }
    EXPECT_EQ(streamed.stats.merges, batch.stats.merges);
    EXPECT_EQ(streamed.stats.messages_processed,
              batch.stats.messages_processed);
  }
}

TEST(OnlineLearner, SnapshotAfterEachPeriodIsUsable) {
  const Trace trace = paper_example_trace();
  OnlineConfig oc;
  oc.bound = 64;  // above the peak frontier: no merges, exact-equivalent
  OnlineLearner learner(trace.num_tasks(), oc);
  std::vector<std::size_t> sizes;
  for (const auto& p : trace.periods()) {
    learner.observe_period(p);
    const LearnResult snap = learner.snapshot();
    EXPECT_FALSE(snap.hypotheses.empty());
    sizes.push_back(snap.hypotheses.size());
  }
  // The paper's §3.3 numbers: 3 after period 1, 5 after period 3.
  EXPECT_EQ(sizes.front(), 3u);
  EXPECT_EQ(sizes.back(), 5u);
}

TEST(OnlineLearner, ConvergenceObservableMidStream) {
  // A deterministic chain converges after the first period and stays
  // converged; the consumer can stop tracing early.
  SystemModel m;
  TaskSpec a;
  a.name = "a";
  a.activation = ActivationPolicy::Source;
  const TaskId ia = m.add_task(std::move(a));
  TaskSpec b;
  b.name = "b";
  b.activation = ActivationPolicy::AnyInput;
  const TaskId ib = m.add_task(std::move(b));
  m.add_edge({ia, ib, 1, 8, 1.0});
  m.validate();
  const Trace trace = idealized_trace(m, 5, 1);

  OnlineConfig oc;
  OnlineLearner learner(2, oc);
  for (const auto& p : trace.periods()) {
    learner.observe_period(p);
    EXPECT_TRUE(learner.converged());
  }
}

TEST(OnlineLearner, StatsAccumulateAcrossPeriods) {
  const Trace trace = paper_example_trace();
  OnlineConfig oc;
  OnlineLearner learner(4, oc);
  learner.observe_period(trace.periods()[0]);
  EXPECT_EQ(learner.stats().periods_processed, 1u);
  EXPECT_EQ(learner.stats().messages_processed, 2u);
  learner.observe_period(trace.periods()[1]);
  EXPECT_EQ(learner.stats().periods_processed, 2u);
  EXPECT_EQ(learner.stats().messages_processed, 4u);
}

TEST(OnlineLearner, RejectsBadConfig) {
  OnlineConfig zero;
  zero.bound = 0;
  EXPECT_THROW(OnlineLearner(3, zero), Error);
  OnlineConfig ok;
  EXPECT_THROW(OnlineLearner(0, ok), Error);
}

}  // namespace
}  // namespace bbmg
