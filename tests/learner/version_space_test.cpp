// Candidate elimination with negative examples (the paper's named
// extension): boundary construction, collapse, admission queries.
#include <gtest/gtest.h>

#include "core/matching.hpp"
#include "core/version_space.hpp"
#include "gen/scenarios.hpp"

namespace bbmg {
namespace {

constexpr TaskId A{0u};
constexpr TaskId B{1u};

/// One period: a runs, message, b runs.
void chain_period(TraceBuilder& builder, TimeNs base, CanId id) {
  builder.begin_period();
  builder.add_event(Event::task_start(base, A));
  builder.add_event(Event::task_end(base + 10, A));
  builder.add_event(Event::msg_rise(base + 11, id));
  builder.add_event(Event::msg_fall(base + 12, id));
  builder.add_event(Event::task_start(base + 13, B));
  builder.add_event(Event::task_end(base + 20, B));
  builder.end_period();
}

/// One period: only a runs, no messages.
void solo_period(TraceBuilder& builder, TimeNs base) {
  builder.begin_period();
  builder.add_event(Event::task_start(base, A));
  builder.add_event(Event::task_end(base + 10, A));
  builder.end_period();
}

Trace chain_trace(int periods) {
  TraceBuilder builder({"a", "b"});
  for (int p = 0; p < periods; ++p) {
    chain_period(builder, static_cast<TimeNs>(p) * 1000, 1);
  }
  return builder.take();
}

TEST(VersionSpace, NoNegativesLeavesTopAsGeneralBoundary) {
  const Trace pos = chain_trace(2);
  const Trace neg({"a", "b"});
  const VersionSpaceResult vs = learn_version_space(pos, neg);
  ASSERT_EQ(vs.general.size(), 1u);
  EXPECT_EQ(vs.general.front(), DependencyMatrix::top(2));
  ASSERT_FALSE(vs.specific.empty());
  EXPECT_FALSE(vs.collapsed());
  // The specific boundary is the exact learner's: a -> b.
  DependencyMatrix expected(2);
  expected.set_pair(0, 1, DepValue::Forward);
  EXPECT_EQ(vs.specific.front(), expected);
}

TEST(VersionSpace, NegativeSpecializesGeneralBoundary) {
  // Positives: a -> b chains.  Negative: a runs alone with no message —
  // the forbidden behaviour is "a without b".  The general boundary must
  // reject it, i.e. require b whenever a runs.
  const Trace pos = chain_trace(2);
  TraceBuilder nb({"a", "b"});
  solo_period(nb, 0);
  const Trace neg = nb.take();

  const VersionSpaceResult vs = learn_version_space(pos, neg);
  ASSERT_FALSE(vs.collapsed());
  for (const auto& g : vs.general) {
    EXPECT_NE(g, DependencyMatrix::top(2));
    // Every general member now rejects the negative...
    const PeriodCandidates pc(neg.periods()[0], 2);
    EXPECT_FALSE(matches_period(g, pc));
    // ...while still matching the positives.
    EXPECT_TRUE(matches_trace(g, pos));
  }
  // The version space still admits the learned specific hypothesis.
  EXPECT_TRUE(vs.admits(vs.specific.front()));
  // But no longer the fully pessimistic model.
  EXPECT_FALSE(vs.admits(DependencyMatrix::top(2)));
}

TEST(VersionSpace, BoundariesAreConsistentAntichains) {
  const Trace pos = chain_trace(2);
  TraceBuilder nb({"a", "b"});
  solo_period(nb, 0);
  const Trace neg = nb.take();
  const VersionSpaceResult vs = learn_version_space(pos, neg);
  for (const auto& s : vs.specific) {
    bool below_some_g = false;
    for (const auto& g : vs.general) below_some_g |= s.leq(g);
    EXPECT_TRUE(below_some_g);
  }
  for (std::size_t i = 0; i < vs.general.size(); ++i) {
    for (std::size_t j = 0; j < vs.general.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(vs.general[i].leq(vs.general[j]) &&
                   vs.general[i] != vs.general[j]);
    }
  }
}

TEST(VersionSpace, CollapsesWhenNegativeEqualsAPositive) {
  // The same period appears as positive and negative: no hypothesis can
  // match and reject it simultaneously -> the space collapses.
  const Trace pos = chain_trace(1);
  const Trace neg = chain_trace(1);
  const VersionSpaceResult vs = learn_version_space(pos, neg);
  EXPECT_TRUE(vs.collapsed());
}

TEST(VersionSpace, AdmitsIsBoundedByBothSides) {
  const Trace pos = chain_trace(2);
  TraceBuilder nb({"a", "b"});
  solo_period(nb, 0);
  const Trace neg = nb.take();
  const VersionSpaceResult vs = learn_version_space(pos, neg);
  ASSERT_FALSE(vs.collapsed());
  // Below the specific boundary: not admitted.
  EXPECT_FALSE(vs.admits(DependencyMatrix(2)));
  // The specific member itself: admitted.
  EXPECT_TRUE(vs.admits(vs.specific.front()));
}

TEST(VersionSpace, PaperExampleWithFabricatedNegative) {
  // Positives: the paper's Fig. 2 trace.  Negative: t1 runs alone —
  // fabricating the requirement that t1 must always trigger someone.
  const Trace pos = paper_example_trace();
  TraceBuilder nb({"t1", "t2", "t3", "t4"});
  nb.begin_period();
  nb.add_event(Event::task_start(0, TaskId{0u}));
  nb.add_event(Event::task_end(10, TaskId{0u}));
  nb.end_period();
  const Trace neg = nb.take();
  const VersionSpaceResult vs = learn_version_space(pos, neg);
  ASSERT_FALSE(vs.collapsed());
  // Four of the five §3.3 survivors carry d(t1,t4) = -> and reject the
  // negative; d85 (the one with d(t1,t4) = ||, no hard claim from t1)
  // matches the forbidden period and is eliminated.
  EXPECT_EQ(vs.specific.size(), 4u);
  for (const auto& s : vs.specific) {
    EXPECT_EQ(s.at(0, 3), DepValue::Forward);
  }
  for (const auto& g : vs.general) {
    EXPECT_TRUE(matches_trace(g, pos));
  }
}

}  // namespace
}  // namespace bbmg
