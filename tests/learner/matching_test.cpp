// The matching-function oracle M(h, i): permissions via injective message
// assignment, requirements via co-execution.
#include <gtest/gtest.h>

#include "core/matching.hpp"
#include "gen/scenarios.hpp"

namespace bbmg {
namespace {

DependencyMatrix matrix4(const std::array<const char*, 16>& cells) {
  DependencyMatrix m(4);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      if (a != b) m.set(a, b, dep_from_string(cells[a * 4 + b]));
    }
  }
  return m;
}

TEST(Matching, TopMatchesEverything) {
  const Trace trace = paper_example_trace();
  EXPECT_TRUE(matches_trace(DependencyMatrix::top(4), trace));
}

TEST(Matching, BottomFailsWhenMessagesExist) {
  // d_bot permits no dependency at all, so no message can be assigned.
  const Trace trace = paper_example_trace();
  const PeriodCandidates pc(trace.periods()[0], 4);
  EXPECT_FALSE(matches_period(DependencyMatrix(4), pc));
}

TEST(Matching, PaperDlubMatchesPaperTrace) {
  const Trace trace = paper_example_trace();
  const DependencyMatrix dlub =
      matrix4({"||", "->?", "->?", "->",   //
               "<-", "||", "||", "->",     //
               "<-", "||", "||", "->",     //
               "<-", "<-?", "<-?", "||"});
  EXPECT_TRUE(matches_trace(dlub, trace));
}

TEST(Matching, UnmetForwardRequirementFails) {
  // d(t1,t3) = -> requires t3 to execute whenever t1 does; period 1 has t1
  // without t3.
  const Trace trace = paper_example_trace();
  DependencyMatrix d = DependencyMatrix::top(4);
  d.set(0, 2, DepValue::Forward);
  const PeriodCandidates p1(trace.periods()[0], 4);
  EXPECT_FALSE(matches_period(d, p1));
  // Period 2 has both t1 and t3: fine there.
  const PeriodCandidates p2(trace.periods()[1], 4);
  EXPECT_TRUE(matches_period(d, p2));
}

TEST(Matching, UnmetBackwardRequirementFails) {
  const Trace trace = paper_example_trace();
  DependencyMatrix d = DependencyMatrix::top(4);
  d.set(0, 2, DepValue::Backward);  // t1 always depends on t3
  const PeriodCandidates p1(trace.periods()[0], 4);
  EXPECT_FALSE(matches_period(d, p1));
}

TEST(Matching, InjectivityForcesFailure) {
  // Period 3 has four messages; a hypothesis that only permits three
  // distinct pairs cannot explain it.
  const Trace trace = paper_example_trace();
  DependencyMatrix d(4);
  d.set_pair(0, 1, DepValue::MaybeForward);  // (t1,t2)
  d.set_pair(0, 2, DepValue::MaybeForward);  // (t1,t3)
  d.set_pair(0, 3, DepValue::MaybeForward);  // (t1,t4)
  const PeriodCandidates p3(trace.periods()[2], 4);
  EXPECT_FALSE(matches_period(d, p3));
  // Adding a fourth permitted pair fixes it.
  d.set_pair(2, 3, DepValue::MaybeForward);  // (t3,t4)
  EXPECT_TRUE(matches_period(d, p3));
}

TEST(Matching, PermissionMustCoverBothOrientations) {
  // d(s,r) permits forward but d(r,s) = ->? does NOT permit backward:
  // the assignment is rejected.
  TraceBuilder b({"s", "r"});
  b.begin_period();
  b.add_event(Event::task_start(0, TaskId{0u}));
  b.add_event(Event::task_end(10, TaskId{0u}));
  b.add_event(Event::msg_rise(11, 1));
  b.add_event(Event::msg_fall(12, 1));
  b.add_event(Event::task_start(13, TaskId{1u}));
  b.add_event(Event::task_end(20, TaskId{1u}));
  b.end_period();
  const Trace t = b.take();
  DependencyMatrix d(2);
  d.set(0, 1, DepValue::MaybeForward);
  d.set(1, 0, DepValue::MaybeForward);  // wrong orientation on the mirror
  const PeriodCandidates pc(t.periods()[0], 2);
  EXPECT_FALSE(matches_period(d, pc));
  d.set(1, 0, DepValue::MaybeBackward);
  EXPECT_TRUE(matches_period(d, pc));
}

TEST(Matching, MatchesTraceIsConjunctionOverPeriods) {
  const Trace trace = paper_example_trace();
  DependencyMatrix d = DependencyMatrix::top(4);
  d.set(0, 2, DepValue::Forward);  // fails only period 1
  EXPECT_FALSE(matches_trace(d, trace));
}

TEST(Matching, MonotoneInTheLattice) {
  // If h1 <= h2 and h1 matches, h2 matches (Definition 4's intent) —
  // spot-checked on the paper trace with the learner's own survivors.
  const Trace trace = paper_example_trace();
  const DependencyMatrix d81 =
      matrix4({"||", "->?", "->?", "->",  //
               "<-", "||", "||", "||",    //
               "<-", "||", "||", "->",    //
               "<-", "||", "<-?", "||"});
  ASSERT_TRUE(matches_trace(d81, trace));
  EXPECT_TRUE(matches_trace(d81.lub(DependencyMatrix::top(4)), trace));
  DependencyMatrix raised = d81;
  raised.set(0, 1, DepValue::MaybeMutual);
  EXPECT_TRUE(matches_trace(raised, trace));
}

}  // namespace
}  // namespace bbmg
