// Heuristic-learner specifics: the weight-ordered bounded list, LUB
// merging, convergence behaviour and instrumentation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/scenarios.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

TEST(Heuristic, BoundMustBePositive) {
  const Trace trace = paper_example_trace();
  EXPECT_THROW((void)learn_heuristic(trace, 0), Error);
}

TEST(Heuristic, ResultSizeNeverExceedsBound) {
  const Trace trace = paper_example_trace();
  for (std::size_t bound : {1, 2, 3, 4, 8}) {
    const LearnResult r = learn_heuristic(trace, bound);
    EXPECT_LE(r.hypotheses.size(), bound);
    EXPECT_LE(r.stats.peak_hypotheses, bound);
  }
}

TEST(Heuristic, ResultSortedByWeightAscending) {
  const Trace trace = paper_example_trace();
  const LearnResult r = learn_heuristic(trace, 4);
  for (std::size_t i = 1; i < r.hypotheses.size(); ++i) {
    EXPECT_LE(r.hypotheses[i - 1].weight(), r.hypotheses[i].weight());
  }
}

TEST(Heuristic, SmallBoundForcesMerges) {
  const Trace trace = paper_example_trace();
  const LearnResult r1 = learn_heuristic(trace, 1);
  EXPECT_GT(r1.stats.merges, 0u);
  const LearnResult r64 = learn_heuristic(trace, 64);
  EXPECT_EQ(r64.stats.merges, 0u);
}

TEST(Heuristic, MergedResultDominatesUnmergedSurvivors) {
  // Every bound-1 entry is a LUB of things the unbounded run kept, so the
  // bound-1 matrix dominates each unbounded survivor pointwise... not in
  // general — but it must dominate at least one of them (it is an upper
  // bound of a subset), and for the paper example it dominates them all.
  const Trace trace = paper_example_trace();
  const LearnResult r1 = learn_heuristic(trace, 1);
  const LearnResult rbig = learn_heuristic(trace, 64);
  ASSERT_EQ(r1.hypotheses.size(), 1u);
  for (const auto& h : rbig.hypotheses) {
    EXPECT_TRUE(h.leq(r1.hypotheses.front()));
  }
}

TEST(Heuristic, StatsCountMessagesAndPeriods) {
  const Trace trace = paper_example_trace();
  const LearnResult r = learn_heuristic(trace, 4);
  EXPECT_EQ(r.stats.periods_processed, 3u);
  EXPECT_EQ(r.stats.messages_processed, 8u);
  EXPECT_EQ(r.stats.frontier_after_period.size(), 3u);
  EXPECT_GT(r.stats.hypotheses_created, 0u);
  EXPECT_GE(r.stats.wall_seconds, 0.0);
}

TEST(Heuristic, ConvergenceFlag) {
  const Trace trace = paper_example_trace();
  EXPECT_TRUE(learn_heuristic(trace, 1).converged());
  EXPECT_FALSE(learn_heuristic(trace, 64).converged());
}

TEST(Heuristic, DeterministicAcrossRuns) {
  SimConfig cfg;
  cfg.seed = 5;
  const Trace trace = simulate_trace(gm_case_study_model(), 6, cfg);
  const LearnResult a = learn_heuristic(trace, 8);
  const LearnResult b = learn_heuristic(trace, 8);
  ASSERT_EQ(a.hypotheses.size(), b.hypotheses.size());
  for (std::size_t i = 0; i < a.hypotheses.size(); ++i) {
    EXPECT_EQ(a.hypotheses[i], b.hypotheses[i]);
  }
}

TEST(Heuristic, GmTraceConvergesAtEveryBound) {
  // The paper's §3.4 observation (Theorem 4 in action): the case study
  // converges to one hypothesis regardless of the bound, and the result
  // is bound-invariant.
  SimConfig cfg;
  cfg.seed = 7;
  const Trace trace = simulate_trace(gm_case_study_model(),
                                     kGmCaseStudyPeriods, cfg);
  const DependencyMatrix ref = learn_heuristic(trace, 1).lub();
  for (std::size_t bound : {1, 4, 16}) {
    const LearnResult r = learn_heuristic(trace, bound);
    EXPECT_TRUE(r.converged()) << "bound " << bound;
    EXPECT_EQ(r.lub(), ref) << "bound " << bound;
  }
}

TEST(Heuristic, EmptyTraceYieldsBottom) {
  Trace t({"a", "b"});
  const LearnResult r = learn_heuristic(t, 4);
  ASSERT_EQ(r.hypotheses.size(), 1u);
  EXPECT_EQ(r.hypotheses.front(), DependencyMatrix(2));
}

TEST(Heuristic, MessagelessPeriodsOnlyWeaken) {
  // Two periods with disjoint execution sets and no messages at all:
  // everything stays parallel.
  Trace t({"a", "b"});
  t.add_period(Period({{TaskId{0u}, 0, 10}}, {}));
  t.add_period(Period({{TaskId{1u}, 100, 110}}, {}));
  const LearnResult r = learn_heuristic(t, 4);
  ASSERT_EQ(r.hypotheses.size(), 1u);
  EXPECT_EQ(r.hypotheses.front(), DependencyMatrix(2));
}

}  // namespace
}  // namespace bbmg
