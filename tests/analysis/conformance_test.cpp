// Conformance checking of traces against learned dependency models.
#include <gtest/gtest.h>

#include "analysis/conformance.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/scenarios.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

TEST(Conformance, TrainingTraceConformsToItsOwnModel) {
  const Trace trace = paper_example_trace();
  const DependencyMatrix model = learn_heuristic(trace, 8).lub();
  const ConformanceReport report = check_conformance(model, trace);
  EXPECT_TRUE(report.conforms());
  EXPECT_EQ(report.periods_checked, 3u);
}

TEST(Conformance, UnmetRequirementDetected) {
  // Model: a always determines b.  Offending trace: a runs alone.
  DependencyMatrix model(2);
  model.set_pair(0, 1, DepValue::Forward);
  TraceBuilder builder({"a", "b"});
  builder.begin_period();
  builder.add_event(Event::task_start(0, TaskId{0u}));
  builder.add_event(Event::task_end(10, TaskId{0u}));
  builder.end_period();
  const Trace offending = builder.take();

  const ConformanceReport report = check_conformance(model, offending);
  ASSERT_EQ(report.violations.size(), 1u);
  const ConformanceViolation& v = report.violations[0];
  EXPECT_EQ(v.kind, ViolationKind::UnmetRequirement);
  EXPECT_EQ(v.a.index(), 0u);
  EXPECT_EQ(v.b.index(), 1u);
  EXPECT_EQ(v.entry, DepValue::Forward);
  const std::string text = describe_violation(v, {"a", "b"});
  EXPECT_NE(text.find("d(a,b) = ->"), std::string::npos);
  EXPECT_NE(text.find("a executed without b"), std::string::npos);
}

TEST(Conformance, UnexplainableMessageDetected) {
  // Model: everything parallel.  Any message is unexplainable.
  const DependencyMatrix model(2);
  TraceBuilder builder({"a", "b"});
  builder.begin_period();
  builder.add_event(Event::task_start(0, TaskId{0u}));
  builder.add_event(Event::task_end(10, TaskId{0u}));
  builder.add_event(Event::msg_rise(11, 1));
  builder.add_event(Event::msg_fall(12, 1));
  builder.add_event(Event::task_start(13, TaskId{1u}));
  builder.add_event(Event::task_end(20, TaskId{1u}));
  builder.end_period();
  const Trace offending = builder.take();

  const ConformanceReport report = check_conformance(model, offending);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::UnexplainableMessages);
  const std::string text = describe_violation(report.violations[0], {"a", "b"});
  EXPECT_NE(text.find("cannot be explained"), std::string::npos);
}

TEST(Conformance, ViolationCarriesPeriodIndex) {
  DependencyMatrix model(2);
  model.set_pair(0, 1, DepValue::Forward);
  TraceBuilder builder({"a", "b"});
  // Period 1 fine, period 2 offending.
  builder.begin_period();
  builder.add_event(Event::task_start(0, TaskId{0u}));
  builder.add_event(Event::task_end(10, TaskId{0u}));
  builder.add_event(Event::msg_rise(11, 1));
  builder.add_event(Event::msg_fall(12, 1));
  builder.add_event(Event::task_start(13, TaskId{1u}));
  builder.add_event(Event::task_end(20, TaskId{1u}));
  builder.end_period();
  builder.begin_period();
  builder.add_event(Event::task_start(1000, TaskId{0u}));
  builder.add_event(Event::task_end(1010, TaskId{0u}));
  builder.end_period();
  const Trace t = builder.take();

  const ConformanceReport report = check_conformance(model, t);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].period_index, 1u);
}

TEST(Conformance, GmModelCatchesForeignBehaviour) {
  // Learn from the GM trace, then check a trace of the *paper* model
  // padded into the same 18-task universe: its behaviour (only tasks 0..3
  // active, none of the GM requirements) violates the learned model.
  const Trace gm = simulate_trace(gm_case_study_model(), 10, SimConfig{});
  const DependencyMatrix model = learn_heuristic(gm, 8).lub();

  TraceBuilder builder(gm.task_names());
  builder.begin_period();
  builder.add_event(Event::task_start(0, TaskId{0u}));
  builder.add_event(Event::task_end(10, TaskId{0u}));
  builder.end_period();
  const Trace foreign = builder.take();

  const ConformanceReport report = check_conformance(model, foreign);
  EXPECT_FALSE(report.conforms());
  EXPECT_GE(report.violations.size(), 1u);
}

TEST(Conformance, HoldOutPeriodsConform) {
  // Learn on the first 20 GM periods, check the next 7 — same system,
  // same platform, so the held-out tail must conform.
  SimConfig cfg;
  cfg.seed = 7;
  const Trace all = simulate_trace(gm_case_study_model(), 27, cfg);
  Trace train(all.task_names());
  Trace held(all.task_names());
  for (std::size_t p = 0; p < all.num_periods(); ++p) {
    (p < 20 ? train : held).add_period(all.periods()[p]);
  }
  const DependencyMatrix model = learn_heuristic(train, 16).lub();
  const ConformanceReport report = check_conformance(model, held);
  EXPECT_TRUE(report.conforms())
      << report.violations.size() << " violations on held-out periods";
}

}  // namespace
}  // namespace bbmg
