// Property sweep: for any random model and seed, a dependency model
// learned from a trace conforms to that trace (the conformance checker is
// the deployment-time face of the matching oracle, so this is Theorem 2
// seen from the monitoring side), and a trace of a *different* random
// system generally does not conform.
#include <gtest/gtest.h>

#include "analysis/conformance.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/random_model.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

class ConformanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

SystemModel model_for(std::uint64_t seed, double disjunction_fraction) {
  RandomModelParams params;
  params.num_tasks = 9;
  params.num_layers = 3;
  params.num_ecus = 2;
  params.disjunction_fraction = disjunction_fraction;
  params.seed = seed;
  return random_model(params);
}

TEST_P(ConformanceProperty, TrainingTraceAlwaysConforms) {
  const SystemModel model = model_for(GetParam(), 0.5);
  SimConfig cfg;
  cfg.seed = GetParam() * 3 + 1;
  const Trace trace = simulate_trace(model, 8, cfg);
  for (std::size_t bound : {1, 8}) {
    const DependencyMatrix learned = learn_heuristic(trace, bound).lub();
    const ConformanceReport report = check_conformance(learned, trace);
    EXPECT_TRUE(report.conforms())
        << "bound " << bound << ": " << report.violations.size()
        << " violations on the training trace";
  }
}

TEST_P(ConformanceProperty, FreshSeedOfSameSystemConforms) {
  // Same design, different platform randomness: requirements learned from
  // one run hold for another, because they reflect the design (and the
  // learner only claims "always" when the training run never refuted it —
  // a fresh run of the same deterministic-requirement structure cannot
  // refute it either for the structural entries we check).
  const SystemModel model = model_for(GetParam(), 0.0);  // deterministic
  SimConfig a;
  a.seed = GetParam() * 5 + 7;
  SimConfig b;
  b.seed = GetParam() * 11 + 13;
  const Trace train = simulate_trace(model, 8, a);
  const Trace fresh = simulate_trace(model, 8, b);
  const DependencyMatrix learned = learn_heuristic(train, 8).lub();
  const ConformanceReport report = check_conformance(learned, fresh);
  EXPECT_TRUE(report.conforms())
      << report.violations.size() << " violations across seeds";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConformanceProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace bbmg
