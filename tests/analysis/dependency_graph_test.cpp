// Dependency-graph analysis: node classification, must/may reachability,
// DOT export.
#include <gtest/gtest.h>

#include "analysis/dependency_graph.hpp"
#include "common/error.hpp"
#include "core/exact_learner.hpp"
#include "gen/scenarios.hpp"

namespace bbmg {
namespace {

DependencyGraph paper_graph() {
  const Trace trace = paper_example_trace();
  const LearnResult exact = learn_exact(trace);
  return DependencyGraph(exact.lub(), trace.task_names());
}

TEST(DependencyGraph, NameLookup) {
  const DependencyGraph g = paper_graph();
  EXPECT_EQ(g.by_name("t3").index(), 2u);
  EXPECT_EQ(g.name(TaskId{1u}), "t2");
  EXPECT_THROW((void)g.by_name("zz"), Error);
  EXPECT_THROW(DependencyGraph(DependencyMatrix(3), {"a"}), Error);
}

TEST(DependencyGraph, PaperRoles) {
  const DependencyGraph g = paper_graph();
  // t1 conditionally determines t2 and t3: a disjunction node.
  EXPECT_EQ(g.role(g.by_name("t1")), NodeRole::Disjunction);
  // t4 conditionally depends on t2 and t3: a conjunction node.
  EXPECT_EQ(g.role(g.by_name("t4")), NodeRole::Conjunction);
  EXPECT_EQ(g.role(g.by_name("t2")), NodeRole::Plain);
  EXPECT_EQ(g.role(g.by_name("t3")), NodeRole::Plain);
}

TEST(DependencyGraph, BothRoleDetected) {
  DependencyMatrix d(5);
  // Node 2 conditionally depends on 0,1 and conditionally determines 3,4.
  d.set(2, 0, DepValue::MaybeBackward);
  d.set(2, 1, DepValue::MaybeBackward);
  d.set(2, 3, DepValue::MaybeForward);
  d.set(2, 4, DepValue::MaybeForward);
  const DependencyGraph g(d, {"a", "b", "c", "d", "e"});
  EXPECT_EQ(g.role(TaskId{2u}), NodeRole::Both);
  // With a higher threshold it is plain.
  EXPECT_EQ(g.role(TaskId{2u}, 3), NodeRole::Plain);
}

TEST(DependencyGraph, AlwaysDeterminesAndDependsLists) {
  const DependencyGraph g = paper_graph();
  const auto det = g.always_determines(g.by_name("t1"));
  ASSERT_EQ(det.size(), 1u);
  EXPECT_EQ(det[0], g.by_name("t4"));
  const auto dep = g.always_depends_on(g.by_name("t4"));
  ASSERT_EQ(dep.size(), 1u);
  EXPECT_EQ(dep[0], g.by_name("t1"));
}

TEST(DependencyGraph, MustLeadToFollowsRequiredEdgesOnly) {
  DependencyMatrix d(4);
  d.set(0, 1, DepValue::Forward);
  d.set(1, 2, DepValue::Forward);
  d.set(2, 3, DepValue::MaybeForward);
  const DependencyGraph g(d, {"a", "b", "c", "d"});
  EXPECT_TRUE(g.must_lead_to(TaskId{0u}, TaskId{2u}));   // via two ->
  EXPECT_FALSE(g.must_lead_to(TaskId{0u}, TaskId{3u}));  // ->? breaks it
  EXPECT_TRUE(g.may_influence(TaskId{0u}, TaskId{3u}));
  EXPECT_FALSE(g.may_influence(TaskId{3u}, TaskId{0u}));
  EXPECT_FALSE(g.must_lead_to(TaskId{0u}, TaskId{0u}));
}

TEST(DependencyGraph, PaperMustLeadToT4) {
  const DependencyGraph g = paper_graph();
  EXPECT_TRUE(g.must_lead_to(g.by_name("t1"), g.by_name("t4")));
  EXPECT_FALSE(g.must_lead_to(g.by_name("t1"), g.by_name("t3")));
}

TEST(DependencyGraph, DotContainsRolesAndEdgeStyles) {
  const DependencyGraph g = paper_graph();
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph dependencies"), std::string::npos);
  EXPECT_NE(dot.find("\"t1\" [style=bold color=blue]"), std::string::npos);
  EXPECT_NE(dot.find("\"t4\" [style=bold color=red]"), std::string::npos);
  EXPECT_NE(dot.find("-> / <-"), std::string::npos);
  // In the paper's dLUB every raised pair carries a hard requirement on
  // one side, so no edge is dashed there; a purely conditional pair is.
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);
  DependencyMatrix cond(2);
  cond.set_pair(0, 1, DepValue::MaybeForward);
  const DependencyGraph gc(cond, {"a", "b"});
  EXPECT_NE(gc.to_dot().find("style=dashed"), std::string::npos);
}

TEST(DependencyGraph, DotSkipsParallelPairs) {
  DependencyMatrix d(3);
  d.set_pair(0, 1, DepValue::Forward);
  const DependencyGraph g(d, {"a", "b", "c"});
  const std::string dot = g.to_dot();
  EXPECT_EQ(dot.find("\"a\" -> \"c\""), std::string::npos);
  EXPECT_EQ(dot.find("\"b\" -> \"c\""), std::string::npos);
  EXPECT_NE(dot.find("\"a\" -> \"b\""), std::string::npos);
}

}  // namespace
}  // namespace bbmg
