// Response-time and end-to-end latency analysis (experiment E5): the
// hand-computable cases and the pessimistic-vs-informed invariants.
#include <gtest/gtest.h>

#include "analysis/latency.hpp"
#include "common/error.hpp"
#include "gen/gm_case_study.hpp"
#include "sim/can_frame.hpp"

namespace bbmg {
namespace {

/// Two tasks on one ECU (hp higher priority), one on another.
SystemModel two_plus_one() {
  SystemModel m;
  TaskSpec hp;
  hp.name = "hp";
  hp.ecu = EcuId{0u};
  hp.priority = 10;
  hp.activation = ActivationPolicy::Source;
  hp.exec_min = hp.exec_max = 100;
  const TaskId ihp = m.add_task(std::move(hp));
  TaskSpec lo;
  lo.name = "lo";
  lo.ecu = EcuId{0u};
  lo.priority = 1;
  lo.activation = ActivationPolicy::AnyInput;
  lo.exec_min = lo.exec_max = 300;
  const TaskId ilo = m.add_task(std::move(lo));
  TaskSpec other;
  other.name = "other";
  other.ecu = EcuId{1u};
  other.priority = 5;
  other.activation = ActivationPolicy::AnyInput;
  other.exec_min = other.exec_max = 50;
  const TaskId iother = m.add_task(std::move(other));
  m.add_edge({ihp, ilo, 1, 8, 1.0});
  m.add_edge({ihp, iother, 2, 8, 1.0});
  m.validate();
  return m;
}

TEST(Latency, PessimisticAddsAllHigherPrioritySameEcu) {
  const SystemModel m = two_plus_one();
  const auto rs = response_times(m, DependencyMatrix(3));
  ASSERT_EQ(rs.size(), 3u);
  // hp: nothing above it.
  EXPECT_EQ(rs[0].response_pessimistic, 100u);
  // lo: hp interferes.
  EXPECT_EQ(rs[1].response_pessimistic, 300u + 100u);
  // other: alone on its ECU.
  EXPECT_EQ(rs[2].response_pessimistic, 50u);
}

TEST(Latency, LearnedDependencyExcludesPreemption) {
  const SystemModel m = two_plus_one();
  DependencyMatrix learned(3);
  learned.set(1, 0, DepValue::Backward);  // lo always depends on hp
  const auto rs = response_times(m, learned);
  EXPECT_EQ(rs[1].response_pessimistic, 400u);
  EXPECT_EQ(rs[1].response_informed, 300u);  // hp's preemption excluded
  ASSERT_EQ(rs[1].excluded.size(), 1u);
  EXPECT_EQ(rs[1].excluded[0].index(), 0u);
}

TEST(Latency, ConditionalDependencyExcludedOnlyWithFlag) {
  const SystemModel m = two_plus_one();
  DependencyMatrix learned(3);
  learned.set(1, 0, DepValue::MaybeBackward);
  const auto sound = response_times(m, learned);
  EXPECT_EQ(sound[1].response_informed, 400u);  // ->? is not a guarantee
  LatencyConfig cfg;
  cfg.exclude_conditional = true;
  const auto aggressive = response_times(m, learned, cfg);
  EXPECT_EQ(aggressive[1].response_informed, 300u);
}

TEST(Latency, InformedNeverExceedsPessimistic) {
  const SystemModel m = gm_case_study_model();
  const auto rs = response_times(m, DependencyMatrix::top(m.num_tasks()));
  for (const auto& r : rs) {
    EXPECT_LE(r.response_informed, r.response_pessimistic);
    EXPECT_GE(r.response_informed, r.wcet);
  }
}

TEST(Latency, PathLatencyAddsFrameTimes) {
  const SystemModel m = two_plus_one();
  const auto rs = response_times(m, DependencyMatrix(3));
  const std::vector<TaskId> path{TaskId{0u}, TaskId{1u}};
  const TimeNs expected =
      100 + can_frame_time(8, 500'000, false) + 400;
  EXPECT_EQ(path_latency(m, rs, path, /*informed=*/false), expected);
}

TEST(Latency, PathMustFollowDesignEdges) {
  const SystemModel m = two_plus_one();
  const auto rs = response_times(m, DependencyMatrix(3));
  const std::vector<TaskId> bad{TaskId{1u}, TaskId{2u}};
  EXPECT_THROW((void)path_latency(m, rs, bad, false), Error);
  EXPECT_THROW((void)path_latency(m, rs, {}, false), Error);
}

TEST(Latency, GmCriticalPathThroughQImproves) {
  // The paper's example: the learned Q-O dependency removes O's preemption
  // from Q's response time on their shared ECU.
  const SystemModel m = gm_case_study_model();
  DependencyMatrix learned(m.num_tasks());
  const TaskId O = m.task_by_name("O");
  const TaskId Q = m.task_by_name("Q");
  learned.set(Q, O, DepValue::Backward);
  const auto rs = response_times(m, learned);
  const auto& rq = rs[Q.index()];
  EXPECT_GT(rq.response_pessimistic, rq.response_informed);
  EXPECT_EQ(rq.response_pessimistic - rq.response_informed,
            m.task(O).exec_max);
}

TEST(Latency, MatrixSizeMismatchThrows) {
  const SystemModel m = two_plus_one();
  EXPECT_THROW((void)response_times(m, DependencyMatrix(2)), Error);
}

}  // namespace
}  // namespace bbmg
