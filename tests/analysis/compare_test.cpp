// Matrix comparison metrics and emergent-dependency extraction.
#include <gtest/gtest.h>

#include "analysis/compare.hpp"
#include "common/error.hpp"

namespace bbmg {
namespace {

TEST(Compare, IdenticalMatrices) {
  DependencyMatrix a(3);
  a.set_pair(0, 1, DepValue::Forward);
  const MatrixComparison cmp = compare_matrices(a, a);
  EXPECT_EQ(cmp.total_pairs, 6u);
  EXPECT_EQ(cmp.equal, 6u);
  EXPECT_EQ(cmp.candidate_more_general, 0u);
  EXPECT_EQ(cmp.incomparable, 0u);
  EXPECT_TRUE(cmp.candidate_geq_reference);
  EXPECT_EQ(cmp.weight_reference, cmp.weight_candidate);
}

TEST(Compare, CountsPerPairRelations) {
  DependencyMatrix ref(3);
  ref.set(0, 1, DepValue::Forward);        // candidate raises to ->?
  ref.set(1, 2, DepValue::MaybeForward);   // candidate lowers to ->
  ref.set(2, 0, DepValue::Forward);        // candidate flips to <- (incomp.)
  DependencyMatrix cand(3);
  cand.set(0, 1, DepValue::MaybeForward);
  cand.set(1, 2, DepValue::Forward);
  cand.set(2, 0, DepValue::Backward);
  const MatrixComparison cmp = compare_matrices(ref, cand);
  EXPECT_EQ(cmp.equal, 3u);  // the three untouched pairs
  EXPECT_EQ(cmp.candidate_more_general, 1u);
  EXPECT_EQ(cmp.candidate_more_specific, 1u);
  EXPECT_EQ(cmp.incomparable, 1u);
  EXPECT_FALSE(cmp.candidate_geq_reference);
}

TEST(Compare, GeqDirectionDetected) {
  DependencyMatrix ref(2);
  ref.set(0, 1, DepValue::Forward);
  DependencyMatrix cand(2);
  cand.set(0, 1, DepValue::MaybeMutual);
  EXPECT_TRUE(compare_matrices(ref, cand).candidate_geq_reference);
  EXPECT_FALSE(compare_matrices(cand, ref).candidate_geq_reference);
}

TEST(Compare, EmergentPairs) {
  DependencyMatrix design(3);
  design.set_pair(0, 1, DepValue::Forward);
  DependencyMatrix learned(3);
  learned.set_pair(0, 1, DepValue::Forward);
  learned.set(0, 2, DepValue::Forward);  // emergent
  learned.set(2, 0, DepValue::Backward); // emergent (mirror orientation)
  const auto pairs = emergent_pairs(design, learned);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].first.index(), 0u);
  EXPECT_EQ(pairs[0].second.index(), 2u);
  EXPECT_EQ(pairs[1].first.index(), 2u);
  EXPECT_EQ(pairs[1].second.index(), 0u);
}

TEST(Compare, SizeMismatchThrows) {
  EXPECT_THROW((void)compare_matrices(DependencyMatrix(2), DependencyMatrix(3)),
               Error);
  EXPECT_THROW((void)emergent_pairs(DependencyMatrix(2), DependencyMatrix(3)),
               Error);
}

}  // namespace
}  // namespace bbmg
