// Integration: the full pipeline design model -> platform simulation ->
// serialization -> learner -> analysis, including the headline GM
// case-study properties (experiment E4).
#include <gtest/gtest.h>

#include "analysis/compare.hpp"
#include "analysis/dependency_graph.hpp"
#include "analysis/latency.hpp"
#include "baseline/pessimistic.hpp"
#include "core/heuristic_learner.hpp"
#include "core/matching.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/scenarios.hpp"
#include "model/design_truth.hpp"
#include "sim/simulator.hpp"
#include "trace/serialize.hpp"

namespace bbmg {
namespace {

struct GmRun {
  SystemModel model = gm_case_study_model();
  Trace trace;
  DependencyMatrix learned{18};
  GmRun() {
    SimConfig cfg;
    cfg.seed = 7;
    trace = simulate_trace(model, kGmCaseStudyPeriods, cfg);
    learned = learn_heuristic(trace, 16).lub();
  }
};

const GmRun& gm_run() {
  static const GmRun run;
  return run;
}

TEST(EndToEnd, GmLearnedModelMatchesTheTrace) {
  const GmRun& run = gm_run();
  EXPECT_TRUE(matches_trace(run.learned, run.trace));
}

TEST(EndToEnd, GmHeadlineProperties) {
  const GmRun& run = gm_run();
  const DependencyGraph g(run.learned, run.trace.task_names());
  // "Tasks A and B are disjunction nodes" (known in advance).
  EXPECT_EQ(g.role(g.by_name("A")), NodeRole::Disjunction);
  EXPECT_EQ(g.role(g.by_name("B")), NodeRole::Disjunction);
  // "Tasks H, P and Q are conjunction nodes" (learned).
  EXPECT_EQ(g.role(g.by_name("H")), NodeRole::Conjunction);
  EXPECT_EQ(g.role(g.by_name("P")), NodeRole::Conjunction);
  EXPECT_EQ(g.role(g.by_name("Q")), NodeRole::Conjunction);
  // "No matter which mode task A chooses, task L must execute."
  EXPECT_EQ(g.value(g.by_name("A"), g.by_name("L")), DepValue::Forward);
  // "No matter which mode task B chooses, task M must execute."
  EXPECT_EQ(g.value(g.by_name("B"), g.by_name("M")), DepValue::Forward);
}

TEST(EndToEnd, GmDiscoversInfrastructureDependency) {
  // The Q-O dependency comes from the CAN/OSEK interplay, not the design.
  const GmRun& run = gm_run();
  const DependencyGraph g(run.learned, run.trace.task_names());
  const TaskId Q = g.by_name("Q");
  const TaskId O = g.by_name("O");
  EXPECT_NE(g.value(Q, O), DepValue::Parallel);
  // ... and it is absent from the design view.
  const DependencyMatrix design = design_dependency(run.model);
  EXPECT_EQ(design.at(Q, O), DepValue::Parallel);
  bool found = false;
  for (const auto& [a, b] : emergent_pairs(design, run.learned)) {
    if (a == Q && b == O) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EndToEnd, GmLatencyImprovesOverPessimistic) {
  const GmRun& run = gm_run();
  const auto informed = response_times(run.model, run.learned);
  const auto pessimistic =
      response_times(run.model, pessimistic_baseline(18));
  const TaskId Q = run.model.task_by_name("Q");
  // The pessimistic baseline excludes nothing.
  EXPECT_EQ(pessimistic[Q.index()].response_informed,
            pessimistic[Q.index()].response_pessimistic);
  // The learned model strictly tightens Q (O can no longer preempt it).
  EXPECT_LT(informed[Q.index()].response_informed,
            informed[Q.index()].response_pessimistic);
}

TEST(EndToEnd, GmLearnedIsStrictlyMoreInformativeThanBaseline) {
  const GmRun& run = gm_run();
  const DependencyMatrix top = pessimistic_baseline(18);
  EXPECT_TRUE(run.learned.leq(top));
  EXPECT_LT(run.learned.weight(), top.weight());
}

TEST(EndToEnd, SerializationPreservesLearningResult) {
  const GmRun& run = gm_run();
  const Trace reloaded = trace_from_string(trace_to_string(run.trace));
  const DependencyMatrix relearned = learn_heuristic(reloaded, 16).lub();
  EXPECT_EQ(relearned, run.learned);
}

TEST(EndToEnd, MoreSeedsSameHeadlines) {
  // The headline properties are robust to the platform RNG, not a lucky
  // seed: check three more seeds at a smaller bound.
  for (std::uint64_t seed : {11u, 23u, 31u}) {
    SimConfig cfg;
    cfg.seed = seed;
    const Trace trace =
        simulate_trace(gm_case_study_model(), kGmCaseStudyPeriods, cfg);
    const DependencyMatrix learned = learn_heuristic(trace, 4).lub();
    const DependencyGraph g(learned, trace.task_names());
    EXPECT_EQ(g.value(g.by_name("A"), g.by_name("L")), DepValue::Forward)
        << "seed " << seed;
    EXPECT_EQ(g.value(g.by_name("B"), g.by_name("M")), DepValue::Forward)
        << "seed " << seed;
    EXPECT_NE(g.value(g.by_name("Q"), g.by_name("O")), DepValue::Parallel)
        << "seed " << seed;
  }
}

TEST(EndToEnd, IdealizedAndSimulatedTracesAgreeOnRequirements) {
  // Platform timing (ECU scheduling, CAN arbitration) does not change what
  // is learnable from the paper model: at a bound generous enough to keep
  // all branch lineages alive, the simulated trace teaches the same
  // emergent requirement d(t1,t4) = -> as the idealized one.  (At small
  // bounds the merge pressure can drop the lineage that assumes (t1,t4) —
  // the result is then a sound but less specific model.)
  const SystemModel model = paper_example_model();
  const DependencyMatrix ideal = learn_heuristic(
      idealized_trace(model, 40, 3), 64).lub();
  SimConfig cfg;
  cfg.seed = 3;
  const DependencyMatrix simulated =
      learn_heuristic(simulate_trace(model, 40, cfg), 64).lub();
  EXPECT_EQ(ideal.at(0, 3), DepValue::Forward);
  EXPECT_EQ(simulated.at(0, 3), DepValue::Forward);
  EXPECT_EQ(simulated.at(3, 0), DepValue::Backward);
}

}  // namespace
}  // namespace bbmg
