// Deployment synthesis: reproducibility and heterogeneity
// (fleet/deployment.hpp).
#include <gtest/gtest.h>

#include <set>

#include "fleet/deployment.hpp"
#include "trace/serialize.hpp"

namespace bbmg::fleet {
namespace {

TEST(Deployment, FullyDeterminedByFleetSeedAndIndex) {
  for (std::size_t index : {0ul, 17ul, 999ul}) {
    const DeploymentSpec a = make_deployment(42, index, 3);
    const DeploymentSpec b = make_deployment(42, index, 3);
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.index, index);
    // The strongest form: the streamed bytes match.
    EXPECT_EQ(trace_to_string(scenario_trace(a.scenario)),
              trace_to_string(scenario_trace(b.scenario)));
  }
}

TEST(Deployment, DistinctIndicesAreDistinctSystems) {
  const DeploymentSpec a = make_deployment(42, 1, 3);
  const DeploymentSpec b = make_deployment(42, 2, 3);
  EXPECT_NE(a.key, b.key);
  EXPECT_NE(trace_to_string(scenario_trace(a.scenario)),
            trace_to_string(scenario_trace(b.scenario)));
}

TEST(Deployment, FleetIsHeterogeneous) {
  std::set<std::size_t> sizes;
  bool any_sporadic = false;
  bool any_drift = false;
  bool any_burst = false;
  bool any_jitter = false;
  std::size_t small = 0;
  std::size_t large = 0;
  const std::size_t n = 200;
  for (std::size_t i = 0; i < n; ++i) {
    const DeploymentSpec dep = make_deployment(7, i, 2);
    const auto& m = dep.scenario.model;
    const auto& p = dep.scenario.platform;
    sizes.insert(m.num_tasks);
    if (m.num_tasks <= 6) ++small;
    if (m.num_tasks >= 16) ++large;
    any_sporadic |= m.sporadic_fraction > 0;
    any_drift |= p.clock_drift_ppm_max > 0;
    any_burst |= p.burst_enter_prob > 0;
    any_jitter |= p.release_jitter_max > 0;
  }
  EXPECT_GT(sizes.size(), 5u);
  // Size mix: mostly small, a real tail of large systems.
  EXPECT_GT(small, n / 2);
  EXPECT_GT(large, 0u);
  EXPECT_LT(large, n / 4);
  EXPECT_TRUE(any_sporadic);
  EXPECT_TRUE(any_drift);
  EXPECT_TRUE(any_burst);
  EXPECT_TRUE(any_jitter);
}

TEST(Deployment, EveryDeploymentSimulatesCleanly) {
  // The knob mix must never produce an unsimulable deployment (empty
  // periods, overload, validation failures) — spot-check a slice.
  for (std::size_t i = 0; i < 40; ++i) {
    const DeploymentSpec dep = make_deployment(123, i, 3);
    const Trace t = scenario_trace(dep.scenario);
    EXPECT_EQ(t.num_periods(), 3u) << "deployment " << i;
  }
}

}  // namespace
}  // namespace bbmg::fleet
