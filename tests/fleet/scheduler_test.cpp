// FleetScheduler: arrival shaping and event ordering (fleet/scheduler.hpp).
#include <gtest/gtest.h>

#include <vector>

#include "fleet/scheduler.hpp"

namespace bbmg::fleet {
namespace {

constexpr TimeNs kWindow = 10 * kTimeNsPerSec;

TEST(ArrivalTime, SteadyIsUniform) {
  const std::size_t n = 100;
  TimeNs prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TimeNs at = arrival_time(ArrivalShape::Steady, i, n, kWindow);
    EXPECT_GE(at, prev);
    prev = at;
  }
  // Constant rate: the median deployment arrives at the window midpoint.
  const TimeNs mid = arrival_time(ArrivalShape::Steady, 50, n, kWindow);
  EXPECT_NEAR(static_cast<double>(mid), static_cast<double>(kWindow) / 2,
              static_cast<double>(kWindow) * 0.02);
}

TEST(ArrivalTime, RampBacksLoadsTheWindow) {
  const std::size_t n = 100;
  // Linearly growing rate: only a quarter of the fleet has arrived by the
  // window midpoint (cumulative arrivals ~ t^2).
  std::size_t arrived_by_mid = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (arrival_time(ArrivalShape::Ramp, i, n, kWindow) <= kWindow / 2) {
      ++arrived_by_mid;
    }
  }
  EXPECT_NEAR(static_cast<double>(arrived_by_mid), 25.0, 3.0);
}

TEST(ArrivalTime, FlashCrowdConcentratesTheFleet) {
  const std::size_t n = 1000;
  std::size_t in_spike = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TimeNs at = arrival_time(ArrivalShape::FlashCrowd, i, n, kWindow);
    EXPECT_LE(at, kWindow);
    if (at >= kWindow * 45 / 100 && at <= kWindow * 55 / 100) ++in_spike;
  }
  // 80% spike plus whatever background lands in the middle tenth.
  EXPECT_GE(in_spike, n * 8 / 10);
}

TEST(FleetScheduler, PopsInVirtualTimeOrder) {
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < 50; ++i) all.push_back(i);
  FleetScheduler sched(ArrivalShape::Ramp, kWindow, 50, all);

  TimeNs prev = 0;
  std::size_t popped = 0;
  while (!sched.empty()) {
    const FleetEvent ev = sched.pop();
    EXPECT_GE(ev.at, prev);
    prev = ev.at;
    ++popped;
  }
  EXPECT_EQ(popped, 50u);
}

TEST(FleetScheduler, RearmedPeriodsInterleaveAcrossDeployments) {
  // Two deployments arriving together, each re-armed with a different
  // period spacing: pops must interleave by virtual time, not run one
  // deployment to completion first.
  FleetScheduler sched(ArrivalShape::Steady, 0, 2, {0, 1});
  std::vector<std::size_t> order;
  while (!sched.empty()) {
    const FleetEvent ev = sched.pop();
    order.push_back(ev.deployment);
    if (ev.period < 3) {
      const TimeNs spacing = ev.deployment == 0 ? 100 : 150;
      sched.push(ev.at + spacing, ev.deployment, ev.period + 1);
    }
  }
  ASSERT_EQ(order.size(), 8u);
  // d0 at 0,100,200,300; d1 at 0,150,300,450 — strict interleaving (the
  // t=300 tie goes to d1, whose event was enqueued first).
  const std::vector<std::size_t> expect{0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_EQ(order, expect);
}

TEST(FleetScheduler, SliceKeepsGlobalShape) {
  // A pump owning every 4th deployment sees arrival times computed against
  // the full fleet, so the slice spans the whole window.
  std::vector<std::size_t> slice;
  for (std::size_t i = 0; i < 100; i += 4) slice.push_back(i);
  FleetScheduler sched(ArrivalShape::Steady, kWindow, 100, slice);
  TimeNs first = 0;
  TimeNs last = 0;
  bool any = false;
  while (!sched.empty()) {
    const FleetEvent ev = sched.pop();
    if (!any) {
      first = ev.at;
      any = true;
    }
    last = ev.at;
  }
  EXPECT_EQ(first, 0u);
  EXPECT_GE(last, kWindow * 9 / 10);
}

}  // namespace
}  // namespace bbmg::fleet
