// Closed-loop fleet driver against an in-process server: every session's
// served model must be byte-identical to the offline replay of its seeded
// trace (fleet/driver.hpp, fleet/verifier.hpp).
#include <gtest/gtest.h>

#include "fleet/driver.hpp"
#include "fleet/verifier.hpp"
#include "serve/server.hpp"

namespace bbmg::fleet {
namespace {

FleetConfig base_config(std::uint16_t port) {
  FleetConfig config;
  config.port = port;
  config.deployments = 24;
  config.periods = 3;
  config.pumps = 4;
  config.verify_fraction = 1.0;
  config.seed = 11;
  // Ceilings, not sleeps: generous enough that a sanitizer's ~10x
  // slowdown never turns a drain query into a retry-budget failure.
  config.retry.request_timeout_ms = 60000;
  config.retry.retry_budget_ms = 120000;
  return config;
}

TEST(FleetDriver, EverySessionByteIdenticalToOfflineReplay) {
  Server server;
  server.start();

  const FleetReport report = run_fleet(base_config(server.port()));
  EXPECT_TRUE(report.ok()) << (report.pump_errors.empty()
                                   ? (report.failure_details.empty()
                                          ? "unknown"
                                          : report.failure_details[0])
                                   : report.pump_errors[0]);
  EXPECT_EQ(report.sessions, 24u);
  EXPECT_EQ(report.periods_sent, 24u * 3u);
  EXPECT_EQ(report.verified, 24u);
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_GT(report.events_sent, 0u);
  EXPECT_GT(report.events_per_sec, 0.0);
}

TEST(FleetDriver, AllArrivalShapesDeliverTheFullFleet) {
  for (const ArrivalShape shape :
       {ArrivalShape::Steady, ArrivalShape::Ramp, ArrivalShape::FlashCrowd}) {
    Server server;
    server.start();
    FleetConfig config = base_config(server.port());
    config.deployments = 12;
    config.shape = shape;
    config.verify_fraction = 0.25;  // sampled verification path
    const FleetReport report = run_fleet(config);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.sessions, 12u);
    EXPECT_EQ(report.periods_sent, 12u * 3u);
    EXPECT_LE(report.verified, 12u);
    EXPECT_EQ(report.verify_failures, 0u);
  }
}

TEST(FleetDriver, MorePumpsThanDeploymentsIsClamped) {
  Server server;
  server.start();
  FleetConfig config = base_config(server.port());
  config.deployments = 2;
  config.pumps = 8;
  const FleetReport report = run_fleet(config);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.sessions, 2u);
}

TEST(FleetDriver, VerifierCatchesServedDivergence) {
  // Feed the verifier a snapshot from the WRONG deployment: it must flag
  // the mismatch (guards against a vacuously-green verification pass).
  Server server;
  server.start();
  ResilientClient client;
  client.connect("127.0.0.1", server.port());

  const DeploymentSpec right = make_deployment(5, 0, 3);
  const DeploymentSpec wrong = make_deployment(5, 1, 3);
  const Trace trace = scenario_trace(wrong.scenario);
  const std::uint32_t session = client.open_session(trace.task_names());
  for (const Period& p : trace.periods()) {
    client.send_period(session, p.to_events());
  }
  (void)client.flush(session);
  const WireSnapshot snap = client.query(session);

  EXPECT_TRUE(verify_session(wrong, snap).ok);
  const VerifyResult bad = verify_session(right, snap);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.detail.empty());
}

TEST(FleetDriver, UnreachableEndpointSurfacesAsPumpError) {
  FleetConfig config;
  config.port = 1;  // nothing listens on port 1
  config.deployments = 2;
  config.pumps = 1;
  config.periods = 1;
  config.retry.max_retries = 1;
  config.retry.base_backoff_ms = 1;
  config.retry.retry_budget_ms = 50;
  const FleetReport report = run_fleet(config);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.pump_errors.size(), 1u);
  EXPECT_EQ(report.sessions, 0u);
}

}  // namespace
}  // namespace bbmg::fleet
