// Baselines: the pessimistic strawman and the naive precedence miner.
#include <gtest/gtest.h>

#include "baseline/pessimistic.hpp"
#include "baseline/precedence_miner.hpp"
#include "core/exact_learner.hpp"
#include "core/matching.hpp"
#include "gen/scenarios.hpp"

namespace bbmg {
namespace {

TEST(Pessimistic, IsTopAndMatchesEverything) {
  const Trace trace = paper_example_trace();
  const DependencyMatrix d = pessimistic_baseline(4);
  EXPECT_EQ(d, DependencyMatrix::top(4));
  EXPECT_TRUE(matches_trace(d, trace));
  // ... and dominates whatever the learner finds (zero information).
  const LearnResult exact = learn_exact(trace);
  for (const auto& h : exact.hypotheses) {
    EXPECT_TRUE(h.leq(d));
  }
}

TEST(PrecedenceMiner, FindsOrderOnSimpleChain) {
  // a always before b, both always run: the miner claims a -> b.
  TraceBuilder builder({"a", "b"});
  for (int p = 0; p < 3; ++p) {
    const TimeNs base = static_cast<TimeNs>(p) * 1000;
    builder.begin_period();
    builder.add_event(Event::task_start(base, TaskId{0u}));
    builder.add_event(Event::task_end(base + 10, TaskId{0u}));
    builder.add_event(Event::msg_rise(base + 11, 1));
    builder.add_event(Event::msg_fall(base + 12, 1));
    builder.add_event(Event::task_start(base + 13, TaskId{1u}));
    builder.add_event(Event::task_end(base + 20, TaskId{1u}));
    builder.end_period();
  }
  const Trace t = builder.take();
  const DependencyMatrix d = mine_precedence(t);
  EXPECT_EQ(d.at(0, 1), DepValue::Forward);
  EXPECT_EQ(d.at(1, 0), DepValue::Backward);
}

TEST(PrecedenceMiner, ConditionalWhenCoExecutionFails) {
  // b runs only in period 1: the miner downgrades to ->? on (a,b) but
  // keeps <- on (b,a) (b never ran without a).
  TraceBuilder builder({"a", "b"});
  builder.begin_period();
  builder.add_event(Event::task_start(0, TaskId{0u}));
  builder.add_event(Event::task_end(10, TaskId{0u}));
  builder.add_event(Event::task_start(13, TaskId{1u}));
  builder.add_event(Event::task_end(20, TaskId{1u}));
  builder.end_period();
  builder.begin_period();
  builder.add_event(Event::task_start(1000, TaskId{0u}));
  builder.add_event(Event::task_end(1010, TaskId{0u}));
  builder.end_period();
  const Trace t = builder.take();
  const DependencyMatrix d = mine_precedence(t);
  EXPECT_EQ(d.at(0, 1), DepValue::MaybeForward);
  EXPECT_EQ(d.at(1, 0), DepValue::Backward);
}

TEST(PrecedenceMiner, InterleavedTasksStayParallel) {
  // Overlapping activity windows: no claim.
  TraceBuilder builder({"a", "b"});
  builder.begin_period();
  builder.add_event(Event::task_start(0, TaskId{0u}));
  builder.add_event(Event::task_start(5, TaskId{1u}));
  builder.add_event(Event::task_end(10, TaskId{0u}));
  builder.add_event(Event::task_end(20, TaskId{1u}));
  builder.end_period();
  const Trace t = builder.take();
  const DependencyMatrix d = mine_precedence(t);
  EXPECT_EQ(d.at(0, 1), DepValue::Parallel);
  EXPECT_EQ(d.at(1, 0), DepValue::Parallel);
}

TEST(PrecedenceMiner, OverclaimsOnTheWorkedExample) {
  // The miner's structural weakness, quantified: on the paper trace it
  // claims t2 -> t3-ish relations purely from bus-serialized timing that
  // the version-space learner correctly refuses without message evidence.
  // (t3 ends before t2 starts in period 3, the only co-execution.)
  const Trace trace = paper_example_trace();
  const DependencyMatrix mined = mine_precedence(trace);
  EXPECT_NE(mined.at(2, 1), DepValue::Parallel);
  const DependencyMatrix learned = learn_exact(trace).lub();
  EXPECT_EQ(learned.at(2, 1), DepValue::Parallel);
}

TEST(PrecedenceMiner, AgreesWithLearnerOnStrongPairs) {
  // Sanity: the miner's -> claims on the paper trace are a subset of the
  // learner's ->/->? claims for pairs that really carry messages.
  const Trace trace = paper_example_trace();
  const DependencyMatrix mined = mine_precedence(trace);
  EXPECT_EQ(mined.at(0, 3), DepValue::Forward);  // t1 before t4, always
  EXPECT_EQ(mined.at(0, 1), DepValue::MaybeForward);
}

}  // namespace
}  // namespace bbmg
