// Structured JSON-lines logging (obs/log.hpp): line rendering (envelope,
// escaping, trace correlation), per-site rate limiting with suppressed
// counts, and the level filter.  Logging is NOT gated on BBMG_OBS — these
// tests must pass in OFF builds too.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/log.hpp"

namespace bbmg::obs {
namespace {

TEST(LogRender, EnvelopeFieldsAndOrder) {
  const std::string line = render_log_line(
      LogLevel::Warn, "serve.session_failed", TraceContext{}, "disk died",
      {{"session", std::uint32_t{7}}, {"path", "/tmp/x"}}, 0);
  EXPECT_EQ(line.find("{\"ts_ms\":"), 0u);
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"serve.session_failed\""),
            std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"disk died\""), std::string::npos);
  // Numeric fields render unquoted, strings quoted.
  EXPECT_NE(line.find("\"session\":7"), std::string::npos);
  EXPECT_NE(line.find("\"path\":\"/tmp/x\""), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  // No trace context: no trace/span keys.
  EXPECT_EQ(line.find("\"trace\""), std::string::npos);
}

TEST(LogRender, TraceContextRendersAsHex) {
  const std::string line =
      render_log_line(LogLevel::Info, "e", TraceContext{0xabcdef12u, 0x34u},
                      "m", {}, 0);
  EXPECT_NE(line.find("\"trace\":\"00000000abcdef12\""), std::string::npos);
  EXPECT_NE(line.find("\"span\":\"0000000000000034\""), std::string::npos);
}

TEST(LogRender, EscapesQuotesBackslashesAndControls) {
  const std::string line = render_log_line(
      LogLevel::Error, "e", TraceContext{}, "a\"b\\c\nd\te", {}, 0);
  // Quotes/backslashes gain a backslash; control chars become \u00xx.
  EXPECT_NE(line.find("a\\\"b\\\\c\\u000ad\\u0009e"), std::string::npos);
}

TEST(LogRender, SuppressedCountOnFirstLineAfterBurst) {
  const std::string line =
      render_log_line(LogLevel::Warn, "e", TraceContext{}, "m", {}, 41);
  EXPECT_NE(line.find("\"suppressed\":41"), std::string::npos);
}

TEST(LogSite, AdmitsUpToTheCapThenSuppresses) {
  LogSite site(LogLevel::Info, "test.site");
  const std::uint64_t t0 = 1'000'000'000ull;  // any nonzero origin
  std::uint64_t suppressed = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(site.admit(t0 + i, 3, suppressed)) << i;
    EXPECT_EQ(suppressed, 0u);
  }
  EXPECT_FALSE(site.admit(t0 + 10, 3, suppressed));
  EXPECT_FALSE(site.admit(t0 + 11, 3, suppressed));
  // A new one-second window admits again and reports the burst size.
  EXPECT_TRUE(site.admit(t0 + 1'000'000'001ull, 3, suppressed));
  EXPECT_EQ(suppressed, 2u);
}

TEST(LogSite, ZeroCapMeansUnlimited) {
  LogSite site(LogLevel::Info, "test.unlimited");
  std::uint64_t suppressed = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(site.admit(1'000ull + i, 0, suppressed));
  }
}

TEST(Logger, LevelFilterDropsBelowMinLevel) {
  Logger& logger = Logger::instance();
  const LogLevel old_level = logger.min_level();
  logger.set_sink(nullptr);  // keep test output clean
  logger.set_min_level(LogLevel::Warn);
  const std::uint64_t before = logger.lines_emitted();
  BBMG_LOG_INFO("log_test.filtered", "should be dropped");
  EXPECT_EQ(logger.lines_emitted(), before);
  BBMG_LOG_ERROR("log_test.passed", "should be emitted");
  EXPECT_EQ(logger.lines_emitted(), before + 1);
  logger.set_min_level(old_level);
  logger.set_sink(stderr);
}

TEST(Logger, PerSiteRateLimitSuppressesFloods) {
  Logger& logger = Logger::instance();
  logger.set_sink(nullptr);
  logger.set_rate_limit(4);
  const std::uint64_t emitted_before = logger.lines_emitted();
  const std::uint64_t suppressed_before = logger.lines_suppressed();
  for (int i = 0; i < 100; ++i) {
    BBMG_LOG_WARN("log_test.flood", "same site every time");
  }
  const std::uint64_t emitted = logger.lines_emitted() - emitted_before;
  const std::uint64_t suppressed =
      logger.lines_suppressed() - suppressed_before;
  // The loop runs in well under a second: at most one window's worth (a
  // second window can open mid-loop on a slow machine) gets through.
  EXPECT_GE(emitted, 4u);
  EXPECT_LE(emitted, 8u);
  EXPECT_EQ(emitted + suppressed, 100u);
  logger.set_rate_limit(32);
  logger.set_sink(stderr);
}

TEST(Logger, WritesOneLinePerCallToTheSink) {
  Logger& logger = Logger::instance();
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  logger.set_sink(sink);
  BBMG_LOG_ERROR("log_test.sink", "hello sink", {{"n", std::uint64_t{3}}});
  logger.set_sink(stderr);
  std::fflush(sink);
  std::rewind(sink);
  char buf[512] = {0};
  ASSERT_NE(std::fgets(buf, sizeof(buf), sink), nullptr);
  const std::string line(buf);
  EXPECT_NE(line.find("\"event\":\"log_test.sink\""), std::string::npos);
  EXPECT_NE(line.find("\"n\":3"), std::string::npos);
  std::fclose(sink);
}

}  // namespace
}  // namespace bbmg::obs
