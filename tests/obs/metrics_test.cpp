// Unit tests for the metrics registry (obs/metrics.hpp): counter / gauge /
// histogram semantics, bucket boundary placement, registration idempotence,
// and the concurrency contract — N threads of relaxed increments sum
// exactly once the writers have joined.
//
// Tests that assert exact nonzero values are gated on obs::kEnabled: with
// BBMG_OBS=OFF every update is a no-op by design and the same assertions
// verify that values stay zero.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace bbmg::obs {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("bbmg_test_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), kEnabled ? 42u : 0u);
}

TEST(Metrics, GaugeSetAddAndRatchet) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("bbmg_test_gauge");
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), kEnabled ? 12 : 0);
  g.set_max(7);  // below current: no effect
  EXPECT_EQ(g.value(), kEnabled ? 12 : 0);
  g.set_max(99);
  EXPECT_EQ(g.value(), kEnabled ? 99 : 0);
}

TEST(Metrics, GaugeGoesNegative) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("bbmg_test_depth");
  g.sub(3);
  EXPECT_EQ(g.value(), kEnabled ? -3 : 0);
}

TEST(Metrics, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("bbmg_same_total");
  Counter& b = reg.counter("bbmg_same_total");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("bbmg_same_us", {1, 2, 3});
  Histogram& h2 = reg.histogram("bbmg_same_us", {9, 9, 9});  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(reg.num_metrics(), 2u);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("bbmg_test_us", {10, 100, 1000});
  // A value equal to a bound lands in that bound's bucket; one past it
  // lands in the next; beyond every bound lands in +Inf.
  EXPECT_EQ(h.bucket_index(0), 0u);
  EXPECT_EQ(h.bucket_index(10), 0u);
  EXPECT_EQ(h.bucket_index(11), 1u);
  EXPECT_EQ(h.bucket_index(100), 1u);
  EXPECT_EQ(h.bucket_index(1000), 2u);
  EXPECT_EQ(h.bucket_index(1001), 3u);
}

TEST(Metrics, HistogramObserveCountsSumAndBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("bbmg_test_us", {10, 100});
  h.observe(5);
  h.observe(10);
  h.observe(50);
  h.observe(5000);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);  // two bounds + the +Inf overflow bucket
  if (kEnabled) {
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 5065u);
  } else {
    EXPECT_EQ(counts, (std::vector<std::uint64_t>{0, 0, 0}));
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
  }
}

TEST(Metrics, HistogramBoundsAreSortedAndDeduped) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("bbmg_test_us", {100, 10, 100, 1});
  EXPECT_EQ(h.upper_bounds(), (std::vector<std::uint64_t>{1, 10, 100}));
}

TEST(Metrics, DefaultLatencyBucketsAreAscending) {
  const std::vector<std::uint64_t> b = default_latency_buckets_us();
  ASSERT_GE(b.size(), 4u);
  EXPECT_EQ(b.front(), 1u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(Metrics, LabeledNameRendersPrometheusStyle) {
  EXPECT_EQ(labeled_name("bbmg_x_total", "kind", "orphan"),
            "bbmg_x_total{kind=\"orphan\"}");
}

TEST(Metrics, SnapshotFindsMetricsByName) {
  MetricsRegistry reg;
  reg.counter("bbmg_a_total").inc(3);
  reg.gauge("bbmg_b").set(-7);
  reg.histogram("bbmg_c_us", {10}).observe(4);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("bbmg_a_total"), nullptr);
  ASSERT_NE(snap.find_gauge("bbmg_b"), nullptr);
  ASSERT_NE(snap.find_histogram("bbmg_c_us"), nullptr);
  EXPECT_EQ(snap.find_counter("bbmg_missing"), nullptr);
  EXPECT_EQ(snap.counter_value("bbmg_a_total"), kEnabled ? 3u : 0u);
  EXPECT_EQ(snap.counter_value("bbmg_missing"), 0u);
  EXPECT_EQ(snap.find_gauge("bbmg_b")->value, kEnabled ? -7 : 0);
}

TEST(Metrics, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("bbmg_z_total");
  reg.counter("bbmg_a_total");
  reg.counter("bbmg_m_total");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "bbmg_a_total");
  EXPECT_EQ(snap.counters[1].name, "bbmg_m_total");
  EXPECT_EQ(snap.counters[2].name, "bbmg_z_total");
}

// The concurrency contract: relaxed increments from N threads are never
// lost; after join the totals are exact.
TEST(Metrics, ConcurrentIncrementsSumExactly) {
  MetricsRegistry reg;
  Counter& c = reg.counter("bbmg_mt_total");
  Histogram& h = reg.histogram("bbmg_mt_us", {8, 64});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>(i % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::uint64_t expected =
      kEnabled ? static_cast<std::uint64_t>(kThreads) * kPerThread : 0u;
  EXPECT_EQ(c.value(), expected);
  EXPECT_EQ(h.count(), expected);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t n : h.bucket_counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, expected);
}

TEST(Metrics, AlwaysOnPrimitivesIgnoreTheGate) {
  // AtomicCounter/AtomicMax are functional accounting, not
  // instrumentation: they count in every build.
  AtomicCounter c;
  c.add(2);
  c.add(3);
  c.sub(1);
  EXPECT_EQ(c.value(), 4u);
  AtomicMax m;
  m.update(10);
  m.update(7);
  EXPECT_EQ(m.value(), 10u);
}

}  // namespace
}  // namespace bbmg::obs
