// Tests for the RAII stage timers and the span ring (obs/span.hpp) plus
// the Chrome trace export (obs/trace_export.hpp).  Span behaviour is gated
// on obs::kEnabled: with BBMG_OBS=OFF a Span is inert, the clock reads
// zero, and the ring stays empty.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"

namespace bbmg::obs {
namespace {

TEST(Span, RecordsIntoHistogram) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("bbmg_span_us", default_latency_buckets_us());
  {
    Span span(&h, "test.stage", /*ring=*/nullptr);
  }
  EXPECT_EQ(h.count(), kEnabled ? 1u : 0u);
}

TEST(Span, FinishIsIdempotent) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("bbmg_span_us", default_latency_buckets_us());
  Span span(&h, "test.stage", /*ring=*/nullptr);
  span.finish();
  span.finish();  // second call must not double-record
  EXPECT_EQ(h.count(), kEnabled ? 1u : 0u);
}

TEST(Span, RingOnlyRecordsWhenEnabled) {
  SpanRing ring(8);
  { Span span(nullptr, "off", &ring); }
  EXPECT_TRUE(ring.records().empty());
  ring.set_enabled(true);
  { Span span(nullptr, "on", &ring); }
  if (kEnabled) {
    const auto records = ring.records();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_STREQ(records[0].name, "on");
  } else {
    EXPECT_TRUE(ring.records().empty());
  }
}

TEST(SpanRing, OverwritesOldestWhenFull) {
  SpanRing ring(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.record(SpanRecord{"s", i, 1, 0});
  }
  const auto records = ring.records();
  ASSERT_EQ(records.size(), 3u);
  // Oldest-first: 0 and 1 were evicted.
  EXPECT_EQ(records[0].start_ns, 2u);
  EXPECT_EQ(records[1].start_ns, 3u);
  EXPECT_EQ(records[2].start_ns, 4u);
  EXPECT_EQ(ring.total_recorded(), 5u);
}

TEST(SpanRing, DrainEmptiesTheRing) {
  SpanRing ring(4);
  ring.record(SpanRecord{"a", 1, 2, 0});
  ring.record(SpanRecord{"b", 3, 4, 1});
  const auto drained = ring.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_TRUE(ring.records().empty());
  EXPECT_EQ(ring.total_recorded(), 2u);  // drain does not reset the total
}

TEST(ChromeTrace, RendersCompleteEvents) {
  const std::vector<SpanRecord> spans = {
      SpanRecord{"learner.period", 2000, 1500, 0},
      SpanRecord{"serve.query", 5000, 250, 3},
  };
  const std::string json = to_chrome_trace_json(spans);
  EXPECT_NE(json.find("\"name\": \"learner.period\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  // ns -> us: start 2000 ns == ts 2 us, duration 1500 ns == 1.5 us.
  EXPECT_NE(json.find("\"ts\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 1.5"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(ChromeTrace, ExportDrainsRingToFile) {
  SpanRing ring(8);
  ring.record(SpanRecord{"x", 10, 20, 0});
  const std::string path = ::testing::TempDir() + "/bbmg_spans.json";
  EXPECT_EQ(export_chrome_trace(ring, path), 1u);
  EXPECT_TRUE(ring.records().empty());
  std::ifstream ifs(path);
  ASSERT_TRUE(ifs.good());
  std::stringstream buf;
  buf << ifs.rdbuf();
  EXPECT_NE(buf.str().find("\"name\": \"x\""), std::string::npos);
}

TEST(Span, ThreadIndexIsDenseAndStable) {
  const std::uint32_t mine = current_thread_index();
  EXPECT_EQ(current_thread_index(), mine);
}

}  // namespace
}  // namespace bbmg::obs
