// Causal trace context (obs/trace_context.hpp): id minting, the
// thread-local TraceScope, and record_stage's parent/child wiring.  All
// behaviour is gated on obs::kEnabled like the rest of the span layer.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "obs/span.hpp"
#include "obs/trace_context.hpp"

namespace bbmg::obs {
namespace {

TEST(TraceContext, MintedIdsAreNonzeroAndDistinct) {
  if (!kEnabled) {
    EXPECT_EQ(mint_id(), 0u);
    return;
  }
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = mint_id();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(TraceContext, MintedIdsAreDistinctAcrossThreads) {
  if (!kEnabled) return;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<std::uint64_t>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      per_thread[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) per_thread[t].push_back(mint_id());
    });
  }
  for (std::thread& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (const auto& v : per_thread) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(TraceContext, ScopeSetsAndRestoresNested) {
  EXPECT_FALSE(current_trace().active());
  {
    TraceScope outer({11, 22});
    if (kEnabled) {
      EXPECT_EQ(current_trace().trace_id, 11u);
      EXPECT_EQ(current_trace().span_id, 22u);
    } else {
      EXPECT_FALSE(current_trace().active());
    }
    {
      TraceScope inner({33, 44});
      if (kEnabled) {
        EXPECT_EQ(current_trace().trace_id, 33u);
      }
    }
    if (kEnabled) {
      EXPECT_EQ(current_trace().trace_id, 11u);
    }
  }
  EXPECT_FALSE(current_trace().active());
}

TEST(RecordStage, ChildCarriesParentAndTraceId) {
  if (!kEnabled) return;
  SpanRing ring(16);
  ring.set_enabled(true);
  const TraceContext ctx{mint_id(), mint_id()};
  const std::uint64_t child =
      record_stage(ring, "stage.a", 100, 250, ctx, FlowDir::In);
  EXPECT_NE(child, 0u);
  const auto records = ring.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].name, "stage.a");
  EXPECT_EQ(records[0].trace_id, ctx.trace_id);
  EXPECT_EQ(records[0].span_id, child);
  EXPECT_EQ(records[0].parent_id, ctx.span_id);
  EXPECT_EQ(records[0].flow, static_cast<std::uint8_t>(FlowDir::In));
  EXPECT_EQ(records[0].start_ns, 100u);
  EXPECT_EQ(records[0].duration_ns, 150u);
}

TEST(RecordStage, ChainsChildrenThroughReturnedIds) {
  if (!kEnabled) return;
  SpanRing ring(16);
  ring.set_enabled(true);
  const TraceContext root{mint_id(), mint_id()};
  const std::uint64_t a = record_stage(ring, "a", 0, 1, root);
  const std::uint64_t b =
      record_stage(ring, "b", 1, 2, TraceContext{root.trace_id, a});
  const auto records = ring.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].parent_id, a);
  EXPECT_EQ(records[1].span_id, b);
  EXPECT_EQ(records[1].trace_id, root.trace_id);
}

TEST(RecordStage, InactiveContextOrDisabledRingIsANoOp) {
  SpanRing ring(16);
  ring.set_enabled(true);
  EXPECT_EQ(record_stage(ring, "x", 0, 1, TraceContext{}), 0u);
  EXPECT_TRUE(ring.records().empty());
  ring.set_enabled(false);
  EXPECT_EQ(record_stage(ring, "x", 0, 1, TraceContext{1, 2}), 0u);
  EXPECT_TRUE(ring.records().empty());
}

TEST(RecordStage, CurrentStageUsesTheThreadLocalContext) {
  if (!kEnabled) return;
  SpanRing& ring = SpanRing::instance();
  const bool was_enabled = ring.enabled();
  ring.set_enabled(true);
  ring.clear();
  // No current context: nothing recorded.
  EXPECT_EQ(record_current_stage("deep", 5, 9), 0u);
  EXPECT_TRUE(ring.records().empty());
  {
    TraceScope scope({77, 88});
    const std::uint64_t id = record_current_stage("deep", 5, 9);
    EXPECT_NE(id, 0u);
    const auto records = ring.records();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].trace_id, 77u);
    EXPECT_EQ(records[0].parent_id, 88u);
  }
  ring.clear();
  ring.set_enabled(was_enabled);
}

}  // namespace
}  // namespace bbmg::obs
