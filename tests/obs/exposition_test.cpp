// Golden tests for the snapshot serializers (obs/exposition.hpp).  The
// snapshots are constructed literally rather than through a registry, so
// the goldens hold in BBMG_OBS=OFF builds too — serialization is plain
// data transformation, independent of the instrumentation gate.
#include <gtest/gtest.h>

#include "obs/exposition.hpp"

namespace bbmg::obs {
namespace {

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snap;
  snap.counters.push_back({"bbmg_learner_periods_total", 12});
  snap.counters.push_back({"bbmg_robust_defects_total{kind=\"orphan\"}", 3});
  snap.gauges.push_back({"bbmg_serve_queue_depth{worker=\"0\"}", -2});
  HistogramSample h;
  h.name = "bbmg_learner_period_latency_us";
  h.upper_bounds = {10, 100};
  h.counts = {4, 1, 2};  // +Inf bucket last
  h.sum = 777;
  h.count = 7;
  snap.histograms.push_back(h);
  return snap;
}

TEST(Exposition, PrometheusGolden) {
  const std::string expected =
      "bbmg_learner_periods_total 12\n"
      "bbmg_robust_defects_total{kind=\"orphan\"} 3\n"
      "bbmg_serve_queue_depth{worker=\"0\"} -2\n"
      "bbmg_learner_period_latency_us_bucket{le=\"10\"} 4\n"
      "bbmg_learner_period_latency_us_bucket{le=\"100\"} 5\n"
      "bbmg_learner_period_latency_us_bucket{le=\"+Inf\"} 7\n"
      "bbmg_learner_period_latency_us_sum 777\n"
      "bbmg_learner_period_latency_us_count 7\n";
  EXPECT_EQ(to_prometheus(sample_snapshot()), expected);
}

TEST(Exposition, PrometheusMergesBakedLabelsWithLe) {
  MetricsSnapshot snap;
  HistogramSample h;
  h.name = "bbmg_x_us{stage=\"learn\"}";
  h.upper_bounds = {5};
  h.counts = {1, 0};
  h.sum = 2;
  h.count = 1;
  snap.histograms.push_back(h);
  const std::string text = to_prometheus(snap);
  EXPECT_NE(text.find("bbmg_x_us_bucket{stage=\"learn\",le=\"5\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("bbmg_x_us_sum{stage=\"learn\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("bbmg_x_us_count{stage=\"learn\"} 1"), std::string::npos)
      << text;
}

TEST(Exposition, JsonGolden) {
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"bbmg_learner_periods_total\": 12,\n"
      "    \"bbmg_robust_defects_total{kind=\\\"orphan\\\"}\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"bbmg_serve_queue_depth{worker=\\\"0\\\"}\": -2\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"bbmg_learner_period_latency_us\": "
      "{\"le\": [10, 100], \"counts\": [4, 1, 2], "
      "\"sum\": 777, \"count\": 7}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(to_json(sample_snapshot()), expected);
}

TEST(Exposition, EmptySnapshotSerializes) {
  const MetricsSnapshot empty;
  EXPECT_EQ(to_prometheus(empty), "");
  EXPECT_EQ(to_json(empty),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
}

}  // namespace
}  // namespace bbmg::obs
