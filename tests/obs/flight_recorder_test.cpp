// Crash flight recorder (obs/flight_recorder.hpp): the bounded event
// ring, dump rendering, and the real thing — a forked child takes a
// SIGSEGV and the parent reads back a postmortem dump written by the
// async-signal-safe handler.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace bbmg::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream ifs(path);
  std::stringstream buf;
  buf << ifs.rdbuf();
  return buf.str();
}

TEST(FlightRecorder, NotedLinesAppearInRenderOldestFirst) {
  FlightRecorder& fr = FlightRecorder::instance();
  fr.note("flight-test-alpha");
  fr.note("flight-test-beta");
  const std::string dump = fr.render();
  const std::size_t a = dump.find("flight-test-alpha");
  const std::size_t b = dump.find("flight-test-beta");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_NE(dump.find("=== bbmg flight recorder dump ==="),
            std::string::npos);
  EXPECT_NE(dump.find("=== end dump ==="), std::string::npos);
}

TEST(FlightRecorder, StructuredLogLinesFeedTheRing) {
  Logger& logger = Logger::instance();
  logger.set_sink(nullptr);
  BBMG_LOG_ERROR("flight_test.event", "ring feed check");
  logger.set_sink(stderr);
  const std::string dump = FlightRecorder::instance().render();
  EXPECT_NE(dump.find("\"event\":\"flight_test.event\""), std::string::npos);
}

TEST(FlightRecorder, CachedMetricsSnapshotRendersInDump) {
  MetricsRegistry::instance()
      .counter("bbmg_flight_test_total")
      .inc(5);
  FlightRecorder& fr = FlightRecorder::instance();
  fr.cache_metrics();
  const std::string dump = fr.render();
  if (kEnabled) {
    EXPECT_NE(dump.find("bbmg_flight_test_total 5"), std::string::npos);
  }
}

TEST(FlightRecorder, LongLinesAreTruncatedNotDropped) {
  FlightRecorder& fr = FlightRecorder::instance();
  const std::string line = "flight-test-long-" + std::string(1000, 'x');
  fr.note(line);
  const std::string dump = fr.render();
  EXPECT_NE(dump.find("flight-test-long-"), std::string::npos);
  // The stored entry is bounded; the full kilobyte never round-trips.
  EXPECT_EQ(dump.find(std::string(900, 'x')), std::string::npos);
}

TEST(FlightRecorder, DumpToWritesAReadableFile) {
  const std::string path = ::testing::TempDir() + "/bbmg_flight_dump.txt";
  FlightRecorder& fr = FlightRecorder::instance();
  fr.note("flight-test-dump-to");
  ASSERT_TRUE(fr.dump_to(path));
  const std::string dump = slurp(path);
  EXPECT_NE(dump.find("signal: 0"), std::string::npos);
  EXPECT_NE(dump.find("flight-test-dump-to"), std::string::npos);
}

// The acceptance test: a child process arms the handler, logs a few
// structured lines, caches metrics, and dies of SIGSEGV; the parent finds
// a readable crash-11.log in the postmortem directory.
TEST(FlightRecorder, SigsegvInChildProducesPostmortemDump) {
  const std::string dir = ::testing::TempDir() + "/bbmg_postmortem_child";
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: quiet stderr noise, arm, leave a trail, crash.
    Logger::instance().set_sink(nullptr);
    FlightRecorder::instance().arm_signal_handler(dir);
    BBMG_LOG_ERROR("flight_test.child", "about to crash");
    FlightRecorder::instance().cache_metrics();
    std::raise(SIGSEGV);
    _exit(0);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::string dump = slurp(dir + "/crash-11.log");
  ASSERT_FALSE(dump.empty()) << "no postmortem dump written";
  EXPECT_NE(dump.find("=== bbmg flight recorder dump ==="),
            std::string::npos);
  EXPECT_NE(dump.find("signal: 11"), std::string::npos);
  EXPECT_NE(dump.find("\"event\":\"flight_test.child\""), std::string::npos);
  EXPECT_NE(dump.find("=== end dump ==="), std::string::npos);
}

}  // namespace
}  // namespace bbmg::obs
