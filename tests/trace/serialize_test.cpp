// Trace text format: round-trip property over generated traces, plus
// parser error handling.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gen/random_model.hpp"
#include "gen/scenarios.hpp"
#include "sim/simulator.hpp"
#include "trace/serialize.hpp"

namespace bbmg {
namespace {

bool traces_equal(const Trace& a, const Trace& b) {
  if (a.task_names() != b.task_names()) return false;
  if (a.num_periods() != b.num_periods()) return false;
  for (std::size_t p = 0; p < a.num_periods(); ++p) {
    const Period& pa = a.periods()[p];
    const Period& pb = b.periods()[p];
    if (pa.executions().size() != pb.executions().size()) return false;
    if (pa.messages().size() != pb.messages().size()) return false;
    for (std::size_t i = 0; i < pa.executions().size(); ++i) {
      const auto& x = pa.executions()[i];
      const auto& y = pb.executions()[i];
      if (x.task != y.task || x.start != y.start || x.end != y.end)
        return false;
    }
    for (std::size_t i = 0; i < pa.messages().size(); ++i) {
      const auto& x = pa.messages()[i];
      const auto& y = pb.messages()[i];
      if (x.rise != y.rise || x.fall != y.fall || x.can_id != y.can_id)
        return false;
    }
  }
  return true;
}

TEST(Serialize, RoundTripPaperExample) {
  const Trace t = paper_example_trace();
  const Trace back = trace_from_string(trace_to_string(t));
  EXPECT_TRUE(traces_equal(t, back));
}

class SerializeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeRoundTrip, RandomSimulatedTraces) {
  RandomModelParams params;
  params.num_tasks = 8;
  params.num_layers = 3;
  params.seed = GetParam();
  const SystemModel model = random_model(params);
  SimConfig cfg;
  cfg.seed = GetParam() * 31 + 1;
  const Trace t = simulate_trace(model, 6, cfg);
  const Trace back = trace_from_string(trace_to_string(t));
  EXPECT_TRUE(traces_equal(t, back));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const Trace t = paper_example_trace();
  std::string text = trace_to_string(t);
  text = "# a comment\n\n" + text + "\n# trailing\n";
  EXPECT_TRUE(traces_equal(t, trace_from_string(text)));
}

TEST(Serialize, RejectsMissingHeader) {
  EXPECT_THROW((void)trace_from_string("tasks a b\nperiod\nend-period\n"),
               Error);
}

TEST(Serialize, HeaderErrorsCarryLineNumbers) {
  // Header diagnostics are line-addressed exactly like body diagnostics.
  try {
    (void)trace_from_string("tasks a b\nperiod\nend-period\n");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }
  try {
    (void)trace_from_string("trace-version 1\nperiod\nend-period\n");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  // An empty stream still points somewhere sensible: line 1.
  try {
    (void)trace_from_string("");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }
}

TEST(Serialize, RejectsUnknownTaskName) {
  const std::string text =
      "trace-version 1\ntasks a\nperiod\nstart zz 0\nend zz 5\nend-period\n";
  EXPECT_THROW((void)trace_from_string(text), Error);
}

TEST(Serialize, RejectsUnknownKeyword) {
  const std::string text =
      "trace-version 1\ntasks a\nperiod\nboom a 0\nend-period\n";
  EXPECT_THROW((void)trace_from_string(text), Error);
}

TEST(Serialize, RejectsTruncatedPeriod) {
  const std::string text =
      "trace-version 1\ntasks a\nperiod\nstart a 0\nend a 5\n";
  EXPECT_THROW((void)trace_from_string(text), Error);
}

TEST(Serialize, RejectsBadTime) {
  const std::string text =
      "trace-version 1\ntasks a\nperiod\nstart a x9\nend-period\n";
  EXPECT_THROW((void)trace_from_string(text), Error);
}

TEST(Serialize, FileRoundTrip) {
  const Trace t = paper_example_trace();
  const std::string path = ::testing::TempDir() + "/bbmg_trace_test.txt";
  save_trace_file(path, t);
  EXPECT_TRUE(traces_equal(t, load_trace_file(path)));
  EXPECT_THROW((void)load_trace_file("/nonexistent/dir/x.txt"), Error);
}

}  // namespace
}  // namespace bbmg
