// Period segmentation of flat event streams.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/scenarios.hpp"
#include "sim/simulator.hpp"
#include "trace/segmentation.hpp"
#include "trace/serialize.hpp"

namespace bbmg {
namespace {

TEST(Segmentation, FlattenThenSegmentByPeriodRecoversSimTrace) {
  // The simulator aligns periods on period_length boundaries, so binning a
  // flattened stream by the same length must reproduce the trace.
  SimConfig cfg;
  cfg.seed = 7;
  const Trace trace = simulate_trace(gm_case_study_model(), 8, cfg);
  const Trace back = segment_by_period(flatten(trace), trace.task_names(),
                                       cfg.period_length);
  EXPECT_EQ(trace_to_string(back), trace_to_string(trace));
}

TEST(Segmentation, GapSegmentationRecoversPaperTrace) {
  // The Fig. 2 trace has intra-period gaps of a few ticks and inter-period
  // silences of ~60 ticks.
  const Trace trace = paper_example_trace();
  const Trace back = segment_by_gap(flatten(trace), trace.task_names(), 50);
  EXPECT_EQ(back.num_periods(), 3u);
  EXPECT_EQ(trace_to_string(back), trace_to_string(trace));
}

TEST(Segmentation, GapThresholdTooSmallCutsInsidePeriods) {
  // With an aggressive threshold the cut lands inside a period and the
  // builder rejects the dangling activity.
  const Trace trace = paper_example_trace();
  EXPECT_THROW(
      (void)segment_by_gap(flatten(trace), trace.task_names(), 2), Error);
}

TEST(Segmentation, GapThresholdTooLargeMergesPeriods) {
  const Trace trace = paper_example_trace();
  const auto events = flatten(trace);
  // A threshold above the inter-period silence merges everything into one
  // period, where t1 would run twice: rejected by the builder.
  EXPECT_THROW(
      (void)segment_by_gap(events, trace.task_names(), 10'000'000), Error);
}

TEST(Segmentation, RejectsUnorderedStream) {
  std::vector<Event> events{Event::task_start(100, TaskId{0u}),
                            Event::task_end(50, TaskId{0u})};
  EXPECT_THROW((void)segment_by_period(events, {"a"}, 1000), Error);
  EXPECT_THROW((void)segment_by_gap(events, {"a"}, 10), Error);
}

TEST(Segmentation, RejectsBadParameters) {
  EXPECT_THROW((void)segment_by_period({}, {"a"}, 0), Error);
  EXPECT_THROW((void)segment_by_gap({}, {"a"}, 0), Error);
}

TEST(Segmentation, EmptyStreamYieldsEmptyTrace) {
  const Trace t = segment_by_period({}, {"a"}, 1000);
  EXPECT_EQ(t.num_periods(), 0u);
}

TEST(Segmentation, LearningFromSegmentedStreamMatchesStructured) {
  // End to end: flatten, re-segment, learn — identical model.
  SimConfig cfg;
  cfg.seed = 11;
  const Trace trace = simulate_trace(gm_case_study_model(), 10, cfg);
  const Trace back = segment_by_period(flatten(trace), trace.task_names(),
                                       cfg.period_length);
  // (learning itself exercised elsewhere; here structural identity is
  // enough, checked above — this guards the period count contract.)
  EXPECT_EQ(back.num_periods(), trace.num_periods());
  EXPECT_EQ(back.total_messages(), trace.total_messages());
}

}  // namespace
}  // namespace bbmg
