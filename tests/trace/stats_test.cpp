// Trace statistics.
#include <gtest/gtest.h>

#include "gen/scenarios.hpp"
#include "trace/stats.hpp"

namespace bbmg {
namespace {

TEST(TraceStats, PaperTraceNumbers) {
  const Trace trace = paper_example_trace();
  const TraceStats stats = compute_stats(trace);
  ASSERT_EQ(stats.per_task.size(), 4u);
  // t1 and t4 run in all 3 periods; t2 and t3 in 2 each.
  EXPECT_EQ(stats.per_task[0].executions, 3u);
  EXPECT_EQ(stats.per_task[1].executions, 2u);
  EXPECT_EQ(stats.per_task[2].executions, 2u);
  EXPECT_EQ(stats.per_task[3].executions, 3u);
  EXPECT_DOUBLE_EQ(stats.per_task[0].activation_rate, 1.0);
  EXPECT_NEAR(stats.per_task[1].activation_rate, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.total_messages, 8u);
  EXPECT_NEAR(stats.mean_messages_per_period, 8.0 / 3.0, 1e-12);
  ASSERT_EQ(stats.per_period.size(), 3u);
  EXPECT_EQ(stats.per_period[0].messages, 2u);
  EXPECT_EQ(stats.per_period[2].messages, 4u);
}

TEST(TraceStats, ExecTimesTracked) {
  Trace t({"a"});
  t.add_period(Period({{TaskId{0u}, 0, 10}}, {}));
  t.add_period(Period({{TaskId{0u}, 100, 130}}, {}));
  const TraceStats stats = compute_stats(t);
  EXPECT_EQ(stats.per_task[0].min_exec_time, 10u);
  EXPECT_EQ(stats.per_task[0].max_exec_time, 30u);
  EXPECT_EQ(stats.per_task[0].mean_exec_time(), 20u);
  EXPECT_EQ(stats.per_task[0].total_exec_time, 40u);
}

TEST(TraceStats, MakespanAndBusUtilization) {
  Trace t({"a", "b"});
  // Activity spans 0..100; the bus is busy 20 of those.
  t.add_period(Period({{TaskId{0u}, 0, 40}, {TaskId{1u}, 70, 100}},
                      {{45, 65, 1}}));
  const TraceStats stats = compute_stats(t);
  ASSERT_EQ(stats.per_period.size(), 1u);
  EXPECT_EQ(stats.per_period[0].makespan, 100u);
  EXPECT_EQ(stats.per_period[0].bus_busy_time, 20u);
  EXPECT_EQ(stats.max_makespan, 100u);
  EXPECT_NEAR(stats.mean_bus_utilization, 0.2, 1e-12);
}

TEST(TraceStats, EmptyTrace) {
  const TraceStats stats = compute_stats(Trace({"a"}));
  EXPECT_EQ(stats.total_messages, 0u);
  EXPECT_EQ(stats.per_period.size(), 0u);
  EXPECT_DOUBLE_EQ(stats.per_task[0].activation_rate, 0.0);
}

TEST(TraceStats, RenderingMentionsTasksAndTotals) {
  const Trace trace = paper_example_trace();
  const std::string text =
      stats_to_string(compute_stats(trace), trace.task_names());
  EXPECT_NE(text.find("t1"), std::string::npos);
  EXPECT_NE(text.find("messages: 8"), std::string::npos);
  EXPECT_NE(text.find("bus utilization"), std::string::npos);
}

}  // namespace
}  // namespace bbmg
