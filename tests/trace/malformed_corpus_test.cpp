// A corpus of malformed trace files, each exercised through both loaders:
// the strict reader must throw with a `line:col`-addressed diagnostic, the
// lenient loader must survive, report (same position convention), and keep
// whatever is salvageable.
#include <gtest/gtest.h>

#include <fstream>

#include "common/error.hpp"
#include "robust/lenient_loader.hpp"
#include "trace/serialize.hpp"

namespace bbmg {
namespace {

// EOF inside a period; the events themselves are complete.
constexpr const char* kTruncatedFile =
    "trace-version 1\n"  // 1
    "tasks a b\n"        // 2
    "period\n"           // 3
    "start a 0\n"        // 4
    "end a 1000\n";      // 5

// A second 'period' before the first one closed.
constexpr const char* kNestedPeriod =
    "trace-version 1\n"  // 1
    "tasks a b\n"        // 2
    "period\n"           // 3
    "start a 0\n"        // 4
    "end a 1000\n"       // 5
    "period\n"           // 6
    "start b 1100\n"     // 7
    "end b 2000\n"       // 8
    "end-period\n";      // 9

// A falling edge whose rise was never logged.
constexpr const char* kOrphanFallingEdge =
    "trace-version 1\n"  // 1
    "tasks a\n"          // 2
    "period\n"           // 3
    "start a 0\n"        // 4
    "end a 1000\n"       // 5
    "fall 5 1500\n"      // 6
    "end-period\n";      // 7

// The same start stated twice.
constexpr const char* kDuplicateTaskStart =
    "trace-version 1\n"  // 1
    "tasks a\n"          // 2
    "period\n"           // 3
    "start a 0\n"        // 4
    "start a 10\n"       // 5
    "end a 1000\n"       // 6
    "end-period\n";      // 7

// The task's end precedes its start.
constexpr const char* kNonMonotoneTimestamps =
    "trace-version 1\n"  // 1
    "tasks a\n"          // 2
    "period\n"           // 3
    "start a 1000\n"     // 4
    "end a 500\n"        // 5
    "end-period\n";      // 6

std::string strict_error(const char* text) {
  try {
    (void)trace_from_string(text);
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(MalformedCorpus, StrictRejectsTruncatedFileWithLine) {
  const std::string msg = strict_error(kTruncatedFile);
  EXPECT_NE(msg.find("inside a period"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 5:1"), std::string::npos) << msg;
}

TEST(MalformedCorpus, StrictRejectsNestedPeriodWithLine) {
  const std::string msg = strict_error(kNestedPeriod);
  EXPECT_NE(msg.find("nested"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 6:1"), std::string::npos) << msg;
}

TEST(MalformedCorpus, StrictRejectsOrphanFallingEdgeWithLine) {
  const std::string msg = strict_error(kOrphanFallingEdge);
  EXPECT_NE(msg.find("fall without rise"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 6:1"), std::string::npos) << msg;
}

TEST(MalformedCorpus, StrictRejectsDuplicateTaskStartWithLine) {
  const std::string msg = strict_error(kDuplicateTaskStart);
  EXPECT_NE(msg.find("started twice"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 5:1"), std::string::npos) << msg;
}

TEST(MalformedCorpus, StrictRejectsNonMonotoneTimestampsWithLine) {
  const std::string msg = strict_error(kNonMonotoneTimestamps);
  EXPECT_FALSE(msg.empty());
  EXPECT_NE(msg.find("line"), std::string::npos) << msg;
}

// The column half of `line:col` points at the offending token, not just
// the line: a bad time is the third token of its event line.
TEST(MalformedCorpus, StrictPointsAtOffendingTokenColumn) {
  const std::string msg = strict_error(
      "trace-version 1\n"
      "tasks a\n"
      "period\n"
      "start a xyz\n"  // line 4; "xyz" starts at column 9
      "end a 1000\n"
      "end-period\n");
  EXPECT_NE(msg.find("bad time 'xyz'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 4:9"), std::string::npos) << msg;
}

TEST(MalformedCorpus, LenientPointsAtOffendingTokenColumn) {
  const IngestReport rep = ingest_trace_string(
      "trace-version 1\n"
      "tasks a\n"
      "period\n"
      "start a xyz\n"  // line 4; "xyz" starts at column 9
      "start a 0\n"
      "end a 1000\n"
      "end-period\n");
  ASSERT_EQ(rep.diagnostics.size(), 1u);
  EXPECT_EQ(rep.diagnostics[0].line_no, 4u);
  EXPECT_EQ(rep.diagnostics[0].col, 9u);
  EXPECT_EQ(rep.diagnostics[0].position(), "4:9");
}

TEST(MalformedCorpus, LenientSalvagesTruncatedFile) {
  const IngestReport rep = ingest_trace_string(kTruncatedFile);
  ASSERT_EQ(rep.diagnostics.size(), 1u);
  EXPECT_NE(rep.diagnostics[0].message.find("truncated"), std::string::npos);
  // The events inside the unterminated period were complete, so it is kept.
  EXPECT_EQ(rep.trace.num_periods(), 1u);
  EXPECT_TRUE(rep.quarantined_periods.empty());
}

TEST(MalformedCorpus, LenientClosesNestedPeriodImplicitly) {
  const IngestReport rep = ingest_trace_string(kNestedPeriod);
  ASSERT_EQ(rep.diagnostics.size(), 1u);
  EXPECT_EQ(rep.diagnostics[0].line_no, 6u);
  EXPECT_NE(rep.diagnostics[0].message.find("nested"), std::string::npos);
  // Both halves were internally complete: two periods survive.
  EXPECT_EQ(rep.periods_seen, 2u);
  EXPECT_EQ(rep.trace.num_periods(), 2u);
}

TEST(MalformedCorpus, LenientDiscardsOrphanFallingEdge) {
  const IngestReport rep = ingest_trace_string(kOrphanFallingEdge);
  EXPECT_TRUE(rep.diagnostics.empty());  // parses fine; sanitizer repairs
  EXPECT_EQ(rep.trace.num_periods(), 1u);
  EXPECT_EQ(rep.repairs, 1u);
  EXPECT_TRUE(rep.trace.periods()[0].messages().empty());
}

TEST(MalformedCorpus, LenientDedupsDuplicateTaskStart) {
  const IngestReport rep = ingest_trace_string(kDuplicateTaskStart);
  EXPECT_EQ(rep.trace.num_periods(), 1u);
  EXPECT_EQ(rep.repairs, 1u);
  ASSERT_EQ(rep.trace.periods()[0].executions().size(), 1u);
  EXPECT_EQ(rep.trace.periods()[0].executions()[0].start, 0u);
}

TEST(MalformedCorpus, LenientQuarantinesNonMonotoneTimestamps) {
  // The clamp collapses the execution to an empty interval; its timing is
  // unrecoverable, so the period quarantines rather than being guessed at.
  const IngestReport rep = ingest_trace_string(kNonMonotoneTimestamps);
  EXPECT_EQ(rep.trace.num_periods(), 0u);
  EXPECT_EQ(rep.quarantined_periods.size(), 1u);
  ASSERT_EQ(rep.quarantined_observed.size(), 1u);
  EXPECT_TRUE(rep.quarantined_observed[0][0]);  // a's evidence survives
}

TEST(MalformedCorpus, LenientLoadsCorpusFileFromDisk) {
  const std::string path = ::testing::TempDir() + "/bbmg_malformed.txt";
  {
    std::ofstream ofs(path);
    ofs << kTruncatedFile;
  }
  EXPECT_THROW((void)load_trace_file(path), Error);
  const IngestReport rep = load_trace_file_lenient(path);
  EXPECT_TRUE(rep.header_ok);
  EXPECT_EQ(rep.trace.num_periods(), 1u);
  EXPECT_EQ(rep.diagnostics.size(), 1u);
}

}  // namespace
}  // namespace bbmg
