// Trace structures, the builder's well-formedness enforcement, and
// validation rules (paper §2.1: a task executes at most once per period;
// one shared bus carries at most one message at a time).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace bbmg {
namespace {

constexpr TaskId T0{0u};
constexpr TaskId T1{1u};

TEST(Period, SortsExecutionsAndMessages) {
  Period p({{T1, 50, 60}, {T0, 10, 20}},
           {{40, 45, 2}, {25, 30, 1}});
  EXPECT_EQ(p.executions()[0].task, T0);
  EXPECT_EQ(p.executions()[1].task, T1);
  EXPECT_EQ(p.messages()[0].can_id, 1u);
  EXPECT_EQ(p.messages()[1].can_id, 2u);
}

TEST(Period, ExecutedAndExecutionOf) {
  Period p({{T0, 10, 20}}, {});
  EXPECT_TRUE(p.executed(T0));
  EXPECT_FALSE(p.executed(T1));
  ASSERT_NE(p.execution_of(T0), nullptr);
  EXPECT_EQ(p.execution_of(T0)->end, 20u);
  EXPECT_EQ(p.execution_of(T1), nullptr);
}

TEST(Period, ToEventsIsTimeOrdered) {
  Period p({{T0, 10, 20}, {T1, 40, 50}}, {{25, 30, 7}});
  const auto events = p.to_events();
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
  EXPECT_EQ(events[2].kind, EventKind::MsgRise);
  EXPECT_EQ(events[2].can_id, 7u);
}

TEST(TraceBuilder, BuildsWellFormedTrace) {
  TraceBuilder b({"a", "b"});
  b.begin_period();
  b.add_event(Event::task_start(0, T0));
  b.add_event(Event::task_end(10, T0));
  b.add_event(Event::msg_rise(12, 5));
  b.add_event(Event::msg_fall(14, 5));
  b.add_event(Event::task_start(15, T1));
  b.add_event(Event::task_end(20, T1));
  b.end_period();
  const Trace t = b.take();
  EXPECT_EQ(t.num_periods(), 1u);
  EXPECT_EQ(t.total_messages(), 1u);
  EXPECT_EQ(t.total_executions(), 2u);
  EXPECT_EQ(t.total_event_pairs(), 3u);
  EXPECT_EQ(t.task_by_name("b"), T1);
  EXPECT_THROW((void)t.task_by_name("zz"), Error);
}

TEST(TraceBuilder, RejectsDoubleExecution) {
  TraceBuilder b({"a"});
  b.begin_period();
  b.add_event(Event::task_start(0, T0));
  b.add_event(Event::task_end(5, T0));
  EXPECT_THROW(b.add_event(Event::task_start(6, T0)), Error);
}

TEST(TraceBuilder, RejectsEndWithoutStart) {
  TraceBuilder b({"a"});
  b.begin_period();
  EXPECT_THROW(b.add_event(Event::task_end(5, T0)), Error);
}

TEST(TraceBuilder, RejectsOverlappingBusMessages) {
  TraceBuilder b({"a"});
  b.begin_period();
  b.add_event(Event::task_start(0, T0));
  b.add_event(Event::task_end(1, T0));
  b.add_event(Event::msg_rise(2, 1));
  EXPECT_THROW(b.add_event(Event::msg_rise(3, 2)), Error);
}

TEST(TraceBuilder, RejectsMismatchedFallId) {
  TraceBuilder b({"a"});
  b.begin_period();
  b.add_event(Event::task_start(0, T0));
  b.add_event(Event::task_end(1, T0));
  b.add_event(Event::msg_rise(2, 1));
  EXPECT_THROW(b.add_event(Event::msg_fall(3, 9)), Error);
}

TEST(TraceBuilder, RejectsDanglingActivityAtPeriodEnd) {
  {
    TraceBuilder b({"a"});
    b.begin_period();
    b.add_event(Event::task_start(0, T0));
    EXPECT_THROW(b.end_period(), Error);
  }
  {
    TraceBuilder b({"a"});
    b.begin_period();
    b.add_event(Event::task_start(0, T0));
    b.add_event(Event::task_end(1, T0));
    b.add_event(Event::msg_rise(2, 1));
    EXPECT_THROW(b.end_period(), Error);
  }
}

TEST(TraceBuilder, RejectsEventsOutsidePeriods) {
  TraceBuilder b({"a"});
  EXPECT_THROW(b.add_event(Event::task_start(0, T0)), Error);
  b.begin_period();
  EXPECT_THROW(b.begin_period(), Error);
}

TEST(ValidateTrace, AcceptsGoodTrace) {
  Trace t({"a", "b"});
  t.add_period(Period({{T0, 0, 5}, {T1, 10, 15}}, {{6, 8, 1}}));
  EXPECT_NO_THROW(validate_trace(t));
}

TEST(ValidateTrace, RejectsEmptyPeriod) {
  Trace t({"a"});
  t.add_period(Period({}, {}));
  EXPECT_THROW(validate_trace(t), Error);
}

TEST(ValidateTrace, RejectsZeroLengthExecution) {
  Trace t({"a"});
  t.add_period(Period({{T0, 5, 5}}, {}));
  EXPECT_THROW(validate_trace(t), Error);
}

TEST(ValidateTrace, RejectsDuplicateTaskInPeriod) {
  Trace t({"a", "b"});
  t.add_period(Period({{T0, 0, 5}, {T0, 6, 9}}, {}));
  EXPECT_THROW(validate_trace(t), Error);
}

TEST(ValidateTrace, RejectsOutOfRangeTask) {
  Trace t({"a"});
  t.add_period(Period({{TaskId{5u}, 0, 5}}, {}));
  EXPECT_THROW(validate_trace(t), Error);
}

TEST(ValidateTrace, RejectsOverlappingMessages) {
  Trace t({"a"});
  t.add_period(Period({{T0, 0, 5}}, {{6, 10, 1}, {8, 12, 2}}));
  EXPECT_THROW(validate_trace(t), Error);
}

TEST(TraceBuilder, ResetRecoversAfterMidPeriodThrow) {
  TraceBuilder b({"a", "b"});
  b.begin_period();
  b.add_event(Event::task_start(0, T0));
  b.add_event(Event::task_end(5, T0));
  b.end_period();  // period 0 completes normally

  b.begin_period();
  b.add_event(Event::task_start(10, T0));
  EXPECT_THROW(b.add_event(Event::msg_fall(12, 3)), Error);  // fall w/o rise
  b.reset();  // abandon the damaged period; keep what was built

  b.begin_period();  // must not complain about the open period
  b.add_event(Event::task_start(20, T1));
  b.add_event(Event::task_end(25, T1));
  b.end_period();

  const Trace t = b.take();
  ASSERT_EQ(t.num_periods(), 2u);
  // Nothing from the abandoned period leaked into its successor.
  ASSERT_EQ(t.periods()[1].executions().size(), 1u);
  EXPECT_EQ(t.periods()[1].executions()[0].task, T1);
  EXPECT_TRUE(t.periods()[1].messages().empty());
}

TEST(TraceBuilder, ResetOutsidePeriodIsANoOp) {
  TraceBuilder b({"a"});
  b.begin_period();
  b.add_event(Event::task_start(0, T0));
  b.add_event(Event::task_end(5, T0));
  b.end_period();
  b.reset();
  EXPECT_EQ(b.take().num_periods(), 1u);
}

}  // namespace
}  // namespace bbmg
