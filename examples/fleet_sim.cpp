// Offline tour of the fleet scenario engine: synthesize a small fleet of
// heterogeneous black-box deployments from one seed, show what the
// scenario knobs (sporadic sources, clock drift, bursty bus) do to each
// system's traces, and dry-run the arrival scheduler to show how the
// three shapes spread the same fleet across the arrival window.  No
// server involved — this is the generator half of `bbmg_fleet`, the part
// an offline experiment or a new verifier would reuse.
#include <cstdio>
#include <string>

#include "fleet/deployment.hpp"
#include "fleet/scheduler.hpp"
#include "gen/scenarios.hpp"

using namespace bbmg;

namespace {

const char* shape_name(fleet::ArrivalShape s) {
  switch (s) {
    case fleet::ArrivalShape::Steady: return "steady";
    case fleet::ArrivalShape::Ramp: return "ramp";
    case fleet::ArrivalShape::FlashCrowd: return "flash-crowd";
  }
  return "?";
}

}  // namespace

int main() {
  const std::uint64_t kFleetSeed = 7;
  const std::size_t kFleet = 12;
  const std::size_t kPeriods = 5;

  std::printf("=== fleet of %zu deployments, seed %llu ===\n\n", kFleet,
              static_cast<unsigned long long>(kFleetSeed));

  // Each deployment is fully determined by (fleet seed, index): same model,
  // same platform quirks, same trace bytes every time anyone regenerates
  // it — which is exactly what the closed-loop verifier relies on.
  for (std::size_t i = 0; i < kFleet; ++i) {
    const fleet::DeploymentSpec dep =
        fleet::make_deployment(kFleetSeed, i, kPeriods);
    const ScenarioConfig& sc = dep.scenario;
    const SimReport report = scenario_run(sc);

    std::string quirks;
    if (sc.model.sporadic_fraction > 0.0) quirks += " sporadic";
    if (sc.platform.clock_drift_ppm_max > 0.0) quirks += " drift";
    if (sc.platform.bus_error_rate > 0.0) quirks += " bus-errors";
    if (sc.platform.burst_enter_prob > 0.0) quirks += " bursty";
    if (quirks.empty()) quirks = " none";

    std::size_t events = 0;
    for (const Period& p : report.trace.periods()) events += p.to_events().size();
    std::printf("%-9s %2zu tasks, %zu ecus | quirks:%-32s | "
                "%4zu events, %3llu retransmits, skew %6llu us\n",
                dep.key.c_str(), sc.model.num_tasks, sc.model.num_ecus,
                quirks.c_str(), events,
                static_cast<unsigned long long>(report.retransmissions),
                static_cast<unsigned long long>(report.max_clock_skew /
                                                kTimeNsPerUs));
  }

  // The scheduler orders first arrivals in virtual time; the driver then
  // pumps them as fast as the server accepts.  Show where each shape puts
  // the fleet inside a 10s window (buckets of 1s, one column per bucket).
  const TimeNs window = 10 * kTimeNsPerSec;
  std::printf("\n=== arrival shapes across a %llus window ===\n",
              static_cast<unsigned long long>(window / kTimeNsPerSec));
  for (const fleet::ArrivalShape shape :
       {fleet::ArrivalShape::Steady, fleet::ArrivalShape::Ramp,
        fleet::ArrivalShape::FlashCrowd}) {
    std::size_t buckets[10] = {};
    const std::size_t n = 100;
    for (std::size_t i = 0; i < n; ++i) {
      const TimeNs at = fleet::arrival_time(shape, i, n, window);
      std::size_t b = static_cast<std::size_t>(at / kTimeNsPerSec);
      if (b >= 10) b = 9;
      ++buckets[b];
    }
    std::printf("%-12s", shape_name(shape));
    for (const std::size_t b : buckets) std::printf(" %3zu", b);
    std::printf("\n");
  }

  std::printf("\nnext step: stream this fleet into a live server with\n"
              "  bbmg_served 0 4 &   then   bbmg_fleet 127.0.0.1 <port> "
              "--fleet 100 --shape flash\n");
  return 0;
}
