// End-to-end live learning over a socket: an in-process bbmg_served, four
// concurrent producers streaming different simulated systems into their
// own sessions, and model queries answered while ingestion is still
// running.  Finishes by checking that the served model of the GM case
// study equals the offline single-threaded pipeline's — the serve layer
// changes where learning happens, never what is learned.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/heuristic_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/random_model.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"

using namespace bbmg;

namespace {

Trace make_trace(std::size_t producer, std::size_t periods) {
  SimConfig cfg;
  cfg.seed = 100 + producer;
  if (producer == 0) {
    return simulate_trace(gm_case_study_model(), periods, cfg);
  }
  RandomModelParams params;
  params.num_tasks = 8 + 2 * producer;
  params.seed = producer;
  return simulate_trace(random_model(params), periods, cfg);
}

}  // namespace

int main() {
  ServerConfig config;
  config.manager.workers = 2;
  Server server(config);
  server.start();
  std::printf("serving on 127.0.0.1:%u with %zu workers\n\n",
              unsigned{server.port()}, server.manager().num_workers());

  const std::size_t kProducers = 4;
  const std::size_t kPeriods = 18;

  // Each producer owns one connection and one session and replays its
  // trace period by period, as a logging device would.
  std::vector<std::thread> producers;
  for (std::size_t i = 0; i < kProducers; ++i) {
    producers.emplace_back([i, port = server.port()] {
      const Trace trace = make_trace(i, kPeriods);
      ServeClient client;
      client.connect("127.0.0.1", port);
      const std::uint32_t session = client.open_session(trace.task_names());
      client.send_trace(session, trace);
      const WireSnapshot snap = client.query(session, /*drain=*/true);
      std::printf("producer %zu (session %u, %zu tasks): learned %llu/%llu "
                  "periods, dLUB weight %llu, health %s\n",
                  i, session, trace.num_tasks(),
                  static_cast<unsigned long long>(snap.periods_learned),
                  static_cast<unsigned long long>(snap.periods_seen),
                  static_cast<unsigned long long>(snap.weight),
                  std::string(health_state_name(snap.health)).c_str());
    });
  }
  for (auto& t : producers) t.join();

  // The serve layer must be behaviour-preserving: replaying the GM trace
  // through the socket yields the same summary the offline learner computes.
  const Trace gm = make_trace(0, kPeriods);
  ServeClient client;
  client.connect("127.0.0.1", server.port());
  const std::uint32_t session = client.open_session(gm.task_names());
  client.send_trace(session, gm);
  const WireSnapshot served = client.query(session, /*drain=*/true);
  const DependencyMatrix offline = learn_heuristic(gm, 16).lub();
  std::printf("\nserved == offline dLUB on the GM case study: %s\n",
              served.lub == offline ? "yes" : "NO (bug!)");

  server.stop();
  return served.lub == offline ? 0 : 1;
}
