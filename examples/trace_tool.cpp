// bbmg trace tool: the file-based workflow an integrator would script.
//
//   trace_tool gen <out.trace> [periods] [seed]   simulate the GM-like
//                                                 system and save a trace
//   trace_tool learn <in.trace> <out.model> [bound]
//                                                 learn a dependency model
//   trace_tool check <in.trace> <in.model>        conformance-check a
//                                                 trace against a model
//   trace_tool show <in.model>                    pretty-print a model
//   trace_tool stats <in.trace>                   workload statistics
//   trace_tool segment <in.events> <out.trace> <gap-ns>
//                                                 split a flat event
//                                                 stream at idle gaps
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/conformance.hpp"
#include "analysis/dependency_graph.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "lattice/matrix_io.hpp"
#include "sim/simulator.hpp"
#include "trace/segmentation.hpp"
#include "trace/serialize.hpp"
#include "trace/stats.hpp"

using namespace bbmg;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool gen <out.trace> [periods] [seed]\n"
               "  trace_tool learn <in.trace> <out.model> [bound]\n"
               "  trace_tool check <in.trace> <in.model>\n"
               "  trace_tool show <in.model>\n"
               "  trace_tool stats <in.trace>\n"
               "  trace_tool segment <in.trace> <out.trace> <gap-ns>\n");
  return 2;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::size_t periods =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : kGmCaseStudyPeriods;
  SimConfig cfg;
  cfg.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;
  const Trace trace = simulate_trace(gm_case_study_model(), periods, cfg);
  save_trace_file(argv[2], trace);
  std::printf("wrote %s: %zu periods, %zu messages\n", argv[2],
              trace.num_periods(), trace.total_messages());
  return 0;
}

int cmd_learn(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::size_t bound = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 16;
  const Trace trace = load_trace_file(argv[2]);
  const LearnResult result = learn_heuristic(trace, bound);
  const DependencyMatrix model = result.lub();
  save_matrix_file(argv[3], model, trace.task_names());
  std::printf("learned from %zu periods (%zu hypotheses, %s) -> %s\n",
              trace.num_periods(), result.hypotheses.size(),
              result.converged() ? "converged" : "not converged", argv[3]);
  return 0;
}

int cmd_check(int argc, char** argv) {
  if (argc < 4) return usage();
  const Trace trace = load_trace_file(argv[2]);
  const NamedMatrix model = load_matrix_file(argv[3]);
  if (model.task_names != trace.task_names()) {
    std::fprintf(stderr, "error: trace and model use different task sets\n");
    return 2;
  }
  const ConformanceReport report = check_conformance(model.matrix, trace);
  std::printf("%zu periods checked, %zu violations\n", report.periods_checked,
              report.violations.size());
  for (const auto& v : report.violations) {
    std::printf("  %s\n", describe_violation(v, model.task_names).c_str());
  }
  return report.conforms() ? 0 : 1;
}

int cmd_show(int argc, char** argv) {
  if (argc < 3) return usage();
  const NamedMatrix model = load_matrix_file(argv[2]);
  std::printf("%s\n", model.matrix.to_table(model.task_names).c_str());
  const DependencyGraph graph(model.matrix, model.task_names);
  std::printf("%s", graph.to_dot().c_str());
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) return usage();
  const Trace trace = load_trace_file(argv[2]);
  std::printf("%s", stats_to_string(compute_stats(trace),
                                    trace.task_names()).c_str());
  return 0;
}

int cmd_segment(int argc, char** argv) {
  if (argc < 5) return usage();
  // Re-segment an existing trace's flattened event stream by idle gaps —
  // the workflow for loggers that do not mark period boundaries.
  const Trace in = load_trace_file(argv[2]);
  const TimeNs gap = std::strtoull(argv[4], nullptr, 10);
  const Trace out = segment_by_gap(flatten(in), in.task_names(), gap);
  save_trace_file(argv[3], out);
  std::printf("segmented %zu events into %zu periods -> %s\n",
              flatten(in).size(), out.num_periods(), argv[3]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
    if (std::strcmp(argv[1], "learn") == 0) return cmd_learn(argc, argv);
    if (std::strcmp(argv[1], "check") == 0) return cmd_check(argc, argv);
    if (std::strcmp(argv[1], "show") == 0) return cmd_show(argc, argv);
    if (std::strcmp(argv[1], "stats") == 0) return cmd_stats(argc, argv);
    if (std::strcmp(argv[1], "segment") == 0) return cmd_segment(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
