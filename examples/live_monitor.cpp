// Live monitoring with the streaming learner and conformance checker:
//
//   phase 1 — learn: feed the OnlineLearner period by period until the
//             hypothesis set is stable for a few periods;
//   phase 2 — monitor: check further periods of the healthy system
//             against the learned model (no violations expected);
//   phase 3 — fault injection: rewire the system (task I's output is
//             silently disconnected, as if a component were replaced by a
//             misbehaving variant) and show that the monitor flags the
//             very first periods in which the regression manifests.
//
//   $ ./examples/live_monitor [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/conformance.hpp"
#include "core/online_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "sim/simulator.hpp"

using namespace bbmg;

namespace {

/// The faulty variant: D silently stops triggering I (as if a component
/// update dropped the message), so I — and with it one of N's activators —
/// goes dead whenever A picks mode D.
SystemModel faulty_variant() {
  const SystemModel good = gm_case_study_model();
  SystemModel bad;
  const TaskId d = good.task_by_name("D");
  const TaskId i = good.task_by_name("I");
  for (const auto& t : good.tasks()) {
    TaskSpec spec = t;
    if (spec.name == "D") spec.output = OutputPolicy::PerEdgeProbability;
    bad.add_task(std::move(spec));
  }
  for (const auto& e : good.edges()) {
    EdgeSpec edge = e;
    if (e.from == d) edge.probability = (e.to == i) ? 0.0 : 1.0;
    bad.add_edge(edge);
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  const SystemModel good = gm_case_study_model();
  SimConfig cfg;
  cfg.seed = seed;
  const Trace training = simulate_trace(good, 40, cfg);

  // Phase 1: stream periods into the learner; stop once the summary has
  // been stable for 5 consecutive periods.
  OnlineConfig oc;
  oc.bound = 16;
  OnlineLearner learner(training.num_tasks(), oc);
  DependencyMatrix last(training.num_tasks());
  std::size_t stable = 0;
  std::size_t used_periods = 0;
  for (const auto& period : training.periods()) {
    learner.observe_period(period);
    ++used_periods;
    const DependencyMatrix current = learner.snapshot().lub();
    stable = (current == last) ? stable + 1 : 0;
    last = current;
    if (stable >= 5 && used_periods >= 10) break;
  }
  std::printf("phase 1: model stable after %zu periods "
              "(%zu hypotheses, weight %llu)\n",
              used_periods, learner.hypotheses().size(),
              static_cast<unsigned long long>(last.weight()));

  // Phase 2: the healthy system keeps conforming.
  SimConfig healthy_cfg;
  healthy_cfg.seed = seed + 1;
  const Trace healthy = simulate_trace(good, 15, healthy_cfg);
  const ConformanceReport ok = check_conformance(last, healthy);
  std::printf("phase 2: %zu healthy periods checked, %zu violations\n",
              ok.periods_checked, ok.violations.size());

  // Phase 3: the faulty variant is deployed.
  SimConfig faulty_cfg;
  faulty_cfg.seed = seed + 2;
  const Trace faulty = simulate_trace(faulty_variant(), 15, faulty_cfg);
  const ConformanceReport alarm = check_conformance(last, faulty);
  std::printf("phase 3: %zu faulty periods checked, %zu violations\n",
              alarm.periods_checked, alarm.violations.size());
  std::size_t shown = 0;
  for (const auto& v : alarm.violations) {
    if (++shown > 6) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %s\n",
                describe_violation(v, faulty.task_names()).c_str());
  }
  std::printf("\nverdict: %s\n",
              alarm.conforms()
                  ? "fault NOT detected (unexpected)"
                  : "fault detected — the learned model caught the "
                    "mis-integration");
  return alarm.conforms() ? 1 : 0;
}
