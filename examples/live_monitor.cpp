// Live monitoring on a *noisy* logging chain: the streaming learner and the
// conformance checker, both behind the fault-tolerant ingestion layer
// (src/robust) — no phase dies on a dirty capture, it degrades and reports.
//
//   phase 1 — learn: raw periods (corrupted at ~3% by a seeded fault
//             injector, standing in for a flaky logging device) stream
//             through RobustOnlineLearner until the model is stable;
//             the health summary accounts for every quarantined period;
//   phase 2 — monitor: noisy captures of the healthy system are checked
//             leniently against the learned model (no violations expected,
//             skipped periods are reported as reduced coverage);
//   phase 3 — fault injection at the *system* level: task I's activation is
//             silently disconnected (a misbehaving component variant); the
//             monitor must flag the regression even through logging noise.
//
//   $ ./examples/live_monitor [seed]
#include <cstdio>
#include <cstdlib>

#include "gen/gm_case_study.hpp"
#include "robust/fault_injector.hpp"
#include "robust/monitor.hpp"
#include "robust/robust_online_learner.hpp"
#include "sim/simulator.hpp"

using namespace bbmg;

namespace {

/// Logging noise for all three phases: ~0.2% of events dropped, duplicated,
/// reordered, perturbed or id-corrupted — a flaky logging device, not a
/// broken one.
constexpr double kLogNoise = 0.002;

/// The faulty variant: D silently stops triggering I (as if a component
/// update dropped the message), so I — and with it one of N's activators —
/// goes dead whenever A picks mode D.
SystemModel faulty_variant() {
  const SystemModel good = gm_case_study_model();
  SystemModel bad;
  const TaskId d = good.task_by_name("D");
  const TaskId i = good.task_by_name("I");
  for (const auto& t : good.tasks()) {
    TaskSpec spec = t;
    if (spec.name == "D") spec.output = OutputPolicy::PerEdgeProbability;
    bad.add_task(std::move(spec));
  }
  for (const auto& e : good.edges()) {
    EdgeSpec edge = e;
    if (e.from == d) edge.probability = (e.to == i) ? 0.0 : 1.0;
    bad.add_edge(edge);
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  const SystemModel good = gm_case_study_model();
  SimConfig cfg;
  cfg.seed = seed;
  const Trace training = simulate_trace(good, 40, cfg);

  // Phase 1: stream *corrupted* raw periods into the degradation-aware
  // learner.  The whole capture is consumed — a version-space model only
  // stops overclaiming once it has seen every execution pattern, and
  // skipping tail periods is exactly how a monitor ends up crying wolf.
  FaultInjector noise(FaultSpec::uniform(kLogNoise, seed + 10));
  const InjectionResult raw_training = noise.corrupt(training);

  RobustConfig rc;
  rc.online.bound = 16;
  RobustOnlineLearner learner(training.task_names(), rc);
  for (const auto& events : raw_training.periods) {
    (void)learner.observe_raw_period(events);
  }
  const DependencyMatrix last = learner.snapshot().lub();
  std::printf("phase 1: model learned from %zu raw periods "
              "(%zu hypotheses, weight %llu)\n",
              learner.periods_seen(), learner.learner().hypotheses().size(),
              static_cast<unsigned long long>(last.weight()));
  std::printf("phase 1: %s\n", learner.health_summary().c_str());

  // Phase 2: noisy captures of the healthy system keep conforming.
  SimConfig healthy_cfg;
  healthy_cfg.seed = seed + 1;
  const Trace healthy = simulate_trace(good, 15, healthy_cfg);
  FaultInjector noise2(FaultSpec::uniform(kLogNoise, seed + 11));
  const RobustConformanceReport ok = check_conformance_lenient(
      last, healthy.task_names(), noise2.corrupt(healthy).periods, rc);
  std::printf("phase 2: %s\n", ok.summary().c_str());

  // Phase 3: the faulty variant is deployed; its regression must shine
  // through the same logging noise.
  SimConfig faulty_cfg;
  faulty_cfg.seed = seed + 2;
  const Trace faulty = simulate_trace(faulty_variant(), 15, faulty_cfg);
  FaultInjector noise3(FaultSpec::uniform(kLogNoise, seed + 12));
  const RobustConformanceReport alarm = check_conformance_lenient(
      last, faulty.task_names(), noise3.corrupt(faulty).periods, rc);
  std::printf("phase 3: %s\n", alarm.summary().c_str());
  std::size_t shown = 0;
  for (const auto& v : alarm.report.violations) {
    if (++shown > 6) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %s\n",
                describe_violation(v, faulty.task_names()).c_str());
  }
  std::printf("\nverdict: %s\n",
              alarm.conforms()
                  ? "fault NOT detected (unexpected)"
                  : "fault detected — the learned model caught the "
                    "mis-integration through the noise");
  return alarm.conforms() ? 1 : 0;
}
