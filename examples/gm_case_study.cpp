// The GM-like case study end to end (paper §3.4, Fig. 5):
//
//   1. build the 18-task distributed design model (4 ECUs, one CAN bus);
//   2. simulate 27 periods on the OSEK+CAN platform substrate;
//   3. learn the dependency model from the bus trace with the bounded
//      heuristic;
//   4. classify nodes, check the paper's published properties, and report
//      the dependencies the design model never stated.
//
//   $ ./examples/gm_case_study [periods] [bound] [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/compare.hpp"
#include "analysis/dependency_graph.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "model/design_truth.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace bbmg;

  const std::size_t periods =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : kGmCaseStudyPeriods;
  const std::size_t bound = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 32;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  const SystemModel model = gm_case_study_model();
  SimConfig sim_config;
  sim_config.seed = seed;
  const SimReport sim = simulate(model, periods, sim_config);

  std::printf("simulated %zu periods: %zu messages, %zu task executions, "
              "%zu event pairs, %llu preemptions\n",
              sim.trace.num_periods(), sim.trace.total_messages(),
              sim.trace.total_executions(), sim.trace.total_event_pairs(),
              static_cast<unsigned long long>(sim.preemptions));

  const LearnResult result = learn_heuristic(sim.trace, bound);
  std::printf("heuristic learner (bound %zu): %zu hypotheses in %.3f s\n\n",
              bound, result.hypotheses.size(), result.stats.wall_seconds);

  const DependencyMatrix learned = result.lub();
  const DependencyGraph graph(learned, sim.trace.task_names());

  std::printf("node classification (learned):\n");
  for (std::size_t i = 0; i < graph.num_tasks(); ++i) {
    const TaskId t{i};
    const char* role = "";
    switch (graph.role(t)) {
      case NodeRole::Disjunction: role = "disjunction"; break;
      case NodeRole::Conjunction: role = "conjunction"; break;
      case NodeRole::Both:        role = "disjunction+conjunction"; break;
      case NodeRole::Plain:       continue;
    }
    std::printf("  %-2s %s\n", graph.name(t).c_str(), role);
  }

  const TaskId A = graph.by_name("A");
  const TaskId B = graph.by_name("B");
  const TaskId L = graph.by_name("L");
  const TaskId M = graph.by_name("M");
  const TaskId O = graph.by_name("O");
  const TaskId Q = graph.by_name("Q");
  std::printf("\nproperties proved from the learned model:\n");
  std::printf("  d(A,L) = %s  (\"no matter which mode A chooses, L executes\")\n",
              std::string(dep_to_string(graph.value(A, L))).c_str());
  std::printf("  d(B,M) = %s  (\"no matter which mode B chooses, M executes\")\n",
              std::string(dep_to_string(graph.value(B, M))).c_str());
  std::printf("  d(Q,O) = %s  (dependency on the infrastructure heartbeat;\n"
              "                absent from the design model)\n",
              std::string(dep_to_string(graph.value(Q, O))).c_str());

  const DependencyMatrix design = design_dependency(model);
  const auto emergent = emergent_pairs(design, learned);
  std::printf("\n%zu ordered pairs carry a learned dependency the design "
              "never stated.\n", emergent.size());

  std::printf("\nGraphviz dependency graph (paper Fig. 5 analogue):\n%s",
              graph.to_dot().c_str());
  return 0;
}
