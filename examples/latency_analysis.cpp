// End-to-end latency analysis with a learned dependency model (the
// paper's §3.4 application): compare the pessimistic all-independent
// worst-case response times against the dependency-informed ones, and
// price out a critical path.
//
//   $ ./examples/latency_analysis [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/latency.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace bbmg;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 1. Obtain a trace of the black-box system and learn its dependencies.
  const SystemModel model = gm_case_study_model();
  SimConfig cfg;
  cfg.seed = seed;
  const Trace trace = simulate_trace(model, kGmCaseStudyPeriods, cfg);
  const DependencyMatrix learned = learn_heuristic(trace, 32).lub();

  // 2. Worst-case response times, with and without the model.
  const auto responses = response_times(model, learned);
  std::printf("%-6s %12s %14s %12s\n", "task", "WCET (us)", "R_pess (us)",
              "R_dep (us)");
  for (const auto& r : responses) {
    std::printf("%-6s %12llu %14llu %12llu%s\n",
                model.task(r.task).name.c_str(),
                static_cast<unsigned long long>(r.wcet / kTimeNsPerUs),
                static_cast<unsigned long long>(r.response_pessimistic /
                                                kTimeNsPerUs),
                static_cast<unsigned long long>(r.response_informed /
                                                kTimeNsPerUs),
                r.excluded.empty() ? "" : "   <- preemption excluded");
  }

  // 3. The brake-pedal-style deadline question: does the critical path
  //    through Q meet a 10 ms end-to-end budget?
  const std::vector<TaskId> path{
      model.task_by_name("S"), model.task_by_name("B"),
      model.task_by_name("F"), model.task_by_name("M"),
      model.task_by_name("Q")};
  const TimeNs pess = path_latency(model, responses, path, false);
  const TimeNs dep = path_latency(model, responses, path, true);
  const TimeNs budget = 10 * kTimeNsPerMs;
  std::printf("\npath S->B->F->M->Q, budget %llu us:\n",
              static_cast<unsigned long long>(budget / kTimeNsPerUs));
  std::printf("  pessimistic bound: %llu us (%s)\n",
              static_cast<unsigned long long>(pess / kTimeNsPerUs),
              pess <= budget ? "meets budget" : "VIOLATES budget");
  std::printf("  learned bound    : %llu us (%s)\n",
              static_cast<unsigned long long>(dep / kTimeNsPerUs),
              dep <= budget ? "meets budget" : "VIOLATES budget");
  return 0;
}
