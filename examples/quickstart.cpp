// Quickstart: learn a dependency model from the paper's own worked example
// (§3.3).  Builds the Fig. 2 trace, runs the exact learner and the bounded
// heuristic, and prints the surviving hypotheses and their least upper
// bound — the matrix of the paper's Fig. 4.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <string>

#include "analysis/dependency_graph.hpp"
#include "core/exact_learner.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/scenarios.hpp"

int main() {
  using namespace bbmg;

  // The trace a bus logging device would record: task start/end plus
  // anonymous message rise/fall.  No senders, no receivers, no design.
  const Trace trace = paper_example_trace();
  std::printf("trace: %zu tasks, %zu periods, %zu messages\n\n",
              trace.num_tasks(), trace.num_periods(), trace.total_messages());

  // 1. The exact learner: the complete set of most specific dependency
  //    functions matching every period.
  const LearnResult exact = learn_exact(trace);
  std::printf("exact learner: %zu most specific hypotheses%s\n",
              exact.hypotheses.size(),
              exact.converged() ? " (converged)" : "");
  for (std::size_t i = 0; i < exact.hypotheses.size(); ++i) {
    std::printf("\nhypothesis %zu (weight %llu):\n%s", i + 1,
                static_cast<unsigned long long>(exact.hypotheses[i].weight()),
                exact.hypotheses[i].to_table(trace.task_names()).c_str());
  }

  // 2. Their least upper bound — the paper's dLUB (Fig. 4).
  const DependencyMatrix dlub = exact.lub();
  std::printf("\ndLUB (least upper bound of all hypotheses):\n%s",
              dlub.to_table(trace.task_names()).c_str());

  // 3. The bounded heuristic with bound 1 maintains a single running LUB
  //    and lands on the same matrix (the paper's convergence theorem).
  const LearnResult h1 = learn_heuristic(trace, 1);
  std::printf("\nheuristic (bound 1) result %s dLUB\n",
              h1.hypotheses.front() == dlub ? "==" : "!=");

  // 4. Query the result as a graph.
  const DependencyGraph graph(dlub, trace.task_names());
  const TaskId t1 = graph.by_name("t1");
  const TaskId t4 = graph.by_name("t4");
  std::printf(
      "\nd(t1,t4) = %s  — t1 always determines t4, a fact no single design\n"
      "message states; the learner found it from the trace alone.\n",
      std::string(dep_to_string(graph.value(t1, t4))).c_str());
  return 0;
}
