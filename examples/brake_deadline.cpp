// The paper's motivating requirement, checked end to end on the brake
// scenario: "if the brake is pressed, then brake actuator must react
// within 300 msec".
//
// Without a system-level model the integrator must assume every
// higher-priority task on each ECU can preempt the path — and the 300 ms
// budget appears violated.  Learning the dependency model from a bus trace
// recovers enough ordering to prove the deadline.
//
//   $ ./examples/brake_deadline [periods] [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/dependency_graph.hpp"
#include "analysis/latency.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/brake_system.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace bbmg;
  const std::size_t periods = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  const SystemModel model = brake_system_model();
  SimConfig cfg;
  cfg.seed = seed;
  cfg.period_length = 1000 * kTimeNsPerMs;  // 1 s braking control period
  const Trace trace = simulate_trace(model, periods, cfg);
  std::printf("simulated %zu periods (%zu messages) of the brake system\n",
              trace.num_periods(), trace.total_messages());

  const LearnResult result = learn_heuristic(trace, 16);
  const DependencyMatrix learned = result.lub();
  const DependencyGraph graph(learned, trace.task_names());
  std::printf("learned model: %zu hypothesis(es)%s\n\n",
              result.hypotheses.size(),
              result.converged() ? ", converged" : "");

  // Structural findings.
  const TaskId arb = graph.by_name("AbsArbiter");
  std::printf("AbsArbiter is a %s node (chooses normal vs ABS braking)\n",
              graph.role(arb) == NodeRole::Disjunction ? "disjunction"
                                                       : "plain");
  std::printf("d(PedalSensor, AbsArbiter) = %s — the pedal always drives "
              "the arbiter\n\n",
              std::string(dep_to_string(graph.value(
                  graph.by_name("PedalSensor"), arb))).c_str());

  // The deadline check.
  LatencyConfig lat;
  const auto responses = response_times(model, learned, lat);
  const auto path = brake_critical_path(model);
  const TimeNs pess = path_latency(model, responses, path, false, lat);
  const TimeNs dep = path_latency(model, responses, path, true, lat);

  std::printf("pedal -> front actuator worst-case latency "
              "(deadline %llu ms):\n",
              static_cast<unsigned long long>(kBrakeDeadline / kTimeNsPerMs));
  std::printf("  all-independent assumption : %4llu ms  -> %s\n",
              static_cast<unsigned long long>(pess / kTimeNsPerMs),
              pess <= kBrakeDeadline ? "deadline met"
                                     : "cannot prove the deadline");
  std::printf("  learned dependency model   : %4llu ms  -> %s\n",
              static_cast<unsigned long long>(dep / kTimeNsPerMs),
              dep <= kBrakeDeadline ? "deadline PROVED" : "still unprovable");
  return 0;
}
