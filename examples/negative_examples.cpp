// Version-space learning with negative examples — the extension the
// paper's conclusion proposes.  Positive periods come from the recorded
// trace; negative periods encode *forbidden* behaviour from the
// requirements (here: "t1 must never complete a period without triggering
// any downstream task").  The result is a version space: a specific
// boundary (what the data proves) and a general boundary (what the
// requirements still allow), bracketing every acceptable dependency model.
//
//   $ ./examples/negative_examples
#include <cstdio>

#include "core/version_space.hpp"
#include "gen/scenarios.hpp"

int main() {
  using namespace bbmg;

  const Trace positives = paper_example_trace();

  // The forbidden behaviour, written as a synthetic period: t1 runs alone.
  TraceBuilder nb(positives.task_names());
  nb.begin_period();
  nb.add_event(Event::task_start(0, TaskId{0u}));
  nb.add_event(Event::task_end(10, TaskId{0u}));
  nb.end_period();
  const Trace negatives = nb.take();

  const VersionSpaceResult vs = learn_version_space(positives, negatives);

  std::printf("specific boundary (%zu most specific hypotheses consistent "
              "with data AND requirements):\n\n", vs.specific.size());
  for (const auto& s : vs.specific) {
    std::printf("%s\n", s.to_table(positives.task_names()).c_str());
  }
  std::printf("general boundary (%zu most general hypotheses):\n\n",
              vs.general.size());
  for (const auto& g : vs.general) {
    std::printf("%s\n", g.to_table(positives.task_names()).c_str());
  }

  std::printf("version space %s\n",
              vs.collapsed() ? "COLLAPSED — data contradicts requirements"
                             : "consistent");
  std::printf("admits the pessimistic all-independent model: %s "
              "(the requirement rules it out)\n",
              vs.admits(DependencyMatrix::top(4)) ? "yes" : "no");

  // Note how the negative example sharpened the positives-only result:
  // the §3.3 survivor d85 (the one without a hard claim from t1) matched
  // the forbidden period and is gone; all remaining hypotheses carry
  // d(t1,t4) = ->.
  std::printf("every surviving hypothesis proves d(t1,t4) = ->: ");
  bool all = true;
  for (const auto& s : vs.specific) all &= s.at(0, 3) == DepValue::Forward;
  std::printf("%s\n", all ? "yes" : "no");
  return 0;
}
