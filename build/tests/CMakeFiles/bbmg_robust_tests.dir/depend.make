# Empty dependencies file for bbmg_robust_tests.
# This may be replaced when dependencies are built.
