file(REMOVE_RECURSE
  "CMakeFiles/bbmg_robust_tests.dir/robust/fault_injection_property_test.cpp.o"
  "CMakeFiles/bbmg_robust_tests.dir/robust/fault_injection_property_test.cpp.o.d"
  "CMakeFiles/bbmg_robust_tests.dir/robust/lenient_loader_test.cpp.o"
  "CMakeFiles/bbmg_robust_tests.dir/robust/lenient_loader_test.cpp.o.d"
  "CMakeFiles/bbmg_robust_tests.dir/robust/sanitizer_test.cpp.o"
  "CMakeFiles/bbmg_robust_tests.dir/robust/sanitizer_test.cpp.o.d"
  "bbmg_robust_tests"
  "bbmg_robust_tests.pdb"
  "bbmg_robust_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_robust_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
