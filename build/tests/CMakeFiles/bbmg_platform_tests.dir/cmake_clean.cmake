file(REMOVE_RECURSE
  "CMakeFiles/bbmg_platform_tests.dir/gen/brake_system_test.cpp.o"
  "CMakeFiles/bbmg_platform_tests.dir/gen/brake_system_test.cpp.o.d"
  "CMakeFiles/bbmg_platform_tests.dir/gen/gen_test.cpp.o"
  "CMakeFiles/bbmg_platform_tests.dir/gen/gen_test.cpp.o.d"
  "CMakeFiles/bbmg_platform_tests.dir/model/behavior_test.cpp.o"
  "CMakeFiles/bbmg_platform_tests.dir/model/behavior_test.cpp.o.d"
  "CMakeFiles/bbmg_platform_tests.dir/model/system_model_test.cpp.o"
  "CMakeFiles/bbmg_platform_tests.dir/model/system_model_test.cpp.o.d"
  "CMakeFiles/bbmg_platform_tests.dir/sim/can_bus_test.cpp.o"
  "CMakeFiles/bbmg_platform_tests.dir/sim/can_bus_test.cpp.o.d"
  "CMakeFiles/bbmg_platform_tests.dir/sim/ecu_test.cpp.o"
  "CMakeFiles/bbmg_platform_tests.dir/sim/ecu_test.cpp.o.d"
  "CMakeFiles/bbmg_platform_tests.dir/sim/sim_extensions_test.cpp.o"
  "CMakeFiles/bbmg_platform_tests.dir/sim/sim_extensions_test.cpp.o.d"
  "CMakeFiles/bbmg_platform_tests.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/bbmg_platform_tests.dir/sim/simulator_test.cpp.o.d"
  "bbmg_platform_tests"
  "bbmg_platform_tests.pdb"
  "bbmg_platform_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_platform_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
