# Empty compiler generated dependencies file for bbmg_platform_tests.
# This may be replaced when dependencies are built.
