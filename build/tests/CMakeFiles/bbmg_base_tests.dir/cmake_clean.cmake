file(REMOVE_RECURSE
  "CMakeFiles/bbmg_base_tests.dir/common/common_test.cpp.o"
  "CMakeFiles/bbmg_base_tests.dir/common/common_test.cpp.o.d"
  "CMakeFiles/bbmg_base_tests.dir/lattice/dependency_matrix_test.cpp.o"
  "CMakeFiles/bbmg_base_tests.dir/lattice/dependency_matrix_test.cpp.o.d"
  "CMakeFiles/bbmg_base_tests.dir/lattice/dependency_value_test.cpp.o"
  "CMakeFiles/bbmg_base_tests.dir/lattice/dependency_value_test.cpp.o.d"
  "CMakeFiles/bbmg_base_tests.dir/lattice/matrix_io_test.cpp.o"
  "CMakeFiles/bbmg_base_tests.dir/lattice/matrix_io_test.cpp.o.d"
  "CMakeFiles/bbmg_base_tests.dir/trace/malformed_corpus_test.cpp.o"
  "CMakeFiles/bbmg_base_tests.dir/trace/malformed_corpus_test.cpp.o.d"
  "CMakeFiles/bbmg_base_tests.dir/trace/segmentation_test.cpp.o"
  "CMakeFiles/bbmg_base_tests.dir/trace/segmentation_test.cpp.o.d"
  "CMakeFiles/bbmg_base_tests.dir/trace/serialize_test.cpp.o"
  "CMakeFiles/bbmg_base_tests.dir/trace/serialize_test.cpp.o.d"
  "CMakeFiles/bbmg_base_tests.dir/trace/stats_test.cpp.o"
  "CMakeFiles/bbmg_base_tests.dir/trace/stats_test.cpp.o.d"
  "CMakeFiles/bbmg_base_tests.dir/trace/trace_test.cpp.o"
  "CMakeFiles/bbmg_base_tests.dir/trace/trace_test.cpp.o.d"
  "bbmg_base_tests"
  "bbmg_base_tests.pdb"
  "bbmg_base_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_base_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
