# Empty dependencies file for bbmg_base_tests.
# This may be replaced when dependencies are built.
