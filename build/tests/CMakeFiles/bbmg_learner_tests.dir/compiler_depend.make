# Empty compiler generated dependencies file for bbmg_learner_tests.
# This may be replaced when dependencies are built.
