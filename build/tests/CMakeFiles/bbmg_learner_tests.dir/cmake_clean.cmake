file(REMOVE_RECURSE
  "CMakeFiles/bbmg_learner_tests.dir/learner/candidates_test.cpp.o"
  "CMakeFiles/bbmg_learner_tests.dir/learner/candidates_test.cpp.o.d"
  "CMakeFiles/bbmg_learner_tests.dir/learner/convergence_test.cpp.o"
  "CMakeFiles/bbmg_learner_tests.dir/learner/convergence_test.cpp.o.d"
  "CMakeFiles/bbmg_learner_tests.dir/learner/exact_learner_test.cpp.o"
  "CMakeFiles/bbmg_learner_tests.dir/learner/exact_learner_test.cpp.o.d"
  "CMakeFiles/bbmg_learner_tests.dir/learner/heuristic_test.cpp.o"
  "CMakeFiles/bbmg_learner_tests.dir/learner/heuristic_test.cpp.o.d"
  "CMakeFiles/bbmg_learner_tests.dir/learner/matching_test.cpp.o"
  "CMakeFiles/bbmg_learner_tests.dir/learner/matching_test.cpp.o.d"
  "CMakeFiles/bbmg_learner_tests.dir/learner/online_learner_test.cpp.o"
  "CMakeFiles/bbmg_learner_tests.dir/learner/online_learner_test.cpp.o.d"
  "CMakeFiles/bbmg_learner_tests.dir/learner/post_process_test.cpp.o"
  "CMakeFiles/bbmg_learner_tests.dir/learner/post_process_test.cpp.o.d"
  "CMakeFiles/bbmg_learner_tests.dir/learner/theorem_properties_test.cpp.o"
  "CMakeFiles/bbmg_learner_tests.dir/learner/theorem_properties_test.cpp.o.d"
  "CMakeFiles/bbmg_learner_tests.dir/learner/version_space_test.cpp.o"
  "CMakeFiles/bbmg_learner_tests.dir/learner/version_space_test.cpp.o.d"
  "CMakeFiles/bbmg_learner_tests.dir/learner/worked_example_test.cpp.o"
  "CMakeFiles/bbmg_learner_tests.dir/learner/worked_example_test.cpp.o.d"
  "bbmg_learner_tests"
  "bbmg_learner_tests.pdb"
  "bbmg_learner_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_learner_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
