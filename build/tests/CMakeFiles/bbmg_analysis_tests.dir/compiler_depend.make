# Empty compiler generated dependencies file for bbmg_analysis_tests.
# This may be replaced when dependencies are built.
