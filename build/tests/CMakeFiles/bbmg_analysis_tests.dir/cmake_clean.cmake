file(REMOVE_RECURSE
  "CMakeFiles/bbmg_analysis_tests.dir/analysis/compare_test.cpp.o"
  "CMakeFiles/bbmg_analysis_tests.dir/analysis/compare_test.cpp.o.d"
  "CMakeFiles/bbmg_analysis_tests.dir/analysis/conformance_property_test.cpp.o"
  "CMakeFiles/bbmg_analysis_tests.dir/analysis/conformance_property_test.cpp.o.d"
  "CMakeFiles/bbmg_analysis_tests.dir/analysis/conformance_test.cpp.o"
  "CMakeFiles/bbmg_analysis_tests.dir/analysis/conformance_test.cpp.o.d"
  "CMakeFiles/bbmg_analysis_tests.dir/analysis/dependency_graph_test.cpp.o"
  "CMakeFiles/bbmg_analysis_tests.dir/analysis/dependency_graph_test.cpp.o.d"
  "CMakeFiles/bbmg_analysis_tests.dir/analysis/latency_test.cpp.o"
  "CMakeFiles/bbmg_analysis_tests.dir/analysis/latency_test.cpp.o.d"
  "CMakeFiles/bbmg_analysis_tests.dir/baseline/baseline_test.cpp.o"
  "CMakeFiles/bbmg_analysis_tests.dir/baseline/baseline_test.cpp.o.d"
  "CMakeFiles/bbmg_analysis_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/bbmg_analysis_tests.dir/integration/end_to_end_test.cpp.o.d"
  "bbmg_analysis_tests"
  "bbmg_analysis_tests.pdb"
  "bbmg_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
