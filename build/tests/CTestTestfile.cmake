# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bbmg_base_tests[1]_include.cmake")
include("/root/repo/build/tests/bbmg_platform_tests[1]_include.cmake")
include("/root/repo/build/tests/bbmg_learner_tests[1]_include.cmake")
include("/root/repo/build/tests/bbmg_analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/bbmg_robust_tests[1]_include.cmake")
