file(REMOVE_RECURSE
  "CMakeFiles/gm_case_study.dir/gm_case_study.cpp.o"
  "CMakeFiles/gm_case_study.dir/gm_case_study.cpp.o.d"
  "gm_case_study"
  "gm_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
