# Empty compiler generated dependencies file for gm_case_study.
# This may be replaced when dependencies are built.
