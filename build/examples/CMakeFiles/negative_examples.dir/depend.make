# Empty dependencies file for negative_examples.
# This may be replaced when dependencies are built.
