file(REMOVE_RECURSE
  "CMakeFiles/negative_examples.dir/negative_examples.cpp.o"
  "CMakeFiles/negative_examples.dir/negative_examples.cpp.o.d"
  "negative_examples"
  "negative_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negative_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
