file(REMOVE_RECURSE
  "CMakeFiles/brake_deadline.dir/brake_deadline.cpp.o"
  "CMakeFiles/brake_deadline.dir/brake_deadline.cpp.o.d"
  "brake_deadline"
  "brake_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brake_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
