# Empty compiler generated dependencies file for brake_deadline.
# This may be replaced when dependencies are built.
