
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/latency_analysis.cpp" "examples/CMakeFiles/latency_analysis.dir/latency_analysis.cpp.o" "gcc" "examples/CMakeFiles/latency_analysis.dir/latency_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bbmg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/bbmg_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bbmg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bbmg_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/robust/CMakeFiles/bbmg_robust.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bbmg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/bbmg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/bbmg_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bbmg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bbmg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
