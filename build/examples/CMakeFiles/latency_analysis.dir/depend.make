# Empty dependencies file for latency_analysis.
# This may be replaced when dependencies are built.
