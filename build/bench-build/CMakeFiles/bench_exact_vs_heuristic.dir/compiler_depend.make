# Empty compiler generated dependencies file for bench_exact_vs_heuristic.
# This may be replaced when dependencies are built.
