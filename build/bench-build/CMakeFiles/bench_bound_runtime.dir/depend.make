# Empty dependencies file for bench_bound_runtime.
# This may be replaced when dependencies are built.
