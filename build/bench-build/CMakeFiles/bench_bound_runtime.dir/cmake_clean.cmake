file(REMOVE_RECURSE
  "../bench/bench_bound_runtime"
  "../bench/bench_bound_runtime.pdb"
  "CMakeFiles/bench_bound_runtime.dir/bench_bound_runtime.cpp.o"
  "CMakeFiles/bench_bound_runtime.dir/bench_bound_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bound_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
