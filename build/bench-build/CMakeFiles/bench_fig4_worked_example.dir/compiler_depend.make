# Empty compiler generated dependencies file for bench_fig4_worked_example.
# This may be replaced when dependencies are built.
