file(REMOVE_RECURSE
  "CMakeFiles/bbmg_baseline.dir/precedence_miner.cpp.o"
  "CMakeFiles/bbmg_baseline.dir/precedence_miner.cpp.o.d"
  "libbbmg_baseline.a"
  "libbbmg_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
