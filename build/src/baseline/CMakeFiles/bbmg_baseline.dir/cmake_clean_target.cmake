file(REMOVE_RECURSE
  "libbbmg_baseline.a"
)
