# Empty compiler generated dependencies file for bbmg_baseline.
# This may be replaced when dependencies are built.
