
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/precedence_miner.cpp" "src/baseline/CMakeFiles/bbmg_baseline.dir/precedence_miner.cpp.o" "gcc" "src/baseline/CMakeFiles/bbmg_baseline.dir/precedence_miner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bbmg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/bbmg_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bbmg_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
