file(REMOVE_RECURSE
  "libbbmg_common.a"
)
