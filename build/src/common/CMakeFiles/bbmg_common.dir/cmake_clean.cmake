file(REMOVE_RECURSE
  "CMakeFiles/bbmg_common.dir/rng.cpp.o"
  "CMakeFiles/bbmg_common.dir/rng.cpp.o.d"
  "CMakeFiles/bbmg_common.dir/table.cpp.o"
  "CMakeFiles/bbmg_common.dir/table.cpp.o.d"
  "CMakeFiles/bbmg_common.dir/text.cpp.o"
  "CMakeFiles/bbmg_common.dir/text.cpp.o.d"
  "libbbmg_common.a"
  "libbbmg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
