# Empty dependencies file for bbmg_common.
# This may be replaced when dependencies are built.
