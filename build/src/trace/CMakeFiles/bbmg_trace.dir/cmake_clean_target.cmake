file(REMOVE_RECURSE
  "libbbmg_trace.a"
)
