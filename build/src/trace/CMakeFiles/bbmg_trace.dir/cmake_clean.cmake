file(REMOVE_RECURSE
  "CMakeFiles/bbmg_trace.dir/segmentation.cpp.o"
  "CMakeFiles/bbmg_trace.dir/segmentation.cpp.o.d"
  "CMakeFiles/bbmg_trace.dir/serialize.cpp.o"
  "CMakeFiles/bbmg_trace.dir/serialize.cpp.o.d"
  "CMakeFiles/bbmg_trace.dir/stats.cpp.o"
  "CMakeFiles/bbmg_trace.dir/stats.cpp.o.d"
  "CMakeFiles/bbmg_trace.dir/trace.cpp.o"
  "CMakeFiles/bbmg_trace.dir/trace.cpp.o.d"
  "libbbmg_trace.a"
  "libbbmg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
