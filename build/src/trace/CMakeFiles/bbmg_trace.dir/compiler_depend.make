# Empty compiler generated dependencies file for bbmg_trace.
# This may be replaced when dependencies are built.
