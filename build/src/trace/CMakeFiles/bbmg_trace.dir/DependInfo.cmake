
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/segmentation.cpp" "src/trace/CMakeFiles/bbmg_trace.dir/segmentation.cpp.o" "gcc" "src/trace/CMakeFiles/bbmg_trace.dir/segmentation.cpp.o.d"
  "/root/repo/src/trace/serialize.cpp" "src/trace/CMakeFiles/bbmg_trace.dir/serialize.cpp.o" "gcc" "src/trace/CMakeFiles/bbmg_trace.dir/serialize.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/trace/CMakeFiles/bbmg_trace.dir/stats.cpp.o" "gcc" "src/trace/CMakeFiles/bbmg_trace.dir/stats.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/bbmg_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/bbmg_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bbmg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
