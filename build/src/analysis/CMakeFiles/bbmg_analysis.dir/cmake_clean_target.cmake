file(REMOVE_RECURSE
  "libbbmg_analysis.a"
)
