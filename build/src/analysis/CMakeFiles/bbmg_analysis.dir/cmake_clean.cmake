file(REMOVE_RECURSE
  "CMakeFiles/bbmg_analysis.dir/compare.cpp.o"
  "CMakeFiles/bbmg_analysis.dir/compare.cpp.o.d"
  "CMakeFiles/bbmg_analysis.dir/conformance.cpp.o"
  "CMakeFiles/bbmg_analysis.dir/conformance.cpp.o.d"
  "CMakeFiles/bbmg_analysis.dir/dependency_graph.cpp.o"
  "CMakeFiles/bbmg_analysis.dir/dependency_graph.cpp.o.d"
  "CMakeFiles/bbmg_analysis.dir/latency.cpp.o"
  "CMakeFiles/bbmg_analysis.dir/latency.cpp.o.d"
  "libbbmg_analysis.a"
  "libbbmg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
