# Empty compiler generated dependencies file for bbmg_analysis.
# This may be replaced when dependencies are built.
