# Empty dependencies file for bbmg_sim.
# This may be replaced when dependencies are built.
