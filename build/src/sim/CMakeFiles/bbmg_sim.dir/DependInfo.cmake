
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/can_bus.cpp" "src/sim/CMakeFiles/bbmg_sim.dir/can_bus.cpp.o" "gcc" "src/sim/CMakeFiles/bbmg_sim.dir/can_bus.cpp.o.d"
  "/root/repo/src/sim/ecu.cpp" "src/sim/CMakeFiles/bbmg_sim.dir/ecu.cpp.o" "gcc" "src/sim/CMakeFiles/bbmg_sim.dir/ecu.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/bbmg_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/bbmg_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bbmg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/bbmg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bbmg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/bbmg_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
