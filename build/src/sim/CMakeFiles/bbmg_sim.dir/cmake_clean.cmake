file(REMOVE_RECURSE
  "CMakeFiles/bbmg_sim.dir/can_bus.cpp.o"
  "CMakeFiles/bbmg_sim.dir/can_bus.cpp.o.d"
  "CMakeFiles/bbmg_sim.dir/ecu.cpp.o"
  "CMakeFiles/bbmg_sim.dir/ecu.cpp.o.d"
  "CMakeFiles/bbmg_sim.dir/simulator.cpp.o"
  "CMakeFiles/bbmg_sim.dir/simulator.cpp.o.d"
  "libbbmg_sim.a"
  "libbbmg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
