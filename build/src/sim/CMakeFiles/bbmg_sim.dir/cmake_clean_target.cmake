file(REMOVE_RECURSE
  "libbbmg_sim.a"
)
