file(REMOVE_RECURSE
  "CMakeFiles/bbmg_lattice.dir/dependency_matrix.cpp.o"
  "CMakeFiles/bbmg_lattice.dir/dependency_matrix.cpp.o.d"
  "CMakeFiles/bbmg_lattice.dir/dependency_value.cpp.o"
  "CMakeFiles/bbmg_lattice.dir/dependency_value.cpp.o.d"
  "CMakeFiles/bbmg_lattice.dir/matrix_io.cpp.o"
  "CMakeFiles/bbmg_lattice.dir/matrix_io.cpp.o.d"
  "libbbmg_lattice.a"
  "libbbmg_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
