# Empty dependencies file for bbmg_lattice.
# This may be replaced when dependencies are built.
