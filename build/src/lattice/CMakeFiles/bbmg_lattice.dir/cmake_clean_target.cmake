file(REMOVE_RECURSE
  "libbbmg_lattice.a"
)
