
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lattice/dependency_matrix.cpp" "src/lattice/CMakeFiles/bbmg_lattice.dir/dependency_matrix.cpp.o" "gcc" "src/lattice/CMakeFiles/bbmg_lattice.dir/dependency_matrix.cpp.o.d"
  "/root/repo/src/lattice/dependency_value.cpp" "src/lattice/CMakeFiles/bbmg_lattice.dir/dependency_value.cpp.o" "gcc" "src/lattice/CMakeFiles/bbmg_lattice.dir/dependency_value.cpp.o.d"
  "/root/repo/src/lattice/matrix_io.cpp" "src/lattice/CMakeFiles/bbmg_lattice.dir/matrix_io.cpp.o" "gcc" "src/lattice/CMakeFiles/bbmg_lattice.dir/matrix_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bbmg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
