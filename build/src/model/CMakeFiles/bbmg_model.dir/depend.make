# Empty dependencies file for bbmg_model.
# This may be replaced when dependencies are built.
