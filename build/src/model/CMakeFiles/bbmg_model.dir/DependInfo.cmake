
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/behavior.cpp" "src/model/CMakeFiles/bbmg_model.dir/behavior.cpp.o" "gcc" "src/model/CMakeFiles/bbmg_model.dir/behavior.cpp.o.d"
  "/root/repo/src/model/design_truth.cpp" "src/model/CMakeFiles/bbmg_model.dir/design_truth.cpp.o" "gcc" "src/model/CMakeFiles/bbmg_model.dir/design_truth.cpp.o.d"
  "/root/repo/src/model/system_model.cpp" "src/model/CMakeFiles/bbmg_model.dir/system_model.cpp.o" "gcc" "src/model/CMakeFiles/bbmg_model.dir/system_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bbmg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/bbmg_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
