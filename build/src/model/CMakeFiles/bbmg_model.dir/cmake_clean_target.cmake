file(REMOVE_RECURSE
  "libbbmg_model.a"
)
