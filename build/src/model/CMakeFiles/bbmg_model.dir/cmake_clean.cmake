file(REMOVE_RECURSE
  "CMakeFiles/bbmg_model.dir/behavior.cpp.o"
  "CMakeFiles/bbmg_model.dir/behavior.cpp.o.d"
  "CMakeFiles/bbmg_model.dir/design_truth.cpp.o"
  "CMakeFiles/bbmg_model.dir/design_truth.cpp.o.d"
  "CMakeFiles/bbmg_model.dir/system_model.cpp.o"
  "CMakeFiles/bbmg_model.dir/system_model.cpp.o.d"
  "libbbmg_model.a"
  "libbbmg_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
