file(REMOVE_RECURSE
  "libbbmg_core.a"
)
