file(REMOVE_RECURSE
  "CMakeFiles/bbmg_core.dir/candidates.cpp.o"
  "CMakeFiles/bbmg_core.dir/candidates.cpp.o.d"
  "CMakeFiles/bbmg_core.dir/convergence.cpp.o"
  "CMakeFiles/bbmg_core.dir/convergence.cpp.o.d"
  "CMakeFiles/bbmg_core.dir/exact_learner.cpp.o"
  "CMakeFiles/bbmg_core.dir/exact_learner.cpp.o.d"
  "CMakeFiles/bbmg_core.dir/heuristic_learner.cpp.o"
  "CMakeFiles/bbmg_core.dir/heuristic_learner.cpp.o.d"
  "CMakeFiles/bbmg_core.dir/matching.cpp.o"
  "CMakeFiles/bbmg_core.dir/matching.cpp.o.d"
  "CMakeFiles/bbmg_core.dir/online_learner.cpp.o"
  "CMakeFiles/bbmg_core.dir/online_learner.cpp.o.d"
  "CMakeFiles/bbmg_core.dir/post_process.cpp.o"
  "CMakeFiles/bbmg_core.dir/post_process.cpp.o.d"
  "CMakeFiles/bbmg_core.dir/version_space.cpp.o"
  "CMakeFiles/bbmg_core.dir/version_space.cpp.o.d"
  "libbbmg_core.a"
  "libbbmg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
