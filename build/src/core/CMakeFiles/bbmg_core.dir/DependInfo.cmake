
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidates.cpp" "src/core/CMakeFiles/bbmg_core.dir/candidates.cpp.o" "gcc" "src/core/CMakeFiles/bbmg_core.dir/candidates.cpp.o.d"
  "/root/repo/src/core/convergence.cpp" "src/core/CMakeFiles/bbmg_core.dir/convergence.cpp.o" "gcc" "src/core/CMakeFiles/bbmg_core.dir/convergence.cpp.o.d"
  "/root/repo/src/core/exact_learner.cpp" "src/core/CMakeFiles/bbmg_core.dir/exact_learner.cpp.o" "gcc" "src/core/CMakeFiles/bbmg_core.dir/exact_learner.cpp.o.d"
  "/root/repo/src/core/heuristic_learner.cpp" "src/core/CMakeFiles/bbmg_core.dir/heuristic_learner.cpp.o" "gcc" "src/core/CMakeFiles/bbmg_core.dir/heuristic_learner.cpp.o.d"
  "/root/repo/src/core/matching.cpp" "src/core/CMakeFiles/bbmg_core.dir/matching.cpp.o" "gcc" "src/core/CMakeFiles/bbmg_core.dir/matching.cpp.o.d"
  "/root/repo/src/core/online_learner.cpp" "src/core/CMakeFiles/bbmg_core.dir/online_learner.cpp.o" "gcc" "src/core/CMakeFiles/bbmg_core.dir/online_learner.cpp.o.d"
  "/root/repo/src/core/post_process.cpp" "src/core/CMakeFiles/bbmg_core.dir/post_process.cpp.o" "gcc" "src/core/CMakeFiles/bbmg_core.dir/post_process.cpp.o.d"
  "/root/repo/src/core/version_space.cpp" "src/core/CMakeFiles/bbmg_core.dir/version_space.cpp.o" "gcc" "src/core/CMakeFiles/bbmg_core.dir/version_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bbmg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/bbmg_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bbmg_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
