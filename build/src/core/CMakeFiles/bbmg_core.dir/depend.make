# Empty dependencies file for bbmg_core.
# This may be replaced when dependencies are built.
