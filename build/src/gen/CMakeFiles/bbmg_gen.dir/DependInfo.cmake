
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/brake_system.cpp" "src/gen/CMakeFiles/bbmg_gen.dir/brake_system.cpp.o" "gcc" "src/gen/CMakeFiles/bbmg_gen.dir/brake_system.cpp.o.d"
  "/root/repo/src/gen/gm_case_study.cpp" "src/gen/CMakeFiles/bbmg_gen.dir/gm_case_study.cpp.o" "gcc" "src/gen/CMakeFiles/bbmg_gen.dir/gm_case_study.cpp.o.d"
  "/root/repo/src/gen/random_model.cpp" "src/gen/CMakeFiles/bbmg_gen.dir/random_model.cpp.o" "gcc" "src/gen/CMakeFiles/bbmg_gen.dir/random_model.cpp.o.d"
  "/root/repo/src/gen/scenarios.cpp" "src/gen/CMakeFiles/bbmg_gen.dir/scenarios.cpp.o" "gcc" "src/gen/CMakeFiles/bbmg_gen.dir/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bbmg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/bbmg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bbmg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bbmg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/bbmg_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
