# Empty compiler generated dependencies file for bbmg_gen.
# This may be replaced when dependencies are built.
