file(REMOVE_RECURSE
  "CMakeFiles/bbmg_gen.dir/brake_system.cpp.o"
  "CMakeFiles/bbmg_gen.dir/brake_system.cpp.o.d"
  "CMakeFiles/bbmg_gen.dir/gm_case_study.cpp.o"
  "CMakeFiles/bbmg_gen.dir/gm_case_study.cpp.o.d"
  "CMakeFiles/bbmg_gen.dir/random_model.cpp.o"
  "CMakeFiles/bbmg_gen.dir/random_model.cpp.o.d"
  "CMakeFiles/bbmg_gen.dir/scenarios.cpp.o"
  "CMakeFiles/bbmg_gen.dir/scenarios.cpp.o.d"
  "libbbmg_gen.a"
  "libbbmg_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
