file(REMOVE_RECURSE
  "libbbmg_gen.a"
)
