file(REMOVE_RECURSE
  "CMakeFiles/bbmg_robust.dir/fault_injector.cpp.o"
  "CMakeFiles/bbmg_robust.dir/fault_injector.cpp.o.d"
  "CMakeFiles/bbmg_robust.dir/lenient_loader.cpp.o"
  "CMakeFiles/bbmg_robust.dir/lenient_loader.cpp.o.d"
  "CMakeFiles/bbmg_robust.dir/monitor.cpp.o"
  "CMakeFiles/bbmg_robust.dir/monitor.cpp.o.d"
  "CMakeFiles/bbmg_robust.dir/robust_online_learner.cpp.o"
  "CMakeFiles/bbmg_robust.dir/robust_online_learner.cpp.o.d"
  "CMakeFiles/bbmg_robust.dir/sanitizer.cpp.o"
  "CMakeFiles/bbmg_robust.dir/sanitizer.cpp.o.d"
  "libbbmg_robust.a"
  "libbbmg_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbmg_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
