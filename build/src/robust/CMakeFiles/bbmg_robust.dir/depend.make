# Empty dependencies file for bbmg_robust.
# This may be replaced when dependencies are built.
