file(REMOVE_RECURSE
  "libbbmg_robust.a"
)
