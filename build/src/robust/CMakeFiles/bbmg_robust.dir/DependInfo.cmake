
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/robust/fault_injector.cpp" "src/robust/CMakeFiles/bbmg_robust.dir/fault_injector.cpp.o" "gcc" "src/robust/CMakeFiles/bbmg_robust.dir/fault_injector.cpp.o.d"
  "/root/repo/src/robust/lenient_loader.cpp" "src/robust/CMakeFiles/bbmg_robust.dir/lenient_loader.cpp.o" "gcc" "src/robust/CMakeFiles/bbmg_robust.dir/lenient_loader.cpp.o.d"
  "/root/repo/src/robust/monitor.cpp" "src/robust/CMakeFiles/bbmg_robust.dir/monitor.cpp.o" "gcc" "src/robust/CMakeFiles/bbmg_robust.dir/monitor.cpp.o.d"
  "/root/repo/src/robust/robust_online_learner.cpp" "src/robust/CMakeFiles/bbmg_robust.dir/robust_online_learner.cpp.o" "gcc" "src/robust/CMakeFiles/bbmg_robust.dir/robust_online_learner.cpp.o.d"
  "/root/repo/src/robust/sanitizer.cpp" "src/robust/CMakeFiles/bbmg_robust.dir/sanitizer.cpp.o" "gcc" "src/robust/CMakeFiles/bbmg_robust.dir/sanitizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bbmg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bbmg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bbmg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bbmg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/bbmg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/bbmg_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bbmg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
