#include "core/post_process.hpp"

#include <unordered_set>

namespace bbmg {

void weaken_unmet_requirements(Hypothesis& h, const PeriodCandidates& pc) {
  const std::size_t n = h.d.num_tasks();
  for (std::size_t a = 0; a < n; ++a) {
    if (!pc.executed(a)) continue;  // requirements on a are vacuous
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b || pc.executed(b)) continue;
      // a ran, b did not: both "a always determines b" (->, needs b to have
      // executed) and "a always depends on b" (<-, needs b to have
      // executed) are refuted by this period and weakened to their
      // conditional forms.  <-> loses both claims and becomes <->?.
      DepValue v = h.d.at(a, b);
      if (dep_requires_forward(v)) v = dep_weaken_forward_requirement(v);
      if (dep_requires_backward(v)) v = dep_weaken_backward_requirement(v);
      if (v != h.d.at(a, b)) h.d.set(a, b, v);
    }
  }
}

void weaken_possibly_unmet_requirements(Hypothesis& h,
                                        const std::vector<bool>& observed) {
  const std::size_t n = h.d.num_tasks();
  for (std::size_t b = 0; b < n; ++b) {
    if (b < observed.size() && observed[b]) continue;
    for (std::size_t a = 0; a < n; ++a) {
      if (a == b) continue;
      DepValue v = h.d.at(a, b);
      if (dep_requires_forward(v)) v = dep_weaken_forward_requirement(v);
      if (dep_requires_backward(v)) v = dep_weaken_backward_requirement(v);
      if (v != h.d.at(a, b)) h.d.set(a, b, v);
    }
  }
}

void remove_duplicates_and_redundant(std::vector<Hypothesis>& frontier) {
  // Unify equal matrices (assumptions are expected to be cleared already,
  // but equality on Hypothesis covers both fields, so this is safe either
  // way).
  std::unordered_set<std::uint64_t> seen_hashes;
  std::vector<Hypothesis> unique;
  unique.reserve(frontier.size());
  for (auto& h : frontier) {
    const std::uint64_t hash = h.hash();
    if (seen_hashes.contains(hash)) {
      bool dup = false;
      for (const auto& u : unique) {
        if (u.hash() == hash && u == h) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
    }
    seen_hashes.insert(hash);
    unique.push_back(std::move(h));
  }

  // Remove non-minimal elements: h is redundant iff some other (distinct)
  // h' in the set satisfies h' <= h.
  std::vector<bool> redundant(unique.size(), false);
  for (std::size_t i = 0; i < unique.size(); ++i) {
    if (redundant[i]) continue;
    for (std::size_t j = 0; j < unique.size(); ++j) {
      if (i == j || redundant[j]) continue;
      if (unique[j].d.leq(unique[i].d) && unique[j].d != unique[i].d) {
        redundant[i] = true;
        break;
      }
    }
  }

  std::vector<Hypothesis> out;
  out.reserve(unique.size());
  for (std::size_t i = 0; i < unique.size(); ++i) {
    if (!redundant[i]) out.push_back(std::move(unique[i]));
  }
  frontier = std::move(out);
}

void post_process_period(std::vector<Hypothesis>& frontier,
                         const PeriodCandidates& pc) {
  for (auto& h : frontier) {
    weaken_unmet_requirements(h, pc);
    h.used.clear();
  }
  remove_duplicates_and_redundant(frontier);
}

}  // namespace bbmg
