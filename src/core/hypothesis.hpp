// A hypothesis of the version-space learner: a dependency function plus the
// sender->receiver assumptions made so far in the *current* period.
//
// The assumption set enforces the paper's condition 3 (§3.1): between any
// two data-dependent tasks there is at most one message per period, so a
// pair assumed once cannot explain a second message in the same period.
// Assumptions are discarded at every period boundary by the post-processing
// step; only the matrix persists across periods.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.hpp"
#include "core/candidates.hpp"
#include "lattice/dependency_matrix.hpp"

namespace bbmg {

struct Hypothesis {
  DependencyMatrix d;
  DynamicBitset used;  // num_tasks^2 bits; bit s*n+r = pair (s,r) assumed

  Hypothesis() = default;
  explicit Hypothesis(std::size_t num_tasks)
      : d(num_tasks), used(num_tasks * num_tasks) {}
  Hypothesis(DependencyMatrix matrix, DynamicBitset assumptions)
      : d(std::move(matrix)), used(std::move(assumptions)) {}

  /// Minimal generalization admitting a message sent from `s` to `r`
  /// (paper §3.1): d(s,r) is raised just enough to permit a forward
  /// dependency, d(r,s) just enough to permit a backward one, and the pair
  /// is recorded as assumed.
  ///
  /// `history` is the trace-level CoExecutionHistory of the already
  /// completed periods.  It keeps the generalization minimal *and* correct:
  /// raising d(s,r) to a value that newly *requires* determination asserts
  /// "whenever s executes, r executes too" — which any earlier period where
  /// s ran without r refutes, so the requirement is weakened to its
  /// conditional form on the spot.  This is what makes the paper's d81
  /// carry d(t1,t3) = ->? rather than -> when the (t1,t3) message is first
  /// seen in period 2 (t1 ran alone with respect to t3 in period 1), while
  /// d(t3,t1) stays <- (t3 never ran without t1).
  template <class CoExecutionHistory>
  void assume(const CandidatePair& pair, const CoExecutionHistory& history) {
    const std::size_t s = pair.sender.index();
    const std::size_t r = pair.receiver.index();

    const DepValue old_fwd = d.at(s, r);
    DepValue fwd = dep_generalize_permit_forward(old_fwd);
    if (fwd != old_fwd && dep_requires_forward(fwd) &&
        history.ran_without(s, r)) {
      fwd = dep_weaken_forward_requirement(fwd);
    }
    d.set(s, r, fwd);

    const DepValue old_bwd = d.at(r, s);
    DepValue bwd = dep_generalize_permit_backward(old_bwd);
    if (bwd != old_bwd && dep_requires_backward(bwd) &&
        history.ran_without(r, s)) {
      bwd = dep_weaken_backward_requirement(bwd);
    }
    d.set(r, s, bwd);

    used.set(pair.pair_index);
  }

  [[nodiscard]] bool pair_used(const CandidatePair& pair) const {
    return used.test(pair.pair_index);
  }

  [[nodiscard]] std::uint64_t hash() const { return used.hash_mix(d.hash()); }

  friend bool operator==(const Hypothesis& a, const Hypothesis& b) {
    return a.d == b.d && a.used == b.used;
  }
};

}  // namespace bbmg
