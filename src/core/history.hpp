// Trace-level co-execution history.
//
// The dependency values ->, <- and <-> claim *determination of execution*
// ("if t1 executes in a period, it always determines the execution of t2",
// Definition 5) — the paper's dependency models deliberately cover indirect
// influence with no explicit message between the two tasks (§2.1).  Such a
// claim is refuted exactly by a period in which the determining/depending
// task ran but the other did not.  CoExecutionHistory records, over the
// periods processed so far, for every ordered pair (a,b) whether a ever
// executed in a period where b did not.  It is a property of the trace
// prefix, shared by all hypotheses.
#pragma once

#include <vector>

#include "core/candidates.hpp"

namespace bbmg {

class CoExecutionHistory {
 public:
  explicit CoExecutionHistory(std::size_t num_tasks)
      : n_(num_tasks), ran_without_(num_tasks * num_tasks, 0) {}

  /// Has task a executed in some recorded period where b did not?
  [[nodiscard]] bool ran_without(std::size_t a, std::size_t b) const {
    return ran_without_[a * n_ + b] != 0;
  }

  /// Fold one completed period into the history.
  void record_period(const PeriodCandidates& pc) {
    for (std::size_t a = 0; a < n_; ++a) {
      if (!pc.executed(a)) continue;
      for (std::size_t b = 0; b < n_; ++b) {
        if (!pc.executed(b)) ran_without_[a * n_ + b] = 1;
      }
    }
  }

  /// Fold one *untrusted* (quarantined) period into the history.
  /// `observed` flags tasks with surviving evidence of execution — under
  /// the robustness layer's fault model this is a subset of the tasks that
  /// truly ran (corruption can hide events but never invents executions of
  /// a task with none).  Conservatively, any task may have run, so for
  /// every unobserved b the pair (a,b) may have been a period where a ran
  /// without b; the claim "a always determines/depends on b" must not be
  /// (re)asserted afterwards.  Over-marking only weakens future
  /// generalizations (monotone up the lattice), never unsoundly
  /// strengthens them.
  void record_untrusted_period(const std::vector<bool>& observed) {
    for (std::size_t b = 0; b < n_; ++b) {
      if (b < observed.size() && observed[b]) continue;
      for (std::size_t a = 0; a < n_; ++a) {
        if (a != b) ran_without_[a * n_ + b] = 1;
      }
    }
  }

  /// Raw cell storage (n*n entries), exposed for the durable snapshot
  /// codec: the history round-trips as a byte array.
  [[nodiscard]] const std::vector<char>& cells() const { return ran_without_; }

  /// Overwrite the history with serialized cells; must hold n*n entries.
  void restore_cells(std::vector<char> cells) {
    if (cells.size() == ran_without_.size()) ran_without_ = std::move(cells);
  }

 private:
  std::size_t n_;
  std::vector<char> ran_without_;
};

}  // namespace bbmg
