// Candidate sender/receiver extraction (paper §3.1).
//
// For a message occurrence m in period i, the set of feasible
// sender/receiver pairs is
//
//   A_m = { (s,r) | s can be m's sender and r can be m's receiver }
//
// Under the control-flow MoC a task sends only after it finishes (§2.1) and
// a task starts only after its required inputs have arrived, so from the
// trace timing alone:
//
//   s can send m    iff  s executed and end(s)   <= rise(m)
//   r can receive m iff  r executed and start(r) >= fall(m)
//
// and s != r.  This reproduces the paper's worked example: in Fig. 2's first
// period (t1 m1 t2 m2 t4), A_m1 = {(t1,t2),(t1,t4)} and
// A_m2 = {(t1,t4),(t2,t4)}.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "trace/trace.hpp"

namespace bbmg {

/// One ordered sender->receiver pair, pre-encoded for bitset indexing.
struct CandidatePair {
  TaskId sender{};
  TaskId receiver{};
  std::uint32_t pair_index{0};  // sender*num_tasks + receiver
};

/// All per-message candidate sets of one period, plus the executed-task
/// mask the period-end post-processing needs.
class PeriodCandidates {
 public:
  PeriodCandidates(const Period& period, std::size_t num_tasks);

  [[nodiscard]] std::size_t num_messages() const { return per_message_.size(); }
  [[nodiscard]] const std::vector<CandidatePair>& candidates(
      std::size_t msg) const {
    return per_message_[msg];
  }
  [[nodiscard]] bool executed(std::size_t task) const {
    return executed_[task];
  }
  [[nodiscard]] const std::vector<bool>& executed_mask() const {
    return executed_;
  }
  [[nodiscard]] std::size_t num_tasks() const { return executed_.size(); }

  /// Total candidate pairs across all messages (branching factor metric).
  [[nodiscard]] std::size_t total_candidates() const;

 private:
  std::vector<std::vector<CandidatePair>> per_message_;
  std::vector<bool> executed_;
};

}  // namespace bbmg
