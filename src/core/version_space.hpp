// Version-space learning with negative examples — the extension the paper
// names in its conclusion: "It could also be extended by version space
// techniques provided negative examples in the execution traces."
//
// With positives only, the paper's learner maintains just the specific
// boundary S (the most specific dependency functions matching every
// observed period).  Given *negative* periods — executions the integrator
// knows are forbidden, e.g. recorded during a fault injection campaign or
// written down from the requirements — full candidate elimination
// (Mitchell 1982) also maintains the general boundary G:
//
//   S = minimal hypotheses matching all positives (the exact learner),
//       pruned to those below some member of G;
//   G = maximal hypotheses matching all positives and rejecting every
//       negative, computed by minimal specialization steps down the
//       lattice.
//
// The version space is { h : exists s in S, g in G with s <= h <= g }.
// If it collapses (either boundary empties), the examples are
// inconsistent with the generalization language — e.g. a negative period
// that every dependency function matching the positives must match.
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/dependency_matrix.hpp"
#include "trace/trace.hpp"

namespace bbmg {

struct VersionSpaceConfig {
  /// Safety cap on the general boundary (specialization can branch).
  std::size_t max_general = 512;
  /// Cap for the exact learner computing the specific boundary.
  std::size_t max_frontier = 1'000'000;
};

struct VersionSpaceResult {
  /// Specific boundary, weight-ascending.
  std::vector<DependencyMatrix> specific;
  /// General boundary, weight-descending.
  std::vector<DependencyMatrix> general;

  [[nodiscard]] bool collapsed() const {
    return specific.empty() || general.empty();
  }

  /// Is h inside the version space (bounded by both boundaries)?
  [[nodiscard]] bool admits(const DependencyMatrix& h) const;

  /// Has the version space narrowed to a single hypothesis?
  [[nodiscard]] bool converged() const {
    return specific.size() == 1 && general.size() == 1 &&
           specific.front() == general.front();
  }
};

/// Run candidate elimination: `positives` drive the specific boundary
/// exactly as in the paper; every period of `negatives` specializes the
/// general boundary just enough to reject it.  Both traces must use the
/// same task set.
[[nodiscard]] VersionSpaceResult learn_version_space(
    const Trace& positives, const Trace& negatives,
    const VersionSpaceConfig& config = {});

}  // namespace bbmg
