// The polynomial heuristic learner (paper §3.2).
//
// Instead of the unbounded hypothesis set, a weight-ordered list with a
// user-specified bound b is maintained.  Each time adding a hypothesis
// would make the list 1-greater than the bound, the two hypotheses with the
// least weights (the two most specific ones) are replaced by their least
// upper bound.  The result is still correct (every returned hypothesis
// matches the whole trace, Theorem 2) but no longer guaranteed to be most
// specific.  With bound 1 the algorithm degenerates to maintaining a single
// running LUB, which by the paper's Lemma equals the LUB of the result set
// at any other bound — our bench_exact_vs_heuristic checks exactly this.
//
// Merge semantics where the paper is silent (see DESIGN.md §2): the merged
// hypothesis's assumption set is the *union* of the parents' sets, and a
// hypothesis that cannot explain a message (every candidate pair already
// assumed) is dropped like in the exact learner unless that would empty the
// list, in which case the list is kept unchanged and the message counted in
// stats.unexplained_messages.
#pragma once

#include "core/learn_result.hpp"
#include "trace/trace.hpp"

namespace bbmg {

struct HeuristicConfig {
  /// Maximum number of hypotheses kept (paper's "bound"); must be >= 1.
  std::size_t bound = 16;
};

[[nodiscard]] LearnResult learn_heuristic(const Trace& trace,
                                          const HeuristicConfig& config = {});

/// Convenience overload.
[[nodiscard]] inline LearnResult learn_heuristic(const Trace& trace,
                                                 std::size_t bound) {
  return learn_heuristic(trace, HeuristicConfig{bound});
}

}  // namespace bbmg
