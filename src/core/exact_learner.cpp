#include "core/exact_learner.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "core/history.hpp"
#include "core/hypothesis.hpp"
#include "core/learner_metrics.hpp"
#include "core/post_process.hpp"
#include "obs/span.hpp"

namespace bbmg {

namespace {

/// Remove every hypothesis dominated by another (see
/// ExactConfig::dominance_pruning).
void prune_dominated(std::vector<Hypothesis>& frontier) {
  std::vector<bool> dead(frontier.size(), false);
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    if (dead[i]) continue;
    for (std::size_t j = 0; j < frontier.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (frontier[j].d.leq(frontier[i].d) &&
          frontier[j].used.is_subset_of(frontier[i].used) &&
          !(frontier[j] == frontier[i])) {
        dead[i] = true;
        break;
      }
    }
  }
  std::size_t w = 0;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    if (!dead[i]) {
      if (w != i) frontier[w] = std::move(frontier[i]);
      ++w;
    }
  }
  frontier.resize(w);
}

/// Insert h into out unless an equal (matrix, assumptions) state exists.
/// `index` maps hash -> indices into out for collision resolution.
void insert_deduped(std::vector<Hypothesis>& out,
                    std::unordered_map<std::uint64_t, std::vector<std::size_t>>& index,
                    Hypothesis h) {
  const std::uint64_t hash = h.hash();
  auto it = index.find(hash);
  if (it != index.end()) {
    for (std::size_t i : it->second) {
      if (out[i] == h) return;
    }
    it->second.push_back(out.size());
  } else {
    index.emplace(hash, std::vector<std::size_t>{out.size()});
  }
  out.push_back(std::move(h));
}

}  // namespace

LearnResult learn_exact(const Trace& trace, const ExactConfig& config) {
  const std::size_t n = trace.num_tasks();
  BBMG_REQUIRE(n >= 1, "trace has no tasks");

  Stopwatch watch;
  LearnResult result;
  LearnStats& stats = result.stats;

  std::vector<Hypothesis> frontier;
  frontier.emplace_back(n);  // D0 = { d_bot }
  stats.peak_hypotheses = 1;

  CoExecutionHistory history(n);

  LearnerMetrics& metrics = LearnerMetrics::get();
  std::size_t period_no = 0;
  for (const auto& period : trace.periods()) {
    ++period_no;
    obs::Span span(&metrics.period_latency_us, "learner.exact_period");
    const std::uint64_t created0 = stats.hypotheses_created;
    std::uint64_t pruned = 0;
    const PeriodCandidates pc(period, n);

    for (std::size_t msg = 0; msg < pc.num_messages(); ++msg) {
      ++stats.messages_processed;
      const auto& cands = pc.candidates(msg);

      std::vector<Hypothesis> next;
      std::unordered_map<std::uint64_t, std::vector<std::size_t>> index;
      next.reserve(frontier.size());

      for (const Hypothesis& h : frontier) {
        for (const CandidatePair& p : cands) {
          if (h.pair_used(p)) continue;
          Hypothesis child = h;
          child.assume(p, history);
          ++stats.hypotheses_created;
          insert_deduped(next, index, std::move(child));
        }
      }

      if (next.empty()) {
        raise("exact learner: hypothesis set became empty at period " +
              std::to_string(period_no) + ", message " + std::to_string(msg) +
              " — the trace violates the MoC assumptions or the "
              "generalization language cannot express it");
      }
      if (next.size() > config.max_frontier) {
        raise("exact learner: hypothesis set exceeded max_frontier (" +
              std::to_string(config.max_frontier) + ") at period " +
              std::to_string(period_no) +
              " — use the heuristic learner for this trace");
      }
      stats.peak_hypotheses = std::max(stats.peak_hypotheses, next.size());
      frontier = std::move(next);
      if (config.dominance_pruning && frontier.size() <= config.dominance_limit) {
        const std::size_t before = frontier.size();
        prune_dominated(frontier);
        pruned += before - frontier.size();
      }
    }

    post_process_period(frontier, pc);
    ++stats.periods_processed;
    stats.frontier_after_period.push_back(frontier.size());
    history.record_period(pc);

    metrics.periods.inc();
    metrics.messages.inc(pc.num_messages());
    metrics.branched.inc(stats.hypotheses_created - created0);
    metrics.pruned.inc(pruned);
    metrics.version_space_peak.set_max(
        static_cast<std::int64_t>(stats.peak_hypotheses));
  }

  result.hypotheses.reserve(frontier.size());
  for (auto& h : frontier) result.hypotheses.push_back(std::move(h.d));
  std::sort(result.hypotheses.begin(), result.hypotheses.end(),
            [](const DependencyMatrix& a, const DependencyMatrix& b) {
              return a.weight() < b.weight();
            });
  stats.wall_seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace bbmg
