#include "core/candidates.hpp"

namespace bbmg {

PeriodCandidates::PeriodCandidates(const Period& period, std::size_t num_tasks)
    : executed_(num_tasks, false) {
  for (const auto& e : period.executions()) executed_[e.task.index()] = true;

  per_message_.reserve(period.messages().size());
  for (const auto& m : period.messages()) {
    std::vector<CandidatePair> pairs;
    for (const auto& s : period.executions()) {
      if (s.end > m.rise) continue;  // sender must have finished before rise
      for (const auto& r : period.executions()) {
        if (r.start < m.fall) continue;  // receiver starts after delivery
        if (s.task == r.task) continue;
        pairs.push_back(CandidatePair{
            s.task, r.task,
            static_cast<std::uint32_t>(s.task.index() * num_tasks +
                                       r.task.index())});
      }
    }
    per_message_.push_back(std::move(pairs));
  }
}

std::size_t PeriodCandidates::total_candidates() const {
  std::size_t n = 0;
  for (const auto& v : per_message_) n += v.size();
  return n;
}

}  // namespace bbmg
