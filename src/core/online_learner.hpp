// Streaming variant of the bounded heuristic learner (§3.2).
//
// The batch API (learn_heuristic) assumes the whole trace is on disk; in
// the intended deployment the logging device delivers periods one at a
// time, and the integrator wants the current dependency model after every
// period — e.g. to stop tracing once the learner has converged, or to
// monitor a live system against the model learned so far.  OnlineLearner
// exposes exactly the per-period step of the algorithm; feeding it every
// period of a trace reproduces learn_heuristic bit for bit (tested).
#pragma once

#include <vector>

#include "core/candidates.hpp"
#include "core/history.hpp"
#include "core/hypothesis.hpp"
#include "core/learn_result.hpp"
#include "trace/binary_codec.hpp"
#include "trace/trace.hpp"

namespace bbmg {

struct OnlineConfig {
  /// Maximum number of hypotheses kept (the paper's bound); >= 1.
  std::size_t bound = 16;
};

class OnlineLearner {
 public:
  OnlineLearner(std::size_t num_tasks, const OnlineConfig& config);

  /// Run one full period of the algorithm: message-guided generalization
  /// over the period's candidate sets, then period-end post-processing.
  void observe_period(const Period& period);

  /// Degradation hook for corrupt input (src/robust): a period arrived but
  /// its events could not be trusted, so no generalization is performed.
  /// `observed` flags tasks with surviving execution evidence (a subset of
  /// the tasks that truly ran under the sanitizer's fault model).  Every
  /// requirement claim d(a,b) whose b is unobserved is weakened to its
  /// conditional form, and the co-execution history is poisoned the same
  /// way so a claim raised by a *later* message stays conditional too —
  /// this is what keeps the learned model from asserting a dependency the
  /// skipped (clean) period would refute.
  void observe_quarantined_period(const std::vector<bool>& observed);

  /// The current hypothesis set (post-processed, weight-ascending).
  [[nodiscard]] const std::vector<Hypothesis>& hypotheses() const {
    return frontier_;
  }
  [[nodiscard]] bool converged() const { return frontier_.size() == 1; }
  [[nodiscard]] const LearnStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t num_tasks() const { return num_tasks_; }

  /// Copy out matrices + stats in the batch-result shape.
  [[nodiscard]] LearnResult snapshot() const;

  // -- durable state codec (src/durable snapshot files) --------------------
  //
  // The full mutable state of the learner — co-execution history, frontier
  // hypotheses with their assumption bitsets, and accumulated stats — as a
  // little-endian byte stream.  decode_state(encode_state(L)) is
  // behaviourally identical to L: feeding both the same subsequent periods
  // yields byte-identical hypothesis sets (the crash-recovery determinism
  // property).  Decoding validates sizes against the binary-codec sanity
  // caps and throws bbmg::Error on malformed input.
  void encode_state(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] static OnlineLearner decode_state(ByteReader& r);

 private:
  std::size_t num_tasks_;
  OnlineConfig config_;
  CoExecutionHistory history_;
  std::vector<Hypothesis> frontier_;
  LearnStats stats_;
};

}  // namespace bbmg
