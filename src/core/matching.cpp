#include "core/matching.hpp"

#include <functional>

#include "common/bitset.hpp"

namespace bbmg {

namespace {

/// Check the universal requirements of d against the period's execution
/// set.  ->, <- and <-> claim determination of *execution* (possibly
/// indirect, §2.1), so a requirement on pair (a,b) is violated exactly when
/// a executed and b did not.  Requirements are assignment-independent.
bool requirements_hold(const DependencyMatrix& d, const PeriodCandidates& pc) {
  const std::size_t n = d.num_tasks();
  for (std::size_t a = 0; a < n; ++a) {
    if (!pc.executed(a)) continue;
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b || pc.executed(b)) continue;
      const DepValue v = d.at(a, b);
      if (dep_requires_forward(v) || dep_requires_backward(v)) return false;
    }
  }
  return true;
}

}  // namespace

bool matches_period(const DependencyMatrix& d, const PeriodCandidates& pc) {
  if (!requirements_hold(d, pc)) return false;

  const std::size_t n = d.num_tasks();
  const std::size_t num_msgs = pc.num_messages();
  DynamicBitset assigned(n * n);

  std::function<bool(std::size_t)> assign = [&](std::size_t msg) -> bool {
    if (msg == num_msgs) return true;
    for (const CandidatePair& p : pc.candidates(msg)) {
      if (assigned.test(p.pair_index)) continue;
      const std::size_t s = p.sender.index();
      const std::size_t r = p.receiver.index();
      if (!dep_permits_forward(d.at(s, r))) continue;
      if (!dep_permits_backward(d.at(r, s))) continue;
      assigned.set(p.pair_index);
      if (assign(msg + 1)) return true;
      assigned.reset(p.pair_index);
    }
    return false;
  };

  return assign(0);
}

bool matches_trace(const DependencyMatrix& d, const Trace& trace) {
  for (const auto& period : trace.periods()) {
    PeriodCandidates pc(period, trace.num_tasks());
    if (!matches_period(d, pc)) return false;
  }
  return true;
}

}  // namespace bbmg
