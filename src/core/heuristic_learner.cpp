#include "core/heuristic_learner.hpp"

#include "common/stopwatch.hpp"
#include "core/online_learner.hpp"

namespace bbmg {

// The batch heuristic is the streaming learner fed with the whole trace;
// all of §3.2's machinery lives in core/online_learner.cpp.
LearnResult learn_heuristic(const Trace& trace, const HeuristicConfig& config) {
  Stopwatch watch;
  OnlineConfig online;
  online.bound = config.bound;
  OnlineLearner learner(trace.num_tasks(), online);
  for (const auto& period : trace.periods()) {
    learner.observe_period(period);
  }
  LearnResult result = learner.snapshot();
  result.stats.wall_seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace bbmg
