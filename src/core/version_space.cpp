#include "core/version_space.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"
#include "core/candidates.hpp"
#include "core/exact_learner.hpp"
#include "core/matching.hpp"

namespace bbmg {

namespace {

/// Direct lower covers of a value in the Fig. 3 lattice (the one-step
/// specializations).
std::vector<DepValue> lower_covers(DepValue v) {
  switch (v) {
    case DepValue::Parallel:
      return {};
    case DepValue::Forward:
    case DepValue::Backward:
      return {DepValue::Parallel};
    case DepValue::MaybeForward:
      return {DepValue::Forward};
    case DepValue::MaybeBackward:
      return {DepValue::Backward};
    case DepValue::Mutual:
      return {DepValue::Forward, DepValue::Backward};
    case DepValue::MaybeMutual:
      return {DepValue::MaybeForward, DepValue::Mutual,
              DepValue::MaybeBackward};
  }
  return {};
}

bool matches_all(const DependencyMatrix& d,
                 const std::vector<PeriodCandidates>& pcs) {
  for (const auto& pc : pcs) {
    if (!matches_period(d, pc)) return false;
  }
  return true;
}

/// Minimal specializations of `g` that reject the negative period while
/// still matching every positive period.  Breadth-first search down the
/// lattice; because the matching function is not monotone along the
/// ||->-> edges (a specialization can introduce a requirement), branches
/// that temporarily fail the positives are still expanded.  `budget`
/// bounds the explored node count; search is best-effort beyond it.
std::vector<DependencyMatrix> specialize_against(
    const DependencyMatrix& g, const PeriodCandidates& negative,
    const std::vector<PeriodCandidates>& positives, std::size_t budget) {
  std::vector<DependencyMatrix> found;
  std::vector<DependencyMatrix> frontier{g};
  std::unordered_set<std::uint64_t> seen{g.hash()};
  const std::size_t n = g.num_tasks();

  while (!frontier.empty() && budget > 0) {
    std::vector<DependencyMatrix> next;
    for (const DependencyMatrix& m : frontier) {
      for (std::size_t a = 0; a < n && budget > 0; ++a) {
        for (std::size_t b = 0; b < n && budget > 0; ++b) {
          if (a == b) continue;
          for (DepValue lower : lower_covers(m.at(a, b))) {
            DependencyMatrix c = m;
            c.set(a, b, lower);
            if (!seen.insert(c.hash()).second) continue;
            if (budget > 0) --budget;
            if (!matches_period(c, negative)) {
              if (matches_all(c, positives)) found.push_back(std::move(c));
              // Rejecting the negative: stop descending this branch.
              // This keeps the found set maximally general along each
              // path; because matching is not monotone in the stipulated
              // lattice, a deeper node below a positive-failing c could in
              // principle match again — the boundary is best-effort there
              // (see header comment).
            } else {
              next.push_back(std::move(c));
            }
          }
        }
      }
    }
    frontier = std::move(next);
  }
  return found;
}

/// Keep only maximal elements (for the general boundary).
void prune_non_maximal(std::vector<DependencyMatrix>& ms) {
  std::vector<DependencyMatrix> out;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < ms.size() && !dominated; ++j) {
      if (i == j) continue;
      if (ms[i].leq(ms[j]) && ms[i] != ms[j]) dominated = true;
      if (ms[i] == ms[j] && j < i) dominated = true;  // dedupe, keep first
    }
    if (!dominated) out.push_back(ms[i]);
  }
  ms = std::move(out);
}

}  // namespace

bool VersionSpaceResult::admits(const DependencyMatrix& h) const {
  bool above_specific = false;
  for (const auto& s : specific) {
    if (s.leq(h)) {
      above_specific = true;
      break;
    }
  }
  if (!above_specific) return false;
  for (const auto& g : general) {
    if (h.leq(g)) return true;
  }
  return false;
}

VersionSpaceResult learn_version_space(const Trace& positives,
                                       const Trace& negatives,
                                       const VersionSpaceConfig& config) {
  BBMG_REQUIRE(positives.num_tasks() == negatives.num_tasks() ||
                   negatives.num_periods() == 0,
               "positive and negative traces must share the task set");
  const std::size_t n = positives.num_tasks();

  VersionSpaceResult result;

  // Specific boundary: the paper's exact learner on the positives.
  ExactConfig exact_cfg;
  exact_cfg.max_frontier = config.max_frontier;
  result.specific = learn_exact(positives, exact_cfg).hypotheses;

  // General boundary: specialize the top against each negative period.
  std::vector<PeriodCandidates> positive_pcs;
  positive_pcs.reserve(positives.num_periods());
  for (const auto& p : positives.periods()) positive_pcs.emplace_back(p, n);

  result.general = {DependencyMatrix::top(n)};
  for (const auto& neg : negatives.periods()) {
    const PeriodCandidates pc(neg, n);
    std::vector<DependencyMatrix> next;
    for (const DependencyMatrix& g : result.general) {
      if (!matches_period(g, pc)) {
        next.push_back(g);
        continue;
      }
      auto specialized = specialize_against(g, pc, positive_pcs, 50000);
      for (auto& s : specialized) next.push_back(std::move(s));
    }
    prune_non_maximal(next);
    if (next.size() > config.max_general) next.resize(config.max_general);
    result.general = std::move(next);
    if (result.general.empty()) break;  // collapsed
  }

  // Candidate elimination on the specific side: a hypothesis that matches
  // a forbidden period is inconsistent regardless of the boundary shape.
  std::vector<PeriodCandidates> negative_pcs;
  negative_pcs.reserve(negatives.num_periods());
  for (const auto& p : negatives.periods()) negative_pcs.emplace_back(p, n);
  std::erase_if(result.specific, [&](const DependencyMatrix& s) {
    for (const auto& pc : negative_pcs) {
      if (matches_period(s, pc)) return true;
    }
    return false;
  });

  // Version-space consistency: every specific member must sit below some
  // general member and vice versa.
  std::erase_if(result.specific, [&](const DependencyMatrix& s) {
    return std::none_of(result.general.begin(), result.general.end(),
                        [&](const DependencyMatrix& g) { return s.leq(g); });
  });
  std::erase_if(result.general, [&](const DependencyMatrix& g) {
    return std::none_of(result.specific.begin(), result.specific.end(),
                        [&](const DependencyMatrix& s) { return s.leq(g); });
  });

  std::sort(result.specific.begin(), result.specific.end(),
            [](const DependencyMatrix& a, const DependencyMatrix& b) {
              return a.weight() < b.weight();
            });
  std::sort(result.general.begin(), result.general.end(),
            [](const DependencyMatrix& a, const DependencyMatrix& b) {
              return a.weight() > b.weight();
            });
  return result;
}

}  // namespace bbmg
