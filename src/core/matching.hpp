// The matching function M : H x I -> bool (paper Definitions 3 and 5).
//
// A dependency function d matches a period i iff there EXISTS an assignment
// of every message occurrence in i to a timing-feasible sender/receiver
// pair such that
//
//   * no ordered pair explains two messages (condition 3 of §3.1);
//   * every assigned pair (s,r) is permitted: d(s,r) permits a forward
//     dependency and d(r,s) permits a backward one;
//   * every *requirement* holds: the values ->, <- and <-> claim
//     determination of execution (possibly through indirect influence,
//     §2.1), so for each ordered pair (a,b) with a executed in i,
//     d(a,b) in {->,<-,<->} implies that b executed in i as well.
//
// This is the reference oracle the property tests use to check Theorem 2
// (correctness: every hypothesis the learners return matches every period)
// and Theorem 3 (completeness/optimality spot checks).  It is a worst-case
// exponential backtracking search, fine for test-sized periods.
#pragma once

#include "core/candidates.hpp"
#include "lattice/dependency_matrix.hpp"
#include "trace/trace.hpp"

namespace bbmg {

/// Does d match the period described by pc?
[[nodiscard]] bool matches_period(const DependencyMatrix& d,
                                  const PeriodCandidates& pc);

/// Does d match every period of the trace?
[[nodiscard]] bool matches_trace(const DependencyMatrix& d, const Trace& trace);

}  // namespace bbmg
