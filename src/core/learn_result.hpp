// Result and instrumentation types shared by both learners.
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/dependency_matrix.hpp"

namespace bbmg {

struct LearnStats {
  std::size_t periods_processed{0};
  std::size_t messages_processed{0};
  /// Largest hypothesis-set size observed at any point during learning
  /// (mid-period; this is what explodes for the exact algorithm).
  std::size_t peak_hypotheses{0};
  /// Total child hypotheses materialized.
  std::uint64_t hypotheses_created{0};
  /// Heuristic only: number of least-upper-bound merges forced by the bound.
  std::uint64_t merges{0};
  /// Messages for which a hypothesis had no unused candidate pair and was
  /// kept unchanged instead of branching (heuristic fallback; see DESIGN.md).
  std::uint64_t unexplained_messages{0};
  /// Hypothesis-set size after post-processing of each period.
  std::vector<std::size_t> frontier_after_period;
  /// Streaming only: periods handed to observe_quarantined_period (corrupt
  /// input skipped by the robustness layer; not counted in
  /// periods_processed).
  std::uint64_t quarantined_periods{0};
  double wall_seconds{0.0};
};

struct LearnResult {
  /// Surviving hypotheses, most specific first (sorted by ascending weight).
  std::vector<DependencyMatrix> hypotheses;
  LearnStats stats;

  /// Did the algorithm converge to a unique most specific solution (§3.1)?
  [[nodiscard]] bool converged() const { return hypotheses.size() == 1; }

  /// The paper's dLUB summarizer: least upper bound of all survivors.
  [[nodiscard]] DependencyMatrix lub() const { return lub_all(hypotheses); }
};

}  // namespace bbmg
