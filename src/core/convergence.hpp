// Convergence detection for streaming learning runs.
//
// §3.1: "If only one hypothesis is left at the end, we say that the
// algorithm converges to a unique most specific solution.  If two or more
// hypotheses are left, more periods in the trace are needed."  In a live
// deployment the dual question matters: how many more periods are worth
// tracing?  ConvergenceDetector watches the summary (LUB) of the current
// hypothesis set and reports stability once it has not changed for a
// configurable window — the natural stopping rule, since the summary is
// monotonically non-decreasing in information until the trace stops
// exhibiting new behaviour.
#pragma once

#include <cstddef>
#include <optional>

#include "core/online_learner.hpp"
#include "lattice/dependency_matrix.hpp"

namespace bbmg {

class ConvergenceDetector {
 public:
  /// `window`: periods of unchanged summary required; `min_periods`: never
  /// report stability earlier than this many periods in total.
  explicit ConvergenceDetector(std::size_t window = 5,
                               std::size_t min_periods = 10)
      : window_(window), min_periods_(min_periods) {}

  /// Feed the summary after one more period; returns true once stable.
  bool observe(const DependencyMatrix& summary);

  [[nodiscard]] bool stable() const { return stable_; }
  [[nodiscard]] std::size_t periods_seen() const { return periods_; }
  /// Periods since the summary last changed.
  [[nodiscard]] std::size_t stable_streak() const { return streak_; }

 private:
  std::size_t window_;
  std::size_t min_periods_;
  std::optional<DependencyMatrix> last_;
  std::size_t periods_{0};
  std::size_t streak_{0};
  bool stable_{false};
};

/// Drive an OnlineLearner over a trace until the detector reports
/// stability (or the trace ends); returns the number of periods consumed.
[[nodiscard]] std::size_t learn_until_stable(OnlineLearner& learner,
                                             const Trace& trace,
                                             ConvergenceDetector& detector);

}  // namespace bbmg
