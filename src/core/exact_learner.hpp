// The precise generalization algorithm (paper §3.1).
//
// Starting from D0 = {d_bot}, each period is processed message by message:
// every hypothesis branches over all timing-feasible, not-yet-assumed
// sender/receiver pairs of the message, generalizing minimally; at the end
// of the period the post-processing weakens unmet requirements, drops
// assumptions, unifies duplicates, and deletes redundant hypotheses.
//
// The set of hypotheses can grow exponentially in the number of messages
// per period (the underlying problem is NP-hard, Theorem 1); identical
// (matrix, assumption-set) states reached through different branch orders
// are unified eagerly to keep realistic traces tractable.  `max_frontier`
// is a hard safety valve: exceeding it throws bbmg::Error rather than
// thrashing.
#pragma once

#include "core/learn_result.hpp"
#include "trace/trace.hpp"

namespace bbmg {

struct ExactConfig {
  /// Abort (throw) if the mid-period hypothesis set exceeds this size.
  std::size_t max_frontier = 4'000'000;

  /// Lossless mid-period pruning beyond the paper: drop hypothesis h1 when
  /// some h2 in the frontier has h2.d <= h1.d AND h2.used ⊆ h1.used.
  /// Every future extension of h1 then has a counterpart extension of h2
  /// that is <= it (the generalization and weakening operators are
  /// monotone in the lattice, and a subset assumption-set can always make
  /// the same assumption), so h1's descendants are exactly the redundant
  /// hypotheses the period-end post-processing would delete anyway.  The
  /// final minimal set is provably unchanged (asserted by property tests);
  /// only the intermediate frontier shrinks.
  bool dominance_pruning = false;
  /// The O(k^2) dominance scan is only applied while the frontier is at
  /// most this large.
  std::size_t dominance_limit = 4096;
};

/// Run the exact learner over the whole trace.  Throws bbmg::Error if the
/// hypothesis set becomes empty (the trace violates the MoC assumptions or
/// the generalization language cannot express it) or if max_frontier is
/// exceeded.
[[nodiscard]] LearnResult learn_exact(const Trace& trace,
                                      const ExactConfig& config = {});

}  // namespace bbmg
