#include "core/convergence.hpp"

namespace bbmg {

bool ConvergenceDetector::observe(const DependencyMatrix& summary) {
  ++periods_;
  if (last_.has_value() && *last_ == summary) {
    ++streak_;
  } else {
    streak_ = 0;
    last_ = summary;
  }
  stable_ = streak_ >= window_ && periods_ >= min_periods_;
  return stable_;
}

std::size_t learn_until_stable(OnlineLearner& learner, const Trace& trace,
                               ConvergenceDetector& detector) {
  std::size_t consumed = 0;
  for (const auto& period : trace.periods()) {
    learner.observe_period(period);
    ++consumed;
    if (detector.observe(learner.snapshot().lub())) break;
  }
  return consumed;
}

}  // namespace bbmg
