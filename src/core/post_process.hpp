// Period-end post-processing shared by the exact and the heuristic learner
// (paper §3.1):
//
//   1. "test conditional dependencies" — every entry that *requires* a
//      dependency which the just-finished period did not exhibit is
//      minimally weakened (-> becomes ->?, <- becomes <-?, <-> becomes
//      <->?).  The test conditions on the row task having executed: a
//      requirement on t1 is vacuous in periods where t1 did not run.
//   2. assumptions are removed (the `used` sets are cleared);
//   3. hypotheses that became equal are unified;
//   4. redundant hypotheses are deleted: d is redundant iff some strictly
//      more specific d' remains in the set (we search for the most
//      specific hypotheses, and every more general one matches whatever
//      the more specific one matches).
#pragma once

#include <vector>

#include "core/candidates.hpp"
#include "core/hypothesis.hpp"

namespace bbmg {

/// Step 1 for a single hypothesis; uses (and does not clear) h.used.
void weaken_unmet_requirements(Hypothesis& h, const PeriodCandidates& pc);

/// Conservative variant of step 1 for a period whose events could not be
/// trusted (quarantined by the robustness layer).  `observed` flags tasks
/// with surviving execution evidence; for every unobserved b the period
/// *may* have refuted any "... always determines/depends on b" claim (the
/// row task may have run while b did not), so all requirement claims in
/// column b are weakened to their conditional forms.  Pure generalization —
/// matching of previously matched periods is preserved.
void weaken_possibly_unmet_requirements(Hypothesis& h,
                                        const std::vector<bool>& observed);

/// Steps 1-4 applied to a whole frontier, in place.  The surviving
/// hypotheses have empty assumption sets.
void post_process_period(std::vector<Hypothesis>& frontier,
                         const PeriodCandidates& pc);

/// Steps 3-4 only (unification + redundancy removal), used by result
/// finalization and by tests.
void remove_duplicates_and_redundant(std::vector<Hypothesis>& frontier);

}  // namespace bbmg
