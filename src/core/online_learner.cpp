#include "core/online_learner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/learner_metrics.hpp"
#include "core/post_process.hpp"
#include "obs/span.hpp"

namespace bbmg {

namespace {

struct Scored {
  Hypothesis h;
  std::uint64_t weight;
};

/// The bounded, weight-ascending hypothesis list of §3.2: adding a
/// hypothesis beyond the bound merges the two least-weight (most specific)
/// members into their least upper bound, with the union of their
/// assumption sets (see DESIGN.md §2 for this choice).
class BoundedList {
 public:
  BoundedList(std::size_t bound, LearnStats& stats)
      : bound_(bound), stats_(stats) {}

  [[nodiscard]] bool empty() const { return items_.empty(); }

  void add(Hypothesis h) {
    Scored scored{std::move(h), 0};
    scored.weight = scored.h.d.weight();
    if (is_duplicate(scored)) return;
    insert_sorted(std::move(scored));
    while (items_.size() > bound_) merge_two_least();
  }

  std::vector<Hypothesis> take() {
    std::vector<Hypothesis> out;
    out.reserve(items_.size());
    for (auto& s : items_) out.push_back(std::move(s.h));
    items_.clear();
    return out;
  }

 private:
  /// Set semantics: duplicates would burn bound slots for nothing (the
  /// exact learner unifies eagerly too).
  [[nodiscard]] bool is_duplicate(const Scored& s) const {
    for (const Scored& x : items_) {
      if (x.weight == s.weight && x.h == s.h) return true;
    }
    return false;
  }

  void insert_sorted(Scored s) {
    auto it = std::upper_bound(
        items_.begin(), items_.end(), s.weight,
        [](std::uint64_t w, const Scored& x) { return w < x.weight; });
    items_.insert(it, std::move(s));
  }

  void merge_two_least() {
    BBMG_ASSERT(items_.size() >= 2, "merge requires two hypotheses");
    Scored a = std::move(items_[0]);
    Scored b = std::move(items_[1]);
    items_.erase(items_.begin(), items_.begin() + 2);
    Hypothesis merged(a.h.d.lub(b.h.d), std::move(a.h.used));
    merged.used.unite(b.h.used);
    ++stats_.merges;
    Scored scored{std::move(merged), 0};
    scored.weight = scored.h.d.weight();
    if (is_duplicate(scored)) return;
    insert_sorted(std::move(scored));
  }

  std::size_t bound_;
  LearnStats& stats_;
  std::vector<Scored> items_;
};

}  // namespace

OnlineLearner::OnlineLearner(std::size_t num_tasks, const OnlineConfig& config)
    : num_tasks_(num_tasks), config_(config), history_(num_tasks) {
  BBMG_REQUIRE(num_tasks >= 1, "learner needs at least one task");
  BBMG_REQUIRE(config.bound >= 1, "heuristic bound must be >= 1");
  frontier_.emplace_back(num_tasks);
  stats_.peak_hypotheses = 1;
}

void OnlineLearner::observe_period(const Period& period) {
  LearnerMetrics& metrics = LearnerMetrics::get();
  obs::Span span(&metrics.period_latency_us, "learner.period");
  // Hot-path accounting stays in the plain LearnStats fields; the global
  // metrics are fed once per period from the stats deltas below.
  const std::uint64_t created0 = stats_.hypotheses_created;
  const std::uint64_t merges0 = stats_.merges;
  const std::uint64_t unexplained0 = stats_.unexplained_messages;
  const PeriodCandidates pc(period, num_tasks_);

  for (std::size_t msg = 0; msg < pc.num_messages(); ++msg) {
    ++stats_.messages_processed;
    const auto& cands = pc.candidates(msg);

    BoundedList list(config_.bound, stats_);
    for (const Hypothesis& h : frontier_) {
      for (const CandidatePair& p : cands) {
        if (h.pair_used(p)) continue;
        Hypothesis child = h;
        child.assume(p, history_);
        ++stats_.hypotheses_created;
        list.add(std::move(child));
      }
    }

    if (list.empty()) {
      // No hypothesis could explain this message (every candidate pair
      // already assumed).  The exact learner fails here; the bounded
      // learner keeps the current list unchanged — conservative, every
      // member remains an upper bound of a matching hypothesis.
      ++stats_.unexplained_messages;
    } else {
      frontier_ = list.take();
    }
    stats_.peak_hypotheses = std::max(stats_.peak_hypotheses, frontier_.size());
  }

  post_process_period(frontier_, pc);
  ++stats_.periods_processed;
  stats_.frontier_after_period.push_back(frontier_.size());
  history_.record_period(pc);

  metrics.periods.inc();
  metrics.messages.inc(pc.num_messages());
  metrics.branched.inc(stats_.hypotheses_created - created0);
  metrics.pruned.inc(stats_.merges - merges0);
  metrics.unexplained.inc(stats_.unexplained_messages - unexplained0);
  metrics.version_space_peak.set_max(
      static_cast<std::int64_t>(stats_.peak_hypotheses));
}

void OnlineLearner::observe_quarantined_period(
    const std::vector<bool>& observed) {
  BBMG_REQUIRE(observed.size() == num_tasks_,
               "observed-task mask must have one entry per task");
  history_.record_untrusted_period(observed);
  for (auto& h : frontier_) weaken_possibly_unmet_requirements(h, observed);
  remove_duplicates_and_redundant(frontier_);
  ++stats_.quarantined_periods;
  LearnerMetrics::get().quarantined.inc();
}

LearnResult OnlineLearner::snapshot() const {
  LearnResult result;
  result.stats = stats_;
  result.hypotheses.reserve(frontier_.size());
  for (const auto& h : frontier_) result.hypotheses.push_back(h.d);
  std::sort(result.hypotheses.begin(), result.hypotheses.end(),
            [](const DependencyMatrix& a, const DependencyMatrix& b) {
              return a.weight() < b.weight();
            });
  return result;
}

}  // namespace bbmg
