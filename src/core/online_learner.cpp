#include "core/online_learner.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "core/learner_metrics.hpp"
#include "core/post_process.hpp"
#include "obs/span.hpp"

namespace bbmg {

namespace {

struct Scored {
  Hypothesis h;
  std::uint64_t weight;
};

/// The bounded, weight-ascending hypothesis list of §3.2: adding a
/// hypothesis beyond the bound merges the two least-weight (most specific)
/// members into their least upper bound, with the union of their
/// assumption sets (see DESIGN.md §2 for this choice).
class BoundedList {
 public:
  BoundedList(std::size_t bound, LearnStats& stats)
      : bound_(bound), stats_(stats) {}

  [[nodiscard]] bool empty() const { return items_.empty(); }

  void add(Hypothesis h) {
    Scored scored{std::move(h), 0};
    scored.weight = scored.h.d.weight();
    if (is_duplicate(scored)) return;
    insert_sorted(std::move(scored));
    while (items_.size() > bound_) merge_two_least();
  }

  std::vector<Hypothesis> take() {
    std::vector<Hypothesis> out;
    out.reserve(items_.size());
    for (auto& s : items_) out.push_back(std::move(s.h));
    items_.clear();
    return out;
  }

 private:
  /// Set semantics: duplicates would burn bound slots for nothing (the
  /// exact learner unifies eagerly too).
  [[nodiscard]] bool is_duplicate(const Scored& s) const {
    for (const Scored& x : items_) {
      if (x.weight == s.weight && x.h == s.h) return true;
    }
    return false;
  }

  void insert_sorted(Scored s) {
    auto it = std::upper_bound(
        items_.begin(), items_.end(), s.weight,
        [](std::uint64_t w, const Scored& x) { return w < x.weight; });
    items_.insert(it, std::move(s));
  }

  void merge_two_least() {
    BBMG_ASSERT(items_.size() >= 2, "merge requires two hypotheses");
    Scored a = std::move(items_[0]);
    Scored b = std::move(items_[1]);
    items_.erase(items_.begin(), items_.begin() + 2);
    Hypothesis merged(a.h.d.lub(b.h.d), std::move(a.h.used));
    merged.used.unite(b.h.used);
    ++stats_.merges;
    Scored scored{std::move(merged), 0};
    scored.weight = scored.h.d.weight();
    if (is_duplicate(scored)) return;
    insert_sorted(std::move(scored));
  }

  std::size_t bound_;
  LearnStats& stats_;
  std::vector<Scored> items_;
};

}  // namespace

OnlineLearner::OnlineLearner(std::size_t num_tasks, const OnlineConfig& config)
    : num_tasks_(num_tasks), config_(config), history_(num_tasks) {
  BBMG_REQUIRE(num_tasks >= 1, "learner needs at least one task");
  BBMG_REQUIRE(config.bound >= 1, "heuristic bound must be >= 1");
  frontier_.emplace_back(num_tasks);
  stats_.peak_hypotheses = 1;
}

void OnlineLearner::observe_period(const Period& period) {
  LearnerMetrics& metrics = LearnerMetrics::get();
  obs::Span span(&metrics.period_latency_us, "learner.period");
  // Hot-path accounting stays in the plain LearnStats fields; the global
  // metrics are fed once per period from the stats deltas below.
  const std::uint64_t created0 = stats_.hypotheses_created;
  const std::uint64_t merges0 = stats_.merges;
  const std::uint64_t unexplained0 = stats_.unexplained_messages;
  const PeriodCandidates pc(period, num_tasks_);

  for (std::size_t msg = 0; msg < pc.num_messages(); ++msg) {
    ++stats_.messages_processed;
    const auto& cands = pc.candidates(msg);

    BoundedList list(config_.bound, stats_);
    for (const Hypothesis& h : frontier_) {
      for (const CandidatePair& p : cands) {
        if (h.pair_used(p)) continue;
        Hypothesis child = h;
        child.assume(p, history_);
        ++stats_.hypotheses_created;
        list.add(std::move(child));
      }
    }

    if (list.empty()) {
      // No hypothesis could explain this message (every candidate pair
      // already assumed).  The exact learner fails here; the bounded
      // learner keeps the current list unchanged — conservative, every
      // member remains an upper bound of a matching hypothesis.
      ++stats_.unexplained_messages;
    } else {
      frontier_ = list.take();
    }
    stats_.peak_hypotheses = std::max(stats_.peak_hypotheses, frontier_.size());
  }

  post_process_period(frontier_, pc);
  ++stats_.periods_processed;
  stats_.frontier_after_period.push_back(frontier_.size());
  history_.record_period(pc);

  metrics.periods.inc();
  metrics.messages.inc(pc.num_messages());
  metrics.branched.inc(stats_.hypotheses_created - created0);
  metrics.pruned.inc(stats_.merges - merges0);
  metrics.unexplained.inc(stats_.unexplained_messages - unexplained0);
  metrics.version_space_peak.set_max(
      static_cast<std::int64_t>(stats_.peak_hypotheses));
}

void OnlineLearner::observe_quarantined_period(
    const std::vector<bool>& observed) {
  BBMG_REQUIRE(observed.size() == num_tasks_,
               "observed-task mask must have one entry per task");
  history_.record_untrusted_period(observed);
  for (auto& h : frontier_) weaken_possibly_unmet_requirements(h, observed);
  remove_duplicates_and_redundant(frontier_);
  ++stats_.quarantined_periods;
  LearnerMetrics::get().quarantined.inc();
}

// -- durable state codec ---------------------------------------------------
//
// Layout (little-endian, validated against the binary-codec sanity caps):
//
//   u32 num_tasks | u32 bound
//   history: num_tasks^2 bytes (0/1 cells)
//   u32 nfrontier x { matrix: n^2 value bytes |
//                     bitset: u32 bits, u32 nwords, nwords x u64 }
//   stats: u64 periods, messages, peak, created, merges, unexplained,
//          quarantined | u64 wall_seconds (IEEE-754 bit pattern)
//   u32 nfap x u32 (frontier size after each period)

namespace {

void encode_matrix_cells(std::vector<std::uint8_t>& out,
                         const DependencyMatrix& m) {
  for (std::size_t a = 0; a < m.num_tasks(); ++a) {
    for (std::size_t b = 0; b < m.num_tasks(); ++b) {
      append_u8(out, static_cast<std::uint8_t>(m.at(a, b)));
    }
  }
}

DependencyMatrix decode_matrix_cells(ByteReader& r, std::size_t n) {
  DependencyMatrix m(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const std::uint8_t v = r.read_u8();
      if (v >= kNumDepValues) {
        raise("learner state: invalid dependency value");
      }
      if (a == b) {
        if (v != static_cast<std::uint8_t>(DepValue::Parallel)) {
          raise("learner state: matrix diagonal must be parallel");
        }
        continue;
      }
      m.set(a, b, static_cast<DepValue>(v));
    }
  }
  return m;
}

/// Hypothesis-set cap for decode: far above any reachable bound, low
/// enough that a garbage count cannot drive a huge allocation.
constexpr std::size_t kMaxStateFrontier = 1u << 20;

}  // namespace

void OnlineLearner::encode_state(std::vector<std::uint8_t>& out) const {
  append_u32(out, static_cast<std::uint32_t>(num_tasks_));
  append_u32(out, static_cast<std::uint32_t>(config_.bound));
  for (const char c : history_.cells()) {
    append_u8(out, static_cast<std::uint8_t>(c != 0 ? 1 : 0));
  }
  append_u32(out, static_cast<std::uint32_t>(frontier_.size()));
  for (const Hypothesis& h : frontier_) {
    encode_matrix_cells(out, h.d);
    append_u32(out, static_cast<std::uint32_t>(h.used.size()));
    append_u32(out, static_cast<std::uint32_t>(h.used.words().size()));
    for (const std::uint64_t w : h.used.words()) append_u64(out, w);
  }
  append_u64(out, stats_.periods_processed);
  append_u64(out, stats_.messages_processed);
  append_u64(out, stats_.peak_hypotheses);
  append_u64(out, stats_.hypotheses_created);
  append_u64(out, stats_.merges);
  append_u64(out, stats_.unexplained_messages);
  append_u64(out, stats_.quarantined_periods);
  std::uint64_t wall_bits = 0;
  static_assert(sizeof(wall_bits) == sizeof(stats_.wall_seconds));
  std::memcpy(&wall_bits, &stats_.wall_seconds, sizeof(wall_bits));
  append_u64(out, wall_bits);
  append_u32(out, static_cast<std::uint32_t>(stats_.frontier_after_period.size()));
  for (const std::size_t f : stats_.frontier_after_period) {
    append_u32(out, static_cast<std::uint32_t>(f));
  }
}

OnlineLearner OnlineLearner::decode_state(ByteReader& r) {
  const std::uint32_t n = r.read_u32();
  if (n == 0 || n > kMaxTasks) raise("learner state: task count out of range");
  const std::uint32_t bound = r.read_u32();
  if (bound == 0) raise("learner state: bound must be >= 1");
  OnlineConfig config;
  config.bound = bound;
  OnlineLearner learner(n, config);

  std::vector<char> cells(static_cast<std::size_t>(n) * n);
  for (char& c : cells) c = static_cast<char>(r.read_u8() != 0 ? 1 : 0);
  learner.history_.restore_cells(std::move(cells));

  const std::uint32_t nfrontier = r.read_u32();
  if (nfrontier == 0 || nfrontier > kMaxStateFrontier) {
    raise("learner state: frontier size out of range");
  }
  learner.frontier_.clear();
  learner.frontier_.reserve(nfrontier);
  const std::size_t bits_expected = static_cast<std::size_t>(n) * n;
  const std::size_t words_expected = (bits_expected + 63) / 64;
  for (std::uint32_t i = 0; i < nfrontier; ++i) {
    DependencyMatrix d = decode_matrix_cells(r, n);
    const std::uint32_t bits = r.read_u32();
    const std::uint32_t nwords = r.read_u32();
    if (bits != bits_expected || nwords != words_expected) {
      raise("learner state: assumption bitset shape mismatch");
    }
    std::vector<std::uint64_t> words;
    words.reserve(nwords);
    for (std::uint32_t w = 0; w < nwords; ++w) words.push_back(r.read_u64());
    learner.frontier_.emplace_back(
        std::move(d), DynamicBitset::from_words(bits, std::move(words)));
  }

  learner.stats_.periods_processed = r.read_u64();
  learner.stats_.messages_processed = r.read_u64();
  learner.stats_.peak_hypotheses = r.read_u64();
  learner.stats_.hypotheses_created = r.read_u64();
  learner.stats_.merges = r.read_u64();
  learner.stats_.unexplained_messages = r.read_u64();
  learner.stats_.quarantined_periods = r.read_u64();
  const std::uint64_t wall_bits = r.read_u64();
  std::memcpy(&learner.stats_.wall_seconds, &wall_bits,
              sizeof(learner.stats_.wall_seconds));
  const std::uint32_t nfap = r.read_u32();
  if (nfap > kMaxPeriods) raise("learner state: period count out of range");
  learner.stats_.frontier_after_period.clear();
  learner.stats_.frontier_after_period.reserve(nfap);
  for (std::uint32_t i = 0; i < nfap; ++i) {
    learner.stats_.frontier_after_period.push_back(r.read_u32());
  }
  return learner;
}

LearnResult OnlineLearner::snapshot() const {
  LearnResult result;
  result.stats = stats_;
  result.hypotheses.reserve(frontier_.size());
  for (const auto& h : frontier_) result.hypotheses.push_back(h.d);
  std::sort(result.hypotheses.begin(), result.hypotheses.end(),
            [](const DependencyMatrix& a, const DependencyMatrix& b) {
              return a.weight() < b.weight();
            });
  return result;
}

}  // namespace bbmg
