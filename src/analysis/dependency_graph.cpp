#include "analysis/dependency_graph.hpp"

#include <vector>

#include "common/error.hpp"

namespace bbmg {

DependencyGraph::DependencyGraph(DependencyMatrix d,
                                 std::vector<std::string> task_names)
    : d_(std::move(d)), names_(std::move(task_names)) {
  BBMG_REQUIRE(names_.size() == d_.num_tasks(),
               "task-name count must match matrix size");
}

TaskId DependencyGraph::by_name(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return TaskId{i};
  }
  raise("unknown task name: '" + name + "'");
}

NodeRole DependencyGraph::role(TaskId t, std::size_t threshold) const {
  std::size_t cond_out = 0;
  std::size_t cond_in = 0;
  for (std::size_t b = 0; b < d_.num_tasks(); ++b) {
    if (b == t.index()) continue;
    const DepValue v = d_.at(t.index(), b);
    if (v == DepValue::MaybeForward) ++cond_out;
    if (v == DepValue::MaybeBackward) ++cond_in;
  }
  const bool disj = cond_out >= threshold;
  const bool conj = cond_in >= threshold;
  if (disj && conj) return NodeRole::Both;
  if (disj) return NodeRole::Disjunction;
  if (conj) return NodeRole::Conjunction;
  return NodeRole::Plain;
}

std::vector<TaskId> DependencyGraph::always_determines(TaskId t) const {
  std::vector<TaskId> out;
  for (std::size_t b = 0; b < d_.num_tasks(); ++b) {
    if (b != t.index() && d_.at(t.index(), b) == DepValue::Forward) {
      out.push_back(TaskId{b});
    }
  }
  return out;
}

std::vector<TaskId> DependencyGraph::always_depends_on(TaskId t) const {
  std::vector<TaskId> out;
  for (std::size_t b = 0; b < d_.num_tasks(); ++b) {
    if (b != t.index() && d_.at(t.index(), b) == DepValue::Backward) {
      out.push_back(TaskId{b});
    }
  }
  return out;
}

bool DependencyGraph::reachable(TaskId a, TaskId b, bool include_maybe) const {
  const std::size_t n = d_.num_tasks();
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> stack{a.index()};
  seen[a.index()] = true;
  while (!stack.empty()) {
    const std::size_t cur = stack.back();
    stack.pop_back();
    if (cur == b.index()) return true;
    for (std::size_t next = 0; next < n; ++next) {
      if (seen[next] || next == cur) continue;
      const DepValue v = d_.at(cur, next);
      const bool edge = (v == DepValue::Forward) ||
                        (include_maybe && v == DepValue::MaybeForward);
      if (edge) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

bool DependencyGraph::must_lead_to(TaskId a, TaskId b) const {
  return a != b && reachable(a, b, /*include_maybe=*/false);
}

bool DependencyGraph::may_influence(TaskId a, TaskId b) const {
  return a != b && reachable(a, b, /*include_maybe=*/true);
}

std::string DependencyGraph::to_dot() const {
  std::string out =
      "digraph dependencies {\n  rankdir=TB;\n  node [shape=circle];\n";
  const std::size_t n = d_.num_tasks();
  for (std::size_t i = 0; i < n; ++i) {
    out += "  \"" + names_[i] + "\"";
    switch (role(TaskId{i})) {
      case NodeRole::Disjunction:
        out += " [style=bold color=blue]";
        break;
      case NodeRole::Conjunction:
        out += " [style=bold color=red]";
        break;
      case NodeRole::Both:
        out += " [style=bold color=purple]";
        break;
      case NodeRole::Plain:
        break;
    }
    out += ";\n";
  }
  // One edge per unordered pair, labelled with both oriented values, solid
  // for unconditional determination, dashed for conditional.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const DepValue ab = d_.at(a, b);
      const DepValue ba = d_.at(b, a);
      if (ab == DepValue::Parallel && ba == DepValue::Parallel) continue;
      const bool must = dep_requires_forward(ab) || dep_requires_backward(ba);
      out += "  \"" + names_[a] + "\" -> \"" + names_[b] + "\" [label=\"" +
             std::string(dep_to_string(ab)) + " / " +
             std::string(dep_to_string(ba)) + "\"" +
             (must ? "" : " style=dashed") + "];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace bbmg
