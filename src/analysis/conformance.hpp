// Conformance checking: does a new execution period conform to a learned
// dependency model?
//
// This is the paper's application side ("The generated models facilitate
// verification of safety of real-time embedded systems", §1): once a
// dependency function has been learned from known-good traces, later
// executions can be checked against it online.  A violation pinpoints
// either a requirement failure (a task ran without the partner its -> / <-
// entry promises) or a permission failure (the period's messages cannot be
// explained by the permitted sender/receiver pairs), i.e. behaviour the
// training traces never exhibited — a regression, a faulty component, or
// an integration change.
#pragma once

#include <string>
#include <vector>

#include "core/candidates.hpp"
#include "lattice/dependency_matrix.hpp"
#include "trace/trace.hpp"

namespace bbmg {

enum class ViolationKind : std::uint8_t {
  /// d(a,b) requires b to execute whenever a does; a ran, b did not.
  UnmetRequirement,
  /// No injective assignment of the period's messages to permitted
  /// sender/receiver pairs exists.
  UnexplainableMessages,
};

struct ConformanceViolation {
  ViolationKind kind{ViolationKind::UnmetRequirement};
  std::size_t period_index{0};
  // UnmetRequirement: the ordered pair whose claim failed.
  TaskId a{};
  TaskId b{};
  DepValue entry{DepValue::Parallel};
  // UnexplainableMessages: index of the first message the backtracking
  // search could not place (a lower bound on where the explanation died).
  std::size_t message_index{0};
};

struct ConformanceReport {
  std::vector<ConformanceViolation> violations;
  std::size_t periods_checked{0};
  /// Periods the caller could not check because ingestion quarantined them
  /// (set by the robustness layer's lenient monitor, src/robust).  A report
  /// with skipped periods still "conforms" — but the caller should surface
  /// the reduced coverage, as live_monitor does.
  std::size_t periods_skipped{0};
  [[nodiscard]] bool conforms() const { return violations.empty(); }
};

/// Check one period; violations are appended with the given period index.
void check_period_conformance(const DependencyMatrix& model,
                              const Period& period, std::size_t num_tasks,
                              std::size_t period_index,
                              std::vector<ConformanceViolation>& out);

/// Check every period of a trace against the model.
[[nodiscard]] ConformanceReport check_conformance(const DependencyMatrix& model,
                                                  const Trace& trace);

/// Human-readable rendering of a violation.
[[nodiscard]] std::string describe_violation(const ConformanceViolation& v,
                                             const std::vector<std::string>& names);

}  // namespace bbmg
