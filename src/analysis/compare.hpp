// Comparing dependency functions: learned vs ground truth, heuristic vs
// exact, learned vs the pessimistic baseline.  Powers the accuracy columns
// of the benches and the E7 ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "lattice/dependency_matrix.hpp"

namespace bbmg {

struct MatrixComparison {
  std::size_t total_pairs{0};  // ordered, off-diagonal
  std::size_t equal{0};
  /// candidate strictly above reference in the lattice (more general).
  std::size_t candidate_more_general{0};
  /// candidate strictly below reference (more specific).
  std::size_t candidate_more_specific{0};
  std::size_t incomparable{0};
  /// candidate >= reference pointwise (soundness direction for a
  /// conservative learner against the exact result).
  bool candidate_geq_reference{false};
  std::uint64_t weight_reference{0};
  std::uint64_t weight_candidate{0};
};

[[nodiscard]] MatrixComparison compare_matrices(
    const DependencyMatrix& reference, const DependencyMatrix& candidate);

/// Ordered pairs that the candidate raised (non-Parallel) while the
/// reference keeps them Parallel — e.g. dependencies the learner found
/// that the design model never states (the paper's t1-t4 and Q-O).
[[nodiscard]] std::vector<std::pair<TaskId, TaskId>> emergent_pairs(
    const DependencyMatrix& reference, const DependencyMatrix& candidate);

}  // namespace bbmg
