#include "analysis/conformance.hpp"

#include <functional>

#include "common/bitset.hpp"

namespace bbmg {

namespace {

/// Deepest message index reached by the injective-assignment search; used
/// to report where an unexplainable period stops being explainable.
struct AssignmentProbe {
  const DependencyMatrix& d;
  const PeriodCandidates& pc;
  DynamicBitset assigned;
  std::size_t deepest = 0;

  AssignmentProbe(const DependencyMatrix& model, const PeriodCandidates& cand)
      : d(model), pc(cand), assigned(model.num_tasks() * model.num_tasks()) {}

  bool assign(std::size_t msg) {
    deepest = std::max(deepest, msg);
    if (msg == pc.num_messages()) return true;
    const std::size_t n = d.num_tasks();
    for (const CandidatePair& p : pc.candidates(msg)) {
      if (assigned.test(p.pair_index)) continue;
      const std::size_t s = p.sender.index();
      const std::size_t r = p.receiver.index();
      if (!dep_permits_forward(d.at(s, r))) continue;
      if (!dep_permits_backward(d.at(r, s))) continue;
      (void)n;
      assigned.set(p.pair_index);
      if (assign(msg + 1)) return true;
      assigned.reset(p.pair_index);
    }
    return false;
  }
};

}  // namespace

void check_period_conformance(const DependencyMatrix& model,
                              const Period& period, std::size_t num_tasks,
                              std::size_t period_index,
                              std::vector<ConformanceViolation>& out) {
  const PeriodCandidates pc(period, num_tasks);

  // Requirement side: assignment-independent.
  for (std::size_t a = 0; a < num_tasks; ++a) {
    if (!pc.executed(a)) continue;
    for (std::size_t b = 0; b < num_tasks; ++b) {
      if (a == b || pc.executed(b)) continue;
      const DepValue v = model.at(a, b);
      if (dep_requires_forward(v) || dep_requires_backward(v)) {
        ConformanceViolation violation;
        violation.kind = ViolationKind::UnmetRequirement;
        violation.period_index = period_index;
        violation.a = TaskId{a};
        violation.b = TaskId{b};
        violation.entry = v;
        out.push_back(violation);
      }
    }
  }

  // Permission side: the messages must be explainable.
  AssignmentProbe probe(model, pc);
  if (!probe.assign(0)) {
    ConformanceViolation violation;
    violation.kind = ViolationKind::UnexplainableMessages;
    violation.period_index = period_index;
    violation.message_index = probe.deepest;
    out.push_back(violation);
  }
}

ConformanceReport check_conformance(const DependencyMatrix& model,
                                    const Trace& trace) {
  ConformanceReport report;
  for (std::size_t p = 0; p < trace.num_periods(); ++p) {
    check_period_conformance(model, trace.periods()[p], trace.num_tasks(), p,
                             report.violations);
  }
  report.periods_checked = trace.num_periods();
  return report;
}

std::string describe_violation(const ConformanceViolation& v,
                               const std::vector<std::string>& names) {
  const std::string where = "period " + std::to_string(v.period_index + 1);
  if (v.kind == ViolationKind::UnmetRequirement) {
    return where + ": d(" + names[v.a.index()] + "," + names[v.b.index()] +
           ") = " + std::string(dep_to_string(v.entry)) + " but " +
           names[v.a.index()] + " executed without " + names[v.b.index()];
  }
  return where + ": messages cannot be explained by the model's permitted "
                 "dependencies (search stalled at message " +
         std::to_string(v.message_index + 1) + ")";
}

}  // namespace bbmg
