// End-to-end latency analysis (experiment E5, paper §3.4).
//
// Without a dependency model, a schedulability analysis must assume every
// higher-priority task on the same ECU can preempt — "assuming that all
// messages and tasks are potentially independent at the system level ...
// is extremely pessimistic" (paper §1, citing Tindell & Clark's holistic
// analysis).  A learned dependency model removes interference that cannot
// happen: if d(i,j) is -> or <- then i and j are ordered by the
// control-flow MoC within every period (one's completion precedes the
// other's start), so j can never preempt i.
//
// Every task runs at most once per period, so the worst-case response time
// of task i is simply
//
//     R_i = C_i + sum of C_j over j in interferers(i)
//
// with interferers(i) = { j on the same ECU, higher priority, not excluded
// by a dependency }.  End-to-end path latency adds the CAN frame times of
// the connecting messages.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "lattice/dependency_matrix.hpp"
#include "model/system_model.hpp"

namespace bbmg {

struct LatencyConfig {
  /// Also exclude interference for conditional dependencies (->?, <-?).
  /// Unsound in general (the dependency does not hold in every period);
  /// exposed for the ablation bench only.
  bool exclude_conditional = false;
  /// Bus bitrate used for frame times on end-to-end paths.
  std::uint64_t bus_bitrate = 500'000;
  bool worst_case_stuffing = false;
};

struct TaskResponse {
  TaskId task{};
  TimeNs wcet{0};
  /// All higher-priority same-ECU tasks interfere.
  TimeNs response_pessimistic{0};
  /// Interference filtered through the dependency model.
  TimeNs response_informed{0};
  /// Tasks whose preemption the dependency model excluded.
  std::vector<TaskId> excluded;
};

/// Per-task worst-case response times under both assumptions.
[[nodiscard]] std::vector<TaskResponse> response_times(
    const SystemModel& model, const DependencyMatrix& learned,
    const LatencyConfig& config = {});

/// Worst-case end-to-end latency of a task chain: sum of the chain tasks'
/// response times plus the worst-case frame time of each connecting design
/// edge.  Consecutive path tasks must be connected by a design edge.
[[nodiscard]] TimeNs path_latency(const SystemModel& model,
                                  const std::vector<TaskResponse>& responses,
                                  const std::vector<TaskId>& path,
                                  bool informed,
                                  const LatencyConfig& config = {});

}  // namespace bbmg
