// Dependency-graph views of a learned dependency function: node
// classification (disjunction / conjunction, §2.1), reachability queries,
// and Graphviz export in the style of the paper's Fig. 5.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "lattice/dependency_matrix.hpp"

namespace bbmg {

enum class NodeRole : std::uint8_t {
  /// Conditionally determines two or more other tasks — it chooses
  /// execution paths (the paper's t1, A, B).
  Disjunction,
  /// Conditionally depends on two or more other tasks — it passively
  /// receives from whichever upstream mode ran (the paper's t4, H, P, Q).
  Conjunction,
  /// Both of the above.
  Both,
  Plain,
};

class DependencyGraph {
 public:
  DependencyGraph(DependencyMatrix d, std::vector<std::string> task_names);

  [[nodiscard]] const DependencyMatrix& matrix() const { return d_; }
  [[nodiscard]] std::size_t num_tasks() const { return d_.num_tasks(); }
  [[nodiscard]] const std::string& name(TaskId t) const {
    return names_[t.index()];
  }
  [[nodiscard]] TaskId by_name(const std::string& name) const;

  [[nodiscard]] DepValue value(TaskId a, TaskId b) const { return d_.at(a, b); }

  /// Classification by the learned matrix: t is a disjunction node if it
  /// conditionally determines (->?) at least `threshold` tasks, a
  /// conjunction node if it conditionally depends on (<-?) at least
  /// `threshold` tasks.
  [[nodiscard]] NodeRole role(TaskId t, std::size_t threshold = 2) const;

  /// Tasks whose execution t always determines: d(t, x) == ->.
  [[nodiscard]] std::vector<TaskId> always_determines(TaskId t) const;
  /// Tasks t always depends on: d(t, x) == <-.
  [[nodiscard]] std::vector<TaskId> always_depends_on(TaskId t) const;

  /// Is b reachable from a over must-determine (->) entries?  With a
  /// learned matrix this proves "whenever a executes, b executes".
  [[nodiscard]] bool must_lead_to(TaskId a, TaskId b) const;

  /// Is b reachable from a over {->, ->?} entries (may-influence)?
  [[nodiscard]] bool may_influence(TaskId a, TaskId b) const;

  /// Graphviz export; one styled edge per unordered pair with any
  /// dependency, annotated with the pair's two oriented values.
  [[nodiscard]] std::string to_dot() const;

 private:
  [[nodiscard]] bool reachable(TaskId a, TaskId b, bool include_maybe) const;

  DependencyMatrix d_;
  std::vector<std::string> names_;
};

}  // namespace bbmg
