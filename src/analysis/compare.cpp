#include "analysis/compare.hpp"

#include "common/error.hpp"

namespace bbmg {

MatrixComparison compare_matrices(const DependencyMatrix& reference,
                                  const DependencyMatrix& candidate) {
  BBMG_REQUIRE(reference.num_tasks() == candidate.num_tasks(),
               "matrix size mismatch");
  const std::size_t n = reference.num_tasks();
  MatrixComparison cmp;
  cmp.weight_reference = reference.weight();
  cmp.weight_candidate = candidate.weight();
  cmp.candidate_geq_reference = reference.leq(candidate);

  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      ++cmp.total_pairs;
      const DepValue r = reference.at(a, b);
      const DepValue c = candidate.at(a, b);
      if (r == c) {
        ++cmp.equal;
      } else if (dep_leq(r, c)) {
        ++cmp.candidate_more_general;
      } else if (dep_leq(c, r)) {
        ++cmp.candidate_more_specific;
      } else {
        ++cmp.incomparable;
      }
    }
  }
  return cmp;
}

std::vector<std::pair<TaskId, TaskId>> emergent_pairs(
    const DependencyMatrix& reference, const DependencyMatrix& candidate) {
  BBMG_REQUIRE(reference.num_tasks() == candidate.num_tasks(),
               "matrix size mismatch");
  std::vector<std::pair<TaskId, TaskId>> out;
  const std::size_t n = reference.num_tasks();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      if (reference.at(a, b) == DepValue::Parallel &&
          candidate.at(a, b) != DepValue::Parallel) {
        out.emplace_back(TaskId{a}, TaskId{b});
      }
    }
  }
  return out;
}

}  // namespace bbmg
