#include "analysis/latency.hpp"

#include "common/error.hpp"
#include "sim/can_frame.hpp"

namespace bbmg {

namespace {

/// Can j ever run concurrently with i, given the learned dependencies?
/// A required dependency in either orientation means the MoC serializes
/// the two tasks within a period (a message chain connects them, and a
/// task only starts after its inputs' senders completed).
bool may_overlap(const DependencyMatrix& d, std::size_t i, std::size_t j,
                 bool exclude_conditional) {
  const DepValue ij = d.at(i, j);
  if (dep_requires_forward(ij) || dep_requires_backward(ij)) return false;
  if (exclude_conditional &&
      (ij == DepValue::MaybeForward || ij == DepValue::MaybeBackward)) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<TaskResponse> response_times(const SystemModel& model,
                                         const DependencyMatrix& learned,
                                         const LatencyConfig& config) {
  BBMG_REQUIRE(learned.num_tasks() == model.num_tasks(),
               "matrix size does not match model");
  const std::size_t n = model.num_tasks();
  std::vector<TaskResponse> out;
  out.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const TaskSpec& ti = model.tasks()[i];
    TaskResponse r;
    r.task = TaskId{i};
    r.wcet = ti.exec_max;
    r.response_pessimistic = ti.exec_max;
    r.response_informed = ti.exec_max;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const TaskSpec& tj = model.tasks()[j];
      const bool higher = tj.ecu == ti.ecu &&
                          (tj.priority > ti.priority ||
                           (tj.priority == ti.priority && j < i));
      if (!higher) continue;
      r.response_pessimistic += tj.exec_max;
      if (may_overlap(learned, i, j, config.exclude_conditional)) {
        r.response_informed += tj.exec_max;
      } else {
        r.excluded.push_back(TaskId{j});
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

TimeNs path_latency(const SystemModel& model,
                    const std::vector<TaskResponse>& responses,
                    const std::vector<TaskId>& path, bool informed,
                    const LatencyConfig& config) {
  BBMG_REQUIRE(!path.empty(), "empty path");
  BBMG_REQUIRE(responses.size() == model.num_tasks(),
               "responses do not cover the model");

  TimeNs total = 0;
  for (std::size_t k = 0; k < path.size(); ++k) {
    const TaskResponse& r = responses[path[k].index()];
    total += informed ? r.response_informed : r.response_pessimistic;
    if (k + 1 == path.size()) break;

    // Find the design edge connecting path[k] -> path[k+1].
    const EdgeSpec* edge = nullptr;
    for (std::size_t ei : model.out_edges(path[k])) {
      if (model.edges()[ei].to == path[k + 1]) {
        edge = &model.edges()[ei];
        break;
      }
    }
    BBMG_REQUIRE(edge != nullptr,
                 "path tasks '" + model.task(path[k]).name + "' and '" +
                     model.task(path[k + 1]).name +
                     "' are not connected by a design edge");
    total += can_frame_time(edge->dlc, config.bus_bitrate,
                            config.worst_case_stuffing);
  }
  return total;
}

}  // namespace bbmg
