// The paper's strawman: with black-box components and no learned model,
// system-level analysis must assume "that all messages and tasks are
// potentially independent at the system level" — every pair may or may not
// depend on each other, i.e. the lattice top everywhere.
#pragma once

#include "lattice/dependency_matrix.hpp"

namespace bbmg {

/// d_top: every ordered pair <->?.  Trivially matches every trace and
/// carries zero information; its weight is the worst possible.
[[nodiscard]] inline DependencyMatrix pessimistic_baseline(
    std::size_t num_tasks) {
  return DependencyMatrix::top(num_tasks);
}

}  // namespace bbmg
