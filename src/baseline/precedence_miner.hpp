// A naive temporal-precedence miner, the kind of ad-hoc analysis an
// engineer might code up instead of the paper's version-space learner.
// Used as a comparison baseline in the ablation bench.
//
// For each ordered pair (a,b):
//   * if a and b never co-executed, or they co-executed with interleaved
//     activity windows, the miner claims || (it cannot see indirect
//     dependencies and does not reason about modes);
//   * if in every co-executed period a's end precedes b's start, it claims
//     a determines b — -> when b ran in every period a did, ->? otherwise —
//     and mirrors <-/<-? on (b,a).
//
// The miner over-claims: consistent temporal order does not imply a data
// dependency (two independent chains on one bus are always ordered if
// their priorities are), and it under-claims conditional relations hidden
// by scheduling noise.  compare_matrices against the learner quantifies
// both failure modes.
#pragma once

#include "lattice/dependency_matrix.hpp"
#include "trace/trace.hpp"

namespace bbmg {

[[nodiscard]] DependencyMatrix mine_precedence(const Trace& trace);

}  // namespace bbmg
