#include "baseline/precedence_miner.hpp"

namespace bbmg {

DependencyMatrix mine_precedence(const Trace& trace) {
  const std::size_t n = trace.num_tasks();

  // co[a][b]       - periods where both executed
  // ordered[a][b]  - periods where both executed and end(a) <= start(b)
  // a_only[a][b]   - periods where a executed and b did not
  std::vector<std::size_t> co(n * n, 0);
  std::vector<std::size_t> ordered(n * n, 0);
  std::vector<std::size_t> a_only(n * n, 0);

  for (const auto& period : trace.periods()) {
    for (const auto& ea : period.executions()) {
      const std::size_t a = ea.task.index();
      for (std::size_t b = 0; b < n; ++b) {
        if (b == a) continue;
        const TaskExecution* eb = period.execution_of(TaskId{b});
        if (eb == nullptr) {
          ++a_only[a * n + b];
        } else {
          ++co[a * n + b];
          if (ea.end <= eb->start) ++ordered[a * n + b];
        }
      }
    }
  }

  DependencyMatrix d(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const std::size_t idx = a * n + b;
      if (co[idx] == 0 || ordered[idx] != co[idx]) continue;
      // a consistently finished before b started whenever both ran.
      const DepValue fwd =
          (a_only[idx] == 0) ? DepValue::Forward : DepValue::MaybeForward;
      d.set(a, b, dep_lub(d.at(a, b), fwd));
      const DepValue bwd = (a_only[b * n + a] == 0) ? DepValue::Backward
                                                    : DepValue::MaybeBackward;
      d.set(b, a, dep_lub(d.at(b, a), bwd));
    }
  }
  return d;
}

}  // namespace bbmg
