#include "robust/lenient_loader.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "common/text.hpp"

namespace bbmg {

std::string IngestReport::summary() const {
  std::ostringstream oss;
  oss << kept_periods.size() << "/" << periods_seen << " periods ingested";
  if (!quarantined_periods.empty()) {
    oss << " (" << quarantined_periods.size() << " quarantined)";
  }
  oss << ", " << repairs << (repairs == 1 ? " repair" : " repairs");
  oss << ", " << diagnostics.size()
      << (diagnostics.size() == 1 ? " bad line" : " bad lines");
  return oss.str();
}

IngestReport read_trace_lenient(std::istream& is,
                                const SanitizeConfig& config) {
  IngestReport rep;
  std::string line;
  std::size_t line_no = 0;

  auto next_meaningful = [&](std::vector<std::string>& toks) -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      const auto trimmed = trim(line);
      if (trimmed.empty() || trimmed.front() == '#') continue;
      toks = split_ws(trimmed);
      return true;
    }
    return false;
  };
  // Token-addressed faults pass the 0-based index of the offending token;
  // whole-line faults default to column 1 (same `line:col` convention as
  // the strict reader's diagnostics).
  auto diag = [&](std::string message, std::size_t col = 1) {
    rep.diagnostics.push_back(
        LineDiagnostic{line_no, col, std::move(message)});
  };
  auto diag_at_token = [&](std::string message, std::size_t token_index) {
    diag(std::move(message), token_col(line, token_index));
  };

  // The two header lines are the one thing we cannot recover from: without
  // the task set, no event line can be interpreted.
  std::vector<std::string> toks;
  if (!next_meaningful(toks) || toks.size() != 2 ||
      toks[0] != "trace-version" || toks[1] != "1") {
    diag("missing 'trace-version 1' header");
    rep.lines_seen = line_no;
    return rep;
  }
  if (!next_meaningful(toks) || toks.size() < 2 || toks[0] != "tasks") {
    diag("expected 'tasks <name>...' header");
    rep.lines_seen = line_no;
    return rep;
  }
  const std::vector<std::string> names(toks.begin() + 1, toks.end());
  rep.header_ok = true;

  auto task_id = [&](const std::string& name) -> std::optional<TaskId> {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return TaskId{i};
    }
    return std::nullopt;
  };
  auto parse_time_opt = [&](const std::string& tok) -> std::optional<TimeNs> {
    std::uint64_t v = 0;
    if (!parse_u64(tok, v)) return std::nullopt;
    return v;
  };

  // Collect raw periods, skipping unparseable lines; structural damage
  // (nested period, truncated file) closes the current raw period and lets
  // the sanitizer judge it.
  std::vector<std::vector<Event>> raw;
  std::vector<Event> current;
  current.reserve(64);
  bool in_period = false;
  while (next_meaningful(toks)) {
    const std::string& kw = toks[0];
    if (kw == "period") {
      if (in_period) {
        diag("nested 'period' (previous period closed implicitly)");
        raw.push_back(std::move(current));
        current.clear();
        current.reserve(64);
      }
      in_period = true;
    } else if (kw == "end-period") {
      if (!in_period) {
        diag("'end-period' without 'period'");
        continue;
      }
      raw.push_back(std::move(current));
      current.clear();
      current.reserve(64);
      in_period = false;
    } else if (kw == "start" || kw == "end") {
      if (!in_period) {
        diag("task event outside a period");
        continue;
      }
      if (toks.size() != 3) {
        diag("bad task event");
        continue;
      }
      const auto t = task_id(toks[1]);
      if (!t) {
        diag_at_token("unknown task '" + toks[1] + "'", 1);
        continue;
      }
      const auto time = parse_time_opt(toks[2]);
      if (!time) {
        diag_at_token("bad time '" + toks[2] + "'", 2);
        continue;
      }
      current.push_back(kw == "start" ? Event::task_start(*time, *t)
                                      : Event::task_end(*time, *t));
    } else if (kw == "rise" || kw == "fall") {
      if (!in_period) {
        diag("message event outside a period");
        continue;
      }
      if (toks.size() != 3) {
        diag("bad message event");
        continue;
      }
      std::uint64_t can_id = 0;
      if (!parse_u64(toks[1], can_id)) {
        diag_at_token("bad can id '" + toks[1] + "'", 1);
        continue;
      }
      const auto time = parse_time_opt(toks[2]);
      if (!time) {
        diag_at_token("bad time '" + toks[2] + "'", 2);
        continue;
      }
      current.push_back(kw == "rise"
                            ? Event::msg_rise(*time, static_cast<CanId>(can_id))
                            : Event::msg_fall(*time,
                                              static_cast<CanId>(can_id)));
    } else {
      diag("unknown keyword '" + kw + "'");
    }
  }
  if (in_period) {
    diag("trace ended inside a period (truncated file)");
    raw.push_back(std::move(current));
  }
  rep.lines_seen = line_no;
  rep.periods_seen = raw.size();

  const TraceSanitizer sanitizer(names, config);
  SanitizeResult sr = sanitizer.sanitize(raw);
  rep.trace = std::move(sr.trace);
  rep.kept_periods = std::move(sr.kept);
  rep.quarantined_periods = std::move(sr.quarantined);
  rep.quarantined_observed = std::move(sr.quarantined_observed);
  rep.defects = std::move(sr.defects);
  rep.repairs = sr.repairs;
  return rep;
}

IngestReport ingest_trace_string(const std::string& text,
                                 const SanitizeConfig& config) {
  std::istringstream iss(text);
  return read_trace_lenient(iss, config);
}

IngestReport load_trace_file_lenient(const std::string& path,
                                     const SanitizeConfig& config) {
  std::ifstream ifs(path);
  if (!ifs.good()) {
    IngestReport rep;
    rep.diagnostics.push_back(
        LineDiagnostic{0, 1, "cannot open trace file: " + path});
    return rep;
  }
  return read_trace_lenient(ifs, config);
}

}  // namespace bbmg
