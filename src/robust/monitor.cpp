#include "robust/monitor.hpp"

#include <sstream>

namespace bbmg {

std::string RobustConformanceReport::summary() const {
  std::ostringstream oss;
  oss << report.periods_checked << " periods checked, "
      << report.violations.size()
      << (report.violations.size() == 1 ? " violation" : " violations");
  if (report.periods_skipped > 0) {
    oss << ", " << report.periods_skipped << " skipped (quarantined)";
  }
  if (repairs > 0) oss << ", " << repairs << " repairs";
  oss << "; ingest health: " << health_state_name(health);
  return oss.str();
}

RobustConformanceReport check_conformance_lenient(
    const DependencyMatrix& model,
    const std::vector<std::string>& task_names,
    const std::vector<std::vector<Event>>& raw_periods,
    const RobustConfig& config) {
  RobustConformanceReport out;
  const TraceSanitizer sanitizer(task_names, config.sanitize);
  const SanitizeResult sr = sanitizer.sanitize(raw_periods);
  out.repairs = sr.repairs;
  out.defects = sr.defects;

  const std::size_t num_tasks = task_names.size();
  for (std::size_t i = 0; i < sr.trace.num_periods(); ++i) {
    // Report violations under the period's *raw stream* index so an
    // operator can line the alarm up with the device log.
    check_period_conformance(model, sr.trace.periods()[i], num_tasks,
                             sr.kept[i], out.report.violations);
    ++out.report.periods_checked;
  }
  out.report.periods_skipped = sr.quarantined.size();

  const std::size_t seen = sr.periods_seen();
  const double rate = sr.quarantine_rate();
  if (seen >= config.min_periods_for_health &&
      rate >= config.failed_threshold) {
    out.health = HealthState::Failed;
  } else if (seen >= config.min_periods_for_health &&
             rate >= config.degraded_threshold) {
    out.health = HealthState::Degraded;
  } else {
    out.health = HealthState::OK;
  }
  return out;
}

}  // namespace bbmg
