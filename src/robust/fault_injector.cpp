#include "robust/fault_injector.hpp"

#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "robust/sanitizer.hpp"

namespace bbmg {

FaultSpec FaultSpec::uniform(double total_rate, std::uint64_t seed) {
  FaultSpec spec;
  const double each = total_rate / 5.0;
  spec.drop_rate = each;
  spec.duplicate_rate = each;
  spec.reorder_rate = each;
  spec.corrupt_id_rate = each;
  spec.perturb_rate = each;
  spec.seed = seed;
  return spec;
}

std::size_t InjectionResult::periods_touched() const {
  std::size_t n = 0;
  for (const bool t : period_touched) n += t ? 1 : 0;
  return n;
}

FaultInjector::FaultInjector(const FaultSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  auto check_rate = [](double r, const char* name) {
    BBMG_REQUIRE(r >= 0.0 && r <= 1.0,
                 std::string("fault rate out of [0,1]: ") + name);
  };
  check_rate(spec.drop_rate, "drop_rate");
  check_rate(spec.duplicate_rate, "duplicate_rate");
  check_rate(spec.reorder_rate, "reorder_rate");
  check_rate(spec.corrupt_id_rate, "corrupt_id_rate");
  check_rate(spec.perturb_rate, "perturb_rate");
  check_rate(spec.truncate_rate, "truncate_rate");
}

InjectionResult FaultInjector::corrupt(const Trace& clean) {
  return corrupt_raw(to_raw_periods(clean));
}

InjectionResult FaultInjector::corrupt_raw(
    const std::vector<std::vector<Event>>& periods) {
  InjectionResult res;
  res.periods.reserve(periods.size());
  res.period_touched.assign(periods.size(), false);

  for (std::size_t p = 0; p < periods.size(); ++p) {
    const std::vector<Event>& in = periods[p];
    std::size_t faults_before = res.faults_injected;
    std::vector<Event> out;
    out.reserve(in.size() + 2);

    // Truncation first: everything past a random cut never reached disk.
    std::size_t limit = in.size();
    if (spec_.truncate_rate > 0.0 && !in.empty() &&
        rng_.next_bool(spec_.truncate_rate)) {
      limit = static_cast<std::size_t>(rng_.next_below(in.size()));
      ++res.faults_injected;
    }

    for (std::size_t i = 0; i < limit; ++i) {
      Event e = in[i];
      if (spec_.drop_rate > 0.0 && rng_.next_bool(spec_.drop_rate)) {
        ++res.faults_injected;
        continue;
      }
      if (spec_.perturb_rate > 0.0 && rng_.next_bool(spec_.perturb_rate)) {
        const TimeNs delta =
            spec_.perturb_max == 0
                ? 0
                : static_cast<TimeNs>(rng_.next_below(spec_.perturb_max + 1));
        if (rng_.next_bool(0.5)) {
          e.time += delta;
        } else {
          e.time = e.time > delta ? e.time - delta : 0;
        }
        ++res.faults_injected;
      }
      if ((e.kind == EventKind::MsgRise || e.kind == EventKind::MsgFall) &&
          spec_.corrupt_id_rate > 0.0 && rng_.next_bool(spec_.corrupt_id_rate)) {
        // Flip to a random 11-bit id distinct from the original.
        CanId id = static_cast<CanId>(rng_.next_below(0x800));
        if (id == e.can_id) id = (id + 1) & 0x7ff;
        e.can_id = id;
        ++res.faults_injected;
      }
      out.push_back(e);
      if (spec_.duplicate_rate > 0.0 && rng_.next_bool(spec_.duplicate_rate)) {
        out.push_back(e);
        ++res.faults_injected;
      }
    }

    if (spec_.reorder_rate > 0.0) {
      for (std::size_t i = 0; i + 1 < out.size(); ++i) {
        if (rng_.next_bool(spec_.reorder_rate)) {
          std::swap(out[i], out[i + 1]);
          ++res.faults_injected;
        }
      }
    }

    res.period_touched[p] = res.faults_injected != faults_before;
    res.periods.push_back(std::move(out));
  }
  return res;
}

void write_raw_trace(std::ostream& os,
                     const std::vector<std::string>& task_names,
                     const std::vector<std::vector<Event>>& periods) {
  os << "trace-version 1\n";
  os << "tasks";
  for (const auto& name : task_names) os << ' ' << name;
  os << '\n';
  for (const auto& period : periods) {
    os << "period\n";
    for (const Event& e : period) {
      switch (e.kind) {
        case EventKind::TaskStart:
          os << "start " << task_names[e.task.index()] << ' ' << e.time
             << '\n';
          break;
        case EventKind::TaskEnd:
          os << "end " << task_names[e.task.index()] << ' ' << e.time << '\n';
          break;
        case EventKind::MsgRise:
          os << "rise " << e.can_id << ' ' << e.time << '\n';
          break;
        case EventKind::MsgFall:
          os << "fall " << e.can_id << ' ' << e.time << '\n';
          break;
      }
    }
    os << "end-period\n";
  }
}

std::string raw_trace_to_string(
    const std::vector<std::string>& task_names,
    const std::vector<std::vector<Event>>& periods) {
  std::ostringstream oss;
  write_raw_trace(oss, task_names, periods);
  return oss.str();
}

}  // namespace bbmg
