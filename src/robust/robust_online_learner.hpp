// Fault-tolerant trace ingestion, layer 2: a degradation-aware wrapper
// around the streaming learner (core/online_learner.hpp).  Raw periods from
// the logging device flow through the TraceSanitizer; sanitized periods
// feed the learner, quarantined ones are skipped — but not silently:
//
//  * the learner's co-execution history and current hypotheses are
//    conservatively weakened against the quarantined period's observed-task
//    mask (OnlineLearner::observe_quarantined_period), so the learned model
//    never asserts an unconditional dependency that the skipped clean
//    period could refute (the soundness property bench_robustness and the
//    fault-injection tests check);
//  * a health state (OK / DEGRADED / FAILED, by quarantine-rate thresholds)
//    is tracked and exposed, so a conformance monitor can report "model
//    learned from 97% of periods, 3% quarantined" instead of crashing —
//    or stop trusting the model altogether when ingestion has failed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/online_learner.hpp"
#include "robust/sanitizer.hpp"

namespace bbmg {

enum class HealthState : std::uint8_t {
  OK,        // quarantine rate below the degraded threshold
  Degraded,  // elevated quarantine rate; model still usable, coverage down
  Failed,    // most input is being quarantined; do not trust the model
};

[[nodiscard]] std::string_view health_state_name(HealthState s);

/// Everything a consumer needs to publish the learner's state at one
/// instant: the model (hypotheses + stats), the health verdict, and the
/// ingestion accounting.  This is the unit src/serve copies out per period
/// (copy-on-snapshot) and serves to queries — an immutable value, detached
/// from the learner that produced it.
struct RobustSnapshot {
  LearnResult result;
  HealthState health{HealthState::OK};
  std::size_t periods_seen{0};
  std::size_t periods_learned{0};
  std::size_t periods_quarantined{0};
  std::size_t repairs{0};
};

struct RobustConfig {
  OnlineConfig online;
  SanitizeConfig sanitize;
  /// Quarantine-rate thresholds for the health state.
  double degraded_threshold{0.05};
  double failed_threshold{0.50};
  /// Health stays OK until this many periods have been seen (a single
  /// quarantined period among the first few is not a trend).
  std::size_t min_periods_for_health{8};
};

class RobustOnlineLearner {
 public:
  explicit RobustOnlineLearner(std::vector<std::string> task_names,
                               RobustConfig config = {});

  /// Sanitize one raw period and either learn from it or quarantine it.
  /// Returns true iff the period was learned from.  Never throws on
  /// corrupt input (policy Repair/Quarantine); a defensive catch degrades
  /// internal surprises to a quarantine as well.
  bool observe_raw_period(const std::vector<Event>& events);

  /// Feed a pre-validated period, bypassing the sanitizer.
  void observe_clean_period(const Period& period);

  [[nodiscard]] HealthState health() const;
  [[nodiscard]] double quarantine_rate() const;
  [[nodiscard]] std::size_t periods_seen() const { return seen_; }
  [[nodiscard]] std::size_t periods_learned() const {
    return seen_ - quarantined_;
  }
  [[nodiscard]] std::size_t periods_quarantined() const {
    return quarantined_;
  }
  [[nodiscard]] std::size_t repairs() const { return repairs_; }
  [[nodiscard]] const std::vector<Defect>& defects() const {
    return defects_;
  }
  [[nodiscard]] const OnlineLearner& learner() const { return learner_; }
  [[nodiscard]] const RobustConfig& config() const { return config_; }

  /// Copy out matrices + stats in the batch-result shape (includes the
  /// quarantined_periods stat).  Soundness note (DESIGN.md "Noise model &
  /// degradation semantics"): every period the sanitizer *flags* is either
  /// repaired execution-faithfully or quarantined with conservative
  /// weakening + history poisoning, so no claim refuted by a flagged clean
  /// period survives.  The residual blind spot is corruption below the
  /// sanitizer's detection floor — e.g. both edges of one execution
  /// silently dropped in an otherwise clean period — whose probability is
  /// quadratic in the per-event fault rate.
  [[nodiscard]] LearnResult snapshot() const { return learner_.snapshot(); }

  /// snapshot() plus health and quarantine accounting in one consistent
  /// copy; the serve layer's publication hook.
  [[nodiscard]] RobustSnapshot full_snapshot() const;

  /// One-line operator-facing account, e.g.
  /// "model learned from 97.0% of periods, 3.0% quarantined
  ///  (1 period, 4 repairs; health: OK)".
  [[nodiscard]] std::string health_summary() const;

  // -- durable state codec (src/durable snapshot files) --------------------
  //
  // Ingestion accounting, the defect log, and the wrapped learner's full
  // state as a little-endian byte stream.  decode_state restores a learner
  // that continues byte-identically to the encoded one; the sanitizer is
  // stateless and is rebuilt from (task_names, config).  Throws
  // bbmg::Error on malformed input.
  void encode_state(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] static RobustOnlineLearner decode_state(
      std::vector<std::string> task_names, const RobustConfig& config,
      ByteReader& r);

 private:
  /// Count a health-state change into the transition metrics (called after
  /// every raw period; no-op while the state is stable).
  void note_health_transition();

  RobustConfig config_;
  TraceSanitizer sanitizer_;
  OnlineLearner learner_;
  HealthState last_health_{HealthState::OK};
  std::size_t seen_{0};
  std::size_t quarantined_{0};
  std::size_t repairs_{0};
  std::vector<Defect> defects_;
};

}  // namespace bbmg
