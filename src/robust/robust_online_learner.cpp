#include "robust/robust_online_learner.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "robust/robust_metrics.hpp"

namespace bbmg {

std::string_view health_state_name(HealthState s) {
  switch (s) {
    case HealthState::OK:
      return "OK";
    case HealthState::Degraded:
      return "DEGRADED";
    case HealthState::Failed:
      return "FAILED";
  }
  return "?";
}

RobustOnlineLearner::RobustOnlineLearner(std::vector<std::string> task_names,
                                         RobustConfig config)
    : config_(config),
      sanitizer_(std::move(task_names), config.sanitize),
      learner_(sanitizer_.task_names().size(), config.online) {
  BBMG_REQUIRE(config_.degraded_threshold <= config_.failed_threshold,
               "degraded threshold must not exceed failed threshold");
}

bool RobustOnlineLearner::observe_raw_period(const std::vector<Event>& events) {
  RobustMetrics& metrics = RobustMetrics::get();
  SanitizedPeriod sp = sanitizer_.sanitize_period(events, seen_);
  ++seen_;
  repairs_ += sp.repairs;
  defects_.insert(defects_.end(), sp.defects.begin(), sp.defects.end());
  metrics.periods.inc();
  metrics.repairs.inc(sp.repairs);
  for (const Defect& d : sp.defects) metrics.defect(d.kind).inc();
  if (!sp.quarantined()) {
    try {
      learner_.observe_period(*sp.period);
      note_health_transition();
      return true;
    } catch (const Error&) {
      // A repaired period the learner still chokes on: degrade, don't die.
      defects_.push_back(
          Defect{DefectKind::ResidualViolation, seen_ - 1, 0, false});
      metrics.defect(DefectKind::ResidualViolation).inc();
    }
  }
  ++quarantined_;
  metrics.quarantined.inc();
  learner_.observe_quarantined_period(sp.observed_tasks);
  note_health_transition();
  return false;
}

void RobustOnlineLearner::note_health_transition() {
  const HealthState now = health();
  if (now == last_health_) return;
  RobustMetrics::get().health_transition(now).inc();
  last_health_ = now;
}

void RobustOnlineLearner::observe_clean_period(const Period& period) {
  ++seen_;
  learner_.observe_period(period);
}

double RobustOnlineLearner::quarantine_rate() const {
  return seen_ == 0 ? 0.0
                    : static_cast<double>(quarantined_) /
                          static_cast<double>(seen_);
}

HealthState RobustOnlineLearner::health() const {
  if (seen_ < config_.min_periods_for_health) return HealthState::OK;
  const double rate = quarantine_rate();
  if (rate >= config_.failed_threshold) return HealthState::Failed;
  if (rate >= config_.degraded_threshold) return HealthState::Degraded;
  return HealthState::OK;
}

RobustSnapshot RobustOnlineLearner::full_snapshot() const {
  RobustSnapshot snap;
  snap.result = learner_.snapshot();
  snap.health = health();
  snap.periods_seen = seen_;
  snap.periods_learned = periods_learned();
  snap.periods_quarantined = quarantined_;
  snap.repairs = repairs_;
  return snap;
}

// Decode-side cap: a garbage defect count must not drive a huge
// allocation.  Real defect logs are bounded by the period count.
namespace {
constexpr std::size_t kMaxStateDefects = 1u << 26;
}  // namespace

void RobustOnlineLearner::encode_state(std::vector<std::uint8_t>& out) const {
  append_u64(out, seen_);
  append_u64(out, quarantined_);
  append_u64(out, repairs_);
  append_u8(out, static_cast<std::uint8_t>(last_health_));
  append_u32(out, static_cast<std::uint32_t>(defects_.size()));
  for (const Defect& d : defects_) {
    append_u8(out, static_cast<std::uint8_t>(d.kind));
    append_u64(out, d.period_index);
    append_u64(out, d.event_index);
    append_u8(out, d.repaired ? 1 : 0);
  }
  learner_.encode_state(out);
}

RobustOnlineLearner RobustOnlineLearner::decode_state(
    std::vector<std::string> task_names, const RobustConfig& config,
    ByteReader& r) {
  RobustOnlineLearner rl(std::move(task_names), config);
  rl.seen_ = r.read_u64();
  rl.quarantined_ = r.read_u64();
  rl.repairs_ = r.read_u64();
  if (rl.quarantined_ > rl.seen_) {
    raise("robust state: quarantined exceeds seen");
  }
  const std::uint8_t health = r.read_u8();
  if (health > static_cast<std::uint8_t>(HealthState::Failed)) {
    raise("robust state: invalid health state");
  }
  rl.last_health_ = static_cast<HealthState>(health);
  const std::uint32_t ndefects = r.read_u32();
  if (ndefects > kMaxStateDefects) {
    raise("robust state: defect count out of range");
  }
  rl.defects_.clear();
  rl.defects_.reserve(ndefects);
  for (std::uint32_t i = 0; i < ndefects; ++i) {
    Defect d;
    const std::uint8_t kind = r.read_u8();
    if (kind >= kNumDefectKinds) raise("robust state: invalid defect kind");
    d.kind = static_cast<DefectKind>(kind);
    d.period_index = r.read_u64();
    d.event_index = r.read_u64();
    d.repaired = r.read_u8() != 0;
    rl.defects_.push_back(d);
  }
  OnlineLearner restored = OnlineLearner::decode_state(r);
  if (restored.num_tasks() != rl.learner_.num_tasks()) {
    raise("robust state: task count mismatch with nested learner");
  }
  rl.learner_ = std::move(restored);
  return rl;
}

std::string RobustOnlineLearner::health_summary() const {
  char buf[192];
  const double learned_pct =
      seen_ == 0 ? 100.0 : 100.0 * (1.0 - quarantine_rate());
  std::snprintf(buf, sizeof(buf),
                "model learned from %.1f%% of periods, %.1f%% quarantined "
                "(%zu of %zu periods, %zu repairs; health: %s)",
                learned_pct, 100.0 * quarantine_rate(), quarantined_, seen_,
                repairs_, std::string(health_state_name(health())).c_str());
  return buf;
}

}  // namespace bbmg
