#include "robust/robust_online_learner.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "robust/robust_metrics.hpp"

namespace bbmg {

std::string_view health_state_name(HealthState s) {
  switch (s) {
    case HealthState::OK:
      return "OK";
    case HealthState::Degraded:
      return "DEGRADED";
    case HealthState::Failed:
      return "FAILED";
  }
  return "?";
}

RobustOnlineLearner::RobustOnlineLearner(std::vector<std::string> task_names,
                                         RobustConfig config)
    : config_(config),
      sanitizer_(std::move(task_names), config.sanitize),
      learner_(sanitizer_.task_names().size(), config.online) {
  BBMG_REQUIRE(config_.degraded_threshold <= config_.failed_threshold,
               "degraded threshold must not exceed failed threshold");
}

bool RobustOnlineLearner::observe_raw_period(const std::vector<Event>& events) {
  RobustMetrics& metrics = RobustMetrics::get();
  SanitizedPeriod sp = sanitizer_.sanitize_period(events, seen_);
  ++seen_;
  repairs_ += sp.repairs;
  defects_.insert(defects_.end(), sp.defects.begin(), sp.defects.end());
  metrics.periods.inc();
  metrics.repairs.inc(sp.repairs);
  for (const Defect& d : sp.defects) metrics.defect(d.kind).inc();
  if (!sp.quarantined()) {
    try {
      learner_.observe_period(*sp.period);
      note_health_transition();
      return true;
    } catch (const Error&) {
      // A repaired period the learner still chokes on: degrade, don't die.
      defects_.push_back(
          Defect{DefectKind::ResidualViolation, seen_ - 1, 0, false});
      metrics.defect(DefectKind::ResidualViolation).inc();
    }
  }
  ++quarantined_;
  metrics.quarantined.inc();
  learner_.observe_quarantined_period(sp.observed_tasks);
  note_health_transition();
  return false;
}

void RobustOnlineLearner::note_health_transition() {
  const HealthState now = health();
  if (now == last_health_) return;
  RobustMetrics::get().health_transition(now).inc();
  last_health_ = now;
}

void RobustOnlineLearner::observe_clean_period(const Period& period) {
  ++seen_;
  learner_.observe_period(period);
}

double RobustOnlineLearner::quarantine_rate() const {
  return seen_ == 0 ? 0.0
                    : static_cast<double>(quarantined_) /
                          static_cast<double>(seen_);
}

HealthState RobustOnlineLearner::health() const {
  if (seen_ < config_.min_periods_for_health) return HealthState::OK;
  const double rate = quarantine_rate();
  if (rate >= config_.failed_threshold) return HealthState::Failed;
  if (rate >= config_.degraded_threshold) return HealthState::Degraded;
  return HealthState::OK;
}

RobustSnapshot RobustOnlineLearner::full_snapshot() const {
  RobustSnapshot snap;
  snap.result = learner_.snapshot();
  snap.health = health();
  snap.periods_seen = seen_;
  snap.periods_learned = periods_learned();
  snap.periods_quarantined = quarantined_;
  snap.repairs = repairs_;
  return snap;
}

std::string RobustOnlineLearner::health_summary() const {
  char buf[192];
  const double learned_pct =
      seen_ == 0 ? 100.0 : 100.0 * (1.0 - quarantine_rate());
  std::snprintf(buf, sizeof(buf),
                "model learned from %.1f%% of periods, %.1f%% quarantined "
                "(%zu of %zu periods, %zu repairs; health: %s)",
                learned_pct, 100.0 * quarantine_rate(), quarantined_, seen_,
                repairs_, std::string(health_state_name(health())).c_str());
  return buf;
}

}  // namespace bbmg
