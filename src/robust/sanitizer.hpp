// Fault-tolerant trace ingestion, layer 1 (see DESIGN.md "Noise model &
// degradation semantics"): the paper's learner assumes perfectly segmented,
// well-formed traces, but a CAN logging device on a live vehicle bus (§3.4)
// drops frames, duplicates events, jitters clocks and truncates logs.
// TraceSanitizer classifies per-event defects in a raw period stream and,
// under a configurable policy, repairs what is safely repairable and
// quarantines only the corrupt *periods* — the rest of the trace survives.
//
// The repair rules are chosen so the degradation-aware learner
// (robust_online_learner.hpp) keeps a soundness guarantee against the clean
// trace:
//
//  * task executions are sacred — a repair never invents, drops or splits
//    an execution.  Dedup (drop an exact re-statement) and bounded clock
//    clamping are the only task-event repairs; anything else (orphan edges,
//    repeated executions, degenerate intervals) quarantines the period.
//    Hence in a repaired period the executed-task set equals the clean
//    period's, and in a quarantined period the observed-task set is a
//    subset of the clean period's (corruption hides events, it never
//    invents an execution of a task that has none).
//  * message occurrences are expendable — a damaged occurrence (orphan
//    rise/fall, id mismatch, overlap, degenerate interval) is discarded,
//    exactly as a CAN logging device discards errored frames.  A missing
//    message only makes the learner *more specific* (a pair stays ||),
//    which no positive example can refute.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace bbmg {

enum class SanitizePolicy : std::uint8_t {
  /// Any defect throws bbmg::Error (the historical loader behaviour).
  Strict,
  /// Repair safely repairable defects; quarantine periods with any other.
  Repair,
  /// No repairs: any defect quarantines the whole period.
  Quarantine,
};

[[nodiscard]] std::string_view sanitize_policy_name(SanitizePolicy p);

enum class DefectKind : std::uint8_t {
  /// Event time before its predecessor, within the skew tolerance (clamped).
  OutOfOrderTimestamp,
  /// Event time before its predecessor beyond the tolerance.
  ClockSkewExceeded,
  /// Second start for a task that is already running (dropped).
  DuplicateTaskStart,
  /// Second end for a task that already completed (dropped).
  DuplicateTaskEnd,
  /// Start for a task that already completed this period.
  RepeatedExecution,
  /// Start with no matching end by period close (truncated log).
  OrphanTaskStart,
  /// End with no preceding start (dropped rising edge of the execution).
  OrphanTaskEnd,
  /// Rise superseded by another rise, or still open at period close
  /// (dropped falling edge; the occurrence is discarded).
  OrphanMsgRise,
  /// Fall with no open rise (dropped rising edge; dropped).
  OrphanMsgFall,
  /// Fall id differs from the open rise id (both edges discarded).
  MsgIdMismatch,
  /// Message rises before the previous occurrence fell (later one dropped).
  OverlappingMessages,
  /// start >= end after clamping (task: fatal; message: occurrence dropped).
  DegenerateInterval,
  /// Activity spans more than the configured period length.
  PeriodOverrun,
  /// Task event with an out-of-range task index.
  UnknownTask,
  /// No complete task execution survives in the period.
  EmptyPeriod,
  /// A repaired period still failed TraceBuilder re-validation.
  ResidualViolation,
};

/// Number of DefectKind enumerators (metrics register one counter each).
inline constexpr std::size_t kNumDefectKinds =
    static_cast<std::size_t>(DefectKind::ResidualViolation) + 1;

[[nodiscard]] std::string_view defect_kind_name(DefectKind k);

/// Stable snake_case identifier (metric labels, machine-readable output).
[[nodiscard]] std::string_view defect_kind_slug(DefectKind k);

struct Defect {
  DefectKind kind{DefectKind::OutOfOrderTimestamp};
  /// Index of the period in the raw input stream.
  std::size_t period_index{0};
  /// Best-effort index of the offending event within the raw period.
  std::size_t event_index{0};
  /// True iff the defect was repaired in place (policy Repair only);
  /// false means it quarantined the period.
  bool repaired{false};
};

struct SanitizeConfig {
  SanitizePolicy policy{SanitizePolicy::Repair};
  /// Backwards timestamp jumps up to this are treated as logger clock
  /// jitter and clamped to the running maximum; larger jumps are fatal.
  TimeNs clock_skew_tolerance{50 * kTimeNsPerUs};
  /// 0 = unknown; otherwise events spanning more than this from the first
  /// event of the period flag PeriodOverrun (fatal).
  TimeNs period_length{0};
};

struct SanitizedPeriod {
  /// The sanitized period, or nullopt if it was quarantined.
  std::optional<Period> period;
  /// Tasks with at least one raw event this period — execution evidence
  /// that survives even when the period itself is quarantined; the
  /// degradation-aware learner weakens claims against this mask.
  std::vector<bool> observed_tasks;
  std::vector<Defect> defects;
  std::size_t repairs{0};
  [[nodiscard]] bool quarantined() const { return !period.has_value(); }
};

struct SanitizeResult {
  /// The surviving trace: clean and repaired periods, original order.
  Trace trace;
  /// Raw-stream indices of the periods kept in `trace` (parallel to it).
  std::vector<std::size_t> kept;
  /// Raw-stream indices of quarantined periods and their observed-task
  /// masks (parallel vectors).
  std::vector<std::size_t> quarantined;
  std::vector<std::vector<bool>> quarantined_observed;
  std::vector<Defect> defects;
  std::size_t repairs{0};
  [[nodiscard]] std::size_t periods_seen() const {
    return kept.size() + quarantined.size();
  }
  [[nodiscard]] double quarantine_rate() const {
    const std::size_t n = periods_seen();
    return n == 0 ? 0.0
                  : static_cast<double>(quarantined.size()) /
                        static_cast<double>(n);
  }
};

class TraceSanitizer {
 public:
  explicit TraceSanitizer(std::vector<std::string> task_names,
                          SanitizeConfig config = {});

  [[nodiscard]] const SanitizeConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<std::string>& task_names() const {
    return task_names_;
  }

  /// Sanitize one raw period.  Under Strict the first defect throws
  /// bbmg::Error; otherwise all defects are collected and the period is
  /// either repaired or quarantined.
  [[nodiscard]] SanitizedPeriod sanitize_period(
      const std::vector<Event>& events, std::size_t period_index = 0) const;

  /// Sanitize a whole raw stream into a valid Trace plus bookkeeping.
  [[nodiscard]] SanitizeResult sanitize(
      const std::vector<std::vector<Event>>& raw_periods) const;

 private:
  std::vector<std::string> task_names_;
  SanitizeConfig config_;
};

/// Flatten a (valid) trace back to the raw per-period event lists the
/// sanitizer and the fault injector operate on.
[[nodiscard]] std::vector<std::vector<Event>> to_raw_periods(
    const Trace& trace);

}  // namespace bbmg
