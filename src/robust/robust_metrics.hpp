// Process-wide ingestion-robustness metrics (DESIGN.md "Observability"):
// the defect taxonomy as one labeled counter per DefectKind, quarantine
// and repair totals, and health-state transition counters.  Resolved once
// behind a function-local static like core/learner_metrics.hpp; aggregates
// across every RobustOnlineLearner in the process.
#pragma once

#include <array>
#include <string>

#include "obs/metrics.hpp"
#include "robust/robust_online_learner.hpp"
#include "robust/sanitizer.hpp"

namespace bbmg {

struct RobustMetrics {
  /// Raw periods through a sanitizer-backed learner.
  obs::Counter& periods;
  /// Periods quarantined (skipped with conservative weakening).
  obs::Counter& quarantined;
  /// In-place event repairs (policy Repair).
  obs::Counter& repairs;
  /// Per-kind defect counts: bbmg_robust_defects_total{kind="..."}.
  std::array<obs::Counter*, kNumDefectKinds> defects;
  /// Health-state transitions: bbmg_robust_health_transitions_total{to="..."}.
  std::array<obs::Counter*, 3> health_transitions;

  [[nodiscard]] obs::Counter& defect(DefectKind k) const {
    return *defects[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] obs::Counter& health_transition(HealthState to) const {
    return *health_transitions[static_cast<std::size_t>(to)];
  }

  static RobustMetrics& get() {
    static RobustMetrics m = make();
    return m;
  }

 private:
  static RobustMetrics make() {
    auto& r = obs::MetricsRegistry::instance();
    RobustMetrics m{
        r.counter("bbmg_robust_periods_total"),
        r.counter("bbmg_robust_quarantined_periods_total"),
        r.counter("bbmg_robust_repairs_total"),
        {},
        {},
    };
    for (std::size_t k = 0; k < kNumDefectKinds; ++k) {
      m.defects[k] = &r.counter(obs::labeled_name(
          "bbmg_robust_defects_total", "kind",
          std::string(defect_kind_slug(static_cast<DefectKind>(k)))));
    }
    const char* states[3] = {"ok", "degraded", "failed"};
    for (std::size_t s = 0; s < 3; ++s) {
      m.health_transitions[s] = &r.counter(obs::labeled_name(
          "bbmg_robust_health_transitions_total", "to", states[s]));
    }
    return m;
  }
};

}  // namespace bbmg
