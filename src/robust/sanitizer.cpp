#include "robust/sanitizer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bbmg {

std::string_view sanitize_policy_name(SanitizePolicy p) {
  switch (p) {
    case SanitizePolicy::Strict:
      return "strict";
    case SanitizePolicy::Repair:
      return "repair";
    case SanitizePolicy::Quarantine:
      return "quarantine";
  }
  return "?";
}

std::string_view defect_kind_name(DefectKind k) {
  switch (k) {
    case DefectKind::OutOfOrderTimestamp:
      return "out-of-order timestamp";
    case DefectKind::ClockSkewExceeded:
      return "clock skew beyond tolerance";
    case DefectKind::DuplicateTaskStart:
      return "duplicate task start";
    case DefectKind::DuplicateTaskEnd:
      return "duplicate task end";
    case DefectKind::RepeatedExecution:
      return "task executed again after completing";
    case DefectKind::OrphanTaskStart:
      return "task start without end";
    case DefectKind::OrphanTaskEnd:
      return "task end without start";
    case DefectKind::OrphanMsgRise:
      return "message rise without fall";
    case DefectKind::OrphanMsgFall:
      return "message fall without rise";
    case DefectKind::MsgIdMismatch:
      return "message fall id differs from rise id";
    case DefectKind::OverlappingMessages:
      return "overlapping messages on a single bus";
    case DefectKind::DegenerateInterval:
      return "degenerate (empty) interval";
    case DefectKind::PeriodOverrun:
      return "activity exceeds the period length";
    case DefectKind::UnknownTask:
      return "task index out of range";
    case DefectKind::EmptyPeriod:
      return "no complete task execution in period";
    case DefectKind::ResidualViolation:
      return "repaired period failed re-validation";
  }
  return "?";
}

std::string_view defect_kind_slug(DefectKind k) {
  switch (k) {
    case DefectKind::OutOfOrderTimestamp:
      return "out_of_order_timestamp";
    case DefectKind::ClockSkewExceeded:
      return "clock_skew_exceeded";
    case DefectKind::DuplicateTaskStart:
      return "duplicate_task_start";
    case DefectKind::DuplicateTaskEnd:
      return "duplicate_task_end";
    case DefectKind::RepeatedExecution:
      return "repeated_execution";
    case DefectKind::OrphanTaskStart:
      return "orphan_task_start";
    case DefectKind::OrphanTaskEnd:
      return "orphan_task_end";
    case DefectKind::OrphanMsgRise:
      return "orphan_msg_rise";
    case DefectKind::OrphanMsgFall:
      return "orphan_msg_fall";
    case DefectKind::MsgIdMismatch:
      return "msg_id_mismatch";
    case DefectKind::OverlappingMessages:
      return "overlapping_messages";
    case DefectKind::DegenerateInterval:
      return "degenerate_interval";
    case DefectKind::PeriodOverrun:
      return "period_overrun";
    case DefectKind::UnknownTask:
      return "unknown_task";
    case DefectKind::EmptyPeriod:
      return "empty_period";
    case DefectKind::ResidualViolation:
      return "residual_violation";
  }
  return "unknown";
}

TraceSanitizer::TraceSanitizer(std::vector<std::string> task_names,
                               SanitizeConfig config)
    : task_names_(std::move(task_names)), config_(config) {
  BBMG_REQUIRE(!task_names_.empty(), "sanitizer needs at least one task");
}

SanitizedPeriod TraceSanitizer::sanitize_period(
    const std::vector<Event>& events, std::size_t period_index) const {
  const std::size_t n = task_names_.size();
  SanitizedPeriod out;
  out.observed_tasks.assign(n, false);

  bool fatal = false;
  auto defect = [&](DefectKind kind, std::size_t event_index,
                    bool repairable) {
    if (config_.policy == SanitizePolicy::Strict) {
      raise("trace sanitizer: " + std::string(defect_kind_name(kind)) +
            " (period " + std::to_string(period_index) + ", event " +
            std::to_string(event_index) + ")");
    }
    const bool repaired =
        repairable && config_.policy == SanitizePolicy::Repair;
    out.defects.push_back(Defect{kind, period_index, event_index, repaired});
    if (repaired) {
      ++out.repairs;
    } else {
      fatal = true;
    }
  };

  // Pass 1: restore a monotone clock.  Backwards jumps within the skew
  // tolerance are logger jitter and clamp to the running maximum; larger
  // jumps mean the timestamps cannot be trusted at all.  The event list is
  // only copied once the first clamp is needed, so a clean period — the
  // overwhelmingly common case — pays no copy.
  std::vector<Event> patched;
  TimeNs run_max = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Quarantined or not, record every task with surviving evidence; the
    // degradation-aware learner weakens claims against this mask.
    if ((events[i].kind == EventKind::TaskStart ||
         events[i].kind == EventKind::TaskEnd) &&
        events[i].task.index() < n) {
      out.observed_tasks[events[i].task.index()] = true;
    }
    if (i > 0 && events[i].time < run_max) {
      const TimeNs skew = run_max - events[i].time;
      if (skew <= config_.clock_skew_tolerance) {
        defect(DefectKind::OutOfOrderTimestamp, i, /*repairable=*/true);
      } else {
        defect(DefectKind::ClockSkewExceeded, i, /*repairable=*/false);
      }
      if (patched.empty()) patched = events;
      patched[i].time = run_max;
    }
    run_max = std::max(run_max, events[i].time);
  }
  const std::vector<Event>& evs = patched.empty() ? events : patched;
  if (config_.period_length > 0 && !evs.empty() &&
      evs.back().time - evs.front().time > config_.period_length) {
    defect(DefectKind::PeriodOverrun, evs.size() - 1, /*repairable=*/false);
  }

  // Pass 2: tolerant re-run of the TraceBuilder state machine.
  std::vector<std::optional<TimeNs>> open_start(n);
  std::vector<std::size_t> open_start_ev(n, 0);
  std::vector<char> completed(n, 0);
  std::vector<TaskExecution> execs;
  execs.reserve(n);
  std::vector<MessageOccurrence> msgs;
  msgs.reserve(evs.size() / 2);
  bool msg_open = false;
  TimeNs open_msg_rise = 0;
  CanId open_msg_id = 0;
  std::size_t open_msg_ev = 0;

  for (std::size_t i = 0; i < evs.size(); ++i) {
    const Event& e = evs[i];
    switch (e.kind) {
      case EventKind::TaskStart: {
        const std::size_t t = e.task.index();
        if (t >= n) {
          defect(DefectKind::UnknownTask, i, /*repairable=*/false);
          break;
        }
        if (open_start[t].has_value()) {
          // Keep the earliest start; a re-stated start is logger noise.
          defect(DefectKind::DuplicateTaskStart, i, /*repairable=*/true);
          break;
        }
        if (completed[t]) {
          // A third+ event for a finished task: we cannot tell which
          // execution is real, and inventing one would fabricate evidence.
          defect(DefectKind::RepeatedExecution, i, /*repairable=*/false);
          break;
        }
        open_start[t] = e.time;
        open_start_ev[t] = i;
        break;
      }
      case EventKind::TaskEnd: {
        const std::size_t t = e.task.index();
        if (t >= n) {
          defect(DefectKind::UnknownTask, i, /*repairable=*/false);
          break;
        }
        if (open_start[t].has_value()) {
          if (e.time <= *open_start[t]) {
            // Clamping collapsed the execution; its timing is gone and
            // synthesizing one would shift candidate windows.
            defect(DefectKind::DegenerateInterval, i, /*repairable=*/false);
            open_start[t].reset();
            break;
          }
          execs.push_back(TaskExecution{e.task, *open_start[t], e.time});
          completed[t] = 1;
          open_start[t].reset();
        } else if (completed[t]) {
          defect(DefectKind::DuplicateTaskEnd, i, /*repairable=*/true);
        } else {
          // The execution happened (observed_tasks has it) but its start
          // time is unrecoverable — fatal, never synthesized.
          defect(DefectKind::OrphanTaskEnd, i, /*repairable=*/false);
        }
        break;
      }
      case EventKind::MsgRise: {
        if (msg_open) {
          // The previous occurrence never fell; discard it the way the
          // logging device discards errored frames.
          defect(DefectKind::OrphanMsgRise, open_msg_ev, /*repairable=*/true);
        }
        msg_open = true;
        open_msg_rise = e.time;
        open_msg_id = e.can_id;
        open_msg_ev = i;
        break;
      }
      case EventKind::MsgFall: {
        if (!msg_open) {
          defect(DefectKind::OrphanMsgFall, i, /*repairable=*/true);
          break;
        }
        if (open_msg_id != e.can_id) {
          // One of the two ids is corrupt and we cannot tell which;
          // discard both edges.
          defect(DefectKind::MsgIdMismatch, i, /*repairable=*/true);
          msg_open = false;
          break;
        }
        if (e.time <= open_msg_rise) {
          defect(DefectKind::DegenerateInterval, i, /*repairable=*/true);
          msg_open = false;
          break;
        }
        msgs.push_back(MessageOccurrence{open_msg_rise, e.time, e.can_id});
        msg_open = false;
        break;
      }
    }
  }

  if (msg_open) {
    defect(DefectKind::OrphanMsgRise, open_msg_ev, /*repairable=*/true);
  }
  for (std::size_t t = 0; t < n; ++t) {
    if (open_start[t].has_value()) {
      defect(DefectKind::OrphanTaskStart, open_start_ev[t],
             /*repairable=*/false);
    }
  }

  // Single shared bus: occurrences must not overlap.  Perturbed edges can
  // interleave two occurrences; the later one's timing lost the race.  The
  // state machine emits occurrences in rise order already (timestamps are
  // monotone and only one message is open at a time), so the common case is
  // a single ordered, overlap-free scan with nothing to re-sort or copy.
  bool msgs_dirty = false;
  for (std::size_t i = 1; i < msgs.size(); ++i) {
    if (msgs[i].rise < msgs[i - 1].rise || msgs[i].rise < msgs[i - 1].fall) {
      msgs_dirty = true;
      break;
    }
  }
  if (msgs_dirty) {
    std::sort(msgs.begin(), msgs.end(),
              [](const MessageOccurrence& a, const MessageOccurrence& b) {
                return a.rise < b.rise;
              });
    std::vector<MessageOccurrence> kept_msgs;
    kept_msgs.reserve(msgs.size());
    TimeNs prev_fall = 0;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      if (!kept_msgs.empty() && msgs[i].rise < prev_fall) {
        defect(DefectKind::OverlappingMessages, i, /*repairable=*/true);
        continue;
      }
      prev_fall = msgs[i].fall;
      kept_msgs.push_back(msgs[i]);
    }
    msgs = std::move(kept_msgs);
  }

  if (execs.empty()) {
    defect(DefectKind::EmptyPeriod, 0, /*repairable=*/false);
  }

  if (fatal) return out;  // quarantined: out.period stays empty
  out.period = Period(std::move(execs), std::move(msgs));
  return out;
}

SanitizeResult TraceSanitizer::sanitize(
    const std::vector<std::vector<Event>>& raw_periods) const {
  SanitizeResult res;
  res.trace = Trace(task_names_);
  // Repaired periods are re-validated through TraceBuilder — the one source
  // of period-validity truth — so a sanitizer gap degrades to a quarantine
  // instead of leaking an invalid period to the learner.
  TraceBuilder revalidator(task_names_);
  for (std::size_t i = 0; i < raw_periods.size(); ++i) {
    SanitizedPeriod sp = sanitize_period(raw_periods[i], i);
    res.repairs += sp.repairs;
    res.defects.insert(res.defects.end(), sp.defects.begin(),
                       sp.defects.end());
    if (sp.quarantined()) {
      res.quarantined.push_back(i);
      res.quarantined_observed.push_back(std::move(sp.observed_tasks));
      continue;
    }
    if (!sp.defects.empty()) {
      try {
        revalidator.begin_period();
        for (const Event& e : sp.period->to_events()) revalidator.add_event(e);
        revalidator.end_period();
      } catch (const Error&) {
        revalidator.reset();
        res.defects.push_back(
            Defect{DefectKind::ResidualViolation, i, 0, false});
        res.quarantined.push_back(i);
        res.quarantined_observed.push_back(std::move(sp.observed_tasks));
        continue;
      }
    }
    res.kept.push_back(i);
    res.trace.add_period(std::move(*sp.period));
  }
  return res;
}

std::vector<std::vector<Event>> to_raw_periods(const Trace& trace) {
  std::vector<std::vector<Event>> raw;
  raw.reserve(trace.num_periods());
  for (const Period& p : trace.periods()) raw.push_back(p.to_events());
  return raw;
}

}  // namespace bbmg
