// Fault-tolerant trace ingestion, layer 3: a seeded fault injector that
// corrupts clean traces the way a real logging chain does — dropped frames,
// duplicated events, local reorderings, clock jitter, corrupted CAN ids and
// truncated period tails.  Used by the robustness tests and
// bench_robustness to establish the key soundness property: learning over
// the sanitized corrupt stream never asserts a dependency value the clean
// trace refutes (see DESIGN.md "Noise model & degradation semantics").
//
// All corruption flows through Rng, so every run is reproducible from the
// FaultSpec seed.  Note the fault model mirrors what hardware can do to a
// log: it removes, repeats, displaces and mangles events, but it never
// fabricates an event for a task that produced none — the invariant the
// sanitizer's observed-task masks rely on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace bbmg {

struct FaultSpec {
  /// Per-event probability that the event is silently dropped.
  double drop_rate{0.0};
  /// Per-event probability that the event is emitted twice.
  double duplicate_rate{0.0};
  /// Per-adjacent-pair probability that two events swap places.
  double reorder_rate{0.0};
  /// Per-message-event probability that its CAN id is replaced.
  double corrupt_id_rate{0.0};
  /// Per-event probability that the timestamp moves by up to perturb_max
  /// in either direction (clamped at zero).
  double perturb_rate{0.0};
  TimeNs perturb_max{100 * kTimeNsPerUs};
  /// Per-period probability that a random-length tail is cut off
  /// (power loss / log rotation mid-period).
  double truncate_rate{0.0};
  std::uint64_t seed{1};

  /// Spread `total_rate` evenly over the five per-event fault kinds
  /// (drop, duplicate, reorder, corrupt id, perturb); truncation stays 0.
  [[nodiscard]] static FaultSpec uniform(double total_rate,
                                         std::uint64_t seed);
};

struct InjectionResult {
  std::vector<std::vector<Event>> periods;
  std::size_t faults_injected{0};
  /// Per raw period: did at least one fault land in it?
  std::vector<bool> period_touched;
  [[nodiscard]] std::size_t periods_touched() const;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec);

  /// Corrupt every period of a clean trace (advances the injector's RNG).
  [[nodiscard]] InjectionResult corrupt(const Trace& clean);
  [[nodiscard]] InjectionResult corrupt_raw(
      const std::vector<std::vector<Event>>& periods);

 private:
  FaultSpec spec_;
  Rng rng_;
};

/// Serialize raw (possibly corrupt) per-period event streams in the trace
/// text format — what a damaged capture looks like on disk.  The output may
/// violate every invariant the strict parser enforces; feed it to
/// load_trace_file_lenient, not load_trace_file.
void write_raw_trace(std::ostream& os,
                     const std::vector<std::string>& task_names,
                     const std::vector<std::vector<Event>>& periods);
[[nodiscard]] std::string raw_trace_to_string(
    const std::vector<std::string>& task_names,
    const std::vector<std::vector<Event>>& periods);

}  // namespace bbmg
