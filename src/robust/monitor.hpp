// Degradation-aware conformance monitoring: check a raw (possibly corrupt)
// period stream against a learned model without dying on dirty input.
// Sanitized periods are checked normally; quarantined periods are skipped
// and accounted as reduced coverage (ConformanceReport::periods_skipped),
// and the stream's ingest health is reported alongside the verdict — a
// FAILED stream means "no violations" is vacuous, not reassuring.
#pragma once

#include <string>
#include <vector>

#include "analysis/conformance.hpp"
#include "robust/robust_online_learner.hpp"
#include "robust/sanitizer.hpp"

namespace bbmg {

struct RobustConformanceReport {
  ConformanceReport report;  // periods_skipped = quarantined count
  std::size_t repairs{0};
  std::vector<Defect> defects;
  HealthState health{HealthState::OK};
  [[nodiscard]] bool conforms() const { return report.conforms(); }
  /// One-line account, e.g.
  /// "14/15 periods conform, 1 skipped (quarantined); ingest health: OK".
  [[nodiscard]] std::string summary() const;
};

/// Sanitize `raw_periods` with `config.sanitize` and check every surviving
/// period against `model`.  Quarantined periods are skipped, counted in
/// report.periods_skipped, and folded into the health verdict via
/// `config`'s quarantine-rate thresholds.
[[nodiscard]] RobustConformanceReport check_conformance_lenient(
    const DependencyMatrix& model,
    const std::vector<std::string>& task_names,
    const std::vector<std::vector<Event>>& raw_periods,
    const RobustConfig& config = {});

}  // namespace bbmg
