// Fault-tolerant trace ingestion, loader front end: parse the line-based
// trace text format (trace/serialize.hpp) without dying on the first fault.
// Where the strict reader throws bbmg::Error at the first malformed line,
// read_trace_lenient records a line-level diagnostic, skips the line, and
// keeps going; the assembled raw periods then flow through TraceSanitizer,
// which repairs or quarantines them per the configured policy.  The result
// is an IngestReport: the surviving trace plus everything a production
// ingest pipeline needs to account for what was lost.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "robust/sanitizer.hpp"

namespace bbmg {

struct LineDiagnostic {
  std::size_t line_no{0};
  /// 1-based column of the offending token (1 for whole-line faults),
  /// matching the strict loader's `line:col` convention.
  std::size_t col{1};
  std::string message;

  /// Normalized "line:col" rendering, e.g. "6:1".
  [[nodiscard]] std::string position() const {
    return std::to_string(line_no) + ":" + std::to_string(col);
  }
};

struct IngestReport {
  /// The surviving trace (clean + repaired periods).
  Trace trace;
  /// False iff the version/tasks header was unusable (nothing ingested).
  bool header_ok{false};
  /// Line-level parse faults (skipped lines), in file order.
  std::vector<LineDiagnostic> diagnostics;
  /// Event-level sanitizer findings across all periods.
  std::vector<Defect> defects;
  /// Raw-stream period indices kept / quarantined (kept is parallel to
  /// trace.periods()); quarantined_observed holds the observed-task masks
  /// of the quarantined periods.
  std::vector<std::size_t> kept_periods;
  std::vector<std::size_t> quarantined_periods;
  std::vector<std::vector<bool>> quarantined_observed;
  std::size_t periods_seen{0};
  std::size_t lines_seen{0};
  std::size_t repairs{0};

  [[nodiscard]] bool clean() const {
    return header_ok && diagnostics.empty() && defects.empty();
  }
  [[nodiscard]] double quarantine_rate() const {
    return periods_seen == 0
               ? 0.0
               : static_cast<double>(quarantined_periods.size()) /
                     static_cast<double>(periods_seen);
  }
  /// One-line account, e.g.
  /// "25/27 periods ingested (2 quarantined), 3 repairs, 1 bad line".
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] IngestReport read_trace_lenient(std::istream& is,
                                              const SanitizeConfig& config = {});
[[nodiscard]] IngestReport ingest_trace_string(const std::string& text,
                                               const SanitizeConfig& config = {});
[[nodiscard]] IngestReport load_trace_file_lenient(
    const std::string& path, const SanitizeConfig& config = {});

}  // namespace bbmg
