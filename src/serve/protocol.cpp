#include "serve/protocol.hpp"

#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "obs/log.hpp"

namespace bbmg {

namespace {

ByteReader payload_reader(const Frame& frame) {
  return ByteReader(frame.payload.data(), frame.payload.size());
}

void finish(const Frame& frame, const ByteReader& r, const char* what) {
  if (!r.done()) {
    std::ostringstream os;
    os << "protocol: trailing garbage in " << what << " frame ("
       << frame.payload.size() - r.position() << " extra bytes)";
    raise(os.str());
  }
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out, const Frame& frame) {
  BBMG_REQUIRE(frame.payload.size() <= kMaxFramePayload,
               "frame payload exceeds limit");
  append_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  append_u8(out, static_cast<std::uint8_t>(frame.type));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

void FrameDecoder::set_max_payload(std::size_t cap) {
  if (cap == 0) return;
  max_payload_ = cap < kMaxFramePayload ? cap : kMaxFramePayload;
}

std::optional<Frame> FrameDecoder::next() {
  for (;;) {
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < 5) return std::nullopt;
    ByteReader r(buffer_.data() + consumed_, avail);
    const std::uint32_t length = r.read_u32();
    if (length > max_payload_) {
      throw FrameTooLarge(length, max_payload_);
    }
    const std::uint8_t type = r.read_u8();
    if (type < static_cast<std::uint8_t>(FrameType::Hello)) {
      // Only corruption produces type 0 — no protocol version ever
      // assigned it, so there is nothing to skip past.
      std::ostringstream os;
      os << "protocol: invalid frame type " << int{type};
      raise(os.str());
    }
    if (avail < 5 + static_cast<std::size_t>(length)) return std::nullopt;
    if (type > kMaxFrameType) {
      // A newer peer's extension frame: consume it whole and keep parsing.
      // Length was validated against the payload cap above, so a skipped
      // frame is bounded like any other.
      consumed_ += 5 + length;
      ++skipped_;
      BBMG_LOG_WARN("protocol.frame_skipped",
                    "skipped unknown frame type from a newer peer",
                    {{"type", std::uint32_t{type}},
                     {"length", length},
                     {"skipped_total", skipped_}});
      continue;
    }
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    const std::uint8_t* body = buffer_.data() + consumed_ + 5;
    frame.payload.assign(body, body + length);
    consumed_ += 5 + length;
    return frame;
  }
}

// -- Hello -----------------------------------------------------------------

Frame HelloMsg::to_frame(FrameType type) const {
  Frame f;
  f.type = type;
  append_u32(f.payload, magic);
  append_u16(f.payload, version);
  return f;
}

HelloMsg HelloMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  HelloMsg m;
  m.magic = r.read_u32();
  m.version = r.read_u16();
  finish(frame, r, "hello");
  if (m.magic != kServeMagic) {
    raise("protocol: bad magic in hello (peer is not a bbmg client)");
  }
  if (m.version < kServeMinProtocolVersion ||
      m.version > kServeProtocolVersion) {
    std::ostringstream os;
    os << "protocol: unsupported version " << m.version << " (speaking "
       << kServeMinProtocolVersion << ".." << kServeProtocolVersion << ")";
    raise(os.str());
  }
  return m;
}

// -- OpenSession -----------------------------------------------------------

Frame OpenSessionMsg::to_frame() const {
  Frame f;
  f.type = FrameType::OpenSession;
  append_task_names(f.payload, task_names);
  append_u32(f.payload, bound);
  append_u8(f.payload, static_cast<std::uint8_t>(policy));
  append_u32(f.payload, snapshot_interval);
  return f;
}

OpenSessionMsg OpenSessionMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  OpenSessionMsg m;
  m.task_names = read_task_names(r);
  m.bound = r.read_u32();
  const std::uint8_t policy = r.read_u8();
  if (policy > static_cast<std::uint8_t>(SanitizePolicy::Quarantine)) {
    raise("protocol: invalid sanitize policy in open-session");
  }
  m.policy = static_cast<SanitizePolicy>(policy);
  m.snapshot_interval = r.read_u32();
  finish(frame, r, "open-session");
  if (m.bound == 0) raise("protocol: open-session bound must be >= 1");
  return m;
}

SessionConfig OpenSessionMsg::to_session_config() const {
  SessionConfig cfg;
  cfg.robust.online.bound = bound;
  cfg.robust.sanitize.policy = policy;
  cfg.snapshot_interval = snapshot_interval;
  return cfg;
}

// -- SessionRef ------------------------------------------------------------

Frame SessionRefMsg::to_frame(FrameType type) const {
  Frame f;
  f.type = type;
  append_u32(f.payload, session);
  return f;
}

SessionRefMsg SessionRefMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  SessionRefMsg m;
  m.session = r.read_u32();
  finish(frame, r, "session-ref");
  return m;
}

// -- EndPeriod -------------------------------------------------------------

Frame EndPeriodMsg::to_frame() const {
  Frame f;
  f.type = FrameType::EndPeriod;
  append_u32(f.payload, session);
  append_u64(f.payload, seq);
  return f;
}

EndPeriodMsg EndPeriodMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  EndPeriodMsg m;
  m.session = r.read_u32();
  m.seq = r.read_u64();
  finish(frame, r, "end-period");
  return m;
}

// -- ResumeAck -------------------------------------------------------------

Frame ResumeAckMsg::to_frame() const {
  Frame f;
  f.type = FrameType::ResumeAck;
  append_u32(f.payload, session);
  append_u64(f.payload, high_water);
  return f;
}

ResumeAckMsg ResumeAckMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  ResumeAckMsg m;
  m.session = r.read_u32();
  m.high_water = r.read_u64();
  finish(frame, r, "resume-ack");
  return m;
}

// -- Events ----------------------------------------------------------------

Frame EventsMsg::to_frame() const {
  Frame f;
  f.type = FrameType::Events;
  append_u32(f.payload, session);
  append_u32(f.payload, static_cast<std::uint32_t>(events.size()));
  for (const Event& e : events) append_event(f.payload, e);
  return f;
}

EventsMsg EventsMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  EventsMsg m;
  m.session = r.read_u32();
  const std::uint32_t count = r.read_u32();
  if (count > kMaxEventsPerPeriod) {
    raise("protocol: event count exceeds sanity cap");
  }
  m.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m.events.push_back(r.read_event());
  finish(frame, r, "events");
  return m;
}

// -- Query -----------------------------------------------------------------

Frame QueryMsg::to_frame() const {
  Frame f;
  f.type = FrameType::Query;
  append_u32(f.payload, session);
  std::uint8_t flags = 0;
  if (drain) flags |= 1;
  if (probe.has_value()) flags |= 2;
  append_u8(f.payload, flags);
  if (probe.has_value()) {
    append_u32(f.payload, static_cast<std::uint32_t>(probe->size()));
    for (const Event& e : *probe) append_event(f.payload, e);
  }
  return f;
}

QueryMsg QueryMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  QueryMsg m;
  m.session = r.read_u32();
  const std::uint8_t flags = r.read_u8();
  if ((flags & ~0x3u) != 0) raise("protocol: unknown query flags");
  m.drain = (flags & 1) != 0;
  if ((flags & 2) != 0) {
    const std::uint32_t count = r.read_u32();
    if (count > kMaxEventsPerPeriod) {
      raise("protocol: probe event count exceeds sanity cap");
    }
    std::vector<Event> probe;
    probe.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) probe.push_back(r.read_event());
    m.probe = std::move(probe);
  }
  finish(frame, r, "query");
  return m;
}

// -- causal tracing (v3) ---------------------------------------------------

Frame TraceContextMsg::to_frame() const {
  Frame f;
  f.type = FrameType::TraceContext;
  append_u64(f.payload, trace_id);
  append_u64(f.payload, span_id);
  return f;
}

TraceContextMsg TraceContextMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  TraceContextMsg m;
  m.trace_id = r.read_u64();
  m.span_id = r.read_u64();
  finish(frame, r, "trace-context");
  return m;
}

Frame TraceDumpRequestMsg::to_frame() const {
  Frame f;
  f.type = FrameType::TraceDumpRequest;
  std::uint8_t flags = 0;
  if (drain) flags |= 1;
  if (flight) flags |= 2;
  append_u8(f.payload, flags);
  return f;
}

TraceDumpRequestMsg TraceDumpRequestMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  TraceDumpRequestMsg m;
  const std::uint8_t flags = r.read_u8();
  if ((flags & ~0x3u) != 0) raise("protocol: unknown trace-dump flags");
  m.drain = (flags & 1) != 0;
  m.flight = (flags & 2) != 0;
  finish(frame, r, "trace-dump-request");
  return m;
}

Frame TraceDumpResponseMsg::to_frame() const {
  BBMG_REQUIRE(spans.size() <= kMaxWireSpans,
               "trace dump exceeds wire span cap");
  Frame f;
  f.type = FrameType::TraceDumpResponse;
  append_u64(f.payload, server_now_ns);
  append_u64(f.payload, drops);
  append_u32(f.payload, static_cast<std::uint32_t>(spans.size()));
  for (const WireSpan& s : spans) {
    append_string(f.payload, s.name.size() <= kMaxNameLength
                                 ? s.name
                                 : s.name.substr(0, kMaxNameLength));
    append_u32(f.payload, s.tid);
    append_u64(f.payload, s.start_ns);
    append_u64(f.payload, s.duration_ns);
    append_u64(f.payload, s.trace_id);
    append_u64(f.payload, s.span_id);
    append_u64(f.payload, s.parent_id);
    append_u8(f.payload, s.flow);
  }
  // Flight text rides as a chunk list so it reuses the length-capped
  // string codec (the dump can far exceed one string's 4 KiB cap).
  const std::size_t nchunks =
      (flight.size() + kMaxNameLength - 1) / kMaxNameLength;
  BBMG_REQUIRE(nchunks <= kMaxWireFlightChunks,
               "flight dump exceeds wire cap");
  append_u32(f.payload, static_cast<std::uint32_t>(nchunks));
  for (std::size_t i = 0; i < nchunks; ++i) {
    append_string(f.payload, flight.substr(i * kMaxNameLength, kMaxNameLength));
  }
  return f;
}

TraceDumpResponseMsg TraceDumpResponseMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  TraceDumpResponseMsg m;
  m.server_now_ns = r.read_u64();
  m.drops = r.read_u64();
  const std::uint32_t nspans = r.read_u32();
  if (nspans > kMaxWireSpans) {
    raise("protocol: span count exceeds sanity cap");
  }
  m.spans.reserve(nspans);
  for (std::uint32_t i = 0; i < nspans; ++i) {
    WireSpan s;
    s.name = r.read_string();
    s.tid = r.read_u32();
    s.start_ns = r.read_u64();
    s.duration_ns = r.read_u64();
    s.trace_id = r.read_u64();
    s.span_id = r.read_u64();
    s.parent_id = r.read_u64();
    s.flow = r.read_u8();
    if (s.flow > 2) raise("protocol: invalid flow direction in trace dump");
    m.spans.push_back(std::move(s));
  }
  const std::uint32_t nchunks = r.read_u32();
  if (nchunks > kMaxWireFlightChunks) {
    raise("protocol: flight chunk count exceeds sanity cap");
  }
  for (std::uint32_t i = 0; i < nchunks; ++i) m.flight += r.read_string();
  finish(frame, r, "trace-dump-response");
  return m;
}

// -- cluster serving (v4) --------------------------------------------------

namespace {

/// The OpenSession field group shared by the three open-session variants;
/// kept one codec so the wire layout can never drift between them.
void append_open_fields(std::vector<std::uint8_t>& out,
                        const std::vector<std::string>& task_names,
                        std::uint32_t bound, SanitizePolicy policy,
                        std::uint32_t snapshot_interval) {
  append_task_names(out, task_names);
  append_u32(out, bound);
  append_u8(out, static_cast<std::uint8_t>(policy));
  append_u32(out, snapshot_interval);
}

struct OpenFields {
  std::vector<std::string> task_names;
  std::uint32_t bound{16};
  SanitizePolicy policy{SanitizePolicy::Repair};
  std::uint32_t snapshot_interval{1};
};

OpenFields read_open_fields(ByteReader& r, const char* what) {
  OpenFields f;
  f.task_names = read_task_names(r);
  f.bound = r.read_u32();
  const std::uint8_t policy = r.read_u8();
  if (policy > static_cast<std::uint8_t>(SanitizePolicy::Quarantine)) {
    raise(std::string("protocol: invalid sanitize policy in ") + what);
  }
  f.policy = static_cast<SanitizePolicy>(policy);
  f.snapshot_interval = r.read_u32();
  if (f.bound == 0) {
    raise(std::string("protocol: ") + what + " bound must be >= 1");
  }
  return f;
}

SessionConfig open_fields_config(std::uint32_t bound, SanitizePolicy policy,
                                 std::uint32_t snapshot_interval) {
  SessionConfig cfg;
  cfg.robust.online.bound = bound;
  cfg.robust.sanitize.policy = policy;
  cfg.snapshot_interval = snapshot_interval;
  return cfg;
}

}  // namespace

Frame OpenSessionAsMsg::to_frame() const {
  Frame f;
  f.type = FrameType::OpenSessionAs;
  append_u32(f.payload, session);
  append_open_fields(f.payload, task_names, bound, policy, snapshot_interval);
  return f;
}

OpenSessionAsMsg OpenSessionAsMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  OpenSessionAsMsg m;
  m.session = r.read_u32();
  OpenFields f = read_open_fields(r, "open-session-as");
  m.task_names = std::move(f.task_names);
  m.bound = f.bound;
  m.policy = f.policy;
  m.snapshot_interval = f.snapshot_interval;
  finish(frame, r, "open-session-as");
  return m;
}

SessionConfig OpenSessionAsMsg::to_session_config() const {
  return open_fields_config(bound, policy, snapshot_interval);
}

Frame ClusterMapRequestMsg::to_frame() const {
  Frame f;
  f.type = FrameType::ClusterMapRequest;
  return f;
}

ClusterMapRequestMsg ClusterMapRequestMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  finish(frame, r, "cluster-map-request");
  return {};
}

Frame ClusterMapResponseMsg::to_frame() const {
  BBMG_REQUIRE(shards.size() <= kMaxWireShards,
               "cluster map exceeds wire shard cap");
  Frame f;
  f.type = FrameType::ClusterMapResponse;
  append_u64(f.payload, epoch);
  append_u32(f.payload, static_cast<std::uint32_t>(shards.size()));
  for (const WireShard& s : shards) {
    append_string(f.payload, s.primary);
    append_string(f.payload, s.follower);
  }
  return f;
}

ClusterMapResponseMsg ClusterMapResponseMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  ClusterMapResponseMsg m;
  m.epoch = r.read_u64();
  const std::uint32_t nshards = r.read_u32();
  if (nshards > kMaxWireShards) {
    raise("protocol: shard count exceeds sanity cap");
  }
  m.shards.reserve(nshards);
  for (std::uint32_t i = 0; i < nshards; ++i) {
    WireShard s;
    s.primary = r.read_string();
    s.follower = r.read_string();
    m.shards.push_back(std::move(s));
  }
  finish(frame, r, "cluster-map-response");
  return m;
}

Frame RedirectMsg::to_frame() const {
  Frame f;
  f.type = FrameType::Redirect;
  append_u64(f.payload, epoch);
  append_u32(f.payload, shard);
  append_string(f.payload, endpoint);
  return f;
}

RedirectMsg RedirectMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  RedirectMsg m;
  m.epoch = r.read_u64();
  m.shard = r.read_u32();
  m.endpoint = r.read_string();
  finish(frame, r, "redirect");
  return m;
}

Frame OpenClusterSessionMsg::to_frame() const {
  Frame f;
  f.type = FrameType::OpenClusterSession;
  append_string(f.payload, key);
  append_open_fields(f.payload, task_names, bound, policy, snapshot_interval);
  return f;
}

OpenClusterSessionMsg OpenClusterSessionMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  OpenClusterSessionMsg m;
  m.key = r.read_string();
  if (m.key.empty()) raise("protocol: open-cluster-session key is empty");
  OpenFields f = read_open_fields(r, "open-cluster-session");
  m.task_names = std::move(f.task_names);
  m.bound = f.bound;
  m.policy = f.policy;
  m.snapshot_interval = f.snapshot_interval;
  finish(frame, r, "open-cluster-session");
  return m;
}

SessionConfig OpenClusterSessionMsg::to_session_config() const {
  return open_fields_config(bound, policy, snapshot_interval);
}

// -- ModelReply ------------------------------------------------------------

void append_matrix(std::vector<std::uint8_t>& out, const DependencyMatrix& m) {
  BBMG_REQUIRE(m.num_tasks() <= kMaxTasks, "matrix too large for codec");
  append_u16(out, static_cast<std::uint16_t>(m.num_tasks()));
  for (std::size_t a = 0; a < m.num_tasks(); ++a) {
    for (std::size_t b = 0; b < m.num_tasks(); ++b) {
      append_u8(out, static_cast<std::uint8_t>(m.at(a, b)));
    }
  }
}

DependencyMatrix read_matrix_payload(ByteReader& r) {
  const std::uint16_t n = r.read_u16();
  if (n > kMaxTasks) raise("protocol: matrix size exceeds sanity cap");
  DependencyMatrix m(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const std::uint8_t v = r.read_u8();
      if (v >= kNumDepValues) {
        raise("protocol: invalid dependency value in matrix payload");
      }
      if (a == b) {
        if (v != static_cast<std::uint8_t>(DepValue::Parallel)) {
          raise("protocol: matrix diagonal must be parallel");
        }
        continue;
      }
      m.set(a, b, static_cast<DepValue>(v));
    }
  }
  return m;
}

Frame ModelReplyMsg::to_frame() const {
  Frame f;
  f.type = FrameType::ModelReply;
  append_u32(f.payload, session);
  append_u8(f.payload, health);
  append_u64(f.payload, periods_seen);
  append_u64(f.payload, periods_learned);
  append_u64(f.payload, periods_quarantined);
  append_u64(f.payload, repairs);
  append_u8(f.payload, converged);
  append_u32(f.payload, num_hypotheses);
  append_u64(f.payload, weight);
  append_u8(f.payload, verdict);
  append_u32(f.payload, num_violations);
  append_matrix(f.payload, lub);
  return f;
}

ModelReplyMsg ModelReplyMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  ModelReplyMsg m;
  m.session = r.read_u32();
  m.health = r.read_u8();
  if (m.health > static_cast<std::uint8_t>(HealthState::Failed)) {
    raise("protocol: invalid health state in model reply");
  }
  m.periods_seen = r.read_u64();
  m.periods_learned = r.read_u64();
  m.periods_quarantined = r.read_u64();
  m.repairs = r.read_u64();
  m.converged = r.read_u8();
  m.num_hypotheses = r.read_u32();
  m.weight = r.read_u64();
  m.verdict = r.read_u8();
  if (m.verdict > static_cast<std::uint8_t>(ProbeVerdict::Unverifiable)) {
    raise("protocol: invalid probe verdict in model reply");
  }
  m.num_violations = r.read_u32();
  m.lub = read_matrix_payload(r);
  finish(frame, r, "model-reply");
  return m;
}

// -- ErrorReply ------------------------------------------------------------

Frame ErrorReplyMsg::to_frame() const {
  Frame f;
  f.type = FrameType::ErrorReply;
  append_u16(f.payload, static_cast<std::uint16_t>(code));
  append_string(f.payload, message.size() <= kMaxNameLength
                               ? message
                               : message.substr(0, kMaxNameLength));
  return f;
}

ErrorReplyMsg ErrorReplyMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  ErrorReplyMsg m;
  m.code = static_cast<WireErrorCode>(r.read_u16());
  m.message = r.read_string();
  finish(frame, r, "error-reply");
  return m;
}

// -- Metrics ---------------------------------------------------------------

Frame MetricsRequestMsg::to_frame() const {
  Frame f;
  f.type = FrameType::MetricsRequest;
  return f;
}

MetricsRequestMsg MetricsRequestMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  finish(frame, r, "metrics-request");
  return {};
}

namespace {

std::uint32_t read_metric_count(ByteReader& r, std::size_t cap,
                                const char* what) {
  const std::uint32_t n = r.read_u32();
  if (n > cap) {
    std::ostringstream os;
    os << "protocol: " << what << " count exceeds sanity cap";
    raise(os.str());
  }
  return n;
}

}  // namespace

Frame MetricsResponseMsg::to_frame() const {
  Frame f;
  f.type = FrameType::MetricsResponse;
  append_u32(f.payload, static_cast<std::uint32_t>(snapshot.counters.size()));
  for (const obs::CounterSample& c : snapshot.counters) {
    append_string(f.payload, c.name);
    append_u64(f.payload, c.value);
  }
  append_u32(f.payload, static_cast<std::uint32_t>(snapshot.gauges.size()));
  for (const obs::GaugeSample& g : snapshot.gauges) {
    append_string(f.payload, g.name);
    append_u64(f.payload, static_cast<std::uint64_t>(g.value));
  }
  append_u32(f.payload,
             static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const obs::HistogramSample& h : snapshot.histograms) {
    append_string(f.payload, h.name);
    append_u32(f.payload, static_cast<std::uint32_t>(h.upper_bounds.size()));
    for (const std::uint64_t b : h.upper_bounds) append_u64(f.payload, b);
    for (const std::uint64_t c : h.counts) append_u64(f.payload, c);
    append_u64(f.payload, h.sum);
    append_u64(f.payload, h.count);
  }
  return f;
}

MetricsResponseMsg MetricsResponseMsg::decode(const Frame& frame) {
  ByteReader r = payload_reader(frame);
  MetricsResponseMsg m;
  const std::uint32_t ncounters =
      read_metric_count(r, kMaxWireMetrics, "counter");
  m.snapshot.counters.reserve(ncounters);
  for (std::uint32_t i = 0; i < ncounters; ++i) {
    obs::CounterSample c;
    c.name = r.read_string();
    c.value = r.read_u64();
    m.snapshot.counters.push_back(std::move(c));
  }
  const std::uint32_t ngauges = read_metric_count(r, kMaxWireMetrics, "gauge");
  m.snapshot.gauges.reserve(ngauges);
  for (std::uint32_t i = 0; i < ngauges; ++i) {
    obs::GaugeSample g;
    g.name = r.read_string();
    g.value = static_cast<std::int64_t>(r.read_u64());
    m.snapshot.gauges.push_back(std::move(g));
  }
  const std::uint32_t nhists =
      read_metric_count(r, kMaxWireMetrics, "histogram");
  m.snapshot.histograms.reserve(nhists);
  for (std::uint32_t i = 0; i < nhists; ++i) {
    obs::HistogramSample h;
    h.name = r.read_string();
    const std::uint32_t nbounds =
        read_metric_count(r, kMaxWireHistogramBuckets, "histogram bucket");
    h.upper_bounds.reserve(nbounds);
    for (std::uint32_t b = 0; b < nbounds; ++b) {
      h.upper_bounds.push_back(r.read_u64());
    }
    h.counts.reserve(nbounds + 1);
    for (std::uint32_t b = 0; b < nbounds + 1; ++b) {
      h.counts.push_back(r.read_u64());
    }
    h.sum = r.read_u64();
    h.count = r.read_u64();
    m.snapshot.histograms.push_back(std::move(h));
  }
  finish(frame, r, "metrics-response");
  return m;
}

}  // namespace bbmg
