#include "serve/server.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "durable/wal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/trace_context.hpp"
#include "serve/net.hpp"
#include "serve/serve_metrics.hpp"

namespace bbmg {

namespace {

/// A period must fit in one WAL record or the durable path cannot log it
/// (WalWriter::append throws, which would poison the session).  Events
/// frames are individually under the frame cap but accumulate across
/// frames, so the accumulated period is capped here and rejected with an
/// ErrorReply at EndPeriod instead of ever reaching a worker.
constexpr std::size_t kMaxPeriodEvents =
    (durable::kMaxWalRecordPayload - 4) / kEncodedEventSize;

}  // namespace

Server::Server(ServerConfig config)
    : config_(config), manager_(config.manager) {}

Server::~Server() { stop(); }

void Server::set_cluster(std::shared_ptr<ClusterHooks> cluster) {
  BBMG_REQUIRE(listen_fd_ < 0, "set_cluster must run before start()");
  cluster_ = std::move(cluster);
  if (cluster_) {
    // The hooks outlive manager_.stop() (see header contract), so the
    // raw-pointer capture cannot dangle while a worker can still ship.
    ClusterHooks* hooks = cluster_.get();
    manager_.set_ship_hook([hooks](std::uint32_t session, std::uint64_t seq,
                                   const std::vector<Event>& events) {
      hooks->note_applied(session, seq, events);
    });
  } else {
    manager_.set_ship_hook(nullptr);
  }
}

void Server::start() {
  BBMG_REQUIRE(listen_fd_ < 0, "server already started");
  const net::Listener listener = net::listen_tcp(config_.port, config_.backlog);
  listen_fd_ = listener.fd;
  port_ = listener.port;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Unblock the accept loop and join it before closing or clearing the
  // fd: the accept thread keeps reading listen_fd_ until it exits.
  net::shutdown_socket(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  net::close_socket(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& conn : connections_) net::shutdown_socket(conn->fd);
  }
  // Connection threads exit on the shutdown-induced EOF; join outside the
  // lock (threads remove nothing themselves, the vector is stable).
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      if (connections_.empty()) break;
      conn = std::move(connections_.back());
      connections_.pop_back();
    }
    if (conn->thread.joinable()) conn->thread.join();
    net::close_socket(conn->fd);
  }
  manager_.stop();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::optional<int> fd = net::accept_connection(listen_fd_);
    if (!fd.has_value()) break;
    std::lock_guard<std::mutex> lock(connections_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      net::close_socket(*fd);
      break;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = *fd;
    Connection* raw = conn.get();
    connections_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { serve_connection(raw->fd); });
  }
}

void Server::serve_connection(int fd) {
  ServeMetrics::get().connections.inc();
  // Idle policy: a peer that sends nothing for the window trips a typed
  // ReceiveTimeout, caught below as a quiet close (no ErrorReply — the
  // client reconnects transparently on its next request).
  if (config_.idle_timeout_ms != 0) {
    net::set_socket_timeout(fd, config_.idle_timeout_ms);
  }
  FrameDecoder decoder;
  // Period under construction per session addressed by this connection.
  std::unordered_map<std::uint32_t, std::vector<Event>> pending;
  // Sessions whose current period overflowed kMaxPeriodEvents; buffering
  // stops (bounding memory) and the next EndPeriod is refused.
  std::unordered_set<std::uint32_t> oversized;
  bool greeted = false;
  std::uint16_t version = kServeMinProtocolVersion;
  // Causal tracing (v3).  env_ctx is the client's envelope for the request
  // in flight; server_root is the id of this request's first server-side
  // span (server.decode), the parent of every later stage; flow_pending
  // marks that the cross-process flow arrow has not bound yet.
  obs::TraceContext env_ctx{};
  std::uint64_t server_root = 0;
  bool flow_pending = false;
  // The context worker stages should chain from: the decode root once one
  // exists, otherwise the raw envelope.
  const auto request_ctx = [&]() -> obs::TraceContext {
    if (!env_ctx.active()) return {};
    return {env_ctx.trace_id, server_root != 0 ? server_root : env_ctx.span_id};
  };
  const auto clear_ctx = [&] {
    env_ctx = {};
    server_root = 0;
    flow_pending = false;
  };
  // Record the decode/handling span of one request frame as a child of the
  // client's span, binding the flow arrow on the first one.
  const auto note_decode = [&](std::uint64_t start_ns) {
    if (!env_ctx.active()) return;
    const std::uint64_t id = obs::record_stage(
        obs::SpanRing::instance(), "server.decode", start_ns, obs::now_ns(),
        env_ctx, flow_pending ? obs::FlowDir::In : obs::FlowDir::None);
    flow_pending = false;
    if (server_root == 0 && id != 0) server_root = id;
  };
  try {
    while (auto frame = net::read_frame(fd, decoder)) {
      switch (frame->type) {
        case FrameType::Hello: {
          const HelloMsg hello = HelloMsg::decode(*frame);
          greeted = true;
          // Speak the lower of the two versions; decode() already rejected
          // anything outside [kServeMinProtocolVersion, current].
          version = hello.version < kServeProtocolVersion
                        ? hello.version
                        : kServeProtocolVersion;
          HelloMsg ack;
          ack.version = version;
          net::write_frame(fd, ack.to_frame(FrameType::HelloAck));
          break;
        }
        case FrameType::TraceContext: {
          const TraceContextMsg msg = TraceContextMsg::decode(*frame);
          env_ctx = {msg.trace_id, msg.span_id};
          server_root = 0;
          flow_pending = true;
          break;
        }
        case FrameType::TraceDumpRequest: {
          const TraceDumpRequestMsg msg = TraceDumpRequestMsg::decode(*frame);
          obs::SpanRing& ring = obs::SpanRing::instance();
          TraceDumpResponseMsg reply;
          reply.drops = ring.dropped();
          const std::vector<obs::SpanRecord> spans =
              msg.drain ? ring.drain() : ring.records();
          reply.spans.reserve(spans.size());
          for (const obs::SpanRecord& s : spans) {
            WireSpan w;
            w.name = s.name;
            w.tid = s.thread;
            w.start_ns = s.start_ns;
            w.duration_ns = s.duration_ns;
            w.trace_id = s.trace_id;
            w.span_id = s.span_id;
            w.parent_id = s.parent_id;
            w.flow = s.flow;
            reply.spans.push_back(std::move(w));
          }
          if (msg.flight) {
            obs::FlightRecorder::instance().cache_metrics();
            reply.flight = obs::FlightRecorder::instance().render();
          }
          // Stamp the clock last so the client's offset math sees the
          // freshest server time.
          reply.server_now_ns = obs::now_ns();
          net::write_frame(fd, reply.to_frame());
          break;
        }
        case FrameType::OpenSession: {
          if (!greeted) raise("protocol: open-session before hello");
          const OpenSessionMsg msg = OpenSessionMsg::decode(*frame);
          const SessionId id = manager_.open_session(
              msg.task_names, msg.to_session_config());
          SessionRefMsg reply{static_cast<std::uint32_t>(id.index())};
          net::write_frame(fd, reply.to_frame(FrameType::SessionOpened));
          break;
        }
        case FrameType::Events: {
          const std::uint64_t decode_start = obs::now_ns();
          EventsMsg msg = EventsMsg::decode(*frame);
          note_decode(decode_start);
          if (oversized.count(msg.session) != 0) break;
          auto& buffer = pending[msg.session];
          if (buffer.size() + msg.events.size() > kMaxPeriodEvents) {
            oversized.insert(msg.session);
            buffer.clear();
            buffer.shrink_to_fit();
            break;
          }
          buffer.insert(buffer.end(), msg.events.begin(), msg.events.end());
          break;
        }
        case FrameType::EndPeriod: {
          const std::uint64_t decode_start = obs::now_ns();
          const EndPeriodMsg msg = EndPeriodMsg::decode(*frame);
          note_decode(decode_start);
          if (oversized.erase(msg.session) > 0) {
            // The period never reaches a worker (its WAL record could not
            // be written); the seq stays unclaimed so the client's resume
            // accounting sees it as unacked and its flush fails loudly.
            clear_ctx();
            ErrorReplyMsg err{
                WireErrorCode::Overflow,
                "end-period: period exceeds " +
                    std::to_string(kMaxPeriodEvents) + " events"};
            net::write_frame(fd, err.to_frame());
            break;
          }
          std::vector<Event> events = std::move(pending[msg.session]);
          pending[msg.session].clear();
          // server.ack covers the blocking handoff to the shard queue —
          // the point after which the client's period is the server's
          // responsibility (backpressure shows up as a long ack span).
          const std::uint64_t ack_start = obs::now_ns();
          const obs::TraceContext ctx = request_ctx();
          const SubmitStatus status =
              manager_.submit(SessionId{msg.session}, std::move(events),
                              /*block=*/true, msg.seq, ctx);
          obs::record_stage(obs::SpanRing::instance(), "server.ack",
                            ack_start, obs::now_ns(), ctx);
          clear_ctx();
          if (status != SubmitStatus::Accepted) {
            ErrorReplyMsg err;
            err.code = status == SubmitStatus::Overflow
                           ? WireErrorCode::Overflow
                       : status == SubmitStatus::Failed
                           ? WireErrorCode::Internal
                           : WireErrorCode::UnknownSession;
            err.message = std::string("end-period: ") +
                          std::string(submit_status_name(status));
            net::write_frame(fd, err.to_frame());
          }
          break;
        }
        case FrameType::Query: {
          const std::uint64_t decode_start = obs::now_ns();
          const QueryMsg msg = QueryMsg::decode(*frame);
          note_decode(decode_start);
          const SessionId id{msg.session};
          const std::uint64_t query_start = obs::now_ns();
          if (msg.drain) manager_.drain(id);
          const QueryResult q =
              manager_.query(id, msg.probe ? &*msg.probe : nullptr);
          obs::record_stage(obs::SpanRing::instance(), "server.query",
                            query_start, obs::now_ns(), request_ctx());
          clear_ctx();
          const RobustSnapshot& snap = *q.snapshot;
          ModelReplyMsg reply;
          reply.session = msg.session;
          reply.health = static_cast<std::uint8_t>(snap.health);
          reply.periods_seen = snap.periods_seen;
          reply.periods_learned = snap.periods_learned;
          reply.periods_quarantined = snap.periods_quarantined;
          reply.repairs = snap.repairs;
          reply.converged = snap.result.converged() ? 1 : 0;
          reply.num_hypotheses =
              static_cast<std::uint32_t>(snap.result.hypotheses.size());
          reply.lub = snap.result.hypotheses.empty()
                          ? DependencyMatrix(0)
                          : snap.result.lub();
          reply.weight = reply.lub.weight();
          reply.verdict = static_cast<std::uint8_t>(q.verdict);
          reply.num_violations =
              static_cast<std::uint32_t>(q.violations.size());
          net::write_frame(fd, reply.to_frame());
          break;
        }
        case FrameType::Resume: {
          const SessionRefMsg msg = SessionRefMsg::decode(*frame);
          std::uint64_t high_water = 0;
          try {
            high_water = manager_.resume_high_water(SessionId{msg.session});
          } catch (const std::exception& e) {
            ErrorReplyMsg err{WireErrorCode::UnknownSession, e.what()};
            net::write_frame(fd, err.to_frame());
            break;
          }
          // A replicating primary acks only what the follower also holds:
          // clients then keep (and after a failover resend) the periods in
          // the replication gap — bounded lag, no silent divergence.
          if (cluster_) {
            high_water = cluster_->bounded_high_water(msg.session, high_water);
          }
          ResumeAckMsg reply{msg.session, high_water};
          net::write_frame(fd, reply.to_frame());
          break;
        }
        case FrameType::ClusterMapRequest: {
          (void)ClusterMapRequestMsg::decode(*frame);
          if (!cluster_) {
            ErrorReplyMsg err{WireErrorCode::Internal,
                              "cluster-map: this server is not in cluster "
                              "mode"};
            net::write_frame(fd, err.to_frame());
            break;
          }
          net::write_frame(fd, cluster_->cluster_map().to_frame());
          break;
        }
        case FrameType::OpenSessionAs: {
          if (!greeted) raise("protocol: open-session-as before hello");
          const OpenSessionAsMsg msg = OpenSessionAsMsg::decode(*frame);
          try {
            const SessionId id = manager_.open_session_with_id(
                msg.session, msg.task_names, msg.to_session_config());
            SessionRefMsg reply{static_cast<std::uint32_t>(id.index())};
            net::write_frame(fd, reply.to_frame(FrameType::SessionOpened));
          } catch (const std::exception& e) {
            ErrorReplyMsg err{WireErrorCode::Internal, e.what()};
            net::write_frame(fd, err.to_frame());
          }
          break;
        }
        case FrameType::OpenClusterSession: {
          if (!greeted) raise("protocol: open-cluster-session before hello");
          const OpenClusterSessionMsg msg =
              OpenClusterSessionMsg::decode(*frame);
          if (!cluster_) {
            ErrorReplyMsg err{WireErrorCode::Internal,
                              "open-cluster-session: this server is not in "
                              "cluster mode"};
            net::write_frame(fd, err.to_frame());
            break;
          }
          if (const auto redirect = cluster_->route(msg.key)) {
            net::write_frame(fd, redirect->to_frame());
            break;
          }
          const SessionId id =
              manager_.open_session(msg.task_names, msg.to_session_config());
          SessionRefMsg reply{static_cast<std::uint32_t>(id.index())};
          net::write_frame(fd, reply.to_frame(FrameType::SessionOpened));
          break;
        }
        case FrameType::MetricsRequest: {
          (void)MetricsRequestMsg::decode(*frame);
          MetricsResponseMsg reply;
          reply.snapshot = obs::MetricsRegistry::instance().snapshot();
          net::write_frame(fd, reply.to_frame());
          break;
        }
        case FrameType::CloseSession: {
          const SessionRefMsg msg = SessionRefMsg::decode(*frame);
          if (!manager_.close_session(SessionId{msg.session})) {
            ErrorReplyMsg err{WireErrorCode::UnknownSession,
                              "close-session: unknown session"};
            net::write_frame(fd, err.to_frame());
            break;
          }
          net::write_frame(fd,
                           SessionRefMsg{msg.session}.to_frame(
                               FrameType::SessionClosed));
          break;
        }
        default:
          raise("protocol: unexpected frame type from client");
      }
    }
  } catch (const net::ReceiveTimeout&) {
    // Idle policy tripped (--idle-timeout): close quietly, no ErrorReply —
    // this is housekeeping, not a protocol failure.  A deadline that fires
    // mid-frame is counted the same way; the client's unacked buffer
    // resends anything lost.
    ServeMetrics::get().connections_idle_closed.inc();
    BBMG_LOG_INFO("serve.connection_idle_closed",
                  "closed an idle connection",
                  {{"idle_timeout_ms", config_.idle_timeout_ms}});
  } catch (const std::exception& e) {
    // Best-effort error report; the connection dies either way, the
    // server and every other session keep running.
    BBMG_LOG_WARN("serve.connection_error", e.what(), {{"greeted", greeted}});
    try {
      ErrorReplyMsg err{WireErrorCode::BadFrame, e.what()};
      net::write_frame(fd, err.to_frame());
    } catch (...) {
    }
  }
  net::shutdown_socket(fd);
}

}  // namespace bbmg
