// bbmg_client: replay a recorded trace against a running bbmg_served and
// fetch the learned model back — the socket twin of `trace_tool learn`.
//
//   bbmg_client replay <host> <port> <in.trace> [out.model] [bound]
//       stream every period of <in.trace> (text or binary format) into a
//       fresh session, drain, fetch the model; optionally save it in the
//       matrix_io text format and compare-ready for the offline pipeline.
//   bbmg_client query <host> <port> <session-id>
//       fetch the current model of an existing session.
//   bbmg_client check <host> <port> <session-id> <in.trace>
//       conformance-check every period of <in.trace> against the served
//       model of <session-id> (probe queries; no learning).
//   bbmg_client metrics <host> <port> [--json]
//       fetch the server's observability snapshot and print it in
//       Prometheus text exposition format (or one JSON object).
//   bbmg_client resume <host> <port> <session-id>
//       report the session's durable high-water mark (the sequence number
//       below which every period survives a server crash).
//
// replay streams through the ResilientClient: periods carry sequence
// numbers, and connection failures retry with exponential backoff, resume
// the session, and resend whatever the server had not yet made durable.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "lattice/matrix_io.hpp"
#include "obs/exposition.hpp"
#include "serve/resilient_client.hpp"
#include "trace/binary_codec.hpp"
#include "trace/serialize.hpp"

using namespace bbmg;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  bbmg_client replay <host> <port> <in.trace> [out.model] "
               "[bound]\n"
               "  bbmg_client query <host> <port> <session-id>\n"
               "  bbmg_client check <host> <port> <session-id> <in.trace>\n"
               "  bbmg_client metrics <host> <port> [--json]\n"
               "  bbmg_client resume <host> <port> <session-id>\n");
  return 2;
}

/// Load a trace in either format: binary if the BBTC magic matches, text
/// otherwise.
Trace load_any_trace(const std::string& path) {
  try {
    return load_trace_file_binary(path);
  } catch (const Error&) {
    return load_trace_file(path);
  }
}

void print_snapshot(const WireSnapshot& snap,
                    const std::vector<std::string>& names) {
  std::printf("session %u: %llu periods seen, %llu learned, %llu "
              "quarantined, %llu repairs (health: %s)\n",
              snap.session,
              static_cast<unsigned long long>(snap.periods_seen),
              static_cast<unsigned long long>(snap.periods_learned),
              static_cast<unsigned long long>(snap.periods_quarantined),
              static_cast<unsigned long long>(snap.repairs),
              std::string(health_state_name(snap.health)).c_str());
  std::printf("model: %u hypotheses (%s), dLUB weight %llu\n",
              snap.num_hypotheses, snap.converged ? "converged" : "open",
              static_cast<unsigned long long>(snap.weight));
  std::printf("%s", snap.lub.to_table(names).c_str());
}

int cmd_replay(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string host = argv[2];
  const auto port = static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10));
  const Trace trace = load_any_trace(argv[4]);
  const std::uint32_t bound =
      argc > 6 ? static_cast<std::uint32_t>(std::strtoul(argv[6], nullptr, 10))
               : 16;

  ResilientClient client;
  client.connect(host, port);
  const std::uint32_t session = client.open_session(trace.task_names(), bound);
  std::size_t sent = 0;
  for (const Period& p : trace.periods()) {
    client.send_period(session, p.to_events());
    ++sent;
  }
  const std::uint64_t durable = client.flush(session);
  std::printf("streamed %zu periods (%zu event pairs) to session %u "
              "(durable through seq %llu)\n",
              sent, trace.total_event_pairs(), session,
              static_cast<unsigned long long>(durable));
  const WireSnapshot snap = client.query(session, /*drain=*/true);
  print_snapshot(snap, trace.task_names());
  if (argc > 5) {
    save_matrix_file(argv[5], snap.lub, trace.task_names());
    std::printf("saved dLUB model -> %s\n", argv[5]);
  }
  return 0;
}

int cmd_query(int argc, char** argv) {
  if (argc < 5) return usage();
  ServeClient client;
  client.connect(argv[2],
                 static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10)));
  const auto session =
      static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10));
  const WireSnapshot snap = client.query(session, /*drain=*/false);
  print_snapshot(snap, {});
  return 0;
}

int cmd_check(int argc, char** argv) {
  if (argc < 6) return usage();
  ServeClient client;
  client.connect(argv[2],
                 static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10)));
  const auto session =
      static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10));
  const Trace trace = load_any_trace(argv[5]);
  std::size_t conforming = 0, violating = 0, unverifiable = 0;
  for (const Period& p : trace.periods()) {
    const std::vector<Event> probe = p.to_events();
    const WireSnapshot snap = client.query(session, /*drain=*/false, &probe);
    switch (snap.verdict) {
      case ProbeVerdict::Conforms:
        ++conforming;
        break;
      case ProbeVerdict::Violates:
        ++violating;
        break;
      default:
        ++unverifiable;
        break;
    }
  }
  std::printf("%zu periods: %zu conform, %zu violate, %zu unverifiable\n",
              trace.num_periods(), conforming, violating, unverifiable);
  return violating == 0 ? 0 : 1;
}

int cmd_metrics(int argc, char** argv) {
  if (argc < 4) return usage();
  const bool json = argc > 4 && std::strcmp(argv[4], "--json") == 0;
  ServeClient client;
  client.connect(argv[2],
                 static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10)));
  const obs::MetricsSnapshot snap = client.fetch_metrics();
  const std::string text =
      json ? obs::to_json(snap) : obs::to_prometheus(snap);
  std::fwrite(text.data(), 1, text.size(), stdout);
  if (json) std::fputc('\n', stdout);
  return 0;
}

int cmd_resume(int argc, char** argv) {
  if (argc < 5) return usage();
  ServeClient client;
  client.connect(argv[2],
                 static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10)));
  const auto session =
      static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10));
  const std::uint64_t high_water = client.resume(session);
  std::printf("session %u: durable high-water mark %llu\n", session,
              static_cast<unsigned long long>(high_water));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "replay") == 0) return cmd_replay(argc, argv);
    if (std::strcmp(argv[1], "query") == 0) return cmd_query(argc, argv);
    if (std::strcmp(argv[1], "check") == 0) return cmd_check(argc, argv);
    if (std::strcmp(argv[1], "metrics") == 0) return cmd_metrics(argc, argv);
    if (std::strcmp(argv[1], "resume") == 0) return cmd_resume(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbmg_client: error: %s\n", e.what());
    return 2;
  }
  return usage();
}
