// bbmg_client: replay a recorded trace against a running bbmg_served and
// fetch the learned model back — the socket twin of `trace_tool learn`.
//
//   bbmg_client replay <host> <port> <in.trace> [out.model] [bound]
//       stream every period of <in.trace> (text or binary format) into a
//       fresh session, drain, fetch the model; optionally save it in the
//       matrix_io text format and compare-ready for the offline pipeline.
//   bbmg_client query <host> <port> <session-id>
//       fetch the current model of an existing session.
//   bbmg_client check <host> <port> <session-id> <in.trace>
//       conformance-check every period of <in.trace> against the served
//       model of <session-id> (probe queries; no learning).
//   bbmg_client metrics <host> <port> [--json]
//       fetch the server's observability snapshot and print it in
//       Prometheus text exposition format (or one JSON object).
//   bbmg_client resume <host> <port> <session-id>
//       report the session's durable high-water mark (the sequence number
//       below which every period survives a server crash).
//   bbmg_client map <host> <port>
//       fetch any cluster node's map: epoch plus each shard's primary and
//       follower endpoints (the node must run with --cluster-map).
//   bbmg_client trace <host> <port> [--chrome [out.json]]
//                     [--merge <spans.bin>] [--flight]
//       pull the server's causal span ring.  --chrome writes a Chrome
//       about://tracing JSON (default bbmg_trace.json); --merge folds in
//       client-side spans saved by `replay --trace`, producing one
//       timeline with flow arrows linking the two processes; --flight
//       also prints the server's flight-recorder dump.
//
// replay streams through the ResilientClient: periods carry sequence
// numbers, and connection failures retry with exponential backoff, resume
// the session, and resend whatever the server had not yet made durable.
// With `replay ... --trace <spans.bin>` every period send mints a trace
// id, carries it to the server as a v3 envelope, and the client's own
// spans are saved to <spans.bin> — already shifted onto the server's
// clock, so `trace --merge` needs no cross-file time math.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_map.hpp"
#include "common/error.hpp"
#include "lattice/matrix_io.hpp"
#include "obs/exposition.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"
#include "serve/resilient_client.hpp"
#include "trace/binary_codec.hpp"
#include "trace/serialize.hpp"

using namespace bbmg;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  bbmg_client replay <host> <port> <in.trace> [out.model] "
               "[bound] [--trace <spans.bin>]\n"
               "  bbmg_client query <host> <port> <session-id>\n"
               "  bbmg_client check <host> <port> <session-id> <in.trace>\n"
               "  bbmg_client metrics <host> <port> [--json]\n"
               "  bbmg_client resume <host> <port> <session-id>\n"
               "  bbmg_client map <host> <port>\n"
               "  bbmg_client trace <host> <port> [--chrome [out.json]] "
               "[--merge <spans.bin>] [--flight]\n");
  return 2;
}

/// Export pids of the merged timeline: client spans under 1, server under 2.
constexpr std::uint32_t kClientPid = 1;
constexpr std::uint32_t kServerPid = 2;

std::vector<obs::ExportSpan> wire_to_export(const std::vector<WireSpan>& spans,
                                            std::uint32_t pid) {
  std::vector<obs::ExportSpan> out;
  out.reserve(spans.size());
  for (const WireSpan& s : spans) {
    obs::ExportSpan e;
    e.name = s.name;
    e.pid = pid;
    e.tid = s.tid;
    e.start_ns = s.start_ns;
    e.duration_ns = s.duration_ns;
    e.trace_id = s.trace_id;
    e.span_id = s.span_id;
    e.parent_id = s.parent_id;
    e.flow = s.flow;
    out.push_back(std::move(e));
  }
  return out;
}

/// Client-side spans travel between processes (replay -> trace) as one
/// TraceDumpResponse frame in a file — same codec, same bounds checks.
void save_spans_file(const std::string& path, const TraceDumpResponseMsg& msg) {
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, msg.to_frame());
  std::ofstream ofs(path, std::ios::binary);
  BBMG_REQUIRE(ofs.good(), "cannot open span file for writing: " + path);
  ofs.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  BBMG_REQUIRE(ofs.good(), "failed writing span file: " + path);
}

TraceDumpResponseMsg load_spans_file(const std::string& path) {
  std::ifstream ifs(path, std::ios::binary);
  BBMG_REQUIRE(ifs.good(), "cannot open span file: " + path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(ifs)),
                          std::istreambuf_iterator<char>());
  FrameDecoder decoder;
  decoder.feed(reinterpret_cast<const std::uint8_t*>(bytes.data()),
               bytes.size());
  std::optional<Frame> frame = decoder.next();
  BBMG_REQUIRE(frame.has_value() &&
                   frame->type == FrameType::TraceDumpResponse,
               "span file does not hold a trace dump: " + path);
  return TraceDumpResponseMsg::decode(*frame);
}

/// Load a trace in either format: binary if the BBTC magic matches, text
/// otherwise.
Trace load_any_trace(const std::string& path) {
  try {
    return load_trace_file_binary(path);
  } catch (const Error&) {
    return load_trace_file(path);
  }
}

void print_snapshot(const WireSnapshot& snap,
                    const std::vector<std::string>& names) {
  std::printf("session %u: %llu periods seen, %llu learned, %llu "
              "quarantined, %llu repairs (health: %s)\n",
              snap.session,
              static_cast<unsigned long long>(snap.periods_seen),
              static_cast<unsigned long long>(snap.periods_learned),
              static_cast<unsigned long long>(snap.periods_quarantined),
              static_cast<unsigned long long>(snap.repairs),
              std::string(health_state_name(snap.health)).c_str());
  std::printf("model: %u hypotheses (%s), dLUB weight %llu\n",
              snap.num_hypotheses, snap.converged ? "converged" : "open",
              static_cast<unsigned long long>(snap.weight));
  std::printf("%s", snap.lub.to_table(names).c_str());
}

int cmd_replay(int argc, char** argv) {
  std::string span_file;
  std::vector<const char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) return usage();
      span_file = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 3) return usage();
  const std::string host = positional[0];
  const auto port =
      static_cast<std::uint16_t>(std::strtoul(positional[1], nullptr, 10));
  const Trace trace = load_any_trace(positional[2]);
  const std::uint32_t bound =
      positional.size() > 4
          ? static_cast<std::uint32_t>(std::strtoul(positional[4], nullptr, 10))
          : 16;

  ResilientClient client;
  if (!span_file.empty()) client.set_tracing(true);
  client.connect(host, port);
  const std::uint32_t session = client.open_session(trace.task_names(), bound);
  std::size_t sent = 0;
  for (const Period& p : trace.periods()) {
    client.send_period(session, p.to_events());
    ++sent;
  }
  const std::uint64_t durable = client.flush(session);
  std::printf("streamed %zu periods (%zu event pairs) to session %u "
              "(durable through seq %llu)\n",
              sent, trace.total_event_pairs(), session,
              static_cast<unsigned long long>(durable));
  const WireSnapshot snap = client.query(session, /*drain=*/true);
  print_snapshot(snap, trace.task_names());
  if (positional.size() > 3) {
    save_matrix_file(positional[3], snap.lub, trace.task_names());
    std::printf("saved dLUB model -> %s\n", positional[3]);
  }
  if (!span_file.empty()) {
    // Save this process's spans pre-shifted onto the server's clock so a
    // later `trace --merge` never has to reconcile two steady_clock
    // epochs.  The drain=false probe costs one round trip and tells us
    // the server's "now"; offset = server_now - local_now aligns the two
    // timelines to within that round trip's latency.
    const TraceDumpResponseMsg probe =
        client.fetch_trace_dump(/*drain=*/false);
    const std::int64_t offset =
        static_cast<std::int64_t>(probe.server_now_ns) -
        static_cast<std::int64_t>(obs::now_ns());
    TraceDumpResponseMsg out;
    out.server_now_ns = probe.server_now_ns;
    out.drops = obs::SpanRing::instance().dropped();
    const std::vector<obs::SpanRecord> local =
        obs::SpanRing::instance().drain();
    out.spans.reserve(local.size());
    for (const obs::SpanRecord& r : local) {
      WireSpan w;
      w.name = r.name != nullptr ? r.name : "";
      w.tid = r.thread;
      const std::int64_t shifted = static_cast<std::int64_t>(r.start_ns) + offset;
      w.start_ns = shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0;
      w.duration_ns = r.duration_ns;
      w.trace_id = r.trace_id;
      w.span_id = r.span_id;
      w.parent_id = r.parent_id;
      w.flow = r.flow;
      out.spans.push_back(std::move(w));
    }
    save_spans_file(span_file, out);
    std::printf("saved %zu client spans -> %s (server-clock aligned)\n",
                out.spans.size(), span_file.c_str());
  }
  return 0;
}

int cmd_query(int argc, char** argv) {
  if (argc < 5) return usage();
  ServeClient client;
  client.connect(argv[2],
                 static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10)));
  const auto session =
      static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10));
  const WireSnapshot snap = client.query(session, /*drain=*/false);
  print_snapshot(snap, {});
  return 0;
}

int cmd_check(int argc, char** argv) {
  if (argc < 6) return usage();
  ServeClient client;
  client.connect(argv[2],
                 static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10)));
  const auto session =
      static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10));
  const Trace trace = load_any_trace(argv[5]);
  std::size_t conforming = 0, violating = 0, unverifiable = 0;
  for (const Period& p : trace.periods()) {
    const std::vector<Event> probe = p.to_events();
    const WireSnapshot snap = client.query(session, /*drain=*/false, &probe);
    switch (snap.verdict) {
      case ProbeVerdict::Conforms:
        ++conforming;
        break;
      case ProbeVerdict::Violates:
        ++violating;
        break;
      default:
        ++unverifiable;
        break;
    }
  }
  std::printf("%zu periods: %zu conform, %zu violate, %zu unverifiable\n",
              trace.num_periods(), conforming, violating, unverifiable);
  return violating == 0 ? 0 : 1;
}

int cmd_metrics(int argc, char** argv) {
  if (argc < 4) return usage();
  const bool json = argc > 4 && std::strcmp(argv[4], "--json") == 0;
  ServeClient client;
  client.connect(argv[2],
                 static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10)));
  const obs::MetricsSnapshot snap = client.fetch_metrics();
  const std::string text =
      json ? obs::to_json(snap) : obs::to_prometheus(snap);
  std::fwrite(text.data(), 1, text.size(), stdout);
  if (json) std::fputc('\n', stdout);
  return 0;
}

int cmd_resume(int argc, char** argv) {
  if (argc < 5) return usage();
  ServeClient client;
  client.connect(argv[2],
                 static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10)));
  const auto session =
      static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10));
  const std::uint64_t high_water = client.resume(session);
  std::printf("session %u: durable high-water mark %llu\n", session,
              static_cast<unsigned long long>(high_water));
  return 0;
}

int cmd_map(int argc, char** argv) {
  if (argc < 4) return usage();
  ServeClient client;
  client.connect(argv[2],
                 static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10)));
  const cluster::ClusterMap map =
      cluster::ClusterMap::from_wire(client.fetch_cluster_map());
  std::printf("cluster map epoch %llu, %zu shards\n",
              static_cast<unsigned long long>(map.epoch), map.shards.size());
  for (std::size_t s = 0; s < map.shards.size(); ++s) {
    const cluster::ClusterShard& shard = map.shards[s];
    std::printf("  shard %zu: primary %s%s%s\n", s,
                shard.primary.str().c_str(),
                shard.has_follower() ? ", follower " : "",
                shard.has_follower() ? shard.follower.str().c_str() : "");
  }
  return 0;
}

int cmd_trace(int argc, char** argv) {
  if (argc < 4) return usage();
  bool chrome = false;
  bool flight = false;
  std::string out_json = "bbmg_trace.json";
  std::string merge_file;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chrome") == 0) {
      chrome = true;
      // --chrome takes an optional output path; a following token that is
      // not a flag is the path.
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        out_json = argv[++i];
      }
    } else if (std::strcmp(argv[i], "--merge") == 0) {
      if (i + 1 >= argc) return usage();
      merge_file = argv[++i];
    } else if (std::strcmp(argv[i], "--flight") == 0) {
      flight = true;
    } else {
      return usage();
    }
  }

  ServeClient client;
  client.connect(argv[2],
                 static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10)));
  const TraceDumpResponseMsg dump =
      client.fetch_trace_dump(/*drain=*/true, flight);
  std::printf("server: %zu spans (%llu evicted before fetch)\n",
              dump.spans.size(),
              static_cast<unsigned long long>(dump.drops));

  std::vector<obs::ExportSpan> merged = wire_to_export(dump.spans, kServerPid);
  if (!merge_file.empty()) {
    const TraceDumpResponseMsg local = load_spans_file(merge_file);
    std::printf("merged: %zu client spans from %s\n", local.spans.size(),
                merge_file.c_str());
    std::vector<obs::ExportSpan> client_spans =
        wire_to_export(local.spans, kClientPid);
    merged.insert(merged.end(), client_spans.begin(), client_spans.end());
  }

  if (chrome) {
    obs::write_chrome_trace(merged, out_json);
    std::printf("wrote Chrome trace (%zu spans) -> %s\n", merged.size(),
                out_json.c_str());
  } else {
    for (const obs::ExportSpan& s : merged) {
      std::printf("  [%s pid=%u tid=%u] %-22s start=%llu dur=%lluus "
                  "trace=%016llx span=%016llx parent=%016llx%s\n",
                  s.pid == kServerPid ? "server" : "client", s.pid, s.tid,
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.start_ns),
                  static_cast<unsigned long long>(s.duration_ns / 1000),
                  static_cast<unsigned long long>(s.trace_id),
                  static_cast<unsigned long long>(s.span_id),
                  static_cast<unsigned long long>(s.parent_id),
                  s.flow == 1 ? " flow-out" : s.flow == 2 ? " flow-in" : "");
    }
  }
  if (flight && !dump.flight.empty()) {
    std::printf("--- server flight recorder ---\n%s", dump.flight.c_str());
    if (dump.flight.back() != '\n') std::fputc('\n', stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "replay") == 0) return cmd_replay(argc, argv);
    if (std::strcmp(argv[1], "query") == 0) return cmd_query(argc, argv);
    if (std::strcmp(argv[1], "check") == 0) return cmd_check(argc, argv);
    if (std::strcmp(argv[1], "metrics") == 0) return cmd_metrics(argc, argv);
    if (std::strcmp(argv[1], "resume") == 0) return cmd_resume(argc, argv);
    if (std::strcmp(argv[1], "map") == 0) return cmd_map(argc, argv);
    if (std::strcmp(argv[1], "trace") == 0) return cmd_trace(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbmg_client: error: %s\n", e.what());
    return 2;
  }
  return usage();
}
