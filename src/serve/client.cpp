#include "serve/client.hpp"

#include "common/error.hpp"
#include "serve/net.hpp"
#include "trace/event.hpp"

namespace bbmg {

ServeClient::~ServeClient() { disconnect(); }

void ServeClient::connect(const std::string& host, std::uint16_t port) {
  BBMG_REQUIRE(fd_ < 0, "client already connected");
  fd_ = net::connect_tcp(host, port);
  if (request_timeout_ms_ != 0) {
    net::set_socket_timeout(fd_, request_timeout_ms_);
  }
  try {
    net::write_frame(fd_, HelloMsg{}.to_frame(FrameType::Hello));
    const HelloMsg ack = HelloMsg::decode(expect_reply(FrameType::HelloAck));
    // The server echoes the negotiated version; min() guards against a
    // peer that echoes its own maximum instead.
    peer_version_ = ack.version < kServeProtocolVersion
                        ? ack.version
                        : kServeProtocolVersion;
  } catch (...) {
    disconnect();
    throw;
  }
}

void ServeClient::disconnect() {
  if (fd_ >= 0) {
    net::shutdown_socket(fd_);
    net::close_socket(fd_);
    fd_ = -1;
  }
}

Frame ServeClient::expect_reply(FrameType expected) {
  BBMG_REQUIRE(fd_ >= 0, "client not connected");
  std::optional<Frame> frame = net::read_frame(fd_, decoder_);
  if (!frame.has_value()) {
    raise("client: server closed the connection while awaiting a reply");
  }
  if (frame->type == FrameType::ErrorReply) {
    const ErrorReplyMsg err = ErrorReplyMsg::decode(*frame);
    throw ServerError(err.code, err.message);
  }
  if (frame->type != expected) {
    raise("client: unexpected reply frame type");
  }
  return std::move(*frame);
}

std::uint32_t ServeClient::open_session(
    const std::vector<std::string>& task_names, std::uint32_t bound,
    SanitizePolicy policy, std::uint32_t snapshot_interval) {
  OpenSessionMsg msg;
  msg.task_names = task_names;
  msg.bound = bound;
  msg.policy = policy;
  msg.snapshot_interval = snapshot_interval;
  net::write_frame(fd_, msg.to_frame());
  return SessionRefMsg::decode(expect_reply(FrameType::SessionOpened)).session;
}

void ServeClient::open_session_as(std::uint32_t session,
                                  const std::vector<std::string>& task_names,
                                  std::uint32_t bound, SanitizePolicy policy,
                                  std::uint32_t snapshot_interval) {
  BBMG_REQUIRE(fd_ >= 0, "client not connected");
  BBMG_REQUIRE(peer_version_ >= 4,
               "open_session_as requires a v4 peer (server is v" +
                   std::to_string(peer_version_) + ")");
  OpenSessionAsMsg msg;
  msg.session = session;
  msg.task_names = task_names;
  msg.bound = bound;
  msg.policy = policy;
  msg.snapshot_interval = snapshot_interval;
  net::write_frame(fd_, msg.to_frame());
  const SessionRefMsg ref =
      SessionRefMsg::decode(expect_reply(FrameType::SessionOpened));
  BBMG_REQUIRE(ref.session == session,
               "open_session_as: server opened a different session id");
}

std::uint32_t ServeClient::open_cluster_session(
    const std::string& key, const std::vector<std::string>& task_names,
    std::uint32_t bound, SanitizePolicy policy,
    std::uint32_t snapshot_interval) {
  BBMG_REQUIRE(fd_ >= 0, "client not connected");
  BBMG_REQUIRE(peer_version_ >= 4,
               "open_cluster_session requires a v4 peer (server is v" +
                   std::to_string(peer_version_) + ")");
  OpenClusterSessionMsg msg;
  msg.key = key;
  msg.task_names = task_names;
  msg.bound = bound;
  msg.policy = policy;
  msg.snapshot_interval = snapshot_interval;
  net::write_frame(fd_, msg.to_frame());
  std::optional<Frame> frame = net::read_frame(fd_, decoder_);
  if (!frame.has_value()) {
    raise("client: server closed the connection while awaiting a reply");
  }
  if (frame->type == FrameType::Redirect) {
    throw Redirected(RedirectMsg::decode(*frame));
  }
  if (frame->type == FrameType::ErrorReply) {
    const ErrorReplyMsg err = ErrorReplyMsg::decode(*frame);
    throw ServerError(err.code, err.message);
  }
  if (frame->type != FrameType::SessionOpened) {
    raise("client: unexpected reply frame type");
  }
  return SessionRefMsg::decode(*frame).session;
}

ClusterMapResponseMsg ServeClient::fetch_cluster_map() {
  BBMG_REQUIRE(fd_ >= 0, "client not connected");
  BBMG_REQUIRE(peer_version_ >= 4,
               "cluster map requires a v4 peer (server is v" +
                   std::to_string(peer_version_) + ")");
  net::write_frame(fd_, ClusterMapRequestMsg{}.to_frame());
  return ClusterMapResponseMsg::decode(
      expect_reply(FrameType::ClusterMapResponse));
}

void ServeClient::append_ctx_frame(std::vector<std::uint8_t>& bytes,
                                   const obs::TraceContext& ctx) const {
  if (!ctx.active() || peer_version_ < 3) return;
  append_frame(bytes, TraceContextMsg{ctx.trace_id, ctx.span_id}.to_frame());
}

void ServeClient::send_period(std::uint32_t session,
                              const std::vector<Event>& events,
                              std::uint64_t seq,
                              const obs::TraceContext& ctx) {
  BBMG_REQUIRE(fd_ >= 0, "client not connected");
  EventsMsg msg;
  msg.session = session;
  msg.events = events;
  // One write for all frames: the envelope, the period payload, and its
  // delimiter.
  std::vector<std::uint8_t> bytes;
  append_ctx_frame(bytes, ctx);
  append_frame(bytes, msg.to_frame());
  append_frame(bytes, EndPeriodMsg{session, seq}.to_frame());
  net::write_all(fd_, bytes.data(), bytes.size());
}

std::uint64_t ServeClient::resume(std::uint32_t session) {
  BBMG_REQUIRE(fd_ >= 0, "client not connected");
  net::write_frame(fd_, SessionRefMsg{session}.to_frame(FrameType::Resume));
  const ResumeAckMsg ack =
      ResumeAckMsg::decode(expect_reply(FrameType::ResumeAck));
  BBMG_REQUIRE(ack.session == session, "resume: session mismatch in ack");
  return ack.high_water;
}

std::size_t ServeClient::send_trace(std::uint32_t session, const Trace& trace) {
  for (const Period& p : trace.periods()) {
    send_period(session, p.to_events());
  }
  return trace.num_periods();
}

WireSnapshot ServeClient::query(std::uint32_t session, bool drain,
                                const std::vector<Event>* probe,
                                const obs::TraceContext& ctx) {
  BBMG_REQUIRE(fd_ >= 0, "client not connected");
  QueryMsg msg;
  msg.session = session;
  msg.drain = drain;
  if (probe != nullptr) msg.probe = *probe;
  std::vector<std::uint8_t> bytes;
  append_ctx_frame(bytes, ctx);
  append_frame(bytes, msg.to_frame());
  net::write_all(fd_, bytes.data(), bytes.size());
  const ModelReplyMsg reply =
      ModelReplyMsg::decode(expect_reply(FrameType::ModelReply));
  WireSnapshot snap;
  snap.session = reply.session;
  snap.health = static_cast<HealthState>(reply.health);
  snap.periods_seen = reply.periods_seen;
  snap.periods_learned = reply.periods_learned;
  snap.periods_quarantined = reply.periods_quarantined;
  snap.repairs = reply.repairs;
  snap.converged = reply.converged != 0;
  snap.num_hypotheses = reply.num_hypotheses;
  snap.weight = reply.weight;
  snap.verdict = static_cast<ProbeVerdict>(reply.verdict);
  snap.num_violations = reply.num_violations;
  snap.lub = reply.lub;
  return snap;
}

obs::MetricsSnapshot ServeClient::fetch_metrics() {
  BBMG_REQUIRE(fd_ >= 0, "client not connected");
  net::write_frame(fd_, MetricsRequestMsg{}.to_frame());
  return MetricsResponseMsg::decode(expect_reply(FrameType::MetricsResponse))
      .snapshot;
}

TraceDumpResponseMsg ServeClient::fetch_trace_dump(bool drain, bool flight) {
  BBMG_REQUIRE(fd_ >= 0, "client not connected");
  BBMG_REQUIRE(peer_version_ >= 3,
               "trace dump requires a v3 peer (server is v" +
                   std::to_string(peer_version_) + ")");
  TraceDumpRequestMsg req;
  req.drain = drain;
  req.flight = flight;
  net::write_frame(fd_, req.to_frame());
  return TraceDumpResponseMsg::decode(
      expect_reply(FrameType::TraceDumpResponse));
}

void ServeClient::close_session(std::uint32_t session) {
  BBMG_REQUIRE(fd_ >= 0, "client not connected");
  net::write_frame(fd_, SessionRefMsg{session}.to_frame(FrameType::CloseSession));
  (void)SessionRefMsg::decode(expect_reply(FrameType::SessionClosed));
}

}  // namespace bbmg
