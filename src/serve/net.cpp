#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include "common/error.hpp"

// Linux spells the don't-raise-SIGPIPE flag MSG_NOSIGNAL on send();
// macOS/BSD instead set SO_NOSIGPIPE once per socket.  Normalize so the
// send path below compiles (and is safe) on both.
#ifndef MSG_NOSIGNAL
#define BBMG_MSG_NOSIGNAL 0
#else
#define BBMG_MSG_NOSIGNAL MSG_NOSIGNAL
#endif

namespace bbmg::net {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  std::ostringstream os;
  os << "net: " << what << ": " << std::strerror(errno);
  raise(os.str());
}

void set_nosigpipe(int fd) {
#ifdef SO_NOSIGPIPE
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

}  // namespace

void ignore_sigpipe() {
  // Process-wide and idempotent; SIG_IGN survives fork/exec of children
  // that reset handlers, which is all we need for the daemon.
  (void)std::signal(SIGPIPE, SIG_IGN);
}

void set_socket_timeout(int fd, std::uint32_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    raise_errno("setsockopt timeout");
  }
}

Listener listen_tcp(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    raise_errno("bind");
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    raise_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    raise_errno("getsockname");
  }
  return Listener{fd, ntohs(addr.sin_port)};
}

std::optional<int> accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      set_nosigpipe(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    // EBADF/EINVAL: the listener was closed or shut down — clean stop.
    return std::nullopt;
  }
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    raise("net: invalid IPv4 address: " + host);
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      set_nosigpipe(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    raise_errno("connect to " + host);
  }
}

void close_socket(int fd) {
  if (fd >= 0) ::close(fd);
}

void shutdown_socket(int fd) {
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, BBMG_MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        raise("net: send timed out (deadline exceeded)");
      }
      raise_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t FdTransport::read_some(std::uint8_t* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw ReceiveTimeout{};
    }
    raise_errno("recv");
  }
}

void FdTransport::write(const std::uint8_t* data, std::size_t size) {
  write_all(fd_, data, size);
}

void write_frame(int fd, const Frame& frame) {
  FdTransport transport(fd);
  write_frame(transport, frame);
}

void write_frame(Transport& transport, const Frame& frame) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(5 + frame.payload.size());
  append_frame(bytes, frame);
  transport.write(bytes.data(), bytes.size());
}

std::optional<Frame> read_frame(int fd, FrameDecoder& decoder) {
  FdTransport transport(fd);
  return read_frame(transport, decoder);
}

std::optional<Frame> read_frame(Transport& transport, FrameDecoder& decoder) {
  if (auto frame = decoder.next()) return frame;
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    const std::size_t n = transport.read_some(chunk, sizeof(chunk));
    if (n == 0) {
      if (decoder.buffered() != 0) {
        raise("net: connection closed mid-frame");
      }
      return std::nullopt;
    }
    decoder.feed(chunk, n);
    if (auto frame = decoder.next()) return frame;
  }
}

}  // namespace bbmg::net
