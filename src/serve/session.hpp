// One learning session: the unit of sharding in the serve layer.
//
// A session owns a RobustOnlineLearner (lenient sanitizer + degradation
// tracking, src/robust) and is pinned to exactly one worker thread of the
// SessionManager — every process() call for a session happens on that
// worker, in submission order, so the learner needs no locking and its
// result is byte-identical to feeding the same periods to a single-threaded
// RobustOnlineLearner (the determinism test's property).
//
// Queries never touch the learner.  After each processed period the worker
// publishes an immutable RobustSnapshot behind a shared_ptr; a query just
// copies the pointer (copy-on-snapshot).  The consistency guarantee is
// prefix-exactness: a query sees the model that was exact for the first k
// periods the session accepted, for some k between 0 and everything
// processed so far — never a half-updated model.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "durable/store.hpp"
#include "obs/metrics.hpp"
#include "robust/robust_online_learner.hpp"
#include "trace/event.hpp"
#include "trace/stats.hpp"

namespace bbmg {

struct SessionTag {};
using SessionId = detail::StrongIndex<SessionTag>;

/// Replication tap (cluster::Replicator): called by the session's worker
/// right after a period's WAL append with (session id, applied seq, the
/// period's events).  May block briefly when the ship queue is full.
using ShipHook =
    std::function<void(std::uint32_t, std::uint64_t, const std::vector<Event>&)>;

struct SessionConfig {
  RobustConfig robust;
  /// Publish a fresh snapshot every N processed periods (1 = every period).
  /// Regardless of N, a snapshot is published when the session's backlog
  /// empties, so a drained session always serves its final model.
  std::size_t snapshot_interval{1};
};

/// Learner state carried from a durable::RecoveredSession into a restored
/// LearningSession: the replayed learner, stream-stats totals, and the
/// applied-period high-water mark.
struct RestoredSessionState {
  RobustOnlineLearner learner;
  StreamingTraceStats::Summary stats;
  std::uint64_t seq{0};
};

class LearningSession {
 public:
  LearningSession(SessionId id, std::vector<std::string> task_names,
                  SessionConfig config);

  /// Restore from a recovered snapshot+WAL state: the session continues
  /// exactly where the pre-crash one stopped (processed == seq, counters
  /// seeded, first published snapshot is the recovered model).
  LearningSession(SessionId id, std::vector<std::string> task_names,
                  SessionConfig config, RestoredSessionState restored);

  [[nodiscard]] SessionId id() const { return id_; }
  [[nodiscard]] const std::vector<std::string>& task_names() const {
    return task_names_;
  }
  [[nodiscard]] const SessionConfig& config() const { return config_; }

  // -- producer side (any thread) --

  /// Reserve an ingest slot before pushing to the worker queue; pairs with
  /// either the worker's process() or note_rejected() if the push failed.
  void note_submitted() { accepted_.add(1); }
  void note_rejected() {
    accepted_.sub(1);
    rejected_.add(1);
  }

  /// Block until every accepted period has been processed.  Callers invoke
  /// this after their own submissions returned, so the accepted count is
  /// stable from their perspective.
  void drain();

  // -- consumer side (the session's affine worker only) --

  /// Feed one raw period to the learner, update accounting, and publish a
  /// snapshot if the interval elapsed or the backlog just emptied.
  /// enqueue_ns (obs::now_ns() at submit; 0 = unknown) feeds the
  /// enqueue->apply latency histogram.  All metric updates land before the
  /// completion publication, so a drain()-then-snapshot reader observes
  /// the counters of everything it drained.
  void process(const std::vector<Event>& period_events,
               std::uint64_t enqueue_ns = 0);

  // -- query side (any thread) --

  /// Latest published snapshot; never null (an empty-model snapshot is
  /// published at construction).
  [[nodiscard]] std::shared_ptr<const RobustSnapshot> snapshot() const;

  [[nodiscard]] std::size_t accepted() const {
    return static_cast<std::size_t>(accepted_.value());
  }
  [[nodiscard]] std::size_t rejected() const {
    return static_cast<std::size_t>(rejected_.value());
  }
  [[nodiscard]] std::size_t processed() const;

  /// Streaming descriptive statistics of everything this session ingested
  /// (raw events, pre-sanitizer); readable from any thread.
  [[nodiscard]] StreamingTraceStats::Summary stream_stats() const {
    return stream_stats_.summary();
  }

  /// Closed sessions refuse new submissions; in-flight periods still learn.
  void mark_closed() { closed_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_relaxed);
  }

  /// Poison the session after a process() failure (WAL I/O error,
  /// oversized record, disk full): further submissions are refused with
  /// SubmitStatus::Failed, drain() stops waiting on the period that never
  /// completed, and queries keep serving the last published snapshot.
  /// Called by the worker that owns the session; the learner may be in a
  /// partial state, which is why the session can never apply again.
  void mark_failed(const std::string& why);
  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }
  /// First failure's diagnostic ("" while healthy).
  [[nodiscard]] std::string failure() const;

  // -- durability (src/durable) --

  /// Attach the session's durable store.  Must happen before the first
  /// process() call (the manager attaches at open/recovery).
  void attach_store(std::shared_ptr<durable::SessionStore> store) {
    store_ = std::move(store);
  }
  [[nodiscard]] bool durable() const { return store_ != nullptr; }
  /// The attached store (null for in-memory sessions); the replicator
  /// reads its WAL path for gap fills.
  [[nodiscard]] const std::shared_ptr<durable::SessionStore>& store() const {
    return store_;
  }

  /// Install (or clear, with null) the replication tap.  Thread-safe with
  /// respect to a concurrently processing worker; periods already past
  /// their WAL append are not re-offered.
  void set_ship_hook(std::shared_ptr<const ShipHook> hook);

  /// Claim a client-assigned sequence number (monotone CAS).  Returns
  /// false when seq is at or below the current mark — an already-ingested
  /// duplicate from a client resend; the caller drops it idempotently.
  bool claim_seq(std::uint64_t seq);
  /// Undo the claim of `seq` after a failed enqueue (single producer per
  /// session, so the mark is still exactly `seq`).
  void release_seq(std::uint64_t seq);

  /// fsync the WAL tail and return the durable high-water mark (the
  /// processed count when the session runs without a store).  Callers
  /// drain() first so the mark covers everything already submitted.
  std::uint64_t flush_durable();

  /// Write a final snapshot at the current processed count (graceful
  /// shutdown).  Only call when no worker can touch the learner any more
  /// (i.e. after the manager's pool has been joined).
  void checkpoint();

 private:
  void publish();

  SessionId id_;
  std::vector<std::string> task_names_;
  SessionConfig config_;
  RobustOnlineLearner learner_;  // worker thread only, after construction
  std::size_t since_publish_{0};

  // Functional accounting on the always-on atomic primitives (these keep
  // counting when instrumentation is compiled out — drain() correctness
  // depends on accepted_).
  obs::AtomicCounter accepted_;
  obs::AtomicCounter rejected_;
  StreamingTraceStats stream_stats_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> failed_{false};
  std::string failure_;  // guarded by state_mu_; set once by mark_failed

  /// Durable store (null = in-memory session).  The worker appends to the
  /// WAL inside process() right before the learner applies, so WAL order
  /// is exactly learner-apply order — the replay-determinism invariant.
  std::shared_ptr<durable::SessionStore> store_;
  /// Highest client-assigned sequence number accepted for enqueue
  /// (duplicate-resend guard; 0 = nothing sequenced yet).
  std::atomic<std::uint64_t> last_enqueued_seq_{0};

  /// Replication tap; shared across sessions, swapped under state_mu_.
  std::shared_ptr<const ShipHook> ship_hook_;

  mutable std::mutex state_mu_;  // guards processed_, snapshot_, ship_hook_
  std::condition_variable drained_;
  std::size_t processed_{0};
  std::shared_ptr<const RobustSnapshot> snapshot_;
};

}  // namespace bbmg
