#include "serve/session_manager.hpp"

#include "common/error.hpp"
#include "durable/recovery.hpp"
#include "durable/wal.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"
#include "robust/sanitizer.hpp"
#include "serve/serve_metrics.hpp"

namespace bbmg {

std::string_view submit_status_name(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::Accepted:
      return "accepted";
    case SubmitStatus::Overflow:
      return "overflow";
    case SubmitStatus::UnknownSession:
      return "unknown-session";
    case SubmitStatus::ShuttingDown:
      return "shutting-down";
    case SubmitStatus::Failed:
      return "failed";
  }
  return "?";
}

SessionManager::SessionManager(ManagerConfig config)
    : config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
  queues_.reserve(config_.workers);
  queue_depth_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    queues_.push_back(
        std::make_unique<BoundedMpscQueue<WorkItem>>(config_.queue_capacity));
    queue_depth_.push_back(&ServeMetrics::queue_depth(i));
  }
  // Recover before the workers start so no submission can race the
  // rebuild of sessions_.
  if (config_.durable.enabled()) recover_sessions();
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void SessionManager::recover_sessions() {
  durable::RecoveryReport report = durable::recover_all(config_.durable);
  recovery_.replayed_periods = report.replayed_periods;
  recovery_.torn_tails = report.torn_tails;
  recovery_.quarantined_files = report.quarantined_files.size();
  recovery_.diagnostics = std::move(report.diagnostics);
  // open_session() allocates ids densely from zero, so any huge recovered
  // id can only come from a forged/mangled data-dir entry; honoring it
  // would drive a multi-GB sessions_ resize (or a bad_alloc abort) below.
  constexpr std::uint32_t kMaxRecoverableSessionId = 1u << 20;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (durable::RecoveredSession& rec : report.sessions) {
    if (rec.meta.session > kMaxRecoverableSessionId) {
      recovery_.diagnostics.push_back(
          "session " + std::to_string(rec.meta.session) +
          ": id beyond the recoverable cap (" +
          std::to_string(kMaxRecoverableSessionId) + "); ignored");
      continue;
    }
    const SessionId id{rec.meta.session};
    if (id.index() >= sessions_.size()) sessions_.resize(id.index() + 1);
    if (sessions_[id.index()] != nullptr) {
      recovery_.diagnostics.push_back(
          "session " + std::to_string(rec.meta.session) +
          ": duplicate recovered id ignored");
      continue;
    }
    SessionConfig cfg;
    cfg.robust = rec.meta.config;
    cfg.snapshot_interval = rec.meta.snapshot_interval;
    auto session = std::make_shared<LearningSession>(
        id, rec.meta.task_names, cfg,
        RestoredSessionState{std::move(rec.learner), rec.stats, rec.seq});
    session->attach_store(std::move(rec.store));
    sessions_[id.index()] = std::move(session);
    ++recovery_.sessions;
  }
}

SessionManager::~SessionManager() { stop(); }

void SessionManager::stop() {
  if (stopping_.exchange(true)) {
    // Second caller: queues already closed; just make sure joins happened.
  }
  for (auto& q : queues_) q->close();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void SessionManager::worker_loop(std::size_t worker_index) {
  obs::Gauge& depth = *queue_depth_[worker_index];
  BoundedMpscQueue<WorkItem>& queue = *queues_[worker_index];
  while (auto item = queue.pop()) {
    depth.sub(1);
    if (item->session->failed()) continue;  // poisoned; drop queued periods
    // Queue wait is the gap between submit and this pop; the remaining
    // stage spans (WAL append, fsync, learner apply) record themselves via
    // the thread-local scope set here.
    if (item->ctx.active()) {
      obs::record_stage(obs::SpanRing::instance(), "server.queue_wait",
                        item->enqueue_ns, obs::now_ns(), item->ctx);
    }
    obs::TraceScope trace_scope(item->ctx);
    try {
      item->session->process(item->events, item->enqueue_ns);
    } catch (const std::exception& e) {
      // process() does throwing WAL I/O (fsync failure, disk full,
      // oversized record); an escape here would std::terminate the whole
      // daemon.  Poison just this session — submits are refused, drains
      // wake — and keep the worker serving its other sessions.
      item->session->mark_failed(e.what());
      ServeMetrics::get().session_failures.inc();
      BBMG_LOG_ERROR("serve.session_failed", e.what(),
                     {{"session", item->session->id().index()}});
    }
  }
}

std::shared_ptr<LearningSession> SessionManager::create_session_locked(
    SessionId id, std::vector<std::string> task_names, SessionConfig config) {
  auto session =
      std::make_shared<LearningSession>(id, std::move(task_names), config);
  if (config_.durable.enabled()) {
    durable::SessionMeta meta;
    meta.session = static_cast<std::uint32_t>(id.index());
    meta.task_names = session->task_names();
    meta.config = session->config().robust;
    meta.snapshot_interval =
        static_cast<std::uint32_t>(session->config().snapshot_interval);
    // The seq-0 snapshot encodes a fresh learner; one constructed from
    // the same (names, config) is state-identical to the session's.
    const RobustOnlineLearner initial(session->task_names(),
                                      session->config().robust);
    session->attach_store(durable::SessionStore::create(
        config_.durable, std::move(meta), initial,
        StreamingTraceStats::Summary{}));
  }
  session->set_ship_hook(ship_hook_);
  if (id.index() >= sessions_.size()) sessions_.resize(id.index() + 1);
  sessions_[id.index()] = session;
  ServeMetrics::get().sessions_opened.inc();
  return session;
}

SessionId SessionManager::open_session(std::vector<std::string> task_names,
                                       SessionConfig config) {
  BBMG_REQUIRE(!stopping_.load(), "manager is shutting down");
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const SessionId id{sessions_.size()};
  (void)create_session_locked(id, std::move(task_names), config);
  return id;
}

SessionId SessionManager::open_session_with_id(
    std::uint32_t id, std::vector<std::string> task_names,
    SessionConfig config) {
  BBMG_REQUIRE(!stopping_.load(), "manager is shutting down");
  // Same forged-id guard as recovery: honoring a huge id would drive a
  // multi-GB sessions_ resize.
  constexpr std::uint32_t kMaxExplicitSessionId = 1u << 20;
  BBMG_REQUIRE(id <= kMaxExplicitSessionId,
               "open_session_with_id: id beyond the recoverable cap");
  const SessionId sid{id};
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sid.index() < sessions_.size() && sessions_[sid.index()] != nullptr) {
    // Idempotent re-open (a replicator retrying a lost reply): accept iff
    // the task universe matches; the learner state is untouched.
    BBMG_REQUIRE(sessions_[sid.index()]->task_names() == task_names,
                 "open_session_with_id: existing session has a different "
                 "task universe");
    return sid;
  }
  (void)create_session_locked(sid, std::move(task_names), config);
  return sid;
}

void SessionManager::set_ship_hook(ShipHook hook) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  ship_hook_ = hook ? std::make_shared<const ShipHook>(std::move(hook))
                    : nullptr;
  for (const auto& session : sessions_) {
    if (session) session->set_ship_hook(ship_hook_);
  }
}

std::optional<SessionManager::SessionInfo> SessionManager::session_info(
    SessionId id) const {
  auto session = find(id);
  if (!session) return std::nullopt;
  SessionInfo info;
  info.task_names = session->task_names();
  info.config = session->config();
  if (session->store()) {
    info.wal_path = session->store()->dir() + "/" + durable::kWalFilename;
  }
  return info;
}

std::shared_ptr<LearningSession> SessionManager::find(SessionId id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (id.index() >= sessions_.size()) return nullptr;
  return sessions_[id.index()];
}

bool SessionManager::close_session(SessionId id) {
  auto session = find(id);
  if (!session) return false;
  session->mark_closed();
  return true;
}

SubmitStatus SessionManager::submit(SessionId id,
                                    std::vector<Event> period_events,
                                    bool block, std::uint64_t seq,
                                    const obs::TraceContext& ctx) {
  if (stopping_.load(std::memory_order_relaxed)) {
    return SubmitStatus::ShuttingDown;
  }
  ServeMetrics& metrics = ServeMetrics::get();
  metrics.submits.inc();
  auto session = find(id);
  if (!session || session->closed()) return SubmitStatus::UnknownSession;
  if (session->failed()) return SubmitStatus::Failed;
  if (seq != 0 && !session->claim_seq(seq)) {
    // Duplicate resend after a reconnect: the period (or a later one) is
    // already ingested.  Dropping it IS the correct ingestion, so report
    // Accepted — the client needs no special case.
    metrics.duplicate_periods.inc();
    return SubmitStatus::Accepted;
  }
  const std::size_t shard = id.index() % queues_.size();
  BoundedMpscQueue<WorkItem>& queue = *queues_[shard];
  // Reserve the slot before the push so a drain() that starts after this
  // submit returns can never run ahead of the queued period.
  session->note_submitted();
  // Likewise raise the depth gauge before the push: the worker decrements
  // after its pop, so the gauge over-reports during the handoff instead of
  // ever going negative.
  queue_depth_[shard]->add(1);
  WorkItem item{session, std::move(period_events), obs::now_ns(), ctx};
  const bool pushed =
      block ? queue.push(std::move(item)) : queue.try_push(std::move(item));
  if (!pushed) {
    session->note_rejected();
    queue_depth_[shard]->sub(1);
    if (seq != 0) session->release_seq(seq);
    if (!stopping_.load(std::memory_order_relaxed)) {
      metrics.overflows.inc();
      return SubmitStatus::Overflow;
    }
    return SubmitStatus::ShuttingDown;
  }
  return SubmitStatus::Accepted;
}

std::uint64_t SessionManager::resume_high_water(SessionId id) {
  auto session = find(id);
  BBMG_REQUIRE(session != nullptr, "resume: unknown session");
  // Drain first so the mark covers every period already submitted on any
  // connection, then fsync: the reported high-water is honestly durable.
  session->drain();
  return session->flush_durable();
}

void SessionManager::checkpoint_all() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& session : sessions_) {
    if (!session) continue;
    try {
      session->checkpoint();
    } catch (const std::exception& e) {
      // Shutdown best-effort: one session's disk error must not abort the
      // drain — its WAL already covers everything a snapshot would.
      BBMG_LOG_ERROR("serve.checkpoint_failed", e.what(),
                     {{"session", session->id().index()}});
    }
  }
}

void SessionManager::drain(SessionId id) {
  auto session = find(id);
  BBMG_REQUIRE(session != nullptr, "drain: unknown session");
  session->drain();
}

QueryResult SessionManager::query(SessionId id,
                                  const std::vector<Event>* probe) const {
  ServeMetrics& metrics = ServeMetrics::get();
  metrics.queries.inc();
  obs::Span span(&metrics.query_latency_us, "serve.query");
  auto session = find(id);
  BBMG_REQUIRE(session != nullptr, "query: unknown session");
  QueryResult result;
  result.snapshot = session->snapshot();
  if (probe != nullptr) {
    const TraceSanitizer sanitizer(session->task_names(),
                                   session->config().robust.sanitize);
    const SanitizedPeriod sp = sanitizer.sanitize_period(*probe);
    if (sp.quarantined()) {
      result.verdict = ProbeVerdict::Unverifiable;
    } else {
      const DependencyMatrix model = result.snapshot->result.lub();
      check_period_conformance(model, *sp.period,
                               session->task_names().size(), 0,
                               result.violations);
      result.verdict = result.violations.empty() ? ProbeVerdict::Conforms
                                                 : ProbeVerdict::Violates;
    }
  }
  return result;
}

SessionStats SessionManager::stats(SessionId id) const {
  auto session = find(id);
  BBMG_REQUIRE(session != nullptr, "stats: unknown session");
  SessionStats s;
  s.accepted = session->accepted();
  s.rejected = session->rejected();
  s.processed = session->processed();
  s.health = session->snapshot()->health;
  return s;
}

std::size_t SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::size_t n = 0;
  for (const auto& s : sessions_) {
    if (s) ++n;
  }
  return n;
}

}  // namespace bbmg
