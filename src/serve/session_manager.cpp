#include "serve/session_manager.hpp"

#include "common/error.hpp"
#include "obs/span.hpp"
#include "robust/sanitizer.hpp"
#include "serve/serve_metrics.hpp"

namespace bbmg {

std::string_view submit_status_name(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::Accepted:
      return "accepted";
    case SubmitStatus::Overflow:
      return "overflow";
    case SubmitStatus::UnknownSession:
      return "unknown-session";
    case SubmitStatus::ShuttingDown:
      return "shutting-down";
  }
  return "?";
}

SessionManager::SessionManager(ManagerConfig config) : config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  queues_.reserve(config_.workers);
  queue_depth_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    queues_.push_back(
        std::make_unique<BoundedMpscQueue<WorkItem>>(config_.queue_capacity));
    queue_depth_.push_back(&ServeMetrics::queue_depth(i));
  }
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

SessionManager::~SessionManager() { stop(); }

void SessionManager::stop() {
  if (stopping_.exchange(true)) {
    // Second caller: queues already closed; just make sure joins happened.
  }
  for (auto& q : queues_) q->close();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void SessionManager::worker_loop(std::size_t worker_index) {
  obs::Gauge& depth = *queue_depth_[worker_index];
  BoundedMpscQueue<WorkItem>& queue = *queues_[worker_index];
  while (auto item = queue.pop()) {
    depth.sub(1);
    item->session->process(item->events, item->enqueue_ns);
  }
}

SessionId SessionManager::open_session(std::vector<std::string> task_names,
                                       SessionConfig config) {
  BBMG_REQUIRE(!stopping_.load(), "manager is shutting down");
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const SessionId id{sessions_.size()};
  sessions_.push_back(std::make_shared<LearningSession>(
      id, std::move(task_names), config));
  ServeMetrics::get().sessions_opened.inc();
  return id;
}

std::shared_ptr<LearningSession> SessionManager::find(SessionId id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (id.index() >= sessions_.size()) return nullptr;
  return sessions_[id.index()];
}

bool SessionManager::close_session(SessionId id) {
  auto session = find(id);
  if (!session) return false;
  session->mark_closed();
  return true;
}

SubmitStatus SessionManager::submit(SessionId id,
                                    std::vector<Event> period_events,
                                    bool block) {
  if (stopping_.load(std::memory_order_relaxed)) {
    return SubmitStatus::ShuttingDown;
  }
  ServeMetrics& metrics = ServeMetrics::get();
  metrics.submits.inc();
  auto session = find(id);
  if (!session || session->closed()) return SubmitStatus::UnknownSession;
  const std::size_t shard = id.index() % queues_.size();
  BoundedMpscQueue<WorkItem>& queue = *queues_[shard];
  // Reserve the slot before the push so a drain() that starts after this
  // submit returns can never run ahead of the queued period.
  session->note_submitted();
  // Likewise raise the depth gauge before the push: the worker decrements
  // after its pop, so the gauge over-reports during the handoff instead of
  // ever going negative.
  queue_depth_[shard]->add(1);
  WorkItem item{session, std::move(period_events), obs::now_ns()};
  const bool pushed =
      block ? queue.push(std::move(item)) : queue.try_push(std::move(item));
  if (!pushed) {
    session->note_rejected();
    queue_depth_[shard]->sub(1);
    if (!stopping_.load(std::memory_order_relaxed)) {
      metrics.overflows.inc();
      return SubmitStatus::Overflow;
    }
    return SubmitStatus::ShuttingDown;
  }
  return SubmitStatus::Accepted;
}

void SessionManager::drain(SessionId id) {
  auto session = find(id);
  BBMG_REQUIRE(session != nullptr, "drain: unknown session");
  session->drain();
}

QueryResult SessionManager::query(SessionId id,
                                  const std::vector<Event>* probe) const {
  ServeMetrics& metrics = ServeMetrics::get();
  metrics.queries.inc();
  obs::Span span(&metrics.query_latency_us, "serve.query");
  auto session = find(id);
  BBMG_REQUIRE(session != nullptr, "query: unknown session");
  QueryResult result;
  result.snapshot = session->snapshot();
  if (probe != nullptr) {
    const TraceSanitizer sanitizer(session->task_names(),
                                   session->config().robust.sanitize);
    const SanitizedPeriod sp = sanitizer.sanitize_period(*probe);
    if (sp.quarantined()) {
      result.verdict = ProbeVerdict::Unverifiable;
    } else {
      const DependencyMatrix model = result.snapshot->result.lub();
      check_period_conformance(model, *sp.period,
                               session->task_names().size(), 0,
                               result.violations);
      result.verdict = result.violations.empty() ? ProbeVerdict::Conforms
                                                 : ProbeVerdict::Violates;
    }
  }
  return result;
}

SessionStats SessionManager::stats(SessionId id) const {
  auto session = find(id);
  BBMG_REQUIRE(session != nullptr, "stats: unknown session");
  SessionStats s;
  s.accepted = session->accepted();
  s.rejected = session->rejected();
  s.processed = session->processed();
  s.health = session->snapshot()->health;
  return s;
}

std::size_t SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

}  // namespace bbmg
