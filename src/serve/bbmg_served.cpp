// bbmg_served: the learning service daemon.
//
//   bbmg_served [port] [workers] [queue-capacity]
//
// Listens on 127.0.0.1:<port> (default 7227; 0 picks an ephemeral port and
// prints it), shards incoming learning sessions over <workers> threads
// (default 2), and serves model queries from per-session snapshots.  Runs
// until SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "serve/server.hpp"

using namespace bbmg;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  config.port = argc > 1 ? static_cast<std::uint16_t>(std::strtoul(argv[1], nullptr, 10))
                         : 7227;
  config.manager.workers =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  config.manager.queue_capacity =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 256;

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  try {
    Server server(config);
    server.start();
    std::printf("bbmg_served: listening on 127.0.0.1:%u (%zu workers, "
                "queue capacity %zu periods)\n",
                unsigned{server.port()}, server.manager().num_workers(),
                config.manager.queue_capacity);
    std::fflush(stdout);
    while (!g_stop) {
      struct timespec ts {0, 100 * 1000 * 1000};
      nanosleep(&ts, nullptr);
    }
    std::printf("bbmg_served: shutting down (%zu sessions served)\n",
                server.manager().num_sessions());
    server.stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbmg_served: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
