// bbmg_served: the learning service daemon.
//
//   bbmg_served [port] [workers] [queue-capacity] [--stats-interval <sec>]
//               [--data-dir <dir>] [--fsync-every <n>] [--snapshot-every <n>]
//               [--trace] [--span-ring <n>] [--log-level <level>]
//               [--idle-timeout <ms>]
//               [--cluster-map <file> --shard <n> [--follower]]
//
// Listens on 127.0.0.1:<port> (default 7227; 0 picks an ephemeral port and
// prints it), shards incoming learning sessions over <workers> threads
// (default 2), and serves model queries from per-session snapshots.  With
// --stats-interval N a one-line observability summary (sessions, periods,
// queries, quarantine, queue depth) is printed every N seconds.
//
// With --data-dir the daemon is crash-safe: every accepted period is
// WAL-logged before it is learned from, sessions are compacted with
// periodic snapshots, and startup recovers every session found in the
// directory (quarantining corrupt files, never aborting).  SIGTERM/SIGINT
// trigger a graceful drain: stop accepting, finish queued periods, flush
// and snapshot every session, exit 0 — restart needs no WAL replay.
//
// Observability (PR 5): --trace enables the causal span ring, so traced
// requests (v3 clients sending TraceContext envelopes) record their
// server-side stage spans, fetchable live via `bbmg_client trace`;
// --span-ring N sets the ring's capacity (default 4096 spans; evictions
// count in bbmg_obs_span_drops_total).  The crash flight recorder is
// armed whenever --data-dir is given: a fatal signal dumps the recent
// structured-log tail plus a cached metrics snapshot to
// <data-dir>/postmortem/crash-<signo>.log before the process dies.
//
// Cluster mode (PR 6): --cluster-map names a static map file (see
// cluster/cluster_map.hpp for the format) and --shard this node's index
// in it.  A primary whose map entry lists a follower replicates every
// durable period to it (cluster/replicator.hpp); --follower marks the
// node as that replica (it never ships, it receives).  Both roles answer
// ClusterMapRequest and route OpenClusterSession keys via Redirect.
// --idle-timeout closes client connections silent for that many ms
// (counted in bbmg_serve_connections_idle_closed_total).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <memory>

#include "cluster/replicator.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"

using namespace bbmg;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: bbmg_served [port] [workers] [queue-capacity] "
               "[--stats-interval <seconds>] [--data-dir <dir>] "
               "[--fsync-every <n>] [--snapshot-every <n>] [--trace] "
               "[--span-ring <n>] [--log-level debug|info|warn|error] "
               "[--idle-timeout <ms>] "
               "[--cluster-map <file> --shard <n> [--follower]]\n");
  return 2;
}

/// One operator-facing line from the live metrics registry, e.g.
///   stats: 3 sessions, 1200 periods applied (0 overflows), 7 queries,
///          1190 learned / 10 quarantined, queue depth 4
void print_stats_line(const SessionManager& manager) {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  std::int64_t depth = 0;
  for (const obs::GaugeSample& g : snap.gauges) {
    if (g.name.rfind("bbmg_serve_queue_depth", 0) == 0) depth += g.value;
  }
  std::printf(
      "bbmg_served: stats: %zu sessions, %llu periods applied "
      "(%llu overflows), %llu queries, %llu learned / %llu quarantined, "
      "queue depth %lld\n",
      manager.num_sessions(),
      static_cast<unsigned long long>(
          snap.counter_value("bbmg_serve_periods_applied_total")),
      static_cast<unsigned long long>(
          snap.counter_value("bbmg_serve_overflows_total")),
      static_cast<unsigned long long>(
          snap.counter_value("bbmg_serve_queries_total")),
      static_cast<unsigned long long>(
          snap.counter_value("bbmg_learner_periods_total")),
      static_cast<unsigned long long>(
          snap.counter_value("bbmg_robust_quarantined_periods_total")),
      static_cast<long long>(depth));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  unsigned long stats_interval = 0;  // seconds; 0 = no periodic stats line
  bool trace = false;
  unsigned long span_ring = 0;  // 0 = keep the default capacity
  std::string cluster_map_file;
  unsigned long shard = 0;
  bool shard_given = false;
  bool follower = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-interval") == 0) {
      if (i + 1 >= argc) return usage();
      stats_interval = std::strtoul(argv[++i], nullptr, 10);
      if (stats_interval == 0) return usage();
    } else if (std::strcmp(argv[i], "--data-dir") == 0) {
      if (i + 1 >= argc) return usage();
      config.manager.durable.dir = argv[++i];
    } else if (std::strcmp(argv[i], "--fsync-every") == 0) {
      if (i + 1 >= argc) return usage();
      config.manager.durable.fsync_every = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0) {
      if (i + 1 >= argc) return usage();
      config.manager.durable.snapshot_every =
          std::strtoul(argv[++i], nullptr, 10);
      if (config.manager.durable.snapshot_every == 0) return usage();
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--idle-timeout") == 0) {
      if (i + 1 >= argc) return usage();
      config.idle_timeout_ms =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      if (config.idle_timeout_ms == 0) return usage();
    } else if (std::strcmp(argv[i], "--cluster-map") == 0) {
      if (i + 1 >= argc) return usage();
      cluster_map_file = argv[++i];
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      if (i + 1 >= argc) return usage();
      shard = std::strtoul(argv[++i], nullptr, 10);
      shard_given = true;
    } else if (std::strcmp(argv[i], "--follower") == 0) {
      follower = true;
    } else if (std::strcmp(argv[i], "--span-ring") == 0) {
      if (i + 1 >= argc) return usage();
      span_ring = std::strtoul(argv[++i], nullptr, 10);
      if (span_ring == 0) return usage();
    } else if (std::strcmp(argv[i], "--log-level") == 0) {
      if (i + 1 >= argc) return usage();
      const char* level = argv[++i];
      if (std::strcmp(level, "debug") == 0) {
        obs::Logger::instance().set_min_level(obs::LogLevel::Debug);
      } else if (std::strcmp(level, "info") == 0) {
        obs::Logger::instance().set_min_level(obs::LogLevel::Info);
      } else if (std::strcmp(level, "warn") == 0) {
        obs::Logger::instance().set_min_level(obs::LogLevel::Warn);
      } else if (std::strcmp(level, "error") == 0) {
        obs::Logger::instance().set_min_level(obs::LogLevel::Error);
      } else {
        return usage();
      }
    } else {
      positional.push_back(argv[i]);
    }
  }
  config.port =
      !positional.empty()
          ? static_cast<std::uint16_t>(std::strtoul(positional[0], nullptr, 10))
          : 7227;
  config.manager.workers =
      positional.size() > 1 ? std::strtoul(positional[1], nullptr, 10) : 2;
  config.manager.queue_capacity =
      positional.size() > 2 ? std::strtoul(positional[2], nullptr, 10) : 256;
  if ((cluster_map_file.empty() && (shard_given || follower)) ||
      (!cluster_map_file.empty() && !shard_given)) {
    std::fprintf(stderr,
                 "bbmg_served: --cluster-map and --shard go together "
                 "(--follower needs both)\n");
    return usage();
  }

  if (span_ring != 0) obs::SpanRing::instance().set_capacity(span_ring);
  if (trace) obs::SpanRing::instance().set_enabled(true);
  // Arm the crash flight recorder next to the durable state: a fatal
  // signal leaves a postmortem where the operator already looks for this
  // daemon's data.  (Armed before recovery so recovery events are in the
  // ring if recovery itself crashes.)
  if (config.manager.durable.enabled()) {
    obs::FlightRecorder::instance().arm_signal_handler(
        config.manager.durable.dir + "/postmortem");
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // A client that vanishes mid-reply must not kill the daemon.
  net::ignore_sigpipe();

  try {
    Server server(config);
    if (config.manager.durable.enabled()) {
      const RecoverySummary& rec = server.manager().recovery();
      std::printf("bbmg_served: recovery: %zu sessions, %llu periods "
                  "replayed, %llu torn WAL tails truncated, %zu files "
                  "quarantined\n",
                  rec.sessions,
                  static_cast<unsigned long long>(rec.replayed_periods),
                  static_cast<unsigned long long>(rec.torn_tails),
                  rec.quarantined_files);
      for (const std::string& d : rec.diagnostics) {
        std::printf("bbmg_served: recovery: %s\n", d.c_str());
      }
    }
    std::shared_ptr<cluster::Replicator> replicator;
    if (!cluster_map_file.empty()) {
      cluster::ClusterMap map = cluster::ClusterMap::load(cluster_map_file);
      replicator = std::make_shared<cluster::Replicator>(
          server.manager(), std::move(map), shard, follower);
      server.set_cluster(replicator);
      replicator->start();
    }
    server.start();
    if (replicator) {
      std::printf("bbmg_served: cluster shard %lu (%s%s, map epoch %llu, "
                  "%zu shards)\n",
                  shard, follower ? "follower" : "primary",
                  replicator->shipping() ? ", replicating" : "",
                  static_cast<unsigned long long>(replicator->map().epoch),
                  replicator->map().shards.size());
    }
    std::printf("bbmg_served: listening on 127.0.0.1:%u (%zu workers, "
                "queue capacity %zu periods)\n",
                unsigned{server.port()}, server.manager().num_workers(),
                config.manager.queue_capacity);
    if (trace) {
      std::printf("bbmg_served: tracing on (span ring capacity %zu)\n",
                  obs::SpanRing::instance().capacity());
    }
    std::fflush(stdout);
    BBMG_LOG_INFO("served.start", "daemon listening",
                  {{"port", std::uint32_t{server.port()}},
                   {"workers", server.manager().num_workers()},
                   {"tracing", trace}});
    std::size_t ticks = 0;
    while (!g_stop) {
      struct timespec ts {0, 100 * 1000 * 1000};
      nanosleep(&ts, nullptr);
      ++ticks;
      if (stats_interval != 0 && ticks % (stats_interval * 10) == 0) {
        print_stats_line(server.manager());
      }
      // Refresh the flight recorder's cached metrics about once a second,
      // so a crash dump's snapshot is at most that stale.
      if (ticks % 10 == 0) obs::FlightRecorder::instance().cache_metrics();
    }
    std::printf("bbmg_served: shutting down (%zu sessions served)\n",
                server.manager().num_sessions());
    BBMG_LOG_INFO("served.stop", "graceful drain",
                  {{"sessions", server.manager().num_sessions()}});
    // Graceful drain: stop() refuses new work and finishes every queued
    // period; checkpoint_all() then snapshots each durable session so the
    // next start recovers instantly, with no WAL tail to replay.
    server.stop();
    // The replicator outlives the server's workers (they call its ship
    // hook); only after stop() is it safe to drain and join it.
    if (replicator) replicator->stop();
    if (config.manager.durable.enabled()) {
      server.manager().checkpoint_all();
      std::printf("bbmg_served: all sessions checkpointed\n");
    }
  } catch (const std::exception& e) {
    BBMG_LOG_ERROR("served.fatal", e.what());
    std::fprintf(stderr, "bbmg_served: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
