// Process-wide serving-daemon metrics (DESIGN.md "Observability"): session
// and connection totals, ingest accounting (submits / overflows / periods
// applied), the two end-to-end latency histograms (enqueue->apply and
// query), and one queue-depth gauge per worker shard.  Resolved once
// behind a function-local static like core/learner_metrics.hpp; the
// per-worker gauges are registered lazily because the worker count is a
// runtime configuration.
#pragma once

#include <cstddef>
#include <string>

#include "obs/metrics.hpp"

namespace bbmg {

struct ServeMetrics {
  /// Sessions ever opened across all managers in the process.
  obs::Counter& sessions_opened;
  /// Client connections accepted by the server.
  obs::Counter& connections;
  /// Connections closed by the server's idle policy (--idle-timeout).
  obs::Counter& connections_idle_closed;
  /// Periods handed to submit() (accepted or not).
  obs::Counter& submits;
  /// Submissions refused because the shard queue was full (block=false).
  obs::Counter& overflows;
  /// Periods a worker finished applying to a learner.
  obs::Counter& periods_applied;
  /// Model queries answered (snapshot copies, probe checks included).
  obs::Counter& queries;
  /// Sequenced periods dropped as already-ingested duplicates (client
  /// resends after a reconnect; dropping them is the idempotence contract).
  obs::Counter& duplicate_periods;
  /// Sessions poisoned by an apply/WAL failure (the worker survives; the
  /// session refuses further periods).
  obs::Counter& session_failures;
  /// ResilientClient request attempts that failed and were retried.
  obs::Counter& client_retries;
  /// ResilientClient reconnect cycles (connect + hello + resume).
  obs::Counter& client_reconnects;
  /// Periods re-sent from the client's unacked buffer after a resume.
  obs::Counter& resent_periods;
  /// Wall time from queue push to the learner having applied the period.
  obs::Histogram& enqueue_apply_latency_us;
  /// Wall time to answer one query (snapshot copy + optional probe check).
  obs::Histogram& query_latency_us;

  /// Depth gauge of one worker's shard queue:
  /// bbmg_serve_queue_depth{worker="N"}.  Registration is idempotent, so
  /// managers with the same worker index share a gauge; callers cache the
  /// reference (SessionManager resolves its gauges at construction).
  static obs::Gauge& queue_depth(std::size_t worker) {
    return obs::MetricsRegistry::instance().gauge(obs::labeled_name(
        "bbmg_serve_queue_depth", "worker", std::to_string(worker)));
  }

  static ServeMetrics& get() {
    static ServeMetrics m = make();
    return m;
  }

 private:
  static ServeMetrics make() {
    auto& r = obs::MetricsRegistry::instance();
    return ServeMetrics{
        r.counter("bbmg_serve_sessions_opened_total"),
        r.counter("bbmg_serve_connections_total"),
        r.counter("bbmg_serve_connections_idle_closed_total"),
        r.counter("bbmg_serve_submits_total"),
        r.counter("bbmg_serve_overflows_total"),
        r.counter("bbmg_serve_periods_applied_total"),
        r.counter("bbmg_serve_queries_total"),
        r.counter("bbmg_serve_duplicate_periods_total"),
        r.counter("bbmg_serve_session_failures_total"),
        r.counter("bbmg_serve_client_retries_total"),
        r.counter("bbmg_serve_client_reconnects_total"),
        r.counter("bbmg_serve_resent_periods_total"),
        r.histogram("bbmg_serve_enqueue_apply_latency_us",
                    obs::default_latency_buckets_us()),
        r.histogram("bbmg_serve_query_latency_us",
                    obs::default_latency_buckets_us()),
    };
  }
};

}  // namespace bbmg
