// bbmg_served's engine: a TCP front-end over the SessionManager.
//
// One accept thread plus one thread per connection; each connection speaks
// the framed protocol (protocol.hpp), accumulates Events frames into the
// current period of each session it addresses, and hands complete periods
// to the manager at EndPeriod.  Submission blocks when the session's shard
// queue is full, so backpressure propagates to the producer through TCP
// itself and replays are lossless.  Queries (optionally draining first)
// are answered from the session's published snapshot and carry the dLUB
// matrix, health, quarantine accounting, and — when the query included a
// probe period — a conformance verdict.
//
// Threads-per-connection is deliberate at this stage: the protocol is
// period-granular and connections are few (stream producers + the odd
// query client); the scaling axis that matters, learner work, is already
// decoupled into the manager's worker pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/cluster_hooks.hpp"
#include "serve/session_manager.hpp"

namespace bbmg {

struct ServerConfig {
  /// 0 = ephemeral; the bound port is reported by port() after start().
  std::uint16_t port{0};
  int backlog{16};
  /// Close a connection whose peer sends nothing for this long (0 = keep
  /// idle connections forever).  An idle close is quiet — counted in
  /// bbmg_serve_connections_idle_closed_total, no ErrorReply — and the
  /// resilient client transparently reconnects on its next request.
  std::uint32_t idle_timeout_ms{0};
  ManagerConfig manager;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept loop; throws bbmg::Error on bind
  /// failure.
  void start();

  /// The actually bound port (after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] SessionManager& manager() { return manager_; }

  /// Attach the cluster layer (routing, map serving, WAL shipping) before
  /// start().  Installs the hooks' ship tap on the manager; pass nullptr
  /// to detach (clears the tap).  The hooks must outlive the server's
  /// stop() — the owner typically stops the server, then the replicator.
  void set_cluster(std::shared_ptr<ClusterHooks> cluster);

  /// Stop accepting, unblock and join every connection, stop the manager.
  /// Idempotent; also run by the destructor.
  void stop();

 private:
  struct Connection {
    int fd{-1};
    std::thread thread;
  };

  void accept_loop();
  void serve_connection(int fd);

  ServerConfig config_;
  SessionManager manager_;
  /// Cluster seam (null = single-node mode); see serve/cluster_hooks.hpp.
  std::shared_ptr<ClusterHooks> cluster_;
  int listen_fd_{-1};
  std::uint16_t port_{0};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace bbmg
