// ChaosTransport: a fault-injecting wrapper over net::Transport for the
// crash/chaos tests (tests/durable/chaos_test.cpp).  Under a seeded RNG it
// perturbs the byte stream the way a hostile network (or a dying peer)
// would, without touching the protocol or socket code under test:
//
//   * delays   — sleep up to max_delay_us before an op;
//   * resets   — throw bbmg::Error("chaos: injected connection reset")
//                and poison the transport (every later op throws too),
//                modelling ECONNRESET mid-conversation;
//   * partial writes — split one logical write into several transport
//                writes with delays between them, so the peer's decoder
//                sees frames arriving in arbitrary fragments;
//   * read truncation — deliver a prefix of what the inner transport
//                returned, then reset, modelling a peer killed mid-frame;
//   * dropped writes — silently swallow a whole logical write (the caller
//                believes it succeeded), modelling an asymmetric partition:
//                this direction black-holes while the reverse one delivers.
//
// All randomness comes from the seeded bbmg::Rng, so a failing chaos run
// reproduces from its seed alone.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "serve/net.hpp"

namespace bbmg::net {

struct ChaosConfig {
  std::uint64_t seed{1};
  /// Probability of sleeping before an op, and the sleep's upper bound.
  double delay_prob{0.0};
  std::uint32_t max_delay_us{500};
  /// Probability of an injected connection reset per op.
  double reset_prob{0.0};
  /// Probability that a write is fragmented into multiple smaller writes.
  double partial_write_prob{0.0};
  /// Probability that a read delivers only a prefix and then resets.
  double truncate_read_prob{0.0};
  /// Probability that a whole logical write is silently dropped (no
  /// error, no poisoning — the bytes just never arrive).  1.0 black-holes
  /// the direction entirely: one half of an asymmetric partition.
  double drop_write_prob{0.0};
};

class ChaosTransport final : public Transport {
 public:
  ChaosTransport(Transport& inner, ChaosConfig config)
      : inner_(inner), config_(config), rng_(config.seed) {}

  [[nodiscard]] std::size_t read_some(std::uint8_t* data,
                                      std::size_t size) override;
  void write(const std::uint8_t* data, std::size_t size) override;

  /// True once a reset was injected (or armed by a truncated read); every
  /// subsequent op throws, like a socket after ECONNRESET.
  [[nodiscard]] bool poisoned() const { return poisoned_; }
  [[nodiscard]] std::uint64_t injected_faults() const { return faults_; }

 private:
  void maybe_delay();
  [[noreturn]] void inject_reset();
  void check_poisoned() const;

  Transport& inner_;
  ChaosConfig config_;
  Rng rng_;
  bool poisoned_{false};
  std::uint64_t faults_{0};
};

}  // namespace bbmg::net
