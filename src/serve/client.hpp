// Client side of the learning service: connect, open sessions, stream
// periods, fetch model snapshots.  The library half of bbmg_client, also
// used by the end-to-end tests and the live-serve example.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lattice/dependency_matrix.hpp"
#include "robust/robust_online_learner.hpp"
#include "serve/protocol.hpp"
#include "trace/trace.hpp"

namespace bbmg {

/// A model snapshot as it came over the wire.
struct WireSnapshot {
  std::uint32_t session{0};
  HealthState health{HealthState::OK};
  std::uint64_t periods_seen{0};
  std::uint64_t periods_learned{0};
  std::uint64_t periods_quarantined{0};
  std::uint64_t repairs{0};
  bool converged{false};
  std::uint32_t num_hypotheses{0};
  std::uint64_t weight{0};
  ProbeVerdict verdict{ProbeVerdict::None};
  std::uint32_t num_violations{0};
  DependencyMatrix lub;
};

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// TCP connect + Hello/HelloAck handshake; throws bbmg::Error on refusal
  /// or protocol mismatch.
  void connect(const std::string& host, std::uint16_t port);
  void disconnect();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  [[nodiscard]] std::uint32_t open_session(
      const std::vector<std::string>& task_names, std::uint32_t bound = 16,
      SanitizePolicy policy = SanitizePolicy::Repair,
      std::uint32_t snapshot_interval = 1);

  /// Stream one raw period (Events + EndPeriod, fire-and-forget).
  void send_period(std::uint32_t session, const std::vector<Event>& events);

  /// Stream every period of a trace; returns the number of periods sent.
  std::size_t send_trace(std::uint32_t session, const Trace& trace);

  /// Fetch the served model.  drain=true waits until everything this
  /// client submitted has been learned from; probe, if given, is
  /// conformance-checked server-side against the served model.
  [[nodiscard]] WireSnapshot query(std::uint32_t session, bool drain = true,
                                   const std::vector<Event>* probe = nullptr);

  void close_session(std::uint32_t session);

  /// Fetch the server's process-wide observability snapshot (every
  /// registered counter, gauge and histogram; all zeros when the server
  /// was built with BBMG_OBS=OFF).
  [[nodiscard]] obs::MetricsSnapshot fetch_metrics();

 private:
  [[nodiscard]] Frame expect_reply(FrameType expected);

  int fd_{-1};
  FrameDecoder decoder_;
};

}  // namespace bbmg
