// Client side of the learning service: connect, open sessions, stream
// periods, fetch model snapshots.  The library half of bbmg_client, also
// used by the end-to-end tests and the live-serve example.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lattice/dependency_matrix.hpp"
#include "obs/trace_context.hpp"
#include "robust/robust_online_learner.hpp"
#include "serve/protocol.hpp"
#include "trace/trace.hpp"

namespace bbmg {

/// Typed Redirect reply to open_cluster_session: the addressed shard does
/// not own the key under its map.  Carries the owner so the caller can
/// re-route without refetching the whole map.  Deliberately NOT retried by
/// ResilientClient — a redirect is an answer, not a failure.
class Redirected : public Error {
 public:
  explicit Redirected(RedirectMsg redirect)
      : Error("client: redirected to shard " + std::to_string(redirect.shard) +
              " at " + redirect.endpoint + " (map epoch " +
              std::to_string(redirect.epoch) + ")"),
        redirect_(std::move(redirect)) {}
  [[nodiscard]] const RedirectMsg& redirect() const { return redirect_; }

 private:
  RedirectMsg redirect_;
};

/// Typed ErrorReply from the server: keeps the wire code so callers can
/// react to a specific failure — e.g. UnknownSession during a failover
/// resume, where the follower never heard of the session and the client
/// must re-create it — without parsing message text.
class ServerError : public Error {
 public:
  ServerError(WireErrorCode code, const std::string& message)
      : Error("client: server error " +
              std::to_string(static_cast<int>(code)) + ": " + message),
        code_(code) {}
  [[nodiscard]] WireErrorCode code() const { return code_; }

 private:
  WireErrorCode code_;
};

/// A model snapshot as it came over the wire.
struct WireSnapshot {
  std::uint32_t session{0};
  HealthState health{HealthState::OK};
  std::uint64_t periods_seen{0};
  std::uint64_t periods_learned{0};
  std::uint64_t periods_quarantined{0};
  std::uint64_t repairs{0};
  bool converged{false};
  std::uint32_t num_hypotheses{0};
  std::uint64_t weight{0};
  ProbeVerdict verdict{ProbeVerdict::None};
  std::uint32_t num_violations{0};
  DependencyMatrix lub;
};

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// TCP connect + Hello/HelloAck handshake; throws bbmg::Error on refusal
  /// or protocol mismatch.
  void connect(const std::string& host, std::uint16_t port);
  void disconnect();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Per-request deadline: every socket read/write after the next connect
  /// fails with a deadline error instead of blocking forever (0 = never
  /// time out, the default).  Applied at connect time.
  void set_request_timeout_ms(std::uint32_t timeout_ms) {
    request_timeout_ms_ = timeout_ms;
  }

  [[nodiscard]] std::uint32_t open_session(
      const std::vector<std::string>& task_names, std::uint32_t bound = 16,
      SanitizePolicy policy = SanitizePolicy::Repair,
      std::uint32_t snapshot_interval = 1);

  /// Open a session under an explicit id (v4 peers only) — the WAL
  /// replication path: a primary mirrors its session onto the follower
  /// under the id the clients already hold.  Idempotent server-side.
  void open_session_as(std::uint32_t session,
                       const std::vector<std::string>& task_names,
                       std::uint32_t bound = 16,
                       SanitizePolicy policy = SanitizePolicy::Repair,
                       std::uint32_t snapshot_interval = 1);

  /// Open a session routed by a consistent-hash key (v4 peers only).
  /// Returns the new session id when this shard owns the key; throws
  /// Redirected naming the owner otherwise.
  [[nodiscard]] std::uint32_t open_cluster_session(
      const std::string& key, const std::vector<std::string>& task_names,
      std::uint32_t bound = 16, SanitizePolicy policy = SanitizePolicy::Repair,
      std::uint32_t snapshot_interval = 1);

  /// Fetch the server's cluster map (v4 peers only; errors when the server
  /// is not in cluster mode).
  [[nodiscard]] ClusterMapResponseMsg fetch_cluster_map();

  /// Stream one raw period (Events + EndPeriod, fire-and-forget).  seq,
  /// when non-zero, is the idempotence sequence number for the period
  /// (must be 1, 2, 3, ... per session); the server drops duplicates at or
  /// below its high-water mark, making resends after a reconnect safe.
  /// An active `ctx` rides ahead of the period as a TraceContext envelope
  /// (v3 peers only), so the server continues the trace as child spans.
  void send_period(std::uint32_t session, const std::vector<Event>& events,
                   std::uint64_t seq = 0,
                   const obs::TraceContext& ctx = {});

  /// Ask the server for the session's durable high-water mark: the highest
  /// sequence number whose period is applied AND fsynced.  Everything above
  /// it must be re-sent after a reconnect.
  [[nodiscard]] std::uint64_t resume(std::uint32_t session);

  /// Stream every period of a trace; returns the number of periods sent.
  std::size_t send_trace(std::uint32_t session, const Trace& trace);

  /// Fetch the served model.  drain=true waits until everything this
  /// client submitted has been learned from; probe, if given, is
  /// conformance-checked server-side against the served model.
  [[nodiscard]] WireSnapshot query(std::uint32_t session, bool drain = true,
                                   const std::vector<Event>* probe = nullptr,
                                   const obs::TraceContext& ctx = {});

  void close_session(std::uint32_t session);

  /// Fetch the server's process-wide observability snapshot (every
  /// registered counter, gauge and histogram; all zeros when the server
  /// was built with BBMG_OBS=OFF).
  [[nodiscard]] obs::MetricsSnapshot fetch_metrics();

  /// Pull the server's span ring over the wire (v3 peers only; throws on
  /// a v2 peer).  drain=false copies non-destructively; flight=true also
  /// carries the server's flight-recorder dump text.
  [[nodiscard]] TraceDumpResponseMsg fetch_trace_dump(bool drain = true,
                                                      bool flight = false);

  /// The protocol version negotiated at connect time (min of both sides);
  /// 0 before the first connect.
  [[nodiscard]] std::uint16_t peer_version() const { return peer_version_; }

 private:
  [[nodiscard]] Frame expect_reply(FrameType expected);
  /// Append a TraceContext envelope frame when `ctx` is active and the
  /// peer negotiated v3+.
  void append_ctx_frame(std::vector<std::uint8_t>& bytes,
                        const obs::TraceContext& ctx) const;

  int fd_{-1};
  FrameDecoder decoder_;
  std::uint32_t request_timeout_ms_{0};
  std::uint16_t peer_version_{0};
};

}  // namespace bbmg
