// Thin POSIX socket layer shared by the serve front-end and the client:
// enough to open/accept TCP connections and move whole protocol frames,
// with EINTR handled and errors surfaced as bbmg::Error.  Kept apart from
// protocol.hpp so the codec/framing logic stays testable without sockets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace bbmg::net {

/// Listening TCP socket bound to 127.0.0.1:<port> (port 0 = ephemeral).
struct Listener {
  int fd{-1};
  std::uint16_t port{0};
};

[[nodiscard]] Listener listen_tcp(std::uint16_t port, int backlog);

/// Accept one connection; nullopt when the listener was shut down.
[[nodiscard]] std::optional<int> accept_connection(int listen_fd);

[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port);

/// Half-close + close, tolerating already-closed fds.
void close_socket(int fd);
/// Unblock a peer's pending reads without closing our fd yet.
void shutdown_socket(int fd);

/// Write the whole buffer; throws bbmg::Error on a broken connection.
void write_all(int fd, const std::uint8_t* data, std::size_t size);
void write_frame(int fd, const Frame& frame);

/// Read one frame via the decoder, pulling more bytes from the socket as
/// needed.  nullopt on clean EOF at a frame boundary; throws bbmg::Error
/// on mid-frame EOF, read errors, or malformed framing.
[[nodiscard]] std::optional<Frame> read_frame(int fd, FrameDecoder& decoder);

}  // namespace bbmg::net
