// Thin POSIX socket layer shared by the serve front-end and the client:
// enough to open/accept TCP connections and move whole protocol frames,
// with the classic raw-I/O hazards handled once, here:
//
//   * EINTR is retried on every syscall (connect/accept/send/recv);
//   * short writes are completed in a loop — callers always get
//     all-or-error semantics;
//   * SIGPIPE can never kill the process: sends pass MSG_NOSIGNAL where
//     the platform has it, SO_NOSIGPIPE is set where it doesn't (macOS),
//     and ignore_sigpipe() is available as a belt-and-braces process-wide
//     guard for platforms with neither;
//   * per-request deadlines via set_socket_timeout(); a timed-out
//     send/recv surfaces as bbmg::Error("net: ... timed out").
//
// I/O is routed through the Transport interface so tests can interpose a
// fault-injecting wrapper (chaos_transport.hpp) between the protocol
// logic and the socket without touching either.  Kept apart from
// protocol.hpp so the codec/framing logic stays testable without sockets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace bbmg::net {

/// Typed expiry of a receive deadline (SO_RCVTIMEO): the peer sent
/// nothing for the whole window.  Callers that armed the deadline as an
/// *idle* policy (server connection threads, --idle-timeout) catch this
/// to close quietly; every other read failure stays a generic Error.
class ReceiveTimeout : public Error {
 public:
  ReceiveTimeout() : Error("net: recv timed out (deadline exceeded)") {}
};

/// Listening TCP socket bound to 127.0.0.1:<port> (port 0 = ephemeral).
struct Listener {
  int fd{-1};
  std::uint16_t port{0};
};

[[nodiscard]] Listener listen_tcp(std::uint16_t port, int backlog);

/// Accept one connection; nullopt when the listener was shut down.
[[nodiscard]] std::optional<int> accept_connection(int listen_fd);

[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port);

/// Half-close + close, tolerating already-closed fds.
void close_socket(int fd);
/// Unblock a peer's pending reads without closing our fd yet.
void shutdown_socket(int fd);

/// Ignore SIGPIPE process-wide (idempotent).  MSG_NOSIGNAL/SO_NOSIGPIPE
/// already cover socket sends on Linux/BSD; this guards any remaining
/// write-to-dead-peer path and platforms with neither flag.
void ignore_sigpipe();

/// Arm send/receive deadlines on a connected socket (SO_SNDTIMEO /
/// SO_RCVTIMEO).  0 = blocking forever (the default).  After this, a
/// stalled peer turns into bbmg::Error instead of a hang — the client's
/// per-request deadline mechanism.
void set_socket_timeout(int fd, std::uint32_t timeout_ms);

// -- transport abstraction -------------------------------------------------

/// Byte-stream endpoint the framing logic reads/writes through.  The
/// production implementation is FdTransport over a TCP socket; chaos tests
/// interpose ChaosTransport to inject resets, delays, partial writes and
/// truncations between the protocol and the wire.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Read up to `size` bytes; returns 0 on clean EOF.  Throws bbmg::Error
  /// on read errors or a timed-out receive deadline.
  [[nodiscard]] virtual std::size_t read_some(std::uint8_t* data,
                                              std::size_t size) = 0;
  /// Write the whole buffer (all-or-error).  Throws bbmg::Error on broken
  /// connections or a timed-out send deadline.
  virtual void write(const std::uint8_t* data, std::size_t size) = 0;
};

/// Transport over a connected socket fd.  Non-owning: the fd's lifetime
/// belongs to whoever accepted/connected it.
class FdTransport final : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  [[nodiscard]] std::size_t read_some(std::uint8_t* data,
                                      std::size_t size) override;
  void write(const std::uint8_t* data, std::size_t size) override;
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_;
};

// -- frame I/O -------------------------------------------------------------

/// Write the whole buffer; throws bbmg::Error on a broken connection.
void write_all(int fd, const std::uint8_t* data, std::size_t size);
void write_frame(int fd, const Frame& frame);
void write_frame(Transport& transport, const Frame& frame);

/// Read one frame via the decoder, pulling more bytes from the transport
/// as needed.  nullopt on clean EOF at a frame boundary; throws
/// bbmg::Error on mid-frame EOF, read errors, or malformed framing.
[[nodiscard]] std::optional<Frame> read_frame(int fd, FrameDecoder& decoder);
[[nodiscard]] std::optional<Frame> read_frame(Transport& transport,
                                              FrameDecoder& decoder);

}  // namespace bbmg::net
