// SessionManager: N independent learning sessions sharded over a fixed
// pool of worker threads.
//
// Sharding model (DESIGN.md "Service architecture"): each worker owns one
// bounded MPSC queue; a session is pinned to worker (id mod workers), so
// all periods of one session are processed by one thread in submission
// order — per-session determinism — while distinct sessions on distinct
// workers learn fully in parallel.  The only hot-path synchronization is
// the queue handoff; the learner itself is single-threaded per session.
//
// Backpressure: submit(..., block=false) refuses when the shard's queue is
// full and the rejection is accounted on the session (clients replaying
// files use block=true and are simply throttled).  Queries are answered
// from the session's published snapshot and never stall ingestion.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/conformance.hpp"
#include "durable/store.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_context.hpp"
#include "serve/queue.hpp"
#include "serve/session.hpp"

namespace bbmg {

struct ManagerConfig {
  /// Worker threads (and ingest queues); sessions are sharded across them.
  std::size_t workers{2};
  /// Per-worker queue capacity, in periods.
  std::size_t queue_capacity{256};
  /// Durability (src/durable).  When durable.enabled(), the manager
  /// recovers every session found in the data directory at construction,
  /// WALs each applied period, and compacts with periodic snapshots.
  durable::DurableConfig durable;
};

/// What startup recovery found (counts + operator-facing diagnostics);
/// empty when durability is off or the data directory was fresh.
struct RecoverySummary {
  std::size_t sessions{0};
  std::uint64_t replayed_periods{0};
  std::uint64_t torn_tails{0};
  std::size_t quarantined_files{0};
  std::vector<std::string> diagnostics;
};

enum class SubmitStatus : std::uint8_t {
  Accepted,
  /// Bounded queue full and block=false: the period was NOT ingested.
  Overflow,
  /// No such session, or the session was closed.
  UnknownSession,
  /// The manager is stopping; nothing is ingested any more.
  ShuttingDown,
  /// The session was poisoned by an apply/WAL failure (disk full, fsync
  /// error, oversized record); it refuses further periods but still
  /// answers queries from its last published snapshot.
  Failed,
};

[[nodiscard]] std::string_view submit_status_name(SubmitStatus s);

/// Outcome of checking a probe period against a served snapshot.
enum class ProbeVerdict : std::uint8_t {
  None = 0,          // no probe submitted
  Conforms = 1,      // probe period conforms to the snapshot's dLUB model
  Violates = 2,      // at least one conformance violation
  Unverifiable = 3,  // the sanitizer quarantined the probe period
};

struct QueryResult {
  std::shared_ptr<const RobustSnapshot> snapshot;
  ProbeVerdict verdict{ProbeVerdict::None};
  std::vector<ConformanceViolation> violations;
};

struct SessionStats {
  std::size_t accepted{0};
  std::size_t rejected{0};
  std::size_t processed{0};
  HealthState health{HealthState::OK};
};

class SessionManager {
 public:
  explicit SessionManager(ManagerConfig config = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Create a session for the given task universe.  Thread-safe.
  [[nodiscard]] SessionId open_session(std::vector<std::string> task_names,
                                       SessionConfig config = {});

  /// Create a session under an explicit id (the follower half of WAL
  /// replication: the primary mirrors its session ids so clients can
  /// reattach after failover).  Idempotent — re-opening an existing id
  /// with the same task universe is a no-op; a different universe raises.
  /// Ids between the current tail and `id` stay as null gaps.
  SessionId open_session_with_id(std::uint32_t id,
                                 std::vector<std::string> task_names,
                                 SessionConfig config = {});

  /// Install (or clear) the replication tap on every current and future
  /// session.  Call before any traffic that should replicate (typically
  /// right after construction, before the server starts accepting).
  void set_ship_hook(ShipHook hook);

  /// What the replicator needs to mirror one session: its task universe,
  /// config, and the live WAL path ("" for in-memory sessions).
  struct SessionInfo {
    std::vector<std::string> task_names;
    SessionConfig config;
    std::string wal_path;
  };
  /// nullopt for unknown/null ids.  Thread-safe.
  [[nodiscard]] std::optional<SessionInfo> session_info(SessionId id) const;

  /// Refuse further submissions to the session; periods already queued are
  /// still learned.  Returns false for an unknown id.
  bool close_session(SessionId id);

  /// Hand one raw period to the session's shard.  block=true waits for
  /// queue space (lossless replay); block=false returns Overflow when the
  /// shard is saturated (backpressure).  seq, when non-zero, is the
  /// client's idempotence sequence number: a seq at or below the
  /// session's high-water mark is dropped as an already-ingested
  /// duplicate (still Accepted — resends after a reconnect are expected).
  /// ctx, when active, is the request's causal trace context (the server's
  /// decode span): the worker records its stage spans — queue wait, WAL
  /// append, fsync, learner apply — as children of it.
  SubmitStatus submit(SessionId id, std::vector<Event> period_events,
                      bool block = true, std::uint64_t seq = 0,
                      const obs::TraceContext& ctx = {});

  /// Wait until every period accepted so far has been processed.
  void drain(SessionId id);

  /// Copy out the session's latest published snapshot (never stalls the
  /// worker).  probe, if non-null, is additionally sanitized and checked
  /// against the snapshot's dLUB model.  Throws bbmg::Error for unknown
  /// ids.
  [[nodiscard]] QueryResult query(SessionId id,
                                  const std::vector<Event>* probe = nullptr) const;

  [[nodiscard]] SessionStats stats(SessionId id) const;
  [[nodiscard]] std::size_t num_sessions() const;
  [[nodiscard]] std::size_t num_workers() const { return queues_.size(); }
  [[nodiscard]] const ManagerConfig& config() const { return config_; }

  /// Drain the session, fsync its WAL, and return the durable high-water
  /// mark (the Resume handler's backing).  Throws for unknown ids.
  [[nodiscard]] std::uint64_t resume_high_water(SessionId id);

  /// What startup recovery restored (empty if durability is off).
  [[nodiscard]] const RecoverySummary& recovery() const { return recovery_; }

  /// Close all queues, finish queued work, join the pool.  Idempotent;
  /// also run by the destructor.
  void stop();

  /// Write a final snapshot for every durable session.  Call after stop()
  /// — the graceful-drain shutdown path (SIGTERM): stop accepting, finish
  /// the queues, then checkpoint so restart needs no WAL replay.
  void checkpoint_all();

 private:
  struct WorkItem {
    std::shared_ptr<LearningSession> session;
    std::vector<Event> events;
    /// obs::now_ns() at submit; 0 when instrumentation is compiled out.
    std::uint64_t enqueue_ns{0};
    /// Causal context of the request that queued this period (inactive for
    /// untraced submissions).
    obs::TraceContext ctx{};
  };

  [[nodiscard]] std::shared_ptr<LearningSession> find(SessionId id) const;
  /// Build + store one session at `id` (sessions_mu_ held by the caller).
  std::shared_ptr<LearningSession> create_session_locked(
      SessionId id, std::vector<std::string> task_names, SessionConfig config);
  void worker_loop(std::size_t worker_index);
  /// Run startup recovery and rebuild sessions_ (ids keep their pre-crash
  /// values; unrecovered ids stay as null gaps).
  void recover_sessions();

  ManagerConfig config_;
  std::vector<std::unique_ptr<BoundedMpscQueue<WorkItem>>> queues_;
  /// Per-worker shard depth gauges, resolved once at construction.
  std::vector<obs::Gauge*> queue_depth_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex sessions_mu_;
  /// index == id; entries can be null after recovery (ids whose state was
  /// quarantined) or below an explicitly-opened id — callers treat a null
  /// as UnknownSession.
  std::vector<std::shared_ptr<LearningSession>> sessions_;
  /// Replication tap handed to every session (null = replication off).
  std::shared_ptr<const ShipHook> ship_hook_;

  RecoverySummary recovery_;
};

}  // namespace bbmg
