// Bounded multi-producer single-consumer queue, the only synchronization
// point on the serve ingest hot path (DESIGN.md "Service architecture"):
// producers are connection/replay threads handing over whole periods,
// the single consumer is the worker thread the owning shard is pinned to.
// Bounded capacity is the backpressure mechanism — try_push refuses when
// full (the caller accounts the overflow), push blocks (lossless replay).
//
// A mutex + two condvars is deliberate: items are whole periods (hundreds
// of events, milliseconds of learner work), so queue transfer cost is noise
// and the simple implementation is trivially correct under TSan — which the
// serve test suite runs under (README "Thread sanitizer").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace bbmg {

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Non-blocking producer: false if the queue is full or closed.
  [[nodiscard]] bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking producer: waits for space; false only if closed meanwhile.
  [[nodiscard]] bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking consumer: nullopt once the queue is closed and drained.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wake every waiter; producers fail, the consumer drains then stops.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_{false};
};

}  // namespace bbmg
