#include "serve/resilient_client.hpp"

#include <ctime>

#include "common/error.hpp"
#include "serve/serve_metrics.hpp"

namespace bbmg {

namespace {

void sleep_ms(std::uint64_t ms) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
  (void)::nanosleep(&ts, nullptr);
}

}  // namespace

ResilientClient::ResilientClient(RetryConfig config)
    : config_(config), rng_(config.seed) {
  client_.set_request_timeout_ms(config_.request_timeout_ms);
}

void ResilientClient::connect(const std::string& host, std::uint16_t port) {
  begin_op();
  host_ = host;
  port_ = port;
  with_retry([&] { ensure_connected(); });
}

void ResilientClient::set_endpoint(const std::string& host,
                                   std::uint16_t port) {
  host_ = host;
  port_ = port;
  client_.disconnect();
}

void ResilientClient::backoff(std::size_t attempt) {
  std::uint64_t delay = config_.base_backoff_ms;
  for (std::size_t i = 0; i < attempt && delay < config_.max_backoff_ms; ++i) {
    delay *= 2;
  }
  if (delay > config_.max_backoff_ms) delay = config_.max_backoff_ms;
  if (config_.jitter > 0.0 && delay > 0) {
    const double spread = (rng_.next_double() * 2.0 - 1.0) * config_.jitter;
    const double jittered = static_cast<double>(delay) * (1.0 + spread);
    delay = jittered < 1.0 ? 1 : static_cast<std::uint64_t>(jittered);
  }
  if (delay > 0) sleep_ms(delay);
}

std::uint64_t ResilientClient::now_ms() const {
  timespec ts{};
  (void)::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000;
}

void ResilientClient::begin_op() {
  op_start_ms_ = config_.retry_budget_ms != 0 ? now_ms() : 0;
  op_failures_ = 0;
}

template <typename Fn>
auto ResilientClient::with_retry(Fn&& fn) -> decltype(fn()) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      ensure_connected();
      return fn();
    } catch (const Redirected&) {
      // A redirect is an answer about key ownership, not a transport
      // failure; retrying the same shard would loop forever.
      throw;
    } catch (const std::exception& e) {
      // A dead connection poisons any reply in flight; drop it so the next
      // attempt reconnects, resumes, and resends before retrying fn.
      client_.disconnect();
      ++op_failures_;
      const std::uint64_t elapsed =
          op_start_ms_ != 0 ? now_ms() - op_start_ms_ : 0;
      // When a time budget is configured it alone decides when to give up:
      // connection-refused failures during a server's cold start are nearly
      // instant, so counting them against max_retries would burn the whole
      // allowance in milliseconds and defeat the budget's purpose.
      const bool has_budget = config_.retry_budget_ms != 0;
      const bool exhausted = has_budget
                                 ? elapsed >= config_.retry_budget_ms
                                 : attempt >= config_.max_retries;
      if (exhausted) {
        throw RetriesExhausted(op_failures_, elapsed, e.what());
      }
      ServeMetrics::get().client_retries.inc();
      backoff(attempt);
    }
  }
}

void ResilientClient::ensure_connected() {
  if (client_.connected()) return;
  BBMG_REQUIRE(!host_.empty(), "resilient client: no endpoint configured");
  client_.connect(host_, port_);
  ServeMetrics::get().client_reconnects.inc();
  // Learn what survived on the server (possibly a restarted process that
  // recovered from disk), then resend the tail it lost.
  for (auto& [id, state] : sessions_) {
    std::uint64_t high_water = 0;
    try {
      high_water = client_.resume(id);
    } catch (const ServerError& e) {
      // A failover target can predate the session entirely: the primary
      // died before its replicator ever mirrored this id.  When we hold
      // the open recipe, re-create the session under the same id and let
      // the ordinary resume/resend path below replay the full stream —
      // every period is still in `unacked`, so nothing is lost.
      if (e.code() != WireErrorCode::UnknownSession || !state.can_reopen) {
        throw;
      }
      client_.open_session_as(id, state.task_names, state.bound, state.policy,
                              state.snapshot_interval);
      high_water = client_.resume(id);
    }
    trim_acked(state, high_water);
    resend_unacked(id, state);
  }
}

void ResilientClient::trim_acked(SessionState& state,
                                 std::uint64_t high_water) {
  while (!state.unacked.empty() && state.unacked.front().seq <= high_water) {
    state.unacked.pop_front();
  }
}

void ResilientClient::resend_unacked(std::uint32_t session,
                                     SessionState& state) {
  ServeMetrics& metrics = ServeMetrics::get();
  for (const PendingPeriod& p : state.unacked) {
    client_.send_period(session, p.events, p.seq, p.ctx);
    metrics.resent_periods.inc();
  }
}

void ResilientClient::set_tracing(bool on) {
  tracing_ = on;
  if (on) obs::SpanRing::instance().set_enabled(true);
}

obs::TraceContext ResilientClient::begin_trace() const {
  if (!tracing_) return {};
  // The root span id is minted up front so the envelope can name it as the
  // parent before the span itself is recorded (at end_trace).
  return {obs::mint_id(), obs::mint_id()};
}

void ResilientClient::end_trace(const char* name,
                                const obs::TraceContext& ctx,
                                std::uint64_t start_ns) const {
  if (!ctx.active()) return;
  obs::SpanRing& ring = obs::SpanRing::instance();
  if (!ring.enabled()) return;
  obs::SpanRecord rec;
  rec.name = name;
  rec.start_ns = start_ns;
  rec.duration_ns = obs::now_ns() - start_ns;
  rec.thread = obs::current_thread_index();
  rec.trace_id = ctx.trace_id;
  rec.span_id = ctx.span_id;  // pre-minted root: parent stays 0
  rec.flow = static_cast<std::uint8_t>(obs::FlowDir::Out);
  ring.record(rec);
}

std::uint32_t ResilientClient::open_session(
    const std::vector<std::string>& task_names, std::uint32_t bound,
    SanitizePolicy policy, std::uint32_t snapshot_interval) {
  begin_op();
  const std::uint32_t id = with_retry([&] {
    return client_.open_session(task_names, bound, policy, snapshot_interval);
  });
  SessionState state;
  state.can_reopen = true;
  state.task_names = task_names;
  state.bound = bound;
  state.policy = policy;
  state.snapshot_interval = snapshot_interval;
  sessions_.emplace(id, std::move(state));
  return id;
}

void ResilientClient::attach_session(std::uint32_t session) {
  begin_op();
  const std::uint64_t high_water =
      with_retry([&] { return client_.resume(session); });
  SessionState state;
  state.next_seq = high_water + 1;
  sessions_[session] = std::move(state);
}

void ResilientClient::send_period(std::uint32_t session,
                                  std::vector<Event> events) {
  auto it = sessions_.find(session);
  BBMG_REQUIRE(it != sessions_.end(),
               "resilient client: unknown session (open or attach first)");
  SessionState& state = it->second;
  begin_op();
  const std::uint64_t seq = state.next_seq++;
  const obs::TraceContext ctx = begin_trace();
  const std::uint64_t start_ns = ctx.active() ? obs::now_ns() : 0;
  state.unacked.push_back(PendingPeriod{seq, std::move(events), ctx});
  // A reconnect inside with_retry resends the whole unacked tail and can
  // learn (via resume) that the server already holds this period durably,
  // in which case trim_acked pops it from `unacked` — so no reference into
  // the deque may be held across with_retry.  Re-look the period up by seq
  // on every attempt; if it is gone it is durable and there is nothing
  // left to send, otherwise the explicit send lands (at worst as a
  // duplicate the server drops) — either way delivered exactly once.
  with_retry([&] {
    for (const PendingPeriod& p : state.unacked) {
      if (p.seq > seq) break;  // unacked is seq-ordered
      if (p.seq == seq) {
        client_.send_period(session, p.events, seq, p.ctx);
        return;
      }
    }
  });
  end_trace("client.send_period", ctx, start_ns);
  if (++state.since_ack >= config_.ack_interval) {
    state.since_ack = 0;
    const std::uint64_t high_water =
        with_retry([&] { return client_.resume(session); });
    trim_acked(state, high_water);
  }
}

std::uint64_t ResilientClient::flush(std::uint32_t session) {
  auto it = sessions_.find(session);
  BBMG_REQUIRE(it != sessions_.end(), "resilient client: unknown session");
  SessionState& state = it->second;
  begin_op();
  for (std::size_t round = 0;; ++round) {
    const std::uint64_t high_water =
        with_retry([&] { return client_.resume(session); });
    trim_acked(state, high_water);
    state.since_ack = 0;
    if (state.unacked.empty()) return high_water;
    // Resume drains + fsyncs, so anything still unacked was lost in
    // flight on a connection that died; push it again and re-ask.
    BBMG_REQUIRE(round < config_.max_retries,
                 "resilient client: flush could not land all periods");
    with_retry([&] { resend_unacked(session, state); });
  }
}

WireSnapshot ResilientClient::query(std::uint32_t session, bool drain,
                                    const std::vector<Event>* probe) {
  begin_op();
  const obs::TraceContext ctx = begin_trace();
  const std::uint64_t start_ns = ctx.active() ? obs::now_ns() : 0;
  WireSnapshot snap =
      with_retry([&] { return client_.query(session, drain, probe, ctx); });
  end_trace("client.query", ctx, start_ns);
  return snap;
}

TraceDumpResponseMsg ResilientClient::fetch_trace_dump(bool drain,
                                                       bool flight) {
  begin_op();
  return with_retry([&] { return client_.fetch_trace_dump(drain, flight); });
}

std::uint64_t ResilientClient::open_session_as(
    std::uint32_t session, const std::vector<std::string>& task_names,
    std::uint32_t bound, SanitizePolicy policy,
    std::uint32_t snapshot_interval) {
  begin_op();
  // Drop any stale local state first: if this is a re-setup after a stall,
  // ensure_connected must not resume/resend from the old buffer.
  sessions_.erase(session);
  const std::uint64_t high_water = with_retry([&] {
    client_.open_session_as(session, task_names, bound, policy,
                            snapshot_interval);
    return client_.resume(session);
  });
  SessionState state;
  state.next_seq = high_water + 1;
  state.can_reopen = true;
  state.task_names = task_names;
  state.bound = bound;
  state.policy = policy;
  state.snapshot_interval = snapshot_interval;
  sessions_[session] = std::move(state);
  return high_water;
}

std::uint32_t ResilientClient::open_cluster_session(
    const std::string& key, const std::vector<std::string>& task_names,
    std::uint32_t bound, SanitizePolicy policy,
    std::uint32_t snapshot_interval) {
  begin_op();
  const std::uint32_t id = with_retry([&] {
    return client_.open_cluster_session(key, task_names, bound, policy,
                                        snapshot_interval);
  });
  SessionState state;
  state.can_reopen = true;
  state.task_names = task_names;
  state.bound = bound;
  state.policy = policy;
  state.snapshot_interval = snapshot_interval;
  sessions_.emplace(id, std::move(state));
  return id;
}

ClusterMapResponseMsg ResilientClient::fetch_cluster_map() {
  begin_op();
  return with_retry([&] { return client_.fetch_cluster_map(); });
}

std::size_t ResilientClient::unacked(std::uint32_t session) const {
  auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.unacked.size();
}

}  // namespace bbmg
