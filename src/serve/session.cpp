#include "serve/session.hpp"

#include "obs/span.hpp"
#include "obs/trace_context.hpp"
#include "serve/serve_metrics.hpp"

namespace bbmg {

LearningSession::LearningSession(SessionId id,
                                 std::vector<std::string> task_names,
                                 SessionConfig config)
    : id_(id),
      task_names_(std::move(task_names)),
      config_(config),
      learner_(task_names_, config.robust) {
  if (config_.snapshot_interval == 0) config_.snapshot_interval = 1;
  snapshot_ = std::make_shared<const RobustSnapshot>(learner_.full_snapshot());
}

LearningSession::LearningSession(SessionId id,
                                 std::vector<std::string> task_names,
                                 SessionConfig config,
                                 RestoredSessionState restored)
    : id_(id),
      task_names_(std::move(task_names)),
      config_(config),
      learner_(std::move(restored.learner)) {
  if (config_.snapshot_interval == 0) config_.snapshot_interval = 1;
  // Seed the accounting so accepted == processed == the recovered seq:
  // drain() is immediately satisfied and the next applied period lands at
  // seq + 1, exactly where the pre-crash session would have put it.
  accepted_.add(restored.seq);
  processed_ = static_cast<std::size_t>(restored.seq);
  last_enqueued_seq_.store(restored.seq, std::memory_order_relaxed);
  stream_stats_.restore(restored.stats);
  snapshot_ = std::make_shared<const RobustSnapshot>(learner_.full_snapshot());
}

bool LearningSession::claim_seq(std::uint64_t seq) {
  std::uint64_t cur = last_enqueued_seq_.load(std::memory_order_relaxed);
  for (;;) {
    if (seq <= cur) return false;  // duplicate of an already-claimed period
    if (last_enqueued_seq_.compare_exchange_weak(cur, seq,
                                                 std::memory_order_relaxed)) {
      return true;
    }
  }
}

void LearningSession::release_seq(std::uint64_t seq) {
  std::uint64_t expected = seq;
  (void)last_enqueued_seq_.compare_exchange_strong(expected, seq - 1,
                                                   std::memory_order_relaxed);
}

std::uint64_t LearningSession::flush_durable() {
  if (store_) return store_->flush();
  return static_cast<std::uint64_t>(processed());
}

void LearningSession::checkpoint() {
  // A failed session's learner may be mid-mutation; snapshotting it would
  // persist (and later replay from) state no uninterrupted run produces.
  if (!store_ || failed()) return;
  store_->write_snapshot(static_cast<std::uint64_t>(processed()), learner_,
                         stream_stats_.summary());
}

void LearningSession::mark_failed(const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (failure_.empty()) failure_ = why;
    failed_.store(true, std::memory_order_release);
  }
  // Wake drain()ers: the period that failed will never be processed.
  drained_.notify_all();
}

void LearningSession::set_ship_hook(std::shared_ptr<const ShipHook> hook) {
  std::lock_guard<std::mutex> lock(state_mu_);
  ship_hook_ = std::move(hook);
}

std::string LearningSession::failure() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return failure_;
}

void LearningSession::drain() {
  std::unique_lock<std::mutex> lock(state_mu_);
  drained_.wait(lock, [&] {
    return failed_.load(std::memory_order_relaxed) ||
           processed_ >= accepted_.value();
  });
}

void LearningSession::process(const std::vector<Event>& period_events,
                              std::uint64_t enqueue_ns) {
  // WAL-before-apply: the period is on disk (modulo group-commit fsync)
  // before the learner's state reflects it, so replay can always rebuild
  // the applied prefix.  processed_ is only written by this worker, so
  // the unlocked read is race-free.
  const std::uint64_t seq = static_cast<std::uint64_t>(processed_) + 1;
  if (store_) store_->append_period(seq, period_events);
  // Replication tap, after the local WAL append so a shipped period is
  // always locally durable first (the follower can never be ahead of the
  // primary's own log), and before the completion publication so a
  // drain()-then-resume caller knows every drained period was offered to
  // the replicator.
  std::shared_ptr<const ShipHook> ship;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ship = ship_hook_;
  }
  if (ship) (*ship)(static_cast<std::uint32_t>(id_.index()), seq,
                    period_events);
  // Attributed to the request's trace when the worker set a scope (the
  // WAL spans above record themselves the same way, inside the writer).
  const std::uint64_t apply_start = obs::now_ns();
  stream_stats_.observe_events(period_events);
  (void)learner_.observe_raw_period(period_events);
  obs::record_current_stage("server.apply", apply_start, obs::now_ns());
  ServeMetrics& metrics = ServeMetrics::get();
  metrics.periods_applied.inc();
  if (enqueue_ns != 0) {
    metrics.enqueue_apply_latency_us.observe((obs::now_ns() - enqueue_ns) /
                                             1000);
  }
  ++since_publish_;
  // processed_ is written only by this (the affine) worker, so reading it
  // without the lock here is race-free; the lock below orders the write.
  const std::size_t next = processed_ + 1;
  const bool backlog_empty = next >= accepted_.value();
  std::shared_ptr<const RobustSnapshot> snap;
  if (since_publish_ >= config_.snapshot_interval || backlog_empty) {
    // Snapshot construction copies the hypothesis set; build it before
    // taking the lock so a concurrent query is never stalled behind the
    // copy.  Storing it before processed_ becomes visible guarantees a
    // drain()-then-query caller sees the final model, not a stale one.
    snap = std::make_shared<const RobustSnapshot>(learner_.full_snapshot());
    since_publish_ = 0;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (snap) snapshot_ = std::move(snap);
    processed_ = next;
  }
  drained_.notify_all();
  // Periodic compaction after the period is fully visible: snapshot the
  // learner (still exclusively ours — same affine worker) and rotate the
  // WAL.  Crash windows are covered: before the snapshot rename the old
  // snapshot+WAL recover, after it the new snapshot does.
  if (store_ && store_->should_compact(seq)) {
    store_->write_snapshot(seq, learner_, stream_stats_.summary());
  }
}

std::shared_ptr<const RobustSnapshot> LearningSession::snapshot() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return snapshot_;
}

std::size_t LearningSession::processed() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return processed_;
}

}  // namespace bbmg
