#include "serve/session.hpp"

#include "obs/span.hpp"
#include "serve/serve_metrics.hpp"

namespace bbmg {

LearningSession::LearningSession(SessionId id,
                                 std::vector<std::string> task_names,
                                 SessionConfig config)
    : id_(id),
      task_names_(std::move(task_names)),
      config_(config),
      learner_(task_names_, config.robust) {
  if (config_.snapshot_interval == 0) config_.snapshot_interval = 1;
  snapshot_ = std::make_shared<const RobustSnapshot>(learner_.full_snapshot());
}

void LearningSession::drain() {
  std::unique_lock<std::mutex> lock(state_mu_);
  drained_.wait(lock, [&] { return processed_ >= accepted_.value(); });
}

void LearningSession::process(const std::vector<Event>& period_events,
                              std::uint64_t enqueue_ns) {
  stream_stats_.observe_events(period_events);
  (void)learner_.observe_raw_period(period_events);
  ServeMetrics& metrics = ServeMetrics::get();
  metrics.periods_applied.inc();
  if (enqueue_ns != 0) {
    metrics.enqueue_apply_latency_us.observe((obs::now_ns() - enqueue_ns) /
                                             1000);
  }
  ++since_publish_;
  // processed_ is written only by this (the affine) worker, so reading it
  // without the lock here is race-free; the lock below orders the write.
  const std::size_t next = processed_ + 1;
  const bool backlog_empty = next >= accepted_.value();
  std::shared_ptr<const RobustSnapshot> snap;
  if (since_publish_ >= config_.snapshot_interval || backlog_empty) {
    // Snapshot construction copies the hypothesis set; build it before
    // taking the lock so a concurrent query is never stalled behind the
    // copy.  Storing it before processed_ becomes visible guarantees a
    // drain()-then-query caller sees the final model, not a stale one.
    snap = std::make_shared<const RobustSnapshot>(learner_.full_snapshot());
    since_publish_ = 0;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (snap) snapshot_ = std::move(snap);
    processed_ = next;
  }
  drained_.notify_all();
}

std::shared_ptr<const RobustSnapshot> LearningSession::snapshot() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return snapshot_;
}

std::size_t LearningSession::processed() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return processed_;
}

}  // namespace bbmg
