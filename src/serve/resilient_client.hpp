// ResilientClient: a crash-tolerant wrapper around ServeClient.
//
// Every period is sent with a client-assigned sequence number (1, 2, 3,
// ... per session) and kept in an unacked buffer until the server's
// durable high-water mark — fetched via Resume/ResumeAck — covers it.
// When any request fails (connection reset, deadline, server restart) the
// client backs off exponentially with jitter, reconnects, resumes every
// open session to learn what survived, resends the unacked tail, and
// retries the original request.  Because the server drops sequenced
// duplicates at or below its high-water mark, resending is idempotent:
// the learned model after any number of crash/retry cycles is exactly the
// model of the uninterrupted stream (the crash-recovery test's property).
//
// Single-threaded: one ResilientClient per producer, matching the
// one-producer-per-session contract of the sequence numbers.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "serve/client.hpp"

namespace bbmg {

struct RetryConfig {
  /// Retries per request after the first attempt (so max_retries + 1
  /// attempts total); the last failure propagates to the caller.  Ignored
  /// when retry_budget_ms is set — see below.
  std::size_t max_retries{5};
  /// First backoff delay; doubles per retry up to max_backoff_ms.
  std::uint32_t base_backoff_ms{50};
  std::uint32_t max_backoff_ms{2000};
  /// Uniform jitter fraction applied to each delay (0.2 = +/-20%),
  /// de-synchronizing clients that observed the same server restart.
  double jitter{0.2};
  /// Per-request socket deadline handed to ServeClient (0 = block forever).
  std::uint32_t request_timeout_ms{5000};
  /// Trim the unacked buffer with a Resume round-trip every N sends;
  /// bounds client memory to ~N periods per session.
  std::size_t ack_interval{64};
  /// Seed for the jitter RNG (deterministic tests).
  std::uint64_t seed{1};
  /// Total wall-clock budget for one logical operation including all of
  /// its retries and backoffs (0 = no budget; max_retries bounds the
  /// attempts).  When set, the budget alone decides when to give up and
  /// max_retries is ignored: failures are not all equally priced —
  /// connection-refused during a server cold start is near-instant, and
  /// counting such failures against max_retries would exhaust the
  /// allowance long before the time the caller actually granted.  Under a
  /// permanent partition the per-request deadline bounds each attempt and
  /// the budget bounds the *sum*; when it is exhausted the operation
  /// fails with RetriesExhausted.
  std::uint32_t retry_budget_ms{0};
};

/// Terminal retry failure: the operation burned through max_retries or
/// the retry_budget_ms window without one attempt landing.  Carries the
/// attempt count, elapsed wall time, and the last underlying error text,
/// so callers (cluster failover) can branch on the type while logs keep
/// the root cause.
class RetriesExhausted : public Error {
 public:
  RetriesExhausted(std::size_t attempts, std::uint64_t elapsed_ms,
                   const std::string& last_error)
      : Error("resilient client: retries exhausted after " +
              std::to_string(attempts) + " attempt(s) in " +
              std::to_string(elapsed_ms) + " ms; last error: " + last_error),
        attempts_(attempts),
        elapsed_ms_(elapsed_ms),
        last_error_(last_error) {}
  [[nodiscard]] std::size_t attempts() const { return attempts_; }
  [[nodiscard]] std::uint64_t elapsed_ms() const { return elapsed_ms_; }
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

 private:
  std::size_t attempts_;
  std::uint64_t elapsed_ms_;
  std::string last_error_;
};

class ResilientClient {
 public:
  explicit ResilientClient(RetryConfig config = {});

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// Remember the endpoint and connect (with retries).
  void connect(const std::string& host, std::uint16_t port);

  /// Point future reconnects at a new endpoint — a restarted server
  /// typically binds a fresh ephemeral port.  Drops the current
  /// connection; the next request reconnects, resumes and resends.
  void set_endpoint(const std::string& host, std::uint16_t port);

  void disconnect() { client_.disconnect(); }

  /// Open a session (retried).  A retry after a lost reply can leave an
  /// orphaned extra session server-side; orphans idle harmlessly.
  [[nodiscard]] std::uint32_t open_session(
      const std::vector<std::string>& task_names, std::uint32_t bound = 16,
      SanitizePolicy policy = SanitizePolicy::Repair,
      std::uint32_t snapshot_interval = 1);

  /// Continue a session recovered by a restarted server (or owned by a
  /// previous client process): fetches the durable high-water mark and
  /// numbers the next period high_water + 1.
  void attach_session(std::uint32_t session);

  /// Replication path: open (idempotently) session `session` on the peer
  /// under that explicit id, resume it, and number the next period after
  /// the peer's durable high-water mark — which is returned.  Re-invoking
  /// for a known session resets its state to the peer's truth (any locally
  /// buffered unacked periods are dropped; the replicator re-reads them
  /// from the WAL instead).
  std::uint64_t open_session_as(std::uint32_t session,
                                const std::vector<std::string>& task_names,
                                std::uint32_t bound = 16,
                                SanitizePolicy policy = SanitizePolicy::Repair,
                                std::uint32_t snapshot_interval = 1);

  /// Open a session routed by a consistent-hash key.  Transport failures
  /// retry as usual; a Redirected answer propagates untouched (it is an
  /// answer, not a failure).
  [[nodiscard]] std::uint32_t open_cluster_session(
      const std::string& key, const std::vector<std::string>& task_names,
      std::uint32_t bound = 16, SanitizePolicy policy = SanitizePolicy::Repair,
      std::uint32_t snapshot_interval = 1);

  /// Fetch the server's cluster map (retried).
  [[nodiscard]] ClusterMapResponseMsg fetch_cluster_map();

  /// Sequence, buffer and send one period.  Failures retry transparently;
  /// the period is resent after reconnects until acknowledged durable.
  void send_period(std::uint32_t session, std::vector<Event> events);

  /// Block until every period sent so far is durable on the server
  /// (drained + fsynced); returns the acknowledged high-water mark.
  std::uint64_t flush(std::uint32_t session);

  /// Fetch the served model (retried; drain=true also waits for the
  /// server-side backlog).
  [[nodiscard]] WireSnapshot query(std::uint32_t session, bool drain = true,
                                   const std::vector<Event>* probe = nullptr);

  /// Pull the server's span ring (retried; see ServeClient).  A retried
  /// drain can lose the spans of the failed attempt — trace dumps are
  /// diagnostics, not durable data.
  [[nodiscard]] TraceDumpResponseMsg fetch_trace_dump(bool drain = true,
                                                      bool flight = false);

  /// Periods buffered but not yet acknowledged durable.
  [[nodiscard]] std::size_t unacked(std::uint32_t session) const;
  [[nodiscard]] const RetryConfig& config() const { return config_; }

  /// Causal tracing: when on, every send_period/query mints a trace id,
  /// records a client root span (flow Out) into the process span ring, and
  /// carries the context to the server as a v3 envelope so server stages
  /// join the same trace.  Enables the span ring as a side effect.
  void set_tracing(bool on);
  [[nodiscard]] bool tracing() const { return tracing_; }

 private:
  struct PendingPeriod {
    std::uint64_t seq{0};
    std::vector<Event> events;
    /// Trace context minted at first send; resends reuse it, so every
    /// delivery attempt of one period lands in one causal chain.
    obs::TraceContext ctx{};
  };
  struct SessionState {
    std::uint64_t next_seq{1};
    std::deque<PendingPeriod> unacked;
    std::size_t since_ack{0};
    /// The open recipe, kept so a reconnect that lands on a server which
    /// never heard of the session (a follower the primary died before
    /// mirroring to) can re-create it under the same id and resend.  Only
    /// sessions this client opened itself are re-creatable; attach_session
    /// leaves can_reopen false.
    bool can_reopen{false};
    std::vector<std::string> task_names;
    std::uint32_t bound{16};
    SanitizePolicy policy{SanitizePolicy::Repair};
    std::uint32_t snapshot_interval{1};
  };

  template <typename Fn>
  auto with_retry(Fn&& fn) -> decltype(fn());
  /// Start the retry-budget window for one logical operation.  Public
  /// entry points call this once up front; nested with_retry rounds then
  /// share the window, so a multi-round flush cannot exceed the budget.
  void begin_op();
  [[nodiscard]] std::uint64_t now_ms() const;
  void ensure_connected();
  void backoff(std::size_t attempt);
  void resend_unacked(std::uint32_t session, SessionState& state);
  static void trim_acked(SessionState& state, std::uint64_t high_water);

  /// Mint a context + start time for one traced request ({} when tracing
  /// is off), and record its root span once the request lands.
  [[nodiscard]] obs::TraceContext begin_trace() const;
  void end_trace(const char* name, const obs::TraceContext& ctx,
                 std::uint64_t start_ns) const;

  RetryConfig config_;
  ServeClient client_;
  Rng rng_;
  std::string host_;
  std::uint16_t port_{0};
  std::unordered_map<std::uint32_t, SessionState> sessions_;
  bool tracing_{false};
  /// Monotonic start of the current logical operation (begin_op); 0 when
  /// no budget is configured.
  std::uint64_t op_start_ms_{0};
  /// Attempts that failed since begin_op, across nested retry rounds.
  std::size_t op_failures_{0};
};

}  // namespace bbmg
