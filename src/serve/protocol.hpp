// Framed wire protocol of the learning service, built on the binary codec
// (trace/binary_codec.hpp).  Every frame is
//
//   length u32 (payload bytes) | type u8 | payload
//
// and a connection opens with a Hello/HelloAck pair carrying the protocol
// magic and version, so a peer speaking the wrong protocol (or a text
// client hitting the port) is rejected on the first frame.  All encoding
// is little-endian; decode is bounds-checked and throws bbmg::Error on
// truncated or malformed payloads — a garbage frame can kill its own
// connection, never the server.
//
// Conversation (client-driven, one reply per request except Events and
// EndPeriod, which are fire-and-forget so period streaming is not
// round-trip bound):
//
//   Hello            -> HelloAck
//   OpenSession      -> SessionOpened | ErrorReply
//   Events           (accumulates the current period, no reply)
//   EndPeriod        (submits the period, no reply; lossless — the server
//                     blocks on its shard queue, so TCP itself carries the
//                     backpressure to the producer)
//   Query            -> ModelReply | ErrorReply  (optionally drains first,
//                     optionally carries a probe period to check)
//   CloseSession     -> SessionClosed | ErrorReply
//   MetricsRequest   -> MetricsResponse  (process-wide observability
//                     snapshot: every registered counter/gauge/histogram)
//   Resume           -> ResumeAck | ErrorReply  (v2: reports the server's
//                     durable high-water mark for the session so a
//                     reconnecting client knows which periods to resend)
//
// Version 2 additions (crash-safe serving): EndPeriod carries a client
// sequence number (0 = unsequenced, v1 behaviour) so the server can drop
// duplicates after a reconnect, and Resume/ResumeAck expose the durable
// high-water mark.
//
// Version 3 additions (causal tracing): Hello/HelloAck negotiate the
// version (the server accepts any version in [kServeMinProtocolVersion,
// kServeProtocolVersion] and echoes the minimum of the two sides, so v2
// clients keep working unchanged); TraceContext is an optional envelope
// frame that attaches a {trace id, parent span id} pair to the *next*
// request frame on the connection, letting the server continue the
// client's trace as child spans without changing any existing payload
// schema; TraceDumpRequest/TraceDumpResponse pull the server's span ring
// (and optionally its flight-recorder dump) over the wire for merged
// client+server Chrome traces.
//
// Version 4 additions (cluster serving, src/cluster):
//
//   ClusterMapRequest  -> ClusterMapResponse  (the shard's view of the
//                     static cluster map: epoch + per-shard primary and
//                     follower endpoints, so clients can route and fail
//                     over without out-of-band configuration)
//   OpenClusterSession -> SessionOpened | Redirect | ErrorReply  (open a
//                     session routed by a client-chosen key; a shard that
//                     does not own the key answers Redirect with the
//                     owner's endpoint instead of opening locally)
//   OpenSessionAs      -> SessionOpened | ErrorReply  (open a session
//                     with an explicit id — the WAL-replication path: a
//                     primary mirrors its session onto its follower under
//                     the same id, so clients reattach after failover by
//                     the id they already hold.  Idempotent when the id
//                     already exists with the same task universe.)
//
// Unknown frame types above kMaxFrameType are *skipped* by the decoder
// (counted, logged, connection survives): a v4 server behind a v3-era
// proxy, or a newer client probing optional frames, must degrade to
// ignored extensions rather than killed connections.  Type 0 remains a
// framing error — it can only come from stream corruption.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "lattice/dependency_matrix.hpp"
#include "obs/metrics.hpp"
#include "serve/session_manager.hpp"
#include "trace/binary_codec.hpp"

namespace bbmg {

inline constexpr std::uint32_t kServeMagic = 0x474d4242u;  // "BBMG"
inline constexpr std::uint16_t kServeProtocolVersion = 4;
/// Oldest peer version still spoken; Hello/HelloAck outside
/// [kServeMinProtocolVersion, kServeProtocolVersion] are rejected, inside
/// the range both sides run at min(client, server).
inline constexpr std::uint16_t kServeMinProtocolVersion = 2;
/// Frames larger than this are rejected before allocation (garbage guard).
/// This is the hard upper bound; FrameDecoder::set_max_payload can lower
/// it per decoder (e.g. a memory-constrained ingest front-end).
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

/// Typed rejection for a frame whose declared length exceeds the
/// decoder's cap, so callers can distinguish "peer sent a huge frame"
/// (policy decision, maybe reject the connection with a specific error)
/// from generic stream corruption.
class FrameTooLarge : public Error {
 public:
  FrameTooLarge(std::size_t declared, std::size_t cap)
      : Error("protocol: frame payload of " + std::to_string(declared) +
              " bytes exceeds the decoder cap of " + std::to_string(cap)),
        declared_(declared),
        cap_(cap) {}
  [[nodiscard]] std::size_t declared() const { return declared_; }
  [[nodiscard]] std::size_t cap() const { return cap_; }

 private:
  std::size_t declared_;
  std::size_t cap_;
};

enum class FrameType : std::uint8_t {
  Hello = 1,
  HelloAck = 2,
  OpenSession = 3,
  SessionOpened = 4,
  Events = 5,
  EndPeriod = 6,
  Query = 7,
  ModelReply = 8,
  CloseSession = 9,
  SessionClosed = 10,
  ErrorReply = 11,
  MetricsRequest = 12,
  MetricsResponse = 13,
  Resume = 14,
  ResumeAck = 15,
  TraceContext = 16,       // v3: envelope for the next request frame
  TraceDumpRequest = 17,   // v3
  TraceDumpResponse = 18,  // v3
  OpenSessionAs = 19,       // v4: open with an explicit session id
  ClusterMapRequest = 20,   // v4
  ClusterMapResponse = 21,  // v4
  Redirect = 22,            // v4: the addressed shard does not own the key
  OpenClusterSession = 23,  // v4: open routed by a consistent-hash key
};

/// Highest FrameType value this build understands; the decoder *skips*
/// types beyond this (a newer peer's optional extension, see the v4 notes
/// above) and only rejects type 0 as stream corruption.
inline constexpr std::uint8_t kMaxFrameType =
    static_cast<std::uint8_t>(FrameType::OpenClusterSession);

struct Frame {
  FrameType type{FrameType::Hello};
  std::vector<std::uint8_t> payload;
};

/// Append the framed encoding (length, type, payload) to a byte buffer.
void append_frame(std::vector<std::uint8_t>& out, const Frame& frame);

/// Incremental frame parser for a byte stream: feed() arbitrary chunks,
/// next() yields complete frames in order.  Throws FrameTooLarge on an
/// oversized length field and bbmg::Error on frame type 0 (corruption).
/// Frame types above kMaxFrameType — extensions from a newer protocol
/// version — are consumed whole and skipped with a diagnostic, so mixed-
/// version clusters degrade to ignored frames, not dead connections.
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  [[nodiscard]] std::optional<Frame> next();
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - consumed_; }

  /// Lower the per-frame payload cap below kMaxFramePayload (values above
  /// the global cap are clamped, 0 keeps the current cap).  Applies to
  /// frames parsed after the call.
  void set_max_payload(std::size_t cap);
  [[nodiscard]] std::size_t max_payload() const { return max_payload_; }

  /// Unknown-type frames skipped so far (diagnostic for operators and the
  /// mixed-version tests).
  [[nodiscard]] std::uint64_t skipped() const { return skipped_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_{0};
  std::size_t max_payload_{kMaxFramePayload};
  std::uint64_t skipped_{0};
};

// -- payload schemas -------------------------------------------------------

struct HelloMsg {
  std::uint32_t magic{kServeMagic};
  std::uint16_t version{kServeProtocolVersion};
  [[nodiscard]] Frame to_frame(FrameType type) const;
  [[nodiscard]] static HelloMsg decode(const Frame& frame);
};

struct OpenSessionMsg {
  std::vector<std::string> task_names;
  std::uint32_t bound{16};
  SanitizePolicy policy{SanitizePolicy::Repair};
  std::uint32_t snapshot_interval{1};
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static OpenSessionMsg decode(const Frame& frame);
  [[nodiscard]] SessionConfig to_session_config() const;
};

struct SessionRefMsg {  // SessionOpened / CloseSession / SessionClosed / Resume
  std::uint32_t session{0};
  [[nodiscard]] Frame to_frame(FrameType type) const;
  [[nodiscard]] static SessionRefMsg decode(const Frame& frame);
};

struct EndPeriodMsg {
  std::uint32_t session{0};
  /// Client-assigned period sequence number for idempotent resume after a
  /// reconnect; 0 = unsequenced (the server applies unconditionally).
  /// Sequenced submissions must be 1, 2, 3, ... per session, one producer
  /// per session; the server drops any seq at or below its high-water
  /// mark as an already-applied duplicate.
  std::uint64_t seq{0};
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static EndPeriodMsg decode(const Frame& frame);
};

struct ResumeAckMsg {
  std::uint32_t session{0};
  /// The server's durable high-water mark: every sequenced period with
  /// seq <= high_water is fsynced to the WAL (or captured by a snapshot)
  /// and will survive a crash; the client resends from high_water + 1.
  std::uint64_t high_water{0};
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ResumeAckMsg decode(const Frame& frame);
};

struct EventsMsg {
  std::uint32_t session{0};
  std::vector<Event> events;
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static EventsMsg decode(const Frame& frame);
};

struct QueryMsg {
  std::uint32_t session{0};
  bool drain{true};
  /// Probe period to conformance-check against the served model.
  std::optional<std::vector<Event>> probe;
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static QueryMsg decode(const Frame& frame);
};

struct ModelReplyMsg {
  std::uint32_t session{0};
  std::uint8_t health{0};  // HealthState
  std::uint64_t periods_seen{0};
  std::uint64_t periods_learned{0};
  std::uint64_t periods_quarantined{0};
  std::uint64_t repairs{0};
  std::uint8_t converged{0};
  std::uint32_t num_hypotheses{0};
  std::uint64_t weight{0};  // of the dLUB summary
  std::uint8_t verdict{0};  // ProbeVerdict
  std::uint32_t num_violations{0};
  DependencyMatrix lub;
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ModelReplyMsg decode(const Frame& frame);
};

enum class WireErrorCode : std::uint16_t {
  BadFrame = 1,
  UnknownSession = 2,
  Overflow = 3,
  Internal = 4,
};

struct ErrorReplyMsg {
  WireErrorCode code{WireErrorCode::BadFrame};
  std::string message;
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ErrorReplyMsg decode(const Frame& frame);
};

/// Sanity caps for metrics payloads (a snapshot is small; a frame claiming
/// otherwise is garbage).
inline constexpr std::size_t kMaxWireMetrics = 1u << 16;
inline constexpr std::size_t kMaxWireHistogramBuckets = 1u << 10;

struct MetricsRequestMsg {
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static MetricsRequestMsg decode(const Frame& frame);
};

/// A full observability snapshot on the wire: every registered counter,
/// gauge and histogram by name (obs/metrics.hpp).  Gauges are signed and
/// carried as two's-complement u64.
struct MetricsResponseMsg {
  obs::MetricsSnapshot snapshot;
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static MetricsResponseMsg decode(const Frame& frame);
};

// -- causal tracing (v3) ---------------------------------------------------

/// Sanity cap on spans in one TraceDumpResponse (a span ring is bounded;
/// a frame claiming more is garbage).
inline constexpr std::size_t kMaxWireSpans = 1u << 20;
/// Flight-recorder text is carried as <= kMaxNameLength chunks; cap their
/// number (bounds the dump at ~64 MiB, far above the recorder's ring).
inline constexpr std::size_t kMaxWireFlightChunks = 1u << 14;

/// Envelope: attaches the client's trace id and calling span id to the
/// next request frame on this connection.  Sent only on negotiated v3
/// connections; an envelope with no following request is simply dropped.
struct TraceContextMsg {
  std::uint64_t trace_id{0};
  std::uint64_t span_id{0};
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static TraceContextMsg decode(const Frame& frame);
};

struct TraceDumpRequestMsg {
  /// Drain the server's span ring (true) or copy it non-destructively.
  bool drain{true};
  /// Also include the flight-recorder dump text.
  bool flight{false};
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static TraceDumpRequestMsg decode(const Frame& frame);
};

/// One span on the wire: SpanRecord with an owned name.
struct WireSpan {
  std::string name;
  std::uint32_t tid{0};
  std::uint64_t start_ns{0};
  std::uint64_t duration_ns{0};
  std::uint64_t trace_id{0};
  std::uint64_t span_id{0};
  std::uint64_t parent_id{0};
  std::uint8_t flow{0};
};

struct TraceDumpResponseMsg {
  /// The server's monotonic clock (obs::now_ns) at encode time; the
  /// client aligns timelines with offset = client_now - server_now.
  std::uint64_t server_now_ns{0};
  /// Spans evicted from the ring before they could be read
  /// (bbmg_obs_span_drops_total's ring share).
  std::uint64_t drops{0};
  std::vector<WireSpan> spans;
  /// Flight-recorder dump text (empty unless requested).
  std::string flight;
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static TraceDumpResponseMsg decode(const Frame& frame);
};

// -- cluster serving (v4) --------------------------------------------------

/// Sanity cap on shards in one ClusterMapResponse (a map is operator
/// configuration; a frame claiming more is garbage).
inline constexpr std::size_t kMaxWireShards = 1u << 10;

/// OpenSession with an explicit session id — the WAL-replication path: a
/// primary opens its session on the follower under the primary's id, so a
/// client that fails over reattaches (Resume) by the id it already holds.
/// Idempotent: re-opening an existing id with the same task universe
/// answers SessionOpened again instead of erroring, so a replicator that
/// lost an ack can safely retry.
struct OpenSessionAsMsg {
  std::uint32_t session{0};
  std::vector<std::string> task_names;
  std::uint32_t bound{16};
  SanitizePolicy policy{SanitizePolicy::Repair};
  std::uint32_t snapshot_interval{1};
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static OpenSessionAsMsg decode(const Frame& frame);
  [[nodiscard]] SessionConfig to_session_config() const;
};

/// One shard's endpoints in a ClusterMapResponse, as "host:port" strings
/// (an empty follower means the shard replicates nowhere).
struct WireShard {
  std::string primary;
  std::string follower;
};

struct ClusterMapRequestMsg {
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ClusterMapRequestMsg decode(const Frame& frame);
};

struct ClusterMapResponseMsg {
  /// Map generation; a client replaces its cached map only with a higher
  /// epoch (promotion bumps the epoch).
  std::uint64_t epoch{0};
  std::vector<WireShard> shards;
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ClusterMapResponseMsg decode(const Frame& frame);
};

/// "Not my key": the answering shard names the owner so the client can
/// re-route without refetching the whole map.
struct RedirectMsg {
  std::uint64_t epoch{0};
  std::uint32_t shard{0};
  std::string endpoint;  // "host:port" of the owning shard's primary
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static RedirectMsg decode(const Frame& frame);
};

/// OpenSession routed by a client-chosen key: the shard that owns
/// shard_for(key) under the current map opens the session and answers
/// SessionOpened; any other shard answers Redirect.
struct OpenClusterSessionMsg {
  std::string key;
  std::vector<std::string> task_names;
  std::uint32_t bound{16};
  SanitizePolicy policy{SanitizePolicy::Repair};
  std::uint32_t snapshot_interval{1};
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static OpenClusterSessionMsg decode(const Frame& frame);
  [[nodiscard]] SessionConfig to_session_config() const;
};

// -- matrix payload helpers (shared by ModelReply and tests) ---------------

void append_matrix(std::vector<std::uint8_t>& out, const DependencyMatrix& m);
[[nodiscard]] DependencyMatrix read_matrix_payload(ByteReader& r);

}  // namespace bbmg
