// The narrow seam between the serving front-end and the cluster layer.
//
// bbmg_serve cannot link against bbmg_cluster (the cluster library builds
// on top of the serve client), so the server sees cluster behaviour only
// through this interface: the accept loop asks it to route keys and serve
// the map, session workers hand it applied periods to ship, and the Resume
// path asks it to bound the acked high-water mark by what the follower
// durably holds.  cluster::Replicator is the one production
// implementation; tests may stub it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "trace/event.hpp"

namespace bbmg {

class ClusterHooks {
 public:
  virtual ~ClusterHooks() = default;

  /// The wire form of this node's cluster map (ClusterMapRequest reply).
  [[nodiscard]] virtual ClusterMapResponseMsg cluster_map() const = 0;

  /// Route an OpenClusterSession key: nullopt when this node serves the
  /// key itself, otherwise the Redirect to answer instead.
  [[nodiscard]] virtual std::optional<RedirectMsg> route(
      const std::string& key) const = 0;

  /// A session worker applied (and durably logged) period `seq`.  Called
  /// after the WAL append and before the period is acked to the client;
  /// may block briefly when the ship queue is full — that backpressure is
  /// what bounds replication lag.
  virtual void note_applied(std::uint32_t session, std::uint64_t seq,
                            const std::vector<Event>& events) = 0;

  /// Clamp a locally-durable high-water mark to what the follower has
  /// acked, waiting a bounded time for in-flight ships to land.  A
  /// replicating primary acks Resume with min(local, replicated) so a
  /// client never trims periods the follower lacks; non-replicating nodes
  /// return `local_high_water` unchanged.
  [[nodiscard]] virtual std::uint64_t bounded_high_water(
      std::uint32_t session, std::uint64_t local_high_water) = 0;
};

}  // namespace bbmg
