#include "serve/chaos_transport.hpp"

#include <ctime>

#include "common/error.hpp"

namespace bbmg::net {

void ChaosTransport::maybe_delay() {
  if (config_.delay_prob <= 0.0 || !rng_.next_bool(config_.delay_prob)) {
    return;
  }
  const std::uint64_t us = rng_.next_below(config_.max_delay_us + 1);
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(us / 1000000);
  ts.tv_nsec = static_cast<long>((us % 1000000) * 1000);
  (void)::nanosleep(&ts, nullptr);
}

void ChaosTransport::inject_reset() {
  poisoned_ = true;
  ++faults_;
  raise("chaos: injected connection reset");
}

void ChaosTransport::check_poisoned() const {
  if (poisoned_) raise("chaos: transport already reset");
}

std::size_t ChaosTransport::read_some(std::uint8_t* data, std::size_t size) {
  check_poisoned();
  maybe_delay();
  if (config_.reset_prob > 0.0 && rng_.next_bool(config_.reset_prob)) {
    inject_reset();
  }
  const std::size_t n = inner_.read_some(data, size);
  if (n > 1 && config_.truncate_read_prob > 0.0 &&
      rng_.next_bool(config_.truncate_read_prob)) {
    // Deliver a strict prefix, then poison: the caller sees a peer that
    // died mid-frame.  The swallowed suffix is gone, exactly like bytes
    // that were in flight when a real connection reset.
    poisoned_ = true;
    ++faults_;
    return rng_.next_below(n - 1) + 1;
  }
  return n;
}

void ChaosTransport::write(const std::uint8_t* data, std::size_t size) {
  check_poisoned();
  maybe_delay();
  if (config_.drop_write_prob > 0.0 &&
      rng_.next_bool(config_.drop_write_prob)) {
    // Swallow the write whole and report success — the asymmetric-partition
    // fault.  No poisoning: later ops still run, the peer just never hears
    // this one, and the sender only learns from the silence that follows.
    ++faults_;
    return;
  }
  if (config_.reset_prob > 0.0 && rng_.next_bool(config_.reset_prob)) {
    inject_reset();
  }
  if (size > 1 && config_.partial_write_prob > 0.0 &&
      rng_.next_bool(config_.partial_write_prob)) {
    // Fragment the logical write; a reset can land between fragments,
    // leaving a torn frame on the peer's side of the stream.
    std::size_t off = 0;
    while (off < size) {
      const std::size_t remaining = size - off;
      const std::size_t chunk =
          remaining == 1 ? 1 : rng_.next_below(remaining - 1) + 1;
      inner_.write(data + off, chunk);
      off += chunk;
      if (off < size) {
        maybe_delay();
        if (config_.reset_prob > 0.0 && rng_.next_bool(config_.reset_prob)) {
          ++faults_;
          inject_reset();
        }
      }
    }
    ++faults_;
    return;
  }
  inner_.write(data, size);
}

}  // namespace bbmg::net
