#include "lattice/matrix_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/text.hpp"

namespace bbmg {

void write_matrix(std::ostream& os, const DependencyMatrix& m,
                  const std::vector<std::string>& task_names) {
  BBMG_REQUIRE(task_names.size() == m.num_tasks(),
               "task-name count must match matrix size");
  os << "dep-matrix 1\n";
  os << "tasks";
  for (const auto& name : task_names) os << ' ' << name;
  os << '\n';
  for (std::size_t a = 0; a < m.num_tasks(); ++a) {
    for (std::size_t b = 0; b < m.num_tasks(); ++b) {
      if (b != 0) os << ' ';
      os << dep_to_string(m.at(a, b));
    }
    os << '\n';
  }
}

std::string matrix_to_string(const DependencyMatrix& m,
                             const std::vector<std::string>& task_names) {
  std::ostringstream oss;
  write_matrix(oss, m, task_names);
  return oss.str();
}

NamedMatrix read_matrix(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  auto next_meaningful = [&](std::vector<std::string>& toks) -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      const auto trimmed = trim(line);
      if (trimmed.empty() || trimmed.front() == '#') continue;
      toks = split_ws(trimmed);
      return true;
    }
    return false;
  };

  std::vector<std::string> toks;
  BBMG_REQUIRE(next_meaningful(toks) && toks.size() == 2 &&
                   toks[0] == "dep-matrix" && toks[1] == "1",
               "matrix file must start with 'dep-matrix 1'");
  BBMG_REQUIRE(next_meaningful(toks) && toks.size() >= 2 && toks[0] == "tasks",
               "expected 'tasks <name>...' header");

  NamedMatrix out;
  out.task_names.assign(toks.begin() + 1, toks.end());
  const std::size_t n = out.task_names.size();
  out.matrix = DependencyMatrix(n);

  for (std::size_t a = 0; a < n; ++a) {
    BBMG_REQUIRE(next_meaningful(toks),
                 "matrix file truncated at row " + std::to_string(a));
    BBMG_REQUIRE(toks.size() == n, "matrix row " + std::to_string(a) +
                                       " has wrong width at line " +
                                       std::to_string(line_no));
    for (std::size_t b = 0; b < n; ++b) {
      const DepValue v = dep_from_string(toks[b]);
      if (a == b) {
        BBMG_REQUIRE(v == DepValue::Parallel,
                     "diagonal entries must be || (line " +
                         std::to_string(line_no) + ")");
      } else {
        out.matrix.set(a, b, v);
      }
    }
  }
  return out;
}

NamedMatrix matrix_from_string(const std::string& text) {
  std::istringstream iss(text);
  return read_matrix(iss);
}

void save_matrix_file(const std::string& path, const DependencyMatrix& m,
                      const std::vector<std::string>& task_names) {
  std::ofstream ofs(path);
  BBMG_REQUIRE(ofs.good(), "cannot open matrix file for writing: " + path);
  write_matrix(ofs, m, task_names);
  BBMG_REQUIRE(ofs.good(), "failed writing matrix file: " + path);
}

NamedMatrix load_matrix_file(const std::string& path) {
  std::ifstream ifs(path);
  BBMG_REQUIRE(ifs.good(), "cannot open matrix file: " + path);
  return read_matrix(ifs);
}

}  // namespace bbmg
