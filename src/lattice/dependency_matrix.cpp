#include "lattice/dependency_matrix.hpp"

#include "common/error.hpp"

namespace bbmg {

DependencyMatrix::DependencyMatrix(std::size_t num_tasks)
    : n_(num_tasks), cells_(num_tasks * num_tasks, DepValue::Parallel) {}

DependencyMatrix DependencyMatrix::top(std::size_t num_tasks) {
  DependencyMatrix m(num_tasks);
  for (std::size_t a = 0; a < num_tasks; ++a) {
    for (std::size_t b = 0; b < num_tasks; ++b) {
      if (a != b) m.cells_[a * num_tasks + b] = DepValue::MaybeMutual;
    }
  }
  return m;
}

void DependencyMatrix::set(std::size_t a, std::size_t b, DepValue v) {
  BBMG_REQUIRE(a < n_ && b < n_, "task index out of range");
  BBMG_REQUIRE(a != b, "diagonal entries are fixed to ||");
  cells_[a * n_ + b] = v;
}

void DependencyMatrix::set_pair(std::size_t a, std::size_t b, DepValue v) {
  set(a, b, v);
  set(b, a, dep_mirror(v));
}

bool DependencyMatrix::leq(const DependencyMatrix& other) const {
  BBMG_REQUIRE(n_ == other.n_, "matrix size mismatch");
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (!dep_leq(cells_[i], other.cells_[i])) return false;
  }
  return true;
}

DependencyMatrix DependencyMatrix::lub(const DependencyMatrix& other) const {
  BBMG_REQUIRE(n_ == other.n_, "matrix size mismatch");
  DependencyMatrix out(n_);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out.cells_[i] = dep_lub(cells_[i], other.cells_[i]);
  }
  return out;
}

DependencyMatrix DependencyMatrix::glb(const DependencyMatrix& other) const {
  BBMG_REQUIRE(n_ == other.n_, "matrix size mismatch");
  DependencyMatrix out(n_);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out.cells_[i] = dep_glb(cells_[i], other.cells_[i]);
  }
  return out;
}

std::uint64_t DependencyMatrix::weight() const {
  std::uint64_t w = 0;
  for (DepValue v : cells_) w += dep_distance(v);
  return w;
}

std::uint64_t DependencyMatrix::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull ^ n_;
  for (DepValue v : cells_) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string DependencyMatrix::to_table(
    const std::vector<std::string>& names) const {
  auto name_of = [&](std::size_t i) -> std::string {
    if (i < names.size()) return names[i];
    return "t" + std::to_string(i);
  };

  // Compute column widths.
  std::size_t label_w = 0;
  for (std::size_t i = 0; i < n_; ++i) label_w = std::max(label_w, name_of(i).size());
  std::vector<std::size_t> col_w(n_);
  for (std::size_t b = 0; b < n_; ++b) {
    col_w[b] = name_of(b).size();
    for (std::size_t a = 0; a < n_; ++a) {
      col_w[b] = std::max(col_w[b], dep_to_string(at(a, b)).size());
    }
  }

  auto pad = [](std::string s, std::size_t w) {
    s.resize(std::max(s.size(), w), ' ');
    return s;
  };

  std::string out = pad("", label_w);
  for (std::size_t b = 0; b < n_; ++b) out += "  " + pad(name_of(b), col_w[b]);
  out += "\n";
  for (std::size_t a = 0; a < n_; ++a) {
    out += pad(name_of(a), label_w);
    for (std::size_t b = 0; b < n_; ++b) {
      out += "  " + pad(std::string(dep_to_string(at(a, b))), col_w[b]);
    }
    out += "\n";
  }
  return out;
}

std::size_t DependencyMatrix::count_value(DepValue v) const {
  std::size_t c = 0;
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = 0; b < n_; ++b) {
      if (a != b && at(a, b) == v) ++c;
    }
  }
  return c;
}

DependencyMatrix lub_all(const std::vector<DependencyMatrix>& ms) {
  BBMG_REQUIRE(!ms.empty(), "lub_all needs a non-empty set");
  DependencyMatrix acc = ms.front();
  for (std::size_t i = 1; i < ms.size(); ++i) acc = acc.lub(ms[i]);
  return acc;
}

}  // namespace bbmg
