#include "lattice/dependency_value.hpp"

#include "common/error.hpp"

namespace bbmg {

std::string_view dep_to_string(DepValue v) {
  switch (v) {
    case DepValue::Parallel:
      return "||";
    case DepValue::Forward:
      return "->";
    case DepValue::Backward:
      return "<-";
    case DepValue::Mutual:
      return "<->";
    case DepValue::MaybeForward:
      return "->?";
    case DepValue::MaybeBackward:
      return "<-?";
    case DepValue::MaybeMutual:
      return "<->?";
  }
  return "?";  // unreachable
}

DepValue dep_from_string(std::string_view s) {
  for (DepValue v : kAllDepValues) {
    if (dep_to_string(v) == s) return v;
  }
  raise("unknown dependency value token: '" + std::string(s) + "'");
}

}  // namespace bbmg
