// Text serialization of dependency matrices, so learned models can be
// stored next to the traces they came from and fed to downstream tools
// (conformance monitors, schedulability analyses) without re-learning.
//
// Format:
//
//   dep-matrix 1
//   tasks <name> <name> ...
//   <row of values for task 0>   # '||', '->', '<-', '<->', '->?', ...
//   ...
//
// The diagonal must be '||'.  Blank lines and '#' comments are ignored.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "lattice/dependency_matrix.hpp"

namespace bbmg {

void write_matrix(std::ostream& os, const DependencyMatrix& m,
                  const std::vector<std::string>& task_names);
[[nodiscard]] std::string matrix_to_string(
    const DependencyMatrix& m, const std::vector<std::string>& task_names);

struct NamedMatrix {
  DependencyMatrix matrix;
  std::vector<std::string> task_names;
};

[[nodiscard]] NamedMatrix read_matrix(std::istream& is);
[[nodiscard]] NamedMatrix matrix_from_string(const std::string& text);

void save_matrix_file(const std::string& path, const DependencyMatrix& m,
                      const std::vector<std::string>& task_names);
[[nodiscard]] NamedMatrix load_matrix_file(const std::string& path);

}  // namespace bbmg
