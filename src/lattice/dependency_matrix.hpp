// DependencyMatrix is the concrete representation of a dependency function
// d : T x T -> V (paper Definition 5) for a fixed task count.
//
// Entries are *oriented*: d(a,b) and d(b,a) are stored independently because
// the period-end weakening of the learner conditions on which of the two
// tasks executed (see paper §3.3: after period 3, d81 has d(t1,t2)=->? but
// d(t2,t1)=<-, which are not mirrors of each other).  Fresh generalizations,
// however, always write mirrored pairs.
//
// The diagonal is fixed to || (a task has no dependency on itself).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "lattice/dependency_value.hpp"

namespace bbmg {

class DependencyMatrix {
 public:
  DependencyMatrix() = default;

  /// The most specific function d_bot: everything Parallel.
  explicit DependencyMatrix(std::size_t num_tasks);

  /// The least specific function d_top: everything MaybeMutual (off the
  /// diagonal).  This is also the "fully pessimistic" baseline model.
  static DependencyMatrix top(std::size_t num_tasks);

  [[nodiscard]] std::size_t num_tasks() const { return n_; }

  [[nodiscard]] DepValue at(TaskId a, TaskId b) const {
    return at(a.index(), b.index());
  }
  [[nodiscard]] DepValue at(std::size_t a, std::size_t b) const {
    return a == b ? DepValue::Parallel : cells_[a * n_ + b];
  }

  /// Set one oriented entry.  Setting a diagonal entry is an error.
  void set(TaskId a, TaskId b, DepValue v) { set(a.index(), b.index(), v); }
  void set(std::size_t a, std::size_t b, DepValue v);

  /// Set d(a,b)=v and d(b,a)=mirror(v) in one step.
  void set_pair(std::size_t a, std::size_t b, DepValue v);

  /// Pointwise partial order: *this <= other iff every entry is <=.
  [[nodiscard]] bool leq(const DependencyMatrix& other) const;

  /// Pointwise least upper bound; both matrices must have equal size.
  [[nodiscard]] DependencyMatrix lub(const DependencyMatrix& other) const;

  /// Pointwise greatest lower bound.
  [[nodiscard]] DependencyMatrix glb(const DependencyMatrix& other) const;

  /// Sum of dep_distance over all ordered pairs (paper Definition 8).
  [[nodiscard]] std::uint64_t weight() const;

  /// FNV-ish content hash (used by the learner's dedup tables).
  [[nodiscard]] std::uint64_t hash() const;

  friend bool operator==(const DependencyMatrix& a, const DependencyMatrix& b) {
    return a.n_ == b.n_ && a.cells_ == b.cells_;
  }
  friend bool operator!=(const DependencyMatrix& a, const DependencyMatrix& b) {
    return !(a == b);
  }

  /// Render as the paper's square table, with task names as labels.
  /// `names` may be empty, in which case t0,t1,... are used.
  [[nodiscard]] std::string to_table(
      const std::vector<std::string>& names = {}) const;

  /// Count of entries equal to v (over ordered non-diagonal pairs).
  [[nodiscard]] std::size_t count_value(DepValue v) const;

 private:
  std::size_t n_{0};
  std::vector<DepValue> cells_;  // row-major n*n, diagonal kept at Parallel
};

/// LUB of a non-empty set of matrices (the paper's `dLUB` summarizer used
/// when the learner does not converge to a single hypothesis).
[[nodiscard]] DependencyMatrix lub_all(const std::vector<DependencyMatrix>& ms);

}  // namespace bbmg
