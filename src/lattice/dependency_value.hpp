// The seven-value dependency lattice V of the paper (Definition 5, Fig. 3).
//
// A dependency function d : T x T -> V assigns each *ordered* task pair a
// value describing what task t1 does, whenever it executes in a period,
// with respect to task t2:
//
//   ||   (Parallel)      t1 always executes in parallel with t2 — no
//                         dependency in either direction, ever.
//   ->   (Forward)       if t1 executes, it always determines t2's execution
//                         (a message path t1 -> t2 exists in that period).
//   <-   (Backward)      if t1 executes, it always depends on t2.
//   <->  (Mutual)        t1 and t2 always depend on each other (defined for
//                         lattice completeness; unsatisfiable in a period).
//   ->?  (MaybeForward)  if t1 executes, it may or may not determine t2.
//   <-?  (MaybeBackward) if t1 executes, it may or may not depend on t2.
//   <->? (MaybeMutual)   anything may happen (lattice top).
//
// Hasse diagram (bottom to top), distances in braces (Definition 7):
//
//            <->?                 {9}
//          /   |   .
//        ->?  <->  <-?            {4}
//        /   /   .    .
//       ->  '      '  <-          {1}
//         .           /
//             ||                  {0}
//
// Cover relations: || < ->, || < <-, -> < ->?, -> < <->, <- < <-?, <- < <->,
// ->? < <->?, <-> < <->?, <-? < <->?.
//
// Note (DESIGN.md §2): the lattice is *stipulated* by the paper as the
// generalization language, it is not derived from the matching semantics;
// the learner uses it through the minimal-generalization and
// minimal-weakening operators below.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace bbmg {

enum class DepValue : std::uint8_t {
  Parallel = 0,       // ||
  Forward = 1,        // ->
  Backward = 2,       // <-
  Mutual = 3,         // <->
  MaybeForward = 4,   // ->?
  MaybeBackward = 5,  // <-?
  MaybeMutual = 6,    // <->?
};

inline constexpr std::size_t kNumDepValues = 7;

inline constexpr std::array<DepValue, kNumDepValues> kAllDepValues = {
    DepValue::Parallel,      DepValue::Forward,       DepValue::Backward,
    DepValue::Mutual,        DepValue::MaybeForward,  DepValue::MaybeBackward,
    DepValue::MaybeMutual};

/// Square distance from the lattice bottom || (paper Definition 7):
/// {||}=0, {->,<-}=1, {->?,<->,<-?}=4, {<->?}=9.
[[nodiscard]] constexpr unsigned dep_distance(DepValue v) {
  switch (v) {
    case DepValue::Parallel:
      return 0;
    case DepValue::Forward:
    case DepValue::Backward:
      return 1;
    case DepValue::MaybeForward:
    case DepValue::Mutual:
    case DepValue::MaybeBackward:
      return 4;
    case DepValue::MaybeMutual:
      return 9;
  }
  return 0;  // unreachable
}

/// Partial order on V: a <= b iff a is more specific than (or equal to) b.
[[nodiscard]] constexpr bool dep_leq(DepValue a, DepValue b) {
  if (a == b) return true;
  switch (a) {
    case DepValue::Parallel:
      return true;  // bottom
    case DepValue::Forward:
      return b == DepValue::MaybeForward || b == DepValue::Mutual ||
             b == DepValue::MaybeMutual;
    case DepValue::Backward:
      return b == DepValue::MaybeBackward || b == DepValue::Mutual ||
             b == DepValue::MaybeMutual;
    case DepValue::Mutual:
    case DepValue::MaybeForward:
    case DepValue::MaybeBackward:
      return b == DepValue::MaybeMutual;
    case DepValue::MaybeMutual:
      return false;  // top; only <= itself (handled above)
  }
  return false;  // unreachable
}

/// Least upper bound (join) of two values.  V is a lattice, so this is
/// total and unique.
[[nodiscard]] constexpr DepValue dep_lub(DepValue a, DepValue b) {
  if (dep_leq(a, b)) return b;
  if (dep_leq(b, a)) return a;
  // Incomparable pairs: {->,<-} -> <->;  everything else joins at top.
  if ((a == DepValue::Forward && b == DepValue::Backward) ||
      (a == DepValue::Backward && b == DepValue::Forward)) {
    return DepValue::Mutual;
  }
  return DepValue::MaybeMutual;
}

/// Greatest lower bound (meet) of two values.
[[nodiscard]] constexpr DepValue dep_glb(DepValue a, DepValue b) {
  if (dep_leq(a, b)) return a;
  if (dep_leq(b, a)) return b;
  // Incomparable pairs meeting below: {->?,<->} -> ->, {<-?,<->} -> <-,
  // everything else meets at bottom.
  auto is = [](DepValue x, DepValue y, DepValue p, DepValue q) {
    return (x == p && y == q) || (x == q && y == p);
  };
  if (is(a, b, DepValue::MaybeForward, DepValue::Mutual)) return DepValue::Forward;
  if (is(a, b, DepValue::MaybeBackward, DepValue::Mutual))
    return DepValue::Backward;
  return DepValue::Parallel;
}

/// The value seen from the opposite orientation: mirror(d(t1,t2)) is what a
/// fresh assumption about the same message writes into d(t2,t1).
[[nodiscard]] constexpr DepValue dep_mirror(DepValue v) {
  switch (v) {
    case DepValue::Forward:
      return DepValue::Backward;
    case DepValue::Backward:
      return DepValue::Forward;
    case DepValue::MaybeForward:
      return DepValue::MaybeBackward;
    case DepValue::MaybeBackward:
      return DepValue::MaybeForward;
    default:
      return v;  // ||, <->, <->? are self-mirrored
  }
}

/// Does v allow t1 (the row task) to determine t2 in some period?
[[nodiscard]] constexpr bool dep_permits_forward(DepValue v) {
  return v == DepValue::Forward || v == DepValue::MaybeForward ||
         v == DepValue::Mutual || v == DepValue::MaybeMutual;
}

/// Does v allow t1 to depend on t2 in some period?
[[nodiscard]] constexpr bool dep_permits_backward(DepValue v) {
  return v == DepValue::Backward || v == DepValue::MaybeBackward ||
         v == DepValue::Mutual || v == DepValue::MaybeMutual;
}

/// Does v *require* t1, whenever it executes, to determine t2?
[[nodiscard]] constexpr bool dep_requires_forward(DepValue v) {
  return v == DepValue::Forward || v == DepValue::Mutual;
}

/// Does v *require* t1, whenever it executes, to depend on t2?
[[nodiscard]] constexpr bool dep_requires_backward(DepValue v) {
  return v == DepValue::Backward || v == DepValue::Mutual;
}

/// Minimal generalization making a forward dependency permitted:
/// the least v' >= v with dep_permits_forward(v').  (paper §3.1: "each time
/// we only generalize as much as necessary").
[[nodiscard]] constexpr DepValue dep_generalize_permit_forward(DepValue v) {
  switch (v) {
    case DepValue::Parallel:
      return DepValue::Forward;
    case DepValue::Backward:
      return DepValue::Mutual;
    case DepValue::MaybeBackward:
      return DepValue::MaybeMutual;
    default:
      return v;  // already permits
  }
}

/// Minimal generalization making a backward dependency permitted.
[[nodiscard]] constexpr DepValue dep_generalize_permit_backward(DepValue v) {
  switch (v) {
    case DepValue::Parallel:
      return DepValue::Backward;
    case DepValue::Forward:
      return DepValue::Mutual;
    case DepValue::MaybeForward:
      return DepValue::MaybeMutual;
    default:
      return v;
  }
}

/// Minimal weakening removing an unmet forward *requirement*: the least
/// v' >= v with !dep_requires_forward(v').  Used by the period-end
/// post-processing ("test conditional dependencies").
[[nodiscard]] constexpr DepValue dep_weaken_forward_requirement(DepValue v) {
  switch (v) {
    case DepValue::Forward:
      return DepValue::MaybeForward;
    case DepValue::Mutual:
      return DepValue::MaybeMutual;
    default:
      return v;
  }
}

/// Minimal weakening removing an unmet backward requirement.
[[nodiscard]] constexpr DepValue dep_weaken_backward_requirement(DepValue v) {
  switch (v) {
    case DepValue::Backward:
      return DepValue::MaybeBackward;
    case DepValue::Mutual:
      return DepValue::MaybeMutual;
    default:
      return v;
  }
}

/// ASCII rendering used in tables and the trace/report formats:
/// "||", "->", "<-", "<->", "->?", "<-?", "<->?".
[[nodiscard]] std::string_view dep_to_string(DepValue v);

/// Parse the ASCII rendering; throws bbmg::Error on unknown token.
[[nodiscard]] DepValue dep_from_string(std::string_view s);

}  // namespace bbmg
