// Process supervisor for multi-shard test/bench clusters: allocates free
// ports, writes the static cluster map file, fork/execs one bbmg_served
// per node (primaries and followers), waits for each listen banner, and
// offers the two chaos controls the failover tests need — SIGKILL one
// shard's primary, SIGTERM everything.
//
// This is test/bench infrastructure (the production deployment story is a
// map file plus N independently-launched daemons — see the README
// quickstart), but it lives in the library so the chaos-failover test,
// bench_cluster and any future soak harness share one correct
// implementation of the spawn/banner/reap dance.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_map.hpp"

namespace bbmg::cluster {

struct SupervisorConfig {
  /// Path to the bbmg_served executable (tests pass BBMG_SERVED_BIN).
  std::string served_bin;
  /// Root directory; each node gets <root>/shard<N>[-follower] as its
  /// durable --data-dir, and the map file is written to <root>/cluster.map.
  std::string root_dir;
  std::size_t shards{2};
  /// Give every shard a follower (replication + failover target).
  bool followers{true};
  std::size_t workers{2};
  std::size_t queue_capacity{64};
  /// fsync cadence for every node's WAL (1 = strictest, test default).
  std::size_t fsync_every{1};
  /// Forwarded as --idle-timeout when nonzero.
  std::uint32_t idle_timeout_ms{0};
  /// Extra argv appended to every node (e.g. {"--log-level", "warn"}).
  std::vector<std::string> extra_args;
};

class ShardSupervisor {
 public:
  explicit ShardSupervisor(SupervisorConfig config);
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Allocate ports, write <root>/cluster.map, spawn followers then
  /// primaries, and block until every node printed its listen banner.
  void start();

  [[nodiscard]] const ClusterMap& map() const { return map_; }
  [[nodiscard]] const std::string& map_path() const { return map_path_; }
  [[nodiscard]] std::string primary_dir(std::size_t shard) const;
  [[nodiscard]] std::string follower_dir(std::size_t shard) const;

  /// SIGKILL the shard's primary (the chaos move) and reap it.
  void kill_primary(std::size_t shard);
  /// SIGKILL the shard's follower and reap it.
  void kill_follower(std::size_t shard);
  /// Restart a previously-killed primary on its old port and data dir
  /// (recovery path); blocks until its banner.
  void restart_primary(std::size_t shard);
  /// SIGTERM every live node (graceful drain) and reap; returns the worst
  /// exit code seen (0 when every node drained cleanly).
  int terminate_all();

  [[nodiscard]] bool primary_alive(std::size_t shard) const;

 private:
  struct Node {
    pid_t pid{-1};
    int out_fd{-1};
    std::uint16_t port{0};
    std::size_t shard{0};
    bool follower{false};
    std::string banner;
  };

  void spawn(Node& node);
  static void wait_for_listen(Node& node);
  static void reap(Node& node, int signo, int* exit_code);
  Node& primary(std::size_t shard);
  Node& follower(std::size_t shard);

  SupervisorConfig config_;
  ClusterMap map_;
  std::string map_path_;
  std::vector<Node> nodes_;
  bool started_{false};
};

}  // namespace bbmg::cluster
