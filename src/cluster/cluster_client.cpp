#include "cluster/cluster_client.hpp"

#include "cluster/cluster_metrics.hpp"
#include "common/error.hpp"
#include "obs/log.hpp"

namespace bbmg::cluster {

ClusterClient::ClusterClient(ClusterMap map, RetryConfig retry)
    : map_(std::move(map)), retry_(retry) {
  BBMG_REQUIRE(!map_.shards.empty(), "cluster client: empty map");
  shards_.resize(map_.shards.size());
}

ClusterMap ClusterClient::fetch_map(const std::string& host,
                                    std::uint16_t port, RetryConfig retry) {
  ResilientClient client(retry);
  client.connect(host, port);
  return ClusterMap::from_wire(client.fetch_cluster_map());
}

ClusterClient::ShardClient& ClusterClient::ensure_shard(std::size_t shard) {
  BBMG_REQUIRE(shard < shards_.size(), "cluster client: shard out of range");
  ShardClient& sc = shards_[shard];
  if (!sc.client) sc.client = std::make_unique<ResilientClient>(retry_);
  if (!sc.connected) {
    const Endpoint& ep = sc.failed_over ? map_.shards[shard].follower
                                        : map_.shards[shard].primary;
    sc.client->connect(ep.host, ep.port);
    sc.connected = true;
  }
  return sc;
}

void ClusterClient::failover_to_follower(std::size_t shard,
                                         const RetriesExhausted& e) {
  ShardClient& sc = shards_[shard];
  // Only one hop exists: a follower that is also dead (or a shard that
  // never had one) is a real outage — rethrow the exhaustion.
  if (sc.failed_over || !map_.shards[shard].has_follower()) throw;
  const Endpoint& follower = map_.shards[shard].follower;
  BBMG_LOG_WARN("cluster.failover",
                "shard primary unreachable; switching to the follower",
                {{"shard", static_cast<std::uint64_t>(shard)},
                 {"follower", follower.str()},
                 {"last_error", std::string(e.what())}});
  sc.failed_over = true;
  if (sc.client) {
    // Keep the client (and with it every session's seq counters and
    // unacked buffer): set_endpoint drops the dead connection, and the
    // next request's reconnect resumes each session on the follower and
    // resends everything above the follower's durable mark.
    sc.client->set_endpoint(follower.host, follower.port);
    sc.connected = true;
  } else {
    sc.connected = false;
  }
  ClusterMetrics::get().failovers.inc();
}

template <typename Fn>
auto ClusterClient::with_failover(std::size_t shard, Fn&& fn)
    -> decltype(fn()) {
  try {
    return fn();
  } catch (const RetriesExhausted& e) {
    failover_to_follower(shard, e);
    return fn();
  }
}

ClusterSessionRef ClusterClient::open_session(
    const std::string& key, const std::vector<std::string>& task_names,
    std::uint32_t bound, SanitizePolicy policy,
    std::uint32_t snapshot_interval) {
  std::size_t shard = map_.shard_for(key);
  for (std::size_t hops = 0;; ++hops) {
    try {
      const std::uint32_t session = with_failover(shard, [&] {
        return ensure_shard(shard).client->open_cluster_session(
            key, task_names, bound, policy, snapshot_interval);
      });
      return ClusterSessionRef{shard, session};
    } catch (const Redirected& r) {
      // Stale map: the server named the owner.  Follow once; a second
      // redirect means the cluster disagrees with itself — surface it.
      BBMG_REQUIRE(hops == 0, "cluster client: redirect loop for key " + key);
      BBMG_REQUIRE(r.redirect().shard < map_.shards.size(),
                   "cluster client: redirect to an unknown shard");
      shard = r.redirect().shard;
    }
  }
}

void ClusterClient::send_period(const ClusterSessionRef& ref,
                                std::vector<Event> events) {
  // NOT with_failover(fn-retry): re-invoking send_period would assign the
  // period a *second* sequence number (it is already buffered unacked
  // under its first), and both copies would be ingested.  After the
  // failover the period is still in the unacked deque, so a flush —
  // reconnect, resume on the follower, resend, confirm durable — is the
  // correct (and idempotent) way to land it.
  try {
    ensure_shard(ref.shard).client->send_period(ref.session,
                                                std::move(events));
  } catch (const RetriesExhausted& e) {
    failover_to_follower(ref.shard, e);
    (void)ensure_shard(ref.shard).client->flush(ref.session);
  }
}

std::uint64_t ClusterClient::flush(const ClusterSessionRef& ref) {
  return with_failover(ref.shard, [&] {
    return ensure_shard(ref.shard).client->flush(ref.session);
  });
}

WireSnapshot ClusterClient::query(const ClusterSessionRef& ref, bool drain) {
  return with_failover(ref.shard, [&] {
    return ensure_shard(ref.shard).client->query(ref.session, drain);
  });
}

std::size_t ClusterClient::failovers() const {
  std::size_t n = 0;
  for (const ShardClient& sc : shards_) {
    if (sc.failed_over) ++n;
  }
  return n;
}

ResilientClient& ClusterClient::shard_client(std::size_t shard) {
  return *ensure_shard(shard).client;
}

}  // namespace bbmg::cluster
