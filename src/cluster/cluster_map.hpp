// Static cluster topology for sharded serving (DESIGN.md "Replication &
// failover"): an epoch-stamped ordered list of shards, each a primary
// endpoint plus an optional follower that receives the primary's WAL
// stream (cluster/replicator.hpp).  The map is distributed as a flat text
// file so operators can write it by hand and ship it to every shard and
// client unchanged; servers also answer it over the wire (ClusterMapRequest
// -> ClusterMapResponse) so a client can bootstrap from any live shard.
//
// Session keys route to shards by rendezvous (highest-random-weight)
// hashing: every participant scores each shard against the key and picks
// the argmax.  Unlike modulo hashing, removing one shard only moves the
// keys that lived there, and there is no token ring to persist — the map
// line order is the shard identity.  Client and server share this one
// implementation, so a disagreement is impossible by construction; a
// Redirect reply therefore always means "your map is stale", never "our
// hash functions differ".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hpp"

namespace bbmg::cluster {

/// A "host:port" pair.  Only the IPv4-literal hosts that net::connect_tcp
/// accepts are meaningful today; parse() validates shape, not resolvability.
struct Endpoint {
  std::string host;
  std::uint16_t port{0};

  [[nodiscard]] bool valid() const { return !host.empty() && port != 0; }
  [[nodiscard]] std::string str() const {
    return host + ":" + std::to_string(port);
  }
  /// Parse "host:port"; raises bbmg::Error on a missing/garbage port or
  /// an empty host.
  [[nodiscard]] static Endpoint parse(std::string_view text);

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.host == b.host && a.port == b.port;
  }
};

/// One shard: where its primary listens and (optionally) where its WAL
/// stream is replicated.  A follower is a regular bbmg_served started with
/// --follower; after the primary dies, clients reattach to it directly.
struct ClusterShard {
  Endpoint primary;
  /// Invalid (default) when the shard replicates nowhere.
  Endpoint follower;

  [[nodiscard]] bool has_follower() const { return follower.valid(); }
};

/// 64-bit FNV-1a over the key bytes — the key half of the rendezvous
/// score.  Exposed for tests that pin the routing function.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

class ClusterMap {
 public:
  /// Map generation.  Consumers replace a cached map only with a strictly
  /// higher epoch; a follower promotion ships a new file with epoch+1.
  std::uint64_t epoch{0};
  std::vector<ClusterShard> shards;

  /// Parse the text format:
  ///
  ///   # comment / blank lines ignored
  ///   epoch 3
  ///   shard 127.0.0.1:7227 127.0.0.1:7327   # primary [follower]
  ///   shard 127.0.0.1:7228
  ///
  /// Shard index is the order of `shard` lines.  Raises bbmg::Error with
  /// a 1-based line number on malformed input; an empty map (no shard
  /// lines) is also an error.
  [[nodiscard]] static ClusterMap parse(std::string_view text);
  [[nodiscard]] static ClusterMap load(const std::string& path);

  /// Inverse of parse() (canonical form: epoch first, one shard per line).
  [[nodiscard]] std::string serialize() const;
  void save(const std::string& path) const;

  /// Rendezvous-hash the key onto a shard index in [0, shards.size()).
  /// Deterministic across processes and platforms; raises on an empty map.
  [[nodiscard]] std::size_t shard_for(std::string_view key) const;

  [[nodiscard]] ClusterMapResponseMsg to_wire() const;
  /// Raises on malformed endpoints; accepts an empty follower string.
  [[nodiscard]] static ClusterMap from_wire(const ClusterMapResponseMsg& msg);
};

}  // namespace bbmg::cluster
