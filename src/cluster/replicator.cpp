#include "cluster/replicator.hpp"

#include <algorithm>
#include <chrono>

#include "cluster/cluster_metrics.hpp"
#include "common/error.hpp"
#include "durable/wal.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"

namespace bbmg::cluster {

Replicator::Replicator(SessionManager& manager, ClusterMap map,
                       std::size_t shard, bool follower_role,
                       ReplicatorConfig config)
    : manager_(manager),
      map_(std::move(map)),
      shard_(shard),
      follower_role_(follower_role),
      config_(config),
      queue_(config.queue_capacity),
      client_(config.retry) {
  BBMG_REQUIRE(shard_ < map_.shards.size(),
               "replicator: shard index beyond the cluster map");
  if (config_.ack_every == 0) config_.ack_every = 1;
  shipping_ =
      !follower_role_ && map_.shards[shard_].has_follower();
  if (shipping_) {
    follower_ = map_.shards[shard_].follower;
    client_.set_endpoint(follower_.host, follower_.port);
  }
}

Replicator::~Replicator() { stop(); }

void Replicator::start() {
  if (!shipping_ || started_) return;
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void Replicator::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  queue_.close();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(hw_mu_);
  }
  hw_cv_.notify_all();
}

std::uint64_t Replicator::replicated(std::uint32_t session) const {
  std::lock_guard<std::mutex> lock(hw_mu_);
  const auto it = replicated_.find(session);
  return it == replicated_.end() ? 0 : it->second;
}

bool Replicator::stalled(std::uint32_t session) const {
  std::lock_guard<std::mutex> lock(hw_mu_);
  return stalled_.count(session) != 0;
}

ClusterMapResponseMsg Replicator::cluster_map() const {
  return map_.to_wire();
}

std::optional<RedirectMsg> Replicator::route(const std::string& key) const {
  const std::size_t owner = map_.shard_for(key);
  // A follower answers for its shard too: after a failover, newly opened
  // keys of the dead primary's shard land here directly.
  if (owner == shard_) return std::nullopt;
  RedirectMsg redirect;
  redirect.epoch = map_.epoch;
  redirect.shard = static_cast<std::uint32_t>(owner);
  redirect.endpoint = map_.shards[owner].primary.str();
  ClusterMetrics::get().redirects.inc();
  return redirect;
}

void Replicator::note_applied(std::uint32_t session, std::uint64_t seq,
                              const std::vector<Event>& events) {
  if (!shipping_ || stopping_.load(std::memory_order_relaxed)) return;
  {
    // A stalled session ships nothing more; queueing its periods would
    // only pressure the healthy sessions' lag bound.
    std::lock_guard<std::mutex> lock(hw_mu_);
    if (stalled_.count(session) != 0) return;
  }
  // Blocking push: the lag bound.  False only when the queue closed
  // (shutdown) — the period is still locally durable, just unreplicated.
  (void)queue_.push(ShipItem{session, seq, events});
}

std::uint64_t Replicator::bounded_high_water(std::uint32_t session,
                                             std::uint64_t local_high_water) {
  if (!shipping_) return local_high_water;
  const std::uint32_t wait_ms = config_.retry.request_timeout_ms != 0
                                    ? config_.retry.request_timeout_ms
                                    : 5000;
  std::unique_lock<std::mutex> lock(hw_mu_);
  // The caller drained the session first, so every period at or below
  // local_high_water is already enqueued here; wait (bounded) for the
  // ship thread to land and ack them.  On timeout or stall, answer the
  // smaller replicated mark — the client keeps the difference buffered.
  const auto replicated_now = [&]() -> std::uint64_t {
    const auto it = replicated_.find(session);
    return it == replicated_.end() ? 0 : it->second;
  };
  (void)hw_cv_.wait_for(
      lock, std::chrono::milliseconds(wait_ms), [&] {
        return stopping_.load(std::memory_order_relaxed) ||
               stalled_.count(session) != 0 ||
               replicated_now() >= local_high_water;
      });
  return std::min(local_high_water, replicated_now());
}

void Replicator::run() {
  while (auto item = queue_.pop()) {
    handle(std::move(*item));
    // Idle-ack: the moment the stream pauses, push the replicated marks
    // forward so bounded_high_water converges without timers.
    if (queue_.size() == 0) ack_idle();
  }
}

void Replicator::handle(ShipItem item) {
  ShipState& state = states_[item.session];
  if (state.stalled) return;
  if (!state.ready) {
    setup_session(item.session, state);
    if (state.stalled) return;
  }
  if (item.seq <= state.shipped) return;  // the follower already holds it
  if (item.seq > state.shipped + 1) {
    // The follower resumed behind the live stream (fresh follower, or a
    // restart that lost its tail): heal from the primary's own WAL.
    gap_fill(item.session, state, item.seq - 1);
    if (state.stalled) return;
  }
  ClusterMetrics& metrics = ClusterMetrics::get();
  try {
    obs::Span span(&metrics.ship_latency_us, "cluster.ship");
    client_.send_period(item.session, std::move(item.events));
  } catch (const std::exception& e) {
    stall(item.session, state, e.what());
    return;
  }
  state.shipped = item.seq;
  metrics.shipped_periods.inc();
  if (++state.since_ack >= config_.ack_every) {
    ack_session(item.session, state);
  }
  update_lag_gauge();
}

void Replicator::setup_session(std::uint32_t session, ShipState& state) {
  const auto info = manager_.session_info(SessionId{session});
  if (!info.has_value()) {
    stall(session, state, "session vanished before replication setup");
    return;
  }
  try {
    const std::uint64_t high_water = client_.open_session_as(
        session, info->task_names,
        static_cast<std::uint32_t>(info->config.robust.online.bound),
        info->config.robust.sanitize.policy,
        static_cast<std::uint32_t>(info->config.snapshot_interval));
    state.shipped = high_water;
    state.ready = true;
    // Everything at or below the follower's resume mark is already
    // replicated durable — publish it so Resume clamps correctly from
    // the first ack on.
    publish_replicated(session, high_water);
  } catch (const std::exception& e) {
    stall(session, state, e.what());
  }
}

void Replicator::gap_fill(std::uint32_t session, ShipState& state,
                          std::uint64_t upto) {
  const auto info = manager_.session_info(SessionId{session});
  if (!info.has_value() || info->wal_path.empty()) {
    stall(session, state, "gap fill: no live WAL for the session");
    return;
  }
  ClusterMetrics& metrics = ClusterMetrics::get();
  try {
    // The live WAL only reaches back to its base (records below it were
    // compacted into a snapshot); a gap below the base is unfillable.
    const durable::WalHeader header = durable::read_wal_header(info->wal_path);
    if (header.base_seq > state.shipped) {
      stall(session, state,
            "gap fill: follower behind the WAL base (seq " +
                std::to_string(state.shipped + 1) + " < base " +
                std::to_string(header.base_seq + 1) + "; rotated away)");
      return;
    }
    (void)durable::scan_wal_file(
        info->wal_path, [&](durable::WalRecord&& rec) {
          if (rec.seq <= state.shipped || rec.seq > upto) return;
          // Records stream in contiguous order, so rec.seq is exactly
          // state.shipped + 1 here — the follower seq invariant holds.
          client_.send_period(session, std::move(rec.events));
          state.shipped = rec.seq;
          metrics.gap_fill_periods.inc();
          metrics.shipped_periods.inc();
        });
  } catch (const std::exception& e) {
    stall(session, state, std::string("gap fill: ") + e.what());
    return;
  }
  if (state.shipped < upto) {
    // A concurrent rotation (or torn tail) cut the scan short.
    stall(session, state,
          "gap fill: WAL ended at seq " + std::to_string(state.shipped) +
              " before covering the gap to " + std::to_string(upto));
  }
}

void Replicator::ack_session(std::uint32_t session, ShipState& state) {
  ClusterMetrics& metrics = ClusterMetrics::get();
  try {
    obs::Span span(&metrics.ack_latency_us, "cluster.ack");
    const std::uint64_t high_water = client_.flush(session);
    state.since_ack = 0;
    metrics.ack_rounds.inc();
    publish_replicated(session, high_water);
  } catch (const std::exception& e) {
    stall(session, state, std::string("ack: ") + e.what());
  }
}

void Replicator::ack_idle() {
  for (auto& [session, state] : states_) {
    if (state.ready && !state.stalled && state.since_ack > 0) {
      ack_session(session, state);
    }
  }
  update_lag_gauge();
}

void Replicator::stall(std::uint32_t session, ShipState& state,
                       const std::string& why) {
  state.stalled = true;
  ClusterMetrics& metrics = ClusterMetrics::get();
  metrics.ship_errors.inc();
  metrics.stalled_sessions.inc();
  BBMG_LOG_ERROR("cluster.replication_stalled", why, {{"session", session}});
  {
    std::lock_guard<std::mutex> lock(hw_mu_);
    stalled_.insert(session);
  }
  // Wake Resume waiters: the mark will not advance; min() keeps them safe.
  hw_cv_.notify_all();
}

void Replicator::publish_replicated(std::uint32_t session,
                                    std::uint64_t high_water) {
  {
    std::lock_guard<std::mutex> lock(hw_mu_);
    std::uint64_t& mark = replicated_[session];
    mark = std::max(mark, high_water);
    high_water = mark;
  }
  hw_cv_.notify_all();
  ClusterMetrics::replicated_high_water(session).set(
      static_cast<std::int64_t>(high_water));
}

void Replicator::update_lag_gauge() {
  // states_ is ship-thread-local; only the replicated marks need the lock.
  std::uint64_t shipped_unacked = 0;
  {
    std::lock_guard<std::mutex> lock(hw_mu_);
    for (const auto& [session, state] : states_) {
      const auto it = replicated_.find(session);
      const std::uint64_t acked = it == replicated_.end() ? 0 : it->second;
      if (state.shipped > acked) shipped_unacked += state.shipped - acked;
    }
  }
  ClusterMetrics::get().replication_lag.set(
      static_cast<std::int64_t>(shipped_unacked + queue_.size()));
}

}  // namespace bbmg::cluster
