#include "cluster/supervisor.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/error.hpp"
#include "serve/net.hpp"

namespace bbmg::cluster {

namespace fs = std::filesystem;

namespace {

/// Bind an ephemeral port, remember it, release it.  The tiny window
/// before the child re-binds is an accepted test-harness race; kernels
/// hand out ephemeral ports round-robin, so collisions are rare.
std::uint16_t free_port() {
  const net::Listener listener = net::listen_tcp(0, 1);
  const std::uint16_t port = listener.port;
  net::close_socket(listener.fd);
  return port;
}

}  // namespace

ShardSupervisor::ShardSupervisor(SupervisorConfig config)
    : config_(std::move(config)) {
  BBMG_REQUIRE(!config_.served_bin.empty(),
               "supervisor: served_bin is required");
  BBMG_REQUIRE(!config_.root_dir.empty(), "supervisor: root_dir is required");
  BBMG_REQUIRE(config_.shards > 0, "supervisor: at least one shard");
}

ShardSupervisor::~ShardSupervisor() {
  for (Node& node : nodes_) {
    if (node.pid > 0) reap(node, SIGKILL, nullptr);
    if (node.out_fd >= 0) ::close(node.out_fd);
    node.out_fd = -1;
  }
}

std::string ShardSupervisor::primary_dir(std::size_t shard) const {
  return config_.root_dir + "/shard" + std::to_string(shard);
}

std::string ShardSupervisor::follower_dir(std::size_t shard) const {
  return config_.root_dir + "/shard" + std::to_string(shard) + "-follower";
}

void ShardSupervisor::start() {
  BBMG_REQUIRE(!started_, "supervisor: already started");
  started_ = true;
  fs::create_directories(config_.root_dir);

  map_.epoch = 1;
  map_.shards.resize(config_.shards);
  nodes_.clear();
  for (std::size_t s = 0; s < config_.shards; ++s) {
    map_.shards[s].primary = Endpoint{"127.0.0.1", free_port()};
    Node primary_node;
    primary_node.shard = s;
    primary_node.port = map_.shards[s].primary.port;
    nodes_.push_back(primary_node);
    if (config_.followers) {
      map_.shards[s].follower = Endpoint{"127.0.0.1", free_port()};
      Node follower_node;
      follower_node.shard = s;
      follower_node.follower = true;
      follower_node.port = map_.shards[s].follower.port;
      nodes_.push_back(follower_node);
    }
  }
  map_path_ = config_.root_dir + "/cluster.map";
  map_.save(map_path_);

  // Followers first: a primary's replicator starts shipping as soon as
  // sessions open, and a listening follower avoids burning its retry
  // budget on startup races.
  for (Node& node : nodes_) {
    if (node.follower) spawn(node);
  }
  for (Node& node : nodes_) {
    if (!node.follower) spawn(node);
  }
}

void ShardSupervisor::spawn(Node& node) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) raise("supervisor: pipe failed");
  const pid_t pid = ::fork();
  if (pid < 0) raise("supervisor: fork failed");
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    const std::string data_dir =
        node.follower ? follower_dir(node.shard) : primary_dir(node.shard);
    std::vector<std::string> args{config_.served_bin,
                                  std::to_string(node.port),
                                  std::to_string(config_.workers),
                                  std::to_string(config_.queue_capacity),
                                  "--data-dir",
                                  data_dir,
                                  "--fsync-every",
                                  std::to_string(config_.fsync_every),
                                  "--cluster-map",
                                  map_path_,
                                  "--shard",
                                  std::to_string(node.shard)};
    if (node.follower) args.push_back("--follower");
    if (config_.idle_timeout_ms != 0) {
      args.push_back("--idle-timeout");
      args.push_back(std::to_string(config_.idle_timeout_ms));
    }
    args.insert(args.end(), config_.extra_args.begin(),
                config_.extra_args.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(config_.served_bin.c_str(), argv.data());
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  node.pid = pid;
  node.out_fd = pipe_fds[0];
  wait_for_listen(node);
}

void ShardSupervisor::wait_for_listen(Node& node) {
  const std::string needle = "listening on 127.0.0.1:";
  char buf[512];
  while (node.banner.find(needle) == std::string::npos) {
    const ssize_t n = ::read(node.out_fd, buf, sizeof buf);
    if (n <= 0) {
      raise("supervisor: shard " + std::to_string(node.shard) +
            (node.follower ? " follower" : " primary") +
            " exited before listening; output so far:\n" + node.banner);
    }
    node.banner.append(buf, static_cast<std::size_t>(n));
  }
}

void ShardSupervisor::reap(Node& node, int signo, int* exit_code) {
  if (node.pid <= 0) return;
  ::kill(node.pid, signo);
  int status = 0;
  ::waitpid(node.pid, &status, 0);
  node.pid = -1;
  if (exit_code != nullptr) {
    *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
  }
  if (node.out_fd >= 0) {
    // Drain leftover stdout so diagnostics survive in the banner.
    ssize_t n;
    char buf[512];
    while ((n = ::read(node.out_fd, buf, sizeof buf)) > 0) {
      node.banner.append(buf, static_cast<std::size_t>(n));
    }
    ::close(node.out_fd);
    node.out_fd = -1;
  }
}

ShardSupervisor::Node& ShardSupervisor::primary(std::size_t shard) {
  for (Node& node : nodes_) {
    if (node.shard == shard && !node.follower) return node;
  }
  raise("supervisor: no such shard " + std::to_string(shard));
}

ShardSupervisor::Node& ShardSupervisor::follower(std::size_t shard) {
  for (Node& node : nodes_) {
    if (node.shard == shard && node.follower) return node;
  }
  raise("supervisor: shard " + std::to_string(shard) + " has no follower");
}

void ShardSupervisor::kill_primary(std::size_t shard) {
  reap(primary(shard), SIGKILL, nullptr);
}

void ShardSupervisor::kill_follower(std::size_t shard) {
  reap(follower(shard), SIGKILL, nullptr);
}

void ShardSupervisor::restart_primary(std::size_t shard) {
  Node& node = primary(shard);
  BBMG_REQUIRE(node.pid <= 0, "supervisor: primary still running");
  node.banner.clear();
  spawn(node);
}

int ShardSupervisor::terminate_all() {
  int worst = 0;
  // Primaries first so their replicators stop shipping before the
  // followers go away (quiet logs; either order is correct).
  for (Node& node : nodes_) {
    if (!node.follower && node.pid > 0) {
      int code = 0;
      reap(node, SIGTERM, &code);
      if (code != 0 && worst == 0) worst = code;
    }
  }
  for (Node& node : nodes_) {
    if (node.follower && node.pid > 0) {
      int code = 0;
      reap(node, SIGTERM, &code);
      if (code != 0 && worst == 0) worst = code;
    }
  }
  return worst;
}

bool ShardSupervisor::primary_alive(std::size_t shard) const {
  for (const Node& node : nodes_) {
    if (node.shard == shard && !node.follower) return node.pid > 0;
  }
  return false;
}

}  // namespace bbmg::cluster
