// Process-wide cluster/replication metrics (DESIGN.md "Replication &
// failover"): WAL-shipping throughput and errors, ack rounds and the
// replicated high-water marks the acks advance, gap fills and stalls, and
// the client-side failover/redirect counters.  Resolved once behind a
// function-local static like core/learner_metrics.hpp; the per-session
// high-water gauges are registered lazily because session ids are runtime
// data.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace bbmg::cluster {

struct ClusterMetrics {
  /// Periods shipped to the follower (live stream + gap fill).
  obs::Counter& shipped_periods;
  /// Of those, periods re-read from the primary's WAL to close a hole
  /// between the follower's resume point and the live stream.
  obs::Counter& gap_fill_periods;
  /// Ship/setup attempts that failed terminally (after the resilient
  /// client's own retries) and stalled the session's replication.
  obs::Counter& ship_errors;
  /// Sessions whose replication is stalled (gap not coverable from the
  /// live WAL, or the follower unreachable past the retry budget).
  obs::Counter& stalled_sessions;
  /// Ack round-trips (follower flush) that advanced a replicated
  /// high-water mark.
  obs::Counter& ack_rounds;
  /// Client-side: shard clients switched from a dead primary to its
  /// follower.
  obs::Counter& failovers;
  /// Client-side: opens re-routed after a Redirect reply (stale map).
  obs::Counter& redirects;
  /// Periods applied locally but not yet acked by the follower, summed
  /// over sessions (ship queue + in flight).  Bounded by the replicator's
  /// queue capacity plus ack_every per session.
  obs::Gauge& replication_lag;
  /// Wall time to ship one period to the follower (write only; acks are
  /// batched and timed separately).
  obs::Histogram& ship_latency_us;
  /// Wall time of one ack round (follower resume round-trip).
  obs::Histogram& ack_latency_us;

  /// Follower-acked durable high-water mark of one session:
  /// bbmg_cluster_replicated_high_water{session="N"}.  Failover serves
  /// reads/acks at or below this mark — the no-silent-divergence bound.
  static obs::Gauge& replicated_high_water(std::uint32_t session) {
    return obs::MetricsRegistry::instance().gauge(
        obs::labeled_name("bbmg_cluster_replicated_high_water", "session",
                          std::to_string(session)));
  }

  static ClusterMetrics& get() {
    static ClusterMetrics m = make();
    return m;
  }

 private:
  static ClusterMetrics make() {
    auto& r = obs::MetricsRegistry::instance();
    return ClusterMetrics{
        r.counter("bbmg_cluster_shipped_periods_total"),
        r.counter("bbmg_cluster_gap_fill_periods_total"),
        r.counter("bbmg_cluster_ship_errors_total"),
        r.counter("bbmg_cluster_stalled_sessions_total"),
        r.counter("bbmg_cluster_ack_rounds_total"),
        r.counter("bbmg_cluster_failovers_total"),
        r.counter("bbmg_cluster_redirects_total"),
        r.gauge("bbmg_cluster_replication_lag_periods"),
        r.histogram("bbmg_cluster_ship_latency_us",
                    obs::default_latency_buckets_us()),
        r.histogram("bbmg_cluster_ack_latency_us",
                    obs::default_latency_buckets_us()),
    };
  }
};

}  // namespace bbmg::cluster
