#include "cluster/cluster_map.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace bbmg::cluster {

namespace {

/// Split a line into whitespace-separated tokens.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

[[noreturn]] void bad_line(std::size_t line_no, const std::string& what) {
  raise("cluster map: line " + std::to_string(line_no) + ": " + what);
}

}  // namespace

Endpoint Endpoint::parse(std::string_view text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == text.size()) {
    raise("cluster map: endpoint must be host:port, got \"" +
          std::string(text) + "\"");
  }
  const std::string port_text(text.substr(colon + 1));
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    raise("cluster map: invalid port in \"" + std::string(text) + "\"");
  }
  Endpoint ep;
  ep.host = std::string(text.substr(0, colon));
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

ClusterMap ClusterMap::parse(std::string_view text) {
  ClusterMap map;
  bool saw_epoch = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "epoch") {
      if (saw_epoch) bad_line(line_no, "duplicate epoch");
      if (tokens.size() != 2) bad_line(line_no, "expected: epoch <n>");
      char* end = nullptr;
      map.epoch = std::strtoull(tokens[1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        bad_line(line_no, "epoch is not a number: \"" + tokens[1] + "\"");
      }
      saw_epoch = true;
    } else if (tokens[0] == "shard") {
      if (tokens.size() < 2 || tokens.size() > 3) {
        bad_line(line_no, "expected: shard <primary> [follower]");
      }
      ClusterShard shard;
      try {
        shard.primary = Endpoint::parse(tokens[1]);
        if (tokens.size() == 3) shard.follower = Endpoint::parse(tokens[2]);
      } catch (const Error& e) {
        bad_line(line_no, e.what());
      }
      map.shards.push_back(std::move(shard));
    } else {
      bad_line(line_no, "unknown directive \"" + tokens[0] + "\"");
    }
  }
  BBMG_REQUIRE(!map.shards.empty(), "cluster map: no shard lines");
  BBMG_REQUIRE(map.shards.size() <= kMaxWireShards,
               "cluster map: too many shards");
  return map;
}

ClusterMap ClusterMap::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) raise("cluster map: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::string ClusterMap::serialize() const {
  std::ostringstream out;
  out << "epoch " << epoch << "\n";
  for (const ClusterShard& shard : shards) {
    out << "shard " << shard.primary.str();
    if (shard.has_follower()) out << " " << shard.follower.str();
    out << "\n";
  }
  return out.str();
}

void ClusterMap::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) raise("cluster map: cannot write " + path);
  out << serialize();
  out.flush();
  if (!out) raise("cluster map: write failed for " + path);
}

std::size_t ClusterMap::shard_for(std::string_view key) const {
  BBMG_REQUIRE(!shards.empty(), "cluster map: shard_for on an empty map");
  const std::uint64_t key_hash = fnv1a64(key);
  std::size_t best = 0;
  std::uint64_t best_score = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    // Rendezvous score: mix the key hash with the shard index through
    // splitmix64.  The shard's identity is its map position, so the score
    // (and thus routing) is a pure function of (key, index, shard count).
    std::uint64_t state = key_hash ^ ((i + 1) * 0x9e3779b97f4a7c15ull);
    const std::uint64_t score = splitmix64(state);
    if (i == 0 || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

ClusterMapResponseMsg ClusterMap::to_wire() const {
  ClusterMapResponseMsg msg;
  msg.epoch = epoch;
  msg.shards.reserve(shards.size());
  for (const ClusterShard& shard : shards) {
    WireShard wire;
    wire.primary = shard.primary.str();
    if (shard.has_follower()) wire.follower = shard.follower.str();
    msg.shards.push_back(std::move(wire));
  }
  return msg;
}

ClusterMap ClusterMap::from_wire(const ClusterMapResponseMsg& msg) {
  ClusterMap map;
  map.epoch = msg.epoch;
  map.shards.reserve(msg.shards.size());
  for (const WireShard& wire : msg.shards) {
    ClusterShard shard;
    shard.primary = Endpoint::parse(wire.primary);
    if (!wire.follower.empty()) shard.follower = Endpoint::parse(wire.follower);
    map.shards.push_back(std::move(shard));
  }
  BBMG_REQUIRE(!map.shards.empty(), "cluster map: empty wire map");
  return map;
}

}  // namespace bbmg::cluster
