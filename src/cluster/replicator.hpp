// WAL replication: ship every locally-durable period of every session to
// this shard's designated follower, and track the replicated high-water
// marks its acks advance.
//
// Design (DESIGN.md "Replication & failover"):
//
//   * The follower is a regular bbmg_served started with --follower: the
//     primary mirrors each session onto it under the same session id
//     (OpenSessionAs) and streams the periods as ordinary sequenced
//     sends.  The follower's own WAL, dedup and Resume machinery then
//     provide replicated durability and client reattach for free, and a
//     promoted follower is just ... a server.
//
//   * Shipping is asynchronous but BOUNDED: note_applied (called by the
//     session worker right after the local WAL append) pushes into a
//     bounded queue and blocks when it is full, so replication lag can
//     never exceed queue_capacity + the in-flight window, and the
//     backpressure propagates to producers through the ingest path.
//
//   * Acks are batched: every ack_every ships per session — and whenever
//     the queue idles, so marks converge at stream pauses without timers
//     — the ship thread runs a follower flush() round-trip and publishes
//     the returned durable high-water mark.  bounded_high_water (the
//     Resume handler) waits on that publication and answers
//     min(local, replicated): a client never trims periods the follower
//     lacks, so even a replication stall is safe — after a failover the
//     client resends the gap from its unacked buffer.  No silent
//     divergence, by construction.
//
//   * A follower that is *behind* a fresh ship stream (its durable mark
//     below the first live period, e.g. after the follower restarted) is
//     healed by gap fill: the missing range is re-read from the
//     primary's live WAL (durable::scan_wal_file) and shipped in order.
//     A gap the WAL no longer covers (rotated into a snapshot) stalls
//     that session's replication loudly (metric + log) — the min() ack
//     rule keeps stalls safe, just not replicated.
//
// The Replicator is also the shard's ClusterHooks implementation for
// routing and map serving, so a non-replicating cluster node (a follower,
// or a shard with no follower) still answers ClusterMapRequest and
// routes OpenClusterSession keys.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster_map.hpp"
#include "serve/cluster_hooks.hpp"
#include "serve/queue.hpp"
#include "serve/resilient_client.hpp"
#include "serve/session_manager.hpp"

namespace bbmg::cluster {

struct ReplicatorConfig {
  /// Bounded ship queue, in periods.  A full queue blocks note_applied —
  /// the lag bound.
  std::size_t queue_capacity{1024};
  /// Ack (follower flush round-trip) every N shipped periods per session;
  /// an ack round also runs whenever the ship queue idles.
  std::size_t ack_every{32};
  /// Retry policy for follower requests.  request_timeout_ms doubles as
  /// the bound on how long bounded_high_water waits for in-flight ships.
  RetryConfig retry;
};

class Replicator final : public ClusterHooks {
 public:
  /// `shard` is this node's index in `map`; `follower_role` marks the
  /// node as the shard's follower (it then never ships — it *is* the
  /// replica).  Shipping engages iff the node is a primary whose map
  /// entry names a follower.
  Replicator(SessionManager& manager, ClusterMap map, std::size_t shard,
             bool follower_role, ReplicatorConfig config = {});
  ~Replicator() override;

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Spawn the ship thread (no-op when shipping is disabled).  Call
  /// before the server starts accepting.
  void start();
  /// Drain nothing, stop everything: close the queue, join the thread,
  /// wake bounded_high_water waiters.  Idempotent; also run by ~.
  void stop();

  [[nodiscard]] bool shipping() const { return shipping_; }
  [[nodiscard]] const ClusterMap& map() const { return map_; }
  /// Last follower-acked durable seq of one session (0 = none yet).
  [[nodiscard]] std::uint64_t replicated(std::uint32_t session) const;
  /// True when the session's replication stalled (unfillable gap or a
  /// follower outage past the retry budget).
  [[nodiscard]] bool stalled(std::uint32_t session) const;

  // -- ClusterHooks ----------------------------------------------------------

  [[nodiscard]] ClusterMapResponseMsg cluster_map() const override;
  [[nodiscard]] std::optional<RedirectMsg> route(
      const std::string& key) const override;
  void note_applied(std::uint32_t session, std::uint64_t seq,
                    const std::vector<Event>& events) override;
  [[nodiscard]] std::uint64_t bounded_high_water(
      std::uint32_t session, std::uint64_t local_high_water) override;

 private:
  struct ShipItem {
    std::uint32_t session{0};
    std::uint64_t seq{0};
    std::vector<Event> events;
  };
  /// Ship-thread-local per-session state.
  struct ShipState {
    bool ready{false};
    bool stalled{false};
    /// Last seq handed to the follower client (== the follower's durable
    /// mark at setup; the stream must continue at shipped + 1).
    std::uint64_t shipped{0};
    std::size_t since_ack{0};
  };

  void run();
  void handle(ShipItem item);
  /// Mirror the session onto the follower (OpenSessionAs + resume);
  /// seeds `shipped` with the follower's durable mark.
  void setup_session(std::uint32_t session, ShipState& state);
  /// Re-ship [state.shipped+1, upto] from the session's live WAL.
  void gap_fill(std::uint32_t session, ShipState& state, std::uint64_t upto);
  void ack_session(std::uint32_t session, ShipState& state);
  void ack_idle();
  void stall(std::uint32_t session, ShipState& state, const std::string& why);
  void publish_replicated(std::uint32_t session, std::uint64_t high_water);
  void update_lag_gauge();

  SessionManager& manager_;
  const ClusterMap map_;
  const std::size_t shard_;
  const bool follower_role_;
  ReplicatorConfig config_;
  bool shipping_{false};
  Endpoint follower_;

  BoundedMpscQueue<ShipItem> queue_;
  std::thread thread_;
  bool started_{false};
  std::atomic<bool> stopping_{false};

  /// Ship-thread only.
  ResilientClient client_;
  std::unordered_map<std::uint32_t, ShipState> states_;

  /// Shared with bounded_high_water / metrics readers.
  mutable std::mutex hw_mu_;
  std::condition_variable hw_cv_;
  std::unordered_map<std::uint32_t, std::uint64_t> replicated_;
  std::unordered_set<std::uint32_t> stalled_;
};

}  // namespace bbmg::cluster
