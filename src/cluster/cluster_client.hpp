// Client side of sharded serving: routes session keys to shards with the
// shared rendezvous hash, follows Redirect answers (stale map), and fails
// over from a dead primary to its follower.
//
// Each shard gets its own lazily-connected ResilientClient, so all the
// exactly-once machinery (sequence numbers, unacked buffers, resume-and-
// resend reconnects) carries over unchanged.  Failover is the one new
// move: when a shard's primary burns through the whole retry budget
// (typed RetriesExhausted), the shard client's endpoint is re-pointed at
// the follower and the pending operation retried once — the reconnect
// path then resumes each session on the follower and resends everything
// above the follower's durable mark from the unacked buffer.  Because a
// replicating primary only ever acked min(local, replicated), that buffer
// is guaranteed to cover the replication gap: the failed-over stream is
// byte-identical to the uninterrupted one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_map.hpp"
#include "serve/resilient_client.hpp"

namespace bbmg::cluster {

/// A cluster session handle: which shard owns it and its id there.
struct ClusterSessionRef {
  std::size_t shard{0};
  std::uint32_t session{0};
};

class ClusterClient {
 public:
  explicit ClusterClient(ClusterMap map, RetryConfig retry = {});

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  /// Bootstrap a map from any live shard endpoint.
  [[nodiscard]] static ClusterMap fetch_map(const std::string& host,
                                            std::uint16_t port,
                                            RetryConfig retry = {});

  /// Open a session for `key` on its owning shard, following at most one
  /// Redirect (stale local map — the redirect also counts in
  /// bbmg_cluster_redirects_total).
  [[nodiscard]] ClusterSessionRef open_session(
      const std::string& key, const std::vector<std::string>& task_names,
      std::uint32_t bound = 16, SanitizePolicy policy = SanitizePolicy::Repair,
      std::uint32_t snapshot_interval = 1);

  void send_period(const ClusterSessionRef& ref, std::vector<Event> events);
  /// Durable (and, on a replicating primary, replicated) high-water mark.
  std::uint64_t flush(const ClusterSessionRef& ref);
  [[nodiscard]] WireSnapshot query(const ClusterSessionRef& ref,
                                   bool drain = true);

  [[nodiscard]] std::size_t shard_for(const std::string& key) const {
    return map_.shard_for(key);
  }
  [[nodiscard]] const ClusterMap& map() const { return map_; }
  /// Shards this client has failed over to the follower of.
  [[nodiscard]] std::size_t failovers() const;
  /// Direct access to one shard's underlying client (tests).
  [[nodiscard]] ResilientClient& shard_client(std::size_t shard);

 private:
  struct ShardClient {
    std::unique_ptr<ResilientClient> client;
    bool connected{false};
    bool failed_over{false};
  };

  /// Run `fn` against the shard, failing over to the follower on a typed
  /// RetriesExhausted (once; a second exhaustion propagates).
  template <typename Fn>
  auto with_failover(std::size_t shard, Fn&& fn) -> decltype(fn());
  /// Re-point the shard at its follower, or rethrow `e` when there is
  /// nowhere left to go.  Only callable from a catch block.
  void failover_to_follower(std::size_t shard, const RetriesExhausted& e);
  ShardClient& ensure_shard(std::size_t shard);

  ClusterMap map_;
  RetryConfig retry_;
  std::vector<ShardClient> shards_;
};

}  // namespace bbmg::cluster
