#include "obs/log.hpp"

#include <chrono>
#include <cstdio>

#include "obs/flight_recorder.hpp"

namespace bbmg::obs {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
  }
  return "info";
}

namespace {

std::uint64_t wall_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_hex(std::string& out, std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  out += buf;
}

}  // namespace

bool LogSite::admit(std::uint64_t now_ns, std::uint32_t max_per_sec,
                    std::uint64_t& suppressed) {
  suppressed = 0;
  if (max_per_sec == 0) return true;
  constexpr std::uint64_t kWindowNs = 1'000'000'000ull;
  std::uint64_t start = window_start_ns_.load(std::memory_order_relaxed);
  if (now_ns - start >= kWindowNs) {
    // New window: the first thread to move the stamp resets the counter and
    // claims the accumulated suppression count for its line.
    if (window_start_ns_.compare_exchange_strong(start, now_ns,
                                                std::memory_order_relaxed)) {
      in_window_.store(1, std::memory_order_relaxed);
      suppressed = suppressed_.exchange(0, std::memory_order_relaxed);
      return true;
    }
  }
  if (in_window_.fetch_add(1, std::memory_order_relaxed) + 1 <= max_per_sec) {
    return true;
  }
  suppressed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

std::string render_log_line(LogLevel level, std::string_view event,
                            const TraceContext& ctx, std::string_view msg,
                            std::initializer_list<LogKV> fields,
                            std::uint64_t suppressed) {
  std::string line;
  line.reserve(128 + msg.size());
  line += "{\"ts_ms\":";
  line += std::to_string(wall_ms());
  line += ",\"level\":\"";
  line += log_level_name(level);
  line += "\",\"event\":\"";
  append_escaped(line, event);
  line += "\",\"msg\":\"";
  append_escaped(line, msg);
  line += '"';
  if (ctx.active()) {
    line += ",\"trace\":\"";
    append_hex(line, ctx.trace_id);
    line += "\",\"span\":\"";
    append_hex(line, ctx.span_id);
    line += '"';
  }
  if (suppressed != 0) {
    line += ",\"suppressed\":";
    line += std::to_string(suppressed);
  }
  for (const LogKV& kv : fields) {
    line += ",\"";
    append_escaped(line, kv.key);
    line += "\":";
    if (kv.raw) {
      line += kv.value;
    } else {
      line += '"';
      append_escaped(line, kv.value);
      line += '"';
    }
  }
  line += "}\n";
  return line;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogSite& site, const TraceContext& ctx, std::string_view msg,
                 std::initializer_list<LogKV> fields) {
  if (static_cast<std::uint8_t>(site.level()) <
      min_level_.load(std::memory_order_relaxed)) {
    return;
  }
  std::uint64_t suppressed = 0;
  if (!site.admit(mono_ns(), rate_limit_.load(std::memory_order_relaxed),
                  suppressed)) {
    total_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::string line =
      render_log_line(site.level(), site.event(), ctx, msg, fields, suppressed);
  emitted_.fetch_add(1, std::memory_order_relaxed);
  // The flight recorder keeps the tail of the log for postmortems even when
  // the sink is silenced or lost in a crash.
  FlightRecorder::instance().note(
      std::string_view(line.data(),
                       line.size() - 1 /* recorder adds its own newline */));
  if (std::FILE* sink = sink_.load()) {
    std::fwrite(line.data(), 1, line.size(), sink);
    std::fflush(sink);
  }
}

}  // namespace bbmg::obs
