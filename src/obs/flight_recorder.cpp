#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"

namespace bbmg::obs {

namespace {

// Signal-handler state: everything the handler touches must be plain
// static storage fixed before the signal can arrive.
char g_dump_dir[512] = {0};
std::atomic<bool> g_armed{false};
std::atomic<int> g_in_handler{0};

/// Async-signal-safe unsigned-to-decimal; returns chars written.
std::size_t format_u64(char* buf, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

void write_all_fd(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void write_str(int fd, const char* s) { write_all_fd(fd, s, std::strlen(s)); }

extern "C" void fatal_signal_handler(int signo) {
  // A crash inside the handler (or a second signal) must not recurse.
  if (g_in_handler.fetch_add(1, std::memory_order_relaxed) == 0 &&
      g_dump_dir[0] != '\0') {
    char path[600];
    std::size_t len = std::strlen(g_dump_dir);
    std::memcpy(path, g_dump_dir, len);
    std::memcpy(path + len, "/crash-", 7);
    len += 7;
    len += format_u64(path + len, static_cast<std::uint64_t>(signo));
    std::memcpy(path + len, ".log", 5);  // includes NUL
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      FlightRecorder::instance().dump_to_fd(fd, signo);
      ::close(fd);
    }
  }
  // Restore the default disposition and re-raise so the process still dies
  // with the right status (and dumps core where configured).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::note(std::string_view line) {
  const std::uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  Entry& e = ring_[idx % kEntries];
  // seq odd = slot being written; seq == idx*2+2 = entry for `idx` complete.
  e.seq.store(idx * 2 + 1, std::memory_order_release);
  const std::size_t n =
      line.size() < kEntryBytes ? line.size() : kEntryBytes;
  std::memcpy(e.text, line.data(), n);
  e.len = static_cast<std::uint16_t>(n);
  e.seq.store(idx * 2 + 2, std::memory_order_release);
}

void FlightRecorder::cache_metrics() {
  const std::string text = to_prometheus(MetricsRegistry::instance().snapshot());
  metrics_gen_.fetch_add(1, std::memory_order_acq_rel);  // -> odd: writing
  const std::size_t n =
      text.size() < kMetricsBytes ? text.size() : kMetricsBytes;
  std::memcpy(metrics_, text.data(), n);
  metrics_len_.store(static_cast<std::uint32_t>(n), std::memory_order_relaxed);
  metrics_gen_.fetch_add(1, std::memory_order_acq_rel);  // -> even: stable
}

void FlightRecorder::arm_signal_handler(const std::string& dir) {
  // Arming runs in normal (pre-crash) code, so the whole path can be
  // created here; the handler itself only open()s inside it.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  const std::size_t n =
      dir.size() < sizeof(g_dump_dir) - 1 ? dir.size() : sizeof(g_dump_dir) - 1;
  std::memcpy(g_dump_dir, dir.data(), n);
  g_dump_dir[n] = '\0';
  if (!g_armed.exchange(true)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = fatal_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    for (const int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
      ::sigaction(signo, &sa, nullptr);
    }
  }
}

void FlightRecorder::dump_to_fd(int fd, int signo) const {
  char num[24];
  write_str(fd, "=== bbmg flight recorder dump ===\nsignal: ");
  write_all_fd(fd, num, format_u64(num, static_cast<std::uint64_t>(signo)));
  write_str(fd, "\nevents_total: ");
  const std::uint64_t cur = cursor_.load(std::memory_order_acquire);
  write_all_fd(fd, num, format_u64(num, cur));
  write_str(fd, "\n--- recent events (oldest first) ---\n");
  const std::uint64_t begin = cur > kEntries ? cur - kEntries : 0;
  for (std::uint64_t i = begin; i < cur; ++i) {
    const Entry& e = ring_[i % kEntries];
    if (e.seq.load(std::memory_order_acquire) != i * 2 + 2) continue;
    write_all_fd(fd, e.text, e.len);
    write_str(fd, "\n");
  }
  write_str(fd, "--- metrics snapshot (cached) ---\n");
  const std::uint64_t gen = metrics_gen_.load(std::memory_order_acquire);
  if (gen != 0 && gen % 2 == 0) {
    write_all_fd(fd, metrics_,
                 metrics_len_.load(std::memory_order_relaxed));
  } else {
    write_str(fd, "(no stable snapshot)\n");
  }
  write_str(fd, "=== end dump ===\n");
}

bool FlightRecorder::dump_to(const std::string& path) const {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  dump_to_fd(fd, 0);
  ::close(fd);
  return true;
}

std::string FlightRecorder::render() const {
  // Pipe-free rendering via a temp template would cost a file; instead walk
  // the ring the same way dump_to_fd does, into a string.
  std::string out;
  out += "=== bbmg flight recorder dump ===\nsignal: 0\nevents_total: ";
  const std::uint64_t cur = cursor_.load(std::memory_order_acquire);
  out += std::to_string(cur);
  out += "\n--- recent events (oldest first) ---\n";
  const std::uint64_t begin = cur > kEntries ? cur - kEntries : 0;
  for (std::uint64_t i = begin; i < cur; ++i) {
    const Entry& e = ring_[i % kEntries];
    if (e.seq.load(std::memory_order_acquire) != i * 2 + 2) continue;
    out.append(e.text, e.len);
    out += '\n';
  }
  out += "--- metrics snapshot (cached) ---\n";
  const std::uint64_t gen = metrics_gen_.load(std::memory_order_acquire);
  if (gen != 0 && gen % 2 == 0) {
    out.append(metrics_, metrics_len_.load(std::memory_order_relaxed));
  } else {
    out += "(no stable snapshot)\n";
  }
  out += "=== end dump ===\n";
  return out;
}

}  // namespace bbmg::obs
