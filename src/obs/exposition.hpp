// In-process observability, layer 3: snapshot serializers.
//
// Two renderings of a MetricsSnapshot:
//   * Prometheus-style text exposition (`to_prometheus`): counters and
//     gauges as `name value` lines, histograms as cumulative `_bucket`
//     series with `le` labels plus `_sum`/`_count` — scrape-compatible
//     without pulling in any client library;
//   * a JSON document (`to_json`): the same data as one object, for the
//     stats CLI and for machine diffing in tests (golden files).
// Both are deterministic: metrics are emitted name-sorted (the registry
// snapshots in map order), so output is diff- and golden-test-stable.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace bbmg::obs {

[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// Map an arbitrary runtime-registered base name onto the Prometheus
/// metric-name alphabet [a-zA-Z0-9_:]: every other byte becomes '_', and a
/// leading digit gains a '_' prefix.  Idempotent for already-valid names.
[[nodiscard]] std::string sanitize_metric_name(const std::string& base);

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline become \\, \" and \n.
[[nodiscard]] std::string escape_label_value(const std::string& value);

}  // namespace bbmg::obs
