// Chrome trace export: render a batch of SpanRecords as the JSON array
// format understood by chrome://tracing and https://ui.perfetto.dev —
// one complete ("ph":"X") event per span, with the span's dense thread
// index as the tid so per-worker timelines line up.  Pairs with
// SpanRing::drain(): enable the ring around the window of interest,
// drain, export, load in the viewer.
#pragma once

#include <string>
#include <vector>

#include "obs/span.hpp"

namespace bbmg::obs {

[[nodiscard]] std::string to_chrome_trace_json(
    const std::vector<SpanRecord>& spans);

/// Convenience: drain the ring and write the JSON to `path`; returns the
/// number of spans exported.  Throws bbmg::Error if the file cannot be
/// written.
std::size_t export_chrome_trace(SpanRing& ring, const std::string& path);

}  // namespace bbmg::obs
