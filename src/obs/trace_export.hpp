// Chrome trace export: render spans as the JSON array format understood
// by chrome://tracing and https://ui.perfetto.dev.
//
// Two layers:
//   * SpanRecord (the in-process ring's POD) renders as one complete
//     ("ph":"X") event per span — the single-process debugging surface;
//   * ExportSpan adds a process id and a dynamic name, so spans pulled
//     from another process over the wire (TraceDump) can be merged with
//     local ones into one causally-linked timeline.  Spans carrying trace
//     ids emit their ids as event args, and spans marked FlowDir::Out/In
//     additionally emit Chrome flow events ("ph":"s"/"f", id == trace id)
//     — the arrows that connect a client's send to the server's stages
//     across the process boundary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace bbmg::obs {

/// A span ready for export: SpanRecord plus a process id and an owned
/// name (wire spans do not share the process's static strings).
struct ExportSpan {
  std::string name;
  std::uint32_t pid{1};
  std::uint32_t tid{0};
  std::uint64_t start_ns{0};
  std::uint64_t duration_ns{0};
  std::uint64_t trace_id{0};
  std::uint64_t span_id{0};
  std::uint64_t parent_id{0};
  std::uint8_t flow{0};  // FlowDir
};

/// Lift ring records into export form under one process id, optionally
/// shifting timestamps by `offset_ns` (clock alignment across processes;
/// negative shifts clamp at zero).
[[nodiscard]] std::vector<ExportSpan> to_export_spans(
    const std::vector<SpanRecord>& spans, std::uint32_t pid,
    std::int64_t offset_ns = 0);

[[nodiscard]] std::string to_chrome_trace_json(
    const std::vector<ExportSpan>& spans);
[[nodiscard]] std::string to_chrome_trace_json(
    const std::vector<SpanRecord>& spans);

/// Convenience: drain the ring and write the JSON to `path`; returns the
/// number of spans exported.  Throws bbmg::Error if the file cannot be
/// written.
std::size_t export_chrome_trace(SpanRing& ring, const std::string& path);

/// Write an already-merged span batch to `path` (the client/server merged
/// export).  Throws bbmg::Error if the file cannot be written.
void write_chrome_trace(const std::vector<ExportSpan>& spans,
                        const std::string& path);

}  // namespace bbmg::obs
