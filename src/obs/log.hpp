// Structured JSON-lines logging for the serving stack.
//
// Every line is one JSON object — machine-parseable, grep-friendly — with
// a fixed envelope (wall-clock ms, level, event, message) plus optional
// key/value fields and, when the emitting code runs under a TraceScope or
// passes a context explicitly, the 64-bit trace id that correlates the
// line with the causal-tracing spans of the same request.
//
//   {"ts_ms":1719239471123,"level":"warn","event":"serve.session_failed",
//    "msg":"fsync failed ...","trace":"8f3a...","session":7}
//
// Rate limiting is per call site: each BBMG_LOG_* statement owns a static
// LogSite with a one-second token window, so a pathological loop (a dying
// disk failing every period) cannot flood the sink; the first line after a
// suppressed burst carries a "suppressed":N field.  Every emitted line is
// also appended to the crash flight recorder's ring
// (obs/flight_recorder.hpp), so a postmortem dump always ends with the
// most recent structured events.
//
// Logging is diagnostics, not hot-path accounting — it stays available in
// BBMG_OBS=OFF builds (the compile-time gate covers metrics and spans;
// operators still need error lines from a lean build).
#pragma once

#include <cstdint>
#include <cstdio>
#include <atomic>
#include <initializer_list>
#include <string>
#include <string_view>

#include "obs/trace_context.hpp"

namespace bbmg::obs {

enum class LogLevel : std::uint8_t { Debug = 0, Info = 1, Warn = 2, Error = 3 };

[[nodiscard]] std::string_view log_level_name(LogLevel level);

/// One key/value field of a structured line.  Strings are JSON-escaped at
/// render time; numeric constructors render unquoted.
struct LogKV {
  std::string_view key;
  std::string value;
  bool raw{false};  // true = emit unquoted (numbers/booleans)

  LogKV(std::string_view k, std::string v)
      : key(k), value(std::move(v)) {}
  LogKV(std::string_view k, const char* v) : key(k), value(v) {}
  LogKV(std::string_view k, std::string_view v)
      : key(k), value(std::string(v)) {}
  LogKV(std::string_view k, std::uint64_t v)
      : key(k), value(std::to_string(v)), raw(true) {}
  LogKV(std::string_view k, std::int64_t v)
      : key(k), value(std::to_string(v)), raw(true) {}
  LogKV(std::string_view k, std::uint32_t v)
      : key(k), value(std::to_string(v)), raw(true) {}
  LogKV(std::string_view k, std::int32_t v)
      : key(k), value(std::to_string(v)), raw(true) {}
  LogKV(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false"), raw(true) {}
};

/// Per-call-site state: the event name, the line's level, and the rate
/// limiter.  Declared static at the call site (the BBMG_LOG_* macros do
/// this) so suppression is per statement, not global.
class LogSite {
 public:
  constexpr LogSite(LogLevel level, const char* event)
      : level_(level), event_(event) {}

  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] const char* event() const { return event_; }

  /// True when this call may emit (consumes one token); on the first
  /// allowed call after a suppressed burst, `suppressed` is set to the
  /// burst size.
  bool admit(std::uint64_t now_ns, std::uint32_t max_per_sec,
             std::uint64_t& suppressed);

 private:
  LogLevel level_;
  const char* event_;
  std::atomic<std::uint64_t> window_start_ns_{0};
  std::atomic<std::uint32_t> in_window_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

class Logger {
 public:
  static Logger& instance();

  /// Lines below this level are dropped (default Info).
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<std::uint8_t>(level),
                     std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// Redirect output (default stderr).  Not owned; pass nullptr to silence
  /// the sink while still feeding the flight recorder.
  void set_sink(std::FILE* sink) { sink_.store(sink); }

  /// Per-site emission cap (lines per second; default 32, 0 = unlimited).
  void set_rate_limit(std::uint32_t per_sec) {
    rate_limit_.store(per_sec, std::memory_order_relaxed);
  }

  /// Emit one structured line under `ctx` (pass {} for uncorrelated
  /// lines).  Thread-safe; the line is rendered outside the sink lock.
  void log(LogSite& site, const TraceContext& ctx, std::string_view msg,
           std::initializer_list<LogKV> fields = {});

  /// Lines emitted (post-filter, post-rate-limit) and suppressed, process
  /// wide — exposed for tests and the metrics bridge.
  [[nodiscard]] std::uint64_t lines_emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lines_suppressed() const {
    return total_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  Logger() = default;

  std::atomic<std::uint8_t> min_level_{
      static_cast<std::uint8_t>(LogLevel::Info)};
  std::atomic<std::FILE*> sink_{stderr};
  std::atomic<std::uint32_t> rate_limit_{32};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> total_suppressed_{0};
};

/// Render one line without emitting it (exposed for tests).
[[nodiscard]] std::string render_log_line(LogLevel level,
                                          std::string_view event,
                                          const TraceContext& ctx,
                                          std::string_view msg,
                                          std::initializer_list<LogKV> fields,
                                          std::uint64_t suppressed);

}  // namespace bbmg::obs

// The call-site macros: a static LogSite per statement (per-site rate
// limiting), trace correlation from the thread-local current context.
// Fields are brace-lists of LogKV: BBMG_LOG_WARN("serve.x", "msg",
// {{"session", id}, {"err", what}}).
#define BBMG_LOG_AT(lvl, event_name, msg, ...)                             \
  do {                                                                     \
    static ::bbmg::obs::LogSite bbmg_log_site_((lvl), (event_name));       \
    ::bbmg::obs::Logger::instance().log(                                   \
        bbmg_log_site_, ::bbmg::obs::current_trace(), (msg),               \
        ##__VA_ARGS__);                                                    \
  } while (0)

#define BBMG_LOG_DEBUG(event_name, msg, ...) \
  BBMG_LOG_AT(::bbmg::obs::LogLevel::Debug, event_name, msg, ##__VA_ARGS__)
#define BBMG_LOG_INFO(event_name, msg, ...) \
  BBMG_LOG_AT(::bbmg::obs::LogLevel::Info, event_name, msg, ##__VA_ARGS__)
#define BBMG_LOG_WARN(event_name, msg, ...) \
  BBMG_LOG_AT(::bbmg::obs::LogLevel::Warn, event_name, msg, ##__VA_ARGS__)
#define BBMG_LOG_ERROR(event_name, msg, ...) \
  BBMG_LOG_AT(::bbmg::obs::LogLevel::Error, event_name, msg, ##__VA_ARGS__)
