// In-process observability, layer 3: causal trace context.
//
// A TraceContext names one causal chain (a period's journey from the
// producing client through decode, queue, learner apply, WAL, fsync, ack)
// with a 64-bit trace id, and carries the span id of the chain's current
// stage so the next stage can record itself as a child.  Ids are minted
// locally (per-process counter mixed through splitmix64 with a per-process
// seed) — globally unique enough for a tracing UI, with zero reserved as
// "no context".
//
// Context travels two ways:
//   * explicitly, through function parameters and the wire envelope
//     (serve/protocol.hpp, TraceContextMsg) — the cross-process path;
//   * implicitly, through a thread-local current context (TraceScope) —
//     so deep layers (the WAL writer's fsync, say) can attribute their
//     stage spans without threading a parameter through every signature.
//
// With BBMG_OBS=OFF minting returns zero and scopes are inert, matching
// the rest of the obs layer.
#pragma once

#include <cstdint>

#include "obs/span.hpp"

namespace bbmg::obs {

struct TraceContext {
  /// Causal-chain id shared by every span of one traced request.
  std::uint64_t trace_id{0};
  /// Span id of the current stage — the parent of any child span recorded
  /// under this context.
  std::uint64_t span_id{0};

  [[nodiscard]] bool active() const { return trace_id != 0; }
};

/// Mint a fresh nonzero 64-bit id (trace or span).  Thread-safe; returns 0
/// only when instrumentation is compiled out.
[[nodiscard]] std::uint64_t mint_id();

/// The calling thread's current trace context ({0,0} when none is set).
[[nodiscard]] TraceContext current_trace();

/// RAII setter for the thread-local current context; restores the previous
/// context on destruction, so scopes nest.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
#if BBMG_OBS_ENABLED
  TraceContext saved_;
#endif
};

/// Cross-process link directions for a span's flow event in the Chrome
/// export: an Out span emits a flow-start arrow at its end, an In span
/// binds the matching flow-finish at its start (flow id == trace id).
enum class FlowDir : std::uint8_t { None = 0, Out = 1, In = 2 };

/// Record one completed stage span [start_ns, end_ns) under `ctx` into
/// `ring`: mints the span's own id, sets parent = ctx.span_id, and returns
/// the minted id so callers can chain children.  No-op (returns 0) when the
/// context is inactive, the ring is disabled, or instrumentation is
/// compiled out.
std::uint64_t record_stage(SpanRing& ring, const char* name,
                           std::uint64_t start_ns, std::uint64_t end_ns,
                           const TraceContext& ctx,
                           FlowDir flow = FlowDir::None);

/// record_stage against the process-wide ring, under the thread-local
/// current context — the deep-layer form (WAL append/fsync).
std::uint64_t record_current_stage(const char* name, std::uint64_t start_ns,
                                   std::uint64_t end_ns,
                                   FlowDir flow = FlowDir::None);

}  // namespace bbmg::obs
