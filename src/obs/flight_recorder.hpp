// Crash flight recorder: the last N structured events plus a metrics
// snapshot, recoverable after a fatal signal.
//
// The recorder is a fixed-size ring of fixed-size pre-formatted text
// entries.  Writers claim a slot with one fetch_add and memcpy their line
// into it — no locks, no allocation — so note() is safe from any thread
// at any time.  Because entries are rendered *at log time*, the
// fatal-signal handler has no formatting to do: it only walks the ring
// and write(2)s bytes, which keeps the dump path async-signal-safe
// (open/write/close and integer-to-ascii only; no malloc, no stdio, no
// locks).
//
// The metrics snapshot works the same way: cache_metrics() serializes the
// registry to Prometheus text into a fixed buffer under a seqlock-style
// generation counter.  The server calls it on its stats tick, so a crash
// dump carries counters at most one tick stale.  (Serialization itself is
// NOT signal-safe — it runs in normal code; the handler only copies the
// cached bytes.)
//
// arm_signal_handler(dir) installs handlers for SIGSEGV/SIGABRT/SIGBUS/
// SIGFPE/SIGILL that write <dir>/crash-<signo>.log and then re-raise with
// the default disposition, so exit codes and core dumps are preserved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <string>
#include <string_view>

namespace bbmg::obs {

class FlightRecorder {
 public:
  /// Entry payload capacity; longer lines are truncated, not split.
  static constexpr std::size_t kEntryBytes = 384;
  /// Ring depth (entries).  1024 * 384B = 384 KiB resident.
  static constexpr std::size_t kEntries = 1024;
  /// Cached metrics text capacity.
  static constexpr std::size_t kMetricsBytes = 64 * 1024;

  static FlightRecorder& instance();

  /// Append one pre-formatted line (no trailing newline needed).
  /// Lock-free, allocation-free, safe from any thread.
  void note(std::string_view line);

  /// Serialize the global metrics registry into the cached snapshot.
  /// NOT async-signal-safe — call from normal code (e.g. the stats tick).
  void cache_metrics();

  /// Install fatal-signal handlers that dump into `dir` (created if
  /// missing).  Call once at startup; subsequent calls re-point the
  /// directory.
  void arm_signal_handler(const std::string& dir);

  /// On-demand dump (same content as a crash dump) to an explicit path.
  /// Returns false on I/O failure.  Unlike the signal path this is normal
  /// code, but it shares the signal-safe writer for coverage.
  bool dump_to(const std::string& path) const;

  /// Render the dump into a string (for the TraceDump wire path / tests).
  [[nodiscard]] std::string render() const;

  /// Entries ever noted (monotone; ring keeps the last kEntries).
  [[nodiscard]] std::uint64_t total_noted() const {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Async-signal-safe dump to an open fd; exposed for the handler and
  /// tests.  `signo` == 0 marks an on-demand dump.
  void dump_to_fd(int fd, int signo) const;

 private:
  FlightRecorder() = default;

  struct Entry {
    std::atomic<std::uint64_t> seq{0};  // odd while being written
    std::uint16_t len{0};
    char text[kEntryBytes];
  };

  Entry ring_[kEntries];
  std::atomic<std::uint64_t> cursor_{0};

  char metrics_[kMetricsBytes];
  std::atomic<std::uint32_t> metrics_len_{0};
  std::atomic<std::uint64_t> metrics_gen_{0};
};

}  // namespace bbmg::obs
