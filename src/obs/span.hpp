// In-process observability, layer 2: RAII stage timers.
//
// A Span measures one stage of work (a learned period, a model query) and
// on destruction records the duration into a latency Histogram — one clock
// pair and three relaxed fetch_adds per stage.  Optionally (off by
// default), spans also append a SpanRecord into a bounded in-memory ring;
// the ring can be drained and exported as Chrome about://tracing JSON
// (trace_export.hpp) to see *where* the time of a serving process went,
// thread by thread.  The ring is mutex-protected: it is a debugging
// surface that is disabled on the steady-state hot path, so simplicity
// and TSan-cleanliness win over lock-freedom there.
//
// With BBMG_OBS=OFF both the histogram write and the ring append compile
// to nothing, including the clock reads.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace bbmg::obs {

/// Monotonic nanoseconds since an arbitrary process-local epoch; 0 when
/// instrumentation is compiled out.
[[nodiscard]] std::uint64_t now_ns();

struct SpanRecord {
  /// Static stage label ("learner.period", "serve.query", ...).
  const char* name{""};
  std::uint64_t start_ns{0};
  std::uint64_t duration_ns{0};
  /// Small dense per-thread id (not the OS tid), stable within the process.
  std::uint32_t thread{0};
  /// Causal-tracing fields (obs/trace_context.hpp); all zero for plain
  /// stage timers.  parent_id links child stages; flow marks the span as
  /// one end of a cross-process arrow (FlowDir) keyed by trace_id.
  std::uint64_t trace_id{0};
  std::uint64_t span_id{0};
  std::uint64_t parent_id{0};
  std::uint8_t flow{0};
};

/// Default capacity of a SpanRing (overridable per ring, and for the
/// process-wide ring via `bbmg_served --span-ring N`).
inline constexpr std::size_t kDefaultSpanRingCapacity = 4096;

/// Bounded ring of completed spans; when full, the oldest are overwritten
/// and the eviction is counted in `bbmg_obs_span_drops_total`.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity = kDefaultSpanRingCapacity);

  static SpanRing& instance();

  /// Re-bound the ring (discards buffered spans).  Meant for startup
  /// configuration; safe at any time, but racing recorders may land in
  /// either generation of the buffer.
  void set_capacity(std::size_t capacity);

  /// Recording is disabled by default; Span::finish checks this flag with
  /// one relaxed load before paying the lock.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(const SpanRecord& record);

  /// Copy out the buffered spans, oldest first.
  [[nodiscard]] std::vector<SpanRecord> records() const;
  /// records() + clear in one critical section.
  [[nodiscard]] std::vector<SpanRecord> drain();
  void clear();

  [[nodiscard]] std::size_t capacity() const;
  /// Total spans ever recorded (>= buffered size; the excess was evicted).
  [[nodiscard]] std::uint64_t total_recorded() const;
  /// Spans evicted unread because the ring wrapped (== the ring's share of
  /// bbmg_obs_span_drops_total).
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  [[nodiscard]] std::vector<SpanRecord> copy_locked() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<SpanRecord> ring_;
  std::size_t next_{0};
  std::uint64_t total_{0};
  std::uint64_t dropped_{0};
};

/// Dense per-thread index used in span records (0, 1, 2, ... in first-use
/// order).  Exposed for tests.
[[nodiscard]] std::uint32_t current_thread_index();

/// RAII stage timer: records into `latency_us` (microseconds) and, when the
/// ring is enabled, appends a SpanRecord.  A null histogram skips the
/// histogram write (ring-only span).  Cheap to construct/destroy; with
/// BBMG_OBS=OFF the whole object is inert.
class Span {
 public:
  explicit Span(Histogram* latency_us, const char* name,
                SpanRing* ring = &SpanRing::instance())
#if BBMG_OBS_ENABLED
      : histogram_(latency_us), name_(name), ring_(ring), start_(now_ns()) {
  }
#else
  {
    (void)latency_us;
    (void)name;
    (void)ring;
  }
#endif

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  /// Record now instead of at destruction (idempotent).
  void finish();

 private:
#if BBMG_OBS_ENABLED
  Histogram* histogram_{nullptr};
  const char* name_{""};
  SpanRing* ring_{nullptr};
  std::uint64_t start_{0};
  bool done_{false};
#endif
};

inline void Span::finish() {
#if BBMG_OBS_ENABLED
  if (done_) return;
  done_ = true;
  const std::uint64_t dur = now_ns() - start_;
  if (histogram_ != nullptr) histogram_->observe(dur / 1000);
  if (ring_ != nullptr && ring_->enabled()) {
    ring_->record(SpanRecord{name_, start_, dur, current_thread_index()});
  }
#endif
}

}  // namespace bbmg::obs
