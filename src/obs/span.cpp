#include "obs/span.hpp"

#include <chrono>

namespace bbmg::obs {

std::uint64_t now_ns() {
#if BBMG_OBS_ENABLED
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
#else
  return 0;
#endif
}

std::uint32_t current_thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

SpanRing::SpanRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

SpanRing& SpanRing::instance() {
  static SpanRing ring;
  return ring;
}

namespace {

/// Process-wide eviction counter shared by every ring; resolved lazily so
/// ring construction never races registry initialization.
Counter& span_drops_counter() {
  static Counter& c =
      MetricsRegistry::instance().counter("bbmg_obs_span_drops_total");
  return c;
}

}  // namespace

void SpanRing::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
}

std::size_t SpanRing::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void SpanRing::record(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_ % capacity_] = record;
    ++dropped_;
    span_drops_counter().inc();
  }
  ++next_;
  ++total_;
}

std::vector<SpanRecord> SpanRing::copy_locked() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ % capacity_ is the oldest slot once the ring has wrapped.
    const std::size_t start = next_ % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(start + i) % capacity_]);
    }
  }
  return out;
}

std::vector<SpanRecord> SpanRing::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return copy_locked();
}

std::vector<SpanRecord> SpanRing::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out = copy_locked();
  ring_.clear();
  next_ = 0;
  return out;
}

void SpanRing::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

std::uint64_t SpanRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t SpanRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace bbmg::obs
