#include "obs/trace_export.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace bbmg::obs {

std::string to_chrome_trace_json(const std::vector<SpanRecord>& spans) {
  // chrome://tracing wants timestamps/durations in microseconds; fractional
  // microseconds keep sub-us spans visible.
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    os << (i == 0 ? "" : ",\n");
    os << "  {\"name\": \"" << s.name << "\", \"ph\": \"X\", \"pid\": 1"
       << ", \"tid\": " << s.thread
       << ", \"ts\": " << static_cast<double>(s.start_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(s.duration_ns) / 1e3 << "}";
  }
  os << "\n]\n";
  return os.str();
}

std::size_t export_chrome_trace(SpanRing& ring, const std::string& path) {
  const std::vector<SpanRecord> spans = ring.drain();
  std::ofstream ofs(path);
  BBMG_REQUIRE(ofs.good(), "cannot open chrome trace file for writing: " + path);
  ofs << to_chrome_trace_json(spans);
  BBMG_REQUIRE(ofs.good(), "failed writing chrome trace file: " + path);
  return spans.size();
}

}  // namespace bbmg::obs
