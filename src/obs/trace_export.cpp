#include "obs/trace_export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/trace_context.hpp"

namespace bbmg::obs {

namespace {

void append_json_escaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      os << buf;
    } else {
      os << c;
    }
  }
}

void append_hex_id(std::ostringstream& os, std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  os << buf;
}

/// One complete event, plus its flow event when the span is a flow
/// endpoint.  `first` tracks comma placement across the whole array.
void append_span(std::ostringstream& os, const ExportSpan& s, bool& first) {
  const double ts_us = static_cast<double>(s.start_ns) / 1e3;
  const double dur_us = static_cast<double>(s.duration_ns) / 1e3;
  os << (first ? "" : ",\n");
  first = false;
  os << "  {\"name\": \"";
  append_json_escaped(os, s.name);
  os << "\", \"ph\": \"X\", \"pid\": " << s.pid << ", \"tid\": " << s.tid
     << ", \"ts\": " << ts_us << ", \"dur\": " << dur_us;
  if (s.trace_id != 0) {
    os << ", \"args\": {\"trace\": \"";
    append_hex_id(os, s.trace_id);
    os << "\", \"span\": \"";
    append_hex_id(os, s.span_id);
    os << "\", \"parent\": \"";
    append_hex_id(os, s.parent_id);
    os << "\"}";
  }
  os << "}";
  if (s.flow == static_cast<std::uint8_t>(FlowDir::None) || s.trace_id == 0) {
    return;
  }
  // Flow arrows bind on (cat, id, name): a start at the Out span's end, a
  // binding-enclosing finish at the In span's start.
  const bool out = s.flow == static_cast<std::uint8_t>(FlowDir::Out);
  os << ",\n  {\"name\": \"period\", \"cat\": \"flow\", \"ph\": \""
     << (out ? 's' : 'f') << "\"" << (out ? "" : ", \"bp\": \"e\"")
     << ", \"id\": \"";
  append_hex_id(os, s.trace_id);
  os << "\", \"pid\": " << s.pid << ", \"tid\": " << s.tid
     << ", \"ts\": " << (out ? ts_us + dur_us : ts_us) << "}";
}

}  // namespace

std::vector<ExportSpan> to_export_spans(const std::vector<SpanRecord>& spans,
                                        std::uint32_t pid,
                                        std::int64_t offset_ns) {
  std::vector<ExportSpan> out;
  out.reserve(spans.size());
  for (const SpanRecord& s : spans) {
    ExportSpan e;
    e.name = s.name;
    e.pid = pid;
    e.tid = s.thread;
    const std::int64_t shifted =
        static_cast<std::int64_t>(s.start_ns) + offset_ns;
    e.start_ns = shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0;
    e.duration_ns = s.duration_ns;
    e.trace_id = s.trace_id;
    e.span_id = s.span_id;
    e.parent_id = s.parent_id;
    e.flow = s.flow;
    out.push_back(std::move(e));
  }
  return out;
}

std::string to_chrome_trace_json(const std::vector<ExportSpan>& spans) {
  // chrome://tracing wants timestamps/durations in microseconds; fractional
  // microseconds keep sub-us spans visible.
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  for (const ExportSpan& s : spans) append_span(os, s, first);
  os << "\n]\n";
  return os.str();
}

std::string to_chrome_trace_json(const std::vector<SpanRecord>& spans) {
  return to_chrome_trace_json(to_export_spans(spans, /*pid=*/1));
}

std::size_t export_chrome_trace(SpanRing& ring, const std::string& path) {
  const std::vector<SpanRecord> spans = ring.drain();
  write_chrome_trace(to_export_spans(spans, /*pid=*/1), path);
  return spans.size();
}

void write_chrome_trace(const std::vector<ExportSpan>& spans,
                        const std::string& path) {
  std::ofstream ofs(path);
  BBMG_REQUIRE(ofs.good(), "cannot open chrome trace file for writing: " + path);
  ofs << to_chrome_trace_json(spans);
  BBMG_REQUIRE(ofs.good(), "failed writing chrome trace file: " + path);
}

}  // namespace bbmg::obs
