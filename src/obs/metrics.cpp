#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/exposition.hpp"

namespace bbmg::obs {

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<AtomicCounter[]>(bounds_.size() + 1);
}

std::size_t Histogram::bucket_index(std::uint64_t v) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = counts_[i].value();
  return out;
}

std::vector<std::uint64_t> default_latency_buckets_us() {
  // 1 us .. ~16.8 s in powers of 4: 13 buckets + the +Inf overflow.
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1; b <= 16'777'216; b *= 4) bounds.push_back(b);
  return bounds;
}

std::string labeled_name(const std::string& base, const std::string& label,
                         const std::string& value) {
  // Label values are escaped here (the only place labels are minted), so
  // exposition can pass the label block through untouched.
  return base + "{" + label + "=\"" + escape_label_value(value) + "\"}";
}

const CounterSample* MetricsSnapshot::find_counter(
    const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSample* MetricsSnapshot::find_gauge(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  const CounterSample* c = find_counter(name);
  return c == nullptr ? 0 : c->value;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back(CounterSample{name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back(GaugeSample{name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.upper_bounds = h->upper_bounds();
    s.counts = h->bucket_counts();
    s.sum = h->sum();
    s.count = h->count();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

std::size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace bbmg::obs
