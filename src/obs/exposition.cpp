#include "obs/exposition.hpp"

#include <sstream>

namespace bbmg::obs {

namespace {

/// `bbmg_x_total{kind="foo"}` -> base `bbmg_x_total`, labels `kind="foo"`.
void split_labels(const std::string& name, std::string& base,
                  std::string& labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    base = name;
    labels.clear();
    return;
  }
  base = name.substr(0, brace);
  labels = name.substr(brace + 1, name.size() - brace - 2);
}

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& c : snapshot.counters) {
    os << c.name << ' ' << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    os << g.name << ' ' << g.value << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    std::string base, labels;
    split_labels(h.name, base, labels);
    const std::string prefix =
        base + "_bucket{" + (labels.empty() ? "" : labels + ",");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      os << prefix << "le=\"";
      if (i < h.upper_bounds.size()) {
        os << h.upper_bounds[i];
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << '\n';
    }
    os << base << "_sum" << (labels.empty() ? "" : "{" + labels + "}") << ' '
       << h.sum << '\n';
    os << base << "_count" << (labels.empty() ? "" : "{" + labels + "}") << ' '
       << h.count << '\n';
  }
  return os.str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, snapshot.counters[i].name);
    os << ": " << snapshot.counters[i].value;
  }
  os << (snapshot.counters.empty() ? "}" : "\n  }");
  os << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, snapshot.gauges[i].name);
    os << ": " << snapshot.gauges[i].value;
  }
  os << (snapshot.gauges.empty() ? "}" : "\n  }");
  os << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, h.name);
    os << ": {\"le\": [";
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      os << (b == 0 ? "" : ", ") << h.upper_bounds[b];
    }
    os << "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << (b == 0 ? "" : ", ") << h.counts[b];
    }
    os << "], \"sum\": " << h.sum << ", \"count\": " << h.count << "}";
  }
  os << (snapshot.histograms.empty() ? "}" : "\n  }");
  os << "\n}\n";
  return os.str();
}

}  // namespace bbmg::obs
