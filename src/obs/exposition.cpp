#include "obs/exposition.hpp"

#include <cstdio>
#include <sstream>

namespace bbmg::obs {

namespace {

/// `bbmg_x_total{kind="foo"}` -> base `bbmg_x_total`, labels `kind="foo"`.
void split_labels(const std::string& name, std::string& base,
                  std::string& labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    base = name;
    labels.clear();
    return;
  }
  base = name.substr(0, brace);
  labels = name.substr(brace + 1, name.size() - brace - 2);
}

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      os << buf;
    } else {
      os << c;
    }
  }
  os << '"';
}

/// The name as it goes on the wire: sanitized base, labels passed through
/// (label *values* are escaped at labeled_name() time, and escapes must
/// not be re-mangled here).
std::string wire_name(const std::string& name) {
  std::string base, labels;
  split_labels(name, base, labels);
  std::string out = sanitize_metric_name(base);
  if (!labels.empty()) out += "{" + labels + "}";
  return out;
}

}  // namespace

std::string sanitize_metric_name(const std::string& base) {
  std::string out;
  out.reserve(base.size() + 1);
  for (const char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& c : snapshot.counters) {
    os << wire_name(c.name) << ' ' << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    os << wire_name(g.name) << ' ' << g.value << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    std::string base, labels;
    split_labels(h.name, base, labels);
    base = sanitize_metric_name(base);
    const std::string prefix =
        base + "_bucket{" + (labels.empty() ? "" : labels + ",");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      os << prefix << "le=\"";
      if (i < h.upper_bounds.size()) {
        os << h.upper_bounds[i];
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << '\n';
    }
    os << base << "_sum" << (labels.empty() ? "" : "{" + labels + "}") << ' '
       << h.sum << '\n';
    os << base << "_count" << (labels.empty() ? "" : "{" + labels + "}") << ' '
       << h.count << '\n';
  }
  return os.str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, snapshot.counters[i].name);
    os << ": " << snapshot.counters[i].value;
  }
  os << (snapshot.counters.empty() ? "}" : "\n  }");
  os << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, snapshot.gauges[i].name);
    os << ": " << snapshot.gauges[i].value;
  }
  os << (snapshot.gauges.empty() ? "}" : "\n  }");
  os << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, h.name);
    os << ": {\"le\": [";
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      os << (b == 0 ? "" : ", ") << h.upper_bounds[b];
    }
    os << "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << (b == 0 ? "" : ", ") << h.counts[b];
    }
    os << "], \"sum\": " << h.sum << ", \"count\": " << h.count << "}";
  }
  os << (snapshot.histograms.empty() ? "}" : "\n  }");
  os << "\n}\n";
  return os.str();
}

}  // namespace bbmg::obs
