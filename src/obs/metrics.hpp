// In-process observability, layer 1: a process-wide registry of named
// counters, gauges and fixed-bucket histograms (DESIGN.md "Observability").
//
// The design constraint is the learner hot path: instrumenting a period
// must cost a handful of relaxed fetch_adds, never a lock.  Metric objects
// are created once (registration takes a mutex, lookups are expected to be
// cached by the instrumented code — see e.g. core/learner_metrics.hpp) and
// after that every update is a single relaxed atomic RMW on a stable
// address.  Relaxed ordering is deliberate: metrics are monotone event
// counts whose *sum* is what matters; a reader (snapshot) may observe a
// momentarily torn view across metrics, but each individual value is exact
// once the writers quiesce — which is what the N-thread exactness test
// asserts.
//
// Compile-time gate: building with -DBBMG_OBS=OFF defines
// BBMG_OBS_ENABLED=0 and every update method compiles to an empty inline
// body — no atomic op, no clock read — while registry, snapshot and
// serialization machinery keep working (all values read as zero), so the
// wire protocol and CLIs behave identically in both builds.
//
// Naming scheme: `bbmg_<subsystem>_<name>`, `_total` suffix for counters,
// unit suffix (`_us`) for histograms.  A fixed label can be baked into the
// registered name with labeled_name("bbmg_x_total", "kind", "foo"), which
// renders as valid Prometheus exposition (`bbmg_x_total{kind="foo"}`).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef BBMG_OBS_ENABLED
#define BBMG_OBS_ENABLED 1
#endif

namespace bbmg::obs {

/// True in builds that compile instrumentation in (BBMG_OBS=ON).
inline constexpr bool kEnabled = BBMG_OBS_ENABLED != 0;

// -- unregistered primitives ----------------------------------------------
//
// AtomicCounter / AtomicMax are the always-on building blocks: plain
// relaxed-atomic cells with no name and no registry, for *functional*
// accounting that must keep working when instrumentation is compiled out
// (e.g. the serve layer's accepted/rejected submission counts, or the
// streaming trace-stats accumulator).  The registered metric types below
// wrap the same cells behind the BBMG_OBS gate.

class AtomicCounter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::uint64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Relaxed running maximum (high-water marks).
class AtomicMax {
 public:
  void update(std::uint64_t v) {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// -- registered metric types -----------------------------------------------

/// Monotone event count.  One relaxed fetch_add per inc().
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
#if BBMG_OBS_ENABLED
    v_.add(n);
#else
    (void)n;
#endif
  }
  [[nodiscard]] std::uint64_t value() const { return v_.value(); }

 private:
  AtomicCounter v_;
};

/// Point-in-time signed level (queue depths, high-water marks via set_max).
class Gauge {
 public:
  void set(std::int64_t v) {
#if BBMG_OBS_ENABLED
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t n = 1) {
#if BBMG_OBS_ENABLED
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void sub(std::int64_t n = 1) { add(-n); }
  /// Monotone ratchet: keep the largest value ever set (high-water mark).
  void set_max(std::int64_t v) {
#if BBMG_OBS_ENABLED
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: bucket upper bounds are chosen at registration
/// and never change, so observe() is a search over a small immutable array
/// plus one relaxed fetch_add (three including sum and count).
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  void observe(std::uint64_t v) {
#if BBMG_OBS_ENABLED
    counts_[bucket_index(v)].add(1);
    sum_.add(v);
    count_.add(1);
#else
    (void)v;
#endif
  }

  /// Bucket upper bounds (exclusive of the implicit +Inf overflow bucket).
  [[nodiscard]] const std::vector<std::uint64_t>& upper_bounds() const {
    return bounds_;
  }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (+Inf last).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t sum() const { return sum_.value(); }
  [[nodiscard]] std::uint64_t count() const { return count_.value(); }

  /// Index of the first bucket whose upper bound is >= v (last bucket for
  /// values above every bound).
  [[nodiscard]] std::size_t bucket_index(std::uint64_t v) const;

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<AtomicCounter[]> counts_;  // bounds_.size() + 1 cells
  AtomicCounter sum_;
  AtomicCounter count_;
};

/// Default microsecond latency buckets: 1 us .. ~16 s, powers of 4.
[[nodiscard]] std::vector<std::uint64_t> default_latency_buckets_us();

/// Bake one fixed label into a metric name; renders as valid Prometheus
/// exposition: labeled_name("bbmg_x_total", "kind", "orphan") ==
/// `bbmg_x_total{kind="orphan"}`.
[[nodiscard]] std::string labeled_name(const std::string& base,
                                       const std::string& label,
                                       const std::string& value);

// -- snapshots -------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value{0};
};

struct GaugeSample {
  std::string name;
  std::int64_t value{0};
};

struct HistogramSample {
  std::string name;
  std::vector<std::uint64_t> upper_bounds;
  /// Per-bucket counts, upper_bounds.size() + 1 entries (+Inf last).
  std::vector<std::uint64_t> counts;
  std::uint64_t sum{0};
  std::uint64_t count{0};
};

/// A consistent-enough copy of every registered metric (each value is read
/// once with relaxed ordering), sorted by name within each kind.  This is
/// the unit the serializers (exposition.hpp) and the wire protocol carry.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] const CounterSample* find_counter(const std::string& name) const;
  [[nodiscard]] const GaugeSample* find_gauge(const std::string& name) const;
  [[nodiscard]] const HistogramSample* find_histogram(
      const std::string& name) const;
  /// Value of a counter, or 0 when absent (wire-friendly convenience).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
};

// -- the registry ----------------------------------------------------------

/// Owner of all metric objects.  Registration is mutex-protected and
/// idempotent (same name returns the same object); returned references
/// stay valid for the registry's lifetime, so instrumented code resolves
/// its metrics once and caches the references.  instance() is the
/// process-wide registry every subsystem registers into; independent
/// registries can be constructed for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Registers with the given bounds on first use; later calls return the
  /// existing histogram regardless of `upper_bounds` (bounds are fixed).
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::size_t num_metrics() const;

 private:
  mutable std::mutex mu_;
  // std::map keeps snapshots deterministically name-sorted; node stability
  // keeps references valid across later registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace bbmg::obs
