#include "obs/trace_context.hpp"

#include <atomic>
#include <chrono>

namespace bbmg::obs {

#if BBMG_OBS_ENABLED

namespace {

thread_local TraceContext t_current{};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t process_seed() {
  // Wall-clock nanoseconds mixed with an address from this mapping: two
  // processes minting ids in the same nanosecond still diverge.
  static const std::uint64_t seed = splitmix64(
      static_cast<std::uint64_t>(std::chrono::system_clock::now()
                                     .time_since_epoch()
                                     .count()) ^
      reinterpret_cast<std::uintptr_t>(&t_current));
  return seed;
}

}  // namespace

std::uint64_t mint_id() {
  static std::atomic<std::uint64_t> next{1};
  const std::uint64_t id = splitmix64(
      process_seed() + next.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

TraceContext current_trace() { return t_current; }

TraceScope::TraceScope(TraceContext ctx) : saved_(t_current) {
  t_current = ctx;
}

TraceScope::~TraceScope() { t_current = saved_; }

#else  // !BBMG_OBS_ENABLED

std::uint64_t mint_id() { return 0; }
TraceContext current_trace() { return {}; }
TraceScope::TraceScope(TraceContext) {}
TraceScope::~TraceScope() = default;

#endif

std::uint64_t record_stage(SpanRing& ring, const char* name,
                           std::uint64_t start_ns, std::uint64_t end_ns,
                           const TraceContext& ctx, FlowDir flow) {
#if BBMG_OBS_ENABLED
  if (!ctx.active() || !ring.enabled()) return 0;
  SpanRecord rec;
  rec.name = name;
  rec.start_ns = start_ns;
  rec.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  rec.thread = current_thread_index();
  rec.trace_id = ctx.trace_id;
  rec.span_id = mint_id();
  rec.parent_id = ctx.span_id;
  rec.flow = static_cast<std::uint8_t>(flow);
  ring.record(rec);
  return rec.span_id;
#else
  (void)ring;
  (void)name;
  (void)start_ns;
  (void)end_ns;
  (void)ctx;
  (void)flow;
  return 0;
#endif
}

std::uint64_t record_current_stage(const char* name, std::uint64_t start_ns,
                                   std::uint64_t end_ns, FlowDir flow) {
  return record_stage(SpanRing::instance(), name, start_ns, end_ns,
                      current_trace(), flow);
}

}  // namespace bbmg::obs
