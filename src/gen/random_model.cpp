#include "gen/random_model.hpp"

#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace bbmg {

SystemModel random_model(const RandomModelParams& params) {
  BBMG_REQUIRE(params.num_tasks >= 2, "need at least two tasks");
  BBMG_REQUIRE(params.num_layers >= 2 && params.num_layers <= params.num_tasks,
               "layer count must be in [2, num_tasks]");
  BBMG_REQUIRE(params.num_ecus >= 1, "need at least one ECU");

  Rng rng(params.seed);
  const std::size_t n = params.num_tasks;

  // Layer assignment: evenly spread, layer 0 and the last layer non-empty.
  std::vector<std::size_t> layer(n);
  std::vector<std::vector<std::size_t>> by_layer(params.num_layers);
  for (std::size_t i = 0; i < n; ++i) {
    layer[i] = i * params.num_layers / n;
    by_layer[layer[i]].push_back(i);
  }

  // Plan edges first (output policies depend on final out-degrees).
  std::set<std::pair<std::size_t, std::size_t>> edge_set;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  auto add_planned = [&](std::size_t from, std::size_t to) {
    // The MoC allows at most one message per ordered pair and period, so
    // the design carries at most one edge per ordered pair.
    if (edge_set.emplace(from, to).second) edges.emplace_back(from, to);
  };

  for (std::size_t k = 1; k < params.num_layers; ++k) {
    for (std::size_t to : by_layer[k]) {
      const auto& parents = by_layer[k - 1];
      add_planned(parents[rng.pick_index(parents.size())], to);
    }
    for (std::size_t from : by_layer[k - 1]) {
      for (std::size_t to : by_layer[k]) {
        if (rng.next_bool(params.extra_edge_density)) add_planned(from, to);
      }
    }
  }

  std::vector<std::size_t> out_degree(n, 0);
  for (const auto& [from, to] : edges) ++out_degree[from];

  SystemModel model;
  CanId next_broadcast_id = 0x020;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec spec;
    spec.name = "T" + std::to_string(i);
    spec.ecu = EcuId{static_cast<std::uint32_t>(i % params.num_ecus)};
    // Earlier layers run at higher priority: upstream producers preempting
    // downstream consumers is the realistic automotive arrangement.
    spec.priority = static_cast<TaskPriority>(1000 - i);
    spec.exec_min = params.exec_min;
    spec.exec_max = params.exec_max;
    spec.activation = (layer[i] == 0) ? ActivationPolicy::Source
                                      : ActivationPolicy::AnyInput;
    // The first source stays strictly periodic so no period is ever empty;
    // the draw is guarded so sporadic_fraction == 0 leaves the rng stream
    // (and thus every existing seeded model) untouched.
    if (layer[i] == 0 && i != by_layer[0].front() &&
        params.sporadic_fraction > 0.0 &&
        rng.next_bool(params.sporadic_fraction)) {
      spec.fire_prob = params.sporadic_fire_prob;
    }
    spec.output = (out_degree[i] >= 2 &&
                   rng.next_bool(params.disjunction_fraction))
                      ? OutputPolicy::NonEmptySubset
                      : OutputPolicy::All;
    if (rng.next_bool(params.broadcast_fraction)) {
      spec.broadcasts.push_back(BroadcastSpec{next_broadcast_id++, 4});
    }
    model.add_task(std::move(spec));
  }

  CanId next_edge_id = 0x100;
  for (const auto& [from, to] : edges) {
    model.add_edge(EdgeSpec{TaskId{from}, TaskId{to}, next_edge_id++, 8, 1.0});
  }

  model.validate();
  return model;
}

}  // namespace bbmg
