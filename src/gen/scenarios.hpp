// Canonical scenarios and trace synthesis helpers.
//
// The paper's traces come from a logging device on a GM vehicle bus; we
// have no such data, so every experiment here synthesizes traces from
// design models.  Three generators with different fidelity/needs:
//
//  * simulate_trace (src/sim)  — full platform: ECUs, priorities,
//    preemption, CAN arbitration.  Timing is emergent.
//  * idealized_trace           — the paper's Fig. 2 layout: tasks laid out
//    sequentially in topological order, each immediately followed by its
//    outgoing messages.  No platform effects; ideal for learner-focused
//    unit tests and benches.
//  * exhaustive_trace          — one idealized period per *distinct
//    behaviour* of the model; the learner's result on it is the best any
//    trace of the model can teach ("assuming that the trace is exhaustive
//    so that it exhibits all allowable behavior", §3.4).
#pragma once

#include <cstdint>

#include "gen/random_model.hpp"
#include "model/system_model.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace bbmg {

/// One knob block describing a complete synthetic deployment: the design
/// model shape (including sporadic sources) plus the platform it runs on
/// (including per-ECU clock drift and bursty bus errors).  Every stochastic
/// knob defaults to off, and disabled knobs consume no rng draws, so a
/// ScenarioConfig with only `seed` set reproduces the exact traces the
/// plain random_model/simulate pipeline always produced.  Generation is
/// byte-deterministic: the same config yields the same model and trace on
/// every run and platform.
struct ScenarioConfig {
  RandomModelParams model;  ///< sporadic_fraction / sporadic_fire_prob here
  SimConfig platform;       ///< drift + burst knobs here
  std::size_t num_periods = 50;
  /// Master seed; overrides model.seed and platform.seed with decorrelated
  /// streams so one integer fully determines the scenario.
  std::uint64_t seed = 1;
};

/// The design model of `config` (model params reseeded from config.seed).
[[nodiscard]] SystemModel scenario_model(const ScenarioConfig& config);

/// Simulate the scenario end to end on the full platform substrate.
[[nodiscard]] SimReport scenario_run(const ScenarioConfig& config);

/// Convenience wrapper returning only the trace.
[[nodiscard]] inline Trace scenario_trace(const ScenarioConfig& config) {
  return scenario_run(config).trace;
}

/// The paper's Fig. 1 design model: t1 is a disjunction node messaging t2
/// or t3 or both; t2 and t3 independently message the conjunction node t4.
[[nodiscard]] SystemModel paper_example_model();

/// The paper's Fig. 2 execution trace of that model (three periods:
/// t1 m1 t2 m2 t4 / t1 m3 t3 m4 t4 / t1 m5 m6 t3 t2 m7 m8 t4).
[[nodiscard]] Trace paper_example_trace();

/// Random idealized periods of `model` (see file comment).
[[nodiscard]] Trace idealized_trace(const SystemModel& model,
                                    std::size_t num_periods,
                                    std::uint64_t seed);

/// One idealized period per distinct behaviour of `model`.
[[nodiscard]] Trace exhaustive_trace(const SystemModel& model,
                                     std::size_t max_behaviors = 100000);

}  // namespace bbmg
