#include "gen/brake_system.hpp"

namespace bbmg {

SystemModel brake_system_model() {
  SystemModel m;

  auto task = [&](const char* name, std::uint32_t ecu, TaskPriority prio,
                  ActivationPolicy act, OutputPolicy out, TimeNs wcet_ms) {
    TaskSpec spec;
    spec.name = name;
    spec.ecu = EcuId{ecu};
    spec.priority = prio;
    spec.activation = act;
    spec.output = out;
    spec.exec_min = wcet_ms * kTimeNsPerMs / 2;
    spec.exec_max = wcet_ms * kTimeNsPerMs;
    return m.add_task(std::move(spec));
  };

  using AP = ActivationPolicy;
  using OP = OutputPolicy;

  // ECU 0 — pedal node.
  const TaskId pedal = task("PedalSensor", 0, 9, AP::Source, OP::All, 30);
  const TaskId proc = task("PedalProc", 0, 5, AP::AnyInput, OP::All, 40);

  // ECU 1 — vehicle dynamics node.
  const TaskId wheel_fl = task("WheelSpeedFL", 1, 9, AP::Source, OP::All, 20);
  const TaskId wheel_fr = task("WheelSpeedFR", 1, 8, AP::Source, OP::All, 20);
  const TaskId slip = task("SlipDetect", 1, 6, AP::AllInputs, OP::All, 30);
  const TaskId ctrl = task("BrakeCtrl", 1, 4, AP::AnyInput, OP::All, 40);

  // ECU 2 — actuator node; Diag is the infrastructure heartbeat.
  TaskSpec diag;
  diag.name = "Diag";
  diag.ecu = EcuId{2u};
  diag.priority = 9;
  diag.activation = AP::Source;
  diag.output = OP::All;
  diag.exec_min = 10 * kTimeNsPerMs;
  diag.exec_max = 25 * kTimeNsPerMs;
  diag.broadcasts.push_back(BroadcastSpec{0x008, 2});
  m.add_task(std::move(diag));
  const TaskId arbiter =
      task("AbsArbiter", 2, 5, AP::AllInputs, OP::NonEmptySubset, 30);
  const TaskId act_front = task("ActuatorFront", 2, 4, AP::AnyInput, OP::All, 40);
  const TaskId act_rear = task("ActuatorRear", 2, 3, AP::AnyInput, OP::All, 30);

  auto edge = [&](TaskId from, TaskId to, CanId id) {
    m.add_edge(EdgeSpec{from, to, id, 8, 1.0});
  };
  edge(pedal, proc, 0x100);
  edge(proc, ctrl, 0x101);
  edge(wheel_fl, slip, 0x110);
  edge(wheel_fr, slip, 0x111);
  edge(ctrl, arbiter, 0x120);
  edge(slip, arbiter, 0x121);
  edge(arbiter, act_front, 0x130);
  edge(arbiter, act_rear, 0x131);

  m.validate();
  return m;
}

std::vector<TaskId> brake_critical_path(const SystemModel& m) {
  return {m.task_by_name("PedalSensor"), m.task_by_name("PedalProc"),
          m.task_by_name("BrakeCtrl"), m.task_by_name("AbsArbiter"),
          m.task_by_name("ActuatorFront")};
}

}  // namespace bbmg
