#include "gen/scenarios.hpp"

#include "common/rng.hpp"
#include "model/behavior.hpp"

namespace bbmg {

namespace {

/// SplitMix64 step — decorrelates the model and platform streams derived
/// from the single scenario seed.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + salt + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

SystemModel scenario_model(const ScenarioConfig& config) {
  RandomModelParams params = config.model;
  params.seed = mix_seed(config.seed, 1);
  return random_model(params);
}

SimReport scenario_run(const ScenarioConfig& config) {
  const SystemModel model = scenario_model(config);
  SimConfig platform = config.platform;
  platform.seed = mix_seed(config.seed, 2);
  return simulate(model, config.num_periods, platform);
}

SystemModel paper_example_model() {
  SystemModel m;
  TaskSpec t1;
  t1.name = "t1";
  t1.ecu = EcuId{0u};
  t1.priority = 4;
  t1.activation = ActivationPolicy::Source;
  t1.output = OutputPolicy::NonEmptySubset;
  const TaskId id1 = m.add_task(t1);

  TaskSpec t2;
  t2.name = "t2";
  t2.ecu = EcuId{0u};
  t2.priority = 3;
  t2.activation = ActivationPolicy::AnyInput;
  t2.output = OutputPolicy::All;
  const TaskId id2 = m.add_task(t2);

  TaskSpec t3;
  t3.name = "t3";
  t3.ecu = EcuId{0u};
  t3.priority = 2;
  t3.activation = ActivationPolicy::AnyInput;
  t3.output = OutputPolicy::All;
  const TaskId id3 = m.add_task(t3);

  TaskSpec t4;
  t4.name = "t4";
  t4.ecu = EcuId{0u};
  t4.priority = 1;
  t4.activation = ActivationPolicy::AnyInput;
  t4.output = OutputPolicy::All;
  const TaskId id4 = m.add_task(t4);

  m.add_edge(EdgeSpec{id1, id2, 0x101, 8, 1.0});
  m.add_edge(EdgeSpec{id1, id3, 0x102, 8, 1.0});
  m.add_edge(EdgeSpec{id2, id4, 0x103, 8, 1.0});
  m.add_edge(EdgeSpec{id3, id4, 0x104, 8, 1.0});
  m.validate();
  return m;
}

Trace paper_example_trace() {
  constexpr TaskId T1{0u};
  constexpr TaskId T2{1u};
  constexpr TaskId T3{2u};
  constexpr TaskId T4{3u};
  TraceBuilder b({"t1", "t2", "t3", "t4"});

  // period 1: t1 m1 t2 m2 t4
  b.begin_period();
  b.add_event(Event::task_start(0, T1));
  b.add_event(Event::task_end(10, T1));
  b.add_event(Event::msg_rise(12, 1));
  b.add_event(Event::msg_fall(14, 1));
  b.add_event(Event::task_start(16, T2));
  b.add_event(Event::task_end(20, T2));
  b.add_event(Event::msg_rise(22, 2));
  b.add_event(Event::msg_fall(24, 2));
  b.add_event(Event::task_start(26, T4));
  b.add_event(Event::task_end(30, T4));
  b.end_period();

  // period 2: t1 m3 t3 m4 t4
  b.begin_period();
  b.add_event(Event::task_start(100, T1));
  b.add_event(Event::task_end(110, T1));
  b.add_event(Event::msg_rise(112, 3));
  b.add_event(Event::msg_fall(114, 3));
  b.add_event(Event::task_start(116, T3));
  b.add_event(Event::task_end(120, T3));
  b.add_event(Event::msg_rise(122, 4));
  b.add_event(Event::msg_fall(124, 4));
  b.add_event(Event::task_start(126, T4));
  b.add_event(Event::task_end(130, T4));
  b.end_period();

  // period 3: t1 m5 m6 t3 t2 m7 m8 t4 — t1 chose both successors; its two
  // messages leave back to back before either receiver starts.
  b.begin_period();
  b.add_event(Event::task_start(200, T1));
  b.add_event(Event::task_end(210, T1));
  b.add_event(Event::msg_rise(212, 5));
  b.add_event(Event::msg_fall(214, 5));
  b.add_event(Event::msg_rise(215, 6));
  b.add_event(Event::msg_fall(217, 6));
  b.add_event(Event::task_start(218, T3));
  b.add_event(Event::task_end(224, T3));
  b.add_event(Event::task_start(226, T2));
  b.add_event(Event::task_end(230, T2));
  b.add_event(Event::msg_rise(232, 7));
  b.add_event(Event::msg_fall(234, 7));
  b.add_event(Event::msg_rise(236, 8));
  b.add_event(Event::msg_fall(238, 8));
  b.add_event(Event::task_start(240, T4));
  b.add_event(Event::task_end(244, T4));
  b.end_period();

  return b.take();
}

namespace {

/// Lay one resolved behaviour out as a period, Fig. 2 style: executing
/// tasks in topological order, each followed immediately by its outgoing
/// frames (design messages in edge order, then broadcasts).
void layout_period(const SystemModel& model, const PeriodBehavior& behavior,
                   TraceBuilder& builder, TimeNs& clock) {
  constexpr TimeNs kTaskDur = 100 * kTimeNsPerUs;
  constexpr TimeNs kMsgDur = 20 * kTimeNsPerUs;
  constexpr TimeNs kGap = 5 * kTimeNsPerUs;

  std::vector<bool> edge_sent(model.edges().size(), false);
  for (std::size_t ei : behavior.sent_edges) edge_sent[ei] = true;

  builder.begin_period();
  for (TaskId t : model.topological_order()) {
    if (!behavior.executed[t.index()]) continue;
    builder.add_event(Event::task_start(clock, t));
    clock += kTaskDur;
    builder.add_event(Event::task_end(clock, t));
    clock += kGap;
    for (std::size_t ei : model.out_edges(t)) {
      if (!edge_sent[ei]) continue;
      const EdgeSpec& e = model.edges()[ei];
      builder.add_event(Event::msg_rise(clock, e.can_id));
      clock += kMsgDur;
      builder.add_event(Event::msg_fall(clock, e.can_id));
      clock += kGap;
    }
    for (const BroadcastSpec& bc : model.task(t).broadcasts) {
      builder.add_event(Event::msg_rise(clock, bc.can_id));
      clock += kMsgDur;
      builder.add_event(Event::msg_fall(clock, bc.can_id));
      clock += kGap;
    }
  }
  builder.end_period();
  clock += kGap;
}

}  // namespace

Trace idealized_trace(const SystemModel& model, std::size_t num_periods,
                      std::uint64_t seed) {
  model.validate();
  Rng rng(seed);
  TraceBuilder builder(model.task_names());
  TimeNs clock = 0;
  for (std::size_t p = 0; p < num_periods; ++p) {
    layout_period(model, resolve_period(model, rng), builder, clock);
  }
  return builder.take();
}

Trace exhaustive_trace(const SystemModel& model, std::size_t max_behaviors) {
  model.validate();
  TraceBuilder builder(model.task_names());
  TimeNs clock = 0;
  for (const PeriodBehavior& behavior :
       enumerate_behaviors(model, max_behaviors)) {
    layout_period(model, behavior, builder, clock);
  }
  return builder.take();
}

}  // namespace bbmg
