// Random layered design models for property tests, scaling benches and
// ablations.  Tasks are arranged in layers; layer 0 holds the sources;
// every task in layer k > 0 draws at least one in-edge from layer k-1 (so
// everything is reachable) plus extra edges by density; a configurable
// fraction of multi-successor tasks become disjunction nodes.
#pragma once

#include <cstdint>

#include "model/system_model.hpp"

namespace bbmg {

struct RandomModelParams {
  std::size_t num_tasks = 12;
  std::size_t num_layers = 4;
  std::size_t num_ecus = 2;
  /// Probability of an extra edge between tasks in adjacent layers (beyond
  /// the one guaranteed in-edge per non-source task).
  double extra_edge_density = 0.25;
  /// Fraction of tasks with >= 2 out-edges that choose successors
  /// conditionally (NonEmptySubset) instead of messaging all of them.
  double disjunction_fraction = 0.5;
  /// Fraction of tasks that additionally emit one infrastructure
  /// broadcast frame per execution.
  double broadcast_fraction = 0.0;
  /// Fraction of *source* tasks that become sporadic (fire_prob below 1).
  /// The first source is always exempt so every period has at least one
  /// execution (the trace layer rejects empty periods).  Default off; when
  /// 0 no rng draws are consumed, preserving existing seeded models.
  double sporadic_fraction = 0.0;
  /// fire_prob assigned to sources selected by sporadic_fraction.
  double sporadic_fire_prob = 0.5;
  TimeNs exec_min = 100 * kTimeNsPerUs;
  TimeNs exec_max = 400 * kTimeNsPerUs;
  std::uint64_t seed = 42;
};

[[nodiscard]] SystemModel random_model(const RandomModelParams& params);

}  // namespace bbmg
