// A brake-by-wire scenario, the paper's motivating high-level property:
// "if the brake is pressed, then brake actuator must react within 300
// msec" (§3.4).  Ten tasks on three ECUs and one CAN bus:
//
//   PedalSensor (source)  --> PedalProc --> BrakeCtrl
//   WheelSpeedFL/FR (sources) --> SlipDetect (conjunction)
//   BrakeCtrl + SlipDetect --> AbsArbiter (disjunction: normal braking or
//                              ABS modulation, per period)
//   AbsArbiter --> ActuatorFront, ActuatorRear (whichever mode demands)
//   Diag (infrastructure heartbeat on the actuator ECU, no design edges)
//
// The model exercises the same learnability features as the GM study —
// conjunction (SlipDetect), disjunction (AbsArbiter), an infrastructure
// task (Diag) — in a setting where the end-to-end deadline of the
// pedal-to-actuator path is the headline analysis.
#pragma once

#include "model/system_model.hpp"

namespace bbmg {

[[nodiscard]] SystemModel brake_system_model();

/// The pedal-to-front-actuator path whose latency the requirement bounds.
[[nodiscard]] std::vector<TaskId> brake_critical_path(const SystemModel& m);

/// The requirement's deadline: 300 ms.
inline constexpr TimeNs kBrakeDeadline = 300 * kTimeNsPerMs;

}  // namespace bbmg
