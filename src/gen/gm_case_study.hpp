// The GM-like case-study system (experiment E4, paper §3.4 and Fig. 5).
//
// The paper's system is proprietary: "a distributed system comprised of 18
// tasks and 330 messages transmitted on one CAN bus", traced for 27
// periods (~700 event-pair executions), tasks anonymized to letters A-Q
// and S.  We rebuild a model of the same shape with the published
// properties baked in:
//
//   * 18 tasks named S, A..Q on 4 ECUs sharing one CAN bus;
//   * A and B are disjunction nodes (each picks exactly one of its
//     successor branches per period);
//   * H, P and Q are conjunction nodes (several potential senders);
//   * every branch A can choose leads through C/D/E to L, so "no matter
//     which mode task A chooses, task L must execute" (d(A,L) = ->);
//   * symmetrically every branch of B leads through F/G to M (d(B,M) = ->);
//   * O is an *infrastructure* task (network management heartbeat): it has
//     no design edge to any functional task, but it runs on Q's ECU at
//     higher priority and broadcasts one high-priority frame per period —
//     the CAN/OSEK interaction from which the learner discovers the Q-O
//     dependency that is absent from the design.
//
// At the default settings one simulated period carries ~12-13 messages and
// ~12-13 task executions, i.e. ~340 messages and ~700 event pairs over the
// paper's 27 periods.
#pragma once

#include "model/system_model.hpp"

namespace bbmg {

/// Number of periods the paper's case-study trace contains.
inline constexpr std::size_t kGmCaseStudyPeriods = 27;

[[nodiscard]] SystemModel gm_case_study_model();

}  // namespace bbmg
