#include "gen/gm_case_study.hpp"

namespace bbmg {

SystemModel gm_case_study_model() {
  SystemModel m;

  auto task = [&](const char* name, std::uint32_t ecu, TaskPriority prio,
                  ActivationPolicy act, OutputPolicy out) {
    TaskSpec spec;
    spec.name = name;
    spec.ecu = EcuId{ecu};
    spec.priority = prio;
    spec.activation = act;
    spec.output = out;
    spec.exec_min = 200 * kTimeNsPerUs;
    spec.exec_max = 600 * kTimeNsPerUs;
    return m.add_task(spec);
  };

  using AP = ActivationPolicy;
  using OP = OutputPolicy;

  // ECU 0: the A-branch body controller.
  const TaskId S = task("S", 0, 10, AP::Source, OP::All);
  const TaskId A = task("A", 0, 8, AP::AnyInput, OP::ExactlyOne);
  const TaskId C = task("C", 0, 6, AP::AnyInput, OP::All);
  const TaskId D = task("D", 0, 5, AP::AnyInput, OP::All);
  const TaskId E = task("E", 0, 4, AP::AnyInput, OP::All);
  const TaskId L = task("L", 0, 2, AP::AnyInput, OP::All);

  // ECU 1: the B-branch chassis controller.
  const TaskId B = task("B", 1, 9, AP::AnyInput, OP::ExactlyOne);
  const TaskId F = task("F", 1, 7, AP::AnyInput, OP::All);
  const TaskId G = task("G", 1, 6, AP::AnyInput, OP::All);
  const TaskId K = task("K", 1, 3, AP::AnyInput, OP::All);
  const TaskId M = task("M", 1, 2, AP::AnyInput, OP::All);

  // ECU 2: downstream aggregation.
  const TaskId H = task("H", 2, 8, AP::AnyInput, OP::All);
  const TaskId I = task("I", 2, 7, AP::AnyInput, OP::All);
  const TaskId J = task("J", 2, 6, AP::AnyInput, OP::All);
  const TaskId N = task("N", 2, 4, AP::AnyInput, OP::All);
  const TaskId P = task("P", 2, 2, AP::AnyInput, OP::All);

  // ECU 3: the actuator node, shared by the infrastructure heartbeat O
  // (higher priority) and the functional conjunction task Q.  O has no
  // design edge anywhere — only a high-priority (low CAN id) network
  // management broadcast every period.
  TaskSpec o_spec;
  o_spec.name = "O";
  o_spec.ecu = EcuId{3u};
  o_spec.priority = 9;
  o_spec.activation = AP::Source;
  o_spec.output = OP::All;
  o_spec.exec_min = 100 * kTimeNsPerUs;
  o_spec.exec_max = 200 * kTimeNsPerUs;
  o_spec.broadcasts.push_back(BroadcastSpec{0x010, 4});
  const TaskId O = m.add_task(std::move(o_spec));
  const TaskId Q = task("Q", 3, 1, AP::AnyInput, OP::All);

  auto edge = [&](TaskId from, TaskId to, CanId id) {
    m.add_edge(EdgeSpec{from, to, id, 8, 1.0});
  };

  // Trigger fan-out.
  edge(S, A, 0x120);
  edge(S, B, 0x121);
  // A's modes: exactly one of C, D, E per period.
  edge(A, C, 0x130);
  edge(A, D, 0x131);
  edge(A, E, 0x132);
  // B's modes: exactly one of F, G per period.
  edge(B, F, 0x140);
  edge(B, G, 0x141);
  // Every A-mode reaches L; C also feeds the conjunction node H.
  edge(C, H, 0x150);
  edge(C, L, 0x151);
  edge(D, I, 0x152);
  edge(D, L, 0x153);
  edge(E, J, 0x154);
  edge(E, L, 0x155);
  // Every B-mode reaches M; F also feeds H, G also feeds K.
  edge(F, H, 0x160);
  edge(F, M, 0x161);
  edge(G, K, 0x162);
  edge(G, M, 0x163);
  // Aggregation towards the conjunction nodes P and Q.
  edge(H, N, 0x170);
  edge(I, N, 0x171);
  edge(J, P, 0x180);
  edge(K, P, 0x181);
  edge(L, P, 0x182);
  edge(M, Q, 0x190);
  edge(N, Q, 0x191);

  (void)O;
  return m;
}

}  // namespace bbmg
