// Heterogeneous deployment synthesis for the fleet simulator.
//
// A *deployment* is one simulated black-box system in the fleet: a
// ScenarioConfig (design-model shape + platform knobs, gen/scenarios.hpp)
// plus the identity the serving stack sees (a stable routing key).  The
// fleet is deliberately heterogeneous — a real vehicle population is not a
// thousand copies of one ECU network — so make_deployment draws each
// deployment's size class and platform quirks from a per-deployment rng
// stream:
//
//   * size:     small 4–6 tasks (60%), medium 8–12 (30%), large 16–24 (10%)
//   * quirks:   sporadic sources, release jitter, per-ECU clock drift,
//               steady bus errors, bursty (Gilbert–Elliott) bus errors —
//               each enabled independently with its own probability.
//
// Everything is derived from (fleet_seed, index) alone, so a deployment is
// byte-reproducible anywhere: the verifier regenerates the exact trace the
// driver streamed by rebuilding the deployment from the same two integers.
#pragma once

#include <cstdint>
#include <string>

#include "gen/scenarios.hpp"

namespace bbmg::fleet {

struct DeploymentSpec {
  /// Position in the fleet; also the arrival-order identity.
  std::size_t index{0};
  /// Stable cluster routing key ("fleet-<index>").
  std::string key;
  /// The full generative description; scenario_run(scenario) is the exact
  /// trace this deployment streams.
  ScenarioConfig scenario;
};

/// Deterministically synthesize deployment `index` of the fleet seeded by
/// `fleet_seed`.  `periods` is the number of trace periods the deployment
/// will stream (stored into scenario.num_periods).
[[nodiscard]] DeploymentSpec make_deployment(std::uint64_t fleet_seed,
                                             std::size_t index,
                                             std::size_t periods);

}  // namespace bbmg::fleet
