#include "fleet/driver.hpp"

#include <algorithm>
#include <memory>
#include <thread>
#include <unordered_map>

#include "cluster/cluster_client.hpp"
#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "fleet/verifier.hpp"
#include "serve/serve_metrics.hpp"

namespace bbmg::fleet {

namespace {

std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + salt + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Deterministic per-deployment verification sample.
bool selected_for_verify(const FleetConfig& config, std::size_t index) {
  if (config.verify_fraction >= 1.0) return true;
  if (config.verify_fraction <= 0.0) return false;
  const double u = static_cast<double>(mix(config.seed, 0xfee7ull + index) >>
                                       11) /  // 53 random bits
                   9007199254740992.0;        // 2^53
  return u < config.verify_fraction;
}

/// One pump's view of a deployment mid-stream.
struct LiveDeployment {
  DeploymentSpec spec;
  /// Events per period, materialized at arrival, freed after the last send.
  std::vector<std::vector<Event>> periods;
  std::uint32_t session{0};
  std::size_t shard{0};  // cluster mode
};

struct PumpResult {
  std::uint64_t periods_sent{0};
  std::uint64_t events_sent{0};
  std::size_t sessions{0};
  std::size_t verified{0};
  std::size_t verify_failures{0};
  std::vector<std::string> failure_details;
  std::uint64_t peak_unacked{0};
  std::size_t failovers{0};
  std::string error;
};

void run_pump(const FleetConfig& config, std::size_t pump_id,
              PumpResult& out) {
  std::vector<std::size_t> mine;
  for (std::size_t i = pump_id; i < config.deployments; i += config.pumps) {
    mine.push_back(i);
  }
  if (mine.empty()) return;

  // Backend: exactly one of the two is live for the whole pump.
  std::unique_ptr<cluster::ClusterClient> cluster_client;
  std::unique_ptr<ResilientClient> client;
  if (config.map) {
    cluster_client =
        std::make_unique<cluster::ClusterClient>(*config.map, config.retry);
  } else {
    client = std::make_unique<ResilientClient>(config.retry);
    client->connect(config.host, config.port);
  }

  FleetScheduler sched(config.shape, config.arrival_window,
                       config.deployments, mine);
  std::unordered_map<std::size_t, LiveDeployment> live;

  while (!sched.empty()) {
    const FleetEvent ev = sched.pop();

    if (ev.period == 0) {
      // Arrival: synthesize the deployment, simulate its full trace, open
      // its session.
      LiveDeployment dep;
      dep.spec = make_deployment(config.seed, ev.deployment, config.periods);
      const Trace trace = scenario_trace(dep.spec.scenario);
      dep.periods.reserve(trace.num_periods());
      for (const Period& p : trace.periods()) {
        dep.periods.push_back(p.to_events());
      }
      const std::vector<std::string> names = trace.task_names();
      if (cluster_client) {
        const cluster::ClusterSessionRef ref =
            cluster_client->open_session(dep.spec.key, names);
        dep.session = ref.session;
        dep.shard = ref.shard;
      } else {
        dep.session = client->open_session(names);
      }
      ++out.sessions;
      live.emplace(ev.deployment, std::move(dep));
    }

    LiveDeployment& dep = live.at(ev.deployment);
    if (ev.period < dep.periods.size()) {
      out.events_sent += dep.periods[ev.period].size();
      if (cluster_client) {
        cluster_client->send_period(
            cluster::ClusterSessionRef{dep.shard, dep.session},
            std::move(dep.periods[ev.period]));
        out.peak_unacked = std::max(
            out.peak_unacked,
            static_cast<std::uint64_t>(
                cluster_client->shard_client(dep.shard).unacked(dep.session)));
      } else {
        client->send_period(dep.session, std::move(dep.periods[ev.period]));
        out.peak_unacked =
            std::max(out.peak_unacked,
                     static_cast<std::uint64_t>(client->unacked(dep.session)));
      }
      ++out.periods_sent;
      if (ev.period + 1 < dep.periods.size()) {
        sched.push(ev.at + dep.spec.scenario.platform.period_length,
                   ev.deployment, ev.period + 1);
      } else {
        dep.periods.clear();
        dep.periods.shrink_to_fit();
      }
    }
  }

  // Settlement: make every stream durable, then cross-check the sample.
  for (const std::size_t index : mine) {
    const LiveDeployment& dep = live.at(index);
    const cluster::ClusterSessionRef ref{dep.shard, dep.session};
    if (cluster_client) {
      (void)cluster_client->flush(ref);
    } else {
      (void)client->flush(dep.session);
    }
    if (!selected_for_verify(config, index)) continue;
    const WireSnapshot snap = cluster_client
                                  ? cluster_client->query(ref)
                                  : client->query(dep.session);
    const VerifyResult vr = verify_session(dep.spec, snap);
    ++out.verified;
    if (!vr.ok) {
      ++out.verify_failures;
      if (out.failure_details.size() < 4) {
        out.failure_details.push_back(vr.detail);
      }
    }
  }
  if (cluster_client) out.failovers = cluster_client->failovers();
}

}  // namespace

FleetReport run_fleet(const FleetConfig& config) {
  BBMG_REQUIRE(config.deployments > 0, "fleet: need at least one deployment");
  BBMG_REQUIRE(config.periods > 0, "fleet: need at least one period");
  BBMG_REQUIRE(config.pumps > 0, "fleet: need at least one pump");
  BBMG_REQUIRE(config.map.has_value() || config.port != 0,
               "fleet: no endpoint (set host/port or a cluster map)");

  const std::size_t pumps = std::min(config.pumps, config.deployments);
  const std::uint64_t retries_before =
      ServeMetrics::get().client_retries.value();

  std::vector<PumpResult> results(pumps);
  Stopwatch watch;
  {
    std::vector<std::thread> threads;
    threads.reserve(pumps);
    for (std::size_t p = 0; p < pumps; ++p) {
      threads.emplace_back([&config, p, &results] {
        try {
          run_pump(config, p, results[p]);
        } catch (const std::exception& e) {
          results[p].error =
              "pump " + std::to_string(p) + ": " + e.what();
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  FleetReport report;
  report.deployments = config.deployments;
  report.wall_seconds = watch.elapsed_seconds();
  for (const PumpResult& r : results) {
    report.sessions += r.sessions;
    report.periods_sent += r.periods_sent;
    report.events_sent += r.events_sent;
    report.verified += r.verified;
    report.verify_failures += r.verify_failures;
    for (const std::string& d : r.failure_details) {
      if (report.failure_details.size() < 8) {
        report.failure_details.push_back(d);
      }
    }
    if (!r.error.empty()) report.pump_errors.push_back(r.error);
    report.peak_unacked = std::max(report.peak_unacked, r.peak_unacked);
    report.failovers += r.failovers;
  }
  if (report.wall_seconds > 0) {
    report.periods_per_sec =
        static_cast<double>(report.periods_sent) / report.wall_seconds;
    report.events_per_sec =
        static_cast<double>(report.events_sent) / report.wall_seconds;
  }
  report.client_retries =
      ServeMetrics::get().client_retries.value() - retries_before;
  return report;
}

}  // namespace bbmg::fleet
