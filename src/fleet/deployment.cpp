#include "fleet/deployment.hpp"

#include "common/rng.hpp"

namespace bbmg::fleet {

namespace {

/// SplitMix64 — one deployment gets one decorrelated stream out of the
/// fleet seed; the same mix the scenario layer uses for model/platform.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + salt + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

DeploymentSpec make_deployment(std::uint64_t fleet_seed, std::size_t index,
                               std::size_t periods) {
  Rng rng(mix(fleet_seed, index));

  DeploymentSpec dep;
  dep.index = index;
  dep.key = "fleet-" + std::to_string(index);

  ScenarioConfig& sc = dep.scenario;
  sc.seed = mix(fleet_seed, 0x10000000ull + index);
  sc.num_periods = periods;

  // Size class: mostly small systems with a heavy tail of big ones, so a
  // large fleet exercises both many-cheap-sessions and few-expensive ones.
  const double cls = rng.next_double();
  RandomModelParams& m = sc.model;
  if (cls < 0.60) {
    m.num_tasks = 4 + rng.next_below(3);    // 4..6
    m.num_layers = 2;
    m.num_ecus = 2;
  } else if (cls < 0.90) {
    m.num_tasks = 8 + rng.next_below(5);    // 8..12
    m.num_layers = 3;
    m.num_ecus = 3;
  } else {
    m.num_tasks = 16 + rng.next_below(9);   // 16..24
    m.num_layers = 4;
    m.num_ecus = 4;
  }
  m.extra_edge_density = 0.15 + rng.next_double() * 0.2;
  m.disjunction_fraction = rng.next_double() * 0.5;
  m.broadcast_fraction = rng.next_bool(0.3) ? 0.2 : 0.0;

  // Platform quirks, each an independent coin so combinations occur.
  SimConfig& p = sc.platform;
  if (rng.next_bool(0.35)) {
    m.sporadic_fraction = 0.5;
    m.sporadic_fire_prob = 0.4 + rng.next_double() * 0.5;
  }
  if (rng.next_bool(0.5)) {
    p.release_jitter_max = 50 * kTimeNsPerUs +
                           rng.next_below(200 * kTimeNsPerUs);
  }
  if (rng.next_bool(0.3)) {
    p.clock_drift_ppm_max = 20.0 + rng.next_double() * 180.0;
  }
  if (rng.next_bool(0.25)) {
    p.bus_error_rate = rng.next_double() * 0.02;
  }
  if (rng.next_bool(0.15)) {
    p.burst_enter_prob = 0.01 + rng.next_double() * 0.04;
    p.burst_exit_prob = 0.2;
    p.burst_error_rate = 0.3 + rng.next_double() * 0.4;
  }
  return dep;
}

}  // namespace bbmg::fleet
