#include "fleet/verifier.hpp"

#include <string>

#include "lattice/matrix_io.hpp"
#include "robust/robust_online_learner.hpp"

namespace bbmg::fleet {

VerifyResult verify_session(const DeploymentSpec& dep,
                            const WireSnapshot& served) {
  const SimReport report = scenario_run(dep.scenario);
  const std::vector<std::string> names = report.trace.task_names();

  RobustOnlineLearner learner(names, RobustConfig{});
  for (const Period& p : report.trace.periods()) {
    (void)learner.observe_raw_period(p.to_events());
  }
  const RobustSnapshot offline = learner.full_snapshot();

  auto fail = [&](const std::string& what) {
    VerifyResult r;
    r.ok = false;
    r.detail = "deployment " + std::to_string(dep.index) + ": " + what;
    return r;
  };

  if (served.periods_seen != offline.periods_seen) {
    return fail("periods_seen " + std::to_string(served.periods_seen) +
                " != offline " + std::to_string(offline.periods_seen));
  }
  if (served.periods_learned != offline.periods_learned) {
    return fail("periods_learned " + std::to_string(served.periods_learned) +
                " != offline " + std::to_string(offline.periods_learned));
  }
  if (served.periods_quarantined != offline.periods_quarantined) {
    return fail("periods_quarantined " +
                std::to_string(served.periods_quarantined) + " != offline " +
                std::to_string(offline.periods_quarantined));
  }
  if (served.repairs != offline.repairs) {
    return fail("repairs " + std::to_string(served.repairs) + " != offline " +
                std::to_string(offline.repairs));
  }
  if (served.health != offline.health) {
    return fail("health mismatch");
  }
  if (served.converged != offline.result.converged()) {
    return fail("converged flag mismatch");
  }
  if (served.num_hypotheses != offline.result.hypotheses.size()) {
    return fail("num_hypotheses " + std::to_string(served.num_hypotheses) +
                " != offline " +
                std::to_string(offline.result.hypotheses.size()));
  }

  // The server sends an empty matrix for a session that never learned.
  const DependencyMatrix offline_lub = offline.result.hypotheses.empty()
                                           ? DependencyMatrix(0)
                                           : offline.result.lub();
  if (served.weight != offline_lub.weight()) {
    return fail("lub weight " + std::to_string(served.weight) +
                " != offline " + std::to_string(offline_lub.weight()));
  }
  if (served.lub.num_tasks() != offline_lub.num_tasks()) {
    return fail("lub size " + std::to_string(served.lub.num_tasks()) +
                " != offline " + std::to_string(offline_lub.num_tasks()));
  }
  if (offline_lub.num_tasks() == 0) return VerifyResult{};  // never learned
  const std::string served_text = matrix_to_string(served.lub, names);
  const std::string offline_text = matrix_to_string(offline_lub, names);
  if (served_text != offline_text) {
    return fail("dLUB matrix mismatch:\nserved:\n" + served_text +
                "offline:\n" + offline_text);
  }
  return VerifyResult{};
}

}  // namespace bbmg::fleet
