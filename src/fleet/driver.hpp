// The fleet driver: pumps a synthesized deployment population through the
// live serving stack as concurrent session traffic.
//
// Topology: deployments are pinned to pump threads (deployment % pumps),
// each pump owning one connection — a ResilientClient multiplexing its
// sessions over a single TCP stream (single-node mode) or a ClusterClient
// routing each deployment's key to its shard (cluster mode).  Within a
// pump, a FleetScheduler (virtual-time event queue, scheduler.hpp) decides
// the interleaving of its deployments' periods according to the arrival
// shape; dispatch itself runs as fast as the server accepts.  Sessions are
// opened with the serving defaults, so a fleet session is indistinguishable
// from a real bbmg_client stream on the server side.
//
// Verification: a configurable fraction of deployments is cross-checked at
// the end — flush (durable high-water mark), query the served model, and
// compare byte-for-byte against an offline replay of the same seeded trace
// (verifier.hpp).  A mismatch is a correctness failure of the serving
// stack, not of the fleet.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_map.hpp"
#include "fleet/deployment.hpp"
#include "fleet/scheduler.hpp"
#include "serve/resilient_client.hpp"

namespace bbmg::fleet {

struct FleetConfig {
  /// Fleet size (number of simulated deployments = served sessions).
  std::size_t deployments{100};
  /// Trace periods each deployment streams.
  std::size_t periods{3};
  /// Pump threads; each owns one connection and deployments % pumps.
  std::size_t pumps{4};
  ArrivalShape shape{ArrivalShape::Steady};
  /// Virtual-time window over which the fleet arrives (shapes only the
  /// interleaving — the driver never sleeps).
  TimeNs arrival_window{10 * kTimeNsPerSec};
  /// Fraction of deployments whose served model is cross-checked against
  /// offline replay (1 = every session, 0 = none; selection is a
  /// deterministic per-deployment hash so samples are reproducible).
  double verify_fraction{1.0};
  std::uint64_t seed{1};
  RetryConfig retry;
  /// Single-node endpoint (used when `map` is not set).
  std::string host{"127.0.0.1"};
  std::uint16_t port{0};
  /// Cluster mode: route each deployment's key over this map instead.
  std::optional<cluster::ClusterMap> map;
};

struct FleetReport {
  std::size_t deployments{0};
  std::size_t sessions{0};
  std::uint64_t periods_sent{0};
  std::uint64_t events_sent{0};
  double wall_seconds{0.0};
  double periods_per_sec{0.0};
  double events_per_sec{0.0};
  std::size_t verified{0};
  std::size_t verify_failures{0};
  /// First few mismatch descriptions (capped; empty on a clean run).
  std::vector<std::string> failure_details;
  /// Pump threads that died on an unrecoverable transport error.
  std::vector<std::string> pump_errors;
  /// ResilientClient retry attempts across the run (process-wide delta).
  std::uint64_t client_retries{0};
  /// Largest client-side unacked buffer observed on any session — the
  /// client half of the end-to-end queue-depth picture (the server half
  /// is bbmg_serve_queue_depth, scraped by the bench harness).
  std::uint64_t peak_unacked{0};
  /// Cluster mode: shards failed over to their follower.
  std::size_t failovers{0};

  [[nodiscard]] bool ok() const {
    return verify_failures == 0 && pump_errors.empty();
  }
};

/// Run the closed loop: synthesize, schedule, stream, flush, verify.
/// Throws bbmg::Error on config errors; transport failures inside pumps
/// are reported via FleetReport::pump_errors instead.
[[nodiscard]] FleetReport run_fleet(const FleetConfig& config);

}  // namespace bbmg::fleet
