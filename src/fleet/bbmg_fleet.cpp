// bbmg_fleet — closed-loop fleet load generator for the serving stack.
//
//   bbmg_fleet <host> <port> [options]       stream to one bbmg_served
//   bbmg_fleet --map <file> [options]        route over a cluster map
//
// Options:
//   --fleet N        deployments to synthesize           (default 100)
//   --periods P      trace periods per deployment        (default 3)
//   --pumps T        pump threads / connections          (default 4)
//   --shape S        steady | ramp | flash               (default steady)
//   --verify M       all | sample | off                  (default sample)
//   --sample F       verify fraction for --verify sample (default 0.05)
//   --seed S         fleet seed                          (default 1)
//   --budget MS      per-operation retry budget          (default 10000)
//   --json           machine-readable report on stdout
//
// Exit status: 0 on a clean run, 1 on usage/transport errors, 2 when any
// verified session's served model diverged from its offline replay.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/cluster_map.hpp"
#include "common/error.hpp"
#include "fleet/driver.hpp"

using namespace bbmg;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: bbmg_fleet (<host> <port> | --map <file>) [--fleet N]\n"
      "                  [--periods P] [--pumps T] [--shape steady|ramp|"
      "flash]\n"
      "                  [--verify all|sample|off] [--sample F] [--seed S]\n"
      "                  [--budget MS] [--json]\n");
  return 1;
}

void print_human(const fleet::FleetReport& r) {
  std::printf("fleet: %zu deployments, %zu sessions opened\n", r.deployments,
              r.sessions);
  std::printf("sent : %llu periods, %llu events in %.2fs "
              "(%.0f periods/s, %.0f events/s)\n",
              static_cast<unsigned long long>(r.periods_sent),
              static_cast<unsigned long long>(r.events_sent), r.wall_seconds,
              r.periods_per_sec, r.events_per_sec);
  std::printf("queue: peak client unacked %llu, %llu retries, %zu "
              "failovers\n",
              static_cast<unsigned long long>(r.peak_unacked),
              static_cast<unsigned long long>(r.client_retries), r.failovers);
  std::printf("check: %zu verified, %zu mismatches\n", r.verified,
              r.verify_failures);
  for (const std::string& d : r.failure_details) {
    std::printf("  MISMATCH %s\n", d.c_str());
  }
  for (const std::string& e : r.pump_errors) {
    std::printf("  ERROR %s\n", e.c_str());
  }
}

void print_json(const fleet::FleetReport& r) {
  std::printf("{\n");
  std::printf("  \"deployments\": %zu,\n", r.deployments);
  std::printf("  \"sessions\": %zu,\n", r.sessions);
  std::printf("  \"periods_sent\": %llu,\n",
              static_cast<unsigned long long>(r.periods_sent));
  std::printf("  \"events_sent\": %llu,\n",
              static_cast<unsigned long long>(r.events_sent));
  std::printf("  \"wall_seconds\": %.3f,\n", r.wall_seconds);
  std::printf("  \"periods_per_sec\": %.1f,\n", r.periods_per_sec);
  std::printf("  \"events_per_sec\": %.1f,\n", r.events_per_sec);
  std::printf("  \"peak_unacked\": %llu,\n",
              static_cast<unsigned long long>(r.peak_unacked));
  std::printf("  \"client_retries\": %llu,\n",
              static_cast<unsigned long long>(r.client_retries));
  std::printf("  \"failovers\": %zu,\n", r.failovers);
  std::printf("  \"verified\": %zu,\n", r.verified);
  std::printf("  \"verify_failures\": %zu,\n", r.verify_failures);
  std::printf("  \"pump_errors\": %zu\n", r.pump_errors.size());
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  fleet::FleetConfig config;
  config.deployments = 100;
  config.periods = 3;
  config.pumps = 4;
  config.verify_fraction = 0.05;
  config.retry.retry_budget_ms = 10000;
  bool json = false;
  bool have_endpoint = false;

  try {
    int i = 1;
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        raise(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--map") {
        config.map = cluster::ClusterMap::load(next_value("--map"));
        have_endpoint = true;
      } else if (arg == "--fleet") {
        config.deployments =
            static_cast<std::size_t>(std::strtoull(next_value("--fleet"),
                                                   nullptr, 10));
      } else if (arg == "--periods") {
        config.periods = static_cast<std::size_t>(
            std::strtoull(next_value("--periods"), nullptr, 10));
      } else if (arg == "--pumps") {
        config.pumps = static_cast<std::size_t>(
            std::strtoull(next_value("--pumps"), nullptr, 10));
      } else if (arg == "--shape") {
        const std::string s = next_value("--shape");
        if (s == "steady") config.shape = fleet::ArrivalShape::Steady;
        else if (s == "ramp") config.shape = fleet::ArrivalShape::Ramp;
        else if (s == "flash") config.shape = fleet::ArrivalShape::FlashCrowd;
        else raise("unknown --shape " + s);
      } else if (arg == "--verify") {
        const std::string m = next_value("--verify");
        if (m == "all") config.verify_fraction = 1.0;
        else if (m == "off") config.verify_fraction = 0.0;
        else if (m != "sample") raise("unknown --verify mode " + m);
      } else if (arg == "--sample") {
        config.verify_fraction = std::strtod(next_value("--sample"), nullptr);
      } else if (arg == "--seed") {
        config.seed = std::strtoull(next_value("--seed"), nullptr, 10);
      } else if (arg == "--budget") {
        config.retry.retry_budget_ms = static_cast<std::uint32_t>(
            std::strtoul(next_value("--budget"), nullptr, 10));
      } else if (arg == "--json") {
        json = true;
      } else if (!have_endpoint && i + 1 < argc && arg[0] != '-') {
        config.host = arg;
        config.port =
            static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
        have_endpoint = true;
      } else {
        return usage();
      }
    }
    if (!have_endpoint) return usage();

    const fleet::FleetReport report = fleet::run_fleet(config);
    if (json) {
      print_json(report);
    } else {
      print_human(report);
    }
    if (!report.pump_errors.empty()) return 1;
    return report.verify_failures == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbmg_fleet: %s\n", e.what());
    return 1;
  }
}
