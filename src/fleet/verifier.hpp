// Served-vs-offline cross-check for fleet sessions.
//
// The fleet's correctness claim is end-to-end determinism: a session's
// served model must be byte-identical to what a single-threaded offline
// learner produces from the same seeded trace — through the wire protocol,
// the worker pool, WAL durability, reconnects and (in cluster mode)
// failover.  A deployment is fully described by two integers (fleet seed,
// index), so the verifier regenerates the exact trace the driver streamed
// and replays it through RobustOnlineLearner with the serving default
// config, then compares every field the wire snapshot carries: the
// serialized dLUB matrix, hypothesis count, matrix weight, ingestion
// accounting and health.
#pragma once

#include <string>

#include "fleet/deployment.hpp"
#include "serve/client.hpp"

namespace bbmg::fleet {

struct VerifyResult {
  bool ok{true};
  /// Human-readable mismatch description (empty when ok).
  std::string detail;
};

/// Replay `dep`'s trace offline and compare against the served snapshot.
[[nodiscard]] VerifyResult verify_session(const DeploymentSpec& dep,
                                          const WireSnapshot& served);

}  // namespace bbmg::fleet
