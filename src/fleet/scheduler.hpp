// Virtual-time event queue ordering the fleet's traffic.
//
// The fleet driver does not sleep: a thousand deployments streaming in
// real time would make a bench take minutes of idle wall clock.  Instead
// the scheduler is a discrete-event queue over *virtual* nanoseconds — it
// decides the ORDER in which deployment periods hit the serving stack
// (and therefore how many deployments are concurrently mid-stream), and
// the driver dispatches them as fast as the server accepts.  Arrival-rate
// shaping is thus preserved as an interleaving property: under a flash
// crowd, almost the whole fleet is in flight at once; under a steady
// shape, deployments trickle through a narrow concurrent window.
//
// Shapes (over an `arrival_window` of virtual time):
//   Steady     — deployment i arrives at i/N of the window (constant rate).
//   Ramp       — arrival rate grows linearly from zero, so the i-th
//                arrival lands at sqrt(i/N) of the window (cumulative
//                arrivals ∝ t²); the tail of the window is the stress.
//   FlashCrowd — 80% of the fleet arrives inside the middle tenth of the
//                window; the rest is steady background.
//
// After its arrival, a deployment emits one event per trace period, spaced
// by its scenario's period_length — interleaving a large slow system's
// periods between many small fast ones exactly as wall-clock streaming
// would.
#pragma once

#include <cmath>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace bbmg::fleet {

enum class ArrivalShape : std::uint8_t { Steady, Ramp, FlashCrowd };

struct FleetEvent {
  TimeNs at{0};           ///< virtual time
  std::size_t deployment{0};
  std::size_t period{0};  ///< 0 = arrival (open session + first period)
  std::uint64_t seq{0};   ///< FIFO tie-break
};

/// Virtual arrival instant of deployment `index` in a fleet of `n`.
[[nodiscard]] inline TimeNs arrival_time(ArrivalShape shape, std::size_t index,
                                         std::size_t n, TimeNs window) {
  const double frac =
      n <= 1 ? 0.0 : static_cast<double>(index) / static_cast<double>(n);
  switch (shape) {
    case ArrivalShape::Steady:
      return static_cast<TimeNs>(frac * static_cast<double>(window));
    case ArrivalShape::Ramp:
      return static_cast<TimeNs>(std::sqrt(frac) *
                                 static_cast<double>(window));
    case ArrivalShape::FlashCrowd: {
      // First 80% of indices: compressed into [0.45, 0.55] of the window.
      // Remaining 20%: steady across the whole window as background.
      if (frac < 0.8) {
        return static_cast<TimeNs>((0.45 + (frac / 0.8) * 0.10) *
                                   static_cast<double>(window));
      }
      return static_cast<TimeNs>(((frac - 0.8) / 0.2) *
                                 static_cast<double>(window));
    }
  }
  return 0;
}

class FleetScheduler {
 public:
  /// Seed one arrival event per deployment index in `deployments` (a
  /// subset of the fleet — each pump thread owns a slice), with arrival
  /// times computed against the FULL fleet size `fleet_size` so the shape
  /// holds globally across pumps.
  FleetScheduler(ArrivalShape shape, TimeNs arrival_window,
                 std::size_t fleet_size,
                 const std::vector<std::size_t>& deployments) {
    for (std::size_t index : deployments) {
      push(arrival_time(shape, index, fleet_size, arrival_window), index, 0);
    }
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }

  /// Pop the earliest event.  The caller re-arms the deployment's next
  /// period with push() until its trace is exhausted.
  [[nodiscard]] FleetEvent pop() {
    FleetEvent ev = queue_.top();
    queue_.pop();
    return ev;
  }

  void push(TimeNs at, std::size_t deployment, std::size_t period) {
    queue_.push(FleetEvent{at, deployment, period, next_seq_++});
  }

 private:
  struct Later {
    bool operator()(const FleetEvent& a, const FleetEvent& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<FleetEvent, std::vector<FleetEvent>, Later> queue_;
  std::uint64_t next_seq_{0};
};

}  // namespace bbmg::fleet
