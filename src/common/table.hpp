// ASCII table rendering for benchmark harnesses and reports; every paper
// table is re-emitted through this printer so outputs are uniform and easy
// to diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace bbmg {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with column widths fitted to content, header underlined.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bbmg
