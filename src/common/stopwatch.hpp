// Wall-clock stopwatch used by the benchmark harnesses to reproduce the
// paper's runtime tables (§3.4).
#pragma once

#include <chrono>

namespace bbmg {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bbmg
