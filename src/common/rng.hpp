// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in bbmodelgen (disjunction-node choices, task
// execution times, random model generation) flows through Rng so that every
// experiment is reproducible from a single 64-bit seed.  The generator is
// xoshiro256** seeded via SplitMix64 — fast, high quality, and trivially
// portable, unlike std::mt19937 whose seeding is easy to get wrong.
#pragma once

#include <cstdint>
#include <vector>

namespace bbmg {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) with rejection sampling (no modulo bias).
  /// bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// A fresh generator whose stream is independent of this one.
  Rng split();

  /// Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t pick_index(std::size_t size);

  /// A uniformly random non-empty subset of {0,..,n-1}; n must be >= 1 and
  /// <= 63.  Used by disjunction nodes choosing which successors to message.
  std::uint64_t nonempty_subset_mask(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace bbmg
