// A small dynamic bitset.
//
// The learner tracks, per hypothesis and per period, the set of assumed
// sender->receiver pairs as a t*t bitset (paper §3.1 condition 3: a pair may
// carry at most one message per period).  std::vector<bool> is too slow for
// the hash/equality/merge operations that dominate the exact learner, so we
// keep an explicit word array.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bbmg {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return bits_; }

  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i) { words_[i >> 6] |= (1ull << (i & 63)); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(1ull << (i & 63)); }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  [[nodiscard]] bool any() const {
    for (auto w : words_)
      if (w != 0) return true;
    return false;
  }

  /// In-place union; both operands must have the same size.
  void unite(const DynamicBitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// In-place intersection; both operands must have the same size.
  void intersect(const DynamicBitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// True iff every bit of this is also set in other.
  [[nodiscard]] bool is_subset_of(const DynamicBitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    return true;
  }

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const DynamicBitset& a, const DynamicBitset& b) {
    return !(a == b);
  }

  /// Raw word storage, exposed for the durable snapshot codec
  /// (src/durable): a bitset round-trips as (size, words).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

  /// Rebuild a bitset from its serialized (size, words) form; `words` must
  /// have exactly (bits + 63) / 64 entries.
  [[nodiscard]] static DynamicBitset from_words(
      std::size_t bits, std::vector<std::uint64_t> words) {
    DynamicBitset b;
    b.bits_ = bits;
    b.words_ = std::move(words);
    return b;
  }

  [[nodiscard]] std::uint64_t hash_mix(std::uint64_t seed) const {
    std::uint64_t h = seed ^ (bits_ * 0x9e3779b97f4a7c15ull);
    for (auto w : words_) {
      h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }

 private:
  std::size_t bits_{0};
  std::vector<std::uint64_t> words_;
};

}  // namespace bbmg
