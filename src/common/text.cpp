#include "common/text.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace bbmg {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string format_u64(std::uint64_t v) { return std::to_string(v); }

bool parse_u64(std::string_view s, std::uint64_t& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_double(std::string_view s, double& out) {
  // std::from_chars for double is available in GCC 12, but keep strtod as
  // the portable fallback for locales-free parsing of our own output.
  std::string tmp(s);
  char* end = nullptr;
  out = std::strtod(tmp.c_str(), &end);
  return end != nullptr && *end == '\0' && !tmp.empty();
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::size_t token_col(std::string_view line, std::size_t token_index) {
  std::size_t i = 0;
  std::size_t tok = 0;
  const auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
           c == '\f';
  };
  while (i < line.size()) {
    while (i < line.size() && is_ws(line[i])) ++i;
    if (i >= line.size()) break;
    if (tok == token_index) return i + 1;
    while (i < line.size() && !is_ws(line[i])) ++i;
    ++tok;
  }
  return 1;
}

}  // namespace bbmg
