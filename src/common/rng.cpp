#include "common/rng.hpp"

#include "common/error.hpp"

namespace bbmg {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  BBMG_REQUIRE(bound > 0, "next_below bound must be positive");
  // Lemire-style rejection: accept unless in the biased remainder zone.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  BBMG_REQUIRE(lo <= hi, "next_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

std::size_t Rng::pick_index(std::size_t size) {
  BBMG_REQUIRE(size > 0, "pick_index on empty range");
  return static_cast<std::size_t>(next_below(size));
}

std::uint64_t Rng::nonempty_subset_mask(std::size_t n) {
  BBMG_REQUIRE(n >= 1 && n <= 63, "subset mask supports 1..63 elements");
  const std::uint64_t full = (1ull << n) - 1;
  for (;;) {
    const std::uint64_t m = next_u64() & full;
    if (m != 0) return m;
  }
}

}  // namespace bbmg
