// Error handling: bbmodelgen throws bbmg::Error for contract violations and
// malformed inputs (bad traces, inconsistent models).  BBMG_REQUIRE is used
// at public API boundaries; internal invariants use BBMG_ASSERT which is
// compiled out in release-with-assertions-off builds only.
#pragma once

#include <stdexcept>
#include <string>

namespace bbmg {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise(const std::string& message) {
  throw Error(message);
}

}  // namespace bbmg

#define BBMG_REQUIRE(cond, message)                                    \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::bbmg::raise(std::string("bbmg: requirement failed: ") +        \
                    (message) + " [" #cond "]");                       \
    }                                                                  \
  } while (false)

#define BBMG_ASSERT(cond, message)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::bbmg::raise(std::string("bbmg: internal invariant failed: ") + \
                    (message) + " [" #cond "]");                       \
    }                                                                  \
  } while (false)
